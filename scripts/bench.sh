#!/usr/bin/env bash
# Kernel benchmark driver.
#
# Runs the bench_kernels binary (NTT, RNS mul, base conversion, keyswitch,
# rotate, rescale, one bootstrap step) at CL_THREADS=1 and CL_THREADS=4 and
# merges both runs with the checked-in seed baseline
# (benchmarks/BENCH_kernels_seed.json) into benchmarks/BENCH_kernels.json,
# including per-kernel speedup ratios vs the seed.
#
# Usage: scripts/bench.sh [--smoke]
#   --smoke  tiny shapes, one iteration per kernel (harness health check)
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=""
if [[ "${1:-}" == "--smoke" ]]; then
    SMOKE="--smoke"
fi

cargo build --release -p cl-bench

BIN=target/release/bench_kernels
OUT_DIR=benchmarks
mkdir -p "$OUT_DIR"

label=$(git rev-parse --short HEAD 2>/dev/null || echo current)

echo "== bench: serial (CL_THREADS=1) =="
CL_THREADS=1 "$BIN" $SMOKE --label "serial-$label" --out "$OUT_DIR/BENCH_kernels_t1.json"

echo "== bench: parallel (CL_THREADS=4) =="
CL_THREADS=4 "$BIN" $SMOKE --label "parallel-$label" --out "$OUT_DIR/BENCH_kernels_t4.json"

echo "== bench: merge =="
python3 - "$OUT_DIR" <<'EOF'
import json, os, sys

out_dir = sys.argv[1]

def load(path):
    with open(path) as f:
        return json.load(f)

t1 = load(os.path.join(out_dir, "BENCH_kernels_t1.json"))
t4 = load(os.path.join(out_dir, "BENCH_kernels_t4.json"))
seed_path = os.path.join(out_dir, "BENCH_kernels_seed.json")
seed = load(seed_path) if os.path.exists(seed_path) else None

merged = {
    "shape": {k: t1[k] for k in ("n", "limbs", "limb_bits", "smoke")},
    "seed": seed,
    "serial": t1,
    "parallel": t4,
    "speedup_vs_seed": {},
}
if seed and seed.get("smoke") == t1.get("smoke"):
    for k, ns in seed["kernels_ns"].items():
        cur = t4["kernels_ns"].get(k)
        if cur:
            merged["speedup_vs_seed"][k] = round(ns / cur, 2)

path = os.path.join(out_dir, "BENCH_kernels.json")
with open(path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"wrote {path}")
for k, s in sorted(merged["speedup_vs_seed"].items()):
    print(f"  {k:>16}: {s:6.2f}x vs seed")
EOF
