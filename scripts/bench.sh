#!/usr/bin/env bash
# Kernel benchmark driver.
#
# Runs the bench_kernels binary (NTT, RNS mul, base conversion, keyswitch,
# rotate, hoisted rotation, rescale, BSGS linear transform, one bootstrap
# step, key-residency tiers eager/compact/hot with warm hint-cache variants)
# at CL_THREADS=1 and CL_THREADS=4 and merges both runs with the
# checked-in seed baseline (benchmarks/BENCH_kernels_seed.json) into
# benchmarks/BENCH_kernels.json, including per-kernel speedup ratios vs the
# seed.
#
# Also runs the deterministic op-count mode (`bench_kernels --ops`) from a
# separate trace-feature build (target/trace/, so the timing binary stays
# counter-free) and merges the measured residue-polynomial pass counts into
# the same JSON under "op_counts".
#
# Usage: scripts/bench.sh [--smoke] [--check]
#   --smoke  tiny shapes, one iteration per kernel (harness health check);
#            results go to target/bench_smoke/, never benchmarks/
#   --check  compare against the recorded baseline benchmarks/BENCH_kernels.json:
#            - both modes: measured keyswitch/rescale op counts must match
#              the cl-isa cost formulas EXACTLY (they are deterministic)
#            - full mode: fail if any kernel is >25% slower than recorded
#            - smoke mode: only verify every recorded kernel is present and
#              timed (single-iteration smoke timings are too noisy to gate on)
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=""
CHECK=0
for arg in "$@"; do
    case "$arg" in
        --smoke) SMOKE="--smoke" ;;
        --check) CHECK=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

cargo build --release -p cl-bench

BIN=target/release/bench_kernels
if [[ -n "$SMOKE" ]]; then
    # Smoke shapes must never overwrite the committed full-shape results.
    OUT_DIR=target/bench_smoke
else
    OUT_DIR=benchmarks
fi
mkdir -p "$OUT_DIR"

label=$(git rev-parse --short HEAD 2>/dev/null || echo current)

echo "== bench: serial (CL_THREADS=1) =="
CL_THREADS=1 "$BIN" $SMOKE --label "serial-$label" --out "$OUT_DIR/BENCH_kernels_t1.json"

echo "== bench: parallel (CL_THREADS=4) =="
CL_THREADS=4 "$BIN" $SMOKE --label "parallel-$label" --out "$OUT_DIR/BENCH_kernels_t4.json"

echo "== bench: op counts (trace build) =="
# A separate target dir keeps the trace-feature build from invalidating the
# counter-free release cache the timing numbers come from.
cargo build --release -p cl-bench --features trace --target-dir target/trace
CL_THREADS=4 target/trace/release/bench_kernels $SMOKE --ops \
    --label "ops-$label" --out "$OUT_DIR/BENCH_kernels_ops.json"

echo "== bench: merge =="
python3 - "$OUT_DIR" <<'EOF'
import json, os, sys

out_dir = sys.argv[1]

def load(path):
    with open(path) as f:
        return json.load(f)

t1 = load(os.path.join(out_dir, "BENCH_kernels_t1.json"))
t4 = load(os.path.join(out_dir, "BENCH_kernels_t4.json"))
ops = load(os.path.join(out_dir, "BENCH_kernels_ops.json"))
seed_path = os.path.join("benchmarks", "BENCH_kernels_seed.json")
seed = load(seed_path) if os.path.exists(seed_path) else None

merged = {
    "shape": {k: t1[k] for k in ("n", "limbs", "limb_bits", "smoke")},
    "host": {
        "backend": t1.get("backend"),
        "cpu_features": t1.get("cpu_features"),
    },
    "seed": seed,
    "serial": t1,
    "parallel": t4,
    "op_counts": ops,
    "speedup_vs_seed": {},
}
if seed and seed.get("smoke") == t1.get("smoke"):
    for k, ns in seed["kernels_ns"].items():
        cur = t4["kernels_ns"].get(k)
        if cur:
            merged["speedup_vs_seed"][k] = round(ns / cur, 2)

path = os.path.join(out_dir, "BENCH_kernels.json")
with open(path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"wrote {path}")
for k, s in sorted(merged["speedup_vs_seed"].items()):
    print(f"  {k:>16}: {s:6.2f}x vs seed")
EOF

if [[ "$CHECK" == 1 ]]; then
    echo "== bench: check vs recorded baseline =="
    python3 - "$OUT_DIR" "$SMOKE" <<'EOF'
import json, os, sys

out_dir, smoke = sys.argv[1], sys.argv[2] == "--smoke"
baseline_path = os.path.join("benchmarks", "BENCH_kernels.json")
if not os.path.exists(baseline_path):
    sys.exit("bench check: no recorded baseline at " + baseline_path)
with open(baseline_path) as f:
    baseline = json.load(f)
with open(os.path.join(out_dir, "BENCH_kernels_t4.json")) as f:
    current = json.load(f)["kernels_ns"]

recorded = baseline["parallel"]["kernels_ns"]
missing = [k for k in recorded if k not in current]
bogus = [k for k, ns in current.items() if not ns > 0]
if missing:
    sys.exit(f"bench check: kernels missing from current run: {missing}")
if bogus:
    sys.exit(f"bench check: non-positive timings: {bogus}")

# Op-count gate (both modes — the counts are deterministic): the measured
# keyswitch/rescale residue-polynomial pass counts must match the cl-isa
# cost formulas exactly. Cross-validates the telemetry against Table 1 on
# every bench run, at whatever shape this run used.
with open(os.path.join(out_dir, "BENCH_kernels_ops.json")) as f:
    ops = json.load(f)
if not ops.get("enabled"):
    sys.exit("bench check: op-count run was built without the trace feature")
bad, gated = [], 0
for k, rec in sorted(ops["kernels"].items()):
    exp = rec.get("expected")
    if not exp:
        continue
    gated += 1
    m = rec["measured"]
    measured = {
        "ntt_total": m["ntt"] + m["intt"],
        "mult": m["mult"],
        "add": m["add"],
        "base_conv": m["base_conv"],
    }
    for field, want in exp.items():
        if measured[field] != want:
            bad.append(f"{k}.{field}: measured {measured[field]} != formula {want}")
if bad:
    sys.exit("bench check: measured op counts diverge from the cost formulas:\n  "
             + "\n  ".join(bad))
print(f"bench check: {gated} kernels' op counts match the cl-isa cost formulas exactly: OK")

if smoke:
    # Single-iteration smoke timings are too noisy to compare; presence
    # and sanity are the gate.
    print(f"bench check (smoke): all {len(recorded)} recorded kernels present: OK")
    sys.exit(0)

THRESHOLD = 1.25
failures = []
for k, ref in sorted(recorded.items()):
    cur = current[k]
    ratio = cur / ref
    flag = "REGRESSION" if ratio > THRESHOLD else "ok"
    print(f"  {k:>24}: {ref/1e6:9.2f} ms -> {cur/1e6:9.2f} ms ({ratio:5.2f}x) {flag}")
    if ratio > THRESHOLD:
        failures.append(k)
if failures:
    sys.exit(f"bench check: kernels regressed >25% vs recorded baseline: {failures}")
print("bench check: no kernel regressed >25% vs recorded baseline: OK")

# Checkpointing must stay cheap: the pipeline_checkpoint kernel (durable
# checkpoint every 4 micro-ops) may cost at most ~10% over the identical
# pipeline with checkpoints disabled.
CKPT_OVERHEAD = 1.10
base, ckpt = current.get("pipeline_baseline"), current.get("pipeline_checkpoint")
if base and ckpt:
    ratio = ckpt / base
    print(f"bench check: checkpoint overhead {ratio:.3f}x "
          f"({base/1e6:.2f} ms -> {ckpt/1e6:.2f} ms)")
    if ratio > CKPT_OVERHEAD:
        sys.exit(f"bench check: checkpointing overhead {ratio:.2f}x exceeds "
                 f"{CKPT_OVERHEAD:.2f}x budget")
else:
    sys.exit("bench check: pipeline_baseline/pipeline_checkpoint kernels missing")

# The job server must stay a thin shim: the same batch of jobs through a
# 1-worker server (admission parsing, queueing, dispatch, outcome
# collection, one full server lifecycle) may cost at most ~10% over
# running them straight through the executor.
SCHED_OVERHEAD = 1.10
seq, one_w = current.get("server_seq_baseline"), current.get("server_jobs_1w")
if seq and one_w:
    ratio = one_w / seq
    print(f"bench check: server scheduling overhead {ratio:.3f}x "
          f"({seq/1e6:.2f} ms -> {one_w/1e6:.2f} ms per batch)")
    if ratio > SCHED_OVERHEAD:
        sys.exit(f"bench check: server scheduling overhead {ratio:.2f}x exceeds "
                 f"{SCHED_OVERHEAD:.2f}x budget")
else:
    sys.exit("bench check: server_seq_baseline/server_jobs_1w kernels missing")

# Crash durability must stay cheap: the same 1-worker batch with the
# write-ahead job journal on (blob records, lifecycle records, batch
# fsync, one full lifecycle including journal open) may cost at most ~10%
# over the journal-free server.
JOURNAL_OVERHEAD = 1.10
one_w, journaled = current.get("server_jobs_1w"), current.get("server_journal")
if one_w and journaled:
    ratio = journaled / one_w
    print(f"bench check: server journaling overhead {ratio:.3f}x "
          f"({one_w/1e6:.2f} ms -> {journaled/1e6:.2f} ms per batch)")
    if ratio > JOURNAL_OVERHEAD:
        sys.exit(f"bench check: server journaling overhead {ratio:.2f}x exceeds "
                 f"{JOURNAL_OVERHEAD:.2f}x budget")
else:
    sys.exit("bench check: server_jobs_1w/server_journal kernels missing")

# Software KSHGen residency: the hot-hint tier (bounded HintCache over
# compact seeded keys) must hold a bootstrap-capable key set in at most a
# quarter of the eagerly materialized footprint. The compact tier and the
# per-hint regeneration cost are recorded for trending but not gated.
KEY_RESIDENT_REDUCTION = 4.0
eager = current.get("key_memory_eager_bytes")
hot = current.get("key_memory_hot_bytes")
compact = current.get("key_memory_compact_bytes")
if eager and hot and compact:
    ratio = eager / hot
    regen = current.get("key_memory_regen", 0.0)
    print(f"bench check: key residency eager {eager/1024:.0f} KiB, compact "
          f"{compact/1024:.0f} KiB ({eager/compact:.1f}x), hot tier "
          f"{hot/1024:.0f} KiB ({ratio:.1f}x); regen {regen/1e3:.1f} us/hint")
    if ratio < KEY_RESIDENT_REDUCTION:
        sys.exit(f"bench check: hot-tier key residency only {ratio:.2f}x below "
                 f"eager, budget is >= {KEY_RESIDENT_REDUCTION:.1f}x")
else:
    sys.exit("bench check: key_memory_* kernels missing")

# Lazily materialized hints must be free once warm: the hoisted-rotation
# batch and the bootstrap step with every hint fetched from a warm
# HintCache may cost at most ~10% over the same kernels holding eager keys.
HINT_WARM_OVERHEAD = 1.10
for base_k, cached_k in [
    ("rotate_hoisted_x8", "rotate_hoisted_x8_cached"),
    ("bootstrap_step", "bootstrap_step_cached"),
]:
    base, cached = current.get(base_k), current.get(cached_k)
    if not (base and cached):
        sys.exit(f"bench check: {base_k}/{cached_k} kernels missing")
    ratio = cached / base
    print(f"bench check: warm hint-cache overhead on {base_k} {ratio:.3f}x "
          f"({base/1e6:.2f} ms -> {cached/1e6:.2f} ms)")
    if ratio > HINT_WARM_OVERHEAD:
        sys.exit(f"bench check: warm hint-cache overhead {ratio:.2f}x on "
                 f"{base_k} exceeds {HINT_WARM_OVERHEAD:.2f}x budget")
EOF
fi
