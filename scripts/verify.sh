#!/usr/bin/env bash
# Tier-1 verification gate.
#
#  1. Release build of the whole workspace.
#  2. Full test suite.
#  3. Lint gate on the cl-ckks / cl-boot *library* targets: warnings are
#     errors and bare `unwrap()` is banned (tests and binaries are exempt —
#     library code must name the violated invariant via `expect` or
#     propagate with `?`/`FheResult`).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== tier-1: bench harness smoke =="
# Smoke shapes + presence check vs the recorded kernel baseline (timing
# regressions are only enforced by a full `scripts/bench.sh --check` run;
# single-iteration smoke timings are too noisy to gate on).
scripts/bench.sh --smoke --check

echo "== tier-1: lint gate (library targets) =="
cargo clippy -p cl-ckks -p cl-boot -p cl-apps -p cl-baselines --lib --no-deps -- \
    -D warnings -D clippy::unwrap_used

echo "tier-1 verify: OK"
