#!/usr/bin/env bash
# Tier-1 verification gate.
#
#  1. Release build of the whole workspace.
#  2. Full test suite.
#  3. Fault-recovery smoke: a bootstrapped pipeline under a fixed-seed
#     fault plan must converge, with >= 1 recorded recovery, to the clean
#     run's bit-identical output (examples/fault_recovery_smoke.rs).
#  4. Lint gate on every library target: warnings are errors and bare
#     `unwrap()` is banned (tests and binaries are exempt — library code
#     must name the violated invariant via `expect` or propagate with
#     `?`/`FheResult`).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== tier-1: tests (forced scalar backend) =="
# Every SIMD backend must be bit-exact with the portable scalar reference.
# Rerunning the suite with CL_BACKEND=scalar pins the dispatcher to the
# reference kernels, so a backend-specific miscompare fails one of the two
# passes instead of hiding behind whichever backend the host auto-selects.
CL_BACKEND=scalar cargo test -q

echo "== tier-1: trace-disabled tests =="
# The workspace test run lights the `trace` feature through the root
# dev-dependency; this standalone run exercises the no-op counter path
# (zero-size span guards, all-zero snapshots).
cargo test -q -p cl-trace

echo "== tier-1: bench harness smoke =="
# Smoke shapes + presence check vs the recorded kernel baseline (timing
# regressions are only enforced by a full `scripts/bench.sh --check` run;
# single-iteration smoke timings are too noisy to gate on).
scripts/bench.sh --smoke --check

echo "== tier-1: fault-recovery smoke =="
cargo run --release --example fault_recovery_smoke

echo "== tier-1: server smoke =="
# Multi-tenant load with one poisoned tenant: clean tenants must stay
# bit-identical to their serial references, poisoned failures must land
# as structured outcomes (examples/server_smoke.rs).
cargo run --release --example server_smoke

echo "== tier-1: server restart smoke =="
# Crash durability: a server killed mid-batch must recover from its
# write-ahead journal — finished outcomes replayed, unfinished jobs
# resumed from durable checkpoints, all limb-bit-identical to the serial
# reference (examples/server_restart_smoke.rs).
cargo run --release --example server_restart_smoke

echo "== tier-1: hint-cache smoke =="
# The same BSGS transform and executor pipeline under a roomy vs a
# thrashing hint cache must be limb-bit-identical: eviction may only ever
# cost hint regeneration time (examples/hint_cache_smoke.rs).
cargo run --release --example hint_cache_smoke

echo "== tier-1: compile-and-run smoke =="
# Compiler-driven execution at N = 8K: a LoLa layer graph lowered to a
# pipeline Program must run with exactly the op counts and live-ciphertext
# peak the compiler predicted, and decrypt to the plain reference
# (examples/compile_run_smoke.rs).
cargo run --release --example compile_run_smoke

echo "== tier-1: lint gate (library targets) =="
cargo clippy -p cl-math -p cl-rns -p cl-ckks -p cl-boot -p cl-runtime \
    -p cl-apps -p cl-baselines -p cl-compiler -p cl-core -p cl-isa \
    -p cl-trace -p cl-server --lib --no-deps -- \
    -D warnings -D clippy::unwrap_used

echo "tier-1 verify: OK"
