//! The logistic-regression training benchmark (Sec. 8, HELR [36]).
//!
//! Batched logistic-regression training with 256 features and 256 samples
//! per batch, starting at computational depth `L = 38`. Unlike F1's
//! version (a single iteration, which avoids bootstrapping), this runs
//! many iterations, so ciphertexts exhaust their budget and must be
//! refreshed — the reason it belongs to the deep suite.

use cl_boot::BootstrapPlan;
use cl_isa::HeGraph;

use crate::kernels::{poly_eval, rotation_reduce};
use crate::Benchmark;

/// Features per sample (and samples per batch).
pub const FEATURES: usize = 256;
/// Training iterations (batches processed).
pub const ITERATIONS: usize = 32;
/// Starting computational depth.
pub const START_LEVEL: usize = 38;

/// Builds the logistic-regression training benchmark at the paper's main
/// operating point.
pub fn logistic_regression() -> Benchmark {
    logistic_regression_at(1 << 16, 57)
}

/// Builds the benchmark at an arbitrary operating point (Table 5).
pub fn logistic_regression_at(n: usize, l_max: usize) -> Benchmark {
    let plan = BootstrapPlan::packed(n, l_max);
    let mut g = HeGraph::new();
    // Encrypted weight vector, replicated across the batch dimension.
    let mut w = g.input(START_LEVEL.min(l_max - plan.levels_consumed() + 16).min(START_LEVEL));
    for _ in 0..ITERATIONS {
        // Refresh when the budget cannot cover one iteration (~6 levels:
        // dot product 1 + sigmoid 3 + gradient 1 + update 1).
        if g.node(w).level < 7 {
            let refreshed = plan.append_to(&mut g, w);
            w = refreshed;
        }
        let level = g.node(w).level;
        // This batch's encrypted data matrix (packed samples x features).
        let xbatch = g.input(level);
        // z = X·w: elementwise product then log-reduction across features.
        let prod = g.mul_ct(w, xbatch);
        let prod = g.rescale(prod);
        let z = rotation_reduce(&mut g, prod, FEATURES);
        // sigma(z): degree-7 least-squares sigmoid (depth 3).
        let s = poly_eval(&mut g, z, 3);
        // gradient = X^T (y - sigma): one more product + reduction.
        let y = g.input(g.node(s).level);
        let err = g.sub(y, s);
        let xb2 = g.input(g.node(err).level);
        let gprod = g.mul_ct(err, xb2);
        let gprod = g.rescale(gprod);
        let grad = rotation_reduce(&mut g, gprod, FEATURES);
        // w -= lr * grad (learning rate folded into a plaintext multiply).
        let lr = g.plain_input_cached(0x10_6000, g.node(grad).level);
        let upd = g.mul_plain(grad, lr);
        let upd = g.rescale(upd);
        let w_aligned = g.mod_drop(w, g.node(upd).level);
        w = g.sub(w_aligned, upd);
    }
    g.output(w);
    Benchmark {
        name: "Logistic Regression",
        graph: g,
        n,
        deep: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiple_iterations_force_bootstrapping() {
        // The F1 paper's single-iteration version never bootstraps; ours
        // must (that is the point of the changed benchmark).
        let b = logistic_regression();
        let raises = b.graph.op_histogram().mod_raises;
        assert!(raises >= 4, "expected several bootstraps, got {raises}");
    }

    #[test]
    fn starts_at_l38() {
        let b = logistic_regression();
        // First node is the weight input at the starting depth.
        let (_, first) = b.graph.iter().next().unwrap();
        assert_eq!(first.level, START_LEVEL);
    }

    #[test]
    fn iteration_structure() {
        let b = logistic_regression();
        let h = b.graph.op_histogram();
        // Two log-reductions (8 rotations each) per iteration, plus
        // bootstrap rotations.
        assert!(h.rotations >= ITERATIONS * 2 * 8);
        // Sigmoid: 3 ct-muls per iteration plus the two products.
        assert!(h.ct_muls >= ITERATIONS * 5);
        b.graph.validate();
    }
}
