//! The LSTM benchmark (Sec. 8, [57]).
//!
//! The recurrence `h_{i+1} = sigma(W0·h_i + W1·x_i)` evaluated over many
//! time steps: two 128x128 matrix-vector products per step, a degree-3
//! polynomial activation, and — because the recurrence is serial —
//! frequent bootstrapping. The paper states this benchmark "requires 50
//! bootstrappings per inference"; with two time steps' worth of levels
//! consumed between refreshes, that corresponds to a 100-step sequence.

use cl_boot::BootstrapPlan;
use cl_isa::HeGraph;

use crate::kernels::{bsgs_matvec_keyed, poly_eval};
use crate::Benchmark;

/// Hidden/input dimension of the LSTM (128x128 weight matrices).
pub const LSTM_DIM: usize = 128;
/// Time steps in one inference.
pub const LSTM_STEPS: usize = 100;
/// Time steps executed between bootstrap refreshes.
pub const STEPS_PER_BOOTSTRAP: usize = 2;
/// Levels one segment (two steps) needs: 2 x (matvec 1 + activation 2),
/// plus one level of headroom. The compiler drops refreshed ciphertexts to
/// this level immediately — computing at the smallest workable level is
/// the Fig. 3 optimization that keeps per-op cost low.
pub const SEGMENT_LEVELS: usize = 7;

/// Builds the LSTM inference benchmark at the paper's main operating
/// point.
pub fn lstm() -> Benchmark {
    lstm_at(1 << 16, 57)
}

/// Builds the LSTM benchmark at an arbitrary operating point (Table 5).
/// Tighter budgets (the 128-bit point) leave fewer usable levels after
/// each refresh, so bootstrapping happens proportionally more often.
pub fn lstm_at(n: usize, l_max: usize) -> Benchmark {
    // The LSTM's working vectors are 128-wide, so bootstrapping runs in
    // the sparse regime (256 slots): far smaller CoeffToSlot/SlotToCoeff
    // matrices than fully packed bootstrapping (Sec. 8: bootstrapping
    // costs grow with the slot count).
    let plan = BootstrapPlan::sparse(n, l_max, 2 * LSTM_DIM);
    let usable = plan.output_level(); // 22 at the 80-bit operating point
    // 2 steps per refresh at 22 usable levels; tighter budgets refresh
    // proportionally more often (Sec. 9.4: "we bootstrap twice as often").
    let steps_per_bootstrap = (usable * STEPS_PER_BOOTSTRAP / 22).max(1);
    let mut g = HeGraph::new();
    let start = g.input(usable);
    let mut h = g.mod_drop(start, SEGMENT_LEVELS.min(usable));
    let mut bootstraps = 0;
    for step in 0..LSTM_STEPS {
        let level = g.node(h).level;
        // Each step consumes 3 levels (matvec 1 + activation 2).
        if level < 4 || (step > 0 && step % steps_per_bootstrap == 0) {
            let refreshed = plan.append_to(&mut g, h);
            h = g.mod_drop(refreshed, SEGMENT_LEVELS.min(g.node(refreshed).level));
            bootstraps += 1;
        }
        let level = g.node(h).level;
        // W0·h (weights unencrypted in this benchmark; inputs encrypted).
        let w0h = bsgs_matvec_keyed(&mut g, h, LSTM_DIM, 1, false, 0x57_0000);
        // W1·x for this step's encrypted input token.
        let x = g.input(level);
        let w1x = bsgs_matvec_keyed(&mut g, x, LSTM_DIM, 1, false, 0x57_0001);
        let pre = g.add(w0h, w1x);
        // sigma: degree-3 polynomial, depth 2.
        h = poly_eval(&mut g, pre, 2);
    }
    // Refresh the final hidden state so the next inference window starts
    // with a full budget (the 50th bootstrap of the inference).
    let refreshed = plan.append_to(&mut g, h);
    bootstraps += 1;
    g.output(refreshed);
    debug_assert!(bootstraps >= LSTM_STEPS / STEPS_PER_BOOTSTRAP);
    Benchmark {
        name: "LSTM",
        graph: g,
        n,
        deep: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifty_bootstraps_per_inference() {
        // Sec. 8: "requires 50 bootstrappings per inference".
        let b = lstm();
        assert_eq!(b.graph.op_histogram().mod_raises, 50);
    }

    #[test]
    fn structure_matches_recurrence() {
        let b = lstm();
        let h = b.graph.op_histogram();
        // Two matvecs per step: 2 * 100 * 128 plaintext diagonals, plus
        // EvalMod pt-muls inside bootstraps.
        assert!(h.plain_muls >= 2 * LSTM_STEPS * LSTM_DIM);
        // Activation: 2 ct-muls per step plus bootstrap EvalMod muls.
        assert!(h.ct_muls >= 2 * LSTM_STEPS);
        b.graph.validate();
    }
}
