//! The ResNet-20 benchmark (Sec. 8, [48]).
//!
//! An FHE implementation of ResNet-20 inference on one encrypted CIFAR
//! image, modified as the paper describes: all channels are packed into a
//! single ciphertext before bootstrapping, which cuts the number of
//! bootstrappings by ~38x versus the original partially packed version.
//!
//! Structure: a stem convolution, three stages of six 3x3 convolutions
//! (16/32/64 channels), a composite polynomial ReLU approximation after
//! each convolution, bootstrapping around each ReLU (the approximation is
//! deep), and a final pooling + fully connected layer.

use cl_boot::BootstrapPlan;
use cl_isa::HeGraph;

use crate::kernels::{bsgs_matvec_keyed, poly_eval, rotation_reduce};
use crate::Benchmark;

/// Convolution layers (stem + 3 stages x 6).
pub const CONV_LAYERS: usize = 19;
/// Multiplicative depth of the composite minimax ReLU approximation [47]
/// (the faithful high-precision approximation of [48]).
pub const RELU_DEPTH: usize = 14;
/// Packed diagonals per convolution: 3x3 filter taps across the packed
/// channel dimension (up to 64 channels per stage) — convolutions under
/// channel packing are rotation- and multiply-heavy [48].
pub const CONV_DIAGS: usize = 300;

/// Builds the ResNet-20 inference benchmark at the paper's main operating
/// point (N = 64K, 80-bit security budget L = 57).
pub fn resnet20() -> Benchmark {
    resnet20_at(1 << 16, 57)
}

/// Builds ResNet-20 at an arbitrary operating point (used by the security
/// sweep of Table 5).
pub fn resnet20_at(n: usize, l_max: usize) -> Benchmark {
    let plan = BootstrapPlan::packed(n, l_max);
    let usable = plan.output_level();
    let mut g = HeGraph::new();
    let mut x = g.input(usable);
    for layer in 0..CONV_LAYERS {
        // Convolution as a BSGS diagonal kernel. Layers in the same stage
        // share geometry (stride), so their rotation hints are reused.
        let stage = layer / 7;
        let stride = 1i64 << (2 * stage);
        x = bsgs_matvec_keyed(&mut g, x, CONV_DIAGS, stride, false, 0xCC_0000 + layer as u64);
        // Residual connections every second conv within a stage.
        if layer % 2 == 0 && layer > 0 {
            // The shortcut joins at the current level.
            let shortcut = g.input(g.node(x).level);
            x = g.add(x, shortcut);
        }
        // The deep composite ReLU does not fit in the remaining budget of
        // any layer but the first, so each layer bootstraps at least once
        // — the packed regime (one refresh covers all channels). At tight
        // budgets (the 128-bit operating point) the ReLU itself is split
        // across bootstraps.
        let mut remaining = RELU_DEPTH;
        while remaining > 0 {
            if g.node(x).level <= remaining.min(usable - 1) + 1 {
                let refreshed = plan.append_to(&mut g, x);
                x = g.mod_drop(refreshed, usable.min(g.node(refreshed).level));
            }
            let chunk = remaining.min(g.node(x).level - 1).min(usable - 1);
            x = poly_eval(&mut g, x, chunk);
            remaining -= chunk;
        }
    }
    // Average pooling (rotation reduce) + fully connected layer.
    let pooled = rotation_reduce(&mut g, x, 64);
    let logits = bsgs_matvec_keyed(&mut g, pooled, 10, 64, false, 0xCC_FFFF);
    g.output(logits);
    Benchmark {
        name: "ResNet-20",
        graph: g,
        n,
        deep: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_count_in_packed_regime() {
        // With all channels packed, each ReLU costs one bootstrap-scale
        // refresh: expect on the order of 2 per layer pair, tens total (the
        // original partially packed network needed ~38x more).
        let b = resnet20();
        let raises = b.graph.op_histogram().mod_raises;
        assert!(
            (15..=45).contains(&raises),
            "expected tens of bootstraps, got {raises}"
        );
    }

    #[test]
    fn conv_structure() {
        let b = resnet20();
        let h = b.graph.op_histogram();
        // 19 convs x 81 diagonals of plaintext weights (plus bootstrap
        // internals).
        assert!(h.plain_muls >= CONV_LAYERS * CONV_DIAGS);
        // Deep ReLU approximations: >= 6 ct-muls per layer.
        assert!(h.ct_muls >= CONV_LAYERS * RELU_DEPTH);
        b.graph.validate();
    }

    #[test]
    fn stages_share_rotation_geometry() {
        use cl_isa::HeOp;
        let b = resnet20();
        let rots: Vec<i64> = b
            .graph
            .iter()
            .filter_map(|(_, n)| match n.op {
                HeOp::Rotate(_, s) => Some(s),
                _ => None,
            })
            .collect();
        let mut distinct = rots.clone();
        distinct.sort_unstable();
        distinct.dedup();
        // Heavy reuse: far fewer distinct amounts than rotations.
        assert!(
            distinct.len() * 4 < rots.len(),
            "{} distinct of {}",
            distinct.len(),
            rots.len()
        );
    }
}
