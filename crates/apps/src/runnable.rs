//! Runnable workload generators: graphs with concrete plaintext values.
//!
//! The benchmark generators in the sibling modules model the paper's
//! workloads for the *machine model* — their `PlainInput` nodes carry no
//! data. The generators here additionally bind every plaintext operand to
//! deterministic values, so the graph can be compiled by
//! `cl-compiler::lower_to_program` and executed for real through the
//! pipeline executor at small-to-medium ring degrees (N = 8K–16K runs in
//! seconds; the test suite uses toy rings).
//!
//! [`eval_plain`] is the unencrypted reference: it evaluates the same
//! graph over plain slot vectors (rotation = cyclic left shift, rescale =
//! identity), giving the expected decryption up to CKKS noise.

use std::collections::BTreeMap;

use cl_isa::{HeGraph, HeOp, NodeId};

/// A workload graph plus everything needed to actually run it: plaintext
/// bindings for every weight and the packing geometry they were generated
/// for.
#[derive(Debug, Clone)]
pub struct RunnableWorkload {
    /// Display name.
    pub name: &'static str,
    /// The dataflow graph (exactly one `Output`).
    pub graph: HeGraph,
    /// Concrete values for each `PlainInput` node.
    pub plain: BTreeMap<NodeId, Vec<f64>>,
    /// Encrypted `Input` nodes in binding order.
    pub inputs: Vec<NodeId>,
    /// Level the encrypted inputs must be encrypted at.
    pub input_level: usize,
    /// Slot count the plaintext vectors are packed for.
    pub slots: usize,
}

/// Deterministic weight diagonal `d`: small values in `[-0.5, 0.45]`,
/// different per diagonal and per slot.
fn diagonal_weights(slots: usize, d: usize) -> Vec<f64> {
    (0..slots)
        .map(|k| ((d * 31 + k * 7) % 20) as f64 / 20.0 - 0.5)
        .collect()
}

/// One LoLa-MNIST layer with real weights: a BSGS (baby-step/giant-step)
/// diagonal matrix-vector product over `diags` diagonals at `stride`,
/// rescaled once, optionally followed by the LoLa square activation
/// (`mul_ct(y, y)` + rescale).
///
/// The baby rotations all rotate the encrypted input, so the lowering's
/// hoisting pass turns them into a single decompose-once batch; the giant
/// rotations act on distinct partial sums and stay singletons. Consumes
/// one level (two with `activate`).
///
/// # Panics
///
/// Panics if `diags == 0`, if `level < 2` (`< 3` with `activate`), or if
/// `slots` is zero.
pub fn lola_layer_runnable(
    slots: usize,
    level: usize,
    diags: usize,
    stride: i64,
    activate: bool,
) -> RunnableWorkload {
    assert!(diags > 0, "matrix with no diagonals");
    assert!(slots > 0, "need at least one slot");
    assert!(
        level >= if activate { 3 } else { 2 },
        "not enough levels for the layer's rescales"
    );
    let mut g = HeGraph::new();
    let mut plain = BTreeMap::new();
    let x = g.input(level);
    let baby = (diags as f64).sqrt().ceil() as usize;
    let giant = diags.div_ceil(baby);
    let mut babies = vec![x];
    for i in 1..baby {
        babies.push(g.rotate(x, stride * i as i64));
    }
    let mut acc: Option<NodeId> = None;
    let mut d = 0usize;
    for j in 0..giant {
        let remaining = diags - j * baby;
        let mut inner: Option<NodeId> = None;
        for &b in babies.iter().take(remaining.min(baby)) {
            let w = g.plain_input(level);
            plain.insert(w, diagonal_weights(slots, d));
            d += 1;
            let term = g.mul_plain(b, w);
            inner = Some(match inner {
                None => term,
                Some(a) => g.add(a, term),
            });
        }
        let inner = inner.expect("giant step with no work");
        let rotated = if j == 0 {
            inner
        } else {
            g.rotate(inner, stride * (j * baby) as i64)
        };
        acc = Some(match acc {
            None => rotated,
            Some(a) => g.add(a, rotated),
        });
    }
    let y = g.rescale(acc.expect("empty matvec"));
    let out = if activate {
        let sq = g.mul_ct(y, y);
        g.rescale(sq)
    } else {
        y
    };
    g.output(out);
    RunnableWorkload {
        name: "LoLa-MNIST layer (runnable)",
        graph: g,
        plain,
        inputs: vec![x],
        input_level: level,
        slots,
    }
}

/// Evaluates the workload's graph over unencrypted slot vectors — the
/// reference result the homomorphic run must approximate. `inputs` binds
/// the graph's `Input` nodes in [`RunnableWorkload::inputs`] order; each
/// vector must have `slots` entries.
///
/// Rotation is a cyclic left shift (slot `i` takes slot `i + step`),
/// conjugation is the identity on real vectors, and rescale/mod-switch
/// are scale bookkeeping with no plain-domain effect.
///
/// # Panics
///
/// Panics on missing bindings or a graph using `ModRaise` (not part of
/// runnable workloads).
pub fn eval_plain(w: &RunnableWorkload, inputs: &[Vec<f64>]) -> Vec<f64> {
    assert_eq!(inputs.len(), w.inputs.len(), "one vector per Input node");
    let slots = w.slots;
    let mut vals: Vec<Vec<f64>> = Vec::with_capacity(w.graph.num_nodes());
    let mut next_input = 0usize;
    let mut out: Option<Vec<f64>> = None;
    let zip = |a: &[f64], b: &[f64], f: fn(f64, f64) -> f64| -> Vec<f64> {
        a.iter().zip(b).map(|(&x, &y)| f(x, y)).collect()
    };
    for (_, node) in w.graph.iter() {
        let v = match node.op {
            HeOp::Input => {
                let v = inputs[next_input].clone();
                assert_eq!(v.len(), slots, "input packed for {slots} slots");
                next_input += 1;
                v
            }
            HeOp::PlainInput => vec![0.0; slots], // read via its consumer
            HeOp::Add(a, b) => zip(&vals[a.0 as usize], &vals[b.0 as usize], |x, y| x + y),
            HeOp::Sub(a, b) => zip(&vals[a.0 as usize], &vals[b.0 as usize], |x, y| x - y),
            HeOp::MulCt(a, b) => zip(&vals[a.0 as usize], &vals[b.0 as usize], |x, y| x * y),
            HeOp::AddPlain(a, p) => {
                let pv = w.plain.get(&p).expect("plaintext binding");
                zip(&vals[a.0 as usize], pv, |x, y| x + y)
            }
            HeOp::MulPlain(a, p) => {
                let pv = w.plain.get(&p).expect("plaintext binding");
                zip(&vals[a.0 as usize], pv, |x, y| x * y)
            }
            HeOp::Rotate(a, s) => {
                let src = &vals[a.0 as usize];
                let step = s.rem_euclid(slots as i64) as usize;
                (0..slots).map(|i| src[(i + step) % slots]).collect()
            }
            HeOp::Conjugate(a)
            | HeOp::Rescale(a)
            | HeOp::ModDrop(a, _)
            | HeOp::Output(a) => vals[a.0 as usize].clone(),
            HeOp::ModRaise(..) => panic!("runnable workloads do not mod-raise"),
        };
        if matches!(node.op, HeOp::Output(_)) {
            out = Some(v.clone());
        }
        vals.push(v);
    }
    out.expect("graph has an Output node")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_graph_shape_matches_bsgs() {
        let w = lola_layer_runnable(32, 4, 9, 1, true);
        w.graph.validate();
        let h = w.graph.op_histogram();
        // baby = 3: two baby rotations; giant = 3: two giant rotations.
        assert_eq!(h.rotations, 4);
        assert_eq!(h.plain_muls, 9);
        assert_eq!(h.ct_muls, 1); // the square activation
        assert_eq!(h.rescales, 2);
        assert_eq!(h.outputs, 1);
        assert_eq!(w.plain.len(), 9);
        // Output level: input 4, matvec rescale -> 3, activation -> 2.
        let out_level = w
            .graph
            .iter()
            .find_map(|(_, n)| match n.op {
                HeOp::Output(a) => Some(w.graph.node(a).level),
                _ => None,
            })
            .expect("output");
        assert_eq!(out_level, 2);
    }

    #[test]
    fn plain_reference_matches_direct_diagonal_arithmetic() {
        // diags = 1, stride = 1, no activation: y = w0 ⊙ x, so the
        // reference must equal the elementwise product exactly.
        let w = lola_layer_runnable(8, 2, 1, 1, false);
        let x: Vec<f64> = (0..8).map(|i| i as f64 * 0.25).collect();
        let got = eval_plain(&w, &[x.clone()]);
        let w0 = diagonal_weights(8, 0);
        for i in 0..8 {
            assert!((got[i] - x[i] * w0[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn plain_reference_rotation_is_a_left_shift() {
        // diags = 2, stride = 1: y = w0 ⊙ x + w1 ⊙ rot1(x).
        let w = lola_layer_runnable(4, 2, 2, 1, false);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let got = eval_plain(&w, &[x.clone()]);
        let (w0, w1) = (diagonal_weights(4, 0), diagonal_weights(4, 1));
        for i in 0..4 {
            let expect = w0[i] * x[i] + w1[i] * x[(i + 1) % 4];
            assert!((got[i] - expect).abs() < 1e-12, "slot {i}");
        }
    }

    #[test]
    fn weights_are_deterministic() {
        let a = lola_layer_runnable(16, 3, 4, 2, false);
        let b = lola_layer_runnable(16, 3, 4, 2, false);
        assert_eq!(a.plain, b.plain);
        assert_eq!(a.graph.num_nodes(), b.graph.num_nodes());
    }
}
