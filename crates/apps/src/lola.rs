//! The LoLa (Low-Latency CryptoNets) shallow benchmarks (Sec. 8, [13]).
//!
//! Three FHE-tailored neural networks with low multiplicative depth and no
//! bootstrapping: LoLa-MNIST (a LeNet-style network, in unencrypted- and
//! encrypted-weight variants) and LoLa-CIFAR (a 6-layer network, similar
//! in computation to MobileNet v3, unencrypted weights only). These come
//! from F1's evaluation and show CraterLake remains competitive on the
//! workloads prior accelerators were built for.

use cl_isa::HeGraph;

use crate::kernels::{bsgs_matvec, poly_eval, rotation_reduce};
use crate::Benchmark;

/// One dense/convolution layer plus square activation, the LoLa pattern.
fn lola_layer(
    g: &mut HeGraph,
    x: cl_isa::NodeId,
    diags: usize,
    stride: i64,
    encrypted_weights: bool,
    activate: bool,
) -> cl_isa::NodeId {
    let y = bsgs_matvec(g, x, diags, stride, encrypted_weights);
    if activate {
        // LoLa uses square activations: depth 1.
        poly_eval(g, y, 1)
    } else {
        y
    }
}

/// LoLa-MNIST with unencrypted weights: a small LeNet-style network
/// (convolution, square, dense, square, dense). Max depth 4-5.
pub fn lola_mnist_uw() -> Benchmark {
    lola_mnist(false, "MNIST Unencryp. Wghts.")
}

/// LoLa-MNIST with encrypted weights: the same network but every weight
/// multiply is a ciphertext-ciphertext multiply with relinearization.
pub fn lola_mnist_ew() -> Benchmark {
    lola_mnist(true, "MNIST Encryp. Wghts.")
}

fn lola_mnist(encrypted_weights: bool, name: &'static str) -> Benchmark {
    let n = 1 << 14;
    let mut g = HeGraph::new();
    let x = g.input(6);
    // Conv (5x5 kernel over the 28x28 image, stride 2 -> 845 outputs;
    // packed as a sparse matrix with ~120 diagonals) + square.
    let c1 = lola_layer(&mut g, x, 120, 1, encrypted_weights, true);
    // Dense 845 -> 100 (~150 diagonals under packing) + square.
    let d1 = lola_layer(&mut g, c1, 150, 29, encrypted_weights, true);
    // Final dense to 10 logits.
    let out = bsgs_matvec(&mut g, d1, 16, 64, encrypted_weights);
    let pooled = rotation_reduce(&mut g, out, 16);
    g.output(pooled);
    Benchmark {
        name,
        graph: g,
        n,
        deep: false,
    }
}

/// LoLa-CIFAR with unencrypted weights: 6 layers over 32x32x3 inputs;
/// much wider than MNIST (hundreds of diagonals per convolution), max
/// depth ~8 — the heaviest shallow benchmark (187 s on the CPU).
pub fn lola_cifar_uw() -> Benchmark {
    let n = 1 << 14;
    let mut g = HeGraph::new();
    let mut x = g.input(8);
    // Five convolution/dense layers (the wide early ones dominate) plus
    // the pooled output layer below; square activations after the first
    // two layers keep the whole network within the 8-level budget.
    let layer_diags = [3000usize, 3000, 1500, 800, 400];
    for (i, &diags) in layer_diags.iter().enumerate() {
        let activate = i < 2;
        let stride = 1i64 << i.min(3);
        x = lola_layer(&mut g, x, diags, stride, false, activate);
    }
    let pooled = rotation_reduce(&mut g, x, 64);
    g.output(pooled);
    Benchmark {
        name: "CIFAR Unencryp. Wghts.",
        graph: g,
        n,
        deep: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnist_variants_differ_only_in_weight_encryption() {
        let uw = lola_mnist_uw();
        let ew = lola_mnist_ew();
        let hu = uw.graph.op_histogram();
        let he = ew.graph.op_histogram();
        assert_eq!(hu.rotations, he.rotations);
        // Unencrypted weights: plaintext muls. Encrypted: ct muls.
        assert!(hu.plain_muls > he.plain_muls);
        assert!(he.ct_muls > hu.ct_muls);
        assert_eq!(hu.plain_muls + hu.ct_muls, he.plain_muls + he.ct_muls);
    }

    #[test]
    fn cifar_is_much_bigger_than_mnist() {
        let cifar = lola_cifar_uw();
        let mnist = lola_mnist_uw();
        assert!(cifar.graph.num_nodes() > 5 * mnist.graph.num_nodes());
    }

    #[test]
    fn no_bootstrapping_and_shallow() {
        for b in [lola_mnist_uw(), lola_mnist_ew(), lola_cifar_uw()] {
            assert_eq!(b.graph.op_histogram().mod_raises, 0);
            assert!(b.graph.max_level() <= 8);
            b.graph.validate();
        }
    }
}
