//! The two bootstrapping benchmarks (Sec. 8).

use cl_boot::BootstrapPlan;
use cl_isa::HeGraph;

use crate::Benchmark;

/// Fully packed bootstrapping: takes an `L = 3`, `N = 64K` ciphertext with
/// an exhausted budget, raises it to `L = 57`, and runs the full pipeline
/// over all 32K slots. This is the paper's headline bootstrapping
/// benchmark (3.91 ms on CraterLake vs 17.2 s on the CPU).
pub fn packed_bootstrapping() -> Benchmark {
    packed_bootstrapping_at(1 << 16, 57)
}

/// Packed bootstrapping at an arbitrary operating point (Table 5).
pub fn packed_bootstrapping_at(n: usize, l_max: usize) -> Benchmark {
    let plan = BootstrapPlan::packed(n, l_max);
    let mut g = HeGraph::new();
    let x = g.input(3);
    let refreshed = plan.append_to(&mut g, x);
    g.output(refreshed);
    Benchmark {
        name: "Packed Bootstrapping",
        graph: g,
        n,
        deep: true,
    }
}

/// Unpacked bootstrapping: a ciphertext packing a single element
/// (`L <= 23`). Shallower and cheaper per operation, but >1,000x worse per
/// slot — included because it is the bootstrapping benchmark F1 reported.
pub fn unpacked_bootstrapping() -> Benchmark {
    let n = 1 << 16;
    let plan = BootstrapPlan::unpacked(n, 23);
    let mut g = HeGraph::new();
    let x = g.input(3);
    let refreshed = plan.append_to(&mut g, x);
    g.output(refreshed);
    Benchmark {
        name: "Unpacked Bootstrapping",
        graph: g,
        n,
        deep: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_uses_full_budget() {
        let b = packed_bootstrapping();
        assert_eq!(b.graph.max_level(), 57);
        assert!(b.deep);
    }

    #[test]
    fn unpacked_is_much_smaller() {
        let p = packed_bootstrapping();
        let u = unpacked_bootstrapping();
        assert!(u.graph.num_nodes() * 3 < p.graph.num_nodes());
        assert!(u.graph.max_level() <= 23);
    }
}
