//! Shared homomorphic kernels the benchmarks are built from.

use cl_isa::{HeGraph, NodeId};

/// BSGS (baby-step/giant-step) matrix-vector product with `diags` nonzero
/// diagonals at stride `stride`: the standard kernel for linear layers
/// under CKKS packing. Consumes one level (the plaintext multiply +
/// rescale).
///
/// Rotation amounts are `stride·i` (baby) and `stride·baby·j` (giant), so
/// repeated invocations with the same geometry reuse all keyswitch hints.
///
/// # Panics
///
/// Panics if `diags == 0` or the input is at level 1 (no level to consume).
pub fn bsgs_matvec(
    g: &mut HeGraph,
    input: NodeId,
    diags: usize,
    stride: i64,
    weights_encrypted: bool,
) -> NodeId {
    bsgs_matvec_keyed(g, input, diags, stride, weights_encrypted, g.num_nodes() as u64)
}

/// Like [`bsgs_matvec`], but weight plaintexts are identified by
/// `weight_key`: invocations sharing the key (the same weight matrix, as in
/// an LSTM's recurrent weights or a repeated bootstrap matrix) share the
/// same plaintext values, so the machine's residency model sees their
/// reuse.
///
/// # Panics
///
/// Panics if `diags == 0` or the input is at level 1.
pub fn bsgs_matvec_keyed(
    g: &mut HeGraph,
    input: NodeId,
    diags: usize,
    stride: i64,
    weights_encrypted: bool,
    weight_key: u64,
) -> NodeId {
    assert!(diags > 0, "matrix with no diagonals");
    let level = g.node(input).level;
    assert!(level >= 2, "bsgs_matvec needs a level to consume");
    let baby = bsgs_baby_count(diags, level);
    let giant = diags.div_ceil(baby);
    let mut babies = vec![input];
    for i in 1..baby {
        babies.push(g.rotate(input, stride * i as i64));
    }
    let mut acc: Option<NodeId> = None;
    let mut diag_idx = 0u64;
    for j in 0..giant {
        let remaining = diags - j * baby;
        let mut inner: Option<NodeId> = None;
        for &b in babies.iter().take(remaining.min(baby)) {
            let term = if weights_encrypted {
                let w = g.input(level);
                g.mul_ct(b, w)
            } else {
                let w = g.plain_input_cached(weight_key.wrapping_mul(1_000_003) + diag_idx, level);
                g.mul_plain(b, w)
            };
            diag_idx += 1;
            inner = Some(match inner {
                None => term,
                Some(a) => g.add(a, term),
            });
        }
        let inner = inner.expect("giant step with no work");
        let rotated = if j == 0 {
            inner
        } else {
            g.rotate(inner, stride * (j * baby) as i64)
        };
        acc = Some(match acc {
            None => rotated,
            Some(a) => g.add(a, rotated),
        });
    }
    g.rescale(acc.expect("empty matvec"))
}

/// Baby-step count for a BSGS kernel: `sqrt(d)`, capped so the live baby
/// ciphertexts fit comfortably on chip (~96 MB of the 256 MB register
/// file) — the paper's compiler tiles transforms into partitions "small
/// enough to fit on chip" (Sec. 6) for exactly this reason.
pub fn bsgs_baby_count(diags: usize, level: usize) -> usize {
    let ct_bytes = 2 * level * (1usize << 16) * 28 / 8;
    let cap = ((96 << 20) / ct_bytes).max(2);
    ((diags as f64).sqrt().ceil() as usize).clamp(1, cap)
}

/// Evaluates a polynomial of multiplicative `depth` on a ciphertext by
/// repeated squaring and plaintext-coefficient folds — the structure of
/// CKKS activation-function approximations (e.g. the degree-3 sigmoid of
/// the LSTM benchmark at depth 2, or ResNet's composite ReLU
/// approximations at depth ~6). Consumes `depth` levels and performs
/// `depth` ciphertext multiplications.
///
/// # Panics
///
/// Panics if the input has fewer than `depth + 1` levels.
pub fn poly_eval(g: &mut HeGraph, input: NodeId, depth: usize) -> NodeId {
    let level = g.node(input).level;
    assert!(level > depth, "polynomial depth {depth} needs > {depth} levels");
    let mut cur = input;
    for step in 0..depth {
        let c = g.plain_input_cached(0xAC71_0000 + step as u64, g.node(cur).level);
        let lin = g.mul_plain(cur, c);
        let sq = g.mul_ct(lin, cur);
        // mul_plain and mul_ct both raise the scale; one rescale drops a
        // level (the compiler charges each op separately anyway).
        cur = g.rescale(sq);
    }
    cur
}

/// Log-depth rotation-and-add reduction over `width` packed elements
/// (sums across slots): `log2(width)` rotations, no level consumed.
///
/// # Panics
///
/// Panics if `width` is not a power of two.
pub fn rotation_reduce(g: &mut HeGraph, input: NodeId, width: usize) -> NodeId {
    assert!(width.is_power_of_two(), "reduction width must be a power of 2");
    let mut cur = input;
    let mut step = width / 2;
    while step >= 1 {
        let r = g.rotate(cur, step as i64);
        cur = g.add(cur, r);
        if step == 1 {
            break;
        }
        step /= 2;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bsgs_counts() {
        let mut g = HeGraph::new();
        let x = g.input(10);
        let out = bsgs_matvec(&mut g, x, 16, 1, false);
        assert_eq!(g.node(out).level, 9); // one level consumed
        let h = g.op_histogram();
        // baby = 4 => 3 baby rotations + 3 giant rotations.
        assert_eq!(h.rotations, 6);
        assert_eq!(h.plain_muls, 16);
        assert_eq!(h.plain_inputs, 16);
        g.validate();
    }

    #[test]
    fn bsgs_encrypted_weights_use_ct_muls() {
        let mut g = HeGraph::new();
        let x = g.input(8);
        bsgs_matvec(&mut g, x, 9, 2, true);
        let h = g.op_histogram();
        assert_eq!(h.ct_muls, 9);
        assert_eq!(h.plain_muls, 0);
        g.validate();
    }

    #[test]
    fn poly_eval_consumes_depth_levels() {
        let mut g = HeGraph::new();
        let x = g.input(10);
        let out = poly_eval(&mut g, x, 3);
        assert_eq!(g.node(out).level, 7);
        assert_eq!(g.op_histogram().ct_muls, 3);
        g.validate();
    }

    #[test]
    fn rotation_reduce_is_logarithmic() {
        let mut g = HeGraph::new();
        let x = g.input(5);
        let out = rotation_reduce(&mut g, x, 256);
        assert_eq!(g.op_histogram().rotations, 8);
        assert_eq!(g.node(out).level, 5);
        g.validate();
    }
}
