//! The paper's benchmark suite (Sec. 8) as HE dataflow-graph generators.
//!
//! Four deep benchmarks (high multiplicative depth, bootstrapping):
//! LSTM inference, ResNet-20 inference, HELR logistic-regression training,
//! and fully packed bootstrapping. Four shallow benchmarks (low depth, no
//! bootstrapping): unpacked bootstrapping and the three LoLa networks
//! (CIFAR with unencrypted weights, MNIST with unencrypted and encrypted
//! weights).
//!
//! Each generator reproduces the benchmark's *structure* — layer shapes,
//! BSGS matrix-vector kernels, activation-polynomial depths, bootstrap
//! placement and rotation-amount reuse — so the machine model sees the
//! same operation mix and keyswitch-hint locality the paper's workloads
//! exhibit. Exact op counts are parameterized and documented.

#![warn(missing_docs)]
// Library code must propagate failures (`FheResult`/`?`) or `expect` with
// the violated invariant; tests are exempt. Enforced by scripts/verify.sh.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod bootstrap_bench;
mod kernels;
mod lola;
mod logreg;
mod lstm;
mod resnet;
mod runnable;

pub use bootstrap_bench::{packed_bootstrapping, packed_bootstrapping_at, unpacked_bootstrapping};
pub use kernels::{bsgs_matvec, poly_eval, rotation_reduce};
pub use lola::{lola_cifar_uw, lola_mnist_ew, lola_mnist_uw};
pub use logreg::{logistic_regression, logistic_regression_at};
pub use lstm::{lstm, lstm_at};
pub use resnet::{resnet20, resnet20_at};
pub use runnable::{eval_plain, lola_layer_runnable, RunnableWorkload};

use cl_isa::HeGraph;

/// A benchmark instance: its graph plus the parameters the compiler needs.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Display name matching the paper's tables.
    pub name: &'static str,
    /// The homomorphic dataflow graph.
    pub graph: HeGraph,
    /// Ring degree.
    pub n: usize,
    /// Whether this counts as a deep benchmark (Table 3's grouping).
    pub deep: bool,
}

/// All eight benchmarks in Table 3 order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        resnet20(),
        logistic_regression(),
        lstm(),
        packed_bootstrapping(),
        unpacked_bootstrapping(),
        lola_cifar_uw(),
        lola_mnist_uw(),
        lola_mnist_ew(),
    ]
}

/// The deep benchmarks only.
pub fn deep_benchmarks() -> Vec<Benchmark> {
    all_benchmarks().into_iter().filter(|b| b.deep).collect()
}

/// The deep benchmarks regenerated at a different operating point
/// (ring degree and maximum budget) — the Table 5 security sweep.
pub fn deep_benchmarks_at(n: usize, l_max: usize) -> Vec<Benchmark> {
    vec![
        resnet20_at(n, l_max),
        logistic_regression_at(n, l_max),
        lstm_at(n, l_max),
        packed_bootstrapping_at(n, l_max),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_validate() {
        for b in all_benchmarks() {
            let nodes = b.graph.validate();
            assert!(nodes > 0, "{} is empty", b.name);
            assert!(b.n.is_power_of_two());
        }
    }

    #[test]
    fn deep_benchmarks_bootstrap_shallow_do_not() {
        for b in all_benchmarks() {
            let raises = b.graph.op_histogram().mod_raises;
            if b.deep {
                assert!(raises > 0, "{} should bootstrap", b.name);
            } else if b.name.contains("Bootstrapping") {
                assert!(raises > 0);
            } else {
                assert_eq!(raises, 0, "{} should not bootstrap", b.name);
            }
        }
    }

    #[test]
    fn table3_grouping() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 8);
        assert_eq!(deep_benchmarks().len(), 4);
        assert_eq!(all[0].name, "ResNet-20");
        assert_eq!(all[4].name, "Unpacked Bootstrapping");
    }

    #[test]
    fn deep_benchmarks_reach_high_levels() {
        for b in deep_benchmarks() {
            assert!(
                b.graph.max_level() >= 50,
                "{} max level {}",
                b.name,
                b.graph.max_level()
            );
        }
    }

    #[test]
    fn shallow_benchmarks_stay_shallow() {
        for b in all_benchmarks() {
            if !b.deep && !b.name.contains("Bootstrapping") {
                assert!(
                    b.graph.max_level() <= 8,
                    "{} max level {}",
                    b.name,
                    b.graph.max_level()
                );
            }
        }
    }
}
