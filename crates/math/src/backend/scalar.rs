//! Portable scalar kernels — the semantic reference for every backend.
//!
//! These are the exact loops the pre-backend code ran element-at-a-time;
//! the vector backends must match them word-for-word on canonical outputs
//! and bound-for-bound on lazy outputs.

use crate::{Modulus, NttTable};

pub(crate) fn add_mod_slice(m: &Modulus, a: &mut [u64], b: &[u64]) {
    for (x, &y) in a.iter_mut().zip(b) {
        *x = m.add(*x, y);
    }
}

pub(crate) fn sub_mod_slice(m: &Modulus, a: &mut [u64], b: &[u64]) {
    for (x, &y) in a.iter_mut().zip(b) {
        *x = m.sub(*x, y);
    }
}

pub(crate) fn neg_mod_slice(m: &Modulus, a: &mut [u64]) {
    for x in a.iter_mut() {
        *x = m.neg(*x);
    }
}

pub(crate) fn mul_mod_slice(m: &Modulus, a: &mut [u64], b: &[u64]) {
    for (x, &y) in a.iter_mut().zip(b) {
        *x = m.mul(*x, y);
    }
}

pub(crate) fn mul_acc_mod_slice(m: &Modulus, acc: &mut [u64], a: &[u64], b: &[u64]) {
    for ((acc, &x), &y) in acc.iter_mut().zip(a).zip(b) {
        *acc = m.add(*acc, m.mul(x, y));
    }
}

pub(crate) fn mul_scalar_shoup_slice(m: &Modulus, a: &mut [u64], w: u64, w_shoup: u64) {
    let q = m.value();
    for x in a.iter_mut() {
        let mut v = m.mul_shoup_lazy(*x, w, w_shoup);
        if v >= q {
            v -= q;
        }
        *x = v;
    }
}

pub(crate) fn mul_shoup_lazy_acc_slice(m: &Modulus, acc: &mut [u64], x: &[u64], w: u64, w_shoup: u64) {
    for (acc, &xi) in acc.iter_mut().zip(x) {
        *acc = m.reduce_lazy(m.add_lazy(*acc, m.mul_shoup_lazy(xi, w, w_shoup)));
    }
}

pub(crate) fn mul_shoup_sub_correct_slice(m: &Modulus, out: &mut [u64], alpha: &[u64], w: u64, w_shoup: u64) {
    let two_q = m.two_q();
    for (o, &al) in out.iter_mut().zip(alpha) {
        let v = m.mul_shoup_lazy(al, w, w_shoup);
        *o = m.correct_lazy(*o + two_q - v);
    }
}

pub(crate) fn correct_lazy_slice(m: &Modulus, a: &mut [u64]) {
    for x in a.iter_mut() {
        *x = m.correct_lazy(*x);
    }
}

pub(crate) fn reduce_raw_slice(m: &Modulus, a: &mut [u64]) {
    for x in a.iter_mut() {
        *x = m.reduce(*x);
    }
}

pub(crate) fn gather_slice(out: &mut [u64], src: &[u64], perm: &[u32]) {
    for (dst, &s) in out.iter_mut().zip(perm) {
        *dst = src[s as usize];
    }
}

pub(crate) fn gather_mul_acc_slice(m: &Modulus, acc: &mut [u64], src: &[u64], perm: &[u32], b: &[u64]) {
    for ((acc, &s), &y) in acc.iter_mut().zip(perm).zip(b) {
        *acc = m.add(*acc, m.mul(src[s as usize], y));
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn gather_mul_acc_pair_slice(
    m: &Modulus,
    acc0: &mut [u64],
    acc1: &mut [u64],
    src: &[u64],
    perm: &[u32],
    b0: &[u64],
    b1: &[u64],
) {
    for i in 0..perm.len() {
        let v = src[perm[i] as usize];
        acc0[i] = m.add(acc0[i], m.mul(v, b0[i]));
        acc1[i] = m.add(acc1[i], m.mul(v, b1[i]));
    }
}

/// Forward lazy NTT (Cooley-Tukey DIT, Harvey lazy reduction), canonical
/// output. This is the pre-backend `NttTable::forward` body verbatim.
pub(crate) fn ntt_forward(table: &NttTable, a: &mut [u64]) {
    let m = table.modulus();
    let two_q = m.two_q();
    let n = table.n();
    let root_pows = table.root_pows();
    let root_pows_shoup = table.root_pows_shoup();
    let mut t = n;
    let mut len = 1usize;
    while len < n {
        t >>= 1;
        for i in 0..len {
            // SAFETY: len + i < 2*len <= n == root_pows.len().
            let (w, ws) = unsafe {
                (
                    *root_pows.get_unchecked(len + i),
                    *root_pows_shoup.get_unchecked(len + i),
                )
            };
            let j0 = 2 * i * t;
            for j in j0..j0 + t {
                // SAFETY: j + t <= j0 + 2t - 1 = (2i + 2)t - 1 < 2*len*t = n.
                unsafe {
                    let mut x = *a.get_unchecked(j);
                    if x >= two_q {
                        x -= two_q;
                    }
                    let v = m.mul_shoup_lazy(*a.get_unchecked(j + t), w, ws);
                    *a.get_unchecked_mut(j) = x + v;
                    *a.get_unchecked_mut(j + t) = x + two_q - v;
                }
            }
        }
        len <<= 1;
    }
    correct_lazy_slice(m, a);
}

/// Inverse lazy NTT (Gentleman-Sande DIF, Harvey lazy reduction) including
/// the `n^{-1}` sweep, canonical output. Pre-backend `NttTable::inverse`.
pub(crate) fn ntt_inverse(table: &NttTable, a: &mut [u64]) {
    let m = table.modulus();
    let two_q = m.two_q();
    let n = table.n();
    let inv_root_pows = table.inv_root_pows();
    let inv_root_pows_shoup = table.inv_root_pows_shoup();
    let mut t = 1usize;
    let mut len = n >> 1;
    while len >= 1 {
        let mut j0 = 0usize;
        for i in 0..len {
            // SAFETY: len + i < 2*len <= n == inv_root_pows.len().
            let (w, ws) = unsafe {
                (
                    *inv_root_pows.get_unchecked(len + i),
                    *inv_root_pows_shoup.get_unchecked(len + i),
                )
            };
            for j in j0..j0 + t {
                // SAFETY: the stage partitions [0, n) into disjoint
                // (j, j + t) pairs, so j + t < n.
                unsafe {
                    let u = *a.get_unchecked(j);
                    let v = *a.get_unchecked(j + t);
                    let mut s = u + v;
                    if s >= two_q {
                        s -= two_q;
                    }
                    *a.get_unchecked_mut(j) = s;
                    *a.get_unchecked_mut(j + t) = m.mul_shoup_lazy(u + two_q - v, w, ws);
                }
            }
            j0 += 2 * t;
        }
        t <<= 1;
        len >>= 1;
    }
    mul_scalar_shoup_slice(m, a, table.n_inv(), table.n_inv_shoup());
}
