//! AVX2 kernels: 4 residues per instruction.
//!
//! AVX2 has no 64-bit unsigned compare, no 64-bit full multiply, and no
//! 512-bit registers, so these kernels build everything from `vpmuludq`
//! 32×32→64 partial products, sign-flipped signed compares, and 128-bit lane
//! shuffles. They run the exact scalar algorithms lane-parallel, so even
//! lazy intermediates match the scalar backend word-for-word.

#![allow(clippy::missing_safety_doc)] // SAFETY contracts are on the `unsafe` blocks

use core::arch::x86_64::*;

use super::scalar;
use crate::{Modulus, NttTable};

const LANES: usize = 4;

// ---------------------------------------------------------------------------
// Element helpers.
// ---------------------------------------------------------------------------

#[inline]
#[target_feature(enable = "avx2")]
fn splat(x: u64) -> __m256i {
    _mm256_set1_epi64x(x as i64)
}

#[inline]
#[target_feature(enable = "avx2")]
fn sign_bit() -> __m256i {
    splat(1u64 << 63)
}

/// Subtracts `b` from lanes where `x >= b` (unsigned, via sign-flipped signed
/// compare). `bs` must be `b ^ sign_bit()`.
#[inline]
#[target_feature(enable = "avx2")]
fn cond_sub(x: __m256i, b: __m256i, bs: __m256i, sign: __m256i) -> __m256i {
    let xs = _mm256_xor_si256(x, sign);
    let lt = _mm256_cmpgt_epi64(bs, xs); // b > x (unsigned)
    _mm256_sub_epi64(x, _mm256_andnot_si256(lt, b))
}

/// High 64 bits of the unsigned 64×64 product via four 32×32 partials.
#[inline]
#[target_feature(enable = "avx2")]
fn mulhi64(a: __m256i, b: __m256i) -> __m256i {
    let mask32 = splat(0xffff_ffff);
    let a_hi = _mm256_srli_epi64::<32>(a);
    let b_hi = _mm256_srli_epi64::<32>(b);
    let ll = _mm256_mul_epu32(a, b);
    let lh = _mm256_mul_epu32(a, b_hi);
    let hl = _mm256_mul_epu32(a_hi, b);
    let hh = _mm256_mul_epu32(a_hi, b_hi);
    let cross = _mm256_add_epi64(hl, _mm256_srli_epi64::<32>(ll));
    let cross2 = _mm256_add_epi64(lh, _mm256_and_si256(cross, mask32));
    _mm256_add_epi64(
        hh,
        _mm256_add_epi64(_mm256_srli_epi64::<32>(cross), _mm256_srli_epi64::<32>(cross2)),
    )
}

/// Low 64 bits of the unsigned 64×64 product.
#[inline]
#[target_feature(enable = "avx2")]
fn mullo64(a: __m256i, b: __m256i) -> __m256i {
    let a_hi = _mm256_srli_epi64::<32>(a);
    let b_hi = _mm256_srli_epi64::<32>(b);
    let ll = _mm256_mul_epu32(a, b);
    let mid = _mm256_add_epi64(_mm256_mul_epu32(a, b_hi), _mm256_mul_epu32(a_hi, b));
    _mm256_add_epi64(ll, _mm256_slli_epi64::<32>(mid))
}

/// Shoup product without correction: `a*w - floor(a*ws / 2^64) * q` in
/// `[0, 2q)` for any `a` — the scalar `mul_shoup_lazy`, lane-parallel.
#[inline]
#[target_feature(enable = "avx2")]
fn mul_shoup_lazy_v(a: __m256i, w: __m256i, ws: __m256i, q: __m256i) -> __m256i {
    let hi = mulhi64(a, ws);
    _mm256_sub_epi64(mullo64(a, w), mullo64(hi, q))
}

/// Broadcast constants for lane-parallel Barrett reduction (same derivation
/// as the AVX-512 backend: quotient seed `x >> (k-1)`, `mu = floor(2^2k/q)`,
/// remainder below `3q`).
#[derive(Clone, Copy)]
struct Barrett {
    q: __m256i,
    q_s: __m256i,
    two_q: __m256i,
    two_q_s: __m256i,
    sign: __m256i,
    mu: __m256i,
    sh_lo: __m256i,
    sh_hi: __m256i,
    sh_qlo: __m256i,
    sh_qhi: __m256i,
}

#[inline]
#[target_feature(enable = "avx2")]
fn barrett(m: &Modulus) -> Barrett {
    let k = m.barrett_k() as u64;
    let sign = sign_bit();
    let q = splat(m.value());
    let two_q = splat(m.two_q());
    Barrett {
        q,
        q_s: _mm256_xor_si256(q, sign),
        two_q,
        two_q_s: _mm256_xor_si256(two_q, sign),
        sign,
        mu: splat(m.barrett_mu()),
        sh_lo: splat(k - 1),
        sh_hi: splat(65 - k),
        sh_qlo: splat(k + 1),
        sh_qhi: splat(63 - k),
    }
}

/// Canonical product `a * b mod q` for canonical lanes.
#[inline]
#[target_feature(enable = "avx2")]
fn barrett_mul(c: Barrett, a: __m256i, b: __m256i) -> __m256i {
    let lo = mullo64(a, b);
    let hi = mulhi64(a, b);
    let c1 = _mm256_or_si256(_mm256_sllv_epi64(hi, c.sh_hi), _mm256_srlv_epi64(lo, c.sh_lo));
    let mlo = mullo64(c1, c.mu);
    let mhi = mulhi64(c1, c.mu);
    let qhat = _mm256_or_si256(_mm256_sllv_epi64(mhi, c.sh_qhi), _mm256_srlv_epi64(mlo, c.sh_qlo));
    let r = _mm256_sub_epi64(lo, mullo64(qhat, c.q));
    let r = cond_sub(r, c.two_q, c.two_q_s, c.sign);
    cond_sub(r, c.q, c.q_s, c.sign)
}

#[inline]
#[target_feature(enable = "avx2")]
fn add_mod_v(c: Barrett, a: __m256i, b: __m256i) -> __m256i {
    cond_sub(_mm256_add_epi64(a, b), c.q, c.q_s, c.sign)
}

// ---------------------------------------------------------------------------
// Slice kernels.
// ---------------------------------------------------------------------------

#[target_feature(enable = "avx2")]
pub(crate) fn add_mod_slice(m: &Modulus, a: &mut [u64], b: &[u64]) {
    let c = barrett(m);
    let n = a.len() - a.len() % LANES;
    let (pa, pb) = (a.as_mut_ptr(), b.as_ptr());
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= a.len() == b.len().
        unsafe {
            let x = _mm256_loadu_si256(pa.add(i).cast());
            let y = _mm256_loadu_si256(pb.add(i).cast());
            _mm256_storeu_si256(pa.add(i).cast(), add_mod_v(c, x, y));
        }
    }
    scalar::add_mod_slice(m, &mut a[n..], &b[n..]);
}

#[target_feature(enable = "avx2")]
pub(crate) fn sub_mod_slice(m: &Modulus, a: &mut [u64], b: &[u64]) {
    let c = barrett(m);
    let n = a.len() - a.len() % LANES;
    let (pa, pb) = (a.as_mut_ptr(), b.as_ptr());
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= a.len() == b.len().
        unsafe {
            let x = _mm256_loadu_si256(pa.add(i).cast());
            let y = _mm256_loadu_si256(pb.add(i).cast());
            let r = _mm256_sub_epi64(_mm256_add_epi64(x, c.q), y);
            _mm256_storeu_si256(pa.add(i).cast(), cond_sub(r, c.q, c.q_s, c.sign));
        }
    }
    scalar::sub_mod_slice(m, &mut a[n..], &b[n..]);
}

#[target_feature(enable = "avx2")]
pub(crate) fn neg_mod_slice(m: &Modulus, a: &mut [u64]) {
    let c = barrett(m);
    let n = a.len() - a.len() % LANES;
    let pa = a.as_mut_ptr();
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= a.len().
        unsafe {
            let x = _mm256_loadu_si256(pa.add(i).cast());
            let r = _mm256_sub_epi64(c.q, x);
            _mm256_storeu_si256(pa.add(i).cast(), cond_sub(r, c.q, c.q_s, c.sign));
        }
    }
    scalar::neg_mod_slice(m, &mut a[n..]);
}

#[target_feature(enable = "avx2")]
pub(crate) fn mul_mod_slice(m: &Modulus, a: &mut [u64], b: &[u64]) {
    let c = barrett(m);
    let n = a.len() - a.len() % LANES;
    let (pa, pb) = (a.as_mut_ptr(), b.as_ptr());
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= a.len() == b.len().
        unsafe {
            let x = _mm256_loadu_si256(pa.add(i).cast());
            let y = _mm256_loadu_si256(pb.add(i).cast());
            _mm256_storeu_si256(pa.add(i).cast(), barrett_mul(c, x, y));
        }
    }
    scalar::mul_mod_slice(m, &mut a[n..], &b[n..]);
}

#[target_feature(enable = "avx2")]
pub(crate) fn mul_acc_mod_slice(m: &Modulus, acc: &mut [u64], a: &[u64], b: &[u64]) {
    let c = barrett(m);
    let n = acc.len() - acc.len() % LANES;
    let (pacc, pa, pb) = (acc.as_mut_ptr(), a.as_ptr(), b.as_ptr());
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n and all three slices have equal length.
        unsafe {
            let s = _mm256_loadu_si256(pacc.add(i).cast());
            let x = _mm256_loadu_si256(pa.add(i).cast());
            let y = _mm256_loadu_si256(pb.add(i).cast());
            let p = barrett_mul(c, x, y);
            _mm256_storeu_si256(pacc.add(i).cast(), add_mod_v(c, s, p));
        }
    }
    scalar::mul_acc_mod_slice(m, &mut acc[n..], &a[n..], &b[n..]);
}

/// Reduces arbitrary `u64` words into canonical `[0, q)`.
///
/// Quotient estimate with `minv = floor(2^64 / q)`: `qhat = mulhi64(x, minv)`
/// underestimates `floor(x/q)` by at most 1 (the discarded term
/// `x * (2^64 mod q) / (q * 2^64)` is below 1), so `x - qhat*q < 2q` and one
/// conditional subtract canonicalizes. The word-sized `barrett_mu` constant
/// cannot be used here: it only bounds inputs below `2^{2k}`, which is less
/// than `2^64` for small moduli.
#[target_feature(enable = "avx2")]
pub(crate) fn reduce_raw_slice(m: &Modulus, a: &mut [u64]) {
    let minv = ((1u128 << 64) / m.value() as u128) as u64;
    let sign = sign_bit();
    let q = splat(m.value());
    let q_s = _mm256_xor_si256(q, sign);
    let vminv = splat(minv);
    let n = a.len() - a.len() % LANES;
    let pa = a.as_mut_ptr();
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= a.len().
        unsafe {
            let x = _mm256_loadu_si256(pa.add(i).cast());
            let qhat = mulhi64(x, vminv);
            let r = _mm256_sub_epi64(x, mullo64(qhat, q));
            _mm256_storeu_si256(pa.add(i).cast(), cond_sub(r, q, q_s, sign));
        }
    }
    scalar::reduce_raw_slice(m, &mut a[n..]);
}

#[target_feature(enable = "avx2")]
pub(crate) fn mul_scalar_shoup_slice(m: &Modulus, a: &mut [u64], w: u64, w_shoup: u64) {
    let c = barrett(m);
    let wv = splat(w);
    let wsv = splat(w_shoup);
    let n = a.len() - a.len() % LANES;
    let pa = a.as_mut_ptr();
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= a.len().
        unsafe {
            let x = _mm256_loadu_si256(pa.add(i).cast());
            let v = mul_shoup_lazy_v(x, wv, wsv, c.q);
            _mm256_storeu_si256(pa.add(i).cast(), cond_sub(v, c.q, c.q_s, c.sign));
        }
    }
    scalar::mul_scalar_shoup_slice(m, &mut a[n..], w, w_shoup);
}

#[target_feature(enable = "avx2")]
pub(crate) fn mul_shoup_lazy_acc_slice(m: &Modulus, acc: &mut [u64], x: &[u64], w: u64, w_shoup: u64) {
    let c = barrett(m);
    let wv = splat(w);
    let wsv = splat(w_shoup);
    let n = acc.len() - acc.len() % LANES;
    let (pacc, px) = (acc.as_mut_ptr(), x.as_ptr());
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= acc.len() == x.len().
        unsafe {
            let s = _mm256_loadu_si256(pacc.add(i).cast());
            let xi = _mm256_loadu_si256(px.add(i).cast());
            let v = mul_shoup_lazy_v(xi, wv, wsv, c.q);
            let r = cond_sub(_mm256_add_epi64(s, v), c.two_q, c.two_q_s, c.sign);
            _mm256_storeu_si256(pacc.add(i).cast(), r);
        }
    }
    scalar::mul_shoup_lazy_acc_slice(m, &mut acc[n..], &x[n..], w, w_shoup);
}

#[target_feature(enable = "avx2")]
pub(crate) fn mul_shoup_sub_correct_slice(m: &Modulus, out: &mut [u64], alpha: &[u64], w: u64, w_shoup: u64) {
    let c = barrett(m);
    let wv = splat(w);
    let wsv = splat(w_shoup);
    let n = out.len() - out.len() % LANES;
    let (po, pal) = (out.as_mut_ptr(), alpha.as_ptr());
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= out.len() == alpha.len().
        unsafe {
            let o = _mm256_loadu_si256(po.add(i).cast());
            let al = _mm256_loadu_si256(pal.add(i).cast());
            let v = mul_shoup_lazy_v(al, wv, wsv, c.q);
            let r = _mm256_sub_epi64(_mm256_add_epi64(o, c.two_q), v);
            let r = cond_sub(r, c.two_q, c.two_q_s, c.sign);
            _mm256_storeu_si256(po.add(i).cast(), cond_sub(r, c.q, c.q_s, c.sign));
        }
    }
    scalar::mul_shoup_sub_correct_slice(m, &mut out[n..], &alpha[n..], w, w_shoup);
}

#[target_feature(enable = "avx2")]
pub(crate) fn correct_lazy_slice(m: &Modulus, a: &mut [u64]) {
    let c = barrett(m);
    let n = a.len() - a.len() % LANES;
    let pa = a.as_mut_ptr();
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= a.len().
        unsafe {
            let x = _mm256_loadu_si256(pa.add(i).cast());
            let r = cond_sub(x, c.two_q, c.two_q_s, c.sign);
            _mm256_storeu_si256(pa.add(i).cast(), cond_sub(r, c.q, c.q_s, c.sign));
        }
    }
    scalar::correct_lazy_slice(m, &mut a[n..]);
}

#[target_feature(enable = "avx2")]
pub(crate) fn gather_slice(out: &mut [u64], src: &[u64], perm: &[u32]) {
    let n = out.len() - out.len() % LANES;
    let (po, pp) = (out.as_mut_ptr(), perm.as_ptr());
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= out.len() == perm.len(); every perm value
        // indexes src (AutomorphismTable construction invariant).
        unsafe {
            let idx = _mm_loadu_si128(pp.add(i).cast());
            let v = _mm256_i32gather_epi64::<8>(src.as_ptr().cast(), idx);
            _mm256_storeu_si256(po.add(i).cast(), v);
        }
    }
    scalar::gather_slice(&mut out[n..], src, &perm[n..]);
}

#[target_feature(enable = "avx2")]
pub(crate) fn gather_mul_acc_slice(m: &Modulus, acc: &mut [u64], src: &[u64], perm: &[u32], b: &[u64]) {
    let c = barrett(m);
    let n = acc.len() - acc.len() % LANES;
    let (pacc, pp, pb) = (acc.as_mut_ptr(), perm.as_ptr(), b.as_ptr());
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n; slice lengths asserted equal by the
        // dispatcher; perm values index src by table construction.
        unsafe {
            let idx = _mm_loadu_si128(pp.add(i).cast());
            let v = _mm256_i32gather_epi64::<8>(src.as_ptr().cast(), idx);
            let y = _mm256_loadu_si256(pb.add(i).cast());
            let s = _mm256_loadu_si256(pacc.add(i).cast());
            let p = barrett_mul(c, v, y);
            _mm256_storeu_si256(pacc.add(i).cast(), add_mod_v(c, s, p));
        }
    }
    scalar::gather_mul_acc_slice(m, &mut acc[n..], src, &perm[n..], &b[n..]);
}

#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
pub(crate) fn gather_mul_acc_pair_slice(
    m: &Modulus,
    acc0: &mut [u64],
    acc1: &mut [u64],
    src: &[u64],
    perm: &[u32],
    b0: &[u64],
    b1: &[u64],
) {
    let c = barrett(m);
    let n = acc0.len() - acc0.len() % LANES;
    let (pa0, pa1, pp, pb0, pb1) = (
        acc0.as_mut_ptr(),
        acc1.as_mut_ptr(),
        perm.as_ptr(),
        b0.as_ptr(),
        b1.as_ptr(),
    );
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n; slice lengths asserted equal by the
        // dispatcher; perm values index src by table construction.
        unsafe {
            let idx = _mm_loadu_si128(pp.add(i).cast());
            let v = _mm256_i32gather_epi64::<8>(src.as_ptr().cast(), idx);
            let y0 = _mm256_loadu_si256(pb0.add(i).cast());
            let y1 = _mm256_loadu_si256(pb1.add(i).cast());
            let s0 = _mm256_loadu_si256(pa0.add(i).cast());
            let s1 = _mm256_loadu_si256(pa1.add(i).cast());
            _mm256_storeu_si256(pa0.add(i).cast(), add_mod_v(c, s0, barrett_mul(c, v, y0)));
            _mm256_storeu_si256(pa1.add(i).cast(), add_mod_v(c, s1, barrett_mul(c, v, y1)));
        }
    }
    scalar::gather_mul_acc_pair_slice(m, &mut acc0[n..], &mut acc1[n..], src, &perm[n..], &b0[n..], &b1[n..]);
}

// ---------------------------------------------------------------------------
// NTT: greedy multi-stage drivers + fused sub-vector tail/head.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
struct NttConsts {
    q: __m256i,
    q_s: __m256i,
    two_q: __m256i,
    two_q_s: __m256i,
    sign: __m256i,
}

#[inline]
#[target_feature(enable = "avx2")]
fn ntt_consts(m: &Modulus) -> NttConsts {
    let sign = sign_bit();
    let q = splat(m.value());
    let two_q = splat(m.two_q());
    NttConsts {
        q,
        q_s: _mm256_xor_si256(q, sign),
        two_q,
        two_q_s: _mm256_xor_si256(two_q, sign),
        sign,
    }
}

/// Forward butterfly: operands in `[0, 4q)`, outputs in `[0, 4q)`.
#[inline]
#[target_feature(enable = "avx2")]
fn fwd_butterfly(c: NttConsts, x: __m256i, y: __m256i, w: __m256i, ws: __m256i) -> (__m256i, __m256i) {
    let xr = cond_sub(x, c.two_q, c.two_q_s, c.sign);
    let v = mul_shoup_lazy_v(y, w, ws, c.q);
    (
        _mm256_add_epi64(xr, v),
        _mm256_sub_epi64(_mm256_add_epi64(xr, c.two_q), v),
    )
}

/// Inverse butterfly: operands in `[0, 2q)`, outputs in `[0, 2q)`.
#[inline]
#[target_feature(enable = "avx2")]
fn inv_butterfly(c: NttConsts, u: __m256i, v: __m256i, w: __m256i, ws: __m256i) -> (__m256i, __m256i) {
    let s = cond_sub(_mm256_add_epi64(u, v), c.two_q, c.two_q_s, c.sign);
    let d = _mm256_sub_epi64(_mm256_add_epi64(u, c.two_q), v);
    (s, mul_shoup_lazy_v(d, w, ws, c.q))
}

/// One stage's broadcast twiddle pair, pre-splat so the fused multi-stage
/// passes load each table entry once per tile instead of once per vector.
#[derive(Clone, Copy)]
struct Tw {
    w: __m256i,
    ws: __m256i,
}

#[inline]
#[target_feature(enable = "avx2")]
fn load_tw(tw: &[u64], tws: &[u64], k: usize) -> Tw {
    Tw {
        w: splat(tw[k]),
        ws: splat(tws[k]),
    }
}

/// One butterfly group with stride `t >= LANES`: `x`/`y` point at the two
/// disjoint `t`-element halves, single twiddle.
///
/// # Safety
///
/// `x` and `y` must each be valid for `t` reads/writes and must not overlap.
#[target_feature(enable = "avx2")]
unsafe fn fwd_pass_large(c: NttConsts, x: *mut u64, y: *mut u64, t: usize, wt: Tw) {
    debug_assert!(t.is_multiple_of(LANES));
    for j in (0..t).step_by(LANES) {
        // SAFETY: j + LANES <= t; caller guarantees both ranges valid.
        unsafe {
            let xv = _mm256_loadu_si256(x.add(j).cast());
            let yv = _mm256_loadu_si256(y.add(j).cast());
            let (nx, ny) = fwd_butterfly(c, xv, yv, wt.w, wt.ws);
            _mm256_storeu_si256(x.add(j).cast(), nx);
            _mm256_storeu_si256(y.add(j).cast(), ny);
        }
    }
}

/// Two fused forward stages over one stage-A group of `2t` elements held in
/// registers: stage A pairs quarters `(0,2)`/`(1,3)` at stride `t`, stage B
/// finishes both halves at stride `t/2` — half the loads/stores of two
/// separate passes.
///
/// # Safety
///
/// `p` must be valid for `2t` reads/writes; `t >= 2 * LANES`.
#[target_feature(enable = "avx2")]
unsafe fn fwd_pass_large2(c: NttConsts, p: *mut u64, t: usize, wa: Tw, wb0: Tw, wb1: Tw) {
    let h = t / 2;
    debug_assert!(h.is_multiple_of(LANES));
    for j in (0..h).step_by(LANES) {
        // SAFETY: j + t + h + LANES <= 2t; the four quarter slots are
        // disjoint in-bounds ranges of the caller-guaranteed 2t span.
        unsafe {
            let mut v0 = _mm256_loadu_si256(p.add(j).cast());
            let mut v1 = _mm256_loadu_si256(p.add(j + h).cast());
            let mut v2 = _mm256_loadu_si256(p.add(j + t).cast());
            let mut v3 = _mm256_loadu_si256(p.add(j + t + h).cast());
            (v0, v2) = fwd_butterfly(c, v0, v2, wa.w, wa.ws);
            (v1, v3) = fwd_butterfly(c, v1, v3, wa.w, wa.ws);
            (v0, v1) = fwd_butterfly(c, v0, v1, wb0.w, wb0.ws);
            (v2, v3) = fwd_butterfly(c, v2, v3, wb1.w, wb1.ws);
            _mm256_storeu_si256(p.add(j).cast(), v0);
            _mm256_storeu_si256(p.add(j + h).cast(), v1);
            _mm256_storeu_si256(p.add(j + t).cast(), v2);
            _mm256_storeu_si256(p.add(j + t + h).cast(), v3);
        }
    }
}

/// Three fused forward stages over one stage-A group of `8e` elements
/// (`e` = the stage-C stride `lt/4`): stage A at stride `4e`, stage B at
/// `2e`, stage C at `e`, all on eight vectors held in registers.
///
/// # Safety
///
/// `p` must be valid for `8e` reads/writes; `e >= LANES`.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
unsafe fn fwd_pass_large3(
    c: NttConsts,
    p: *mut u64,
    e: usize,
    wa: Tw,
    wb0: Tw,
    wb1: Tw,
    wc0: Tw,
    wc1: Tw,
    wc2: Tw,
    wc3: Tw,
) {
    debug_assert!(e.is_multiple_of(LANES));
    for j in (0..e).step_by(LANES) {
        // SAFETY: j + 7e + LANES <= 8e; eight disjoint in-bounds octants.
        unsafe {
            let mut v0 = _mm256_loadu_si256(p.add(j).cast());
            let mut v1 = _mm256_loadu_si256(p.add(j + e).cast());
            let mut v2 = _mm256_loadu_si256(p.add(j + 2 * e).cast());
            let mut v3 = _mm256_loadu_si256(p.add(j + 3 * e).cast());
            let mut v4 = _mm256_loadu_si256(p.add(j + 4 * e).cast());
            let mut v5 = _mm256_loadu_si256(p.add(j + 5 * e).cast());
            let mut v6 = _mm256_loadu_si256(p.add(j + 6 * e).cast());
            let mut v7 = _mm256_loadu_si256(p.add(j + 7 * e).cast());
            (v0, v4) = fwd_butterfly(c, v0, v4, wa.w, wa.ws);
            (v1, v5) = fwd_butterfly(c, v1, v5, wa.w, wa.ws);
            (v2, v6) = fwd_butterfly(c, v2, v6, wa.w, wa.ws);
            (v3, v7) = fwd_butterfly(c, v3, v7, wa.w, wa.ws);
            (v0, v2) = fwd_butterfly(c, v0, v2, wb0.w, wb0.ws);
            (v1, v3) = fwd_butterfly(c, v1, v3, wb0.w, wb0.ws);
            (v4, v6) = fwd_butterfly(c, v4, v6, wb1.w, wb1.ws);
            (v5, v7) = fwd_butterfly(c, v5, v7, wb1.w, wb1.ws);
            (v0, v1) = fwd_butterfly(c, v0, v1, wc0.w, wc0.ws);
            (v2, v3) = fwd_butterfly(c, v2, v3, wc1.w, wc1.ws);
            (v4, v5) = fwd_butterfly(c, v4, v5, wc2.w, wc2.ws);
            (v6, v7) = fwd_butterfly(c, v6, v7, wc3.w, wc3.ws);
            _mm256_storeu_si256(p.add(j).cast(), v0);
            _mm256_storeu_si256(p.add(j + e).cast(), v1);
            _mm256_storeu_si256(p.add(j + 2 * e).cast(), v2);
            _mm256_storeu_si256(p.add(j + 3 * e).cast(), v3);
            _mm256_storeu_si256(p.add(j + 4 * e).cast(), v4);
            _mm256_storeu_si256(p.add(j + 5 * e).cast(), v5);
            _mm256_storeu_si256(p.add(j + 6 * e).cast(), v6);
            _mm256_storeu_si256(p.add(j + 7 * e).cast(), v7);
        }
    }
}

/// # Safety
///
/// As [`fwd_pass_large`].
#[target_feature(enable = "avx2")]
unsafe fn inv_pass_large(c: NttConsts, x: *mut u64, y: *mut u64, t: usize, wt: Tw) {
    debug_assert!(t.is_multiple_of(LANES));
    for j in (0..t).step_by(LANES) {
        // SAFETY: j + LANES <= t; caller guarantees both ranges valid.
        unsafe {
            let xv = _mm256_loadu_si256(x.add(j).cast());
            let yv = _mm256_loadu_si256(y.add(j).cast());
            let (nx, ny) = inv_butterfly(c, xv, yv, wt.w, wt.ws);
            _mm256_storeu_si256(x.add(j).cast(), nx);
            _mm256_storeu_si256(y.add(j).cast(), ny);
        }
    }
}

/// Two fused inverse stages over one stage-B group of `4t` elements: stage A
/// pairs quarters `(0,1)`/`(2,3)` at stride `t`, stage B pairs `(0,2)`/`(1,3)`
/// at stride `2t`.
///
/// # Safety
///
/// `p` must be valid for `4t` reads/writes; `t >= LANES`.
#[target_feature(enable = "avx2")]
unsafe fn inv_pass_large2(c: NttConsts, p: *mut u64, t: usize, wa0: Tw, wa1: Tw, wb: Tw) {
    debug_assert!(t.is_multiple_of(LANES));
    for j in (0..t).step_by(LANES) {
        // SAFETY: j + 3t + LANES <= 4t; four disjoint in-bounds quarters.
        unsafe {
            let mut v0 = _mm256_loadu_si256(p.add(j).cast());
            let mut v1 = _mm256_loadu_si256(p.add(j + t).cast());
            let mut v2 = _mm256_loadu_si256(p.add(j + 2 * t).cast());
            let mut v3 = _mm256_loadu_si256(p.add(j + 3 * t).cast());
            (v0, v1) = inv_butterfly(c, v0, v1, wa0.w, wa0.ws);
            (v2, v3) = inv_butterfly(c, v2, v3, wa1.w, wa1.ws);
            (v0, v2) = inv_butterfly(c, v0, v2, wb.w, wb.ws);
            (v1, v3) = inv_butterfly(c, v1, v3, wb.w, wb.ws);
            _mm256_storeu_si256(p.add(j).cast(), v0);
            _mm256_storeu_si256(p.add(j + t).cast(), v1);
            _mm256_storeu_si256(p.add(j + 2 * t).cast(), v2);
            _mm256_storeu_si256(p.add(j + 3 * t).cast(), v3);
        }
    }
}

/// Three fused inverse stages over one stage-C group of `8e` elements
/// (`e` = the stage-A stride `lt`): stage A at stride `e`, stage B at `2e`,
/// stage C at `4e`; mirror of [`fwd_pass_large3`].
///
/// # Safety
///
/// `p` must be valid for `8e` reads/writes; `e >= LANES`.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
unsafe fn inv_pass_large3(
    c: NttConsts,
    p: *mut u64,
    e: usize,
    wa0: Tw,
    wa1: Tw,
    wa2: Tw,
    wa3: Tw,
    wb0: Tw,
    wb1: Tw,
    wc: Tw,
) {
    debug_assert!(e.is_multiple_of(LANES));
    for j in (0..e).step_by(LANES) {
        // SAFETY: j + 7e + LANES <= 8e; eight disjoint in-bounds octants.
        unsafe {
            let mut v0 = _mm256_loadu_si256(p.add(j).cast());
            let mut v1 = _mm256_loadu_si256(p.add(j + e).cast());
            let mut v2 = _mm256_loadu_si256(p.add(j + 2 * e).cast());
            let mut v3 = _mm256_loadu_si256(p.add(j + 3 * e).cast());
            let mut v4 = _mm256_loadu_si256(p.add(j + 4 * e).cast());
            let mut v5 = _mm256_loadu_si256(p.add(j + 5 * e).cast());
            let mut v6 = _mm256_loadu_si256(p.add(j + 6 * e).cast());
            let mut v7 = _mm256_loadu_si256(p.add(j + 7 * e).cast());
            (v0, v1) = inv_butterfly(c, v0, v1, wa0.w, wa0.ws);
            (v2, v3) = inv_butterfly(c, v2, v3, wa1.w, wa1.ws);
            (v4, v5) = inv_butterfly(c, v4, v5, wa2.w, wa2.ws);
            (v6, v7) = inv_butterfly(c, v6, v7, wa3.w, wa3.ws);
            (v0, v2) = inv_butterfly(c, v0, v2, wb0.w, wb0.ws);
            (v1, v3) = inv_butterfly(c, v1, v3, wb0.w, wb0.ws);
            (v4, v6) = inv_butterfly(c, v4, v6, wb1.w, wb1.ws);
            (v5, v7) = inv_butterfly(c, v5, v7, wb1.w, wb1.ws);
            (v0, v4) = inv_butterfly(c, v0, v4, wc.w, wc.ws);
            (v1, v5) = inv_butterfly(c, v1, v5, wc.w, wc.ws);
            (v2, v6) = inv_butterfly(c, v2, v6, wc.w, wc.ws);
            (v3, v7) = inv_butterfly(c, v3, v7, wc.w, wc.ws);
            _mm256_storeu_si256(p.add(j).cast(), v0);
            _mm256_storeu_si256(p.add(j + e).cast(), v1);
            _mm256_storeu_si256(p.add(j + 2 * e).cast(), v2);
            _mm256_storeu_si256(p.add(j + 3 * e).cast(), v3);
            _mm256_storeu_si256(p.add(j + 4 * e).cast(), v4);
            _mm256_storeu_si256(p.add(j + 5 * e).cast(), v5);
            _mm256_storeu_si256(p.add(j + 6 * e).cast(), v6);
            _mm256_storeu_si256(p.add(j + 7 * e).cast(), v7);
        }
    }
}

/// The final inverse stage (stride `n/2`, single twiddle) fused with the
/// `n^{-1}` sweep: the sum path multiplies by `n^{-1}` directly, the
/// difference path by the precombined `w_1 * n^{-1}`, and both outputs are
/// canonicalized in-register. Saves the whole closing `n^{-1}` pass; output
/// is canonical, hence bit-identical to the unfused sequence.
///
/// # Safety
///
/// As [`fwd_pass_large`].
#[target_feature(enable = "avx2")]
unsafe fn inv_final_pass(c: NttConsts, x: *mut u64, y: *mut u64, t: usize, wd: Tw, wn: Tw) {
    debug_assert!(t.is_multiple_of(LANES));
    for j in (0..t).step_by(LANES) {
        // SAFETY: j + LANES <= t; caller guarantees both ranges valid.
        unsafe {
            let u = _mm256_loadu_si256(x.add(j).cast());
            let v = _mm256_loadu_si256(y.add(j).cast());
            // Butterfly exactly as inv_butterfly, but the products fold in
            // n^{-1}.
            let s = cond_sub(_mm256_add_epi64(u, v), c.two_q, c.two_q_s, c.sign);
            let d = _mm256_sub_epi64(_mm256_add_epi64(u, c.two_q), v);
            let sx = mul_shoup_lazy_v(s, wn.w, wn.ws, c.q);
            let dy = mul_shoup_lazy_v(d, wd.w, wd.ws, c.q);
            _mm256_storeu_si256(x.add(j).cast(), cond_sub(sx, c.q, c.q_s, c.sign));
            _mm256_storeu_si256(y.add(j).cast(), cond_sub(dy, c.q, c.q_s, c.sign));
        }
    }
}

/// One forward sub-vector stage (`t in {1, 2}`) applied to an 8-element run
/// already held in `(v0, v1)`: shuffle the halves together via 128-bit lane
/// permutes (AVX2 has no `permutex2var`), butterfly with per-lane twiddles,
/// knit back. With `correct` set (the global `t = 1` final stage) outputs
/// are reduced from `[0, 4q)` to canonical.
///
/// # Safety
///
/// `k0 + 4/t <= tw.len()` and likewise for `tws` (the stage reads one
/// twiddle per group, `4/t` groups per run).
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
unsafe fn fwd_sub_stage(
    c: NttConsts,
    v0: __m256i,
    v1: __m256i,
    t: usize,
    tw: &[u64],
    tws: &[u64],
    k0: usize,
    correct: bool,
) -> (__m256i, __m256i) {
    debug_assert!(matches!(t, 1 | 2));
    // SAFETY: caller guarantees 4/t entries from k0 are in-bounds.
    let (x, y, wv, wsv) = unsafe { sub_split(v0, v1, t, tw, tws, k0) };
    let (mut nx, mut ny) = fwd_butterfly(c, x, y, wv, wsv);
    if correct {
        nx = cond_sub(cond_sub(nx, c.two_q, c.two_q_s, c.sign), c.q, c.q_s, c.sign);
        ny = cond_sub(cond_sub(ny, c.two_q, c.two_q_s, c.sign), c.q, c.q_s, c.sign);
    }
    sub_knit(nx, ny, t)
}

/// Inverse counterpart of [`fwd_sub_stage`].
///
/// # Safety
///
/// As [`fwd_sub_stage`].
#[target_feature(enable = "avx2")]
unsafe fn inv_sub_stage(
    c: NttConsts,
    v0: __m256i,
    v1: __m256i,
    t: usize,
    tw: &[u64],
    tws: &[u64],
    k0: usize,
) -> (__m256i, __m256i) {
    debug_assert!(matches!(t, 1 | 2));
    // SAFETY: caller guarantees 4/t entries from k0 are in-bounds.
    let (u, v, wv, wsv) = unsafe { sub_split(v0, v1, t, tw, tws, k0) };
    let (nu, nv) = inv_butterfly(c, u, v, wv, wsv);
    sub_knit(nu, nv, t)
}

/// Splits an 8-element run `(v0, v1)` into all-`x`/all-`y` vectors for
/// sub-vector stride `t` and loads the matching per-lane twiddles.
///
/// # Safety
///
/// `k0 + 4/t <= tw.len()` and likewise for `tws`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn sub_split(
    v0: __m256i,
    v1: __m256i,
    t: usize,
    tw: &[u64],
    tws: &[u64],
    k0: usize,
) -> (__m256i, __m256i, __m256i, __m256i) {
    // SAFETY: caller guarantees the twiddle loads are in-bounds.
    unsafe {
        if t == 1 {
            // v0 = [x0 y0 x1 y1], v1 = [x2 y2 x3 y3]: unpack gives
            // x = [x0 x2 x1 x3] — twiddles follow with the matching
            // [0 2 1 3] permutation.
            let x = _mm256_unpacklo_epi64(v0, v1);
            let y = _mm256_unpackhi_epi64(v0, v1);
            let wv = _mm256_permute4x64_epi64::<0xD8>(_mm256_loadu_si256(tw.as_ptr().add(k0).cast()));
            let wsv = _mm256_permute4x64_epi64::<0xD8>(_mm256_loadu_si256(tws.as_ptr().add(k0).cast()));
            (x, y, wv, wsv)
        } else {
            // v0 = [x0 x1 y0 y1] (one group), v1 = the next group.
            let x = _mm256_permute2x128_si256::<0x20>(v0, v1);
            let y = _mm256_permute2x128_si256::<0x31>(v0, v1);
            let wpair = _mm256_castsi128_si256(_mm_loadu_si128(tw.as_ptr().add(k0).cast()));
            let wspair = _mm256_castsi128_si256(_mm_loadu_si128(tws.as_ptr().add(k0).cast()));
            let wv = _mm256_permute4x64_epi64::<0x50>(wpair);
            let wsv = _mm256_permute4x64_epi64::<0x50>(wspair);
            (x, y, wv, wsv)
        }
    }
}

/// Inverse shuffle of [`sub_split`]: knits butterfly outputs back into run
/// order.
#[inline]
#[target_feature(enable = "avx2")]
fn sub_knit(nx: __m256i, ny: __m256i, t: usize) -> (__m256i, __m256i) {
    if t == 1 {
        (_mm256_unpacklo_epi64(nx, ny), _mm256_unpackhi_epi64(nx, ny))
    } else {
        (
            _mm256_permute2x128_si256::<0x20>(nx, ny),
            _mm256_permute2x128_si256::<0x31>(nx, ny),
        )
    }
}

/// All trailing forward stages (`t = 4, 2, 1`) in a single load/store round
/// trip per 8-element run. The `t = 4` stage is lane-aligned (whole vectors,
/// broadcast twiddle), the sub-vector stages shuffle in-register, and the
/// final stage folds in the canonical correction — replacing three separate
/// passes plus a correction sweep.
///
/// `base4..base1` are the twiddle-table offsets of each stage (stage `t`
/// uses entries `base_t + groups-before-this-run`).
#[target_feature(enable = "avx2")]
fn fwd_tail(c: NttConsts, a: &mut [u64], tw: &[u64], tws: &[u64], base4: usize, base2: usize, base1: usize) {
    let len = a.len();
    debug_assert_eq!(len % (2 * LANES), 0);
    let p = a.as_mut_ptr();
    for r in 0..len / (2 * LANES) {
        let j = 2 * LANES * r;
        // SAFETY: j + 8 <= len; every twiddle load ends within the n-entry
        // tables (the deepest stage's last 4-entry load ends exactly at
        // entry n - 1).
        unsafe {
            let mut v0 = _mm256_loadu_si256(p.add(j).cast());
            let mut v1 = _mm256_loadu_si256(p.add(j + LANES).cast());
            let w4 = splat(tw[base4 + r]);
            let s4 = splat(tws[base4 + r]);
            (v0, v1) = fwd_butterfly(c, v0, v1, w4, s4);
            (v0, v1) = fwd_sub_stage(c, v0, v1, 2, tw, tws, base2 + 2 * r, false);
            (v0, v1) = fwd_sub_stage(c, v0, v1, 1, tw, tws, base1 + 4 * r, true);
            _mm256_storeu_si256(p.add(j).cast(), v0);
            _mm256_storeu_si256(p.add(j + LANES).cast(), v1);
        }
    }
}

/// All leading inverse stages (`t = 1, 2` and, unless it is the global final
/// stage, `t = 4`) in a single round trip per 8-element run; mirror of
/// [`fwd_tail`].
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
fn inv_head(
    c: NttConsts,
    a: &mut [u64],
    tw: &[u64],
    tws: &[u64],
    base1: usize,
    base2: usize,
    base4: usize,
    with_t4: bool,
) {
    let len = a.len();
    debug_assert_eq!(len % (2 * LANES), 0);
    let p = a.as_mut_ptr();
    for r in 0..len / (2 * LANES) {
        let j = 2 * LANES * r;
        // SAFETY: as fwd_tail.
        unsafe {
            let mut v0 = _mm256_loadu_si256(p.add(j).cast());
            let mut v1 = _mm256_loadu_si256(p.add(j + LANES).cast());
            (v0, v1) = inv_sub_stage(c, v0, v1, 1, tw, tws, base1 + 4 * r);
            (v0, v1) = inv_sub_stage(c, v0, v1, 2, tw, tws, base2 + 2 * r);
            if with_t4 {
                let w4 = splat(tw[base4 + r]);
                let s4 = splat(tws[base4 + r]);
                (v0, v1) = inv_butterfly(c, v0, v1, w4, s4);
            }
            _mm256_storeu_si256(p.add(j).cast(), v0);
            _mm256_storeu_si256(p.add(j + LANES).cast(), v1);
        }
    }
}

/// Forward lazy NTT as a greedy multi-stage descent: each pass over the
/// array retires up to three vector-wide stages (all tiles of one pass
/// complete their stage group before the next pass starts), and the last
/// three sub-vector stages plus the canonical correction run in the fused
/// [`fwd_tail`]. Multi-stage tiles double as cache blocks, so no separate
/// strided/blocked split is needed. Same stage schedule as the AVX-512
/// driver at half the lane width.
#[target_feature(enable = "avx2")]
pub(crate) fn ntt_forward(table: &NttTable, a: &mut [u64]) {
    let n = table.n();
    if n < 2 * LANES {
        return scalar::ntt_forward(table, a);
    }
    let m = table.modulus();
    let tw = table.root_pows();
    let tws = table.root_pows_shoup();
    let c = ntt_consts(m);
    let p = a.as_mut_ptr();

    // Stage at stride lt has llen groups (tiles) of 2*lt elements; stage
    // level llen is also its twiddle-table base. With m = log2(lt / LANES),
    // triples run while m >= 3, a pair handles m == 2, a single m == 1, so
    // the descent always lands on lt == LANES for the fused tail.
    let mut lt = n >> 1;
    let mut llen = 1usize;
    while lt > LANES {
        if lt >= 8 * LANES {
            // Triple: stages at strides lt, lt/2, lt/4. Stage-B twiddles
            // 2g, 2g+1 and stage-C twiddles 4g..4g+3 of the next levels.
            let e = lt / 4;
            for g in 0..llen {
                let j0 = 2 * g * lt;
                let wa = load_tw(tw, tws, llen + g);
                let wb0 = load_tw(tw, tws, 2 * llen + 2 * g);
                let wb1 = load_tw(tw, tws, 2 * llen + 2 * g + 1);
                let wc0 = load_tw(tw, tws, 4 * llen + 4 * g);
                let wc1 = load_tw(tw, tws, 4 * llen + 4 * g + 1);
                let wc2 = load_tw(tw, tws, 4 * llen + 4 * g + 2);
                let wc3 = load_tw(tw, tws, 4 * llen + 4 * g + 3);
                // SAFETY: [j0, j0 + 2*lt) is in-bounds (j0 + 2*lt <= n).
                unsafe { fwd_pass_large3(c, p.add(j0), e, wa, wb0, wb1, wc0, wc1, wc2, wc3) };
            }
            llen <<= 3;
            lt >>= 3;
        } else if lt >= 4 * LANES {
            // Pair: stages at strides lt and lt/2.
            for g in 0..llen {
                let j0 = 2 * g * lt;
                let wa = load_tw(tw, tws, llen + g);
                let wb0 = load_tw(tw, tws, 2 * llen + 2 * g);
                let wb1 = load_tw(tw, tws, 2 * llen + 2 * g + 1);
                // SAFETY: [j0, j0 + 2*lt) is in-bounds (j0 + 2*lt <= n).
                unsafe { fwd_pass_large2(c, p.add(j0), lt, wa, wb0, wb1) };
            }
            llen <<= 2;
            lt >>= 2;
        } else {
            for g in 0..llen {
                let j0 = 2 * g * lt;
                let wt = load_tw(tw, tws, llen + g);
                // SAFETY: disjoint in-bounds halves of one tile.
                unsafe { fwd_pass_large(c, p.add(j0), p.add(j0 + lt), lt, wt) };
            }
            llen <<= 1;
            lt >>= 1;
        }
    }
    // Stages 4, 2, 1 plus the canonical correction in one pass; stage t
    // has twiddle base llen_t = n / (2t), doubling as t halves from 4.
    debug_assert_eq!(lt, LANES);
    fwd_tail(c, a, tw, tws, llen, 2 * llen, 4 * llen);
}

/// Inverse lazy NTT, mirror of [`ntt_forward`]: the fused [`inv_head`]
/// opens with the three sub-vector stages, a greedy multi-stage ascent
/// retires up to three vector-wide stages per pass, and the final
/// stride-`n/2` stage is fused with the `n^{-1}` sweep and
/// canonicalization.
#[target_feature(enable = "avx2")]
pub(crate) fn ntt_inverse(table: &NttTable, a: &mut [u64]) {
    let n = table.n();
    if n < 2 * LANES {
        return scalar::ntt_inverse(table, a);
    }
    let m = table.modulus();
    let tw = table.inv_root_pows();
    let tws = table.inv_root_pows_shoup();
    let c = ntt_consts(m);

    // Stages t = 1..4 in one opening pass; stage t has twiddle base
    // llen_t = n / (2t). t = 4 is deferred to the fused final pass when it
    // is the global last stage (n == 8).
    inv_head(c, a, tw, tws, n >> 1, n >> 2, n >> 3, n > 2 * LANES);
    // Greedy ascent to (but excluding) the final stride-n/2 stage: a triple
    // is exact while its largest stride stays below n/2, and the remainder
    // count (log2(n/16) stages) is finished by a pair or single.
    let p = a.as_mut_ptr();
    let mut lt = 2 * LANES;
    let mut llen = n >> 4;
    while 2 * lt < n {
        if 8 * lt < n {
            // Triple: stages at strides lt, 2*lt, 4*lt. Stage-A twiddles
            // 4g..4g+3, stage-B 2g, 2g+1 of the next levels.
            for g in 0..llen / 4 {
                let j0 = 8 * g * lt;
                let wa0 = load_tw(tw, tws, llen + 4 * g);
                let wa1 = load_tw(tw, tws, llen + 4 * g + 1);
                let wa2 = load_tw(tw, tws, llen + 4 * g + 2);
                let wa3 = load_tw(tw, tws, llen + 4 * g + 3);
                let wb0 = load_tw(tw, tws, llen / 2 + 2 * g);
                let wb1 = load_tw(tw, tws, llen / 2 + 2 * g + 1);
                let wc = load_tw(tw, tws, llen / 4 + g);
                // SAFETY: [j0, j0 + 8*lt) is in-bounds (j0 + 8*lt <= n).
                unsafe { inv_pass_large3(c, p.add(j0), lt, wa0, wa1, wa2, wa3, wb0, wb1, wc) };
            }
            lt <<= 3;
            llen >>= 3;
        } else if 4 * lt < n {
            // Pair: stages at strides lt and 2*lt.
            for g in 0..llen / 2 {
                let j0 = 4 * g * lt;
                let wa0 = load_tw(tw, tws, llen + 2 * g);
                let wa1 = load_tw(tw, tws, llen + 2 * g + 1);
                let wb = load_tw(tw, tws, llen / 2 + g);
                // SAFETY: [j0, j0 + 4*lt) is in-bounds (j0 + 4*lt <= n).
                unsafe { inv_pass_large2(c, p.add(j0), lt, wa0, wa1, wb) };
            }
            lt <<= 2;
            llen >>= 2;
        } else {
            for g in 0..llen {
                let j0 = 2 * g * lt;
                let wt = load_tw(tw, tws, llen + g);
                // SAFETY: disjoint in-bounds halves of one tile.
                unsafe { inv_pass_large(c, p.add(j0), p.add(j0 + lt), lt, wt) };
            }
            lt <<= 1;
            llen >>= 1;
        }
    }
    // Final stage (stride n/2, single twiddle tw[1]) fused with the n^{-1}
    // sweep: the sum path takes n^{-1}, the difference path the precombined
    // tw[1] * n^{-1}; outputs are canonical.
    let half = n / 2;
    let n_inv = table.n_inv();
    let wd_val = m.mul(tw[1], n_inv);
    let wn = Tw {
        w: splat(n_inv),
        ws: splat(table.n_inv_shoup()),
    };
    let wd = Tw {
        w: splat(wd_val),
        ws: splat(m.shoup_precompute(wd_val)),
    };
    // SAFETY: the two halves are disjoint in-bounds ranges of length n/2.
    unsafe { inv_final_pass(c, p, p.add(half), half, wd, wn) };
}
