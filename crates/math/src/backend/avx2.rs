//! AVX2 kernels: 4 residues per instruction.
//!
//! AVX2 has no 64-bit unsigned compare, no 64-bit full multiply, and no
//! 512-bit registers, so these kernels build everything from `vpmuludq`
//! 32×32→64 partial products, sign-flipped signed compares, and 128-bit lane
//! shuffles. They run the exact scalar algorithms lane-parallel, so even
//! lazy intermediates match the scalar backend word-for-word.

#![allow(clippy::missing_safety_doc)] // SAFETY contracts are on the `unsafe` blocks

use core::arch::x86_64::*;

use super::scalar;
use crate::{Modulus, NttTable};

const LANES: usize = 4;

// ---------------------------------------------------------------------------
// Element helpers.
// ---------------------------------------------------------------------------

#[inline]
#[target_feature(enable = "avx2")]
fn splat(x: u64) -> __m256i {
    _mm256_set1_epi64x(x as i64)
}

#[inline]
#[target_feature(enable = "avx2")]
fn sign_bit() -> __m256i {
    splat(1u64 << 63)
}

/// Subtracts `b` from lanes where `x >= b` (unsigned, via sign-flipped signed
/// compare). `bs` must be `b ^ sign_bit()`.
#[inline]
#[target_feature(enable = "avx2")]
fn cond_sub(x: __m256i, b: __m256i, bs: __m256i, sign: __m256i) -> __m256i {
    let xs = _mm256_xor_si256(x, sign);
    let lt = _mm256_cmpgt_epi64(bs, xs); // b > x (unsigned)
    _mm256_sub_epi64(x, _mm256_andnot_si256(lt, b))
}

/// High 64 bits of the unsigned 64×64 product via four 32×32 partials.
#[inline]
#[target_feature(enable = "avx2")]
fn mulhi64(a: __m256i, b: __m256i) -> __m256i {
    let mask32 = splat(0xffff_ffff);
    let a_hi = _mm256_srli_epi64::<32>(a);
    let b_hi = _mm256_srli_epi64::<32>(b);
    let ll = _mm256_mul_epu32(a, b);
    let lh = _mm256_mul_epu32(a, b_hi);
    let hl = _mm256_mul_epu32(a_hi, b);
    let hh = _mm256_mul_epu32(a_hi, b_hi);
    let cross = _mm256_add_epi64(hl, _mm256_srli_epi64::<32>(ll));
    let cross2 = _mm256_add_epi64(lh, _mm256_and_si256(cross, mask32));
    _mm256_add_epi64(
        hh,
        _mm256_add_epi64(_mm256_srli_epi64::<32>(cross), _mm256_srli_epi64::<32>(cross2)),
    )
}

/// Low 64 bits of the unsigned 64×64 product.
#[inline]
#[target_feature(enable = "avx2")]
fn mullo64(a: __m256i, b: __m256i) -> __m256i {
    let a_hi = _mm256_srli_epi64::<32>(a);
    let b_hi = _mm256_srli_epi64::<32>(b);
    let ll = _mm256_mul_epu32(a, b);
    let mid = _mm256_add_epi64(_mm256_mul_epu32(a, b_hi), _mm256_mul_epu32(a_hi, b));
    _mm256_add_epi64(ll, _mm256_slli_epi64::<32>(mid))
}

/// Shoup product without correction: `a*w - floor(a*ws / 2^64) * q` in
/// `[0, 2q)` for any `a` — the scalar `mul_shoup_lazy`, lane-parallel.
#[inline]
#[target_feature(enable = "avx2")]
fn mul_shoup_lazy_v(a: __m256i, w: __m256i, ws: __m256i, q: __m256i) -> __m256i {
    let hi = mulhi64(a, ws);
    _mm256_sub_epi64(mullo64(a, w), mullo64(hi, q))
}

/// Broadcast constants for lane-parallel Barrett reduction (same derivation
/// as the AVX-512 backend: quotient seed `x >> (k-1)`, `mu = floor(2^2k/q)`,
/// remainder below `3q`).
#[derive(Clone, Copy)]
struct Barrett {
    q: __m256i,
    q_s: __m256i,
    two_q: __m256i,
    two_q_s: __m256i,
    sign: __m256i,
    mu: __m256i,
    sh_lo: __m256i,
    sh_hi: __m256i,
    sh_qlo: __m256i,
    sh_qhi: __m256i,
}

#[inline]
#[target_feature(enable = "avx2")]
fn barrett(m: &Modulus) -> Barrett {
    let k = m.barrett_k() as u64;
    let sign = sign_bit();
    let q = splat(m.value());
    let two_q = splat(m.two_q());
    Barrett {
        q,
        q_s: _mm256_xor_si256(q, sign),
        two_q,
        two_q_s: _mm256_xor_si256(two_q, sign),
        sign,
        mu: splat(m.barrett_mu()),
        sh_lo: splat(k - 1),
        sh_hi: splat(65 - k),
        sh_qlo: splat(k + 1),
        sh_qhi: splat(63 - k),
    }
}

/// Canonical product `a * b mod q` for canonical lanes.
#[inline]
#[target_feature(enable = "avx2")]
fn barrett_mul(c: Barrett, a: __m256i, b: __m256i) -> __m256i {
    let lo = mullo64(a, b);
    let hi = mulhi64(a, b);
    let c1 = _mm256_or_si256(_mm256_sllv_epi64(hi, c.sh_hi), _mm256_srlv_epi64(lo, c.sh_lo));
    let mlo = mullo64(c1, c.mu);
    let mhi = mulhi64(c1, c.mu);
    let qhat = _mm256_or_si256(_mm256_sllv_epi64(mhi, c.sh_qhi), _mm256_srlv_epi64(mlo, c.sh_qlo));
    let r = _mm256_sub_epi64(lo, mullo64(qhat, c.q));
    let r = cond_sub(r, c.two_q, c.two_q_s, c.sign);
    cond_sub(r, c.q, c.q_s, c.sign)
}

#[inline]
#[target_feature(enable = "avx2")]
fn add_mod_v(c: Barrett, a: __m256i, b: __m256i) -> __m256i {
    cond_sub(_mm256_add_epi64(a, b), c.q, c.q_s, c.sign)
}

// ---------------------------------------------------------------------------
// Slice kernels.
// ---------------------------------------------------------------------------

#[target_feature(enable = "avx2")]
pub(crate) fn add_mod_slice(m: &Modulus, a: &mut [u64], b: &[u64]) {
    let c = barrett(m);
    let n = a.len() - a.len() % LANES;
    let (pa, pb) = (a.as_mut_ptr(), b.as_ptr());
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= a.len() == b.len().
        unsafe {
            let x = _mm256_loadu_si256(pa.add(i).cast());
            let y = _mm256_loadu_si256(pb.add(i).cast());
            _mm256_storeu_si256(pa.add(i).cast(), add_mod_v(c, x, y));
        }
    }
    scalar::add_mod_slice(m, &mut a[n..], &b[n..]);
}

#[target_feature(enable = "avx2")]
pub(crate) fn sub_mod_slice(m: &Modulus, a: &mut [u64], b: &[u64]) {
    let c = barrett(m);
    let n = a.len() - a.len() % LANES;
    let (pa, pb) = (a.as_mut_ptr(), b.as_ptr());
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= a.len() == b.len().
        unsafe {
            let x = _mm256_loadu_si256(pa.add(i).cast());
            let y = _mm256_loadu_si256(pb.add(i).cast());
            let r = _mm256_sub_epi64(_mm256_add_epi64(x, c.q), y);
            _mm256_storeu_si256(pa.add(i).cast(), cond_sub(r, c.q, c.q_s, c.sign));
        }
    }
    scalar::sub_mod_slice(m, &mut a[n..], &b[n..]);
}

#[target_feature(enable = "avx2")]
pub(crate) fn neg_mod_slice(m: &Modulus, a: &mut [u64]) {
    let c = barrett(m);
    let n = a.len() - a.len() % LANES;
    let pa = a.as_mut_ptr();
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= a.len().
        unsafe {
            let x = _mm256_loadu_si256(pa.add(i).cast());
            let r = _mm256_sub_epi64(c.q, x);
            _mm256_storeu_si256(pa.add(i).cast(), cond_sub(r, c.q, c.q_s, c.sign));
        }
    }
    scalar::neg_mod_slice(m, &mut a[n..]);
}

#[target_feature(enable = "avx2")]
pub(crate) fn mul_mod_slice(m: &Modulus, a: &mut [u64], b: &[u64]) {
    let c = barrett(m);
    let n = a.len() - a.len() % LANES;
    let (pa, pb) = (a.as_mut_ptr(), b.as_ptr());
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= a.len() == b.len().
        unsafe {
            let x = _mm256_loadu_si256(pa.add(i).cast());
            let y = _mm256_loadu_si256(pb.add(i).cast());
            _mm256_storeu_si256(pa.add(i).cast(), barrett_mul(c, x, y));
        }
    }
    scalar::mul_mod_slice(m, &mut a[n..], &b[n..]);
}

#[target_feature(enable = "avx2")]
pub(crate) fn mul_acc_mod_slice(m: &Modulus, acc: &mut [u64], a: &[u64], b: &[u64]) {
    let c = barrett(m);
    let n = acc.len() - acc.len() % LANES;
    let (pacc, pa, pb) = (acc.as_mut_ptr(), a.as_ptr(), b.as_ptr());
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n and all three slices have equal length.
        unsafe {
            let s = _mm256_loadu_si256(pacc.add(i).cast());
            let x = _mm256_loadu_si256(pa.add(i).cast());
            let y = _mm256_loadu_si256(pb.add(i).cast());
            let p = barrett_mul(c, x, y);
            _mm256_storeu_si256(pacc.add(i).cast(), add_mod_v(c, s, p));
        }
    }
    scalar::mul_acc_mod_slice(m, &mut acc[n..], &a[n..], &b[n..]);
}

#[target_feature(enable = "avx2")]
pub(crate) fn mul_scalar_shoup_slice(m: &Modulus, a: &mut [u64], w: u64, w_shoup: u64) {
    let c = barrett(m);
    let wv = splat(w);
    let wsv = splat(w_shoup);
    let n = a.len() - a.len() % LANES;
    let pa = a.as_mut_ptr();
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= a.len().
        unsafe {
            let x = _mm256_loadu_si256(pa.add(i).cast());
            let v = mul_shoup_lazy_v(x, wv, wsv, c.q);
            _mm256_storeu_si256(pa.add(i).cast(), cond_sub(v, c.q, c.q_s, c.sign));
        }
    }
    scalar::mul_scalar_shoup_slice(m, &mut a[n..], w, w_shoup);
}

#[target_feature(enable = "avx2")]
pub(crate) fn mul_shoup_lazy_acc_slice(m: &Modulus, acc: &mut [u64], x: &[u64], w: u64, w_shoup: u64) {
    let c = barrett(m);
    let wv = splat(w);
    let wsv = splat(w_shoup);
    let n = acc.len() - acc.len() % LANES;
    let (pacc, px) = (acc.as_mut_ptr(), x.as_ptr());
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= acc.len() == x.len().
        unsafe {
            let s = _mm256_loadu_si256(pacc.add(i).cast());
            let xi = _mm256_loadu_si256(px.add(i).cast());
            let v = mul_shoup_lazy_v(xi, wv, wsv, c.q);
            let r = cond_sub(_mm256_add_epi64(s, v), c.two_q, c.two_q_s, c.sign);
            _mm256_storeu_si256(pacc.add(i).cast(), r);
        }
    }
    scalar::mul_shoup_lazy_acc_slice(m, &mut acc[n..], &x[n..], w, w_shoup);
}

#[target_feature(enable = "avx2")]
pub(crate) fn mul_shoup_sub_correct_slice(m: &Modulus, out: &mut [u64], alpha: &[u64], w: u64, w_shoup: u64) {
    let c = barrett(m);
    let wv = splat(w);
    let wsv = splat(w_shoup);
    let n = out.len() - out.len() % LANES;
    let (po, pal) = (out.as_mut_ptr(), alpha.as_ptr());
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= out.len() == alpha.len().
        unsafe {
            let o = _mm256_loadu_si256(po.add(i).cast());
            let al = _mm256_loadu_si256(pal.add(i).cast());
            let v = mul_shoup_lazy_v(al, wv, wsv, c.q);
            let r = _mm256_sub_epi64(_mm256_add_epi64(o, c.two_q), v);
            let r = cond_sub(r, c.two_q, c.two_q_s, c.sign);
            _mm256_storeu_si256(po.add(i).cast(), cond_sub(r, c.q, c.q_s, c.sign));
        }
    }
    scalar::mul_shoup_sub_correct_slice(m, &mut out[n..], &alpha[n..], w, w_shoup);
}

#[target_feature(enable = "avx2")]
pub(crate) fn correct_lazy_slice(m: &Modulus, a: &mut [u64]) {
    let c = barrett(m);
    let n = a.len() - a.len() % LANES;
    let pa = a.as_mut_ptr();
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= a.len().
        unsafe {
            let x = _mm256_loadu_si256(pa.add(i).cast());
            let r = cond_sub(x, c.two_q, c.two_q_s, c.sign);
            _mm256_storeu_si256(pa.add(i).cast(), cond_sub(r, c.q, c.q_s, c.sign));
        }
    }
    scalar::correct_lazy_slice(m, &mut a[n..]);
}

#[target_feature(enable = "avx2")]
pub(crate) fn gather_slice(out: &mut [u64], src: &[u64], perm: &[u32]) {
    let n = out.len() - out.len() % LANES;
    let (po, pp) = (out.as_mut_ptr(), perm.as_ptr());
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= out.len() == perm.len(); every perm value
        // indexes src (AutomorphismTable construction invariant).
        unsafe {
            let idx = _mm_loadu_si128(pp.add(i).cast());
            let v = _mm256_i32gather_epi64::<8>(src.as_ptr().cast(), idx);
            _mm256_storeu_si256(po.add(i).cast(), v);
        }
    }
    scalar::gather_slice(&mut out[n..], src, &perm[n..]);
}

#[target_feature(enable = "avx2")]
pub(crate) fn gather_mul_acc_slice(m: &Modulus, acc: &mut [u64], src: &[u64], perm: &[u32], b: &[u64]) {
    let c = barrett(m);
    let n = acc.len() - acc.len() % LANES;
    let (pacc, pp, pb) = (acc.as_mut_ptr(), perm.as_ptr(), b.as_ptr());
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n; slice lengths asserted equal by the
        // dispatcher; perm values index src by table construction.
        unsafe {
            let idx = _mm_loadu_si128(pp.add(i).cast());
            let v = _mm256_i32gather_epi64::<8>(src.as_ptr().cast(), idx);
            let y = _mm256_loadu_si256(pb.add(i).cast());
            let s = _mm256_loadu_si256(pacc.add(i).cast());
            let p = barrett_mul(c, v, y);
            _mm256_storeu_si256(pacc.add(i).cast(), add_mod_v(c, s, p));
        }
    }
    scalar::gather_mul_acc_slice(m, &mut acc[n..], src, &perm[n..], &b[n..]);
}

#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
pub(crate) fn gather_mul_acc_pair_slice(
    m: &Modulus,
    acc0: &mut [u64],
    acc1: &mut [u64],
    src: &[u64],
    perm: &[u32],
    b0: &[u64],
    b1: &[u64],
) {
    let c = barrett(m);
    let n = acc0.len() - acc0.len() % LANES;
    let (pa0, pa1, pp, pb0, pb1) = (
        acc0.as_mut_ptr(),
        acc1.as_mut_ptr(),
        perm.as_ptr(),
        b0.as_ptr(),
        b1.as_ptr(),
    );
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n; slice lengths asserted equal by the
        // dispatcher; perm values index src by table construction.
        unsafe {
            let idx = _mm_loadu_si128(pp.add(i).cast());
            let v = _mm256_i32gather_epi64::<8>(src.as_ptr().cast(), idx);
            let y0 = _mm256_loadu_si256(pb0.add(i).cast());
            let y1 = _mm256_loadu_si256(pb1.add(i).cast());
            let s0 = _mm256_loadu_si256(pa0.add(i).cast());
            let s1 = _mm256_loadu_si256(pa1.add(i).cast());
            _mm256_storeu_si256(pa0.add(i).cast(), add_mod_v(c, s0, barrett_mul(c, v, y0)));
            _mm256_storeu_si256(pa1.add(i).cast(), add_mod_v(c, s1, barrett_mul(c, v, y1)));
        }
    }
    scalar::gather_mul_acc_pair_slice(m, &mut acc0[n..], &mut acc1[n..], src, &perm[n..], &b0[n..], &b1[n..]);
}

// ---------------------------------------------------------------------------
// NTT: cache-blocked drivers + butterfly stage kernels.
// ---------------------------------------------------------------------------

const BLOCK: usize = 4096;

#[derive(Clone, Copy)]
struct NttConsts {
    q: __m256i,
    two_q: __m256i,
    two_q_s: __m256i,
    sign: __m256i,
}

#[inline]
#[target_feature(enable = "avx2")]
fn ntt_consts(m: &Modulus) -> NttConsts {
    let sign = sign_bit();
    let q = splat(m.value());
    let two_q = splat(m.two_q());
    NttConsts {
        q,
        two_q,
        two_q_s: _mm256_xor_si256(two_q, sign),
        sign,
    }
}

/// Forward butterfly: operands in `[0, 4q)`, outputs in `[0, 4q)`.
#[inline]
#[target_feature(enable = "avx2")]
fn fwd_butterfly(c: NttConsts, x: __m256i, y: __m256i, w: __m256i, ws: __m256i) -> (__m256i, __m256i) {
    let xr = cond_sub(x, c.two_q, c.two_q_s, c.sign);
    let v = mul_shoup_lazy_v(y, w, ws, c.q);
    (
        _mm256_add_epi64(xr, v),
        _mm256_sub_epi64(_mm256_add_epi64(xr, c.two_q), v),
    )
}

/// Inverse butterfly: operands in `[0, 2q)`, outputs in `[0, 2q)`.
#[inline]
#[target_feature(enable = "avx2")]
fn inv_butterfly(c: NttConsts, u: __m256i, v: __m256i, w: __m256i, ws: __m256i) -> (__m256i, __m256i) {
    let s = cond_sub(_mm256_add_epi64(u, v), c.two_q, c.two_q_s, c.sign);
    let d = _mm256_sub_epi64(_mm256_add_epi64(u, c.two_q), v);
    (s, mul_shoup_lazy_v(d, w, ws, c.q))
}

/// # Safety
///
/// `x` and `y` must each be valid for `t` reads/writes and must not overlap.
#[target_feature(enable = "avx2")]
unsafe fn fwd_pass_large(c: NttConsts, x: *mut u64, y: *mut u64, t: usize, w: u64, ws: u64) {
    let wv = splat(w);
    let wsv = splat(ws);
    debug_assert!(t.is_multiple_of(LANES));
    for j in (0..t).step_by(LANES) {
        // SAFETY: j + LANES <= t; caller guarantees both ranges valid.
        unsafe {
            let xv = _mm256_loadu_si256(x.add(j).cast());
            let yv = _mm256_loadu_si256(y.add(j).cast());
            let (nx, ny) = fwd_butterfly(c, xv, yv, wv, wsv);
            _mm256_storeu_si256(x.add(j).cast(), nx);
            _mm256_storeu_si256(y.add(j).cast(), ny);
        }
    }
}

/// # Safety
///
/// As [`fwd_pass_large`].
#[target_feature(enable = "avx2")]
unsafe fn inv_pass_large(c: NttConsts, x: *mut u64, y: *mut u64, t: usize, w: u64, ws: u64) {
    let wv = splat(w);
    let wsv = splat(ws);
    debug_assert!(t.is_multiple_of(LANES));
    for j in (0..t).step_by(LANES) {
        // SAFETY: j + LANES <= t; caller guarantees both ranges valid.
        unsafe {
            let xv = _mm256_loadu_si256(x.add(j).cast());
            let yv = _mm256_loadu_si256(y.add(j).cast());
            let (nx, ny) = inv_butterfly(c, xv, yv, wv, wsv);
            _mm256_storeu_si256(x.add(j).cast(), nx);
            _mm256_storeu_si256(y.add(j).cast(), ny);
        }
    }
}

/// One stage with `t in {1, 2}` over a whole block, 8 elements (4
/// butterflies) per iteration via 128-bit lane shuffles.
#[target_feature(enable = "avx2")]
fn stage_small(
    c: NttConsts,
    forward: bool,
    block: &mut [u64],
    t: usize,
    tw: &[u64],
    tws: &[u64],
    tw_base: usize,
) {
    debug_assert!(matches!(t, 1 | 2));
    let len = block.len();
    let run = 2 * LANES;
    debug_assert_eq!(len % run, 0, "small stages require 8-element blocks");
    let p = block.as_mut_ptr();
    let mut j = 0;
    while j < len {
        let g0 = j / (2 * t);
        // SAFETY: j + 8 <= len; twiddle loads read only this run's group
        // entries, all in-bounds.
        unsafe {
            let v0 = _mm256_loadu_si256(p.add(j).cast());
            let v1 = _mm256_loadu_si256(p.add(j + LANES).cast());
            let (x, y, wv, wsv) = if t == 1 {
                // v0 = [x0 y0 x1 y1], v1 = [x2 y2 x3 y3]
                // unpack gives x = [x0 x2 x1 x3] — twiddles follow with the
                // matching [0 2 1 3] permutation.
                let x = _mm256_unpacklo_epi64(v0, v1);
                let y = _mm256_unpackhi_epi64(v0, v1);
                let wv = _mm256_permute4x64_epi64::<0xD8>(_mm256_loadu_si256(tw.as_ptr().add(tw_base + g0).cast()));
                let wsv = _mm256_permute4x64_epi64::<0xD8>(_mm256_loadu_si256(tws.as_ptr().add(tw_base + g0).cast()));
                (x, y, wv, wsv)
            } else {
                // v0 = [x0 x1 y0 y1] (group g0), v1 = group g0 + 1.
                let x = _mm256_permute2x128_si256::<0x20>(v0, v1);
                let y = _mm256_permute2x128_si256::<0x31>(v0, v1);
                let wpair = _mm256_castsi128_si256(_mm_loadu_si128(tw.as_ptr().add(tw_base + g0).cast()));
                let wspair = _mm256_castsi128_si256(_mm_loadu_si128(tws.as_ptr().add(tw_base + g0).cast()));
                let wv = _mm256_permute4x64_epi64::<0x50>(wpair);
                let wsv = _mm256_permute4x64_epi64::<0x50>(wspair);
                (x, y, wv, wsv)
            };
            let (nx, ny) = if forward {
                fwd_butterfly(c, x, y, wv, wsv)
            } else {
                inv_butterfly(c, x, y, wv, wsv)
            };
            let (o0, o1) = if t == 1 {
                (_mm256_unpacklo_epi64(nx, ny), _mm256_unpackhi_epi64(nx, ny))
            } else {
                (
                    _mm256_permute2x128_si256::<0x20>(nx, ny),
                    _mm256_permute2x128_si256::<0x31>(nx, ny),
                )
            };
            _mm256_storeu_si256(p.add(j).cast(), o0);
            _mm256_storeu_si256(p.add(j + LANES).cast(), o1);
        }
        j += run;
    }
}

/// Forward lazy NTT: strided stages above [`BLOCK`], blocked completion,
/// correction sweep. Same stage schedule as the AVX-512 driver.
#[target_feature(enable = "avx2")]
pub(crate) fn ntt_forward(table: &NttTable, a: &mut [u64]) {
    let n = table.n();
    if n < 2 * LANES {
        return scalar::ntt_forward(table, a);
    }
    let m = table.modulus();
    let tw = table.root_pows();
    let tws = table.root_pows_shoup();
    let c = ntt_consts(m);
    let p = a.as_mut_ptr();

    let bsize = n.min(BLOCK);
    let mut t = n;
    let mut len = 1usize;
    while len < n {
        let half = t >> 1;
        if 2 * half <= bsize {
            break;
        }
        for i in 0..len {
            let j0 = 2 * i * half;
            let k = len + i;
            // SAFETY: disjoint in-bounds halves (j0 + 2*half <= n).
            unsafe { fwd_pass_large(c, p.add(j0), p.add(j0 + half), half, tw[k], tws[k]) };
        }
        t = half;
        len <<= 1;
    }
    if len < n {
        let t0 = t >> 1;
        let len0 = len;
        for (b, block) in a.chunks_exact_mut(bsize).enumerate() {
            let bp = block.as_mut_ptr();
            let mut lt = t0;
            let mut llen = len0;
            while llen < n {
                let gpb = bsize / (2 * lt);
                let tw_base = llen + b * gpb;
                if lt >= LANES {
                    for g in 0..gpb {
                        let j0 = 2 * g * lt;
                        let k = tw_base + g;
                        // SAFETY: disjoint in-bounds halves of this block.
                        unsafe { fwd_pass_large(c, bp.add(j0), bp.add(j0 + lt), lt, tw[k], tws[k]) };
                    }
                } else {
                    stage_small(c, true, block, lt, tw, tws, tw_base);
                }
                llen <<= 1;
                lt >>= 1;
            }
        }
    }
    correct_lazy_slice(m, a);
}

/// Inverse lazy NTT: blocked opening stages, strided closing stages, fused
/// `n^{-1}` sweep.
#[target_feature(enable = "avx2")]
pub(crate) fn ntt_inverse(table: &NttTable, a: &mut [u64]) {
    let n = table.n();
    if n < 2 * LANES {
        return scalar::ntt_inverse(table, a);
    }
    let m = table.modulus();
    let tw = table.inv_root_pows();
    let tws = table.inv_root_pows_shoup();
    let c = ntt_consts(m);

    let bsize = n.min(BLOCK);
    for (b, block) in a.chunks_exact_mut(bsize).enumerate() {
        let bp = block.as_mut_ptr();
        let mut lt = 1usize;
        let mut llen = n >> 1;
        while 2 * lt <= bsize {
            let gpb = bsize / (2 * lt);
            let tw_base = llen + b * gpb;
            if lt >= LANES {
                for g in 0..gpb {
                    let j0 = 2 * g * lt;
                    let k = tw_base + g;
                    // SAFETY: disjoint in-bounds halves of this block.
                    unsafe { inv_pass_large(c, bp.add(j0), bp.add(j0 + lt), lt, tw[k], tws[k]) };
                }
            } else {
                stage_small(c, false, block, lt, tw, tws, tw_base);
            }
            lt <<= 1;
            llen >>= 1;
        }
    }
    let p = a.as_mut_ptr();
    let mut t = bsize;
    let mut len = n / (2 * bsize);
    while len >= 1 {
        for i in 0..len {
            let j0 = 2 * i * t;
            let k = len + i;
            // SAFETY: disjoint in-bounds ranges (j0 + 2t <= n).
            unsafe { inv_pass_large(c, p.add(j0), p.add(j0 + t), t, tw[k], tws[k]) };
        }
        t <<= 1;
        len >>= 1;
    }
    mul_scalar_shoup_slice(m, a, table.n_inv(), table.n_inv_shoup());
}
