//! Runtime-dispatched SIMD backends for the hot kernels.
//!
//! This is the software analogue of CraterLake's vector-lane datapath: the
//! limb pool (`CL_THREADS`) parallelizes *across* residue polynomials, and
//! the backend selected here parallelizes *within* one — Harvey butterflies,
//! Shoup multiplies, Barrett products, and automorphism gathers all process
//! 4 (AVX2) or 8 (AVX-512) residues per instruction.
//!
//! A backend is chosen once per process from `is_x86_feature_detected!`,
//! overridable with `CL_BACKEND=scalar|avx2|avx512` (tests can also switch
//! in-process via [`set_active`]). Every backend is bit-exact: kernels with
//! canonical `[0, q)` outputs return identical words on all backends, and
//! lazy kernels obey the same `[0, 4q)` / `[0, 2q)` drift bounds the scalar
//! reference does, so the final correction sweeps land on identical words
//! too. Op-level telemetry (`cl-trace`) is recorded at the public entry
//! points, above the dispatch, so counts are backend-invariant by
//! construction.

pub(crate) mod scalar;

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2;
#[cfg(target_arch = "x86_64")]
pub(crate) mod avx512;

use std::sync::atomic::{AtomicU8, Ordering};

use crate::Modulus;

/// The kernel implementations the dispatcher can route to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum BackendKind {
    /// Portable scalar reference kernels (always available).
    Scalar,
    /// 256-bit AVX2 kernels, 4 residues per instruction.
    Avx2,
    /// 512-bit AVX-512 (F+DQ+VL) kernels, 8 residues per instruction, with a
    /// 52-bit IFMA fast path for moduli below `2^50` when the CPU has
    /// `avx512ifma`.
    Avx512,
}

impl BackendKind {
    /// Stable lowercase name, matching the `CL_BACKEND` values.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Scalar => "scalar",
            BackendKind::Avx2 => "avx2",
            BackendKind::Avx512 => "avx512",
        }
    }

    /// Parses a `CL_BACKEND` value.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "scalar" => Some(BackendKind::Scalar),
            "avx2" => Some(BackendKind::Avx2),
            "avx512" => Some(BackendKind::Avx512),
            _ => None,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            BackendKind::Scalar => 0,
            BackendKind::Avx2 => 1,
            BackendKind::Avx512 => 2,
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            1 => BackendKind::Avx2,
            2 => BackendKind::Avx512,
            _ => BackendKind::Scalar,
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Backends usable on this host, best-first. Always ends with `Scalar`.
pub fn supported_backends() -> Vec<BackendKind> {
    let mut v = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f")
            && is_x86_feature_detected!("avx512dq")
            && is_x86_feature_detected!("avx512vl")
        {
            v.push(BackendKind::Avx512);
        }
        if is_x86_feature_detected!("avx2") {
            v.push(BackendKind::Avx2);
        }
    }
    v.push(BackendKind::Scalar);
    v
}

/// Host vector-ISA feature flags relevant to backend selection, for bench
/// metadata and diagnostics.
pub fn cpu_features() -> Vec<(&'static str, bool)> {
    #[cfg(target_arch = "x86_64")]
    {
        vec![
            ("avx2", is_x86_feature_detected!("avx2")),
            ("avx512f", is_x86_feature_detected!("avx512f")),
            ("avx512dq", is_x86_feature_detected!("avx512dq")),
            ("avx512vl", is_x86_feature_detected!("avx512vl")),
            ("avx512ifma", is_x86_feature_detected!("avx512ifma")),
        ]
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        vec![
            ("avx2", false),
            ("avx512f", false),
            ("avx512dq", false),
            ("avx512vl", false),
            ("avx512ifma", false),
        ]
    }
}

const ACTIVE_UNSET: u8 = u8::MAX;
static ACTIVE: AtomicU8 = AtomicU8::new(ACTIVE_UNSET);

fn init_active() -> BackendKind {
    let supported = supported_backends();
    let chosen = match std::env::var("CL_BACKEND") {
        Ok(name) => match BackendKind::from_name(name.trim()) {
            Some(k) if supported.contains(&k) => k,
            Some(k) => {
                eprintln!(
                    "cl-math: CL_BACKEND={} not supported on this CPU; using {}",
                    k.name(),
                    supported[0].name()
                );
                supported[0]
            }
            None => {
                eprintln!(
                    "cl-math: unknown CL_BACKEND value {name:?} (expected scalar|avx2|avx512); \
                     using {}",
                    supported[0].name()
                );
                supported[0]
            }
        },
        Err(_) => supported[0],
    };
    // A racing initializer computes the same value; last store wins.
    ACTIVE.store(chosen.as_u8(), Ordering::Relaxed);
    chosen
}

/// The backend all dispatched kernels currently route to.
///
/// First call resolves `CL_BACKEND` (falling back to the best supported
/// backend); later calls are a single atomic load.
#[inline]
pub fn active_backend() -> BackendKind {
    let v = ACTIVE.load(Ordering::Relaxed);
    if v == ACTIVE_UNSET {
        init_active()
    } else {
        BackendKind::from_u8(v)
    }
}

/// Forces the dispatcher to `kind` for the rest of the process (or until the
/// next call). Intended for tests and benchmarks; returns `Err` with the
/// supported set if this host cannot run `kind`.
///
/// Because every backend is bit-exact, flipping the backend mid-run changes
/// performance only, never results — concurrent threads may observe either
/// backend during the switch and still compute identical values.
pub fn set_active_backend(kind: BackendKind) -> Result<(), Vec<BackendKind>> {
    let supported = supported_backends();
    if !supported.contains(&kind) {
        return Err(supported);
    }
    ACTIVE.store(kind.as_u8(), Ordering::Relaxed);
    Ok(())
}

// ---------------------------------------------------------------------------
// Dispatched slice kernels.
//
// Each wrapper asserts slice-length agreement once, then routes to the
// active backend. The scalar implementations in `scalar.rs` are the
// semantic reference; the SAFETY obligation discharged at every `unsafe`
// call below is "the required target features were runtime-detected",
// which `active_backend()` guarantees: Avx2/Avx512 are only ever stored
// after `supported_backends()` confirmed the features.
// ---------------------------------------------------------------------------

macro_rules! dispatch {
    ($backend_fn:ident($($arg:expr),*); $kind:expr) => {
        match $kind {
            BackendKind::Scalar => scalar::$backend_fn($($arg),*),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: Avx2 is only active when runtime detection confirmed
            // the avx2 feature (see active_backend/set_active_backend).
            BackendKind::Avx2 => unsafe { avx2::$backend_fn($($arg),*) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: Avx512 is only active when runtime detection confirmed
            // avx512f+dq+vl (see active_backend/set_active_backend).
            BackendKind::Avx512 => unsafe { avx512::$backend_fn($($arg),*) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => scalar::$backend_fn($($arg),*),
        }
    };
}

/// `a[i] = (a[i] + b[i]) mod q`, canonical operands and output.
#[inline]
pub(crate) fn add_mod_slice(m: &Modulus, a: &mut [u64], b: &[u64]) {
    assert_eq!(a.len(), b.len(), "slice length mismatch");
    dispatch!(add_mod_slice(m, a, b); active_backend())
}

/// `a[i] = (a[i] - b[i]) mod q`, canonical operands and output.
#[inline]
pub(crate) fn sub_mod_slice(m: &Modulus, a: &mut [u64], b: &[u64]) {
    assert_eq!(a.len(), b.len(), "slice length mismatch");
    dispatch!(sub_mod_slice(m, a, b); active_backend())
}

/// `a[i] = -a[i] mod q`, canonical operand and output.
#[inline]
pub(crate) fn neg_mod_slice(m: &Modulus, a: &mut [u64]) {
    dispatch!(neg_mod_slice(m, a); active_backend())
}

/// `a[i] = a[i] * b[i] mod q` (variable × variable Barrett), canonical.
#[inline]
pub(crate) fn mul_mod_slice(m: &Modulus, a: &mut [u64], b: &[u64]) {
    assert_eq!(a.len(), b.len(), "slice length mismatch");
    dispatch!(mul_mod_slice(m, a, b); active_backend())
}

/// `acc[i] = (acc[i] + a[i] * b[i]) mod q`, canonical.
#[inline]
pub(crate) fn mul_acc_mod_slice(m: &Modulus, acc: &mut [u64], a: &[u64], b: &[u64]) {
    assert_eq!(acc.len(), a.len(), "slice length mismatch");
    assert_eq!(acc.len(), b.len(), "slice length mismatch");
    dispatch!(mul_acc_mod_slice(m, acc, a, b); active_backend())
}

/// `a[i] = a[i] * w mod q` for a fixed `w` with precomputed Shoup constant,
/// canonical output. Accepts lazy inputs below `2^63` (the Shoup product
/// itself tolerates any `u64`; the closing correction handles `[0, 2q)`).
#[inline]
pub(crate) fn mul_scalar_shoup_slice(m: &Modulus, a: &mut [u64], w: u64, w_shoup: u64) {
    dispatch!(mul_scalar_shoup_slice(m, a, w, w_shoup); active_backend())
}

/// `acc[i] = reduce_lazy(acc[i] + mul_shoup_lazy(x[i], w, w_shoup))`.
///
/// The base-conversion inner loop: `acc` stays in `[0, 2q)` across repeated
/// calls, `x` may be any `u64` (residues of a foreign modulus).
#[inline]
pub(crate) fn mul_shoup_lazy_acc_slice(m: &Modulus, acc: &mut [u64], x: &[u64], w: u64, w_shoup: u64) {
    assert_eq!(acc.len(), x.len(), "slice length mismatch");
    dispatch!(mul_shoup_lazy_acc_slice(m, acc, x, w, w_shoup); active_backend())
}

/// `out[i] = correct_lazy(out[i] + 2q - mul_shoup_lazy(alpha[i], w, w_shoup))`.
///
/// The exact base-conversion correction: subtracts `alpha[i] * w` from a lazy
/// accumulator in `[0, 2q)` and canonicalizes in the same pass.
#[inline]
pub(crate) fn mul_shoup_sub_correct_slice(m: &Modulus, out: &mut [u64], alpha: &[u64], w: u64, w_shoup: u64) {
    assert_eq!(out.len(), alpha.len(), "slice length mismatch");
    dispatch!(mul_shoup_sub_correct_slice(m, out, alpha, w, w_shoup); active_backend())
}

/// `a[i] = correct_lazy(a[i])`: maps lazy `[0, 4q)` words to canonical.
#[inline]
pub(crate) fn correct_lazy_slice(m: &Modulus, a: &mut [u64]) {
    dispatch!(correct_lazy_slice(m, a); active_backend())
}

/// `a[i] = a[i] mod q` for arbitrary `u64` words — the seeded hint-expansion
/// kernel (reduce a raw PRG word stream into residues).
#[inline]
pub(crate) fn reduce_raw_slice(m: &Modulus, a: &mut [u64]) {
    dispatch!(reduce_raw_slice(m, a); active_backend())
}

/// `out[i] = src[perm[i]]` — the NTT-domain automorphism gather.
#[inline]
pub(crate) fn gather_slice(out: &mut [u64], src: &[u64], perm: &[u32]) {
    assert_eq!(out.len(), perm.len(), "slice length mismatch");
    dispatch!(gather_slice(out, src, perm); active_backend())
}

/// Fused automorphism + multiply-accumulate:
/// `acc[i] = (acc[i] + src[perm[i]] * b[i]) mod q`, canonical.
#[inline]
pub(crate) fn gather_mul_acc_slice(m: &Modulus, acc: &mut [u64], src: &[u64], perm: &[u32], b: &[u64]) {
    assert_eq!(acc.len(), perm.len(), "slice length mismatch");
    assert_eq!(acc.len(), b.len(), "slice length mismatch");
    dispatch!(gather_mul_acc_slice(m, acc, src, perm, b); active_backend())
}

/// Paired fused automorphism + multiply-accumulate, sharing one gather:
/// `acc0[i] += src[perm[i]] * b0[i]`, `acc1[i] += src[perm[i]] * b1[i]`,
/// both mod q, canonical.
#[inline]
pub(crate) fn gather_mul_acc_pair_slice(
    m: &Modulus,
    acc0: &mut [u64],
    acc1: &mut [u64],
    src: &[u64],
    perm: &[u32],
    b0: &[u64],
    b1: &[u64],
) {
    assert_eq!(acc0.len(), perm.len(), "slice length mismatch");
    assert_eq!(acc1.len(), perm.len(), "slice length mismatch");
    assert_eq!(acc0.len(), b0.len(), "slice length mismatch");
    assert_eq!(acc1.len(), b1.len(), "slice length mismatch");
    dispatch!(gather_mul_acc_pair_slice(m, acc0, acc1, src, perm, b0, b1); active_backend())
}

/// Forward lazy NTT pass over `a` using `table`, excluding telemetry (the
/// caller records it). Output canonical, bit-identical across backends.
#[inline]
pub(crate) fn ntt_forward(table: &crate::NttTable, a: &mut [u64]) {
    dispatch!(ntt_forward(table, a); active_backend())
}

/// Inverse lazy NTT pass (including the `n^{-1}` sweep), telemetry excluded.
#[inline]
pub(crate) fn ntt_inverse(table: &crate::NttTable, a: &mut [u64]) {
    dispatch!(ntt_inverse(table, a); active_backend())
}

/// Test-only dispatch with an explicit backend, so differential tests can
/// exercise every compiled backend without touching the process-wide choice.
/// Callers must only pass kinds from [`supported_backends`].
#[cfg(test)]
pub(crate) mod forced {
    use super::*;

    pub(crate) fn add_mod_slice(kind: BackendKind, m: &Modulus, a: &mut [u64], b: &[u64]) {
        dispatch!(add_mod_slice(m, a, b); kind)
    }

    pub(crate) fn sub_mod_slice(kind: BackendKind, m: &Modulus, a: &mut [u64], b: &[u64]) {
        dispatch!(sub_mod_slice(m, a, b); kind)
    }

    pub(crate) fn neg_mod_slice(kind: BackendKind, m: &Modulus, a: &mut [u64]) {
        dispatch!(neg_mod_slice(m, a); kind)
    }

    pub(crate) fn mul_mod_slice(kind: BackendKind, m: &Modulus, a: &mut [u64], b: &[u64]) {
        dispatch!(mul_mod_slice(m, a, b); kind)
    }

    pub(crate) fn mul_acc_mod_slice(kind: BackendKind, m: &Modulus, acc: &mut [u64], a: &[u64], b: &[u64]) {
        dispatch!(mul_acc_mod_slice(m, acc, a, b); kind)
    }

    pub(crate) fn mul_scalar_shoup_slice(kind: BackendKind, m: &Modulus, a: &mut [u64], w: u64, ws: u64) {
        dispatch!(mul_scalar_shoup_slice(m, a, w, ws); kind)
    }

    pub(crate) fn mul_shoup_lazy_acc_slice(
        kind: BackendKind,
        m: &Modulus,
        acc: &mut [u64],
        x: &[u64],
        w: u64,
        ws: u64,
    ) {
        dispatch!(mul_shoup_lazy_acc_slice(m, acc, x, w, ws); kind)
    }

    pub(crate) fn mul_shoup_sub_correct_slice(
        kind: BackendKind,
        m: &Modulus,
        out: &mut [u64],
        alpha: &[u64],
        w: u64,
        ws: u64,
    ) {
        dispatch!(mul_shoup_sub_correct_slice(m, out, alpha, w, ws); kind)
    }

    pub(crate) fn correct_lazy_slice(kind: BackendKind, m: &Modulus, a: &mut [u64]) {
        dispatch!(correct_lazy_slice(m, a); kind)
    }

    pub(crate) fn reduce_raw_slice(kind: BackendKind, m: &Modulus, a: &mut [u64]) {
        dispatch!(reduce_raw_slice(m, a); kind)
    }

    pub(crate) fn gather_slice(kind: BackendKind, out: &mut [u64], src: &[u64], perm: &[u32]) {
        dispatch!(gather_slice(out, src, perm); kind)
    }

    pub(crate) fn gather_mul_acc_slice(
        kind: BackendKind,
        m: &Modulus,
        acc: &mut [u64],
        src: &[u64],
        perm: &[u32],
        b: &[u64],
    ) {
        dispatch!(gather_mul_acc_slice(m, acc, src, perm, b); kind)
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn gather_mul_acc_pair_slice(
        kind: BackendKind,
        m: &Modulus,
        acc0: &mut [u64],
        acc1: &mut [u64],
        src: &[u64],
        perm: &[u32],
        b0: &[u64],
        b1: &[u64],
    ) {
        dispatch!(gather_mul_acc_pair_slice(m, acc0, acc1, src, perm, b0, b1); kind)
    }

    pub(crate) fn ntt_forward(kind: BackendKind, table: &crate::NttTable, a: &mut [u64]) {
        dispatch!(ntt_forward(table, a); kind)
    }

    pub(crate) fn ntt_inverse(kind: BackendKind, table: &crate::NttTable, a: &mut [u64]) {
        dispatch!(ntt_inverse(table, a); kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for k in [BackendKind::Scalar, BackendKind::Avx2, BackendKind::Avx512] {
            assert_eq!(BackendKind::from_name(k.name()), Some(k));
        }
        assert_eq!(BackendKind::from_name("neon"), None);
    }

    #[test]
    fn supported_always_includes_scalar() {
        let s = supported_backends();
        assert_eq!(s.last(), Some(&BackendKind::Scalar));
        // Best-first ordering: the active default is the head.
        assert!(!s.is_empty());
    }

    #[test]
    fn set_active_rejects_unsupported_only() {
        let supported = supported_backends();
        for k in [BackendKind::Scalar, BackendKind::Avx2, BackendKind::Avx512] {
            let r = set_active_backend(k);
            assert_eq!(r.is_ok(), supported.contains(&k), "backend {k}");
        }
        // Restore the default for other tests in this process.
        set_active_backend(supported[0]).expect("default backend must be supported");
    }
}
