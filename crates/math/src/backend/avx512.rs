//! AVX-512 kernels: 8 residues per instruction.
//!
//! Requires `avx512f + avx512dq + avx512vl`. All multiplies use either the
//! 4-product `vpmuludq` decomposition of a 64×64→128 product (any modulus
//! below the `2^60` cap) or, when the CPU additionally has `avx512ifma` and
//! the modulus fits below `2^50`, the 52-bit-radix Shoup path built on
//! `vpmadd52{lo,hi}uq` — three multiplies per eight butterflies.
//!
//! Bit-exactness: the generic path runs the exact scalar algorithms
//! lane-parallel, so even lazy intermediates match the scalar backend. The
//! IFMA path uses a different Shoup radix (`2^52` instead of `2^64`), so its
//! lazy intermediates differ, but it preserves the same `[0, 4q)` forward /
//! `[0, 2q)` inverse drift bounds and the final correction sweeps canonical
//! outputs — which are unique mod q — onto the same words.

#![allow(clippy::missing_safety_doc)] // SAFETY contracts are on the `unsafe` blocks

use core::arch::x86_64::*;

use super::scalar;
use crate::{Modulus, NttTable};

const LANES: usize = 8;

// ---------------------------------------------------------------------------
// Element helpers (pure register arithmetic — safe under target_feature 1.1).
// ---------------------------------------------------------------------------

#[inline]
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
fn splat(x: u64) -> __m512i {
    _mm512_set1_epi64(x as i64)
}

/// `min_u(x, x - b)`: subtracts `b` exactly when `x >= b` (the wrapped
/// difference is huge otherwise), i.e. one conditional-subtract step.
#[inline]
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
fn cond_sub(x: __m512i, b: __m512i) -> __m512i {
    _mm512_min_epu64(x, _mm512_sub_epi64(x, b))
}

/// High 64 bits of the unsigned 64×64 product, via four 32×32 partials.
#[inline]
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
fn mulhi64(a: __m512i, b: __m512i) -> __m512i {
    let mask32 = splat(0xffff_ffff);
    let a_hi = _mm512_srli_epi64::<32>(a);
    let b_hi = _mm512_srli_epi64::<32>(b);
    // vpmuludq reads only the low 32 bits of each lane, so `a`/`b` stand in
    // for their own low halves.
    let ll = _mm512_mul_epu32(a, b);
    let lh = _mm512_mul_epu32(a, b_hi);
    let hl = _mm512_mul_epu32(a_hi, b);
    let hh = _mm512_mul_epu32(a_hi, b_hi);
    let cross = _mm512_add_epi64(hl, _mm512_srli_epi64::<32>(ll));
    let cross2 = _mm512_add_epi64(lh, _mm512_and_si512(cross, mask32));
    _mm512_add_epi64(
        hh,
        _mm512_add_epi64(_mm512_srli_epi64::<32>(cross), _mm512_srli_epi64::<32>(cross2)),
    )
}

/// Shoup product without correction: `a*w - floor(a*ws / 2^64) * q`, in
/// `[0, 2q)` for any `a` (the scalar `mul_shoup_lazy`, lane-parallel).
#[inline]
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
fn mul_shoup_lazy_v(a: __m512i, w: __m512i, ws: __m512i, q: __m512i) -> __m512i {
    let hi = mulhi64(a, ws);
    _mm512_sub_epi64(_mm512_mullo_epi64(a, w), _mm512_mullo_epi64(hi, q))
}

/// 52-bit-radix Shoup product: `a*w - floor(a*ws52 / 2^52) * q` in `[0, 2q)`,
/// valid when `a < 2^52` and `2q <= 2^52` (i.e. `q < 2^50` with lazy drift).
#[inline]
#[target_feature(enable = "avx512f,avx512dq,avx512vl,avx512ifma")]
fn mul_shoup52_lazy_v(a: __m512i, w: __m512i, ws52: __m512i, q: __m512i, mask52: __m512i) -> __m512i {
    let z = _mm512_setzero_si512();
    let hi = _mm512_madd52hi_epu64(z, a, ws52);
    let t = _mm512_madd52lo_epu64(z, a, w);
    let u = _mm512_madd52lo_epu64(z, hi, q);
    // The true value fits 52 bits, so the wrapped difference masked to the
    // radix is exact.
    _mm512_and_si512(_mm512_sub_epi64(t, u), mask52)
}

/// Broadcast constants for lane-parallel Barrett reduction (see
/// `Modulus::barrett_mu`): `qhat = ((x >> (k-1)) * mu) >> (k+1)` with
/// `mu = floor(2^2k / q)` leaves `x - qhat*q` below `3q`.
#[derive(Clone, Copy)]
struct Barrett {
    q: __m512i,
    two_q: __m512i,
    mu: __m512i,
    sh_lo: __m512i,  // k - 1
    sh_hi: __m512i,  // 65 - k
    sh_qlo: __m512i, // k + 1
    sh_qhi: __m512i, // 63 - k
}

#[inline]
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
fn barrett(m: &Modulus) -> Barrett {
    let k = m.barrett_k() as u64;
    Barrett {
        q: splat(m.value()),
        two_q: splat(m.two_q()),
        mu: splat(m.barrett_mu()),
        sh_lo: splat(k - 1),
        sh_hi: splat(65 - k),
        sh_qlo: splat(k + 1),
        sh_qhi: splat(63 - k),
    }
}

/// Canonical product `a * b mod q` for canonical lanes.
#[inline]
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
fn barrett_mul(c: Barrett, a: __m512i, b: __m512i) -> __m512i {
    let lo = _mm512_mullo_epi64(a, b);
    let hi = mulhi64(a, b);
    // c1 = floor(x / 2^(k-1)), a (k+1)-bit quotient seed.
    let c1 = _mm512_or_si512(_mm512_sllv_epi64(hi, c.sh_hi), _mm512_srlv_epi64(lo, c.sh_lo));
    let mlo = _mm512_mullo_epi64(c1, c.mu);
    let mhi = mulhi64(c1, c.mu);
    // qhat = floor(c1 * mu / 2^(k+1)) >= floor(x/q) - 2.
    let qhat = _mm512_or_si512(_mm512_sllv_epi64(mhi, c.sh_qhi), _mm512_srlv_epi64(mlo, c.sh_qlo));
    // x - qhat*q < 3q fits u64, so low-64 arithmetic is exact.
    let r = _mm512_sub_epi64(lo, _mm512_mullo_epi64(qhat, c.q));
    cond_sub(cond_sub(r, c.two_q), c.q)
}

/// Canonical sum `a + b mod q` for canonical lanes.
#[inline]
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
fn add_mod_v(a: __m512i, b: __m512i, q: __m512i) -> __m512i {
    cond_sub(_mm512_add_epi64(a, b), q)
}

/// Broadcast constants for the IFMA Barrett product (`barrett_ifma_mul`):
/// the full `a*b` product is formed as two 52-bit halves with `vpmadd52`,
/// and the quotient is estimated from `mu = floor(2^101 / q)`.
#[derive(Clone, Copy)]
struct BarrettIfma {
    q: __m512i,
    two_q: __m512i,
    mu: __m512i,
    mask52: __m512i,
}

/// True when the IFMA product path applies: `2^49 < q < 2^50` (so `mu`
/// fits the 52-bit madd operand and `3q < 2^52`) and the CPU has AVX-512
/// IFMA.
#[inline]
fn barrett_ifma_ok(m: &Modulus) -> bool {
    let q = m.value();
    (1u64 << 49) < q && q < (1u64 << 50) && is_x86_feature_detected!("avx512ifma")
}

#[inline]
#[target_feature(enable = "avx512f,avx512dq,avx512vl,avx512ifma")]
fn barrett_ifma(m: &Modulus) -> BarrettIfma {
    let q = m.value();
    BarrettIfma {
        q: splat(q),
        two_q: splat(m.two_q()),
        mu: splat(((1u128 << 101) / q as u128) as u64),
        mask52: splat((1u64 << 52) - 1),
    }
}

/// Lazy IFMA Barrett product `a * b - qhat * q` in `[0, 3q)` for canonical
/// lanes, `2^49 < q < 2^50`.
///
/// With `p = a*b < 2^100` split into 52-bit halves, `d = floor(p / 2^49)`
/// fits 51 bits and `qhat = floor(d * mu / 2^52)` with
/// `mu = floor(2^101 / q) < 2^52` satisfies `floor(p/q) - 2 <= qhat <=
/// floor(p/q)`, so the remainder is below `3q < 2^52` and the masked low
/// 52-bit difference is exact.
#[inline]
#[target_feature(enable = "avx512f,avx512dq,avx512vl,avx512ifma")]
fn barrett_ifma_mul_lazy(c: BarrettIfma, a: __m512i, b: __m512i) -> __m512i {
    let z = _mm512_setzero_si512();
    let lo = _mm512_madd52lo_epu64(z, a, b);
    let hi = _mm512_madd52hi_epu64(z, a, b);
    let d = _mm512_or_si512(_mm512_slli_epi64::<3>(hi), _mm512_srli_epi64::<49>(lo));
    let qhat = _mm512_madd52hi_epu64(z, d, c.mu);
    _mm512_and_si512(
        _mm512_sub_epi64(lo, _mm512_madd52lo_epu64(z, qhat, c.q)),
        c.mask52,
    )
}

/// Canonical IFMA Barrett product: `barrett_ifma_mul_lazy` plus the two
/// conditional subtracts mapping `[0, 3q)` to `[0, q)`.
#[inline]
#[target_feature(enable = "avx512f,avx512dq,avx512vl,avx512ifma")]
fn barrett_ifma_mul(c: BarrettIfma, a: __m512i, b: __m512i) -> __m512i {
    cond_sub(cond_sub(barrett_ifma_mul_lazy(c, a, b), c.two_q), c.q)
}

// ---------------------------------------------------------------------------
// Slice kernels. Each runs the vector body over whole 8-lane chunks and
// defers the tail to the scalar reference (identical semantics).
// ---------------------------------------------------------------------------

#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
pub(crate) fn add_mod_slice(m: &Modulus, a: &mut [u64], b: &[u64]) {
    let q = splat(m.value());
    let n = a.len() - a.len() % LANES;
    let (pa, pb) = (a.as_mut_ptr(), b.as_ptr());
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= a.len() == b.len().
        unsafe {
            let x = _mm512_loadu_si512(pa.add(i).cast());
            let y = _mm512_loadu_si512(pb.add(i).cast());
            _mm512_storeu_si512(pa.add(i).cast(), add_mod_v(x, y, q));
        }
    }
    scalar::add_mod_slice(m, &mut a[n..], &b[n..]);
}

#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
pub(crate) fn sub_mod_slice(m: &Modulus, a: &mut [u64], b: &[u64]) {
    let q = splat(m.value());
    let n = a.len() - a.len() % LANES;
    let (pa, pb) = (a.as_mut_ptr(), b.as_ptr());
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= a.len() == b.len().
        unsafe {
            let x = _mm512_loadu_si512(pa.add(i).cast());
            let y = _mm512_loadu_si512(pb.add(i).cast());
            // x + q - y is in (0, 2q); one conditional subtract canonicalizes.
            let r = _mm512_sub_epi64(_mm512_add_epi64(x, q), y);
            _mm512_storeu_si512(pa.add(i).cast(), cond_sub(r, q));
        }
    }
    scalar::sub_mod_slice(m, &mut a[n..], &b[n..]);
}

#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
pub(crate) fn neg_mod_slice(m: &Modulus, a: &mut [u64]) {
    let q = splat(m.value());
    let n = a.len() - a.len() % LANES;
    let pa = a.as_mut_ptr();
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= a.len().
        unsafe {
            let x = _mm512_loadu_si512(pa.add(i).cast());
            // q - x is in (0, q] — the conditional subtract maps q (x = 0) to 0.
            let r = _mm512_sub_epi64(q, x);
            _mm512_storeu_si512(pa.add(i).cast(), cond_sub(r, q));
        }
    }
    scalar::neg_mod_slice(m, &mut a[n..]);
}

#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
pub(crate) fn mul_mod_slice(m: &Modulus, a: &mut [u64], b: &[u64]) {
    if barrett_ifma_ok(m) {
        // SAFETY: avx512ifma was just runtime-detected by barrett_ifma_ok.
        unsafe { mul_mod_slice_ifma(m, a, b) };
        return;
    }
    let c = barrett(m);
    let n = a.len() - a.len() % LANES;
    let (pa, pb) = (a.as_mut_ptr(), b.as_ptr());
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= a.len() == b.len().
        unsafe {
            let x = _mm512_loadu_si512(pa.add(i).cast());
            let y = _mm512_loadu_si512(pb.add(i).cast());
            _mm512_storeu_si512(pa.add(i).cast(), barrett_mul(c, x, y));
        }
    }
    scalar::mul_mod_slice(m, &mut a[n..], &b[n..]);
}

#[target_feature(enable = "avx512f,avx512dq,avx512vl,avx512ifma")]
fn mul_mod_slice_ifma(m: &Modulus, a: &mut [u64], b: &[u64]) {
    let c = barrett_ifma(m);
    let n = a.len() - a.len() % LANES;
    let (pa, pb) = (a.as_mut_ptr(), b.as_ptr());
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= a.len() == b.len().
        unsafe {
            let x = _mm512_loadu_si512(pa.add(i).cast());
            let y = _mm512_loadu_si512(pb.add(i).cast());
            _mm512_storeu_si512(pa.add(i).cast(), barrett_ifma_mul(c, x, y));
        }
    }
    scalar::mul_mod_slice(m, &mut a[n..], &b[n..]);
}

#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
pub(crate) fn mul_acc_mod_slice(m: &Modulus, acc: &mut [u64], a: &[u64], b: &[u64]) {
    if barrett_ifma_ok(m) {
        // SAFETY: avx512ifma was just runtime-detected by barrett_ifma_ok.
        unsafe { mul_acc_mod_slice_ifma(m, acc, a, b) };
        return;
    }
    let c = barrett(m);
    let n = acc.len() - acc.len() % LANES;
    let (pacc, pa, pb) = (acc.as_mut_ptr(), a.as_ptr(), b.as_ptr());
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n and all three slices have equal length.
        unsafe {
            let s = _mm512_loadu_si512(pacc.add(i).cast());
            let x = _mm512_loadu_si512(pa.add(i).cast());
            let y = _mm512_loadu_si512(pb.add(i).cast());
            let p = barrett_mul(c, x, y);
            _mm512_storeu_si512(pacc.add(i).cast(), add_mod_v(s, p, c.q));
        }
    }
    scalar::mul_acc_mod_slice(m, &mut acc[n..], &a[n..], &b[n..]);
}

#[target_feature(enable = "avx512f,avx512dq,avx512vl,avx512ifma")]
fn mul_acc_mod_slice_ifma(m: &Modulus, acc: &mut [u64], a: &[u64], b: &[u64]) {
    let c = barrett_ifma(m);
    let n = acc.len() - acc.len() % LANES;
    let (pacc, pa, pb) = (acc.as_mut_ptr(), a.as_ptr(), b.as_ptr());
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n and all three slices have equal length.
        unsafe {
            let s = _mm512_loadu_si512(pacc.add(i).cast());
            let x = _mm512_loadu_si512(pa.add(i).cast());
            let y = _mm512_loadu_si512(pb.add(i).cast());
            // s < q plus the lazy product < 3q stays under 4q; two
            // conditional subtracts canonicalize.
            let r = _mm512_add_epi64(s, barrett_ifma_mul_lazy(c, x, y));
            _mm512_storeu_si512(pacc.add(i).cast(), cond_sub(cond_sub(r, c.two_q), c.q));
        }
    }
    scalar::mul_acc_mod_slice(m, &mut acc[n..], &a[n..], &b[n..]);
}

/// Reduces arbitrary `u64` words into canonical `[0, q)`.
///
/// Quotient estimate with `minv = floor(2^64 / q)`: `qhat = mulhi64(x, minv)`
/// underestimates `floor(x/q)` by at most 1 (the discarded term
/// `x * (2^64 mod q) / (q * 2^64)` is below 1), so `x - qhat*q < 2q` and one
/// conditional subtract canonicalizes. The word-sized `barrett_mu` constant
/// cannot be used here: it only bounds inputs below `2^{2k}`, which is less
/// than `2^64` for small moduli.
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
pub(crate) fn reduce_raw_slice(m: &Modulus, a: &mut [u64]) {
    let minv = ((1u128 << 64) / m.value() as u128) as u64;
    let q = splat(m.value());
    let vminv = splat(minv);
    let n = a.len() - a.len() % LANES;
    let pa = a.as_mut_ptr();
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= a.len().
        unsafe {
            let x = _mm512_loadu_si512(pa.add(i).cast());
            let qhat = mulhi64(x, vminv);
            let r = _mm512_sub_epi64(x, _mm512_mullo_epi64(qhat, q));
            _mm512_storeu_si512(pa.add(i).cast(), cond_sub(r, q));
        }
    }
    scalar::reduce_raw_slice(m, &mut a[n..]);
}

#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
pub(crate) fn mul_scalar_shoup_slice(m: &Modulus, a: &mut [u64], w: u64, w_shoup: u64) {
    let q = splat(m.value());
    let wv = splat(w);
    let wsv = splat(w_shoup);
    let n = a.len() - a.len() % LANES;
    let pa = a.as_mut_ptr();
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= a.len().
        unsafe {
            let x = _mm512_loadu_si512(pa.add(i).cast());
            let v = mul_shoup_lazy_v(x, wv, wsv, q);
            _mm512_storeu_si512(pa.add(i).cast(), cond_sub(v, q));
        }
    }
    scalar::mul_scalar_shoup_slice(m, &mut a[n..], w, w_shoup);
}

#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
pub(crate) fn mul_shoup_lazy_acc_slice(m: &Modulus, acc: &mut [u64], x: &[u64], w: u64, w_shoup: u64) {
    let q = splat(m.value());
    let two_q = splat(m.two_q());
    let wv = splat(w);
    let wsv = splat(w_shoup);
    let n = acc.len() - acc.len() % LANES;
    let (pacc, px) = (acc.as_mut_ptr(), x.as_ptr());
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= acc.len() == x.len().
        unsafe {
            let s = _mm512_loadu_si512(pacc.add(i).cast());
            let xi = _mm512_loadu_si512(px.add(i).cast());
            let v = mul_shoup_lazy_v(xi, wv, wsv, q);
            // acc, v both < 2q: sum < 4q, one conditional subtract restores 2q.
            let r = cond_sub(_mm512_add_epi64(s, v), two_q);
            _mm512_storeu_si512(pacc.add(i).cast(), r);
        }
    }
    scalar::mul_shoup_lazy_acc_slice(m, &mut acc[n..], &x[n..], w, w_shoup);
}

#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
pub(crate) fn mul_shoup_sub_correct_slice(m: &Modulus, out: &mut [u64], alpha: &[u64], w: u64, w_shoup: u64) {
    let q = splat(m.value());
    let two_q = splat(m.two_q());
    let wv = splat(w);
    let wsv = splat(w_shoup);
    let n = out.len() - out.len() % LANES;
    let (po, pal) = (out.as_mut_ptr(), alpha.as_ptr());
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= out.len() == alpha.len().
        unsafe {
            let o = _mm512_loadu_si512(po.add(i).cast());
            let al = _mm512_loadu_si512(pal.add(i).cast());
            let v = mul_shoup_lazy_v(al, wv, wsv, q);
            // o < 2q and v < 2q: o + 2q - v in (0, 4q); two conditional
            // subtracts canonicalize (correct_lazy).
            let r = _mm512_sub_epi64(_mm512_add_epi64(o, two_q), v);
            _mm512_storeu_si512(po.add(i).cast(), cond_sub(cond_sub(r, two_q), q));
        }
    }
    scalar::mul_shoup_sub_correct_slice(m, &mut out[n..], &alpha[n..], w, w_shoup);
}

#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
pub(crate) fn correct_lazy_slice(m: &Modulus, a: &mut [u64]) {
    let q = splat(m.value());
    let two_q = splat(m.two_q());
    let n = a.len() - a.len() % LANES;
    let pa = a.as_mut_ptr();
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= a.len().
        unsafe {
            let x = _mm512_loadu_si512(pa.add(i).cast());
            _mm512_storeu_si512(pa.add(i).cast(), cond_sub(cond_sub(x, two_q), q));
        }
    }
    scalar::correct_lazy_slice(m, &mut a[n..]);
}

#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
pub(crate) fn gather_slice(out: &mut [u64], src: &[u64], perm: &[u32]) {
    let n = out.len() - out.len() % LANES;
    let (po, pp) = (out.as_mut_ptr(), perm.as_ptr());
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n <= out.len() == perm.len(); every perm value
        // indexes src (AutomorphismTable construction invariant, debug-checked
        // in the dispatcher).
        unsafe {
            let idx = _mm256_loadu_si256(pp.add(i).cast());
            let v = _mm512_i32gather_epi64::<8>(idx, src.as_ptr().cast());
            _mm512_storeu_si512(po.add(i).cast(), v);
        }
    }
    scalar::gather_slice(&mut out[n..], src, &perm[n..]);
}

#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
pub(crate) fn gather_mul_acc_slice(m: &Modulus, acc: &mut [u64], src: &[u64], perm: &[u32], b: &[u64]) {
    if barrett_ifma_ok(m) {
        // SAFETY: avx512ifma was just runtime-detected by barrett_ifma_ok.
        unsafe { gather_mul_acc_slice_ifma(m, acc, src, perm, b) };
        return;
    }
    let c = barrett(m);
    let n = acc.len() - acc.len() % LANES;
    let (pacc, pp, pb) = (acc.as_mut_ptr(), perm.as_ptr(), b.as_ptr());
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n; slice lengths asserted equal by the
        // dispatcher; perm values index src by table construction.
        unsafe {
            let idx = _mm256_loadu_si256(pp.add(i).cast());
            let v = _mm512_i32gather_epi64::<8>(idx, src.as_ptr().cast());
            let y = _mm512_loadu_si512(pb.add(i).cast());
            let s = _mm512_loadu_si512(pacc.add(i).cast());
            let p = barrett_mul(c, v, y);
            _mm512_storeu_si512(pacc.add(i).cast(), add_mod_v(s, p, c.q));
        }
    }
    scalar::gather_mul_acc_slice(m, &mut acc[n..], src, &perm[n..], &b[n..]);
}

#[target_feature(enable = "avx512f,avx512dq,avx512vl,avx512ifma")]
fn gather_mul_acc_slice_ifma(m: &Modulus, acc: &mut [u64], src: &[u64], perm: &[u32], b: &[u64]) {
    let c = barrett_ifma(m);
    let n = acc.len() - acc.len() % LANES;
    let (pacc, pp, pb) = (acc.as_mut_ptr(), perm.as_ptr(), b.as_ptr());
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n; slice lengths asserted equal by the
        // dispatcher; perm values index src by table construction.
        unsafe {
            let idx = _mm256_loadu_si256(pp.add(i).cast());
            let v = _mm512_i32gather_epi64::<8>(idx, src.as_ptr().cast());
            let y = _mm512_loadu_si512(pb.add(i).cast());
            let s = _mm512_loadu_si512(pacc.add(i).cast());
            let r = _mm512_add_epi64(s, barrett_ifma_mul_lazy(c, v, y));
            _mm512_storeu_si512(pacc.add(i).cast(), cond_sub(cond_sub(r, c.two_q), c.q));
        }
    }
    scalar::gather_mul_acc_slice(m, &mut acc[n..], src, &perm[n..], &b[n..]);
}

#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
pub(crate) fn gather_mul_acc_pair_slice(
    m: &Modulus,
    acc0: &mut [u64],
    acc1: &mut [u64],
    src: &[u64],
    perm: &[u32],
    b0: &[u64],
    b1: &[u64],
) {
    if barrett_ifma_ok(m) {
        // SAFETY: avx512ifma was just runtime-detected by barrett_ifma_ok.
        unsafe { gather_mul_acc_pair_slice_ifma(m, acc0, acc1, src, perm, b0, b1) };
        return;
    }
    let c = barrett(m);
    let n = acc0.len() - acc0.len() % LANES;
    let (pa0, pa1, pp, pb0, pb1) = (
        acc0.as_mut_ptr(),
        acc1.as_mut_ptr(),
        perm.as_ptr(),
        b0.as_ptr(),
        b1.as_ptr(),
    );
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n; slice lengths asserted equal by the
        // dispatcher; perm values index src by table construction.
        unsafe {
            let idx = _mm256_loadu_si256(pp.add(i).cast());
            let v = _mm512_i32gather_epi64::<8>(idx, src.as_ptr().cast());
            let y0 = _mm512_loadu_si512(pb0.add(i).cast());
            let y1 = _mm512_loadu_si512(pb1.add(i).cast());
            let s0 = _mm512_loadu_si512(pa0.add(i).cast());
            let s1 = _mm512_loadu_si512(pa1.add(i).cast());
            _mm512_storeu_si512(pa0.add(i).cast(), add_mod_v(s0, barrett_mul(c, v, y0), c.q));
            _mm512_storeu_si512(pa1.add(i).cast(), add_mod_v(s1, barrett_mul(c, v, y1), c.q));
        }
    }
    scalar::gather_mul_acc_pair_slice(m, &mut acc0[n..], &mut acc1[n..], src, &perm[n..], &b0[n..], &b1[n..]);
}

#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx512f,avx512dq,avx512vl,avx512ifma")]
fn gather_mul_acc_pair_slice_ifma(
    m: &Modulus,
    acc0: &mut [u64],
    acc1: &mut [u64],
    src: &[u64],
    perm: &[u32],
    b0: &[u64],
    b1: &[u64],
) {
    let c = barrett_ifma(m);
    let n = acc0.len() - acc0.len() % LANES;
    let (pa0, pa1, pp, pb0, pb1) = (
        acc0.as_mut_ptr(),
        acc1.as_mut_ptr(),
        perm.as_ptr(),
        b0.as_ptr(),
        b1.as_ptr(),
    );
    for i in (0..n).step_by(LANES) {
        // SAFETY: i + LANES <= n; slice lengths asserted equal by the
        // dispatcher; perm values index src by table construction.
        unsafe {
            let idx = _mm256_loadu_si256(pp.add(i).cast());
            let v = _mm512_i32gather_epi64::<8>(idx, src.as_ptr().cast());
            let y0 = _mm512_loadu_si512(pb0.add(i).cast());
            let y1 = _mm512_loadu_si512(pb1.add(i).cast());
            let s0 = _mm512_loadu_si512(pa0.add(i).cast());
            let s1 = _mm512_loadu_si512(pa1.add(i).cast());
            let r0 = _mm512_add_epi64(s0, barrett_ifma_mul_lazy(c, v, y0));
            let r1 = _mm512_add_epi64(s1, barrett_ifma_mul_lazy(c, v, y1));
            _mm512_storeu_si512(pa0.add(i).cast(), cond_sub(cond_sub(r0, c.two_q), c.q));
            _mm512_storeu_si512(pa1.add(i).cast(), cond_sub(cond_sub(r1, c.two_q), c.q));
        }
    }
    scalar::gather_mul_acc_pair_slice(m, &mut acc0[n..], &mut acc1[n..], src, &perm[n..], &b0[n..], &b1[n..]);
}

// ---------------------------------------------------------------------------
// NTT: multi-stage drivers + butterfly stage kernels.
// ---------------------------------------------------------------------------

/// Per-table constants shared by every stage kernel.
#[derive(Clone, Copy)]
struct NttConsts {
    q: __m512i,
    two_q: __m512i,
    mask52: __m512i,
    use_ifma: bool,
}

#[inline]
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
fn ntt_consts(m: &Modulus, use_ifma: bool) -> NttConsts {
    NttConsts {
        q: splat(m.value()),
        two_q: splat(m.two_q()),
        mask52: splat((1u64 << 52) - 1),
        use_ifma,
    }
}

/// Forward (CT/DIT) butterfly on vectors: `x` in `[0, 4q)`, `y` in `[0, 4q)`,
/// returns `(x' + v, x' + 2q - v)` with `x'` reduced to `[0, 2q)` and the
/// twiddle product `v` in `[0, 2q)`.
#[inline]
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
fn fwd_butterfly(c: NttConsts, x: __m512i, y: __m512i, w: __m512i, ws: __m512i) -> (__m512i, __m512i) {
    let xr = cond_sub(x, c.two_q);
    let v = mul_shoup_lazy_v(y, w, ws, c.q);
    (
        _mm512_add_epi64(xr, v),
        _mm512_sub_epi64(_mm512_add_epi64(xr, c.two_q), v),
    )
}

/// IFMA forward butterfly; `ws52` is the 52-bit-radix Shoup constant.
#[inline]
#[target_feature(enable = "avx512f,avx512dq,avx512vl,avx512ifma")]
fn fwd_butterfly_ifma(c: NttConsts, x: __m512i, y: __m512i, w: __m512i, ws52: __m512i) -> (__m512i, __m512i) {
    let xr = cond_sub(x, c.two_q);
    let v = mul_shoup52_lazy_v(y, w, ws52, c.q, c.mask52);
    (
        _mm512_add_epi64(xr, v),
        _mm512_sub_epi64(_mm512_add_epi64(xr, c.two_q), v),
    )
}

/// Inverse (GS/DIF) butterfly: operands in `[0, 2q)`, returns the reduced sum
/// and the twiddle product of the lifted difference, both in `[0, 2q)`.
#[inline]
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
fn inv_butterfly(c: NttConsts, u: __m512i, v: __m512i, w: __m512i, ws: __m512i) -> (__m512i, __m512i) {
    let s = cond_sub(_mm512_add_epi64(u, v), c.two_q);
    let d = _mm512_sub_epi64(_mm512_add_epi64(u, c.two_q), v);
    (s, mul_shoup_lazy_v(d, w, ws, c.q))
}

#[inline]
#[target_feature(enable = "avx512f,avx512dq,avx512vl,avx512ifma")]
fn inv_butterfly_ifma(c: NttConsts, u: __m512i, v: __m512i, w: __m512i, ws52: __m512i) -> (__m512i, __m512i) {
    let s = cond_sub(_mm512_add_epi64(u, v), c.two_q);
    let d = _mm512_sub_epi64(_mm512_add_epi64(u, c.two_q), v);
    (s, mul_shoup52_lazy_v(d, w, ws52, c.q, c.mask52))
}

/// A broadcast twiddle operand: the factor plus its Shoup companion, already
/// chosen for the active multiply path (64-bit or 52-bit radix).
#[derive(Clone, Copy)]
struct Tw {
    w: __m512i,
    sh: __m512i,
}

/// Loads and broadcasts twiddle `k` from the tables, picking the 52-bit
/// Shoup constant when the IFMA path is active.
#[inline]
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
fn load_tw(tw: &[u64], tws: &[u64], tws52: &[u64], use_ifma: bool, k: usize) -> Tw {
    let sh = if use_ifma { tws52[k] } else { tws[k] };
    Tw {
        w: splat(tw[k]),
        sh: splat(sh),
    }
}

/// Forward butterfly routed to the active multiply path.
#[inline]
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
fn fwd_bf(c: NttConsts, x: __m512i, y: __m512i, t: Tw) -> (__m512i, __m512i) {
    if c.use_ifma {
        // SAFETY: use_ifma is set only after runtime avx512ifma detection.
        unsafe { fwd_butterfly_ifma(c, x, y, t.w, t.sh) }
    } else {
        fwd_butterfly(c, x, y, t.w, t.sh)
    }
}

/// Inverse butterfly routed to the active multiply path.
#[inline]
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
fn inv_bf(c: NttConsts, u: __m512i, v: __m512i, t: Tw) -> (__m512i, __m512i) {
    if c.use_ifma {
        // SAFETY: use_ifma is set only after runtime avx512ifma detection.
        unsafe { inv_butterfly_ifma(c, u, v, t.w, t.sh) }
    } else {
        inv_butterfly(c, u, v, t.w, t.sh)
    }
}

/// Lazy Shoup product routed to the active multiply path; operand may be any
/// lazy value (below `2^52` on the IFMA path), result in `[0, 2q)`.
#[inline]
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
fn shoup_mul_lazy(c: NttConsts, a: __m512i, t: Tw) -> __m512i {
    if c.use_ifma {
        // SAFETY: use_ifma is set only after runtime avx512ifma detection.
        unsafe { mul_shoup52_lazy_v(a, t.w, t.sh, c.q, c.mask52) }
    } else {
        mul_shoup_lazy_v(a, t.w, t.sh, c.q)
    }
}

/// One butterfly group with stride `t >= LANES`: `x`/`y` point at the two
/// disjoint `t`-element halves, single twiddle.
///
/// # Safety
///
/// `x` and `y` must each be valid for `t` reads/writes and must not overlap.
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
unsafe fn fwd_pass_large(c: NttConsts, x: *mut u64, y: *mut u64, t: usize, wt: Tw) {
    debug_assert!(t.is_multiple_of(LANES));
    for j in (0..t).step_by(LANES) {
        // SAFETY: j + LANES <= t; caller guarantees both ranges valid.
        unsafe {
            let xv = _mm512_loadu_si512(x.add(j).cast());
            let yv = _mm512_loadu_si512(y.add(j).cast());
            let (nx, ny) = fwd_bf(c, xv, yv, wt);
            _mm512_storeu_si512(x.add(j).cast(), nx);
            _mm512_storeu_si512(y.add(j).cast(), ny);
        }
    }
}

/// Two fused forward stages over one stage-A group of `2t` elements held in
/// registers: stage A pairs quarters `(0,2)`/`(1,3)` at stride `t`, stage B
/// finishes both halves at stride `t/2` — half the loads/stores of two
/// separate passes.
///
/// # Safety
///
/// `p` must be valid for `2t` reads/writes; `t >= 2 * LANES`.
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
unsafe fn fwd_pass_large2(c: NttConsts, p: *mut u64, t: usize, wa: Tw, wb0: Tw, wb1: Tw) {
    let h = t / 2;
    debug_assert!(h.is_multiple_of(LANES));
    for j in (0..h).step_by(LANES) {
        // SAFETY: j + t + h + LANES <= 2t; the four quarter slots are
        // disjoint in-bounds ranges of the caller-guaranteed 2t span.
        unsafe {
            let mut v0 = _mm512_loadu_si512(p.add(j).cast());
            let mut v1 = _mm512_loadu_si512(p.add(j + h).cast());
            let mut v2 = _mm512_loadu_si512(p.add(j + t).cast());
            let mut v3 = _mm512_loadu_si512(p.add(j + t + h).cast());
            (v0, v2) = fwd_bf(c, v0, v2, wa);
            (v1, v3) = fwd_bf(c, v1, v3, wa);
            (v0, v1) = fwd_bf(c, v0, v1, wb0);
            (v2, v3) = fwd_bf(c, v2, v3, wb1);
            _mm512_storeu_si512(p.add(j).cast(), v0);
            _mm512_storeu_si512(p.add(j + h).cast(), v1);
            _mm512_storeu_si512(p.add(j + t).cast(), v2);
            _mm512_storeu_si512(p.add(j + t + h).cast(), v3);
        }
    }
}

/// Three fused forward stages over one stage-A group of `8e` elements
/// (`e` = the stage-C stride `lt/4`): stage A at stride `4e`, stage B at
/// `2e`, stage C at `e`, all on eight vectors held in registers.
///
/// # Safety
///
/// `p` must be valid for `8e` reads/writes; `e >= LANES`.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
unsafe fn fwd_pass_large3(
    c: NttConsts,
    p: *mut u64,
    e: usize,
    wa: Tw,
    wb0: Tw,
    wb1: Tw,
    wc0: Tw,
    wc1: Tw,
    wc2: Tw,
    wc3: Tw,
) {
    debug_assert!(e.is_multiple_of(LANES));
    for j in (0..e).step_by(LANES) {
        // SAFETY: j + 7e + LANES <= 8e; eight disjoint in-bounds octants.
        unsafe {
            let mut v0 = _mm512_loadu_si512(p.add(j).cast());
            let mut v1 = _mm512_loadu_si512(p.add(j + e).cast());
            let mut v2 = _mm512_loadu_si512(p.add(j + 2 * e).cast());
            let mut v3 = _mm512_loadu_si512(p.add(j + 3 * e).cast());
            let mut v4 = _mm512_loadu_si512(p.add(j + 4 * e).cast());
            let mut v5 = _mm512_loadu_si512(p.add(j + 5 * e).cast());
            let mut v6 = _mm512_loadu_si512(p.add(j + 6 * e).cast());
            let mut v7 = _mm512_loadu_si512(p.add(j + 7 * e).cast());
            (v0, v4) = fwd_bf(c, v0, v4, wa);
            (v1, v5) = fwd_bf(c, v1, v5, wa);
            (v2, v6) = fwd_bf(c, v2, v6, wa);
            (v3, v7) = fwd_bf(c, v3, v7, wa);
            (v0, v2) = fwd_bf(c, v0, v2, wb0);
            (v1, v3) = fwd_bf(c, v1, v3, wb0);
            (v4, v6) = fwd_bf(c, v4, v6, wb1);
            (v5, v7) = fwd_bf(c, v5, v7, wb1);
            (v0, v1) = fwd_bf(c, v0, v1, wc0);
            (v2, v3) = fwd_bf(c, v2, v3, wc1);
            (v4, v5) = fwd_bf(c, v4, v5, wc2);
            (v6, v7) = fwd_bf(c, v6, v7, wc3);
            _mm512_storeu_si512(p.add(j).cast(), v0);
            _mm512_storeu_si512(p.add(j + e).cast(), v1);
            _mm512_storeu_si512(p.add(j + 2 * e).cast(), v2);
            _mm512_storeu_si512(p.add(j + 3 * e).cast(), v3);
            _mm512_storeu_si512(p.add(j + 4 * e).cast(), v4);
            _mm512_storeu_si512(p.add(j + 5 * e).cast(), v5);
            _mm512_storeu_si512(p.add(j + 6 * e).cast(), v6);
            _mm512_storeu_si512(p.add(j + 7 * e).cast(), v7);
        }
    }
}

/// # Safety
///
/// As [`fwd_pass_large`].
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
unsafe fn inv_pass_large(c: NttConsts, x: *mut u64, y: *mut u64, t: usize, wt: Tw) {
    debug_assert!(t.is_multiple_of(LANES));
    for j in (0..t).step_by(LANES) {
        // SAFETY: j + LANES <= t; caller guarantees both ranges valid.
        unsafe {
            let xv = _mm512_loadu_si512(x.add(j).cast());
            let yv = _mm512_loadu_si512(y.add(j).cast());
            let (nx, ny) = inv_bf(c, xv, yv, wt);
            _mm512_storeu_si512(x.add(j).cast(), nx);
            _mm512_storeu_si512(y.add(j).cast(), ny);
        }
    }
}

/// Two fused inverse stages over one stage-B group of `4t` elements: stage A
/// pairs quarters `(0,1)`/`(2,3)` at stride `t`, stage B pairs `(0,2)`/`(1,3)`
/// at stride `2t`.
///
/// # Safety
///
/// `p` must be valid for `4t` reads/writes; `t >= LANES`.
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
unsafe fn inv_pass_large2(c: NttConsts, p: *mut u64, t: usize, wa0: Tw, wa1: Tw, wb: Tw) {
    debug_assert!(t.is_multiple_of(LANES));
    for j in (0..t).step_by(LANES) {
        // SAFETY: j + 3t + LANES <= 4t; four disjoint in-bounds quarters.
        unsafe {
            let mut v0 = _mm512_loadu_si512(p.add(j).cast());
            let mut v1 = _mm512_loadu_si512(p.add(j + t).cast());
            let mut v2 = _mm512_loadu_si512(p.add(j + 2 * t).cast());
            let mut v3 = _mm512_loadu_si512(p.add(j + 3 * t).cast());
            (v0, v1) = inv_bf(c, v0, v1, wa0);
            (v2, v3) = inv_bf(c, v2, v3, wa1);
            (v0, v2) = inv_bf(c, v0, v2, wb);
            (v1, v3) = inv_bf(c, v1, v3, wb);
            _mm512_storeu_si512(p.add(j).cast(), v0);
            _mm512_storeu_si512(p.add(j + t).cast(), v1);
            _mm512_storeu_si512(p.add(j + 2 * t).cast(), v2);
            _mm512_storeu_si512(p.add(j + 3 * t).cast(), v3);
        }
    }
}

/// Three fused inverse stages over one stage-C group of `8e` elements
/// (`e` = the stage-A stride `lt`): stage A at stride `e`, stage B at `2e`,
/// stage C at `4e`; mirror of [`fwd_pass_large3`].
///
/// # Safety
///
/// `p` must be valid for `8e` reads/writes; `e >= LANES`.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
unsafe fn inv_pass_large3(
    c: NttConsts,
    p: *mut u64,
    e: usize,
    wa0: Tw,
    wa1: Tw,
    wa2: Tw,
    wa3: Tw,
    wb0: Tw,
    wb1: Tw,
    wc: Tw,
) {
    debug_assert!(e.is_multiple_of(LANES));
    for j in (0..e).step_by(LANES) {
        // SAFETY: j + 7e + LANES <= 8e; eight disjoint in-bounds octants.
        unsafe {
            let mut v0 = _mm512_loadu_si512(p.add(j).cast());
            let mut v1 = _mm512_loadu_si512(p.add(j + e).cast());
            let mut v2 = _mm512_loadu_si512(p.add(j + 2 * e).cast());
            let mut v3 = _mm512_loadu_si512(p.add(j + 3 * e).cast());
            let mut v4 = _mm512_loadu_si512(p.add(j + 4 * e).cast());
            let mut v5 = _mm512_loadu_si512(p.add(j + 5 * e).cast());
            let mut v6 = _mm512_loadu_si512(p.add(j + 6 * e).cast());
            let mut v7 = _mm512_loadu_si512(p.add(j + 7 * e).cast());
            (v0, v1) = inv_bf(c, v0, v1, wa0);
            (v2, v3) = inv_bf(c, v2, v3, wa1);
            (v4, v5) = inv_bf(c, v4, v5, wa2);
            (v6, v7) = inv_bf(c, v6, v7, wa3);
            (v0, v2) = inv_bf(c, v0, v2, wb0);
            (v1, v3) = inv_bf(c, v1, v3, wb0);
            (v4, v6) = inv_bf(c, v4, v6, wb1);
            (v5, v7) = inv_bf(c, v5, v7, wb1);
            (v0, v4) = inv_bf(c, v0, v4, wc);
            (v1, v5) = inv_bf(c, v1, v5, wc);
            (v2, v6) = inv_bf(c, v2, v6, wc);
            (v3, v7) = inv_bf(c, v3, v7, wc);
            _mm512_storeu_si512(p.add(j).cast(), v0);
            _mm512_storeu_si512(p.add(j + e).cast(), v1);
            _mm512_storeu_si512(p.add(j + 2 * e).cast(), v2);
            _mm512_storeu_si512(p.add(j + 3 * e).cast(), v3);
            _mm512_storeu_si512(p.add(j + 4 * e).cast(), v4);
            _mm512_storeu_si512(p.add(j + 5 * e).cast(), v5);
            _mm512_storeu_si512(p.add(j + 6 * e).cast(), v6);
            _mm512_storeu_si512(p.add(j + 7 * e).cast(), v7);
        }
    }
}

/// The final inverse stage (stride `n/2`, single twiddle) fused with the
/// `n^{-1}` sweep: the sum path multiplies by `n^{-1}` directly, the
/// difference path by the precombined `w_1 * n^{-1}`, and both outputs are
/// canonicalized in-register. Saves the whole closing `n^{-1}` pass; output
/// is canonical, hence bit-identical to the unfused sequence.
///
/// # Safety
///
/// As [`fwd_pass_large`].
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
unsafe fn inv_final_pass(c: NttConsts, x: *mut u64, y: *mut u64, t: usize, wd: Tw, wn: Tw) {
    debug_assert!(t.is_multiple_of(LANES));
    for j in (0..t).step_by(LANES) {
        // SAFETY: j + LANES <= t; caller guarantees both ranges valid.
        unsafe {
            let u = _mm512_loadu_si512(x.add(j).cast());
            let v = _mm512_loadu_si512(y.add(j).cast());
            // Butterfly exactly as inv_bf, but the products fold in n^{-1}.
            let s = cond_sub(_mm512_add_epi64(u, v), c.two_q);
            let d = _mm512_sub_epi64(_mm512_add_epi64(u, c.two_q), v);
            let sx = shoup_mul_lazy(c, s, wn);
            let dy = shoup_mul_lazy(c, d, wd);
            _mm512_storeu_si512(x.add(j).cast(), cond_sub(sx, c.q));
            _mm512_storeu_si512(y.add(j).cast(), cond_sub(dy, c.q));
        }
    }
}

/// Lane shuffles for sub-vector strides `t in {1, 2, 4}`: a 16-element run
/// holds `8/t` whole butterfly groups; `permutex2var` splits it into an
/// all-`x` and an all-`y` vector and knits the results back.
struct SmallIdx {
    ix: __m512i,   // x-half lanes from (v0, v1)
    iy: __m512i,   // y-half lanes from (v0, v1)
    out0: __m512i, // first output vector from (x', y')
    out1: __m512i, // second output vector from (x', y')
    rep: __m512i,  // twiddle replication: lane l reads twiddle l/t
}

#[inline]
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
fn small_idx(t: usize) -> SmallIdx {
    let mut ix = [0i64; LANES];
    let mut iy = [0i64; LANES];
    let mut out0 = [0i64; LANES];
    let mut out1 = [0i64; LANES];
    let mut rep = [0i64; LANES];
    for l in 0..LANES {
        ix[l] = ((l / t) * 2 * t + l % t) as i64;
        iy[l] = ix[l] + t as i64;
        rep[l] = (l / t) as i64;
    }
    for e in 0..2 * LANES {
        let (g, r) = (e / (2 * t), e % (2 * t));
        // Element e of the run came from x-lane g*t+r (r < t) or y-lane
        // g*t+r-t; permutex2var selects the second operand via lane | 8.
        let lane = if r < t {
            (g * t + r) as i64
        } else {
            (g * t + r - t) as i64 + LANES as i64
        };
        if e < LANES {
            out0[e] = lane;
        } else {
            out1[e - LANES] = lane;
        }
    }
    // SAFETY: reading 64 bytes from the 8-element i64 arrays above.
    unsafe {
        SmallIdx {
            ix: _mm512_loadu_si512(ix.as_ptr().cast()),
            iy: _mm512_loadu_si512(iy.as_ptr().cast()),
            out0: _mm512_loadu_si512(out0.as_ptr().cast()),
            out1: _mm512_loadu_si512(out1.as_ptr().cast()),
            rep: _mm512_loadu_si512(rep.as_ptr().cast()),
        }
    }
}

/// One forward sub-vector stage (`t in {1, 2, 4}`) applied to a 16-element
/// run already held in `(v0, v1)`: shuffle the halves together, butterfly
/// with per-lane twiddles, knit back. With `correct` set (the global `t = 1`
/// final stage) outputs are reduced from `[0, 4q)` to canonical.
///
/// # Safety
///
/// `k0 + 8 <= tw.len()` and `k0 + 8 <= shoup.len()` (the replication permute
/// may skip trailing lanes of the 8-entry twiddle load, but the load itself
/// must stay inside the tables).
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
unsafe fn fwd_sub_stage(
    c: NttConsts,
    v0: __m512i,
    v1: __m512i,
    idx: &SmallIdx,
    tw: &[u64],
    shoup: &[u64],
    k0: usize,
    correct: bool,
) -> (__m512i, __m512i) {
    let x = _mm512_permutex2var_epi64(v0, idx.ix, v1);
    let y = _mm512_permutex2var_epi64(v0, idx.iy, v1);
    // SAFETY: caller guarantees 8 entries from k0 are in-bounds.
    let (wv, wsv) = unsafe {
        (
            _mm512_permutexvar_epi64(idx.rep, _mm512_loadu_si512(tw.as_ptr().add(k0).cast())),
            _mm512_permutexvar_epi64(idx.rep, _mm512_loadu_si512(shoup.as_ptr().add(k0).cast())),
        )
    };
    let (mut nx, mut ny) = if c.use_ifma {
        // SAFETY: use_ifma is set only after runtime avx512ifma detection.
        unsafe { fwd_butterfly_ifma(c, x, y, wv, wsv) }
    } else {
        fwd_butterfly(c, x, y, wv, wsv)
    };
    if correct {
        nx = cond_sub(cond_sub(nx, c.two_q), c.q);
        ny = cond_sub(cond_sub(ny, c.two_q), c.q);
    }
    (
        _mm512_permutex2var_epi64(nx, idx.out0, ny),
        _mm512_permutex2var_epi64(nx, idx.out1, ny),
    )
}

/// Inverse counterpart of [`fwd_sub_stage`].
///
/// # Safety
///
/// As [`fwd_sub_stage`].
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
unsafe fn inv_sub_stage(
    c: NttConsts,
    v0: __m512i,
    v1: __m512i,
    idx: &SmallIdx,
    tw: &[u64],
    shoup: &[u64],
    k0: usize,
) -> (__m512i, __m512i) {
    let u = _mm512_permutex2var_epi64(v0, idx.ix, v1);
    let v = _mm512_permutex2var_epi64(v0, idx.iy, v1);
    // SAFETY: caller guarantees 8 entries from k0 are in-bounds.
    let (wv, wsv) = unsafe {
        (
            _mm512_permutexvar_epi64(idx.rep, _mm512_loadu_si512(tw.as_ptr().add(k0).cast())),
            _mm512_permutexvar_epi64(idx.rep, _mm512_loadu_si512(shoup.as_ptr().add(k0).cast())),
        )
    };
    let (nu, nv) = if c.use_ifma {
        // SAFETY: use_ifma is set only after runtime avx512ifma detection.
        unsafe { inv_butterfly_ifma(c, u, v, wv, wsv) }
    } else {
        inv_butterfly(c, u, v, wv, wsv)
    };
    (
        _mm512_permutex2var_epi64(nu, idx.out0, nv),
        _mm512_permutex2var_epi64(nu, idx.out1, nv),
    )
}

/// All trailing forward stages of one block (`t = 8, 4, 2, 1`) in a single
/// load/store round trip per 16-element run. The `t = 8` stage is
/// lane-aligned (whole vectors, broadcast twiddle), the sub-vector stages
/// shuffle in-register, and the final stage folds in the canonical
/// correction — replacing four separate block passes plus a correction
/// sweep.
///
/// `base8..base1` are the per-block twiddle-table offsets of each stage
/// (stage `t` uses entries `base_t + groups-before-this-run`).
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
fn fwd_tail(
    c: NttConsts,
    block: &mut [u64],
    tw: &[u64],
    tws: &[u64],
    tws52: &[u64],
    base8: usize,
    base4: usize,
    base2: usize,
    base1: usize,
) {
    let idx4 = small_idx(4);
    let idx2 = small_idx(2);
    let idx1 = small_idx(1);
    let len = block.len();
    debug_assert_eq!(len % (2 * LANES), 0);
    let p = block.as_mut_ptr();
    let shoup = if c.use_ifma { tws52 } else { tws };
    for r in 0..len / (2 * LANES) {
        let j = 2 * LANES * r;
        // SAFETY: j + 16 <= len; every twiddle load ends within the n-entry
        // tables (the deepest stage's last 8-entry load ends exactly at
        // entry n - 1).
        unsafe {
            let mut v0 = _mm512_loadu_si512(p.add(j).cast());
            let mut v1 = _mm512_loadu_si512(p.add(j + LANES).cast());
            let w8 = splat(tw[base8 + r]);
            let s8 = splat(shoup[base8 + r]);
            (v0, v1) = if c.use_ifma {
                fwd_butterfly_ifma(c, v0, v1, w8, s8)
            } else {
                fwd_butterfly(c, v0, v1, w8, s8)
            };
            (v0, v1) = fwd_sub_stage(c, v0, v1, &idx4, tw, shoup, base4 + 2 * r, false);
            (v0, v1) = fwd_sub_stage(c, v0, v1, &idx2, tw, shoup, base2 + 4 * r, false);
            (v0, v1) = fwd_sub_stage(c, v0, v1, &idx1, tw, shoup, base1 + 8 * r, true);
            _mm512_storeu_si512(p.add(j).cast(), v0);
            _mm512_storeu_si512(p.add(j + LANES).cast(), v1);
        }
    }
}

/// All leading inverse stages of one block (`t = 1, 2, 4` and, unless it is
/// the global final stage, `t = 8`) in a single round trip per 16-element
/// run; mirror of [`fwd_tail`].
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
fn inv_head(
    c: NttConsts,
    block: &mut [u64],
    tw: &[u64],
    tws: &[u64],
    tws52: &[u64],
    base1: usize,
    base2: usize,
    base4: usize,
    base8: usize,
    with_t8: bool,
) {
    let idx4 = small_idx(4);
    let idx2 = small_idx(2);
    let idx1 = small_idx(1);
    let len = block.len();
    debug_assert_eq!(len % (2 * LANES), 0);
    let p = block.as_mut_ptr();
    let shoup = if c.use_ifma { tws52 } else { tws };
    for r in 0..len / (2 * LANES) {
        let j = 2 * LANES * r;
        // SAFETY: as fwd_tail.
        unsafe {
            let mut v0 = _mm512_loadu_si512(p.add(j).cast());
            let mut v1 = _mm512_loadu_si512(p.add(j + LANES).cast());
            (v0, v1) = inv_sub_stage(c, v0, v1, &idx1, tw, shoup, base1 + 8 * r);
            (v0, v1) = inv_sub_stage(c, v0, v1, &idx2, tw, shoup, base2 + 4 * r);
            (v0, v1) = inv_sub_stage(c, v0, v1, &idx4, tw, shoup, base4 + 2 * r);
            if with_t8 {
                let w8 = splat(tw[base8 + r]);
                let s8 = splat(shoup[base8 + r]);
                (v0, v1) = if c.use_ifma {
                    inv_butterfly_ifma(c, v0, v1, w8, s8)
                } else {
                    inv_butterfly(c, v0, v1, w8, s8)
                };
            }
            _mm512_storeu_si512(p.add(j).cast(), v0);
            _mm512_storeu_si512(p.add(j + LANES).cast(), v1);
        }
    }
}

/// Forward lazy NTT as a greedy multi-stage descent: each pass over the
/// array retires up to three vector-wide stages (all tiles of one pass
/// complete their stage group before the next pass starts), and the last
/// four sub-vector stages plus the canonical correction run in the fused
/// [`fwd_tail`]. For n = 8192 that is four memory round trips for all 13
/// stages. Multi-stage tiles double as cache blocks, so no separate
/// strided/blocked split is needed.
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
pub(crate) fn ntt_forward(table: &NttTable, a: &mut [u64]) {
    let n = table.n();
    if n < 2 * LANES {
        return scalar::ntt_forward(table, a);
    }
    let m = table.modulus();
    let tw = table.root_pows();
    let tws = table.root_pows_shoup();
    let tws52 = table.root_pows_shoup52().unwrap_or(&[]);
    let use_ifma = !tws52.is_empty() && is_x86_feature_detected!("avx512ifma");
    let c = ntt_consts(m, use_ifma);
    let p = a.as_mut_ptr();

    // Stage at stride lt has llen groups (tiles) of 2*lt elements; stage
    // level llen is also its twiddle-table base. With m = log2(lt / LANES),
    // triples run while m >= 3, a pair handles m == 2, a single m == 1, so
    // the descent always lands on lt == LANES for the fused tail.
    let mut lt = n >> 1;
    let mut llen = 1usize;
    while lt > LANES {
        if lt >= 8 * LANES {
            // Triple: stages at strides lt, lt/2, lt/4. Stage-B twiddles
            // 2g, 2g+1 and stage-C twiddles 4g..4g+3 of the next levels.
            let e = lt / 4;
            for g in 0..llen {
                let j0 = 2 * g * lt;
                let wa = load_tw(tw, tws, tws52, use_ifma, llen + g);
                let wb0 = load_tw(tw, tws, tws52, use_ifma, 2 * llen + 2 * g);
                let wb1 = load_tw(tw, tws, tws52, use_ifma, 2 * llen + 2 * g + 1);
                let wc0 = load_tw(tw, tws, tws52, use_ifma, 4 * llen + 4 * g);
                let wc1 = load_tw(tw, tws, tws52, use_ifma, 4 * llen + 4 * g + 1);
                let wc2 = load_tw(tw, tws, tws52, use_ifma, 4 * llen + 4 * g + 2);
                let wc3 = load_tw(tw, tws, tws52, use_ifma, 4 * llen + 4 * g + 3);
                // SAFETY: [j0, j0 + 2*lt) is in-bounds (j0 + 2*lt <= n).
                unsafe { fwd_pass_large3(c, p.add(j0), e, wa, wb0, wb1, wc0, wc1, wc2, wc3) };
            }
            llen <<= 3;
            lt >>= 3;
        } else if lt >= 4 * LANES {
            // Pair: stages at strides lt and lt/2.
            for g in 0..llen {
                let j0 = 2 * g * lt;
                let wa = load_tw(tw, tws, tws52, use_ifma, llen + g);
                let wb0 = load_tw(tw, tws, tws52, use_ifma, 2 * llen + 2 * g);
                let wb1 = load_tw(tw, tws, tws52, use_ifma, 2 * llen + 2 * g + 1);
                // SAFETY: [j0, j0 + 2*lt) is in-bounds (j0 + 2*lt <= n).
                unsafe { fwd_pass_large2(c, p.add(j0), lt, wa, wb0, wb1) };
            }
            llen <<= 2;
            lt >>= 2;
        } else {
            for g in 0..llen {
                let j0 = 2 * g * lt;
                let wt = load_tw(tw, tws, tws52, use_ifma, llen + g);
                // SAFETY: disjoint in-bounds halves of one tile.
                unsafe { fwd_pass_large(c, p.add(j0), p.add(j0 + lt), lt, wt) };
            }
            llen <<= 1;
            lt >>= 1;
        }
    }
    // Stages 8, 4, 2, 1 plus the canonical correction in one pass; stage t
    // has twiddle base llen_t = n / (2t), doubling as t halves from 8.
    debug_assert_eq!(lt, LANES);
    fwd_tail(c, a, tw, tws, tws52, llen, 2 * llen, 4 * llen, 8 * llen);
}

/// Inverse lazy NTT, mirror of [`ntt_forward`]: the fused [`inv_head`]
/// opens with the four sub-vector stages, a greedy multi-stage ascent
/// retires up to three vector-wide stages per pass, and the final
/// stride-`n/2` stage is fused with the `n^{-1}` sweep and
/// canonicalization.
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
pub(crate) fn ntt_inverse(table: &NttTable, a: &mut [u64]) {
    let n = table.n();
    if n < 2 * LANES {
        return scalar::ntt_inverse(table, a);
    }
    let m = table.modulus();
    let tw = table.inv_root_pows();
    let tws = table.inv_root_pows_shoup();
    let tws52 = table.inv_root_pows_shoup52().unwrap_or(&[]);
    let use_ifma = !tws52.is_empty() && is_x86_feature_detected!("avx512ifma");
    let c = ntt_consts(m, use_ifma);

    // Stages t = 1..8 in one opening pass; stage t has twiddle base
    // llen_t = n / (2t). t = 8 is deferred to the fused final pass when it
    // is the global last stage (n == 16).
    inv_head(c, a, tw, tws, tws52, n >> 1, n >> 2, n >> 3, n >> 4, n > 2 * LANES);
    // Greedy ascent to (but excluding) the final stride-n/2 stage: a triple
    // is exact while its largest stride stays below n/2, and the remainder
    // count (log2(n/32) stages) is finished by a pair or single.
    let p = a.as_mut_ptr();
    let mut lt = 2 * LANES;
    let mut llen = n >> 5;
    while 2 * lt < n {
        if 8 * lt < n {
            // Triple: stages at strides lt, 2*lt, 4*lt. Stage-A twiddles
            // 4g..4g+3, stage-B 2g, 2g+1 of the next levels.
            for g in 0..llen / 4 {
                let j0 = 8 * g * lt;
                let wa0 = load_tw(tw, tws, tws52, use_ifma, llen + 4 * g);
                let wa1 = load_tw(tw, tws, tws52, use_ifma, llen + 4 * g + 1);
                let wa2 = load_tw(tw, tws, tws52, use_ifma, llen + 4 * g + 2);
                let wa3 = load_tw(tw, tws, tws52, use_ifma, llen + 4 * g + 3);
                let wb0 = load_tw(tw, tws, tws52, use_ifma, llen / 2 + 2 * g);
                let wb1 = load_tw(tw, tws, tws52, use_ifma, llen / 2 + 2 * g + 1);
                let wc = load_tw(tw, tws, tws52, use_ifma, llen / 4 + g);
                // SAFETY: [j0, j0 + 8*lt) is in-bounds (j0 + 8*lt <= n).
                unsafe { inv_pass_large3(c, p.add(j0), lt, wa0, wa1, wa2, wa3, wb0, wb1, wc) };
            }
            lt <<= 3;
            llen >>= 3;
        } else if 4 * lt < n {
            // Pair: stages at strides lt and 2*lt.
            for g in 0..llen / 2 {
                let j0 = 4 * g * lt;
                let wa0 = load_tw(tw, tws, tws52, use_ifma, llen + 2 * g);
                let wa1 = load_tw(tw, tws, tws52, use_ifma, llen + 2 * g + 1);
                let wb = load_tw(tw, tws, tws52, use_ifma, llen / 2 + g);
                // SAFETY: [j0, j0 + 4*lt) is in-bounds (j0 + 4*lt <= n).
                unsafe { inv_pass_large2(c, p.add(j0), lt, wa0, wa1, wb) };
            }
            lt <<= 2;
            llen >>= 2;
        } else {
            for g in 0..llen {
                let j0 = 2 * g * lt;
                let wt = load_tw(tw, tws, tws52, use_ifma, llen + g);
                // SAFETY: disjoint in-bounds halves of one tile.
                unsafe { inv_pass_large(c, p.add(j0), p.add(j0 + lt), lt, wt) };
            }
            lt <<= 1;
            llen >>= 1;
        }
    }
    // Final stage (stride n/2, single twiddle tw[1]) fused with the n^{-1}
    // sweep: the sum path takes n^{-1}, the difference path the precombined
    // tw[1] * n^{-1}; outputs are canonical.
    let half = n / 2;
    let q = m.value();
    let n_inv = table.n_inv();
    let wd_val = m.mul(tw[1], n_inv);
    let (wn_sh, wd_sh) = if use_ifma {
        (
            (((n_inv as u128) << 52) / q as u128) as u64,
            (((wd_val as u128) << 52) / q as u128) as u64,
        )
    } else {
        (table.n_inv_shoup(), m.shoup_precompute(wd_val))
    };
    let wn = Tw {
        w: splat(n_inv),
        sh: splat(wn_sh),
    };
    let wd = Tw {
        w: splat(wd_val),
        sh: splat(wd_sh),
    };
    // SAFETY: the two halves are disjoint in-bounds ranges of length n/2.
    unsafe { inv_final_pass(c, p, p.add(half), half, wd, wn) };
}
