//! Prime-field arithmetic over a word-sized modulus.

/// A prime modulus `q < 2^60` with precomputed constants for fast reduction.
///
/// The strict arithmetic methods expect operands already reduced to `[0, q)`
/// and produce results in `[0, q)`. The `*_lazy` methods implement the
/// relaxed-range ("lazy reduction") arithmetic the NTT kernels use: values
/// are allowed to drift up to `[0, 4q)` between corrections, which is why
/// the modulus is capped at `2^60` — `4q` must fit in a `u64` with headroom
/// for one addition.
///
/// # Example
///
/// ```
/// use cl_math::Modulus;
/// let q = Modulus::new(268_369_921).unwrap(); // 28-bit NTT-friendly prime
/// let a = q.mul(123_456_789, 987_654_321 % q.value());
/// assert!(a < q.value());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Modulus {
    q: u64,
    /// floor(2^128 / q), split into hi/lo 64-bit words (Barrett constant).
    barrett_hi: u64,
    barrett_lo: u64,
    /// bit width of `q` (the `k` of the word-sized Barrett constant below).
    barrett_k: u32,
    /// floor(2^{2k} / q) — single-word Barrett constant used by the vector
    /// backends, where the 128-bit constant above would need four extra
    /// multiplies per lane.
    barrett_mu: u64,
}

impl Modulus {
    /// Creates a modulus. Returns `None` if `q < 2` or `q >= 2^60`.
    ///
    /// The `2^60` cap (rather than the `2^62` a plain Barrett reduction would
    /// allow) guarantees the lazy-reduction NTT invariant: butterfly operands
    /// stay in `[0, 4q)` and `x + 2q - t` with `x, t < 4q` never overflows.
    ///
    /// Primality is not checked here; use [`crate::is_prime`] when a prime is
    /// required.
    pub fn new(q: u64) -> Option<Self> {
        if !(2..(1u64 << 60)).contains(&q) {
            return None;
        }
        // floor(2^128 / q) computed via 128-bit long division in two steps.
        let hi = u128::MAX / q as u128; // floor((2^128 - 1)/q); adjust below
        // (2^128 - 1)/q == (2^128)/q unless q divides 2^128, impossible for q>1 odd;
        // for even q it could differ by at most 0 since 2^128 mod q != 0 when q has
        // an odd factor. q=2^k would be the only problem and is not prime for k>1.
        let barrett_hi = (hi >> 64) as u64;
        let barrett_lo = hi as u64;
        let barrett_k = 64 - q.leading_zeros();
        let barrett_mu = ((1u128 << (2 * barrett_k)) / q as u128) as u64;
        Some(Self {
            q,
            barrett_hi,
            barrett_lo,
            barrett_k,
            barrett_mu,
        })
    }

    /// The modulus value.
    #[inline]
    pub fn value(&self) -> u64 {
        self.q
    }

    /// Number of bits in `q`.
    #[inline]
    pub fn bits(&self) -> u32 {
        64 - self.q.leading_zeros()
    }

    /// Twice the modulus — the reduction bound for lazy operands.
    #[inline]
    pub fn two_q(&self) -> u64 {
        self.q << 1
    }

    /// Lazy addition: plain `a + b` with no reduction. With both operands in
    /// `[0, 2q)` the result stays in `[0, 4q)`, which the NTT butterflies
    /// tolerate until the final correction sweep.
    #[inline]
    pub fn add_lazy(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.two_q() && b < self.two_q());
        a + b
    }

    /// Conditionally subtracts `2q`, mapping `[0, 4q)` into `[0, 2q)`.
    #[inline]
    pub fn reduce_lazy(&self, a: u64) -> u64 {
        debug_assert!(a < 4 * self.q);
        let two_q = self.two_q();
        if a >= two_q {
            a - two_q
        } else {
            a
        }
    }

    /// Final correction: maps a lazy value in `[0, 4q)` to canonical `[0, q)`.
    #[inline]
    pub fn correct_lazy(&self, a: u64) -> u64 {
        debug_assert!(a < 4 * self.q);
        let mut r = self.reduce_lazy(a);
        if r >= self.q {
            r -= self.q;
        }
        r
    }

    /// Modular addition.
    #[inline]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        let s = a + b;
        if s >= self.q {
            s - self.q
        } else {
            s
        }
    }

    /// Modular subtraction.
    #[inline]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        if a >= b {
            a - b
        } else {
            a + self.q - b
        }
    }

    /// Modular negation.
    #[inline]
    pub fn neg(&self, a: u64) -> u64 {
        debug_assert!(a < self.q);
        if a == 0 {
            0
        } else {
            self.q - a
        }
    }

    /// Modular multiplication via Barrett reduction.
    #[inline]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        self.reduce_u128(a as u128 * b as u128)
    }

    /// Reduces a 128-bit value modulo `q` using the Barrett constant.
    #[inline]
    pub fn reduce_u128(&self, x: u128) -> u64 {
        // Estimate quotient: qhat = floor(x * floor(2^128/q) / 2^128).
        // Using only the pieces that matter: with x = x1*2^64 + x0 and
        // m = m1*2^64 + m0 (the Barrett constant), the top 128 bits of x*m are
        //   x1*m1 + ((x1*m0 + x0*m1 + carry_of(x0*m0)) >> 64)
        let x0 = x as u64 as u128;
        let x1 = (x >> 64) as u64 as u128;
        let m0 = self.barrett_lo as u128;
        let m1 = self.barrett_hi as u128;
        let lo = x0 * m0;
        let mid1 = x1 * m0;
        let mid2 = x0 * m1;
        let carry = ((lo >> 64) + (mid1 as u64 as u128) + (mid2 as u64 as u128)) >> 64;
        let qhat = x1 * m1 + (mid1 >> 64) + (mid2 >> 64) + carry;
        let r = x.wrapping_sub(qhat.wrapping_mul(self.q as u128)) as u64;
        // qhat may underestimate by at most 2.
        let mut r = r;
        while r >= self.q {
            r -= self.q;
        }
        r
    }

    /// Modular exponentiation.
    pub fn pow(&self, mut base: u64, mut exp: u64) -> u64 {
        debug_assert!(base < self.q);
        let mut acc = 1u64 % self.q;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            exp >>= 1;
        }
        acc
    }

    /// Modular inverse of `a` (requires `q` prime and `a != 0`).
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    pub fn inv(&self, a: u64) -> u64 {
        assert!(a != 0, "zero has no modular inverse");
        self.pow(a, self.q - 2)
    }

    /// Precomputes the Shoup constant `floor(w * 2^64 / q)` for repeated
    /// multiplications by the fixed operand `w`.
    #[inline]
    pub fn shoup_precompute(&self, w: u64) -> u64 {
        debug_assert!(w < self.q);
        (((w as u128) << 64) / self.q as u128) as u64
    }

    /// Multiplies `a` by the fixed operand `w` using its precomputed Shoup
    /// constant `w_shoup`. Roughly 2-3x faster than [`Modulus::mul`].
    #[inline]
    pub fn mul_shoup(&self, a: u64, w: u64, w_shoup: u64) -> u64 {
        debug_assert!(a < self.q && w < self.q);
        let hi = ((a as u128 * w_shoup as u128) >> 64) as u64;
        let r = a
            .wrapping_mul(w)
            .wrapping_sub(hi.wrapping_mul(self.q));
        if r >= self.q {
            r - self.q
        } else {
            r
        }
    }

    /// Shoup multiplication without the final conditional subtraction.
    ///
    /// Accepts *any* `a < 2^64` (in particular lazy operands in `[0, 4q)`)
    /// and returns a value congruent to `a * w (mod q)` in `[0, 2q)`: with
    /// `hi = floor(a * w_shoup / 2^64)` the returned `a*w - hi*q` is
    /// non-negative and bounded by `q * (1 + a/2^64) < 2q`.
    #[inline]
    pub fn mul_shoup_lazy(&self, a: u64, w: u64, w_shoup: u64) -> u64 {
        debug_assert!(w < self.q);
        let hi = ((a as u128 * w_shoup as u128) >> 64) as u64;
        a.wrapping_mul(w).wrapping_sub(hi.wrapping_mul(self.q))
    }

    /// Reduces an arbitrary `u64` into `[0, q)`.
    #[inline]
    pub fn reduce(&self, a: u64) -> u64 {
        if a < self.q {
            a
        } else {
            self.reduce_u128(a as u128)
        }
    }

    /// Centered lift: maps `a` in `[0, q)` to the signed representative in
    /// `(-q/2, q/2]`.
    #[inline]
    pub fn lift_centered(&self, a: u64) -> i64 {
        debug_assert!(a < self.q);
        if a > self.q / 2 {
            a as i64 - self.q as i64
        } else {
            a as i64
        }
    }

    /// Reduces a signed integer into `[0, q)`.
    #[inline]
    pub fn from_i64(&self, a: i64) -> u64 {
        let r = a.rem_euclid(self.q as i64);
        r as u64
    }

    /// Bit width of `q` — the `k` in the word-sized Barrett constant.
    #[inline]
    pub(crate) fn barrett_k(&self) -> u32 {
        self.barrett_k
    }

    /// `floor(2^{2k} / q)` for the vector Barrett reduction.
    #[inline]
    pub(crate) fn barrett_mu(&self) -> u64 {
        self.barrett_mu
    }

    // -----------------------------------------------------------------------
    // Slice kernels. These dispatch to the active SIMD backend
    // ([`crate::backend`]); the scalar backend applies the element methods
    // above in a plain loop, and every vector backend is bit-exact against
    // it. Canonical-range kernels expect and produce `[0, q)`; the `lazy`
    // kernels document their own ranges.
    // -----------------------------------------------------------------------

    /// Element-wise `a[i] = (a[i] + b[i]) mod q`, canonical operands.
    #[inline]
    pub fn add_mod_slice(&self, a: &mut [u64], b: &[u64]) {
        crate::backend::add_mod_slice(self, a, b);
    }

    /// Element-wise `a[i] = (a[i] - b[i]) mod q`, canonical operands.
    #[inline]
    pub fn sub_mod_slice(&self, a: &mut [u64], b: &[u64]) {
        crate::backend::sub_mod_slice(self, a, b);
    }

    /// Element-wise `a[i] = -a[i] mod q`, canonical operands.
    #[inline]
    pub fn neg_mod_slice(&self, a: &mut [u64]) {
        crate::backend::neg_mod_slice(self, a);
    }

    /// Element-wise `a[i] = a[i] * b[i] mod q`, canonical operands.
    #[inline]
    pub fn mul_mod_slice(&self, a: &mut [u64], b: &[u64]) {
        crate::backend::mul_mod_slice(self, a, b);
    }

    /// Element-wise `acc[i] = (acc[i] + a[i] * b[i]) mod q`, canonical
    /// operands.
    #[inline]
    pub fn mul_acc_mod_slice(&self, acc: &mut [u64], a: &[u64], b: &[u64]) {
        crate::backend::mul_acc_mod_slice(self, acc, a, b);
    }

    /// Element-wise `a[i] = a[i] * w mod q` by Shoup multiplication with the
    /// fixed operand `w` and its precomputed constant
    /// ([`Modulus::shoup_precompute`]). Accepts canonical `a`, produces
    /// canonical output.
    #[inline]
    pub fn mul_scalar_shoup_slice(&self, a: &mut [u64], w: u64, w_shoup: u64) {
        crate::backend::mul_scalar_shoup_slice(self, a, w, w_shoup);
    }

    /// Element-wise lazy multiply-accumulate with a fixed Shoup operand:
    /// `acc[i] = reduce_lazy(acc[i] + mul_shoup_lazy(x[i], w, w_shoup))`.
    ///
    /// `acc` must be in `[0, 2q)` and stays in `[0, 2q)`; `x` may be any
    /// `u64` (Shoup-lazy accepts unreduced operands).
    #[inline]
    pub fn mul_shoup_lazy_acc_slice(&self, acc: &mut [u64], x: &[u64], w: u64, w_shoup: u64) {
        crate::backend::mul_shoup_lazy_acc_slice(self, acc, x, w, w_shoup);
    }

    /// Element-wise `out[i] = correct_lazy(out[i] + 2q - mul_shoup_lazy(alpha[i], w, w_shoup))`:
    /// subtract a Shoup product and canonicalize in one pass. `out` must be
    /// in `[0, 2q)`; output is canonical.
    #[inline]
    pub fn mul_shoup_sub_correct_slice(&self, out: &mut [u64], alpha: &[u64], w: u64, w_shoup: u64) {
        crate::backend::mul_shoup_sub_correct_slice(self, out, alpha, w, w_shoup);
    }

    /// Element-wise [`Modulus::correct_lazy`]: maps `[0, 4q)` to canonical
    /// `[0, q)`.
    #[inline]
    pub fn correct_lazy_slice(&self, a: &mut [u64]) {
        crate::backend::correct_lazy_slice(self, a);
    }

    /// Element-wise reduction of *arbitrary* `u64` words into canonical
    /// `[0, q)` — the seeded hint-expansion kernel: a raw PRG word stream is
    /// reduced into residues in one vectorized pass.
    #[inline]
    pub fn reduce_raw_slice(&self, a: &mut [u64]) {
        crate::backend::reduce_raw_slice(self, a);
    }

    /// `acc[i] = (acc[i] + src[perm[i]] * b[i]) mod q` — fused gather +
    /// multiply-accumulate, the automorphism hot path. All values canonical;
    /// every `perm[i]` must index `src`.
    #[inline]
    pub fn gather_mul_acc_slice(&self, acc: &mut [u64], src: &[u64], perm: &[u32], b: &[u64]) {
        crate::backend::gather_mul_acc_slice(self, acc, src, perm, b);
    }

    /// Like [`Modulus::gather_mul_acc_slice`] but feeds one gather into two
    /// accumulators (the two halves of a key-switch key).
    #[inline]
    pub fn gather_mul_acc_pair_slice(
        &self,
        acc0: &mut [u64],
        acc1: &mut [u64],
        src: &[u64],
        perm: &[u32],
        b0: &[u64],
        b1: &[u64],
    ) {
        crate::backend::gather_mul_acc_pair_slice(self, acc0, acc1, src, perm, b0, b1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const Q28: u64 = 268_369_921; // 28-bit, q ≡ 1 (mod 2^17)
    const Q59: u64 = 576_460_752_308_273_153; // 59-bit NTT-friendly prime

    #[test]
    fn new_rejects_out_of_range() {
        assert!(Modulus::new(0).is_none());
        assert!(Modulus::new(1).is_none());
        assert!(Modulus::new(1u64 << 60).is_none());
        assert!(Modulus::new(1u64 << 62).is_none());
        assert!(Modulus::new((1u64 << 60) - 1).is_some());
        assert!(Modulus::new(2).is_some());
    }

    #[test]
    fn basic_ops() {
        let m = Modulus::new(17).unwrap();
        assert_eq!(m.add(16, 16), 15);
        assert_eq!(m.sub(3, 5), 15);
        assert_eq!(m.neg(0), 0);
        assert_eq!(m.neg(5), 12);
        assert_eq!(m.mul(10, 10), 100 % 17);
        assert_eq!(m.pow(2, 4), 16);
        assert_eq!(m.mul(m.inv(7), 7), 1);
    }

    #[test]
    fn lift_and_from_i64_roundtrip() {
        let m = Modulus::new(Q28).unwrap();
        for v in [0i64, 1, -1, 12345, -12345, (Q28 / 2) as i64] {
            assert_eq!(m.lift_centered(m.from_i64(v)), v);
        }
    }

    proptest! {
        #[test]
        fn mul_matches_u128(a in 0u64..Q59, b in 0u64..Q59) {
            let m = Modulus::new(Q59).unwrap();
            prop_assert_eq!(m.mul(a, b) as u128, (a as u128 * b as u128) % Q59 as u128);
        }

        #[test]
        fn reduce_u128_matches(x in any::<u128>()) {
            let m = Modulus::new(Q28).unwrap();
            prop_assert_eq!(m.reduce_u128(x) as u128, x % Q28 as u128);
        }

        #[test]
        fn shoup_matches_mul(a in 0u64..Q59, w in 0u64..Q59) {
            let m = Modulus::new(Q59).unwrap();
            let ws = m.shoup_precompute(w);
            prop_assert_eq!(m.mul_shoup(a, w, ws), m.mul(a, w));
        }

        #[test]
        fn inv_is_inverse(a in 1u64..Q28) {
            let m = Modulus::new(Q28).unwrap();
            prop_assert_eq!(m.mul(a, m.inv(a)), 1);
        }

        #[test]
        fn add_sub_roundtrip(a in 0u64..Q28, b in 0u64..Q28) {
            let m = Modulus::new(Q28).unwrap();
            prop_assert_eq!(m.sub(m.add(a, b), b), a);
        }

        #[test]
        fn mul_shoup_lazy_bound_and_congruence(a in 0u64..4 * Q59, w in 0u64..Q59) {
            let m = Modulus::new(Q59).unwrap();
            let ws = m.shoup_precompute(w);
            let r = m.mul_shoup_lazy(a, w, ws);
            prop_assert!(r < m.two_q());
            prop_assert_eq!(r as u128 % Q59 as u128, (a as u128 * w as u128) % Q59 as u128);
        }

        #[test]
        fn correct_lazy_canonicalizes(a in 0u64..4 * Q59) {
            let m = Modulus::new(Q59).unwrap();
            let r = m.correct_lazy(a);
            prop_assert!(r < Q59);
            prop_assert_eq!(r % Q59, a % Q59);
        }
    }

    // -----------------------------------------------------------------------
    // Backend slice-kernel invariants (one run per compiled backend).
    //
    // Canonical kernels must match the scalar reference word-for-word;
    // lazy kernels must additionally respect the documented drift bounds
    // ([0, 2q) after reduce_lazy, [0, q) after correction).
    // -----------------------------------------------------------------------

    use crate::backend::{forced, supported_backends};

    proptest! {
        #[test]
        fn backends_match_scalar_canonical_kernels(
            q_idx in 0usize..3,
            seed in any::<u64>(),
            // Lengths off the lane multiple force the vector kernels through
            // their scalar tails.
            len in 0usize..67,
        ) {
            let q = [Q28, Q59, (1u64 << 60) - 93][q_idx];
            let m = Modulus::new(q).unwrap();
            let gen = |salt: u64| -> Vec<u64> {
                (0..len as u64)
                    .map(|i| (seed ^ salt).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i.wrapping_mul(0x2545_f491_4f6c_dd1d)) % q)
                    .collect()
            };
            let a0 = gen(1);
            let b = gen(2);
            let acc0 = gen(3);
            for kind in supported_backends() {
                // add
                let mut a = a0.clone();
                let mut r = a0.clone();
                forced::add_mod_slice(crate::backend::BackendKind::Scalar, &m, &mut r, &b);
                forced::add_mod_slice(kind, &m, &mut a, &b);
                prop_assert_eq!(&a, &r, "add_mod_slice diverged on {}", kind);
                // sub
                let mut a = a0.clone();
                let mut r = a0.clone();
                forced::sub_mod_slice(crate::backend::BackendKind::Scalar, &m, &mut r, &b);
                forced::sub_mod_slice(kind, &m, &mut a, &b);
                prop_assert_eq!(&a, &r, "sub_mod_slice diverged on {}", kind);
                // neg
                let mut a = a0.clone();
                let mut r = a0.clone();
                forced::neg_mod_slice(crate::backend::BackendKind::Scalar, &m, &mut r);
                forced::neg_mod_slice(kind, &m, &mut a);
                prop_assert_eq!(&a, &r, "neg_mod_slice diverged on {}", kind);
                // mul
                let mut a = a0.clone();
                let mut r = a0.clone();
                forced::mul_mod_slice(crate::backend::BackendKind::Scalar, &m, &mut r, &b);
                forced::mul_mod_slice(kind, &m, &mut a, &b);
                prop_assert_eq!(&a, &r, "mul_mod_slice diverged on {}", kind);
                for (x, (&ai, &bi)) in a.iter().zip(a0.iter().zip(&b)) {
                    prop_assert_eq!(*x as u128, (ai as u128 * bi as u128) % q as u128);
                }
                // mul_acc
                let mut acc = acc0.clone();
                let mut r = acc0.clone();
                forced::mul_acc_mod_slice(crate::backend::BackendKind::Scalar, &m, &mut r, &a0, &b);
                forced::mul_acc_mod_slice(kind, &m, &mut acc, &a0, &b);
                prop_assert_eq!(&acc, &r, "mul_acc_mod_slice diverged on {}", kind);
                prop_assert!(acc.iter().all(|&x| x < q));
            }
        }

        #[test]
        fn backends_match_scalar_shoup_kernels(
            a0 in collection::vec(0u64..Q59, 0..67),
            w in 0u64..Q59,
        ) {
            let m = Modulus::new(Q59).unwrap();
            let ws = m.shoup_precompute(w);
            let two_q = m.two_q();
            // Lazy accumulator input in [0, 2q); x input arbitrary lazy [0, 4q).
            let acc0: Vec<u64> = a0.iter().map(|&x| x.wrapping_mul(3) % two_q).collect();
            let x0: Vec<u64> = a0.iter().map(|&x| x.wrapping_mul(7) % (4 * Q59)).collect();
            for kind in supported_backends() {
                // mul_scalar_shoup: canonical output, bit-equal to scalar.
                let mut a = a0.clone();
                let mut r = a0.clone();
                forced::mul_scalar_shoup_slice(crate::backend::BackendKind::Scalar, &m, &mut r, w, ws);
                forced::mul_scalar_shoup_slice(kind, &m, &mut a, w, ws);
                prop_assert_eq!(&a, &r, "mul_scalar_shoup_slice diverged on {}", kind);
                prop_assert!(a.iter().all(|&x| x < Q59), "canonical bound violated on {}", kind);

                // mul_shoup_lazy_acc: [0, 2q) bound + congruence + bit-equality.
                let mut acc = acc0.clone();
                let mut r = acc0.clone();
                forced::mul_shoup_lazy_acc_slice(crate::backend::BackendKind::Scalar, &m, &mut r, &x0, w, ws);
                forced::mul_shoup_lazy_acc_slice(kind, &m, &mut acc, &x0, w, ws);
                prop_assert_eq!(&acc, &r, "mul_shoup_lazy_acc_slice diverged on {}", kind);
                for (i, &v) in acc.iter().enumerate() {
                    prop_assert!(v < two_q, "lazy bound violated on {}", kind);
                    let expect = (acc0[i] as u128 + x0[i] as u128 * w as u128) % Q59 as u128;
                    prop_assert_eq!(v as u128 % Q59 as u128, expect);
                }

                // mul_shoup_sub_correct: canonical output + congruence.
                let mut out = acc0.clone();
                let mut r = acc0.clone();
                forced::mul_shoup_sub_correct_slice(crate::backend::BackendKind::Scalar, &m, &mut r, &a0, w, ws);
                forced::mul_shoup_sub_correct_slice(kind, &m, &mut out, &a0, w, ws);
                prop_assert_eq!(&out, &r, "mul_shoup_sub_correct_slice diverged on {}", kind);
                for (i, &v) in out.iter().enumerate() {
                    prop_assert!(v < Q59, "canonical bound violated on {}", kind);
                    let prod = (a0[i] as u128 * w as u128) % Q59 as u128;
                    let expect = (acc0[i] as u128 + 2 * Q59 as u128 - prod % Q59 as u128) % Q59 as u128;
                    prop_assert_eq!(v as u128 % Q59 as u128, expect % Q59 as u128);
                }

                // correct_lazy over the full [0, 4q) range.
                let mut lazy = x0.clone();
                let mut r = x0.clone();
                forced::correct_lazy_slice(crate::backend::BackendKind::Scalar, &m, &mut r);
                forced::correct_lazy_slice(kind, &m, &mut lazy);
                prop_assert_eq!(&lazy, &r, "correct_lazy_slice diverged on {}", kind);
                prop_assert!(lazy.iter().all(|&x| x < Q59));
            }
        }

        #[test]
        fn backends_match_scalar_reduce_raw(
            q_idx in 0usize..4,
            raw in collection::vec(any::<u64>(), 0..67),
        ) {
            // Full-range u64 inputs, including moduli whose word-sized
            // Barrett constant could not cover 2^64 (k < 32).
            let q = [Q28, Q59, (1u64 << 60) - 93, 0x3fff_c001][q_idx];
            let m = Modulus::new(q).unwrap();
            for kind in supported_backends() {
                let mut a = raw.clone();
                let mut r = raw.clone();
                forced::reduce_raw_slice(crate::backend::BackendKind::Scalar, &m, &mut r);
                forced::reduce_raw_slice(kind, &m, &mut a);
                prop_assert_eq!(&a, &r, "reduce_raw_slice diverged on {}", kind);
                for (&out, &x) in a.iter().zip(&raw) {
                    prop_assert_eq!(out, x % q);
                }
            }
        }

        #[test]
        fn backends_match_scalar_gather_kernels(
            seed in any::<u64>(),
            len in 0usize..67,
        ) {
            let m = Modulus::new(Q28).unwrap();
            let src: Vec<u64> = (0..len.max(1) as u64)
                .map(|i| seed.wrapping_mul(0x9e37).wrapping_add(i * 0x85eb) % Q28)
                .collect();
            let perm: Vec<u32> = (0..len as u64)
                .map(|i| ((seed.wrapping_add(i * 31)) % src.len() as u64) as u32)
                .collect();
            let b: Vec<u64> = (0..len as u64).map(|i| (seed ^ i).wrapping_mul(11) % Q28).collect();
            let b1: Vec<u64> = (0..len as u64).map(|i| (seed ^ i).wrapping_mul(13) % Q28).collect();
            let acc_init: Vec<u64> = (0..len as u64).map(|i| (seed ^ i).wrapping_mul(17) % Q28).collect();
            for kind in supported_backends() {
                let mut out = vec![0u64; len];
                let mut r = vec![0u64; len];
                forced::gather_slice(crate::backend::BackendKind::Scalar, &mut r, &src, &perm);
                forced::gather_slice(kind, &mut out, &src, &perm);
                prop_assert_eq!(&out, &r, "gather_slice diverged on {}", kind);

                let mut acc = acc_init.clone();
                let mut racc = acc_init.clone();
                forced::gather_mul_acc_slice(crate::backend::BackendKind::Scalar, &m, &mut racc, &src, &perm, &b);
                forced::gather_mul_acc_slice(kind, &m, &mut acc, &src, &perm, &b);
                prop_assert_eq!(&acc, &racc, "gather_mul_acc_slice diverged on {}", kind);

                let mut p0 = acc_init.clone();
                let mut p1 = b1.clone();
                let mut r0 = acc_init.clone();
                let mut r1 = b1.clone();
                forced::gather_mul_acc_pair_slice(
                    crate::backend::BackendKind::Scalar, &m, &mut r0, &mut r1, &src, &perm, &b, &b1,
                );
                forced::gather_mul_acc_pair_slice(kind, &m, &mut p0, &mut p1, &src, &perm, &b, &b1);
                prop_assert_eq!(&p0, &r0, "gather_mul_acc_pair_slice acc0 diverged on {}", kind);
                prop_assert_eq!(&p1, &r1, "gather_mul_acc_pair_slice acc1 diverged on {}", kind);
            }
        }
    }
}
