//! Prime-field arithmetic over a word-sized modulus.

/// A prime modulus `q < 2^60` with precomputed constants for fast reduction.
///
/// The strict arithmetic methods expect operands already reduced to `[0, q)`
/// and produce results in `[0, q)`. The `*_lazy` methods implement the
/// relaxed-range ("lazy reduction") arithmetic the NTT kernels use: values
/// are allowed to drift up to `[0, 4q)` between corrections, which is why
/// the modulus is capped at `2^60` — `4q` must fit in a `u64` with headroom
/// for one addition.
///
/// # Example
///
/// ```
/// use cl_math::Modulus;
/// let q = Modulus::new(268_369_921).unwrap(); // 28-bit NTT-friendly prime
/// let a = q.mul(123_456_789, 987_654_321 % q.value());
/// assert!(a < q.value());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Modulus {
    q: u64,
    /// floor(2^128 / q), split into hi/lo 64-bit words (Barrett constant).
    barrett_hi: u64,
    barrett_lo: u64,
}

impl Modulus {
    /// Creates a modulus. Returns `None` if `q < 2` or `q >= 2^60`.
    ///
    /// The `2^60` cap (rather than the `2^62` a plain Barrett reduction would
    /// allow) guarantees the lazy-reduction NTT invariant: butterfly operands
    /// stay in `[0, 4q)` and `x + 2q - t` with `x, t < 4q` never overflows.
    ///
    /// Primality is not checked here; use [`crate::is_prime`] when a prime is
    /// required.
    pub fn new(q: u64) -> Option<Self> {
        if !(2..(1u64 << 60)).contains(&q) {
            return None;
        }
        // floor(2^128 / q) computed via 128-bit long division in two steps.
        let hi = u128::MAX / q as u128; // floor((2^128 - 1)/q); adjust below
        // (2^128 - 1)/q == (2^128)/q unless q divides 2^128, impossible for q>1 odd;
        // for even q it could differ by at most 0 since 2^128 mod q != 0 when q has
        // an odd factor. q=2^k would be the only problem and is not prime for k>1.
        let barrett_hi = (hi >> 64) as u64;
        let barrett_lo = hi as u64;
        Some(Self {
            q,
            barrett_hi,
            barrett_lo,
        })
    }

    /// The modulus value.
    #[inline]
    pub fn value(&self) -> u64 {
        self.q
    }

    /// Number of bits in `q`.
    #[inline]
    pub fn bits(&self) -> u32 {
        64 - self.q.leading_zeros()
    }

    /// Twice the modulus — the reduction bound for lazy operands.
    #[inline]
    pub fn two_q(&self) -> u64 {
        self.q << 1
    }

    /// Lazy addition: plain `a + b` with no reduction. With both operands in
    /// `[0, 2q)` the result stays in `[0, 4q)`, which the NTT butterflies
    /// tolerate until the final correction sweep.
    #[inline]
    pub fn add_lazy(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.two_q() && b < self.two_q());
        a + b
    }

    /// Conditionally subtracts `2q`, mapping `[0, 4q)` into `[0, 2q)`.
    #[inline]
    pub fn reduce_lazy(&self, a: u64) -> u64 {
        debug_assert!(a < 4 * self.q);
        let two_q = self.two_q();
        if a >= two_q {
            a - two_q
        } else {
            a
        }
    }

    /// Final correction: maps a lazy value in `[0, 4q)` to canonical `[0, q)`.
    #[inline]
    pub fn correct_lazy(&self, a: u64) -> u64 {
        debug_assert!(a < 4 * self.q);
        let mut r = self.reduce_lazy(a);
        if r >= self.q {
            r -= self.q;
        }
        r
    }

    /// Modular addition.
    #[inline]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        let s = a + b;
        if s >= self.q {
            s - self.q
        } else {
            s
        }
    }

    /// Modular subtraction.
    #[inline]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        if a >= b {
            a - b
        } else {
            a + self.q - b
        }
    }

    /// Modular negation.
    #[inline]
    pub fn neg(&self, a: u64) -> u64 {
        debug_assert!(a < self.q);
        if a == 0 {
            0
        } else {
            self.q - a
        }
    }

    /// Modular multiplication via Barrett reduction.
    #[inline]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        self.reduce_u128(a as u128 * b as u128)
    }

    /// Reduces a 128-bit value modulo `q` using the Barrett constant.
    #[inline]
    pub fn reduce_u128(&self, x: u128) -> u64 {
        // Estimate quotient: qhat = floor(x * floor(2^128/q) / 2^128).
        // Using only the pieces that matter: with x = x1*2^64 + x0 and
        // m = m1*2^64 + m0 (the Barrett constant), the top 128 bits of x*m are
        //   x1*m1 + ((x1*m0 + x0*m1 + carry_of(x0*m0)) >> 64)
        let x0 = x as u64 as u128;
        let x1 = (x >> 64) as u64 as u128;
        let m0 = self.barrett_lo as u128;
        let m1 = self.barrett_hi as u128;
        let lo = x0 * m0;
        let mid1 = x1 * m0;
        let mid2 = x0 * m1;
        let carry = ((lo >> 64) + (mid1 as u64 as u128) + (mid2 as u64 as u128)) >> 64;
        let qhat = x1 * m1 + (mid1 >> 64) + (mid2 >> 64) + carry;
        let r = x.wrapping_sub(qhat.wrapping_mul(self.q as u128)) as u64;
        // qhat may underestimate by at most 2.
        let mut r = r;
        while r >= self.q {
            r -= self.q;
        }
        r
    }

    /// Modular exponentiation.
    pub fn pow(&self, mut base: u64, mut exp: u64) -> u64 {
        debug_assert!(base < self.q);
        let mut acc = 1u64 % self.q;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            exp >>= 1;
        }
        acc
    }

    /// Modular inverse of `a` (requires `q` prime and `a != 0`).
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    pub fn inv(&self, a: u64) -> u64 {
        assert!(a != 0, "zero has no modular inverse");
        self.pow(a, self.q - 2)
    }

    /// Precomputes the Shoup constant `floor(w * 2^64 / q)` for repeated
    /// multiplications by the fixed operand `w`.
    #[inline]
    pub fn shoup_precompute(&self, w: u64) -> u64 {
        debug_assert!(w < self.q);
        (((w as u128) << 64) / self.q as u128) as u64
    }

    /// Multiplies `a` by the fixed operand `w` using its precomputed Shoup
    /// constant `w_shoup`. Roughly 2-3x faster than [`Modulus::mul`].
    #[inline]
    pub fn mul_shoup(&self, a: u64, w: u64, w_shoup: u64) -> u64 {
        debug_assert!(a < self.q && w < self.q);
        let hi = ((a as u128 * w_shoup as u128) >> 64) as u64;
        let r = a
            .wrapping_mul(w)
            .wrapping_sub(hi.wrapping_mul(self.q));
        if r >= self.q {
            r - self.q
        } else {
            r
        }
    }

    /// Shoup multiplication without the final conditional subtraction.
    ///
    /// Accepts *any* `a < 2^64` (in particular lazy operands in `[0, 4q)`)
    /// and returns a value congruent to `a * w (mod q)` in `[0, 2q)`: with
    /// `hi = floor(a * w_shoup / 2^64)` the returned `a*w - hi*q` is
    /// non-negative and bounded by `q * (1 + a/2^64) < 2q`.
    #[inline]
    pub fn mul_shoup_lazy(&self, a: u64, w: u64, w_shoup: u64) -> u64 {
        debug_assert!(w < self.q);
        let hi = ((a as u128 * w_shoup as u128) >> 64) as u64;
        a.wrapping_mul(w).wrapping_sub(hi.wrapping_mul(self.q))
    }

    /// Reduces an arbitrary `u64` into `[0, q)`.
    #[inline]
    pub fn reduce(&self, a: u64) -> u64 {
        if a < self.q {
            a
        } else {
            self.reduce_u128(a as u128)
        }
    }

    /// Centered lift: maps `a` in `[0, q)` to the signed representative in
    /// `(-q/2, q/2]`.
    #[inline]
    pub fn lift_centered(&self, a: u64) -> i64 {
        debug_assert!(a < self.q);
        if a > self.q / 2 {
            a as i64 - self.q as i64
        } else {
            a as i64
        }
    }

    /// Reduces a signed integer into `[0, q)`.
    #[inline]
    pub fn from_i64(&self, a: i64) -> u64 {
        let r = a.rem_euclid(self.q as i64);
        r as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const Q28: u64 = 268_369_921; // 28-bit, q ≡ 1 (mod 2^17)
    const Q59: u64 = 576_460_752_308_273_153; // 59-bit NTT-friendly prime

    #[test]
    fn new_rejects_out_of_range() {
        assert!(Modulus::new(0).is_none());
        assert!(Modulus::new(1).is_none());
        assert!(Modulus::new(1u64 << 60).is_none());
        assert!(Modulus::new(1u64 << 62).is_none());
        assert!(Modulus::new((1u64 << 60) - 1).is_some());
        assert!(Modulus::new(2).is_some());
    }

    #[test]
    fn basic_ops() {
        let m = Modulus::new(17).unwrap();
        assert_eq!(m.add(16, 16), 15);
        assert_eq!(m.sub(3, 5), 15);
        assert_eq!(m.neg(0), 0);
        assert_eq!(m.neg(5), 12);
        assert_eq!(m.mul(10, 10), 100 % 17);
        assert_eq!(m.pow(2, 4), 16);
        assert_eq!(m.mul(m.inv(7), 7), 1);
    }

    #[test]
    fn lift_and_from_i64_roundtrip() {
        let m = Modulus::new(Q28).unwrap();
        for v in [0i64, 1, -1, 12345, -12345, (Q28 / 2) as i64] {
            assert_eq!(m.lift_centered(m.from_i64(v)), v);
        }
    }

    proptest! {
        #[test]
        fn mul_matches_u128(a in 0u64..Q59, b in 0u64..Q59) {
            let m = Modulus::new(Q59).unwrap();
            prop_assert_eq!(m.mul(a, b) as u128, (a as u128 * b as u128) % Q59 as u128);
        }

        #[test]
        fn reduce_u128_matches(x in any::<u128>()) {
            let m = Modulus::new(Q28).unwrap();
            prop_assert_eq!(m.reduce_u128(x) as u128, x % Q28 as u128);
        }

        #[test]
        fn shoup_matches_mul(a in 0u64..Q59, w in 0u64..Q59) {
            let m = Modulus::new(Q59).unwrap();
            let ws = m.shoup_precompute(w);
            prop_assert_eq!(m.mul_shoup(a, w, ws), m.mul(a, w));
        }

        #[test]
        fn inv_is_inverse(a in 1u64..Q28) {
            let m = Modulus::new(Q28).unwrap();
            prop_assert_eq!(m.mul(a, m.inv(a)), 1);
        }

        #[test]
        fn add_sub_roundtrip(a in 0u64..Q28, b in 0u64..Q28) {
            let m = Modulus::new(Q28).unwrap();
            prop_assert_eq!(m.sub(m.add(a, b), b), a);
        }

        #[test]
        fn mul_shoup_lazy_bound_and_congruence(a in 0u64..4 * Q59, w in 0u64..Q59) {
            let m = Modulus::new(Q59).unwrap();
            let ws = m.shoup_precompute(w);
            let r = m.mul_shoup_lazy(a, w, ws);
            prop_assert!(r < m.two_q());
            prop_assert_eq!(r as u128 % Q59 as u128, (a as u128 * w as u128) % Q59 as u128);
        }

        #[test]
        fn correct_lazy_canonicalizes(a in 0u64..4 * Q59) {
            let m = Modulus::new(Q59).unwrap();
            let r = m.correct_lazy(a);
            prop_assert!(r < Q59);
            prop_assert_eq!(r % Q59, a % Q59);
        }
    }
}
