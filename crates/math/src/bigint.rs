//! A minimal arbitrary-precision unsigned integer.
//!
//! RNS arithmetic (Sec. 2.4) never materializes wide integers at runtime,
//! but tests need an exact reference to validate base conversion, rescaling
//! and CRT round-trips. This type provides just the operations those checks
//! need; it is not a general-purpose bignum.

use std::cmp::Ordering;

/// An unsigned big integer stored as little-endian 64-bit limbs.
///
/// # Example
///
/// ```
/// use cl_math::BigUint;
/// let q = [268369921u64, 268361729];
/// let x = BigUint::crt_combine(&[123, 456], &q);
/// assert_eq!(x.rem_u64(q[0]), 123);
/// assert_eq!(x.rem_u64(q[1]), 456);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BigUint {
    /// Little-endian limbs; no trailing zero limbs (canonical form).
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// Creates a big integer from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            Self { limbs: vec![v] }
        }
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits.
    pub fn bits(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u32 - 1) * 64 + (64 - top.leading_zeros()),
        }
    }

    fn trim(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Adds `other` to `self`.
    pub fn add_assign(&mut self, other: &BigUint) {
        let mut carry = 0u64;
        let max_len = self.limbs.len().max(other.limbs.len());
        self.limbs.resize(max_len, 0);
        for i in 0..max_len {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = self.limbs[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            self.limbs[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            self.limbs.push(carry);
        }
    }

    /// Subtracts `other` from `self`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub_assign(&mut self, other: &BigUint) {
        assert!(*self >= *other, "BigUint subtraction underflow");
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            self.limbs[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        self.trim();
    }

    /// Returns `self * m`.
    pub fn mul_u64(&self, m: u64) -> BigUint {
        if m == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let prod = l as u128 * m as u128 + carry;
            out.push(prod as u64);
            carry = prod >> 64;
        }
        if carry > 0 {
            out.push(carry as u64);
        }
        BigUint { limbs: out }
    }

    /// Divides by a `u64`, returning quotient and remainder.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn div_rem_u64(&self, d: u64) -> (BigUint, u64) {
        assert!(d != 0, "division by zero");
        let mut quot = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            quot[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        let mut q = BigUint { limbs: quot };
        q.trim();
        (q, rem as u64)
    }

    /// Remainder modulo a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn rem_u64(&self, d: u64) -> u64 {
        self.div_rem_u64(d).1
    }

    /// Reduces `self` modulo `m` by repeated subtraction of shifted copies.
    ///
    /// Efficient when `self / m` is small (the only case our tests need).
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem_big(&self, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modulus must be nonzero");
        let mut r = self.clone();
        while r >= *m {
            // Subtract the largest m * 2^k that fits.
            let shift = r.bits().saturating_sub(m.bits());
            let mut candidate = m.shl_bits(shift);
            if candidate > r {
                candidate = m.shl_bits(shift - 1);
            }
            r.sub_assign(&candidate);
        }
        r
    }

    /// Returns `self << bits`.
    pub fn shl_bits(&self, bits: u32) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        let mut r = BigUint { limbs: out };
        r.trim();
        r
    }

    /// Returns `self >> 1`.
    pub fn shr1(&self) -> BigUint {
        let mut out = vec![0u64; self.limbs.len()];
        let mut carry = 0u64;
        for i in (0..self.limbs.len()).rev() {
            out[i] = (self.limbs[i] >> 1) | (carry << 63);
            carry = self.limbs[i] & 1;
        }
        let mut r = BigUint { limbs: out };
        r.trim();
        r
    }

    /// Approximate conversion to `f64` (for tolerance-based test checks).
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &l in self.limbs.iter().rev() {
            acc = acc * 2f64.powi(64) + l as f64;
        }
        acc
    }

    /// Product of a list of word-sized moduli.
    pub fn product(moduli: &[u64]) -> BigUint {
        let mut acc = BigUint::from_u64(1);
        for &q in moduli {
            acc = acc.mul_u64(q);
        }
        acc
    }

    /// Reconstructs the unique `x in [0, prod(moduli))` with
    /// `x ≡ residues[i] (mod moduli[i])` via the CRT.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or the moduli are not pairwise coprime
    /// primes (the inverse computation would fail).
    pub fn crt_combine(residues: &[u64], moduli: &[u64]) -> BigUint {
        assert_eq!(residues.len(), moduli.len());
        let q = BigUint::product(moduli);
        let mut acc = BigUint::zero();
        for (&r, &qi) in residues.iter().zip(moduli) {
            let (qi_hat, rem) = q.div_rem_u64(qi); // Q / qi
            debug_assert_eq!(rem, 0);
            let m = crate::Modulus::new(qi).expect("modulus in range");
            let qi_hat_mod = qi_hat.rem_u64(qi);
            let inv = m.inv(qi_hat_mod);
            let coeff = m.mul(r % qi, inv);
            acc.add_assign(&qi_hat.mul_u64(coeff));
        }
        acc.rem_big(&q)
    }

    /// Interprets `self` (a residue mod `q`) as a centered value and returns
    /// `(negative, magnitude)` where the value is `magnitude` or
    /// `-magnitude`.
    pub fn centered(&self, q: &BigUint) -> (bool, BigUint) {
        let half = q.shr1();
        if *self > half {
            let mut mag = q.clone();
            mag.sub_assign(self);
            (true, mag)
        } else {
            (false, self.clone())
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        o => return o,
                    }
                }
                Ordering::Equal
            }
            o => o,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn add_sub_roundtrip_u128_scale() {
        let a = BigUint::from_u64(u64::MAX).mul_u64(u64::MAX);
        let b = BigUint::from_u64(12345);
        let mut c = a.clone();
        c.add_assign(&b);
        c.sub_assign(&b);
        assert_eq!(c, a);
    }

    #[test]
    fn div_rem_matches_u128() {
        let a = BigUint::from_u64(0xDEAD_BEEF_CAFE_BABE).mul_u64(0x1234_5678_9ABC_DEF0);
        let d = 1_000_000_007u64;
        let (q, r) = a.div_rem_u64(d);
        let a128 = 0xDEAD_BEEF_CAFE_BABEu128 * 0x1234_5678_9ABC_DEF0u128;
        assert_eq!(r as u128, a128 % d as u128);
        let mut recomposed = q.mul_u64(d);
        recomposed.add_assign(&BigUint::from_u64(r));
        assert_eq!(recomposed, a);
    }

    #[test]
    fn shifts() {
        let a = BigUint::from_u64(1).shl_bits(130);
        assert_eq!(a.bits(), 131);
        assert_eq!(a.shr1().bits(), 130);
        assert_eq!(BigUint::from_u64(6).shr1(), BigUint::from_u64(3));
    }

    #[test]
    fn crt_roundtrip_three_moduli() {
        let moduli = [268369921u64, 268361729, 268271617];
        let residues = [1234567u64, 89101112, 13141516];
        let x = BigUint::crt_combine(&residues, &moduli);
        for (&r, &q) in residues.iter().zip(&moduli) {
            assert_eq!(x.rem_u64(q), r);
        }
        let prod = BigUint::product(&moduli);
        assert!(x < prod);
    }

    #[test]
    fn centered_lift() {
        let q = BigUint::from_u64(17);
        let (neg, mag) = BigUint::from_u64(15).centered(&q);
        assert!(neg);
        assert_eq!(mag, BigUint::from_u64(2));
        let (neg, mag) = BigUint::from_u64(3).centered(&q);
        assert!(!neg);
        assert_eq!(mag, BigUint::from_u64(3));
    }

    proptest! {
        #[test]
        fn mul_div_roundtrip(v in any::<u64>(), m in 1u64..u64::MAX) {
            let a = BigUint::from_u64(v).mul_u64(m);
            let (q, r) = a.div_rem_u64(m);
            prop_assert_eq!(r, 0);
            prop_assert_eq!(q, BigUint::from_u64(v));
        }

        #[test]
        fn crt_two_moduli(a in 0u64..268369921, b in 0u64..268361729) {
            let moduli = [268369921u64, 268361729];
            let x = BigUint::crt_combine(&[a, b], &moduli);
            prop_assert_eq!(x.rem_u64(moduli[0]), a);
            prop_assert_eq!(x.rem_u64(moduli[1]), b);
        }

        #[test]
        fn ordering_consistent_with_u128(a in any::<u64>(), b in any::<u64>(), c in any::<u64>(), d in any::<u64>()) {
            let x = BigUint::from_u64(a).mul_u64(b);
            let y = BigUint::from_u64(c).mul_u64(d);
            let x128 = a as u128 * b as u128;
            let y128 = c as u128 * d as u128;
            prop_assert_eq!(x.cmp(&y), x128.cmp(&y128));
        }
    }
}
