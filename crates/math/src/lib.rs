//! Mathematical substrate for the CraterLake reproduction.
//!
//! This crate implements the low-level kernels that everything else is built
//! on: prime-field arithmetic over word-sized moduli, NTT-friendly prime
//! generation, the negacyclic number-theoretic transform (NTT), polynomial
//! automorphisms (the implementation of homomorphic rotations), the complex
//! "special" FFT used by the CKKS encoder, and a small arbitrary-precision
//! integer used for exact CRT cross-checks in tests.
//!
//! The hardware described in the paper operates on 28-bit residues; this
//! crate is generic over the modulus width (any prime below 2^60 — the cap
//! that keeps the lazy-reduction NTT's `[0, 4q)` operand range overflow-free)
//! so that the functional library can also run at higher-precision parameters
//! in tests.
//!
//! # Example
//!
//! ```
//! use cl_math::{generate_ntt_primes, NttTable};
//!
//! // Two 28-bit NTT-friendly primes for degree-1024 negacyclic polynomials.
//! let primes = generate_ntt_primes(1024, 28, 2).unwrap();
//! let table = NttTable::new(1024, primes[0]).unwrap();
//! let mut poly = vec![0u64; 1024];
//! poly[1] = 1; // X
//! table.forward(&mut poly);
//! table.inverse(&mut poly);
//! assert_eq!(poly[1], 1);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod aligned;
mod automorphism;
pub mod backend;
mod bigint;
mod cfft;
mod modulus;
mod ntt;
mod primes;

pub use aligned::{AlignedVec, SIMD_ALIGN};
pub use automorphism::{
    apply_automorphism_coeff, apply_automorphism_ntt, apply_automorphism_ntt_into,
    canonical_rotation_step, galois_element_conjugate, galois_element_for_rotation,
    AutomorphismTable,
};
pub use backend::{active_backend, cpu_features, set_active_backend, supported_backends, BackendKind};
pub use bigint::BigUint;
pub use cfft::{Complex, SpecialFft};
pub use modulus::Modulus;
pub use ntt::NttTable;
pub use primes::{generate_ntt_primes, is_prime, MathError};

/// Reverses the lowest `bits` bits of `x`.
///
/// Used for the bit-reversed orderings of NTT and FFT tables.
#[inline]
pub fn bit_reverse(x: usize, bits: u32) -> usize {
    if bits == 0 {
        return 0;
    }
    x.reverse_bits() >> (usize::BITS - bits)
}

/// Permutes `data` into bit-reversed order in place.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn bit_reverse_permute<T>(data: &mut [T]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "length must be a power of two");
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = bit_reverse(i, bits);
        if i < j {
            data.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_reverse_small() {
        assert_eq!(bit_reverse(0b001, 3), 0b100);
        assert_eq!(bit_reverse(0b110, 3), 0b011);
        assert_eq!(bit_reverse(0, 1), 0);
    }

    #[test]
    fn bit_reverse_permute_involution() {
        let mut v: Vec<u32> = (0..16).collect();
        let orig = v.clone();
        bit_reverse_permute(&mut v);
        assert_ne!(v, orig);
        bit_reverse_permute(&mut v);
        assert_eq!(v, orig);
    }
}
