//! Negacyclic number-theoretic transform.
//!
//! FHE implementations keep polynomials in the NTT (evaluation) domain so
//! that polynomial multiplication — the convolution at the heart of
//! homomorphic multiplication — becomes element-wise (Sec. 2.4). CraterLake
//! devotes two dedicated functional units to this transform.
//!
//! The default [`NttTable::forward`]/[`NttTable::inverse`] kernels use
//! Harvey-style lazy reduction: butterfly operands drift through `[0, 4q)`
//! (forward) and `[0, 2q)` (inverse), with a single correction sweep at the
//! end instead of per-butterfly conditional subtractions. The fully reduced
//! reference kernels survive as [`NttTable::forward_strict`] and
//! [`NttTable::inverse_strict`]; differential tests assert both paths are
//! bit-identical.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::{bit_reverse, AlignedVec, Modulus};

/// Precomputed tables for the degree-`N` negacyclic NTT over one modulus.
///
/// The forward transform maps a polynomial in `Z_q[X]/(X^N + 1)` from
/// coefficient representation (natural order) to evaluation representation
/// (bit-reversed order); the inverse undoes it. In the evaluation domain,
/// negacyclic polynomial multiplication is element-wise.
///
/// # Example
///
/// ```
/// use cl_math::NttTable;
/// let t = NttTable::new(8, 257).unwrap(); // 257 ≡ 1 (mod 16)
/// let mut a = vec![1u64, 2, 3, 4, 5, 6, 7, 8];
/// let orig = a.clone();
/// t.forward(&mut a);
/// t.inverse(&mut a);
/// assert_eq!(a, orig);
/// ```
#[derive(Debug, Clone)]
pub struct NttTable {
    n: usize,
    modulus: Modulus,
    /// psi^br(i) in bit-reversed order, psi a primitive 2N-th root of unity.
    /// All twiddle tables are 64-byte aligned ([`AlignedVec`]) so the vector
    /// backends stream them with aligned full-width loads.
    root_pows: AlignedVec<u64>,
    root_pows_shoup: AlignedVec<u64>,
    /// psi^{-br(i)} in bit-reversed order.
    inv_root_pows: AlignedVec<u64>,
    inv_root_pows_shoup: AlignedVec<u64>,
    /// `floor(w * 2^52 / q)` Shoup constants for the AVX-512 IFMA path,
    /// built only when `q < 2^50` (so `4q` fits the 52-bit product radix).
    root_pows_shoup52: Option<AlignedVec<u64>>,
    inv_root_pows_shoup52: Option<AlignedVec<u64>>,
    /// n^{-1} mod q and its Shoup constant.
    n_inv: u64,
    n_inv_shoup: u64,
}

impl NttTable {
    /// Builds NTT tables for ring degree `n` and modulus `q`.
    ///
    /// Returns `None` if `n` is not a power of two, `q` is not an NTT-friendly
    /// prime for this degree (`q ≡ 1 mod 2n`), or `q` is out of range.
    pub fn new(n: usize, q: u64) -> Option<Self> {
        if !n.is_power_of_two() || n < 2 {
            return None;
        }
        let modulus = Modulus::new(q)?;
        if !(q - 1).is_multiple_of(2 * n as u64) || !crate::is_prime(q) {
            return None;
        }
        let psi = find_primitive_root(&modulus, 2 * n as u64)?;
        let psi_inv = modulus.inv(psi);
        let bits = n.trailing_zeros();
        let mut root_pows = vec![0u64; n];
        let mut inv_root_pows = vec![0u64; n];
        let mut pow = 1u64;
        let mut inv_pow = 1u64;
        let mut pows = vec![0u64; n];
        let mut inv_pows = vec![0u64; n];
        for i in 0..n {
            pows[i] = pow;
            inv_pows[i] = inv_pow;
            pow = modulus.mul(pow, psi);
            inv_pow = modulus.mul(inv_pow, psi_inv);
        }
        for i in 0..n {
            let j = bit_reverse(i, bits);
            root_pows[i] = pows[j];
            inv_root_pows[i] = inv_pows[j];
        }
        let root_pows_shoup: AlignedVec<u64> =
            root_pows.iter().map(|&w| modulus.shoup_precompute(w)).collect();
        let inv_root_pows_shoup: AlignedVec<u64> = inv_root_pows
            .iter()
            .map(|&w| modulus.shoup_precompute(w))
            .collect();
        // 52-bit Shoup constants for the IFMA multiply path: only valid when
        // 4q fits in 52 bits, i.e. q < 2^50. Built whenever eligible (the
        // backend additionally checks for avx512ifma at dispatch time).
        let shoup52 = |w: u64| (((w as u128) << 52) / q as u128) as u64;
        let (root_pows_shoup52, inv_root_pows_shoup52) = if q < (1u64 << 50) {
            (
                Some(root_pows.iter().map(|&w| shoup52(w)).collect()),
                Some(inv_root_pows.iter().map(|&w| shoup52(w)).collect()),
            )
        } else {
            (None, None)
        };
        let n_inv = modulus.inv(n as u64 % q);
        let n_inv_shoup = modulus.shoup_precompute(n_inv);
        Some(Self {
            n,
            modulus,
            root_pows: AlignedVec::from(root_pows),
            root_pows_shoup,
            inv_root_pows: AlignedVec::from(inv_root_pows),
            inv_root_pows_shoup,
            root_pows_shoup52,
            inv_root_pows_shoup52,
            n_inv,
            n_inv_shoup,
        })
    }

    /// Returns the process-wide cached table for `(n, q)`, building it on
    /// first use.
    ///
    /// RNS contexts at the same ring degree share moduli constantly (every
    /// `CkksContext`, `BaseConverter`, and test fixture re-derives the same
    /// primes), and table construction is `O(n log n)` modular arithmetic —
    /// caching makes repeated context setup cheap and lets contexts share one
    /// allocation per modulus.
    ///
    /// Returns `None` under the same conditions as [`NttTable::new`]. Failed
    /// lookups are not cached.
    pub fn cached(n: usize, q: u64) -> Option<Arc<NttTable>> {
        type Cache = Mutex<HashMap<(usize, u64), Arc<NttTable>>>;
        static CACHE: OnceLock<Cache> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(t) = cache
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(&(n, q))
        {
            return Some(Arc::clone(t));
        }
        // Build outside the lock: construction is O(n log n) and must not
        // serialize unrelated lookups. A racing builder just loses its copy.
        let table = Arc::new(NttTable::new(n, q)?);
        Some(Arc::clone(
            cache
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .entry((n, q))
                .or_insert(table),
        ))
    }

    /// Ring degree.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The modulus these tables were built for.
    #[inline]
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    // Table accessors for the backend kernels ([`crate::backend`]).

    #[inline]
    pub(crate) fn root_pows(&self) -> &[u64] {
        &self.root_pows
    }

    #[inline]
    pub(crate) fn root_pows_shoup(&self) -> &[u64] {
        &self.root_pows_shoup
    }

    #[inline]
    pub(crate) fn inv_root_pows(&self) -> &[u64] {
        &self.inv_root_pows
    }

    #[inline]
    pub(crate) fn inv_root_pows_shoup(&self) -> &[u64] {
        &self.inv_root_pows_shoup
    }

    /// 52-bit Shoup constants for the forward twiddles (IFMA path), present
    /// only when `q < 2^50`.
    #[inline]
    pub(crate) fn root_pows_shoup52(&self) -> Option<&[u64]> {
        self.root_pows_shoup52.as_deref()
    }

    /// 52-bit Shoup constants for the inverse twiddles (IFMA path).
    #[inline]
    pub(crate) fn inv_root_pows_shoup52(&self) -> Option<&[u64]> {
        self.inv_root_pows_shoup52.as_deref()
    }

    #[inline]
    pub(crate) fn n_inv(&self) -> u64 {
        self.n_inv
    }

    #[inline]
    pub(crate) fn n_inv_shoup(&self) -> u64 {
        self.n_inv_shoup
    }

    /// Forward negacyclic NTT, in place (Cooley-Tukey, decimation in time,
    /// Harvey lazy reduction).
    ///
    /// Input in natural coefficient order, output in bit-reversed evaluation
    /// order. Intermediate values drift through `[0, 4q)`: each butterfly
    /// conditionally reduces its top operand into `[0, 2q)`, computes the
    /// twiddle product with [`Modulus::mul_shoup_lazy`] (result in `[0, 2q)`),
    /// and writes `x + t` / `x + 2q - t` — both below `4q`, which fits in a
    /// `u64` because [`Modulus::new`] caps `q` below `2^60`. A final sweep
    /// restores canonical `[0, q)`, so output is bit-identical to
    /// [`NttTable::forward_strict`].
    ///
    /// Routed through the active SIMD backend ([`crate::backend`]); every
    /// backend produces identical output words. Telemetry is recorded here,
    /// above the dispatch, so op counts are backend-invariant.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "polynomial length mismatch");
        cl_trace::record_ntt(1, self.n);
        crate::backend::ntt_forward(self, a);
    }

    /// Fully reduced forward NTT — the pre-lazy reference kernel, kept for
    /// differential testing against [`NttTable::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn forward_strict(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "polynomial length mismatch");
        cl_trace::record_ntt(1, self.n);
        let m = &self.modulus;
        let n = self.n;
        let mut t = n;
        let mut len = 1usize;
        while len < n {
            t >>= 1;
            for i in 0..len {
                let w = self.root_pows[len + i];
                let ws = self.root_pows_shoup[len + i];
                let j0 = 2 * i * t;
                for j in j0..j0 + t {
                    let u = a[j];
                    let v = m.mul_shoup(a[j + t], w, ws);
                    a[j] = m.add(u, v);
                    a[j + t] = m.sub(u, v);
                }
            }
            len <<= 1;
        }
    }

    /// Inverse negacyclic NTT, in place (Gentleman-Sande, decimation in
    /// frequency, Harvey lazy reduction), including the `n^{-1}` scaling.
    ///
    /// Input in bit-reversed evaluation order, output in natural coefficient
    /// order. Intermediate values stay in `[0, 2q)`: each butterfly writes the
    /// conditionally reduced sum `u + v` and the lazy twiddle product of
    /// `u - v + 2q`. The closing `n^{-1}` sweep uses
    /// [`Modulus::mul_shoup_lazy`] plus one conditional subtraction, so the
    /// output is canonical and bit-identical to [`NttTable::inverse_strict`].
    ///
    /// Routed through the active SIMD backend ([`crate::backend`]), like
    /// [`NttTable::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "polynomial length mismatch");
        cl_trace::record_intt(1, self.n);
        crate::backend::ntt_inverse(self, a);
    }

    /// Fully reduced inverse NTT — the pre-lazy reference kernel, kept for
    /// differential testing against [`NttTable::inverse`].
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn inverse_strict(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "polynomial length mismatch");
        cl_trace::record_intt(1, self.n);
        let m = &self.modulus;
        let n = self.n;
        let mut t = 1usize;
        let mut len = n >> 1;
        while len >= 1 {
            let mut j0 = 0usize;
            for i in 0..len {
                let w = self.inv_root_pows[len + i];
                let ws = self.inv_root_pows_shoup[len + i];
                for j in j0..j0 + t {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = m.add(u, v);
                    a[j + t] = m.mul_shoup(m.sub(u, v), w, ws);
                }
                j0 += 2 * t;
            }
            t <<= 1;
            len >>= 1;
        }
        for x in a.iter_mut() {
            *x = m.mul_shoup(*x, self.n_inv, self.n_inv_shoup);
        }
    }

    /// Element-wise product in the evaluation domain: `a[i] = a[i] * b[i]`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ from the ring degree.
    pub fn pointwise_mul(&self, a: &mut [u64], b: &[u64]) {
        assert_eq!(a.len(), self.n);
        assert_eq!(b.len(), self.n);
        cl_trace::record_mult(1, self.n);
        crate::backend::mul_mod_slice(&self.modulus, a, b);
    }

    /// Reference negacyclic convolution in the coefficient domain, `O(N^2)`.
    /// Used by tests to validate the NTT-based path.
    pub fn negacyclic_convolution_reference(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        assert_eq!(a.len(), self.n);
        assert_eq!(b.len(), self.n);
        let m = &self.modulus;
        let mut c = vec![0u64; self.n];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            for (j, &bj) in b.iter().enumerate() {
                let k = i + j;
                let prod = m.mul(ai, bj);
                if k < self.n {
                    c[k] = m.add(c[k], prod);
                } else {
                    c[k - self.n] = m.sub(c[k - self.n], prod);
                }
            }
        }
        c
    }
}

/// Finds a primitive `order`-th root of unity modulo a prime.
fn find_primitive_root(m: &Modulus, order: u64) -> Option<u64> {
    let q = m.value();
    if !(q - 1).is_multiple_of(order) {
        return None;
    }
    let cofactor = (q - 1) / order;
    // Try small candidates; g^cofactor has order dividing `order`, and has
    // order exactly `order` iff raising to order/2 is not 1.
    for g in 2..u64::min(q, 1 << 20) {
        let cand = m.pow(g, cofactor);
        if cand != 1 && m.pow(cand, order / 2) == q - 1 {
            return Some(cand);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_ntt_primes;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn table(n: usize, bits: u32) -> NttTable {
        let q = generate_ntt_primes(n, bits, 1).unwrap()[0];
        NttTable::new(n, q).unwrap()
    }

    #[test]
    fn rejects_non_ntt_friendly_modulus() {
        assert!(NttTable::new(8, 17).is_some()); // 17 ≡ 1 (mod 16), prime
        assert!(NttTable::new(8, 19).is_none()); // 19 ≢ 1 (mod 16)
        assert!(NttTable::new(7, 257).is_none()); // not a power of two
        assert!(NttTable::new(8, 255).is_none()); // not prime
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for n in [4usize, 64, 1024] {
            let t = table(n, 28);
            let mut rng = rand::rngs::StdRng::seed_from_u64(42);
            let mut a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t.modulus().value())).collect();
            let orig = a.clone();
            t.forward(&mut a);
            assert_ne!(a, orig, "transform should change the vector");
            t.inverse(&mut a);
            assert_eq!(a, orig);
        }
    }

    #[test]
    fn convolution_theorem() {
        let n = 64;
        let t = table(n, 30);
        let q = t.modulus().value();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
        let b: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
        let expect = t.negacyclic_convolution_reference(&a, &b);
        let mut fa = a.clone();
        let mut fb = b.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        t.pointwise_mul(&mut fa, &fb);
        t.inverse(&mut fa);
        assert_eq!(fa, expect);
    }

    #[test]
    fn x_to_the_n_is_minus_one() {
        // (X^{N/2})^2 = X^N = -1 in the negacyclic ring.
        let n = 16;
        let t = table(n, 28);
        let mut a = vec![0u64; n];
        a[n / 2] = 1;
        let mut fa = a.clone();
        t.forward(&mut fa);
        let fa_copy = fa.clone();
        t.pointwise_mul(&mut fa, &fa_copy);
        t.inverse(&mut fa);
        let mut expect = vec![0u64; n];
        expect[0] = t.modulus().value() - 1; // -1
        assert_eq!(fa, expect);
    }

    #[test]
    fn cached_returns_shared_table() {
        let q = generate_ntt_primes(64, 28, 1).unwrap()[0];
        let a = NttTable::cached(64, q).unwrap();
        let b = NttTable::cached(64, q).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(NttTable::cached(64, 19).is_none());
        // The cached table matches a freshly built one.
        let fresh = NttTable::new(64, q).unwrap();
        let mut x: Vec<u64> = (0..64).collect();
        let mut y = x.clone();
        a.forward(&mut x);
        fresh.forward(&mut y);
        assert_eq!(x, y);
    }

    /// Every compiled backend must produce words identical to the strict
    /// reference kernels, across the driver's structural regimes: pure
    /// scalar fallback (small n), fused-tail-only transforms (n at the
    /// vector width), and every multi-stage descent shape (the greedy
    /// triple/pair/single schedules land differently as log2(n) varies
    /// from 5 to 14). 50-bit and 28-bit moduli exercise the IFMA path
    /// where available; 59-bit forces the generic 64-bit path.
    #[test]
    fn backends_match_strict() {
        use crate::backend::{forced, supported_backends};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE);
        for (n, bits) in [
            (8usize, 28u32),
            (32, 50),
            (64, 28),
            (256, 59),
            (1024, 50),
            (4096, 50),
            (8192, 50),
            (8192, 59),
            (16384, 50),
        ] {
            let t = table(n, bits);
            let q = t.modulus().value();
            let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
            let mut strict_f = a.clone();
            t.forward_strict(&mut strict_f);
            let mut strict_i = strict_f.clone();
            t.inverse_strict(&mut strict_i);
            assert_eq!(strict_i, a);
            for kind in supported_backends() {
                let mut x = a.clone();
                forced::ntt_forward(kind, &t, &mut x);
                assert_eq!(x, strict_f, "forward diverged on {kind} at n={n}/{bits}b");
                forced::ntt_inverse(kind, &t, &mut x);
                assert_eq!(x, a, "roundtrip diverged on {kind} at n={n}/{bits}b");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn lazy_matches_strict(seed in any::<u64>()) {
            for n in [8usize, 64, 256] {
                let t = table(n, 40);
                let q = t.modulus().value();
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
                let mut lazy = a.clone();
                let mut strict = a.clone();
                t.forward(&mut lazy);
                t.forward_strict(&mut strict);
                prop_assert_eq!(&lazy, &strict, "forward mismatch at n={}", n);
                t.inverse(&mut lazy);
                t.inverse_strict(&mut strict);
                prop_assert_eq!(&lazy, &strict, "inverse mismatch at n={}", n);
                prop_assert_eq!(&lazy, &a, "roundtrip mismatch at n={}", n);
            }
        }

        #[test]
        fn ntt_is_linear(seed in any::<u64>()) {
            let n = 32;
            let t = table(n, 28);
            let q = t.modulus().value();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
            let b: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
            let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| t.modulus().add(x, y)).collect();
            let mut fa = a.clone();
            let mut fb = b.clone();
            let mut fsum = sum.clone();
            t.forward(&mut fa);
            t.forward(&mut fb);
            t.forward(&mut fsum);
            let sum_of_transforms: Vec<u64> =
                fa.iter().zip(&fb).map(|(&x, &y)| t.modulus().add(x, y)).collect();
            prop_assert_eq!(fsum, sum_of_transforms);
        }
    }
}
