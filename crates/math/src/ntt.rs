//! Negacyclic number-theoretic transform.
//!
//! FHE implementations keep polynomials in the NTT (evaluation) domain so
//! that polynomial multiplication — the convolution at the heart of
//! homomorphic multiplication — becomes element-wise (Sec. 2.4). CraterLake
//! devotes two dedicated functional units to this transform.

use crate::{bit_reverse, Modulus};

/// Precomputed tables for the degree-`N` negacyclic NTT over one modulus.
///
/// The forward transform maps a polynomial in `Z_q[X]/(X^N + 1)` from
/// coefficient representation (natural order) to evaluation representation
/// (bit-reversed order); the inverse undoes it. In the evaluation domain,
/// negacyclic polynomial multiplication is element-wise.
///
/// # Example
///
/// ```
/// use cl_math::NttTable;
/// let t = NttTable::new(8, 257).unwrap(); // 257 ≡ 1 (mod 16)
/// let mut a = vec![1u64, 2, 3, 4, 5, 6, 7, 8];
/// let orig = a.clone();
/// t.forward(&mut a);
/// t.inverse(&mut a);
/// assert_eq!(a, orig);
/// ```
#[derive(Debug, Clone)]
pub struct NttTable {
    n: usize,
    modulus: Modulus,
    /// psi^br(i) in bit-reversed order, psi a primitive 2N-th root of unity.
    root_pows: Vec<u64>,
    root_pows_shoup: Vec<u64>,
    /// psi^{-br(i)} in bit-reversed order.
    inv_root_pows: Vec<u64>,
    inv_root_pows_shoup: Vec<u64>,
    /// n^{-1} mod q and its Shoup constant.
    n_inv: u64,
    n_inv_shoup: u64,
}

impl NttTable {
    /// Builds NTT tables for ring degree `n` and modulus `q`.
    ///
    /// Returns `None` if `n` is not a power of two, `q` is not an NTT-friendly
    /// prime for this degree (`q ≡ 1 mod 2n`), or `q` is out of range.
    pub fn new(n: usize, q: u64) -> Option<Self> {
        if !n.is_power_of_two() || n < 2 {
            return None;
        }
        let modulus = Modulus::new(q)?;
        if (q - 1) % (2 * n as u64) != 0 || !crate::is_prime(q) {
            return None;
        }
        let psi = find_primitive_root(&modulus, 2 * n as u64)?;
        let psi_inv = modulus.inv(psi);
        let bits = n.trailing_zeros();
        let mut root_pows = vec![0u64; n];
        let mut inv_root_pows = vec![0u64; n];
        let mut pow = 1u64;
        let mut inv_pow = 1u64;
        let mut pows = vec![0u64; n];
        let mut inv_pows = vec![0u64; n];
        for i in 0..n {
            pows[i] = pow;
            inv_pows[i] = inv_pow;
            pow = modulus.mul(pow, psi);
            inv_pow = modulus.mul(inv_pow, psi_inv);
        }
        for i in 0..n {
            let j = bit_reverse(i, bits);
            root_pows[i] = pows[j];
            inv_root_pows[i] = inv_pows[j];
        }
        let root_pows_shoup = root_pows.iter().map(|&w| modulus.shoup_precompute(w)).collect();
        let inv_root_pows_shoup = inv_root_pows
            .iter()
            .map(|&w| modulus.shoup_precompute(w))
            .collect();
        let n_inv = modulus.inv(n as u64 % q);
        let n_inv_shoup = modulus.shoup_precompute(n_inv);
        Some(Self {
            n,
            modulus,
            root_pows,
            root_pows_shoup,
            inv_root_pows,
            inv_root_pows_shoup,
            n_inv,
            n_inv_shoup,
        })
    }

    /// Ring degree.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The modulus these tables were built for.
    #[inline]
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    /// Forward negacyclic NTT, in place (Cooley-Tukey, decimation in time).
    ///
    /// Input in natural coefficient order, output in bit-reversed evaluation
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "polynomial length mismatch");
        let m = &self.modulus;
        let n = self.n;
        let mut t = n;
        let mut len = 1usize;
        while len < n {
            t >>= 1;
            for i in 0..len {
                let w = self.root_pows[len + i];
                let ws = self.root_pows_shoup[len + i];
                let j0 = 2 * i * t;
                for j in j0..j0 + t {
                    let u = a[j];
                    let v = m.mul_shoup(a[j + t], w, ws);
                    a[j] = m.add(u, v);
                    a[j + t] = m.sub(u, v);
                }
            }
            len <<= 1;
        }
    }

    /// Inverse negacyclic NTT, in place (Gentleman-Sande, decimation in
    /// frequency), including the `n^{-1}` scaling.
    ///
    /// Input in bit-reversed evaluation order, output in natural coefficient
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "polynomial length mismatch");
        let m = &self.modulus;
        let n = self.n;
        let mut t = 1usize;
        let mut len = n >> 1;
        while len >= 1 {
            let mut j0 = 0usize;
            for i in 0..len {
                let w = self.inv_root_pows[len + i];
                let ws = self.inv_root_pows_shoup[len + i];
                for j in j0..j0 + t {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = m.add(u, v);
                    a[j + t] = m.mul_shoup(m.sub(u, v), w, ws);
                }
                j0 += 2 * t;
            }
            t <<= 1;
            len >>= 1;
        }
        for x in a.iter_mut() {
            *x = m.mul_shoup(*x, self.n_inv, self.n_inv_shoup);
        }
    }

    /// Element-wise product in the evaluation domain: `a[i] = a[i] * b[i]`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ from the ring degree.
    pub fn pointwise_mul(&self, a: &mut [u64], b: &[u64]) {
        assert_eq!(a.len(), self.n);
        assert_eq!(b.len(), self.n);
        for (x, &y) in a.iter_mut().zip(b) {
            *x = self.modulus.mul(*x, y);
        }
    }

    /// Reference negacyclic convolution in the coefficient domain, `O(N^2)`.
    /// Used by tests to validate the NTT-based path.
    pub fn negacyclic_convolution_reference(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        assert_eq!(a.len(), self.n);
        assert_eq!(b.len(), self.n);
        let m = &self.modulus;
        let mut c = vec![0u64; self.n];
        for i in 0..self.n {
            if a[i] == 0 {
                continue;
            }
            for j in 0..self.n {
                let k = i + j;
                let prod = m.mul(a[i], b[j]);
                if k < self.n {
                    c[k] = m.add(c[k], prod);
                } else {
                    c[k - self.n] = m.sub(c[k - self.n], prod);
                }
            }
        }
        c
    }
}

/// Finds a primitive `order`-th root of unity modulo a prime.
fn find_primitive_root(m: &Modulus, order: u64) -> Option<u64> {
    let q = m.value();
    if (q - 1) % order != 0 {
        return None;
    }
    let cofactor = (q - 1) / order;
    // Try small candidates; g^cofactor has order dividing `order`, and has
    // order exactly `order` iff raising to order/2 is not 1.
    for g in 2..u64::min(q, 1 << 20) {
        let cand = m.pow(g, cofactor);
        if cand != 1 && m.pow(cand, order / 2) == q - 1 {
            return Some(cand);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_ntt_primes;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn table(n: usize, bits: u32) -> NttTable {
        let q = generate_ntt_primes(n, bits, 1).unwrap()[0];
        NttTable::new(n, q).unwrap()
    }

    #[test]
    fn rejects_non_ntt_friendly_modulus() {
        assert!(NttTable::new(8, 17).is_some()); // 17 ≡ 1 (mod 16), prime
        assert!(NttTable::new(8, 19).is_none()); // 19 ≢ 1 (mod 16)
        assert!(NttTable::new(7, 257).is_none()); // not a power of two
        assert!(NttTable::new(8, 255).is_none()); // not prime
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for n in [4usize, 64, 1024] {
            let t = table(n, 28);
            let mut rng = rand::rngs::StdRng::seed_from_u64(42);
            let mut a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t.modulus().value())).collect();
            let orig = a.clone();
            t.forward(&mut a);
            assert_ne!(a, orig, "transform should change the vector");
            t.inverse(&mut a);
            assert_eq!(a, orig);
        }
    }

    #[test]
    fn convolution_theorem() {
        let n = 64;
        let t = table(n, 30);
        let q = t.modulus().value();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
        let b: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
        let expect = t.negacyclic_convolution_reference(&a, &b);
        let mut fa = a.clone();
        let mut fb = b.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        t.pointwise_mul(&mut fa, &fb);
        t.inverse(&mut fa);
        assert_eq!(fa, expect);
    }

    #[test]
    fn x_to_the_n_is_minus_one() {
        // (X^{N/2})^2 = X^N = -1 in the negacyclic ring.
        let n = 16;
        let t = table(n, 28);
        let mut a = vec![0u64; n];
        a[n / 2] = 1;
        let mut fa = a.clone();
        t.forward(&mut fa);
        let fa_copy = fa.clone();
        t.pointwise_mul(&mut fa, &fa_copy);
        t.inverse(&mut fa);
        let mut expect = vec![0u64; n];
        expect[0] = t.modulus().value() - 1; // -1
        assert_eq!(fa, expect);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ntt_is_linear(seed in any::<u64>()) {
            let n = 32;
            let t = table(n, 28);
            let q = t.modulus().value();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
            let b: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
            let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| t.modulus().add(x, y)).collect();
            let mut fa = a.clone();
            let mut fb = b.clone();
            let mut fsum = sum.clone();
            t.forward(&mut fa);
            t.forward(&mut fb);
            t.forward(&mut fsum);
            let sum_of_transforms: Vec<u64> =
                fa.iter().zip(&fb).map(|(&x, &y)| t.modulus().add(x, y)).collect();
            prop_assert_eq!(fsum, sum_of_transforms);
        }
    }
}
