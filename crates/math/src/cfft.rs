//! Complex arithmetic and the "special" FFT used by the CKKS encoder.
//!
//! CKKS packs `n = N/2` complex values into a degree-`N-1` real polynomial
//! via the canonical embedding (Sec. 2.2): slot `j` is the evaluation of the
//! polynomial at `ζ^{5^j}`, where `ζ` is a primitive `2N`-th complex root of
//! unity. The transform between slots and coefficients is an FFT over the
//! orbit of 5 — the `SpecialFft` of the HEAAN/Lattigo implementations.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The complex number `e^{i theta}`.
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// Precomputed tables for the CKKS special FFT over `n` slots (ring degree
/// `N = 2n`).
///
/// # Example
///
/// ```
/// use cl_math::{Complex, SpecialFft};
/// let fft = SpecialFft::new(4); // 4 slots, ring degree 8
/// let mut v = vec![
///     Complex::new(1.0, 0.0),
///     Complex::new(2.0, -1.0),
///     Complex::new(0.5, 3.0),
///     Complex::new(-1.0, 0.25),
/// ];
/// let orig = v.clone();
/// fft.inverse(&mut v);
/// fft.forward(&mut v);
/// for (a, b) in v.iter().zip(&orig) {
///     assert!((*a - *b).abs() < 1e-9);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct SpecialFft {
    slots: usize,
    /// Powers of the primitive 4n-th root of unity: `zeta^k, k in [0, 4n)`.
    zeta_pows: Vec<Complex>,
    /// `5^j mod 4n` for `j in [0, n)`.
    rot_group: Vec<usize>,
}

impl SpecialFft {
    /// Builds tables for `slots` slots (`slots` a power of two `>= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `slots` is not a power of two.
    pub fn new(slots: usize) -> Self {
        assert!(slots.is_power_of_two() && slots >= 1);
        let m = 4 * slots; // = 2N
        let zeta_pows = (0..m)
            .map(|k| Complex::from_angle(2.0 * std::f64::consts::PI * k as f64 / m as f64))
            .collect();
        let mut rot_group = Vec::with_capacity(slots);
        let mut five = 1usize;
        for _ in 0..slots {
            rot_group.push(five);
            five = (five * 5) % m;
        }
        Self {
            slots,
            zeta_pows,
            rot_group,
        }
    }

    /// Number of slots.
    #[inline]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Forward special FFT (decode direction: coefficients → slots),
    /// in place.
    ///
    /// # Panics
    ///
    /// Panics if `vals.len() != self.slots()`.
    pub fn forward(&self, vals: &mut [Complex]) {
        assert_eq!(vals.len(), self.slots);
        crate::bit_reverse_permute(vals);
        let n = self.slots;
        let m = 4 * n;
        let mut len = 2usize;
        while len <= n {
            let lenh = len >> 1;
            let lenq = len << 2;
            for i in (0..n).step_by(len) {
                for j in 0..lenh {
                    let idx = (self.rot_group[j] % lenq) * (m / lenq);
                    let u = vals[i + j];
                    let v = vals[i + j + lenh] * self.zeta_pows[idx];
                    vals[i + j] = u + v;
                    vals[i + j + lenh] = u - v;
                }
            }
            len <<= 1;
        }
    }

    /// Inverse special FFT (encode direction: slots → coefficients),
    /// in place, including the `1/n` scaling.
    ///
    /// # Panics
    ///
    /// Panics if `vals.len() != self.slots()`.
    pub fn inverse(&self, vals: &mut [Complex]) {
        assert_eq!(vals.len(), self.slots);
        let n = self.slots;
        let m = 4 * n;
        let mut len = n;
        while len >= 2 {
            let lenh = len >> 1;
            let lenq = len << 2;
            for i in (0..n).step_by(len) {
                for j in 0..lenh {
                    let idx = (lenq - (self.rot_group[j] % lenq)) * (m / lenq);
                    let u = vals[i + j] + vals[i + j + lenh];
                    let v = (vals[i + j] - vals[i + j + lenh]) * self.zeta_pows[idx];
                    vals[i + j] = u;
                    vals[i + j + lenh] = v;
                }
            }
            len >>= 1;
        }
        crate::bit_reverse_permute(vals);
        for v in vals.iter_mut() {
            *v = *v / n as f64;
        }
    }

    /// Reference O(n^2) evaluation of the canonical embedding: given real
    /// polynomial coefficients `coeffs` (length `2n`, as f64), returns the
    /// slot values `p(zeta^{5^j})`. Used by tests.
    pub fn embed_reference(&self, coeffs: &[f64]) -> Vec<Complex> {
        assert_eq!(coeffs.len(), 2 * self.slots);
        let m = 4 * self.slots;
        (0..self.slots)
            .map(|j| {
                let root_exp = self.rot_group[j];
                let mut acc = Complex::default();
                for (i, &c) in coeffs.iter().enumerate() {
                    acc += self.zeta_pows[(root_exp * i) % m] * c;
                }
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rand_slots(n: usize, seed: u64) -> Vec<Complex> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect()
    }

    #[test]
    fn complex_arithmetic() {
        let i = Complex::new(0.0, 1.0);
        assert!((i * i + Complex::new(1.0, 0.0)).abs() < 1e-15);
        assert!((Complex::from_angle(std::f64::consts::PI) + Complex::new(1.0, 0.0)).abs() < 1e-15);
        assert_eq!(i.conj(), -i);
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for slots in [1usize, 2, 8, 256] {
            let fft = SpecialFft::new(slots);
            let mut v = rand_slots(slots, 3);
            let orig = v.clone();
            fft.inverse(&mut v);
            fft.forward(&mut v);
            for (a, b) in v.iter().zip(&orig) {
                assert!((*a - *b).abs() < 1e-9, "slots={slots}");
            }
        }
    }

    #[test]
    fn forward_matches_canonical_embedding() {
        // inverse() produces "complexified" coefficients c_j + i*c_{j+n};
        // check that forward() of real coefficient pairs equals the true
        // canonical embedding of the real polynomial.
        let slots = 16;
        let fft = SpecialFft::new(slots);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let coeffs: Vec<f64> = (0..2 * slots).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut vals: Vec<Complex> = (0..slots)
            .map(|j| Complex::new(coeffs[j], coeffs[j + slots]))
            .collect();
        fft.forward(&mut vals);
        let reference = fft.embed_reference(&coeffs);
        for (a, b) in vals.iter().zip(&reference) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn inverse_of_embedding_recovers_real_coefficients() {
        // Round-trip through encode direction: slots -> coeffs must give the
        // complexified layout whose forward matches the original slots, and
        // whose implied length-2n real coefficient vector is real (exact by
        // construction).
        let slots = 32;
        let fft = SpecialFft::new(slots);
        let slots_vals = rand_slots(slots, 9);
        let mut v = slots_vals.clone();
        fft.inverse(&mut v);
        // Real coefficients: re -> c[0..n], im -> c[n..2n].
        let coeffs: Vec<f64> = v
            .iter()
            .map(|c| c.re)
            .chain(v.iter().map(|c| c.im))
            .collect();
        let emb = fft.embed_reference(&coeffs);
        for (a, b) in emb.iter().zip(&slots_vals) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }
}
