//! Generation of NTT-friendly primes.
//!
//! A degree-`N` negacyclic NTT over `Z_q` requires a primitive `2N`-th root
//! of unity, i.e. `q ≡ 1 (mod 2N)`. The paper (Sec. 5.5) notes that 28-bit
//! words are the narrowest that still leave enough NTT-friendly primes for
//! the `2·L_max = 120` small moduli deep programs need — a fact
//! [`generate_ntt_primes`] lets us verify directly.

use std::fmt;

/// Errors produced by this crate's fallible operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MathError {
    /// Not enough primes of the requested shape exist.
    NotEnoughPrimes {
        /// Requested number of primes.
        requested: usize,
        /// Number actually found.
        found: usize,
        /// Requested bit width.
        bits: u32,
    },
    /// A parameter was outside the supported range.
    InvalidParameter(String),
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::NotEnoughPrimes {
                requested,
                found,
                bits,
            } => write!(
                f,
                "only {found} of {requested} requested {bits}-bit NTT-friendly primes exist"
            ),
            MathError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for MathError {}

/// Deterministic Miller-Rabin primality test, valid for all `u64`.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    let mul_mod = |a: u64, b: u64| ((a as u128 * b as u128) % n as u128) as u64;
    let pow_mod = |mut base: u64, mut exp: u64| {
        let mut acc = 1u64;
        base %= n;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = mul_mod(acc, base);
            }
            base = mul_mod(base, base);
            exp >>= 1;
        }
        acc
    };
    // These witnesses are sufficient for all n < 2^64.
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates `count` distinct primes `q ≡ 1 (mod 2N)` of exactly `bits` bits,
/// scanning downward from `2^bits`.
///
/// # Errors
///
/// Returns [`MathError::InvalidParameter`] if `n` is not a power of two or
/// `bits` is outside `[8, 59]` (primes must stay below the `2^60`
/// [`crate::Modulus`] cap required by the lazy-reduction NTT), and
/// [`MathError::NotEnoughPrimes`] if fewer than `count` such primes exist.
///
/// # Example
///
/// ```
/// // The paper's claim: 28 bits is just wide enough for 120 moduli at N=64K.
/// let primes = cl_math::generate_ntt_primes(1 << 16, 28, 120)?;
/// assert_eq!(primes.len(), 120);
/// # Ok::<(), cl_math::MathError>(())
/// ```
pub fn generate_ntt_primes(n: usize, bits: u32, count: usize) -> Result<Vec<u64>, MathError> {
    if !n.is_power_of_two() || n < 2 {
        return Err(MathError::InvalidParameter(format!(
            "ring degree must be a power of two >= 2, got {n}"
        )));
    }
    if !(8..=59).contains(&bits) {
        return Err(MathError::InvalidParameter(format!(
            "prime width must be in [8, 59] bits, got {bits}"
        )));
    }
    let step = 2 * n as u64;
    let hi = 1u64 << bits;
    let lo = 1u64 << (bits - 1);
    let mut primes = Vec::with_capacity(count);
    // Largest candidate of the form k*2N + 1 below 2^bits.
    let mut cand = (hi - 2) / step * step + 1;
    while cand > lo && primes.len() < count {
        if is_prime(cand) {
            primes.push(cand);
        }
        if cand < step {
            break;
        }
        cand -= step;
    }
    if primes.len() < count {
        return Err(MathError::NotEnoughPrimes {
            requested: count,
            found: primes.len(),
            bits,
        });
    }
    Ok(primes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_prime_small() {
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 7919];
        let composites = [0u64, 1, 4, 9, 100, 7917, 561, 1_373_653 * 3];
        for p in primes {
            assert!(is_prime(p), "{p} should be prime");
        }
        for c in composites {
            assert!(!is_prime(c), "{c} should be composite");
        }
    }

    #[test]
    fn is_prime_large_carmichael_like() {
        // Strong pseudoprime to several bases; must still be rejected.
        assert!(!is_prime(3_215_031_751));
        assert!(is_prime((1u64 << 61) - 1)); // Mersenne prime M61
    }

    #[test]
    fn generated_primes_have_ntt_shape() {
        let n = 1 << 12;
        let primes = generate_ntt_primes(n, 30, 10).unwrap();
        assert_eq!(primes.len(), 10);
        for &q in &primes {
            assert!(is_prime(q));
            assert_eq!(q % (2 * n as u64), 1);
            assert_eq!(64 - q.leading_zeros(), 30);
        }
        // Distinct and descending.
        for w in primes.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn paper_claim_28_bits_suffices_for_120_moduli_at_64k() {
        // Sec. 5.5: "we cannot reduce bitwidth any further because then there
        // would not be enough NTT-friendly moduli" (need 2*Lmax = 120 at N=64K).
        let ok = generate_ntt_primes(1 << 16, 28, 120);
        assert!(ok.is_ok());
        // At 25 bits there are far fewer than 120.
        let too_narrow = generate_ntt_primes(1 << 16, 25, 120);
        assert!(matches!(
            too_narrow,
            Err(MathError::NotEnoughPrimes { .. })
        ));
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(generate_ntt_primes(1000, 28, 1).is_err()); // not a power of two
        assert!(generate_ntt_primes(1024, 60, 1).is_err()); // too wide
        assert!(generate_ntt_primes(1024, 4, 1).is_err()); // too narrow
    }
}
