//! 64-byte-aligned buffers for SIMD-friendly precomputed tables.
//!
//! The vector backends ([`crate::backend`]) stream twiddle factors, Shoup
//! constants, and permutation indices with 256/512-bit loads. `Vec`'s global
//! allocator only guarantees the alignment of the element type (8 bytes for
//! `u64`), so a plain `Vec<u64>` twiddle table can straddle cache lines and
//! force the hot NTT path onto split loads. [`AlignedVec`] allocates at
//! [`SIMD_ALIGN`] so every vector load of a table starts cache-line aligned.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Alignment (bytes) used for all SIMD-visible tables: one cache line, which
/// also satisfies the strictest vector load width (64-byte ZMM).
pub const SIMD_ALIGN: usize = 64;

/// A fixed-length, heap-allocated buffer of `Copy` elements aligned to
/// [`SIMD_ALIGN`] bytes.
///
/// Behaves like a boxed slice: it derefs to `[T]`, clones deeply, and frees
/// its allocation on drop. Unlike `Vec` it cannot grow — tables are built
/// once and then only read.
///
/// # Example
///
/// ```
/// use cl_math::AlignedVec;
/// let v = AlignedVec::from_slice(&[1u64, 2, 3]);
/// assert_eq!(&v[..], &[1, 2, 3]);
/// assert_eq!(v.as_ptr() as usize % cl_math::SIMD_ALIGN, 0);
/// ```
pub struct AlignedVec<T: Copy> {
    ptr: NonNull<T>,
    len: usize,
}

// SAFETY: AlignedVec owns its allocation exclusively (no aliasing, no
// interior mutability), so sending or sharing it across threads is exactly as
// safe as for the element type itself.
unsafe impl<T: Copy + Send> Send for AlignedVec<T> {}
// SAFETY: see the Send impl — shared access is read-only through &self.
unsafe impl<T: Copy + Sync> Sync for AlignedVec<T> {}

impl<T: Copy> AlignedVec<T> {
    fn layout(len: usize) -> Layout {
        // Element alignment never exceeds SIMD_ALIGN for the word-sized
        // types the tables store, so rounding the array layout up to
        // SIMD_ALIGN is always valid.
        Layout::array::<T>(len)
            .and_then(|l| l.align_to(SIMD_ALIGN))
            .expect("table size overflows the address space")
    }

    /// Allocates a zero-initialized buffer of `len` elements.
    pub fn new_zeroed(len: usize) -> Self {
        if len == 0 || std::mem::size_of::<T>() == 0 {
            return Self {
                ptr: NonNull::dangling(),
                len,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (len > 0 and T is not a ZST).
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<T>()) else {
            handle_alloc_error(layout)
        };
        Self { ptr, len }
    }

    /// Allocates an aligned copy of `src`.
    ///
    /// All-zero-bytes is a valid `T` for the plain integer types stored here,
    /// so the zeroed allocation followed by an element-wise copy is sound.
    pub fn from_slice(src: &[T]) -> Self {
        let mut v = Self::new_zeroed(src.len());
        v.as_mut_slice().copy_from_slice(src);
        v
    }

    /// The buffer as an immutable slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: ptr is valid for len initialized elements (or dangling
        // with len == 0, for which from_raw_parts is still defined).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// The buffer as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: as as_slice, plus &mut self guarantees exclusive access.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl<T: Copy> Drop for AlignedVec<T> {
    fn drop(&mut self) {
        if self.len == 0 || std::mem::size_of::<T>() == 0 {
            return;
        }
        // SAFETY: ptr was allocated in new_zeroed with exactly this layout.
        unsafe { dealloc(self.ptr.as_ptr().cast(), Self::layout(self.len)) };
    }
}

impl<T: Copy> Deref for AlignedVec<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy> DerefMut for AlignedVec<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy> Clone for AlignedVec<T> {
    fn clone(&self) -> Self {
        Self::from_slice(self.as_slice())
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for AlignedVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: Copy + PartialEq> PartialEq for AlignedVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Eq> Eq for AlignedVec<T> {}

impl<T: Copy> From<Vec<T>> for AlignedVec<T> {
    fn from(v: Vec<T>) -> Self {
        Self::from_slice(&v)
    }
}

impl<T: Copy> FromIterator<T> for AlignedVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Self::from_slice(&iter.into_iter().collect::<Vec<T>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_contents() {
        for len in [0usize, 1, 7, 64, 1000] {
            let src: Vec<u64> = (0..len as u64).map(|i| i.wrapping_mul(0x9e37)).collect();
            let v = AlignedVec::from_slice(&src);
            assert_eq!(&v[..], &src[..]);
            if len > 0 {
                assert_eq!(v.as_ptr() as usize % SIMD_ALIGN, 0);
            }
            let w = v.clone();
            assert_eq!(v, w);
        }
    }

    #[test]
    fn u32_elements() {
        let v: AlignedVec<u32> = (0..257u32).collect();
        assert_eq!(v.len(), 257);
        assert_eq!(v[256], 256);
        assert_eq!(v.as_ptr() as usize % SIMD_ALIGN, 0);
    }

    #[test]
    fn mutation_through_deref() {
        let mut v = AlignedVec::from_slice(&[0u64; 16]);
        v[3] = 42;
        v.as_mut_slice()[4] = 43;
        assert_eq!(v[3], 42);
        assert_eq!(v[4], 43);
    }
}
