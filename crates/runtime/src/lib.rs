//! Resilient pipeline execution for unbounded FHE workloads.
//!
//! CraterLake's core claim is *unbounded* computation on encrypted data
//! (Secs. 2, 6): bootstrapped pipelines deep enough that, deployed as a
//! service, a single job outlives process restarts, DRAM bit flips, and
//! operator error. This crate supplies the robustness layer that story
//! needs on top of `cl-ckks`/`cl-boot`:
//!
//! - [`Program`]/[`PipelineOp`]: a declared sequence of homomorphic ops,
//!   with bootstrap expanded into its checkpointable
//!   [`cl_boot::BootState`] stages;
//! - [`CheckpointStore`]: durable, atomically-written checkpoint records
//!   (two rotating slots, tmp-file + rename) in the integrity-checked wire
//!   format of [`cl_ckks::serialize`] — corrupt or torn records are
//!   *rejected at load time* by checksum/fingerprint checks, never
//!   resumed from;
//! - [`PipelineExecutor`]: runs a program under
//!   [`GuardrailPolicy::Strict`], checkpoints every N micro-ops, and on
//!   any detected fault (corrupt limb, exhausted budget, tampered hint)
//!   restores the last good checkpoint and retries within a bounded
//!   budget, recording per-event [`RecoveryTelemetry`];
//! - crash/resume: a simulated kill (see `cl_ckks::faults::FaultPlan`)
//!   abandons in-memory state; [`PipelineExecutor::resume`] reloads the
//!   newest valid on-disk checkpoint and continues from its program
//!   counter.
//!
//! The recovery loop is validated end-to-end in `tests/recovery.rs`: a
//! ≥16-level bootstrapped pipeline under seeded bit flips plus a mid-run
//! kill converges to the limb-bit-identical result of a fault-free run.

#![warn(missing_docs)]
// Library code must propagate failures (`FheResult`/`?`) or `expect` with
// the violated invariant; tests are exempt. Enforced by scripts/verify.sh.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod checkpoint;
mod executor;
mod program;

pub use checkpoint::{sweep_checkpoint_dir, Checkpoint, CheckpointStore, WorkState};
pub use executor::{
    ExecutorConfig, PipelineExecutor, RecoveryTelemetry, RunControl, RunOutcome,
};
pub use program::{PipelineOp, Program, MAX_PLAIN_VALUES, MAX_PROGRAM_OPS};
