//! The resilient pipeline executor: strict guardrails, periodic durable
//! checkpoints, and restore-and-retry recovery with a bounded budget.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cl_boot::{BootState, Bootstrapper, BootstrapKeys};
use cl_ckks::{Ciphertext, CkksContext, FheError, FheResult, GuardrailPolicy};

#[cfg(any(test, feature = "faults"))]
use cl_ckks::faults::{FaultAction, FaultPlan};

use crate::checkpoint::{Checkpoint, CheckpointStore, WorkState};
use crate::program::{PipelineOp, Program};

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Checkpoint every N micro-ops (plus once at completion). `0`
    /// disables durable checkpoints; recovery then uses only the
    /// in-memory last-good state and [`PipelineExecutor::resume`] restarts
    /// from the input.
    pub checkpoint_every: u64,
    /// Total restore-and-retry attempts allowed per run before the
    /// executor gives up and surfaces the fault.
    pub max_retries: u32,
    /// Directory for checkpoint slot files. Required when
    /// `checkpoint_every > 0`.
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self {
            checkpoint_every: 4,
            max_retries: 8,
            checkpoint_dir: None,
        }
    }
}

/// A shared handle controlling one job's execution from outside: cancel it,
/// bound its wall time with a deadline, or (for a supervising watchdog)
/// observe its heartbeat and mark it stalled. The executor consults the
/// control at every micro-op boundary, so an abort lands within one op of
/// the request and never mid-kernel.
///
/// Cancellation, deadline expiry, and stall marks are *not* faults: they
/// bypass the restore-and-retry machinery and surface immediately as
/// [`FheError::Cancelled`] / [`FheError::DeadlineExceeded`] /
/// [`FheError::Stalled`]. Cloning shares the same underlying state (a
/// queue can hold one clone, the executor another, a watchdog a third).
#[derive(Debug, Clone, Default)]
pub struct RunControl {
    inner: Arc<ControlState>,
}

#[derive(Debug)]
struct ControlState {
    cancelled: AtomicBool,
    /// `(armed_at, budget)` — fixed when the control is created, so the
    /// deadline clock includes time spent queued, not just executing.
    deadline: Option<(Instant, Duration)>,
    /// Epoch for the heartbeat clock (control creation time).
    epoch: Instant,
    /// Milliseconds since `epoch` at the last [`RunControl::check`] — the
    /// liveness signal a watchdog compares against its stall budget.
    heartbeat_ms: AtomicU64,
    /// Set by a watchdog; the next boundary check aborts with
    /// [`FheError::Stalled`].
    stalled: AtomicBool,
    /// How stale the heartbeat was when the watchdog fired, for the error.
    stalled_for_ms: AtomicU64,
}

impl Default for ControlState {
    fn default() -> Self {
        Self {
            cancelled: AtomicBool::new(false),
            deadline: None,
            epoch: Instant::now(),
            heartbeat_ms: AtomicU64::new(0),
            stalled: AtomicBool::new(false),
            stalled_for_ms: AtomicU64::new(0),
        }
    }
}

impl RunControl {
    /// A control with no deadline.
    pub fn new() -> Self {
        Self::default()
    }

    /// A control whose job must finish within `budget` of *now*.
    pub fn with_deadline(budget: Duration) -> Self {
        Self {
            inner: Arc::new(ControlState {
                deadline: Some((Instant::now(), budget)),
                ..ControlState::default()
            }),
        }
    }

    /// Requests cancellation: the next micro-op boundary aborts the run.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Whether the deadline (if any) has already passed.
    pub fn is_past_deadline(&self) -> bool {
        self.inner
            .deadline
            .is_some_and(|(armed, budget)| armed.elapsed() > budget)
    }

    /// Records a liveness beat *now*. [`RunControl::check`] beats
    /// implicitly; long-running callers without a control loop can beat
    /// explicitly.
    pub fn beat(&self) {
        let now_ms = self.inner.epoch.elapsed().as_millis() as u64;
        self.inner.heartbeat_ms.store(now_ms, Ordering::Release);
    }

    /// Milliseconds since the last heartbeat — the staleness a watchdog
    /// compares against its stall budget. A control that never beat reads
    /// as stale since its creation, so a job wedged before its first
    /// micro-op is still caught.
    pub fn millis_since_heartbeat(&self) -> u64 {
        let now_ms = self.inner.epoch.elapsed().as_millis() as u64;
        now_ms.saturating_sub(self.inner.heartbeat_ms.load(Ordering::Acquire))
    }

    /// Marks the run stalled (watchdog verdict): the next micro-op
    /// boundary aborts with [`FheError::Stalled`]. Returns `true` only for
    /// the marking that actually flipped the flag, so a periodic
    /// supervisor counts each stall exactly once. Cooperative by design —
    /// a genuinely wedged kernel is only *observed* here; the abort lands
    /// when the run next reaches a boundary.
    pub fn mark_stalled(&self, stale_ms: u64) -> bool {
        let newly = self
            .inner
            .stalled
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        if newly {
            self.inner.stalled_for_ms.store(stale_ms, Ordering::Release);
        }
        newly
    }

    /// Whether a watchdog has marked this run stalled.
    pub fn is_stalled(&self) -> bool {
        self.inner.stalled.load(Ordering::Acquire)
    }

    /// Clears a stall mark (and freshens the heartbeat) before a retry
    /// attempt resumes from the last durable checkpoint.
    pub fn clear_stall(&self) {
        self.inner.stalled.store(false, Ordering::Release);
        self.beat();
    }

    /// The abort check the executor runs at every micro-op boundary. Also
    /// freshens the heartbeat: reaching a boundary *is* the liveness
    /// signal.
    ///
    /// # Errors
    ///
    /// [`FheError::Cancelled`] after [`RunControl::cancel`];
    /// [`FheError::DeadlineExceeded`] once the wall clock passes the
    /// deadline; [`FheError::Stalled`] after [`RunControl::mark_stalled`].
    pub fn check(&self, op: &'static str) -> FheResult<()> {
        self.beat();
        if self.is_cancelled() {
            return Err(FheError::Cancelled { op });
        }
        if self.is_stalled() {
            return Err(FheError::Stalled {
                op,
                stalled_ms: self.inner.stalled_for_ms.load(Ordering::Acquire),
            });
        }
        if let Some((armed, budget)) = self.inner.deadline {
            let elapsed = armed.elapsed();
            if elapsed > budget {
                return Err(FheError::DeadlineExceeded {
                    op,
                    deadline_ms: budget.as_millis() as u64,
                    elapsed_ms: elapsed.as_millis() as u64,
                });
            }
        }
        Ok(())
    }
}

/// Counters describing what the recovery machinery did during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryTelemetry {
    /// Faults injected by the attached [`FaultPlan`] (0 without one).
    pub faults_injected: u64,
    /// Faults *detected*: op failures under the strict policy, plus
    /// pre-checkpoint validation failures.
    pub faults_detected: u64,
    /// Restore-and-retry attempts consumed.
    pub retries: u64,
    /// Restores satisfied from a durable on-disk checkpoint (the rest
    /// fell back to the in-memory last-good state).
    pub restores: u64,
    /// Checkpoint records written to disk.
    pub checkpoints_written: u64,
    /// Total checkpoint bytes written to disk.
    pub bytes_written: u64,
    /// Simulated crashes (fault-plan kill points) honoured.
    pub crashes: u64,
    /// Micro-ops that executed successfully (including re-executions
    /// after a restore).
    pub ops_executed: u64,
    /// High-water mark of live ciphertexts (named slots + the
    /// accumulator) observed at micro-op boundaries — the measured
    /// counterpart of the compiler residency plan's predicted peak.
    pub peak_live_cts: u64,
    /// Primitive-op counters accumulated while the executor was driving
    /// (NTT passes, element-wise mults/adds, base conversions, ...). All
    /// zero unless the `trace` feature of `cl-trace` is enabled. Counters
    /// are process-global, so this is only attributable to the run when no
    /// other FHE work executes concurrently.
    pub ops: cl_trace::OpSnapshot,
}

impl RecoveryTelemetry {
    /// Accumulates `other` into `self` — e.g. a job server summing the
    /// per-attempt telemetry of one job, or per-job telemetry into a
    /// per-tenant aggregate.
    pub fn merge(&mut self, other: &RecoveryTelemetry) {
        self.faults_injected += other.faults_injected;
        self.faults_detected += other.faults_detected;
        self.retries += other.retries;
        self.restores += other.restores;
        self.checkpoints_written += other.checkpoints_written;
        self.bytes_written += other.bytes_written;
        self.crashes += other.crashes;
        self.ops_executed += other.ops_executed;
        // A high-water mark aggregates by max, not sum.
        self.peak_live_cts = self.peak_live_cts.max(other.peak_live_cts);
        self.ops = self.ops.plus(&other.ops);
    }
}

/// How a run ended (when it did not fail outright).
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// The program ran to completion; here is the final ciphertext.
    Completed(Ciphertext),
    /// A fault-plan kill point fired: the process "died", abandoning all
    /// in-memory state. Call [`PipelineExecutor::resume`] to pick the
    /// pipeline back up from the newest durable checkpoint.
    Crashed,
}

/// Runs a declared [`Program`] under [`GuardrailPolicy::Strict`],
/// checkpointing to disk and recovering from detected faults by restoring
/// the last good state and re-executing (deterministic ops make the retry
/// converge bit-identically).
pub struct PipelineExecutor<'a> {
    ctx: &'a CkksContext,
    keys: &'a BootstrapKeys,
    booter: Option<&'a Bootstrapper>,
    config: ExecutorConfig,
    store: Option<CheckpointStore>,
    telemetry: RecoveryTelemetry,
    control: Option<RunControl>,
    /// Digest of the `(program, input)` pair currently driving; written
    /// into every checkpoint and required back at load, so a reused
    /// checkpoint directory can never resume another job's state.
    binding: u64,
    #[cfg(any(test, feature = "faults"))]
    plan: Option<FaultPlan>,
}

impl<'a> PipelineExecutor<'a> {
    /// Creates an executor for `ctx` using the key bundle `keys`.
    ///
    /// # Errors
    ///
    /// [`FheError::InvalidParams`] unless the context runs
    /// [`GuardrailPolicy::Strict`] (without strict validation, injected
    /// faults would propagate silently instead of being detected and
    /// retried), or when durable checkpointing is requested without a
    /// directory. [`FheError::Serialization`] when the checkpoint
    /// directory cannot be created.
    pub fn new(
        ctx: &'a CkksContext,
        keys: &'a BootstrapKeys,
        config: ExecutorConfig,
    ) -> FheResult<Self> {
        if !matches!(ctx.policy(), GuardrailPolicy::Strict { .. }) {
            return Err(FheError::InvalidParams {
                op: "executor",
                reason: "fault recovery requires GuardrailPolicy::Strict (faults must be \
                         detected to be retried)"
                    .into(),
            });
        }
        let store = match (&config.checkpoint_dir, config.checkpoint_every) {
            (_, 0) => None,
            (Some(dir), _) => Some(CheckpointStore::open(dir)?),
            (None, _) => {
                return Err(FheError::InvalidParams {
                    op: "executor",
                    reason: "checkpoint_every > 0 requires a checkpoint_dir".into(),
                })
            }
        };
        Ok(Self {
            ctx,
            keys,
            booter: None,
            config,
            store,
            telemetry: RecoveryTelemetry::default(),
            control: None,
            binding: 0,
            #[cfg(any(test, feature = "faults"))]
            plan: None,
        })
    }

    /// Attaches an external control handle (cancellation + deadline),
    /// consulted at every micro-op boundary. A job server hands one clone
    /// to the executor and keeps another to cancel the job from outside.
    pub fn set_control(&mut self, control: RunControl) {
        self.control = Some(control);
    }

    /// Attaches the bootstrapper required for programs containing
    /// [`PipelineOp::Bootstrap`].
    #[must_use]
    pub fn with_bootstrapper(mut self, booter: &'a Bootstrapper) -> Self {
        self.booter = Some(booter);
        self
    }

    /// Attaches a seeded fault plan. The plan is consulted before every
    /// micro-op and survives a simulated crash, so the fault stream is one
    /// continuous deterministic sequence across run + resume.
    #[cfg(any(test, feature = "faults"))]
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.plan = Some(plan);
    }

    /// Detaches the fault plan, preserving its advanced op counter. A
    /// server retrying a job on a fresh executor re-attaches the returned
    /// plan so the fault stream stays one continuous deterministic
    /// sequence across attempts (fired kill points do not re-fire).
    #[cfg(any(test, feature = "faults"))]
    pub fn take_fault_plan(&mut self) -> Option<FaultPlan> {
        self.plan.take()
    }

    /// Recovery counters accumulated so far (across run *and* resume).
    pub fn telemetry(&self) -> RecoveryTelemetry {
        self.telemetry
    }

    /// Returns the accumulated telemetry and resets the counters — the
    /// handover point when one executor is reused across jobs (the open
    /// checkpoint store, its directory lock, and the attached key material
    /// all stay warm; only the per-job accounting restarts).
    pub fn take_telemetry(&mut self) -> RecoveryTelemetry {
        std::mem::take(&mut self.telemetry)
    }

    /// Runs `program` on `input` from the start.
    ///
    /// # Errors
    ///
    /// [`FheError::InvalidParams`] for a program needing a bootstrapper
    /// when none is attached; otherwise the fault that exhausted the retry
    /// budget, or a checkpoint I/O failure.
    pub fn run(&mut self, input: &Ciphertext, program: &Program) -> FheResult<RunOutcome> {
        self.run_graph(std::slice::from_ref(input), program)
    }

    /// Runs a (possibly multi-input) dataflow program from the start.
    /// `inputs[0]` seeds the accumulator; [`PipelineOp::Input`] ops fetch
    /// the others by index.
    ///
    /// # Errors
    ///
    /// Same contract as [`PipelineExecutor::run`], plus
    /// [`FheError::InvalidParams`] for an empty input slice.
    pub fn run_graph(&mut self, inputs: &[Ciphertext], program: &Program) -> FheResult<RunOutcome> {
        let first = self.check_graph(inputs, program)?;
        self.binding = self.job_binding(inputs, program);
        self.drive(0, WorkState::Ct(first.clone()), BTreeMap::new(), program, inputs)
    }

    /// Resumes `program` after a crash: reloads the newest valid durable
    /// checkpoint and continues from its program counter, restarting from
    /// `input` when no usable checkpoint exists. Slots rejected by the
    /// integrity checks are counted as detected faults.
    ///
    /// # Errors
    ///
    /// Same contract as [`PipelineExecutor::run`].
    pub fn resume(&mut self, input: &Ciphertext, program: &Program) -> FheResult<RunOutcome> {
        self.resume_graph(std::slice::from_ref(input), program)
    }

    /// [`PipelineExecutor::resume`] for multi-input dataflow programs.
    ///
    /// # Errors
    ///
    /// Same contract as [`PipelineExecutor::run_graph`].
    pub fn resume_graph(
        &mut self,
        inputs: &[Ciphertext],
        program: &Program,
    ) -> FheResult<RunOutcome> {
        let first = self.check_graph(inputs, program)?;
        self.binding = self.job_binding(inputs, program);
        let fresh = || (0, WorkState::Ct(first.clone()), BTreeMap::new());
        let (start_pc, state, slots) = match &mut self.store {
            Some(store) => match store.load_latest(self.ctx, self.binding) {
                Ok((found, rejects)) => {
                    self.telemetry.faults_detected += rejects;
                    match found {
                        Some(cp) => {
                            self.telemetry.restores += 1;
                            (cp.pc, cp.state, cp.slots.into_iter().collect())
                        }
                        None => fresh(),
                    }
                }
                // Every slot on disk is damaged: surface it as a detected
                // fault and restart from the input.
                Err(_) => {
                    self.telemetry.faults_detected += 1;
                    fresh()
                }
            },
            None => fresh(),
        };
        self.drive(start_pc, state, slots, program, inputs)
    }

    /// Content digest binding checkpoints to this exact `(program,
    /// input)` pair. Derived from the serialized forms (which carry the
    /// params fingerprint), so it is stable across processes — a genuine
    /// crash/restart of the same job still resumes its own checkpoints.
    fn job_binding(&self, inputs: &[Ciphertext], program: &Program) -> u64 {
        use cl_ckks::serialize::{fnv1a_chain, fnv1a_fast};
        // fnv1a_fast: this digest is internal to the store, not part of
        // the wire format, so it can take the word-wise fast path over the
        // megabyte-scale ciphertext blobs.
        let mut h = 0u64;
        for input in inputs {
            h = h.wrapping_mul(0x100000001b3).wrapping_add(fnv1a_fast(
                &self.ctx.serialize_ciphertext(input),
            ));
        }
        fnv1a_chain(h, &program.serialize(self.ctx.params_fingerprint()))
    }

    /// Shared admission checks for graph runs; returns the accumulator
    /// seed (`inputs[0]`).
    fn check_graph<'i>(
        &self,
        inputs: &'i [Ciphertext],
        program: &Program,
    ) -> FheResult<&'i Ciphertext> {
        if program.needs_bootstrapper() && self.booter.is_none() {
            return Err(FheError::InvalidParams {
                op: "executor",
                reason: "program contains a bootstrap but no Bootstrapper is attached".into(),
            });
        }
        inputs.first().ok_or_else(|| FheError::InvalidParams {
            op: "executor",
            reason: "a run needs at least one input ciphertext".into(),
        })
    }

    /// The main loop: execute micro-ops from `pc`, checkpointing on the
    /// configured cadence and recovering detected faults by restoring the
    /// last good state (preferring the durable copy) and re-executing.
    fn drive(
        &mut self,
        pc: u64,
        state: WorkState,
        slots: BTreeMap<u16, Ciphertext>,
        program: &Program,
        inputs: &[Ciphertext],
    ) -> FheResult<RunOutcome> {
        let at_entry = cl_trace::OpSnapshot::capture();
        let out = self.drive_inner(pc, state, slots, program, inputs);
        let delta = cl_trace::OpSnapshot::capture().delta_since(&at_entry);
        self.telemetry.ops = self.telemetry.ops.plus(&delta);
        out
    }

    fn drive_inner(
        &mut self,
        mut pc: u64,
        mut state: WorkState,
        mut slots: BTreeMap<u16, Ciphertext>,
        program: &Program,
        inputs: &[Ciphertext],
    ) -> FheResult<RunOutcome> {
        let schedule = program.micro_schedule();
        let end = schedule.len() as u64;
        if pc > end {
            return Err(FheError::InvalidParams {
                op: "executor",
                reason: format!("checkpoint pc {pc} beyond program end {end}"),
            });
        }
        let mut last_good: (u64, WorkState, BTreeMap<u16, Ciphertext>) =
            (pc, state.clone(), slots.clone());
        let mut retries_left = self.config.max_retries;
        self.note_live(&slots);

        while pc < end {
            // Abort requests are checked first, before any fault injection
            // or execution: cancellation and deadline expiry are verdicts,
            // not faults, so they return directly instead of burning the
            // retry budget.
            if let Some(control) = &self.control {
                control.check("pipeline")?;
            }

            #[cfg(any(test, feature = "faults"))]
            if let Some(plan) = self.plan.as_mut() {
                let action = plan.on_op(state.primary_mut());
                self.telemetry.faults_injected = plan.injected();
                if matches!(action, FaultAction::Kill) {
                    // Simulated process death: everything in memory is
                    // gone; only the durable slots survive for resume().
                    self.telemetry.crashes += 1;
                    return Ok(RunOutcome::Crashed);
                }
            }

            let (op_idx, stage) = schedule[pc as usize];
            let step = self
                .exec_micro(&program.ops()[op_idx], stage, state.clone(), &mut slots, inputs)
                // A successful op can still hand a corrupted state to the
                // *next* op; validating here bounds detection latency to
                // one micro-op and keeps checkpoints clean.
                .and_then(|next| {
                    next.validate(self.ctx)?;
                    Ok(next)
                });
            match step {
                Ok(next) => {
                    state = next;
                    pc += 1;
                    self.telemetry.ops_executed += 1;
                    self.note_live(&slots);
                    let due = self.config.checkpoint_every > 0
                        && (pc.is_multiple_of(self.config.checkpoint_every) || pc == end);
                    if due {
                        self.persist(pc, &state, &slots)?;
                    }
                    last_good = (pc, state.clone(), slots.clone());
                }
                Err(fault) => {
                    // Abort verdicts escaping through an op are terminal,
                    // never retried locally (a stall mark persists until
                    // the *owner* clears it, so retrying here would spin).
                    if matches!(
                        fault,
                        FheError::Cancelled { .. }
                            | FheError::DeadlineExceeded { .. }
                            | FheError::Stalled { .. }
                    ) {
                        return Err(fault);
                    }
                    self.telemetry.faults_detected += 1;
                    if retries_left == 0 {
                        return Err(fault);
                    }
                    retries_left -= 1;
                    self.telemetry.retries += 1;
                    (pc, state, slots) = self.restore(&last_good);
                }
            }
        }
        match state {
            WorkState::Ct(ct) => Ok(RunOutcome::Completed(ct)),
            WorkState::Boot(_) => Err(FheError::InvalidParams {
                op: "executor",
                reason: "program ended mid-bootstrap".into(),
            }),
        }
    }

    /// Restores the last good execution point, preferring the durable
    /// on-disk copy when it is at least as fresh (this exercises the full
    /// load path — fingerprint and checksum verification — on every
    /// recovery), falling back to the in-memory clone.
    /// Records the live-ciphertext count at a micro-op boundary (named
    /// slots plus the accumulator) into the telemetry high-water mark.
    fn note_live(&mut self, slots: &BTreeMap<u16, Ciphertext>) {
        let live = slots.len() as u64 + 1;
        self.telemetry.peak_live_cts = self.telemetry.peak_live_cts.max(live);
    }

    fn restore(
        &mut self,
        last_good: &(u64, WorkState, BTreeMap<u16, Ciphertext>),
    ) -> (u64, WorkState, BTreeMap<u16, Ciphertext>) {
        if let Some(store) = &mut self.store {
            if let Ok((Some(cp), _)) = store.load_latest(self.ctx, self.binding) {
                if cp.pc >= last_good.0 {
                    self.telemetry.restores += 1;
                    return (cp.pc, cp.state, cp.slots.into_iter().collect());
                }
            }
        }
        last_good.clone()
    }

    /// Validates and durably writes a checkpoint. A state that fails
    /// validation is *not* written (the previous slots stay intact) —
    /// the caller sees the validation error through the normal fault path.
    fn persist(
        &mut self,
        pc: u64,
        state: &WorkState,
        slots: &BTreeMap<u16, Ciphertext>,
    ) -> FheResult<()> {
        let store = self
            .store
            .as_mut()
            .expect("persist is only called when checkpointing is configured");
        let bytes = store.write(
            self.ctx,
            &Checkpoint {
                pc,
                binding: self.binding,
                state: state.clone(),
                // BTreeMap iteration is id-sorted — the strictly
                // increasing order the record format requires.
                slots: slots.iter().map(|(id, ct)| (*id, ct.clone())).collect(),
            },
        )?;
        self.telemetry.checkpoints_written += 1;
        self.telemetry.bytes_written += bytes;
        Ok(())
    }

    /// Executes one micro-op. Dataflow ops read/write the named-slot
    /// environment `slots` and the immutable `inputs`; on failure the
    /// caller restores `slots` wholesale from the last good boundary, so
    /// partial mutations never leak into a retry.
    fn exec_micro(
        &self,
        op: &PipelineOp,
        stage: usize,
        state: WorkState,
        slots: &mut BTreeMap<u16, Ciphertext>,
        inputs: &[Ciphertext],
    ) -> FheResult<WorkState> {
        // Bootstrap stages operate on (and may produce) a BootState; every
        // other op needs a plain ciphertext.
        if let PipelineOp::Bootstrap = op {
            let booter = self.booter.ok_or(FheError::InvalidParams {
                op: "executor",
                reason: "bootstrap stage without a Bootstrapper".into(),
            })?;
            let boot_state = match (stage, state) {
                (0, WorkState::Ct(ct)) => BootState::Start { ct },
                (_, WorkState::Boot(s)) => *s,
                (s, WorkState::Ct(_)) => {
                    return Err(FheError::InvalidParams {
                        op: "executor",
                        reason: format!("bootstrap stage {s} reached with a plain ciphertext"),
                    })
                }
            };
            let next = booter.try_step(self.ctx, boot_state, self.keys)?;
            return Ok(match next {
                BootState::Done { ct } => WorkState::Ct(ct),
                mid => WorkState::Boot(Box::new(mid)),
            });
        }

        let ct = match state {
            WorkState::Ct(ct) => ct,
            WorkState::Boot(_) => {
                return Err(FheError::InvalidParams {
                    op: "executor",
                    reason: format!("op {} reached mid-bootstrap", op.name()),
                })
            }
        };
        let out = match op {
            PipelineOp::Square => self
                .ctx
                .try_square(&ct, self.keys.try_relin(self.ctx)?.as_ref())?,
            PipelineOp::Rescale => self.ctx.try_rescale(&ct)?,
            PipelineOp::AddPlain(vals) => {
                let p = self.ctx.encode(vals, ct.scale(), ct.level());
                self.ctx.try_add_plain(&ct, &p)?
            }
            PipelineOp::MulPlainRescale(vals) => {
                // Encode at exactly the dropped modulus' value so the
                // rescale lands back on the original scale.
                if ct.level() < 2 {
                    return Err(FheError::LevelMismatch {
                        op: "mul_plain_rescale",
                        got: ct.level(),
                        want: 2,
                    });
                }
                let q_drop = self.ctx.rns().modulus_value((ct.level() - 1) as u32) as f64;
                let p = self.ctx.encode(vals, q_drop, ct.level());
                let prod = self.ctx.try_mul_plain(&ct, &p)?;
                self.ctx.try_rescale(&prod)?
            }
            PipelineOp::Rotate(steps) => {
                let key = self.keys.try_rot_key(self.ctx, *steps)?;
                self.ctx.try_rotate(&ct, *steps, key.as_ref())?
            }
            PipelineOp::Conjugate => self
                .ctx
                .try_conjugate(&ct, self.keys.try_conj(self.ctx)?.as_ref())?,
            PipelineOp::Load(slot) => Self::slot_get(slots, *slot, "load")?.clone(),
            PipelineOp::Store(slot) => {
                slots.insert(*slot, ct.clone());
                ct
            }
            PipelineOp::Free(slot) => {
                if slots.remove(slot).is_none() {
                    return Err(FheError::InvalidParams {
                        op: "executor",
                        reason: format!("free of empty slot {slot}"),
                    });
                }
                ct
            }
            PipelineOp::Input(idx) => {
                inputs
                    .get(usize::from(*idx))
                    .ok_or_else(|| FheError::InvalidParams {
                        op: "executor",
                        reason: format!(
                            "program reads input {idx} but only {} inputs were bound",
                            inputs.len()
                        ),
                    })?
                    .clone()
            }
            PipelineOp::AddSlot(slot) => {
                self.ctx.try_add(&ct, Self::slot_get(slots, *slot, "add_slot")?)?
            }
            PipelineOp::SubSlot(slot) => {
                self.ctx.try_sub(&ct, Self::slot_get(slots, *slot, "sub_slot")?)?
            }
            PipelineOp::MulCtSlot(slot) => {
                let rhs = Self::slot_get(slots, *slot, "mul_ct_slot")?.clone();
                self.ctx
                    .try_mul(&ct, &rhs, self.keys.try_relin(self.ctx)?.as_ref())?
            }
            PipelineOp::MulPlain(vals) => {
                // Encode at the next-to-drop modulus' value (the
                // MulPlainRescale convention) so a later Rescale restores
                // the ciphertext's scale exactly.
                if ct.level() < 2 {
                    return Err(FheError::LevelMismatch {
                        op: "mul_plain",
                        got: ct.level(),
                        want: 2,
                    });
                }
                let q_drop = self.ctx.rns().modulus_value((ct.level() - 1) as u32) as f64;
                let p = self.ctx.encode(vals, q_drop, ct.level());
                self.ctx.try_mul_plain(&ct, &p)?
            }
            PipelineOp::RotateHoisted { steps, dsts } => {
                if steps.len() != dsts.len() {
                    return Err(FheError::InvalidParams {
                        op: "executor",
                        reason: format!(
                            "hoisted batch has {} steps but {} destinations",
                            steps.len(),
                            dsts.len()
                        ),
                    });
                }
                let keys = steps
                    .iter()
                    .map(|s| self.keys.try_rot_key(self.ctx, *s))
                    .collect::<FheResult<Vec<_>>>()?;
                let key_refs: Vec<&cl_ckks::KeySwitchKey> =
                    keys.iter().map(|k| k.as_ref()).collect();
                let outs = self.ctx.try_rotate_hoisted_many(&ct, steps, &key_refs)?;
                for (dst, rotated) in dsts.iter().zip(outs) {
                    // Slot writes bypass the boundary validation of the
                    // accumulator, so validate them here — a corrupted
                    // rotation output must never be checkpointed as good.
                    self.ctx.validate_ciphertext("rotate_hoisted", &rotated)?;
                    slots.insert(*dst, rotated);
                }
                ct
            }
            PipelineOp::ModDropTo(level) => self.ctx.try_mod_drop(&ct, *level as usize)?,
            PipelineOp::Bootstrap => unreachable!("handled above"),
        };
        Ok(WorkState::Ct(out))
    }

    /// Reads a named slot, or fails with the op that needed it.
    fn slot_get<'s>(
        slots: &'s BTreeMap<u16, Ciphertext>,
        slot: u16,
        what: &'static str,
    ) -> FheResult<&'s Ciphertext> {
        slots.get(&slot).ok_or_else(|| FheError::InvalidParams {
            op: "executor",
            reason: format!("{what} reads empty slot {slot}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cl_boot::Bootstrapper;
    use cl_ckks::CkksParams;
    use rand::SeedableRng;
    use std::path::Path;

    fn strict_ctx() -> CkksContext {
        let params = CkksParams::builder()
            .ring_degree(64)
            .levels(6)
            .special_limbs(6)
            .limb_bits(45)
            .scale_bits(40)
            .build()
            .unwrap();
        CkksContext::new(params)
            .unwrap()
            .with_policy(GuardrailPolicy::Strict {
                min_budget_bits: -60.0,
            })
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cl-exec-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn setup(
        ctx: &CkksContext,
        dir: &Path,
        every: u64,
    ) -> (cl_ckks::SecretKey, BootstrapKeys, Ciphertext, ExecutorConfig) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let sk = ctx.keygen_sparse(8, &mut rng);
        let booter = Bootstrapper::new(ctx, 8);
        let keys = booter.keygen(ctx, &sk, cl_ckks::KeySwitchKind::Standard, &mut rng);
        let pt = ctx.encode(&[0.5, -0.25, 0.125], ctx.default_scale(), ctx.max_level());
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let config = ExecutorConfig {
            checkpoint_every: every,
            max_retries: 8,
            checkpoint_dir: Some(dir.to_path_buf()),
        };
        (sk, keys, ct, config)
    }

    #[test]
    fn executor_requires_strict_policy() {
        let params = CkksParams::builder()
            .ring_degree(64)
            .levels(3)
            .special_limbs(3)
            .limb_bits(40)
            .scale_bits(32)
            .build()
            .unwrap();
        let ctx = CkksContext::new(params).unwrap(); // Permissive
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let sk = ctx.keygen_sparse(8, &mut rng);
        let booter = Bootstrapper::new(&ctx, 8);
        let keys = booter.keygen(&ctx, &sk, cl_ckks::KeySwitchKind::Standard, &mut rng);
        let err = PipelineExecutor::new(&ctx, &keys, ExecutorConfig::default()).err();
        assert!(matches!(err, Some(FheError::InvalidParams { .. })));
    }

    #[test]
    fn clean_run_matches_direct_evaluation() {
        let ctx = strict_ctx();
        let dir = tmpdir("clean");
        let (_sk, keys, ct, config) = setup(&ctx, &dir, 2);
        let program = Program::new()
            .then(PipelineOp::Square)
            .then(PipelineOp::Rescale)
            .then(PipelineOp::AddPlain(vec![0.1, 0.2, 0.3]))
            .then(PipelineOp::Rotate(1))
            .then(PipelineOp::Conjugate);

        let mut exec = PipelineExecutor::new(&ctx, &keys, config).unwrap();
        let out = match exec.run(&ct, &program).unwrap() {
            RunOutcome::Completed(ct) => ct,
            RunOutcome::Crashed => panic!("no fault plan attached"),
        };

        // Direct evaluation with the same ops must agree bit-for-bit.
        let sq = ctx.try_square(&ct, keys.try_relin(&ctx).unwrap().as_ref()).unwrap();
        let rs = ctx.try_rescale(&sq).unwrap();
        let p = ctx.encode(&[0.1, 0.2, 0.3], rs.scale(), rs.level());
        let added = ctx.try_add_plain(&rs, &p).unwrap();
        let rot = ctx
            .try_rotate(&added, 1, keys.try_rot_key(&ctx, 1).unwrap().as_ref())
            .unwrap();
        let expect = ctx.try_conjugate(&rot, keys.try_conj(&ctx).unwrap().as_ref()).unwrap();
        assert_eq!(out, expect);

        let t = exec.telemetry();
        assert_eq!(t.faults_detected, 0);
        assert_eq!(t.ops_executed, 5);
        // pc 2, 4, and the end (5).
        assert_eq!(t.checkpoints_written, 3);
        assert!(t.bytes_written > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_flips_are_detected_and_retried_to_the_clean_result() {
        let ctx = strict_ctx();
        let dir_clean = tmpdir("flips-clean");
        let dir_faulty = tmpdir("flips-faulty");
        let (_sk, keys, ct, config) = setup(&ctx, &dir_clean, 2);
        let program = Program::new()
            .then(PipelineOp::Square)
            .then(PipelineOp::Rescale)
            .then(PipelineOp::Square)
            .then(PipelineOp::Rescale)
            .then(PipelineOp::AddPlain(vec![1.0]));

        let mut clean = PipelineExecutor::new(&ctx, &keys, config.clone()).unwrap();
        let want = match clean.run(&ct, &program).unwrap() {
            RunOutcome::Completed(c) => c,
            RunOutcome::Crashed => unreachable!(),
        };

        let mut faulty_config = config;
        faulty_config.checkpoint_dir = Some(dir_faulty.clone());
        let mut faulty = PipelineExecutor::new(&ctx, &keys, faulty_config).unwrap();
        faulty.set_fault_plan(FaultPlan::new(0xC0FFEE, 0.45));
        let got = match faulty.run(&ct, &program).unwrap() {
            RunOutcome::Completed(c) => c,
            RunOutcome::Crashed => unreachable!("no kill points in this plan"),
        };
        assert_eq!(got, want, "recovered run must be bit-identical");
        let t = faulty.telemetry();
        assert!(t.faults_injected > 0, "plan at 30% should fire: {t:?}");
        assert!(t.faults_detected >= t.faults_injected);
        assert!(t.retries >= 1);
        let _ = std::fs::remove_dir_all(&dir_clean);
        let _ = std::fs::remove_dir_all(&dir_faulty);
    }

    #[test]
    fn kill_point_crashes_and_resume_completes_from_disk() {
        let ctx = strict_ctx();
        let dir = tmpdir("kill");
        let (_sk, keys, ct, config) = setup(&ctx, &dir, 1);
        let program = Program::new()
            .then(PipelineOp::Square)
            .then(PipelineOp::Rescale)
            .then(PipelineOp::Square)
            .then(PipelineOp::Rescale);

        let dir_clean = tmpdir("kill-clean");
        let mut clean_config = config.clone();
        clean_config.checkpoint_dir = Some(dir_clean.clone());
        let mut clean = PipelineExecutor::new(&ctx, &keys, clean_config).unwrap();
        let want = match clean.run(&ct, &program).unwrap() {
            RunOutcome::Completed(c) => c,
            RunOutcome::Crashed => unreachable!(),
        };

        let mut exec = PipelineExecutor::new(&ctx, &keys, config).unwrap();
        exec.set_fault_plan(FaultPlan::new(7, 0.0).with_kill_point(2));
        assert!(matches!(
            exec.run(&ct, &program).unwrap(),
            RunOutcome::Crashed
        ));
        assert_eq!(exec.telemetry().crashes, 1);

        // The resumed run must pick up the pc=2 checkpoint, not restart.
        let got = match exec.resume(&ct, &program).unwrap() {
            RunOutcome::Completed(c) => c,
            RunOutcome::Crashed => panic!("kill point already consumed"),
        };
        assert_eq!(got, want);
        let t = exec.telemetry();
        assert!(t.restores >= 1, "resume must load the durable checkpoint");
        assert_eq!(t.ops_executed, 4, "2 before the crash + 2 after resume");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir_clean);
    }

    #[test]
    fn stale_checkpoint_from_a_previous_job_is_never_resumed() {
        let ctx = strict_ctx();
        let dir = tmpdir("stale-binding");
        let (_sk, keys, ct, config) = setup(&ctx, &dir, 1);
        // Job A: runs to completion, leaving durable slots at its final pc.
        let program_a = Program::new()
            .then(PipelineOp::Square)
            .then(PipelineOp::Rescale)
            .then(PipelineOp::Rotate(1));
        {
            let mut exec = PipelineExecutor::new(&ctx, &keys, config.clone()).unwrap();
            assert!(matches!(
                exec.run(&ct, &program_a).unwrap(),
                RunOutcome::Completed(_)
            ));
        }
        // Job B: different program, same directory, entered via resume()
        // (the server's crash-retry path). It must ignore job A's
        // leftover records — resuming A's pc-3 state into B would both
        // skip B's ops and splice in foreign data.
        let program_b = Program::new().then(PipelineOp::Conjugate);
        let expected = {
            let mut clean = PipelineExecutor::new(
                &ctx,
                &keys,
                ExecutorConfig {
                    checkpoint_every: 0,
                    max_retries: 1,
                    checkpoint_dir: None,
                },
            )
            .unwrap();
            match clean.run(&ct, &program_b).unwrap() {
                RunOutcome::Completed(out) => out,
                other => panic!("clean run did not complete: {other:?}"),
            }
        };
        let mut exec = PipelineExecutor::new(&ctx, &keys, config).unwrap();
        let got = match exec.resume(&ct, &program_b).unwrap() {
            RunOutcome::Completed(out) => out,
            other => panic!("resume did not complete: {other:?}"),
        };
        assert_eq!(
            ctx.serialize_ciphertext(&got),
            ctx.serialize_ciphertext(&expected),
            "job B must restart from its own input, not job A's checkpoint"
        );
        assert_eq!(
            exec.telemetry().restores,
            0,
            "no checkpoint of job B exists, so nothing may be restored"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancellation_aborts_without_consuming_retries() {
        let ctx = strict_ctx();
        let dir = tmpdir("cancel");
        let (_sk, keys, ct, mut config) = setup(&ctx, &dir, 0);
        config.checkpoint_dir = None;
        let program = Program::new()
            .then(PipelineOp::Square)
            .then(PipelineOp::Rescale);
        let mut exec = PipelineExecutor::new(&ctx, &keys, config).unwrap();
        let control = RunControl::new();
        control.cancel();
        exec.set_control(control.clone());
        assert!(control.is_cancelled());
        match exec.run(&ct, &program) {
            Err(FheError::Cancelled { .. }) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        let t = exec.telemetry();
        assert_eq!(t.ops_executed, 0, "cancel before op 0 must run nothing");
        assert_eq!(t.retries, 0, "cancellation is a verdict, not a fault");
        assert_eq!(t.faults_detected, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn expired_deadline_aborts_at_an_op_boundary() {
        let ctx = strict_ctx();
        let dir = tmpdir("deadline");
        let (_sk, keys, ct, mut config) = setup(&ctx, &dir, 0);
        config.checkpoint_dir = None;
        let program = Program::new()
            .then(PipelineOp::Square)
            .then(PipelineOp::Rescale);
        let mut exec = PipelineExecutor::new(&ctx, &keys, config).unwrap();
        let control = RunControl::with_deadline(Duration::ZERO);
        // A zero budget armed in the past is already expired by the first
        // boundary check.
        std::thread::sleep(Duration::from_millis(2));
        assert!(control.is_past_deadline());
        exec.set_control(control);
        match exec.run(&ct, &program) {
            Err(FheError::DeadlineExceeded { elapsed_ms, .. }) => {
                assert!(elapsed_ms >= 1, "elapsed clock must be reported");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(exec.telemetry().retries, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generous_deadline_does_not_disturb_a_clean_run() {
        let ctx = strict_ctx();
        let dir = tmpdir("deadline-ok");
        let (_sk, keys, ct, config) = setup(&ctx, &dir, 2);
        let program = Program::new()
            .then(PipelineOp::Square)
            .then(PipelineOp::Rescale);
        let mut exec = PipelineExecutor::new(&ctx, &keys, config).unwrap();
        exec.set_control(RunControl::with_deadline(Duration::from_secs(3600)));
        assert!(matches!(
            exec.run(&ct, &program).unwrap(),
            RunOutcome::Completed(_)
        ));
        // take_telemetry hands the counters over and resets for the next
        // job on a reused executor.
        let t = exec.take_telemetry();
        assert_eq!(t.ops_executed, 2);
        assert_eq!(exec.telemetry(), RecoveryTelemetry::default());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Key bundle with explicit rotation steps (no bootstrap plan), for
    /// dataflow programs.
    fn graph_keys(ctx: &CkksContext, steps: &[i64]) -> (cl_ckks::SecretKey, BootstrapKeys) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let sk = ctx.keygen_sparse(8, &mut rng);
        let keys =
            BootstrapKeys::generate(ctx, &sk, cl_ckks::KeySwitchKind::Standard, steps, &mut rng);
        (sk, keys)
    }

    /// y·(rot(x,1) + rot(x,-1) − x), rescaled — touches every dataflow op
    /// form: slots, a hoisted batch, binary ops, a second input, frees.
    fn dataflow_program() -> Program {
        Program::new()
            .then(PipelineOp::Store(0))
            .then(PipelineOp::RotateHoisted {
                steps: vec![1, -1],
                dsts: vec![1, 2],
            })
            .then(PipelineOp::Load(1))
            .then(PipelineOp::AddSlot(2))
            .then(PipelineOp::Free(1))
            .then(PipelineOp::Free(2))
            .then(PipelineOp::SubSlot(0))
            .then(PipelineOp::Free(0))
            .then(PipelineOp::Store(3))
            .then(PipelineOp::Input(1))
            .then(PipelineOp::MulCtSlot(3))
            .then(PipelineOp::Free(3))
            .then(PipelineOp::Rescale)
    }

    fn dataflow_direct(
        ctx: &CkksContext,
        keys: &BootstrapKeys,
        x: &Ciphertext,
        y: &Ciphertext,
    ) -> Ciphertext {
        let r1 = ctx
            .try_rotate(x, 1, keys.try_rot_key(ctx, 1).unwrap().as_ref())
            .unwrap();
        let rm1 = ctx
            .try_rotate(x, -1, keys.try_rot_key(ctx, -1).unwrap().as_ref())
            .unwrap();
        let sum = ctx.try_add(&r1, &rm1).unwrap();
        let diff = ctx.try_sub(&sum, x).unwrap();
        let prod = ctx
            .try_mul(y, &diff, keys.try_relin(ctx).unwrap().as_ref())
            .unwrap();
        ctx.try_rescale(&prod).unwrap()
    }

    #[test]
    fn dataflow_program_matches_direct_evaluation_and_tracks_peak() {
        let ctx = strict_ctx();
        let dir = tmpdir("dataflow");
        let (sk, keys) = graph_keys(&ctx, &[1, -1]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let x = ctx.encrypt(
            &ctx.encode(&[0.5, -0.25, 0.125, 0.75], ctx.default_scale(), ctx.max_level()),
            &sk,
            &mut rng,
        );
        let y = ctx.encrypt(
            &ctx.encode(&[0.3, 0.6, -0.2, 0.1], ctx.default_scale(), ctx.max_level()),
            &sk,
            &mut rng,
        );
        let program = dataflow_program();
        let config = ExecutorConfig {
            checkpoint_every: 4,
            max_retries: 8,
            checkpoint_dir: Some(dir.clone()),
        };
        let mut exec = PipelineExecutor::new(&ctx, &keys, config).unwrap();
        let out = match exec.run_graph(&[x.clone(), y.clone()], &program).unwrap() {
            RunOutcome::Completed(ct) => ct,
            RunOutcome::Crashed => panic!("no fault plan attached"),
        };
        let expect = dataflow_direct(&ctx, &keys, &x, &y);
        assert_eq!(out, expect, "lowered dataflow must be bit-identical");
        let t = exec.telemetry();
        assert_eq!(t.ops_executed, program.len() as u64);
        // Live-set trace: {0}+acc → {0,1,2}+acc (peak 4) → … → {}+acc.
        assert_eq!(t.peak_live_cts, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dataflow_kill_resumes_with_live_slots_from_disk() {
        let ctx = strict_ctx();
        let dir = tmpdir("dataflow-kill");
        let dir_clean = tmpdir("dataflow-kill-clean");
        let (sk, keys) = graph_keys(&ctx, &[1, -1]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let x = ctx.encrypt(
            &ctx.encode(&[0.4, -0.1], ctx.default_scale(), ctx.max_level()),
            &sk,
            &mut rng,
        );
        let y = ctx.encrypt(
            &ctx.encode(&[0.2, 0.9], ctx.default_scale(), ctx.max_level()),
            &sk,
            &mut rng,
        );
        let program = dataflow_program();
        let config = ExecutorConfig {
            checkpoint_every: 1,
            max_retries: 8,
            checkpoint_dir: Some(dir.clone()),
        };
        let mut clean_config = config.clone();
        clean_config.checkpoint_dir = Some(dir_clean.clone());
        let mut clean = PipelineExecutor::new(&ctx, &keys, clean_config).unwrap();
        let want = match clean.run_graph(&[x.clone(), y.clone()], &program).unwrap() {
            RunOutcome::Completed(c) => c,
            RunOutcome::Crashed => unreachable!(),
        };
        let mut exec = PipelineExecutor::new(&ctx, &keys, config).unwrap();
        // Kill after 4 ops: slots {0,1,2} are live, so the pc-4 checkpoint
        // must round-trip the whole slot environment through disk.
        exec.set_fault_plan(FaultPlan::new(9, 0.0).with_kill_point(4));
        assert!(matches!(
            exec.run_graph(&[x.clone(), y.clone()], &program).unwrap(),
            RunOutcome::Crashed
        ));
        let got = match exec.resume_graph(&[x, y], &program).unwrap() {
            RunOutcome::Completed(c) => c,
            RunOutcome::Crashed => panic!("kill point already consumed"),
        };
        assert_eq!(got, want, "resume with restored slots must be bit-identical");
        let t = exec.telemetry();
        assert!(t.restores >= 1);
        assert_eq!(
            t.ops_executed,
            program.len() as u64,
            "4 before the crash + the rest after resume"
        );
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir_clean);
    }

    #[test]
    fn retry_budget_exhaustion_surfaces_the_fault() {
        let ctx = strict_ctx();
        let dir = tmpdir("budget");
        let (_sk, keys, ct, mut config) = setup(&ctx, &dir, 0);
        config.checkpoint_dir = None;
        config.max_retries = 2;
        let program = Program::new().then(PipelineOp::Square);
        let mut exec = PipelineExecutor::new(&ctx, &keys, config).unwrap();
        // Flip on (essentially) every op: each retry is re-corrupted, so
        // the budget must run out and the underlying fault must surface.
        exec.set_fault_plan(FaultPlan::new(3, 0.999));
        let err = exec.run(&ct, &program);
        assert!(err.is_err(), "retry budget of 2 cannot beat a 99.9% rate");
        assert_eq!(exec.telemetry().retries, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
