//! Durable, integrity-checked checkpoint records.

use std::fs;
use std::path::{Path, PathBuf};

use cl_boot::BootState;
use cl_ckks::serialize::{fnv1a, put_u32, put_u64, put_u8, write_header, ObjectTag, Reader};
use cl_ckks::{Ciphertext, CkksContext, FheError, FheResult};

/// The in-flight state of a pipeline at a micro-op boundary: either a
/// plain ciphertext or a mid-bootstrap [`BootState`].
#[derive(Debug, Clone)]
pub enum WorkState {
    /// Between ordinary ops.
    Ct(Ciphertext),
    /// Mid-bootstrap, at a stage boundary (boxed: a bootstrap stage
    /// carries up to two ciphertexts, dwarfing the `Ct` variant).
    Boot(Box<BootState>),
}

impl WorkState {
    /// The ciphertext a fault injector corrupts and integrity checks
    /// validate first: the plain ciphertext, or the first ciphertext of a
    /// bootstrap stage.
    pub fn primary_mut(&mut self) -> &mut Ciphertext {
        match self {
            WorkState::Ct(ct) => ct,
            WorkState::Boot(state) => {
                let mut cts = state.ciphertexts_mut();
                cts.swap_remove(0)
            }
        }
    }

    /// Conformance-validates every ciphertext this state carries against
    /// the context (residue ranges, basis, NTT form). The executor runs
    /// this *before* persisting a checkpoint, so a corrupted state is
    /// never written as "good".
    pub fn validate(&self, ctx: &CkksContext) -> FheResult<()> {
        match self {
            WorkState::Ct(ct) => ctx.validate_ciphertext("checkpoint", ct),
            WorkState::Boot(state) => {
                for ct in state.ciphertexts() {
                    ctx.validate_ciphertext("checkpoint", ct)?;
                }
                Ok(())
            }
        }
    }

    fn kind_byte(&self) -> u8 {
        match self {
            WorkState::Ct(_) => 0,
            WorkState::Boot(_) => 1,
        }
    }

    fn serialize(&self, ctx: &CkksContext) -> Vec<u8> {
        match self {
            WorkState::Ct(ct) => ctx.serialize_ciphertext(ct),
            WorkState::Boot(state) => state.serialize(ctx),
        }
    }
}

/// One checkpoint record: the micro program counter plus the work state at
/// that boundary, bound to the job that wrote it.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Micro-op index the pipeline resumes at.
    pub pc: u64,
    /// Content digest of the `(program, input)` pair this record belongs
    /// to. A store directory outlives individual jobs (a server reuses
    /// one per worker), and a resume must never splice a *different*
    /// job's mid-state into the current program — loads filter on this
    /// binding, so stale records are skipped, not resumed.
    pub binding: u64,
    /// The state to resume from.
    pub state: WorkState,
    /// Live named value slots of a compiler-lowered dataflow program at
    /// this boundary (sorted by slot id; empty for linear-chain programs,
    /// which keeps their records bit-compatible with the pre-dataflow
    /// wire format).
    pub slots: Vec<(u16, Ciphertext)>,
}

/// Hard cap on the slot count of one deserialized checkpoint — hostile
/// counts must not drive allocation. Slot ids are `u16`, so this is the
/// natural ceiling.
pub const MAX_CHECKPOINT_SLOTS: usize = 1 << 16;

/// Durable checkpoint storage: two rotating slot files in a directory,
/// each written atomically (tmp file + rename) so a crash mid-write never
/// corrupts the previous good record. Loads verify the wire format's
/// fingerprint and checksums and fall back to the other slot when one is
/// damaged.
///
/// Writes are **overlapped**: [`CheckpointStore::write`] encodes
/// synchronously (the record is a consistent snapshot no matter what the
/// pipeline does next) but hands the file I/O to a background thread, so
/// the compute path pays encode cost, not disk cost — the software
/// analogue of the paper's decoupled data orchestration. At most one
/// write is in flight: the next `write` (or any load, [`sync`], or drop)
/// joins it first, which both bounds memory and keeps slot rotation
/// strictly ordered. The durability contract weakens only by that one
/// in-flight record: a crash can lose the newest checkpoint, never a
/// previously acknowledged one — exactly the window the executor's
/// in-memory `last_good` fallback already covers. A failed background
/// write surfaces on the *next* store call.
///
/// [`sync`]: CheckpointStore::sync
/// A store *owns* its directory for its lifetime: [`CheckpointStore::open`]
/// takes an exclusive advisory lock (an owner file recording this process'
/// pid) so two live executors can never interleave writes into the same
/// slot files. Locks abandoned by a dead process are detected (the pid no
/// longer exists) and reclaimed; orphaned `ckpt.tmp` files left by a crash
/// mid-write are swept at open.
#[derive(Debug)]
pub struct CheckpointStore {
    slots: [PathBuf; 2],
    tmp: PathBuf,
    lock: PathBuf,
    next_slot: usize,
    bytes_written: u64,
    writes: u64,
    /// The at-most-one in-flight background write (its tmp-write + rename),
    /// carrying any I/O error to the next store call.
    inflight: Option<std::thread::JoinHandle<Result<(), String>>>,
}

/// Whether `pid` names a process that is currently alive. Used to decide
/// if an owner file is a live conflict or a stale leftover. On platforms
/// without a procfs we cannot tell, so we conservatively report alive —
/// a crashed owner then requires manual lock removal rather than risking
/// two live writers.
fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

impl CheckpointStore {
    /// Opens (creating if needed) a store in `dir`, sweeping any orphaned
    /// tmp file and taking the directory's owner lock.
    ///
    /// # Errors
    ///
    /// [`FheError::Serialization`] when the directory cannot be created,
    /// or when another *live* store already owns it (two executors must
    /// never share slot files — each job needs its own directory).
    pub fn open(dir: &Path) -> FheResult<Self> {
        fs::create_dir_all(dir).map_err(|e| FheError::Serialization {
            op: "checkpoint_open",
            reason: format!("cannot create {}: {e}", dir.display()),
        })?;
        let tmp = dir.join("ckpt.tmp");
        let lock = dir.join("ckpt.lock");
        Self::acquire_lock(&lock)?;
        // With the lock held, a leftover tmp file can only be debris from
        // a previous owner that died mid-`write` (the atomic rename never
        // ran). The slot files are still intact; the debris just wastes
        // space and could mask a future torn write, so sweep it.
        if tmp.exists() {
            let _ = fs::remove_file(&tmp);
        }
        Ok(Self {
            slots: [dir.join("ckpt_a.bin"), dir.join("ckpt_b.bin")],
            tmp,
            lock,
            next_slot: 0,
            bytes_written: 0,
            writes: 0,
            inflight: None,
        })
    }

    /// Creates the owner file exclusively, stealing it only from a holder
    /// whose pid is provably dead.
    fn acquire_lock(lock: &Path) -> FheResult<()> {
        use std::io::Write as _;
        // Two rounds: create, or (stale holder) reclaim once and re-create.
        for attempt in 0..2 {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(lock)
            {
                Ok(mut f) => {
                    let _ = write!(f, "{}", std::process::id());
                    return Ok(());
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let holder = fs::read_to_string(lock)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    let stale = match holder {
                        // Our own pid means a live store in this process
                        // owns the directory — that is exactly the
                        // double-open this lock exists to prevent.
                        Some(pid) => pid != std::process::id() && !pid_alive(pid),
                        // Unreadable/empty owner file: a crash between
                        // create and write. No live holder can exist
                        // (they write before returning), so reclaim.
                        None => true,
                    };
                    if stale && attempt == 0 {
                        let _ = fs::remove_file(lock);
                        continue;
                    }
                    return Err(FheError::Serialization {
                        op: "checkpoint_open",
                        reason: format!(
                            "checkpoint dir is locked by live owner {} ({}); every \
                             executor needs its own checkpoint directory",
                            holder.map_or_else(|| "unknown".into(), |p| p.to_string()),
                            lock.display()
                        ),
                    });
                }
                Err(e) => {
                    return Err(FheError::Serialization {
                        op: "checkpoint_open",
                        reason: format!("cannot create lock {}: {e}", lock.display()),
                    })
                }
            }
        }
        unreachable!("acquire_lock: both attempts fell through without returning")
    }

    /// Total bytes written across all checkpoints.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Number of checkpoint records written.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    fn encode(ctx: &CkksContext, cp: &Checkpoint) -> Vec<u8> {
        // Slot-free states keep the original kind-0/1 record layout, so
        // every checkpoint written before the dataflow ops existed still
        // loads. A state with live slots is kind 2: a framed bundle of the
        // accumulator state plus each slot ciphertext.
        let (kind, payload) = if cp.slots.is_empty() {
            (cp.state.kind_byte(), cp.state.serialize(ctx))
        } else {
            let cur = cp.state.serialize(ctx);
            let blobs: Vec<(u16, Vec<u8>)> = cp
                .slots
                .iter()
                .map(|(id, ct)| (*id, ctx.serialize_ciphertext(ct)))
                .collect();
            let mut p = Vec::with_capacity(32 + cur.len() + blobs.len() * 8);
            put_u8(&mut p, cp.state.kind_byte());
            put_u32(&mut p, blobs.len() as u32);
            put_u32(&mut p, cur.len() as u32);
            for (id, b) in &blobs {
                put_u32(&mut p, u32::from(*id));
                put_u32(&mut p, b.len() as u32);
            }
            let cksum = fnv1a(&p);
            put_u64(&mut p, cksum);
            p.extend_from_slice(&cur);
            for (_, b) in &blobs {
                p.extend_from_slice(b);
            }
            (2u8, p)
        };
        let mut out = Vec::with_capacity(32 + payload.len());
        write_header(&mut out, ObjectTag::Checkpoint, ctx.params_fingerprint());
        let meta_start = out.len();
        put_u64(&mut out, cp.pc);
        put_u64(&mut out, cp.binding);
        put_u8(&mut out, kind);
        put_u32(&mut out, payload.len() as u32);
        let cksum = fnv1a(&out[meta_start..]);
        put_u64(&mut out, cksum);
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes a kind-2 (dataflow) payload: framed accumulator state plus
    /// named slot ciphertexts.
    fn decode_slots(ctx: &CkksContext, payload: &[u8]) -> FheResult<(WorkState, Vec<(u16, Ciphertext)>)> {
        let mut r = Reader::new("load_checkpoint", payload);
        let frame_start = r.pos();
        let cur_kind = r.u8()?;
        let nslots = r.u32()? as usize;
        if nslots == 0 || nslots > MAX_CHECKPOINT_SLOTS {
            return Err(r.err(format!(
                "slot count {nslots} outside 1..={MAX_CHECKPOINT_SLOTS}"
            )));
        }
        let cur_len = r.u32()? as usize;
        let mut meta = Vec::with_capacity(nslots);
        for j in 0..nslots {
            let raw = r.u32()?;
            let id = u16::try_from(raw)
                .map_err(|_| r.err(format!("slot {j}: id {raw} exceeds u16")))?;
            let len = r.u32()? as usize;
            meta.push((id, len));
        }
        let computed = fnv1a(r.region_since(frame_start));
        let stored = r.u64()?;
        if stored != computed {
            return Err(FheError::ChecksumMismatch {
                op: "load_checkpoint",
                section: "slot framing".into(),
                stored,
                computed,
            });
        }
        let cur_blob = r.take(cur_len)?;
        let state = match cur_kind {
            0 => WorkState::Ct(ctx.try_deserialize_ciphertext(cur_blob)?),
            1 => WorkState::Boot(Box::new(BootState::try_deserialize(ctx, cur_blob)?)),
            other => {
                return Err(FheError::Serialization {
                    op: "load_checkpoint",
                    reason: format!("unknown accumulator kind {other} in slot bundle"),
                })
            }
        };
        let mut slots = Vec::with_capacity(nslots);
        let mut prev: Option<u16> = None;
        for (id, len) in meta {
            // Strictly increasing ids: rejects duplicates and gives the
            // record one canonical byte form.
            if prev.is_some_and(|p| p >= id) {
                return Err(FheError::Serialization {
                    op: "load_checkpoint",
                    reason: format!("slot ids not strictly increasing at {id}"),
                });
            }
            prev = Some(id);
            let blob = r.take(len)?;
            slots.push((id, ctx.try_deserialize_ciphertext(blob)?));
        }
        r.finish()?;
        Ok((state, slots))
    }

    fn decode(ctx: &CkksContext, bytes: &[u8]) -> FheResult<Checkpoint> {
        let mut r = Reader::new("load_checkpoint", bytes);
        r.read_header(ObjectTag::Checkpoint, ctx.params_fingerprint())?;
        let meta_start = r.pos();
        let pc = r.u64()?;
        let binding = r.u64()?;
        let kind = r.u8()?;
        let payload_len = r.u32()? as usize;
        let computed = fnv1a(r.region_since(meta_start));
        let stored = r.u64()?;
        if stored != computed {
            return Err(FheError::ChecksumMismatch {
                op: "load_checkpoint",
                section: "checkpoint metadata".into(),
                stored,
                computed,
            });
        }
        let payload = r.take(payload_len)?;
        r.finish()?;
        let (state, slots) = match kind {
            0 => (WorkState::Ct(ctx.try_deserialize_ciphertext(payload)?), Vec::new()),
            1 => (
                WorkState::Boot(Box::new(BootState::try_deserialize(ctx, payload)?)),
                Vec::new(),
            ),
            2 => Self::decode_slots(ctx, payload)?,
            other => {
                return Err(FheError::Serialization {
                    op: "load_checkpoint",
                    reason: format!("unknown work-state kind {other}"),
                })
            }
        };
        Ok(Checkpoint {
            pc,
            binding,
            state,
            slots,
        })
    }

    /// Persists a checkpoint into the next rotating slot: the record is
    /// encoded now (a consistent snapshot), the atomic tmp-write + rename
    /// runs on a background thread and is joined by the next store call.
    /// Returns the record size in bytes.
    ///
    /// # Errors
    ///
    /// [`FheError::Serialization`] on any I/O failure — of the *previous*
    /// write, which is joined before this one is handed off. This write's
    /// own I/O outcome surfaces on the next `write`/load/[`sync`].
    ///
    /// [`sync`]: CheckpointStore::sync
    pub fn write(&mut self, ctx: &CkksContext, cp: &Checkpoint) -> FheResult<u64> {
        let bytes = Self::encode(ctx, cp);
        // One outstanding write max: also guarantees exclusive use of the
        // shared tmp path and in-order slot rotation.
        self.join_inflight()?;
        let tmp = self.tmp.clone();
        let slot = self.slots[self.next_slot].clone();
        let len = bytes.len() as u64;
        self.inflight = Some(std::thread::spawn(move || {
            fs::write(&tmp, &bytes).map_err(|e| format!("write tmp: {e}"))?;
            fs::rename(&tmp, &slot).map_err(|e| format!("rename into slot: {e}"))
        }));
        self.next_slot = 1 - self.next_slot;
        self.bytes_written += len;
        self.writes += 1;
        Ok(len)
    }

    /// Blocks until the last accepted checkpoint is durably in its slot.
    ///
    /// # Errors
    ///
    /// [`FheError::Serialization`] if that background write failed.
    pub fn sync(&mut self) -> FheResult<()> {
        self.join_inflight()
    }

    fn join_inflight(&mut self) -> FheResult<()> {
        let Some(handle) = self.inflight.take() else {
            return Ok(());
        };
        let outcome = handle.join().unwrap_or_else(|_| {
            Err("background checkpoint writer panicked".into())
        });
        outcome.map_err(|reason| FheError::Serialization {
            op: "checkpoint_write",
            reason,
        })
    }

    /// Loads one slot file, end to end (header, fingerprint, checksums).
    fn load_slot(&self, ctx: &CkksContext, path: &Path) -> FheResult<Checkpoint> {
        let bytes = fs::read(path).map_err(|e| FheError::Serialization {
            op: "load_checkpoint",
            reason: format!("cannot read {}: {e}", path.display()),
        })?;
        Self::decode(ctx, &bytes)
    }

    /// Returns the newest (highest program counter) valid checkpoint
    /// *belonging to* `binding`, plus the number of slots that existed
    /// but were *rejected* by integrity checks. `Ok(None)` means no slot
    /// file exists yet. Intact records written by a different job (their
    /// binding differs) are skipped silently — they are healthy leftovers
    /// in a reused directory, not corruption.
    ///
    /// # Errors
    ///
    /// [`FheError::ChecksumMismatch`]/[`FheError::ParamsMismatch`]/
    /// [`FheError::Serialization`] only when every existing slot is
    /// damaged — a damaged slot with a healthy sibling is skipped (and
    /// counted), not fatal.
    pub fn load_latest(
        &mut self,
        ctx: &CkksContext,
        binding: u64,
    ) -> FheResult<(Option<Checkpoint>, u64)> {
        // Reads must observe every accepted write: drain the in-flight one
        // (a failed background write is reported here rather than lost).
        self.sync()?;
        let mut best: Option<Checkpoint> = None;
        let mut rejects = 0u64;
        let mut first_err: Option<FheError> = None;
        let mut existing = 0;
        for path in &self.slots {
            if !path.exists() {
                continue;
            }
            existing += 1;
            match self.load_slot(ctx, path) {
                Ok(cp) => {
                    if cp.binding == binding && best.as_ref().is_none_or(|b| cp.pc > b.pc) {
                        best = Some(cp);
                    }
                }
                Err(e) => {
                    rejects += 1;
                    first_err.get_or_insert(e);
                }
            }
        }
        match (best, first_err) {
            (Some(cp), _) => Ok((Some(cp), rejects)),
            (None, Some(e)) if existing > 0 => Err(e),
            _ => Ok((None, rejects)),
        }
    }
}

/// Removes a checkpoint directory left behind by a finished or dead job:
/// slot files, tmp debris, lock file, and the directory itself. Returns
/// `true` when the directory is gone afterwards (including "was never
/// there").
///
/// Refuses (returns `false`) when the directory's owner lock is held by a
/// *live* process — this one included: a [`CheckpointStore`] in this
/// process still owns the slot files, and its `Drop` must release the
/// lock before the directory can be reclaimed. Sweeping under a live
/// writer would tear its rotation out from underneath it.
pub fn sweep_checkpoint_dir(dir: &Path) -> bool {
    if !dir.exists() {
        return true;
    }
    if let Ok(holder) = fs::read_to_string(dir.join("ckpt.lock")) {
        if let Ok(pid) = holder.trim().parse::<u32>() {
            if pid == std::process::id() || pid_alive(pid) {
                return false;
            }
        }
    }
    fs::remove_dir_all(dir).is_ok()
}

impl Drop for CheckpointStore {
    /// Joins any in-flight background write (the lock must not be released
    /// while a writer still owns the slot files), then releases the
    /// directory's owner lock. The slot files stay — they are the durable
    /// state a later store (or a resume after a crash) loads.
    fn drop(&mut self) {
        let _ = self.join_inflight();
        let _ = fs::remove_file(&self.lock);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cl_ckks::CkksParams;
    use rand::SeedableRng;

    fn ctx() -> CkksContext {
        let params = CkksParams::builder()
            .ring_degree(64)
            .levels(4)
            .special_limbs(4)
            .limb_bits(40)
            .scale_bits(32)
            .build()
            .unwrap();
        CkksContext::new(params).unwrap()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cl-runtime-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn checkpoint_roundtrip_and_rotation() {
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let sk = c.keygen(&mut rng);
        let ct = c.encrypt(&c.encode(&[1.0, 2.0], c.default_scale(), 3), &sk, &mut rng);
        let dir = tmpdir("rotation");
        let mut store = CheckpointStore::open(&dir).unwrap();
        assert!(store.load_latest(&c, 0xB1D1).unwrap().0.is_none());
        for pc in 0..3u64 {
            store
                .write(
                    &c,
                    &Checkpoint {
                        pc,
                        binding: 0xB1D1,
                        state: WorkState::Ct(ct.clone()),
                        slots: Vec::new(),
                    },
                )
                .unwrap();
        }
        let (latest, rejects) = store.load_latest(&c, 0xB1D1).unwrap();
        assert_eq!(rejects, 0);
        let latest = latest.unwrap();
        assert_eq!(latest.pc, 2);
        match latest.state {
            WorkState::Ct(back) => assert_eq!(back, ct),
            WorkState::Boot(_) => panic!("expected Ct state"),
        }
        assert_eq!(store.writes(), 3);
        assert!(store.bytes_written() > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_with_slots_roundtrips_and_rejects_flips() {
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let sk = c.keygen(&mut rng);
        let cur = c.encrypt(&c.encode(&[1.0], c.default_scale(), 3), &sk, &mut rng);
        let s3 = c.encrypt(&c.encode(&[2.0], c.default_scale(), 3), &sk, &mut rng);
        let s9 = c.encrypt(&c.encode(&[-0.5], c.default_scale(), 2), &sk, &mut rng);
        let cp = Checkpoint {
            pc: 7,
            binding: 0xB1D1,
            state: WorkState::Ct(cur.clone()),
            slots: vec![(3, s3.clone()), (9, s9.clone())],
        };
        let blob = CheckpointStore::encode(&c, &cp);
        let back = CheckpointStore::decode(&c, &blob).unwrap();
        assert_eq!(back.pc, 7);
        match &back.state {
            WorkState::Ct(ct) => assert_eq!(*ct, cur),
            WorkState::Boot(_) => panic!("expected Ct accumulator"),
        }
        assert_eq!(back.slots.len(), 2);
        assert_eq!(back.slots[0], (3, s3));
        assert_eq!(back.slots[1], (9, s9));
        // Every single-byte flip anywhere in the record must be rejected:
        // the slot framing, the accumulator blob, and each slot blob all
        // sit under a checksum.
        for i in (0..blob.len()).step_by(97) {
            let mut bad = blob.clone();
            bad[i] ^= 0xff;
            assert!(
                CheckpointStore::decode(&c, &bad).is_err(),
                "flip at byte {i} must not load"
            );
        }
        // A slot-free record keeps the legacy kind-0 layout byte-for-byte.
        let legacy = Checkpoint {
            pc: 1,
            binding: 2,
            state: WorkState::Ct(cur.clone()),
            slots: Vec::new(),
        };
        let legacy_blob = CheckpointStore::encode(&c, &legacy);
        // kind byte sits after header + pc + binding.
        let back = CheckpointStore::decode(&c, &legacy_blob).unwrap();
        assert!(back.slots.is_empty());
    }

    #[test]
    fn lock_file_prevents_two_live_stores_on_one_dir() {
        let dir = tmpdir("lock");
        let first = CheckpointStore::open(&dir).unwrap();
        // A second open while the first store is alive must fail and must
        // say why.
        let err = CheckpointStore::open(&dir).expect_err("double open");
        assert!(
            err.to_string().contains("locked"),
            "error should name the lock: {err}"
        );
        // The failed open must not have broken the holder's lock.
        assert!(dir.join("ckpt.lock").exists());
        // Dropping the owner releases the directory for the next store.
        drop(first);
        assert!(!dir.join("ckpt.lock").exists());
        let _second = CheckpointStore::open(&dir).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_from_dead_owner_is_reclaimed() {
        let dir = tmpdir("stale-lock");
        fs::create_dir_all(&dir).unwrap();
        // Far above any real pid_max: provably not a live process.
        fs::write(dir.join("ckpt.lock"), format!("{}", u32::MAX)).unwrap();
        let store = CheckpointStore::open(&dir).expect("stale lock must be reclaimed");
        drop(store);
        // An owner file that never got its pid written (crash between
        // create and write) is also reclaimable.
        fs::write(dir.join("ckpt.lock"), "").unwrap();
        assert!(CheckpointStore::open(&dir).is_ok());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphaned_tmp_file_is_swept_at_open() {
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let sk = c.keygen(&mut rng);
        let ct = c.encrypt(&c.encode(&[1.5], c.default_scale(), 2), &sk, &mut rng);
        let dir = tmpdir("orphan-tmp");
        // A crash mid-`write` leaves a partial tmp file behind (and, with
        // the owner dead, a stale lock). The next open must sweep the
        // debris and still load the intact slots.
        {
            let mut store = CheckpointStore::open(&dir).unwrap();
            store
                .write(
                    &c,
                    &Checkpoint {
                        pc: 9,
                        binding: 0xB1D1,
                        state: WorkState::Ct(ct.clone()),
                        slots: Vec::new(),
                    },
                )
                .unwrap();
        }
        fs::write(dir.join("ckpt.tmp"), b"torn half-written checkpoint").unwrap();
        fs::write(dir.join("ckpt.lock"), format!("{}", u32::MAX)).unwrap();
        let mut store = CheckpointStore::open(&dir).unwrap();
        assert!(
            !dir.join("ckpt.tmp").exists(),
            "orphaned tmp must be swept at open"
        );
        let (latest, rejects) = store.load_latest(&c, 0xB1D1).unwrap();
        assert_eq!(rejects, 0);
        assert_eq!(latest.unwrap().pc, 9);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_respects_live_owners_and_reclaims_dead_dirs() {
        let dir = tmpdir("sweep");
        // Never-existed directory: trivially swept.
        assert!(sweep_checkpoint_dir(&dir));
        // Live owner in this process: refused until the store drops.
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(!sweep_checkpoint_dir(&dir), "live lock must refuse sweep");
        assert!(dir.exists());
        drop(store);
        // Simulate a dead owner's leftovers: stale lock + slot debris.
        fs::write(dir.join("ckpt.lock"), format!("{}", u32::MAX)).unwrap();
        fs::write(dir.join("ckpt_a.bin"), b"leftover slot").unwrap();
        assert!(sweep_checkpoint_dir(&dir));
        assert!(!dir.exists(), "swept directory must be gone");
    }

    #[test]
    fn corrupt_slot_falls_back_to_sibling() {
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let sk = c.keygen(&mut rng);
        let ct = c.encrypt(&c.encode(&[3.0], c.default_scale(), 2), &sk, &mut rng);
        let dir = tmpdir("fallback");
        let mut store = CheckpointStore::open(&dir).unwrap();
        for pc in [5u64, 6u64] {
            store
                .write(
                    &c,
                    &Checkpoint {
                        pc,
                        binding: 0xB1D1,
                        state: WorkState::Ct(ct.clone()),
                        slots: Vec::new(),
                    },
                )
                .unwrap();
        }
        // Writes are durable only after sync — required before touching
        // the slot files behind the store's back.
        store.sync().unwrap();
        // pc=6 landed in slot b (second write). Corrupt it: the load must
        // reject it and fall back to pc=5 in slot a.
        let victim = dir.join("ckpt_b.bin");
        let mut bytes = fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&victim, &bytes).unwrap();
        let (latest, rejects) = store.load_latest(&c, 0xB1D1).unwrap();
        assert_eq!(rejects, 1);
        assert_eq!(latest.unwrap().pc, 5);
        // Both slots corrupted: the load surfaces the integrity error.
        let victim = dir.join("ckpt_a.bin");
        let mut bytes = fs::read(&victim).unwrap();
        bytes[10] ^= 0xff;
        fs::write(&victim, &bytes).unwrap();
        assert!(store.load_latest(&c, 0xB1D1).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
