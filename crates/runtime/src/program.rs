//! Declared pipelines: the unit of work the executor runs and checkpoints.

use cl_boot::BootState;
use cl_ckks::serialize::{
    fnv1a, peek_header, put_f64, put_i64, put_u32, put_u64, put_u8, write_header, ObjectTag,
    Reader,
};
use cl_ckks::{FheError, FheResult};

/// Hard cap on the declared op count of a deserialized program. A hostile
/// length prefix must not be able to drive allocation; real pipelines are
/// orders of magnitude below this.
pub const MAX_PROGRAM_OPS: usize = 65_536;

/// Hard cap on the element count of one plaintext operand vector.
pub const MAX_PLAIN_VALUES: usize = 1 << 20;

/// Hard cap on the rotation count of one hoisted-rotation batch. One batch
/// shares a single decomposition, so real batches are bounded by the
/// rotation-key working set — far below this.
pub const MAX_HOISTED_STEPS: usize = 4096;

/// One homomorphic operation in a declared pipeline.
///
/// Ops are deterministic (no randomness), so re-executing a suffix after a
/// checkpoint restore reproduces bit-identical results — the property the
/// recovery loop's convergence proof rests on.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineOp {
    /// Homomorphic squaring (relinearized with the bundle's relin key).
    Square,
    /// Rescale: drop one modulus, dividing the scale by it.
    Rescale,
    /// Add an encoded plaintext vector (at the ciphertext's scale/level).
    AddPlain(Vec<f64>),
    /// Multiply by an encoded plaintext vector and rescale. The plaintext
    /// is encoded at exactly the dropped modulus' scale, so the
    /// ciphertext scale is preserved.
    MulPlainRescale(Vec<f64>),
    /// Rotate slots by the given step (needs a matching rotation key).
    Rotate(i64),
    /// Complex-conjugate the slots.
    Conjugate,
    /// Full bootstrap, expanded into [`BootState::NUM_STAGES`] micro-ops
    /// so a crash mid-bootstrap resumes at a stage boundary.
    Bootstrap,
    // ---- dataflow form (compiler-lowered graphs) ------------------------
    //
    // The ops above thread one implicit accumulator through a linear chain.
    // The variants below add named value slots so a lowered `HeGraph` DAG
    // can run: slots hold live intermediate ciphertexts, the accumulator
    // stays the "current" value, and binary ops combine the accumulator
    // with a slot.
    /// Replace the accumulator with a copy of slot `i` (slot stays live).
    Load(u16),
    /// Copy the accumulator into slot `i` (accumulator stays current).
    Store(u16),
    /// Drop slot `i` — the lowering pass emits this at a value's last use
    /// so live-ciphertext memory follows the residency plan.
    Free(u16),
    /// Replace the accumulator with a copy of pipeline input `i`
    /// (programs lowered from multi-input graphs; plain `run` binds one).
    Input(u16),
    /// Accumulator += slot `i` (homomorphic addition).
    AddSlot(u16),
    /// Accumulator -= slot `i` (homomorphic subtraction).
    SubSlot(u16),
    /// Accumulator *= slot `i` (ciphertext-ciphertext multiply,
    /// relinearized with the bundle's relin key).
    MulCtSlot(u16),
    /// Multiply by an encoded plaintext vector *without* rescaling. The
    /// plaintext is encoded at the scale of the next-to-drop modulus (the
    /// same convention as [`PipelineOp::MulPlainRescale`]) so a later
    /// `Rescale` restores the ciphertext's scale exactly.
    MulPlain(Vec<f64>),
    /// Hoisted rotation batch: decompose the accumulator once, apply every
    /// step, and store result `k` into slot `dsts[k]`. The accumulator is
    /// left unchanged — rotations of a shared source fan out to slots.
    RotateHoisted {
        /// Rotation steps, each applied to the shared decomposition.
        steps: Vec<i64>,
        /// Destination slot for each rotation result (same length).
        dsts: Vec<u16>,
    },
    /// Drop moduli from the accumulator until it sits at the given level
    /// (no scale change) — the compiler's explicit level-alignment op.
    ModDropTo(u32),
}

impl PipelineOp {
    /// How many checkpointable micro-ops this op expands to.
    pub fn micro_ops(&self) -> usize {
        match self {
            PipelineOp::Bootstrap => BootState::NUM_STAGES,
            _ => 1,
        }
    }

    /// Short name for telemetry and errors.
    pub fn name(&self) -> &'static str {
        match self {
            PipelineOp::Square => "square",
            PipelineOp::Rescale => "rescale",
            PipelineOp::AddPlain(_) => "add_plain",
            PipelineOp::MulPlainRescale(_) => "mul_plain_rescale",
            PipelineOp::Rotate(_) => "rotate",
            PipelineOp::Conjugate => "conjugate",
            PipelineOp::Bootstrap => "bootstrap",
            PipelineOp::Load(_) => "load",
            PipelineOp::Store(_) => "store",
            PipelineOp::Free(_) => "free",
            PipelineOp::Input(_) => "input",
            PipelineOp::AddSlot(_) => "add_slot",
            PipelineOp::SubSlot(_) => "sub_slot",
            PipelineOp::MulCtSlot(_) => "mul_ct_slot",
            PipelineOp::MulPlain(_) => "mul_plain",
            PipelineOp::RotateHoisted { .. } => "rotate_hoisted",
            PipelineOp::ModDropTo(_) => "mod_drop_to",
        }
    }
}

/// A declared sequence of pipeline ops.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    ops: Vec<PipelineOp>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a program from an op list.
    pub fn from_ops(ops: Vec<PipelineOp>) -> Self {
        Self { ops }
    }

    /// Appends an op (builder style).
    #[must_use]
    pub fn then(mut self, op: PipelineOp) -> Self {
        self.ops.push(op);
        self
    }

    /// Appends `n` repetitions of `op` (builder style).
    #[must_use]
    pub fn then_repeat(mut self, op: PipelineOp, n: usize) -> Self {
        for _ in 0..n {
            self.ops.push(op.clone());
        }
        self
    }

    /// The op list.
    pub fn ops(&self) -> &[PipelineOp] {
        &self.ops
    }

    /// Number of declared ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Whether the program contains a bootstrap (and therefore needs a
    /// [`cl_boot::Bootstrapper`]).
    pub fn needs_bootstrapper(&self) -> bool {
        self.ops.iter().any(|op| matches!(op, PipelineOp::Bootstrap))
    }

    /// Total micro-op count (ops with bootstraps expanded into stages) —
    /// the unit of the executor's program counter and checkpoint cadence.
    pub fn num_micro_ops(&self) -> usize {
        self.ops.iter().map(PipelineOp::micro_ops).sum()
    }

    /// Flattens the program into `(op index, stage within op)` pairs, one
    /// per micro-op. The micro program counter indexes this list.
    pub fn micro_schedule(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.num_micro_ops());
        for (i, op) in self.ops.iter().enumerate() {
            for s in 0..op.micro_ops() {
                out.push((i, s));
            }
        }
        out
    }

    /// Serializes the program in the workspace wire format
    /// ([`ObjectTag::Program`]), stamped with `fingerprint` — callers bind
    /// a program to the parameter set it was authored for, so a job queue
    /// can reject a program submitted against the wrong tenant context
    /// before any homomorphic work runs.
    pub fn serialize(&self, fingerprint: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + 16 * self.ops.len());
        write_header(&mut out, ObjectTag::Program, fingerprint);
        let body_start = out.len();
        put_u32(&mut out, self.ops.len() as u32);
        for op in &self.ops {
            match op {
                PipelineOp::Square => put_u8(&mut out, 0),
                PipelineOp::Rescale => put_u8(&mut out, 1),
                PipelineOp::AddPlain(vals) => {
                    put_u8(&mut out, 2);
                    put_u32(&mut out, vals.len() as u32);
                    for v in vals {
                        put_f64(&mut out, *v);
                    }
                }
                PipelineOp::MulPlainRescale(vals) => {
                    put_u8(&mut out, 3);
                    put_u32(&mut out, vals.len() as u32);
                    for v in vals {
                        put_f64(&mut out, *v);
                    }
                }
                PipelineOp::Rotate(steps) => {
                    put_u8(&mut out, 4);
                    put_i64(&mut out, *steps);
                }
                PipelineOp::Conjugate => put_u8(&mut out, 5),
                PipelineOp::Bootstrap => put_u8(&mut out, 6),
                PipelineOp::Load(slot) => {
                    put_u8(&mut out, 7);
                    put_u32(&mut out, u32::from(*slot));
                }
                PipelineOp::Store(slot) => {
                    put_u8(&mut out, 8);
                    put_u32(&mut out, u32::from(*slot));
                }
                PipelineOp::Free(slot) => {
                    put_u8(&mut out, 9);
                    put_u32(&mut out, u32::from(*slot));
                }
                PipelineOp::Input(idx) => {
                    put_u8(&mut out, 10);
                    put_u32(&mut out, u32::from(*idx));
                }
                PipelineOp::AddSlot(slot) => {
                    put_u8(&mut out, 11);
                    put_u32(&mut out, u32::from(*slot));
                }
                PipelineOp::SubSlot(slot) => {
                    put_u8(&mut out, 12);
                    put_u32(&mut out, u32::from(*slot));
                }
                PipelineOp::MulCtSlot(slot) => {
                    put_u8(&mut out, 13);
                    put_u32(&mut out, u32::from(*slot));
                }
                PipelineOp::MulPlain(vals) => {
                    put_u8(&mut out, 14);
                    put_u32(&mut out, vals.len() as u32);
                    for v in vals {
                        put_f64(&mut out, *v);
                    }
                }
                PipelineOp::RotateHoisted { steps, dsts } => {
                    put_u8(&mut out, 15);
                    put_u32(&mut out, steps.len() as u32);
                    for s in steps {
                        put_i64(&mut out, *s);
                    }
                    for d in dsts {
                        put_u32(&mut out, u32::from(*d));
                    }
                }
                PipelineOp::ModDropTo(level) => {
                    put_u8(&mut out, 16);
                    put_u32(&mut out, *level);
                }
            }
        }
        let cksum = fnv1a(&out[body_start..]);
        put_u64(&mut out, cksum);
        out
    }

    /// Loads a program written by [`Program::serialize`], treating the blob
    /// as untrusted: header, fingerprint, op-count and vector-length caps,
    /// finiteness of plaintext operands, and the trailing body checksum are
    /// all verified before a [`Program`] is returned.
    ///
    /// # Errors
    ///
    /// [`FheError::Serialization`] for structural damage (truncation,
    /// unknown op tags, hostile lengths, non-finite operands),
    /// [`FheError::ParamsMismatch`] for a foreign fingerprint, and
    /// [`FheError::ChecksumMismatch`] for a blob corrupted after writing.
    pub fn try_deserialize(bytes: &[u8], want_fingerprint: u64) -> FheResult<Self> {
        let mut r = Reader::new("load_program", bytes);
        r.read_header(ObjectTag::Program, want_fingerprint)?;
        let body_start = r.pos();
        let count = r.u32()? as usize;
        if count > MAX_PROGRAM_OPS {
            return Err(r.err(format!(
                "declared op count {count} exceeds the {MAX_PROGRAM_OPS} cap"
            )));
        }
        let mut ops = Vec::with_capacity(count);
        for i in 0..count {
            let tag = r.u8()?;
            let op = match tag {
                0 => PipelineOp::Square,
                1 => PipelineOp::Rescale,
                2 | 3 => {
                    let len = r.u32()? as usize;
                    if len > MAX_PLAIN_VALUES {
                        return Err(r.err(format!(
                            "op {i}: plaintext vector length {len} exceeds the \
                             {MAX_PLAIN_VALUES} cap"
                        )));
                    }
                    let mut vals = Vec::with_capacity(len);
                    for j in 0..len {
                        let v = r.f64()?;
                        if !v.is_finite() {
                            return Err(r.err(format!(
                                "op {i}: plaintext value {j} is not finite ({v})"
                            )));
                        }
                        vals.push(v);
                    }
                    if tag == 2 {
                        PipelineOp::AddPlain(vals)
                    } else {
                        PipelineOp::MulPlainRescale(vals)
                    }
                }
                4 => PipelineOp::Rotate(r.i64()?),
                5 => PipelineOp::Conjugate,
                6 => PipelineOp::Bootstrap,
                7..=13 => {
                    let raw = r.u32()?;
                    let slot = u16::try_from(raw).map_err(|_| {
                        r.err(format!("op {i}: slot/input index {raw} exceeds u16"))
                    })?;
                    match tag {
                        7 => PipelineOp::Load(slot),
                        8 => PipelineOp::Store(slot),
                        9 => PipelineOp::Free(slot),
                        10 => PipelineOp::Input(slot),
                        11 => PipelineOp::AddSlot(slot),
                        12 => PipelineOp::SubSlot(slot),
                        _ => PipelineOp::MulCtSlot(slot),
                    }
                }
                14 => {
                    let len = r.u32()? as usize;
                    if len > MAX_PLAIN_VALUES {
                        return Err(r.err(format!(
                            "op {i}: plaintext vector length {len} exceeds the \
                             {MAX_PLAIN_VALUES} cap"
                        )));
                    }
                    let mut vals = Vec::with_capacity(len);
                    for j in 0..len {
                        let v = r.f64()?;
                        if !v.is_finite() {
                            return Err(r.err(format!(
                                "op {i}: plaintext value {j} is not finite ({v})"
                            )));
                        }
                        vals.push(v);
                    }
                    PipelineOp::MulPlain(vals)
                }
                15 => {
                    let len = r.u32()? as usize;
                    if len > MAX_HOISTED_STEPS {
                        return Err(r.err(format!(
                            "op {i}: hoisted batch length {len} exceeds the \
                             {MAX_HOISTED_STEPS} cap"
                        )));
                    }
                    let mut steps = Vec::with_capacity(len);
                    for _ in 0..len {
                        steps.push(r.i64()?);
                    }
                    let mut dsts = Vec::with_capacity(len);
                    for j in 0..len {
                        let raw = r.u32()?;
                        let d = u16::try_from(raw).map_err(|_| {
                            r.err(format!("op {i}: rotation dst {j} slot {raw} exceeds u16"))
                        })?;
                        dsts.push(d);
                    }
                    PipelineOp::RotateHoisted { steps, dsts }
                }
                16 => PipelineOp::ModDropTo(r.u32()?),
                other => return Err(r.err(format!("op {i}: unknown op tag {other}"))),
            };
            ops.push(op);
        }
        let computed = fnv1a(r.region_since(body_start));
        let stored = r.u64()?;
        if stored != computed {
            return Err(FheError::ChecksumMismatch {
                op: "load_program",
                section: "program body".into(),
                stored,
                computed,
            });
        }
        r.finish()?;
        Ok(Self { ops })
    }

    /// Cheap admission pre-check for an untrusted blob that should contain
    /// a program: validates the header shape, the object tag, and the
    /// params fingerprint — without parsing (or allocating for) the body.
    ///
    /// # Errors
    ///
    /// [`FheError::Serialization`] for a malformed header or a non-program
    /// tag, [`FheError::ParamsMismatch`] for a foreign fingerprint.
    pub fn peek(bytes: &[u8], want_fingerprint: u64) -> FheResult<()> {
        let (tag, fp) = peek_header("peek_program", bytes)?;
        if tag != ObjectTag::Program {
            return Err(FheError::Serialization {
                op: "peek_program",
                reason: format!("blob holds a {tag:?}, not a Program"),
            });
        }
        if fp != want_fingerprint {
            return Err(FheError::ParamsMismatch {
                op: "peek_program",
                got: fp,
                want: want_fingerprint,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_schedule_expands_bootstraps() {
        let p = Program::new()
            .then(PipelineOp::Square)
            .then(PipelineOp::Bootstrap)
            .then(PipelineOp::Rescale);
        assert_eq!(p.len(), 3);
        assert_eq!(p.num_micro_ops(), 2 + BootState::NUM_STAGES);
        let sched = p.micro_schedule();
        assert_eq!(sched[0], (0, 0));
        assert_eq!(sched[1], (1, 0));
        assert_eq!(sched[BootState::NUM_STAGES], (1, BootState::NUM_STAGES - 1));
        assert_eq!(sched[BootState::NUM_STAGES + 1], (2, 0));
        assert!(p.needs_bootstrapper());
        assert!(!Program::new().then(PipelineOp::Square).needs_bootstrapper());
    }

    const FP: u64 = 0xD15EA5E_u64;

    fn sample_program() -> Program {
        Program::new()
            .then(PipelineOp::Square)
            .then(PipelineOp::Rescale)
            .then(PipelineOp::AddPlain(vec![0.25, -1.5]))
            .then(PipelineOp::MulPlainRescale(vec![2.0]))
            .then(PipelineOp::Rotate(-3))
            .then(PipelineOp::Conjugate)
            .then(PipelineOp::Bootstrap)
            .then(PipelineOp::Input(1))
            .then(PipelineOp::Store(4))
            .then(PipelineOp::Load(4))
            .then(PipelineOp::AddSlot(4))
            .then(PipelineOp::SubSlot(2))
            .then(PipelineOp::MulCtSlot(7))
            .then(PipelineOp::MulPlain(vec![0.5, 3.25]))
            .then(PipelineOp::RotateHoisted {
                steps: vec![1, -2, 5],
                dsts: vec![9, 10, 11],
            })
            .then(PipelineOp::ModDropTo(3))
            .then(PipelineOp::Free(4))
    }

    #[test]
    fn program_roundtrips_bit_exactly() {
        let p = sample_program();
        let blob = p.serialize(FP);
        assert!(Program::peek(&blob, FP).is_ok());
        let back = Program::try_deserialize(&blob, FP).unwrap();
        assert_eq!(back, p);
        // Empty programs roundtrip too.
        let empty = Program::new();
        assert_eq!(
            Program::try_deserialize(&empty.serialize(FP), FP).unwrap(),
            empty
        );
    }

    #[test]
    fn program_load_rejects_every_single_byte_flip() {
        let blob = sample_program().serialize(FP);
        for i in 0..blob.len() {
            let mut bad = blob.clone();
            bad[i] ^= 0xff;
            assert!(
                Program::try_deserialize(&bad, FP).is_err(),
                "flip at byte {i} must not load"
            );
        }
    }

    #[test]
    fn program_load_rejects_truncation_and_wrong_fingerprint() {
        let blob = sample_program().serialize(FP);
        for len in 0..blob.len() {
            assert!(
                Program::try_deserialize(&blob[..len], FP).is_err(),
                "truncation to {len} bytes must not load"
            );
        }
        assert!(matches!(
            Program::try_deserialize(&blob, FP + 1),
            Err(FheError::ParamsMismatch { .. })
        ));
        assert!(matches!(
            Program::peek(&blob, FP + 1),
            Err(FheError::ParamsMismatch { .. })
        ));
    }

    #[test]
    fn program_load_rejects_hostile_lengths_and_values() {
        // A declared op count beyond the cap must be rejected before any
        // allocation happens (the blob is nowhere near large enough).
        let mut blob = Vec::new();
        write_header(&mut blob, ObjectTag::Program, FP);
        put_u32(&mut blob, (MAX_PROGRAM_OPS + 1) as u32);
        let err = Program::try_deserialize(&blob, FP).expect_err("hostile op count");
        assert!(err.to_string().contains("cap"), "{err}");

        // Same for a hostile plaintext vector length.
        let mut blob = Vec::new();
        write_header(&mut blob, ObjectTag::Program, FP);
        let body = blob.len();
        put_u32(&mut blob, 1);
        put_u8(&mut blob, 2); // AddPlain
        put_u32(&mut blob, (MAX_PLAIN_VALUES + 1) as u32);
        let cksum = fnv1a(&blob[body..]);
        put_u64(&mut blob, cksum);
        assert!(Program::try_deserialize(&blob, FP).is_err());

        // Non-finite plaintext operands are data-plane poison: rejected.
        let p = Program::new().then(PipelineOp::AddPlain(vec![f64::NAN]));
        let blob = p.serialize(FP);
        let err = Program::try_deserialize(&blob, FP).expect_err("NaN operand");
        assert!(err.to_string().contains("finite"), "{err}");

        // Hostile hoisted-batch length: rejected before allocation.
        let mut blob = Vec::new();
        write_header(&mut blob, ObjectTag::Program, FP);
        let body = blob.len();
        put_u32(&mut blob, 1);
        put_u8(&mut blob, 15); // RotateHoisted
        put_u32(&mut blob, (MAX_HOISTED_STEPS + 1) as u32);
        let cksum = fnv1a(&blob[body..]);
        put_u64(&mut blob, cksum);
        let err = Program::try_deserialize(&blob, FP).expect_err("hostile batch len");
        assert!(err.to_string().contains("cap"), "{err}");

        // A slot index beyond u16 on the wire: rejected.
        let mut blob = Vec::new();
        write_header(&mut blob, ObjectTag::Program, FP);
        let body = blob.len();
        put_u32(&mut blob, 1);
        put_u8(&mut blob, 7); // Load
        put_u32(&mut blob, u32::from(u16::MAX) + 1);
        let cksum = fnv1a(&blob[body..]);
        put_u64(&mut blob, cksum);
        let err = Program::try_deserialize(&blob, FP).expect_err("oversized slot id");
        assert!(err.to_string().contains("u16"), "{err}");
    }

    #[test]
    fn program_peek_rejects_non_program_objects() {
        // A ciphertext-tagged header must not pass the program peek.
        let mut blob = Vec::new();
        write_header(&mut blob, ObjectTag::Ciphertext, FP);
        assert!(Program::peek(&blob, FP).is_err());
    }
}
