//! Declared pipelines: the unit of work the executor runs and checkpoints.

use cl_boot::BootState;

/// One homomorphic operation in a declared pipeline.
///
/// Ops are deterministic (no randomness), so re-executing a suffix after a
/// checkpoint restore reproduces bit-identical results — the property the
/// recovery loop's convergence proof rests on.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineOp {
    /// Homomorphic squaring (relinearized with the bundle's relin key).
    Square,
    /// Rescale: drop one modulus, dividing the scale by it.
    Rescale,
    /// Add an encoded plaintext vector (at the ciphertext's scale/level).
    AddPlain(Vec<f64>),
    /// Multiply by an encoded plaintext vector and rescale. The plaintext
    /// is encoded at exactly the dropped modulus' scale, so the
    /// ciphertext scale is preserved.
    MulPlainRescale(Vec<f64>),
    /// Rotate slots by the given step (needs a matching rotation key).
    Rotate(i64),
    /// Complex-conjugate the slots.
    Conjugate,
    /// Full bootstrap, expanded into [`BootState::NUM_STAGES`] micro-ops
    /// so a crash mid-bootstrap resumes at a stage boundary.
    Bootstrap,
}

impl PipelineOp {
    /// How many checkpointable micro-ops this op expands to.
    pub fn micro_ops(&self) -> usize {
        match self {
            PipelineOp::Bootstrap => BootState::NUM_STAGES,
            _ => 1,
        }
    }

    /// Short name for telemetry and errors.
    pub fn name(&self) -> &'static str {
        match self {
            PipelineOp::Square => "square",
            PipelineOp::Rescale => "rescale",
            PipelineOp::AddPlain(_) => "add_plain",
            PipelineOp::MulPlainRescale(_) => "mul_plain_rescale",
            PipelineOp::Rotate(_) => "rotate",
            PipelineOp::Conjugate => "conjugate",
            PipelineOp::Bootstrap => "bootstrap",
        }
    }
}

/// A declared sequence of pipeline ops.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    ops: Vec<PipelineOp>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a program from an op list.
    pub fn from_ops(ops: Vec<PipelineOp>) -> Self {
        Self { ops }
    }

    /// Appends an op (builder style).
    #[must_use]
    pub fn then(mut self, op: PipelineOp) -> Self {
        self.ops.push(op);
        self
    }

    /// Appends `n` repetitions of `op` (builder style).
    #[must_use]
    pub fn then_repeat(mut self, op: PipelineOp, n: usize) -> Self {
        for _ in 0..n {
            self.ops.push(op.clone());
        }
        self
    }

    /// The op list.
    pub fn ops(&self) -> &[PipelineOp] {
        &self.ops
    }

    /// Number of declared ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Whether the program contains a bootstrap (and therefore needs a
    /// [`cl_boot::Bootstrapper`]).
    pub fn needs_bootstrapper(&self) -> bool {
        self.ops.iter().any(|op| matches!(op, PipelineOp::Bootstrap))
    }

    /// Total micro-op count (ops with bootstraps expanded into stages) —
    /// the unit of the executor's program counter and checkpoint cadence.
    pub fn num_micro_ops(&self) -> usize {
        self.ops.iter().map(PipelineOp::micro_ops).sum()
    }

    /// Flattens the program into `(op index, stage within op)` pairs, one
    /// per micro-op. The micro program counter indexes this list.
    pub fn micro_schedule(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.num_micro_ops());
        for (i, op) in self.ops.iter().enumerate() {
            for s in 0..op.micro_ops() {
                out.push((i, s));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_schedule_expands_bootstraps() {
        let p = Program::new()
            .then(PipelineOp::Square)
            .then(PipelineOp::Bootstrap)
            .then(PipelineOp::Rescale);
        assert_eq!(p.len(), 3);
        assert_eq!(p.num_micro_ops(), 2 + BootState::NUM_STAGES);
        let sched = p.micro_schedule();
        assert_eq!(sched[0], (0, 0));
        assert_eq!(sched[1], (1, 0));
        assert_eq!(sched[BootState::NUM_STAGES], (1, BootState::NUM_STAGES - 1));
        assert_eq!(sched[BootState::NUM_STAGES + 1], (2, 0));
        assert!(p.needs_bootstrapper());
        assert!(!Program::new().then(PipelineOp::Square).needs_bootstrapper());
    }
}
