//! Job specifications and structured outcomes.
//!
//! Every job a tenant submits either completes with an output ciphertext
//! blob or fails with a *stable, machine-readable* [`OutcomeCode`]. A
//! serving deployment keys billing, alerting, and client retry logic off
//! these codes, so the mapping from [`FheError`] must never silently
//! change meaning: codes are explicit numeric constants, and unknown
//! future error variants collapse to [`OutcomeCode::Internal`] rather
//! than being renumbered.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use cl_ckks::serialize::fnv1a_fast;
use cl_ckks::FheError;
use cl_runtime::RecoveryTelemetry;

#[cfg(feature = "faults")]
use cl_ckks::faults::FaultPlan;

/// An immutable, reference-counted payload blob with a lazily computed,
/// shared content digest.
///
/// Jobs from one tenant typically carry the *identical* key (and often
/// program) blob, and those blobs are megabytes at serving shapes. Sharing
/// the allocation makes per-job submission O(1) in blob size instead of a
/// full memcpy, and caching the `fnv1a_fast` digest across clones lets the
/// per-tenant key cache and the write-ahead journal key their dedup maps
/// without re-hashing the same megabytes on every job.
#[derive(Debug, Clone)]
pub struct Blob {
    data: Arc<[u8]>,
    digest: Arc<OnceLock<u64>>,
}

impl Blob {
    /// Wraps `data` in a shared blob with an unset digest.
    pub fn new(data: impl Into<Arc<[u8]>>) -> Self {
        Self {
            data: data.into(),
            digest: Arc::new(OnceLock::new()),
        }
    }

    /// Wraps `data` with a digest already known to be `fnv1a_fast(data)`
    /// — journal replay knows every blob's digest (the records are keyed
    /// by it), so recovery never re-hashes.
    pub fn with_digest(data: impl Into<Arc<[u8]>>, digest: u64) -> Self {
        let lock = OnceLock::new();
        let _ = lock.set(digest);
        Self {
            data: data.into(),
            digest: Arc::new(lock),
        }
    }

    /// The `fnv1a_fast` content digest, computed on first use and shared
    /// by every clone of this blob.
    pub fn digest(&self) -> u64 {
        *self.digest.get_or_init(|| fnv1a_fast(&self.data))
    }
}

impl std::ops::Deref for Blob {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Blob {
    fn from(data: Vec<u8>) -> Self {
        Self::new(data)
    }
}

impl From<&[u8]> for Blob {
    fn from(data: &[u8]) -> Self {
        Self::new(data)
    }
}

/// Server-assigned identifier for one submitted job, unique for the
/// lifetime of a [`crate::JobServer`] and monotonically increasing in
/// submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// One unit of work a tenant submits: a serialized [`cl_runtime::Program`]
/// to run over a serialized input ciphertext, under that tenant's key
/// bundle. All three blobs are *untrusted* — the worker validates
/// headers, fingerprints, and checksums before any compute, and a
/// malformed blob fails only this job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Tenant the job belongs to (must be registered).
    pub tenant: String,
    /// Serialized program (see `Program::serialize`), written under the
    /// tenant's params fingerprint.
    pub program_blob: Blob,
    /// Serialized input ciphertext in the tenant's parameter set.
    pub input_blob: Blob,
    /// Serialized `BootstrapKeys` bundle. Jobs from one tenant typically
    /// share the identical blob; submitting clones of one [`Blob`] shares
    /// the allocation and digest, and the per-tenant LRU key cache
    /// deserializes it once and reuses the parsed bundle by digest.
    pub key_blob: Blob,
    /// Wall-clock budget measured from *admission* (queue wait counts).
    /// `None` uses the server's default; `Some(Duration::ZERO)` is legal
    /// and expires immediately.
    pub deadline: Option<Duration>,
    /// Seeded fault plan injected into this job's executor, for chaos
    /// testing. The plan's op counter advances across server-level
    /// retries, so the fault stream is one deterministic sequence.
    #[cfg(feature = "faults")]
    pub fault_plan: Option<FaultPlan>,
}

impl JobSpec {
    /// A job with no deadline override and no fault plan. Accepts owned
    /// `Vec<u8>` blobs or pre-shared [`Blob`]s; pass clones of one `Blob`
    /// when many jobs carry the same payload.
    pub fn new(
        tenant: &str,
        program_blob: impl Into<Blob>,
        input_blob: impl Into<Blob>,
        key_blob: impl Into<Blob>,
    ) -> Self {
        Self {
            tenant: tenant.to_string(),
            program_blob: program_blob.into(),
            input_blob: input_blob.into(),
            key_blob: key_blob.into(),
            deadline: None,
            #[cfg(feature = "faults")]
            fault_plan: None,
        }
    }
}

/// Stable numeric outcome classification. The discriminants are part of
/// the serving contract (clients switch on them), so existing values must
/// never be reused or renumbered — append only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum OutcomeCode {
    /// Completed; `output` holds the serialized result ciphertext.
    Ok = 0,
    /// Shed at admission: queue at capacity (global or per-tenant bound).
    Overloaded = 1,
    /// Wall-clock budget exhausted (queue wait included).
    DeadlineExceeded = 2,
    /// Cancelled by the submitter.
    Cancelled = 3,
    /// A blob failed structural validation (bad magic/version/tag,
    /// truncation, hostile lengths, non-finite values).
    Malformed = 4,
    /// A blob or checkpoint failed an integrity checksum, and the retry
    /// budget could not mask it.
    IntegrityFailure = 5,
    /// A blob was written for a different parameter set than the
    /// tenant's registered fingerprint.
    ParamsMismatch = 6,
    /// The strict guardrail rejected the computation (noise budget
    /// exhausted, level underflow, scale drift) beyond what retries fixed.
    GuardrailRejected = 7,
    /// The program references a key the bundle does not hold.
    MissingKey = 8,
    /// The request is structurally valid but unservable (e.g. a program
    /// needing a bootstrapper the server does not host).
    Unsupported = 9,
    /// The tenant's retry budget ran out before the job converged.
    RetryBudgetExhausted = 10,
    /// The watchdog declared the run stalled (heartbeat stale past the
    /// stall budget) and aborted it for re-dispatch.
    Stalled = 11,
    /// Admission refused by the tenant's circuit breaker: the tenant's
    /// recent jobs kept failing with breaker-class outcomes, so new work
    /// is quarantined until a half-open probe succeeds.
    TenantQuarantined = 12,
    /// Any error the server cannot classify (future `FheError` variants;
    /// the enum is `#[non_exhaustive]`).
    Internal = 99,
}

impl OutcomeCode {
    /// Maps an [`FheError`] to its stable outcome code.
    pub fn from_error(err: &FheError) -> Self {
        match err {
            FheError::Overloaded { .. } => OutcomeCode::Overloaded,
            FheError::DeadlineExceeded { .. } => OutcomeCode::DeadlineExceeded,
            FheError::Cancelled { .. } => OutcomeCode::Cancelled,
            FheError::Serialization { .. } => OutcomeCode::Malformed,
            FheError::ChecksumMismatch { .. } | FheError::CorruptCiphertext { .. }
            | FheError::CorruptKey { .. } => OutcomeCode::IntegrityFailure,
            FheError::ParamsMismatch { .. } => OutcomeCode::ParamsMismatch,
            FheError::BudgetExhausted { .. } | FheError::LevelMismatch { .. }
            | FheError::ScaleMismatch { .. } => OutcomeCode::GuardrailRejected,
            FheError::MissingKey { .. } => OutcomeCode::MissingKey,
            FheError::InvalidParams { .. } => OutcomeCode::Unsupported,
            FheError::Stalled { .. } => OutcomeCode::Stalled,
            FheError::TenantQuarantined { .. } => OutcomeCode::TenantQuarantined,
            // `FheError` is non_exhaustive: new variants classify as
            // Internal until given a code of their own.
            _ => OutcomeCode::Internal,
        }
    }

    /// Whether a failure with this code is worth a server-level retry
    /// (restore-and-resume on a fresh executor). Deterministic rejections
    /// — malformed input, wrong params, guardrail verdicts on clean data,
    /// cancellation — would fail identically again. A stall is transient
    /// by definition (the watchdog aborted a run that stopped making
    /// progress), so it earns a retry from the last durable checkpoint.
    pub fn retryable(self) -> bool {
        matches!(self, OutcomeCode::IntegrityFailure | OutcomeCode::Stalled)
    }

    /// The stable numeric value (`u16`) of this code.
    pub fn as_u16(self) -> u16 {
        self as u16
    }

    /// Inverse of [`OutcomeCode::as_u16`], for reconstructing outcomes
    /// from journal replay. Unknown values (a journal written by a newer
    /// server) return `None` rather than guessing.
    pub fn from_u16(v: u16) -> Option<Self> {
        match v {
            0 => Some(OutcomeCode::Ok),
            1 => Some(OutcomeCode::Overloaded),
            2 => Some(OutcomeCode::DeadlineExceeded),
            3 => Some(OutcomeCode::Cancelled),
            4 => Some(OutcomeCode::Malformed),
            5 => Some(OutcomeCode::IntegrityFailure),
            6 => Some(OutcomeCode::ParamsMismatch),
            7 => Some(OutcomeCode::GuardrailRejected),
            8 => Some(OutcomeCode::MissingKey),
            9 => Some(OutcomeCode::Unsupported),
            10 => Some(OutcomeCode::RetryBudgetExhausted),
            11 => Some(OutcomeCode::Stalled),
            12 => Some(OutcomeCode::TenantQuarantined),
            99 => Some(OutcomeCode::Internal),
            _ => None,
        }
    }
}

/// The structured result of one job, success or failure. Failures carry
/// the originating error's display string for operators, but clients
/// should branch on [`OutcomeCode`] only.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job this outcome belongs to.
    pub id: JobId,
    /// Owning tenant.
    pub tenant: String,
    /// Stable classification.
    pub code: OutcomeCode,
    /// Serialized result ciphertext when `code == Ok`.
    pub output: Option<Vec<u8>>,
    /// Human-readable failure detail (empty for `Ok`).
    pub detail: String,
    /// Recovery counters accumulated over every attempt of this job.
    pub recovery: RecoveryTelemetry,
    /// Server-level attempts consumed (0 = first try succeeded or failed
    /// terminally; each increment burned one unit of tenant retry budget).
    pub retries: u32,
}

impl JobOutcome {
    /// Whether the job completed and produced an output.
    pub fn is_ok(&self) -> bool {
        self.code == OutcomeCode::Ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_error_variant_maps_to_a_stable_code() {
        let cases: Vec<(FheError, OutcomeCode)> = vec![
            (
                FheError::Overloaded { op: "t", retry_after_ms: 5 },
                OutcomeCode::Overloaded,
            ),
            (
                FheError::DeadlineExceeded { op: "t", deadline_ms: 1, elapsed_ms: 2 },
                OutcomeCode::DeadlineExceeded,
            ),
            (FheError::Cancelled { op: "t" }, OutcomeCode::Cancelled),
            (
                FheError::Serialization { op: "t", reason: "x".into() },
                OutcomeCode::Malformed,
            ),
            (
                FheError::ChecksumMismatch {
                    op: "t",
                    section: "s".into(),
                    stored: 1,
                    computed: 2,
                },
                OutcomeCode::IntegrityFailure,
            ),
            (
                FheError::CorruptCiphertext { op: "t", reason: "x".into() },
                OutcomeCode::IntegrityFailure,
            ),
            (
                FheError::CorruptKey { op: "t", reason: "x".into() },
                OutcomeCode::IntegrityFailure,
            ),
            (
                FheError::ParamsMismatch { op: "t", got: 1, want: 2 },
                OutcomeCode::ParamsMismatch,
            ),
            (
                FheError::BudgetExhausted { op: "t", budget_bits: -1.0, required_bits: 2.0 },
                OutcomeCode::GuardrailRejected,
            ),
            (
                FheError::LevelMismatch { op: "t", got: 1, want: 2 },
                OutcomeCode::GuardrailRejected,
            ),
            (
                FheError::ScaleMismatch { op: "t", got: 1.0, want: 2.0, rel: 0.5 },
                OutcomeCode::GuardrailRejected,
            ),
            (
                FheError::MissingKey { what: "k".into() },
                OutcomeCode::MissingKey,
            ),
            (
                FheError::InvalidParams { op: "t", reason: "x".into() },
                OutcomeCode::Unsupported,
            ),
            (
                FheError::Stalled { op: "t", stalled_ms: 750 },
                OutcomeCode::Stalled,
            ),
            (
                FheError::TenantQuarantined { op: "t", retry_after_ms: 200 },
                OutcomeCode::TenantQuarantined,
            ),
        ];
        for (err, want) in cases {
            assert_eq!(OutcomeCode::from_error(&err), want, "for {err}");
        }
    }

    #[test]
    fn discriminants_are_the_documented_contract() {
        assert_eq!(OutcomeCode::Ok.as_u16(), 0);
        assert_eq!(OutcomeCode::Overloaded.as_u16(), 1);
        assert_eq!(OutcomeCode::DeadlineExceeded.as_u16(), 2);
        assert_eq!(OutcomeCode::Cancelled.as_u16(), 3);
        assert_eq!(OutcomeCode::Malformed.as_u16(), 4);
        assert_eq!(OutcomeCode::IntegrityFailure.as_u16(), 5);
        assert_eq!(OutcomeCode::ParamsMismatch.as_u16(), 6);
        assert_eq!(OutcomeCode::GuardrailRejected.as_u16(), 7);
        assert_eq!(OutcomeCode::MissingKey.as_u16(), 8);
        assert_eq!(OutcomeCode::Unsupported.as_u16(), 9);
        assert_eq!(OutcomeCode::RetryBudgetExhausted.as_u16(), 10);
        assert_eq!(OutcomeCode::Stalled.as_u16(), 11);
        assert_eq!(OutcomeCode::TenantQuarantined.as_u16(), 12);
        assert_eq!(OutcomeCode::Internal.as_u16(), 99);
    }

    #[test]
    fn from_u16_round_trips_every_code() {
        let all = [
            OutcomeCode::Ok,
            OutcomeCode::Overloaded,
            OutcomeCode::DeadlineExceeded,
            OutcomeCode::Cancelled,
            OutcomeCode::Malformed,
            OutcomeCode::IntegrityFailure,
            OutcomeCode::ParamsMismatch,
            OutcomeCode::GuardrailRejected,
            OutcomeCode::MissingKey,
            OutcomeCode::Unsupported,
            OutcomeCode::RetryBudgetExhausted,
            OutcomeCode::Stalled,
            OutcomeCode::TenantQuarantined,
            OutcomeCode::Internal,
        ];
        for code in all {
            assert_eq!(OutcomeCode::from_u16(code.as_u16()), Some(code));
        }
        assert_eq!(OutcomeCode::from_u16(13), None);
        assert_eq!(OutcomeCode::from_u16(u16::MAX), None);
    }

    #[test]
    fn only_transient_failures_earn_a_retry() {
        for code in [
            OutcomeCode::Overloaded,
            OutcomeCode::DeadlineExceeded,
            OutcomeCode::Cancelled,
            OutcomeCode::Malformed,
            OutcomeCode::ParamsMismatch,
            OutcomeCode::GuardrailRejected,
            OutcomeCode::MissingKey,
            OutcomeCode::Unsupported,
            OutcomeCode::TenantQuarantined,
            OutcomeCode::Internal,
        ] {
            assert!(!code.retryable(), "{code:?} must not retry");
        }
        assert!(OutcomeCode::IntegrityFailure.retryable());
        assert!(OutcomeCode::Stalled.retryable());
    }
}
