//! The multi-tenant job server.
//!
//! A fixed pool of worker threads drains a bounded, tenant-fair
//! [`AdmissionQueue`]; every job runs on a [`PipelineExecutor`] under
//! [`cl_ckks::GuardrailPolicy::Strict`] with durable checkpoints, an
//! attached [`RunControl`] (cancellation + deadline), and a server-level
//! retry loop on top of the executor's own restore-and-retry:
//!
//! - an executor attempt that *crashes* (fault-plan kill point) or gives
//!   up with an integrity failure is resumed on a fresh executor from the
//!   newest durable checkpoint, after an exponential backoff, while the
//!   tenant's retry budget lasts;
//! - deterministic rejections (malformed blobs, foreign fingerprints,
//!   guardrail verdicts, cancellation, deadline expiry) fail exactly
//!   once — retrying them would burn budget to reproduce the verdict.
//!
//! Worker threads submit *nothing* across tenant boundaries: the job
//! carries its tenant's context, key cache, and per-`(tenant, worker)`
//! checkpoint directory, so one tenant's corrupt blob, injected faults,
//! or mid-job kill cannot perturb another tenant's results (asserted
//! bit-exactly in `tests/server_chaos.rs`).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use cl_ckks::serialize::{peek_header, ObjectTag};
use cl_ckks::{CkksContext, FheError, FheResult, GuardrailPolicy};
use cl_runtime::{
    ExecutorConfig, PipelineExecutor, Program, RecoveryTelemetry, RunControl, RunOutcome,
};
use cl_trace::OpSnapshot;

use crate::job::{JobId, JobOutcome, JobSpec, OutcomeCode};
use crate::queue::{AdmissionQueue, ShedReason};
use crate::tenant::{TenantRegistry, TenantReport, TenantState};

/// Base unit for the retry-after hint returned with an
/// [`FheError::Overloaded`] rejection; scaled by queue pressure.
const RETRY_AFTER_BASE_MS: u64 = 10;

/// Server configuration. The defaults suit tests and smoke runs; a real
/// deployment sizes the queue and budgets to its SLO.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the queue (min 1).
    pub workers: usize,
    /// Global admission bound: queued jobs across all tenants. This is
    /// the server's memory bound — blobs are only held while queued or
    /// running.
    pub queue_capacity: usize,
    /// Per-tenant admission bound (tenant-fair shedding).
    pub tenant_queue_capacity: usize,
    /// Root directory; tenant checkpoint dirs are created beneath it.
    pub checkpoint_root: PathBuf,
    /// Checkpoint cadence forwarded to [`ExecutorConfig`]. `0` disables
    /// durable checkpoints (server retries then restart from the input).
    pub checkpoint_every: u64,
    /// Restore-and-retry budget *inside* one executor attempt.
    pub executor_retries: u32,
    /// Server-level retry units granted to each tenant at registration
    /// (shared across that tenant's jobs).
    pub tenant_retry_budget: u32,
    /// Cap on server-level attempts for a single job, independent of the
    /// tenant budget.
    pub max_job_retries: u32,
    /// Byte budget for each tenant's compact key-bundle cache
    /// (LRU-evicted beyond this). Defaults to `CL_KEYCACHE_BYTES` when
    /// set, else 32 MiB.
    pub key_cache_bytes: usize,
    /// Deadline applied when a [`JobSpec`] does not set one. `None`
    /// means no deadline.
    pub default_deadline: Option<Duration>,
    /// First backoff sleep before a server-level retry; doubles per
    /// attempt (capped at 2^6 multiples).
    pub backoff_base_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            queue_capacity: 64,
            tenant_queue_capacity: 16,
            checkpoint_root: std::env::temp_dir().join("cl-server"),
            checkpoint_every: 4,
            executor_retries: 8,
            tenant_retry_budget: 16,
            max_job_retries: 3,
            key_cache_bytes: std::env::var("CL_KEYCACHE_BYTES")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or(32 << 20),
            default_deadline: None,
            backoff_base_ms: 1,
        }
    }
}

/// A submitted job's handle: its id plus the shared [`RunControl`], so
/// the submitter can cancel while the job is queued or mid-run.
#[derive(Debug, Clone)]
pub struct JobHandle {
    /// The server-assigned job id.
    pub id: JobId,
    control: RunControl,
}

impl JobHandle {
    /// Requests cancellation; takes effect at the next micro-op boundary
    /// (or immediately if the job is still queued).
    pub fn cancel(&self) {
        self.control.cancel();
    }
}

struct QueuedJob {
    id: JobId,
    spec: JobSpec,
    control: RunControl,
    tenant: Arc<TenantState>,
}

struct Shared {
    config: ServerConfig,
    queue: Mutex<AdmissionQueue<QueuedJob>>,
    work_cv: Condvar,
    registry: TenantRegistry,
    /// Completed outcomes by raw job id; pending decrements happen under
    /// this lock so `wait`/`wait_idle` never miss a wakeup.
    outcomes: Mutex<HashMap<u64, JobOutcome>>,
    done_cv: Condvar,
    /// Jobs admitted but not yet finished (queued + running).
    pending: AtomicUsize,
    shutdown: AtomicBool,
}

/// The multi-tenant job server. See the module docs for the scheduling
/// and isolation model.
pub struct JobServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl JobServer {
    /// Starts the worker pool.
    ///
    /// # Errors
    ///
    /// [`FheError::Serialization`] when the checkpoint root cannot be
    /// created.
    pub fn start(config: ServerConfig) -> FheResult<Self> {
        std::fs::create_dir_all(&config.checkpoint_root).map_err(|e| {
            FheError::Serialization {
                op: "server_start",
                reason: format!(
                    "cannot create checkpoint root {}: {e}",
                    config.checkpoint_root.display()
                ),
            }
        })?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(AdmissionQueue::new(
                config.queue_capacity,
                config.tenant_queue_capacity,
            )),
            work_cv: Condvar::new(),
            registry: TenantRegistry::default(),
            outcomes: Mutex::new(HashMap::new()),
            done_cv: Condvar::new(),
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            config,
        });
        let handles = (0..workers)
            .map(|widx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cl-server-w{widx}"))
                    .spawn(move || worker_loop(&shared, widx))
                    .map_err(|e| FheError::Serialization {
                        op: "server_start",
                        reason: format!("cannot spawn worker {widx}: {e}"),
                    })
            })
            .collect::<FheResult<Vec<_>>>()?;
        Ok(Self {
            shared,
            workers: handles,
            next_id: AtomicU64::new(0),
        })
    }

    /// Registers a tenant under `id` with its parameter context. The
    /// context fixes the fingerprint every blob the tenant submits must
    /// carry.
    ///
    /// # Errors
    ///
    /// [`FheError::InvalidParams`] for a duplicate id, an id that is not
    /// directory-name safe (`[A-Za-z0-9._-]+`), or a context not running
    /// [`GuardrailPolicy::Strict`] (the executor refuses anything else).
    /// [`FheError::Serialization`] when the tenant checkpoint directory
    /// cannot be created.
    pub fn register_tenant(&self, id: &str, ctx: Arc<CkksContext>) -> FheResult<()> {
        if id.is_empty()
            || !id
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        {
            return Err(FheError::InvalidParams {
                op: "register_tenant",
                reason: format!("tenant id {id:?} is not directory-name safe"),
            });
        }
        if !matches!(ctx.policy(), GuardrailPolicy::Strict { .. }) {
            return Err(FheError::InvalidParams {
                op: "register_tenant",
                reason: "served contexts must run GuardrailPolicy::Strict \
                         (fault recovery needs detection)"
                    .into(),
            });
        }
        let root = self.shared.config.checkpoint_root.join(id);
        std::fs::create_dir_all(&root).map_err(|e| FheError::Serialization {
            op: "register_tenant",
            reason: format!("cannot create tenant dir {}: {e}", root.display()),
        })?;
        let state = Arc::new(TenantState::new(
            id.to_string(),
            ctx,
            root,
            self.shared.config.key_cache_bytes,
            self.shared.config.tenant_retry_budget,
        ));
        if !self.shared.registry.insert(state) {
            return Err(FheError::InvalidParams {
                op: "register_tenant",
                reason: format!("tenant {id:?} is already registered"),
            });
        }
        Ok(())
    }

    /// Submits a job. Admission is synchronous and cheap: tenant lookup,
    /// header pre-checks on all three blobs (magic, tag, fingerprint —
    /// no payload parse), then a bounded enqueue. The deadline clock
    /// starts *now*, so queue wait counts against it.
    ///
    /// # Errors
    ///
    /// [`FheError::Overloaded`] with a retry-after hint when the global
    /// or per-tenant queue bound is hit (the job was not enqueued and no
    /// memory is retained); [`FheError::InvalidParams`] for an unknown
    /// tenant; [`FheError::Serialization`] /
    /// [`FheError::ParamsMismatch`] when a blob header fails the
    /// pre-check.
    pub fn submit(&self, spec: JobSpec) -> FheResult<JobHandle> {
        let shared = &self.shared;
        let tenant = shared.registry.get(&spec.tenant).ok_or_else(|| {
            FheError::InvalidParams {
                op: "submit",
                reason: format!("unknown tenant {:?}", spec.tenant),
            }
        })?;
        Program::peek(&spec.program_blob, tenant.fingerprint)?;
        check_blob_header("submit_input", &spec.input_blob, ObjectTag::Ciphertext, &tenant)?;
        check_blob_header("submit_keys", &spec.key_blob, ObjectTag::BootstrapKeys, &tenant)?;

        let budget = spec.deadline.or(shared.config.default_deadline);
        let control = match budget {
            Some(d) => RunControl::with_deadline(d),
            None => RunControl::new(),
        };
        let id = JobId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let job = QueuedJob {
            id,
            spec,
            control: control.clone(),
            tenant: Arc::clone(&tenant),
        };
        {
            let mut queue = lock_queue(shared);
            if let Err((_, reason)) = queue.try_push(&tenant.id, job) {
                let qlen = queue.len();
                drop(queue);
                tenant.record_shed();
                let op = match reason {
                    ShedReason::GlobalFull => "submit",
                    ShedReason::TenantFull => "submit_tenant",
                };
                return Err(FheError::Overloaded {
                    op,
                    retry_after_ms: retry_after_hint(qlen, shared.config.workers),
                });
            }
        }
        shared.pending.fetch_add(1, Ordering::AcqRel);
        shared.work_cv.notify_one();
        Ok(JobHandle { id, control })
    }

    /// Blocks until job `id` finishes and returns its outcome. Returns
    /// immediately if it already finished. Panics-free: an id this server
    /// never issued blocks forever, so callers pass handles they got from
    /// [`JobServer::submit`].
    pub fn wait(&self, id: JobId) -> JobOutcome {
        let mut outcomes = lock_outcomes(&self.shared);
        loop {
            if let Some(out) = outcomes.get(&id.0) {
                return out.clone();
            }
            outcomes = self
                .shared
                .done_cv
                .wait(outcomes)
                .expect("outcome map poisoned: a holder panicked mid-update");
        }
    }

    /// Blocks until every admitted job has an outcome.
    pub fn wait_idle(&self) {
        let mut outcomes = lock_outcomes(&self.shared);
        while self.shared.pending.load(Ordering::Acquire) > 0 {
            outcomes = self
                .shared
                .done_cv
                .wait(outcomes)
                .expect("outcome map poisoned: a holder panicked mid-update");
        }
        drop(outcomes);
    }

    /// The outcome of `id`, if it has finished.
    pub fn outcome(&self, id: JobId) -> Option<JobOutcome> {
        lock_outcomes(&self.shared).get(&id.0).cloned()
    }

    /// Jobs admitted but not yet finished.
    pub fn pending(&self) -> usize {
        self.shared.pending.load(Ordering::Acquire)
    }

    /// Jobs currently queued (admitted, not yet picked up).
    pub fn queued(&self) -> usize {
        lock_queue(&self.shared).len()
    }

    /// The accounting report for `tenant`, if registered.
    pub fn tenant_report(&self, tenant: &str) -> Option<TenantReport> {
        self.shared.registry.get(tenant).map(|t| t.report())
    }

    /// All registered tenant ids, sorted.
    pub fn tenants(&self) -> Vec<String> {
        self.shared.registry.ids()
    }

    /// Graceful shutdown: waits for every admitted job to finish, stops
    /// the workers, and returns all outcomes in submission order.
    pub fn shutdown(mut self) -> Vec<JobOutcome> {
        self.wait_idle();
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            // A worker that panicked outside the catch_unwind guard has
            // already lost its jobs; joining the poisoned handle must not
            // take the server down with it.
            let _ = handle.join();
        }
        let outcomes = lock_outcomes(&self.shared);
        let mut all: Vec<JobOutcome> = outcomes.values().cloned().collect();
        all.sort_by_key(|o| o.id);
        all
    }
}

fn retry_after_hint(queue_len: usize, workers: usize) -> u64 {
    // Deterministic pressure-proportional hint: one base unit per queued
    // job per worker. Clients treat it as a floor, not a promise.
    RETRY_AFTER_BASE_MS * (1 + queue_len as u64 / workers.max(1) as u64)
}

fn check_blob_header(
    op: &'static str,
    bytes: &[u8],
    want_tag: ObjectTag,
    tenant: &TenantState,
) -> FheResult<()> {
    let (tag, fingerprint) = peek_header(op, bytes)?;
    if tag != want_tag {
        return Err(FheError::Serialization {
            op,
            reason: format!("expected a {want_tag:?} blob, found {tag:?}"),
        });
    }
    if fingerprint != tenant.fingerprint {
        return Err(FheError::ParamsMismatch {
            op,
            got: fingerprint,
            want: tenant.fingerprint,
        });
    }
    Ok(())
}

fn lock_queue(shared: &Shared) -> std::sync::MutexGuard<'_, AdmissionQueue<QueuedJob>> {
    shared
        .queue
        .lock()
        .expect("admission queue poisoned: a holder panicked mid-update")
}

fn lock_outcomes(shared: &Shared) -> std::sync::MutexGuard<'_, HashMap<u64, JobOutcome>> {
    shared
        .outcomes
        .lock()
        .expect("outcome map poisoned: a holder panicked mid-update")
}

fn worker_loop(shared: &Shared, widx: usize) {
    loop {
        let job = {
            let mut queue = lock_queue(shared);
            loop {
                if let Some((_, job)) = queue.pop_fair() {
                    break job;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared
                    .work_cv
                    .wait(queue)
                    .expect("admission queue poisoned: a holder panicked mid-update");
            }
        };
        let outcome = execute_job(shared, widx, job);
        let mut outcomes = lock_outcomes(shared);
        outcomes.insert(outcome.id.0, outcome);
        shared.pending.fetch_sub(1, Ordering::AcqRel);
        shared.done_cv.notify_all();
    }
}

/// Runs one job to a structured outcome. Nothing escapes: errors map to
/// outcome codes, and a panic in the FHE stack (which would otherwise
/// kill the worker and strand the queue) is contained as
/// [`OutcomeCode::Internal`].
fn execute_job(shared: &Shared, widx: usize, job: QueuedJob) -> JobOutcome {
    let tenant = Arc::clone(&job.tenant);
    let id = job.id;
    let ops_before = OpSnapshot::capture();
    let mut recovery = RecoveryTelemetry::default();
    let mut retries = 0u32;
    let result = catch_unwind(AssertUnwindSafe(|| {
        run_attempts(shared, widx, &job, &mut recovery, &mut retries)
    }))
    .unwrap_or_else(|_| {
        Err((
            OutcomeCode::Internal,
            "worker panicked while executing the job; contained".to_string(),
        ))
    });
    // Op deltas are attributed from the process-global counters: exact
    // with one worker, approximate (interleaved) with several.
    let ops_delta = OpSnapshot::capture().delta_since(&ops_before);
    tenant.absorb(recovery, ops_delta);
    match result {
        Ok(output) => {
            tenant.record_ok();
            JobOutcome {
                id,
                tenant: tenant.id.clone(),
                code: OutcomeCode::Ok,
                output: Some(output),
                detail: String::new(),
                recovery,
                retries,
            }
        }
        Err((code, detail)) => {
            tenant.record_failed();
            JobOutcome {
                id,
                tenant: tenant.id.clone(),
                code,
                output: None,
                detail,
                recovery,
                retries,
            }
        }
    }
}

type AttemptError = (OutcomeCode, String);

fn classify(err: &FheError) -> AttemptError {
    (OutcomeCode::from_error(err), err.to_string())
}

fn run_attempts(
    shared: &Shared,
    widx: usize,
    job: &QueuedJob,
    recovery: &mut RecoveryTelemetry,
    retries: &mut u32,
) -> Result<Vec<u8>, AttemptError> {
    let tenant = &job.tenant;
    let ctx = &*tenant.ctx;
    // The control is checked before any parsing: a job cancelled while
    // queued, or whose deadline elapsed waiting, spends no compute.
    job.control.check("dequeue").map_err(|e| classify(&e))?;

    let program = Program::try_deserialize(&job.spec.program_blob, tenant.fingerprint)
        .map_err(|e| classify(&e))?;
    if program.needs_bootstrapper() {
        return Err((
            OutcomeCode::Unsupported,
            "this server does not host a bootstrapper; bootstrap programs are not served"
                .to_string(),
        ));
    }
    let input = ctx
        .try_deserialize_ciphertext(&job.spec.input_blob)
        .map_err(|e| classify(&e))?;
    let keys = tenant
        .keys
        .get_or_load(ctx, &job.spec.key_blob)
        .map_err(|e| classify(&e))?;

    // Disjoint per-(tenant, worker) directory: the CheckpointStore owner
    // lock never contends across tenants or workers.
    let dir = tenant.checkpoint_root.join(format!("w{widx}"));
    #[cfg(feature = "faults")]
    let mut plan = job.spec.fault_plan.clone();

    let mut attempt = 0u32;
    loop {
        job.control.check("attempt").map_err(|e| classify(&e))?;
        let config = ExecutorConfig {
            checkpoint_every: shared.config.checkpoint_every,
            max_retries: shared.config.executor_retries,
            checkpoint_dir: (shared.config.checkpoint_every > 0).then(|| dir.clone()),
        };
        let mut exec =
            PipelineExecutor::new(ctx, &keys, config).map_err(|e| classify(&e))?;
        exec.set_control(job.control.clone());
        #[cfg(feature = "faults")]
        if let Some(p) = plan.take() {
            exec.set_fault_plan(p);
        }
        let res = if attempt == 0 {
            exec.run(&input, &program)
        } else {
            exec.resume(&input, &program)
        };
        #[cfg(feature = "faults")]
        {
            // Preserve the advanced fault stream across attempts; fired
            // kill points stay fired.
            plan = exec.take_fault_plan();
        }
        recovery.merge(&exec.take_telemetry());
        drop(exec); // releases the checkpoint-dir owner lock

        let verdict: Option<AttemptError> = match res {
            Ok(RunOutcome::Completed(ct)) => return Ok(ctx.serialize_ciphertext(&ct)),
            Ok(RunOutcome::Crashed) => None, // always worth a resume
            Err(err) => {
                let classified = classify(&err);
                if !classified.0.retryable() {
                    return Err(classified);
                }
                Some(classified)
            }
        };
        let exhausted = |why: &str, last: Option<AttemptError>| {
            last.map_or_else(
                || {
                    (
                        OutcomeCode::RetryBudgetExhausted,
                        format!("crashed and {why} before converging"),
                    )
                },
                |(_, detail)| {
                    (
                        OutcomeCode::RetryBudgetExhausted,
                        format!("{why}; last error: {detail}"),
                    )
                },
            )
        };
        if attempt >= shared.config.max_job_retries {
            return Err(exhausted("hit the per-job retry cap", verdict));
        }
        if !tenant.try_spend_retry() {
            return Err(exhausted("exhausted the tenant retry budget", verdict));
        }
        *retries += 1;
        // Exponential backoff, attempt-indexed and bounded; the deadline
        // check at the top of the loop bounds the total wait.
        let backoff = shared.config.backoff_base_ms << attempt.min(6);
        if backoff > 0 {
            std::thread::sleep(Duration::from_millis(backoff));
        }
        attempt += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cl_boot::BootstrapKeys;
    use cl_ckks::{CkksParams, KeySwitchKind};
    use cl_runtime::PipelineOp;
    use rand::SeedableRng;

    fn strict_ctx(limb_bits: u32) -> CkksContext {
        let params = CkksParams::builder()
            .ring_degree(64)
            .levels(4)
            .special_limbs(4)
            .limb_bits(limb_bits)
            .scale_bits(40)
            .build()
            .unwrap();
        CkksContext::new(params)
            .unwrap()
            .with_policy(GuardrailPolicy::Strict {
                min_budget_bits: -60.0,
            })
    }

    fn tmp_root(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cl-server-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    struct Fixture {
        ctx: Arc<CkksContext>,
        program: Program,
        program_blob: Vec<u8>,
        input_blob: Vec<u8>,
        key_blob: Vec<u8>,
        expected: Vec<u8>,
    }

    fn fixture(seed: u64) -> Fixture {
        let ctx = Arc::new(strict_ctx(45));
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = ctx.keygen_sparse(8, &mut rng);
        let keys = BootstrapKeys::generate(&ctx, &sk, KeySwitchKind::Standard, &[1], &mut rng);
        let pt = ctx.encode(&[0.5, -0.25, 0.125], ctx.default_scale(), ctx.max_level());
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let program = Program::new()
            .then(PipelineOp::Square)
            .then(PipelineOp::Rescale)
            .then(PipelineOp::Rotate(1));
        // Serial clean reference on a private executor.
        let mut exec = PipelineExecutor::new(
            &ctx,
            &keys,
            ExecutorConfig {
                checkpoint_every: 0,
                max_retries: 1,
                checkpoint_dir: None,
            },
        )
        .unwrap();
        let expected = match exec.run(&ct, &program).unwrap() {
            RunOutcome::Completed(out) => ctx.serialize_ciphertext(&out),
            other => panic!("reference run did not complete: {other:?}"),
        };
        Fixture {
            program_blob: program.serialize(ctx.params_fingerprint()),
            input_blob: ctx.serialize_ciphertext(&ct),
            key_blob: keys.serialize(&ctx),
            expected,
            ctx,
            program,
        }
    }

    #[test]
    fn submitted_job_completes_bit_identical_to_serial_run() {
        let fx = fixture(11);
        let root = tmp_root("e2e");
        let server = JobServer::start(ServerConfig {
            workers: 2,
            checkpoint_root: root.clone(),
            ..ServerConfig::default()
        })
        .unwrap();
        server.register_tenant("alice", Arc::clone(&fx.ctx)).unwrap();
        let handle = server
            .submit(JobSpec::new(
                "alice",
                fx.program_blob.clone(),
                fx.input_blob.clone(),
                fx.key_blob.clone(),
            ))
            .unwrap();
        let outcome = server.wait(handle.id);
        assert_eq!(outcome.code, OutcomeCode::Ok, "{}", outcome.detail);
        assert_eq!(outcome.output.as_deref(), Some(fx.expected.as_slice()));
        assert_eq!(
            outcome.recovery.ops_executed,
            fx.program.num_micro_ops() as u64
        );
        let report = server.tenant_report("alice").unwrap();
        assert_eq!(report.jobs_ok, 1);
        assert_eq!(report.jobs_failed, 0);
        assert_eq!(report.key_cache.misses, 1);
        let all = server.shutdown();
        assert_eq!(all.len(), 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn admission_rejects_unknown_tenants_and_foreign_blobs() {
        let fx = fixture(13);
        let root = tmp_root("admission");
        let server = JobServer::start(ServerConfig {
            checkpoint_root: root.clone(),
            ..ServerConfig::default()
        })
        .unwrap();
        server.register_tenant("alice", Arc::clone(&fx.ctx)).unwrap();

        let spec = JobSpec::new(
            "nobody",
            fx.program_blob.clone(),
            fx.input_blob.clone(),
            fx.key_blob.clone(),
        );
        assert!(matches!(
            server.submit(spec),
            Err(FheError::InvalidParams { .. })
        ));

        // A program written under another parameter set is refused at the
        // front door, before any payload parse.
        let foreign = fx.program.serialize(fx.ctx.params_fingerprint() ^ 1);
        let spec = JobSpec::new("alice", foreign, fx.input_blob.clone(), fx.key_blob.clone());
        assert!(matches!(
            server.submit(spec),
            Err(FheError::ParamsMismatch { .. })
        ));

        // A ciphertext blob in the program slot is a tag mismatch.
        let spec = JobSpec::new(
            "alice",
            fx.input_blob.clone(),
            fx.input_blob.clone(),
            fx.key_blob.clone(),
        );
        assert!(matches!(
            server.submit(spec),
            Err(FheError::Serialization { .. })
        ));

        assert!(server.shutdown().is_empty());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn tenant_registration_enforces_ids_policy_and_uniqueness() {
        let root = tmp_root("register");
        let server = JobServer::start(ServerConfig {
            checkpoint_root: root.clone(),
            ..ServerConfig::default()
        })
        .unwrap();
        let strict = Arc::new(strict_ctx(45));
        server.register_tenant("t-1", Arc::clone(&strict)).unwrap();
        assert!(matches!(
            server.register_tenant("t-1", Arc::clone(&strict)),
            Err(FheError::InvalidParams { .. })
        ));
        assert!(matches!(
            server.register_tenant("../escape", Arc::clone(&strict)),
            Err(FheError::InvalidParams { .. })
        ));
        let permissive = Arc::new(
            CkksContext::new(
                CkksParams::builder()
                    .ring_degree(64)
                    .levels(3)
                    .special_limbs(3)
                    .limb_bits(40)
                    .scale_bits(32)
                    .build()
                    .unwrap(),
            )
            .unwrap(),
        );
        assert!(matches!(
            server.register_tenant("perm", permissive),
            Err(FheError::InvalidParams { .. })
        ));
        assert_eq!(server.tenants(), vec!["t-1".to_string()]);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }
}
