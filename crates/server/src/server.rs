//! The multi-tenant job server.
//!
//! A fixed pool of worker threads drains a bounded, tenant-fair
//! [`AdmissionQueue`]; every job runs on a [`PipelineExecutor`] under
//! [`cl_ckks::GuardrailPolicy::Strict`] with durable checkpoints, an
//! attached [`RunControl`] (cancellation + deadline), and a server-level
//! retry loop on top of the executor's own restore-and-retry:
//!
//! - an executor attempt that *crashes* (fault-plan kill point) or gives
//!   up with an integrity failure is resumed on a fresh executor from the
//!   newest durable checkpoint, after an exponential backoff, while the
//!   tenant's retry budget lasts;
//! - deterministic rejections (malformed blobs, foreign fingerprints,
//!   guardrail verdicts, cancellation, deadline expiry) fail exactly
//!   once — retrying them would burn budget to reproduce the verdict.
//!
//! Worker threads submit *nothing* across tenant boundaries: the job
//! carries its tenant's context, key cache, and per-`(tenant, job)`
//! checkpoint directory, so one tenant's corrupt blob, injected faults,
//! or mid-job kill cannot perturb another tenant's results (asserted
//! bit-exactly in `tests/server_chaos.rs`).
//!
//! The serving layer is **crash-durable and self-healing**:
//!
//! - every job lifecycle transition is appended to a write-ahead
//!   [`Journal`] before it is acted on, so [`JobServer::recover`] can
//!   restart a killed server, re-admit every acknowledged-but-unfinished
//!   job, and resume each from its durable checkpoint — converging
//!   limb-bit-identically to an uninterrupted run;
//! - a supervisor thread (the **watchdog**) watches per-job heartbeats
//!   and aborts runs whose heartbeat goes stale past the stall budget;
//!   stalled jobs are re-dispatched from their last checkpoint within the
//!   retry budget;
//! - a per-tenant **circuit breaker** quarantines tenants whose jobs keep
//!   failing destructively (integrity failures, panics), rejecting their
//!   submissions at the door with [`FheError::TenantQuarantined`] until a
//!   half-open probe proves them healthy again.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use cl_boot::Bootstrapper;
use cl_ckks::serialize::{peek_header, ObjectTag};
use cl_ckks::{CkksContext, FheError, FheResult, GuardrailPolicy};
use cl_runtime::{
    sweep_checkpoint_dir, ExecutorConfig, PipelineExecutor, Program, RecoveryTelemetry,
    RunControl, RunOutcome,
};
use cl_trace::OpSnapshot;

use crate::job::{Blob, JobId, JobOutcome, JobSpec, OutcomeCode};
use crate::journal::{FsyncPolicy, Journal, JournalReplay};
use crate::queue::{AdmissionQueue, ShedReason};
use crate::tenant::{TenantRegistry, TenantReport, TenantState};

/// Base unit for the retry-after hint returned with an
/// [`FheError::Overloaded`] rejection; scaled by queue pressure.
const RETRY_AFTER_BASE_MS: u64 = 10;

/// Server configuration. The defaults suit tests and smoke runs; a real
/// deployment sizes the queue and budgets to its SLO.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the queue (min 1).
    pub workers: usize,
    /// Global admission bound: queued jobs across all tenants. This is
    /// the server's memory bound — blobs are only held while queued or
    /// running.
    pub queue_capacity: usize,
    /// Per-tenant admission bound (tenant-fair shedding).
    pub tenant_queue_capacity: usize,
    /// Root directory; tenant checkpoint dirs are created beneath it.
    pub checkpoint_root: PathBuf,
    /// Checkpoint cadence forwarded to [`ExecutorConfig`]. `0` disables
    /// durable checkpoints (server retries then restart from the input).
    pub checkpoint_every: u64,
    /// Restore-and-retry budget *inside* one executor attempt.
    pub executor_retries: u32,
    /// Server-level retry units granted to each tenant at registration
    /// (shared across that tenant's jobs).
    pub tenant_retry_budget: u32,
    /// Cap on server-level attempts for a single job, independent of the
    /// tenant budget.
    pub max_job_retries: u32,
    /// Byte budget for each tenant's compact key-bundle cache
    /// (LRU-evicted beyond this). Defaults to `CL_KEYCACHE_BYTES` when
    /// set, else 32 MiB.
    pub key_cache_bytes: usize,
    /// Deadline applied when a [`JobSpec`] does not set one. `None`
    /// means no deadline.
    pub default_deadline: Option<Duration>,
    /// First backoff sleep before a server-level retry; doubles per
    /// attempt (capped at 2^6 multiples).
    pub backoff_base_ms: u64,
    /// Whether to keep the write-ahead job journal (under
    /// `checkpoint_root/journal`). Disabling it trades crash recovery
    /// for zero journaling overhead (benchmark baselines do this).
    pub journal: bool,
    /// When journal appends reach stable storage. Defaults to
    /// `CL_JOURNAL_FSYNC` (`always`, `never`, or a batch size), else
    /// batches of 32.
    pub journal_fsync: FsyncPolicy,
    /// Completed/failed journal entries tolerated before compaction
    /// rewrites live records into a fresh generation file. `0` disables
    /// compaction (the journal grows until restart).
    pub journal_compact_threshold: u64,
    /// Heartbeat staleness past which the watchdog declares a running job
    /// stalled and aborts it for re-dispatch. `Duration::ZERO` disables
    /// the watchdog. Defaults to `CL_STALL_BUDGET_MS`, else 30 s. Must
    /// exceed the longest single micro-op: the watchdog is cooperative
    /// (heartbeats tick at micro-op boundaries), so a genuinely hung
    /// op is detected but only aborted at the next boundary it reaches.
    pub stall_budget: Duration,
    /// Consecutive breaker-class failures (integrity failures, retry
    /// exhaustion, panics) that trip a tenant's circuit breaker. `0`
    /// disables the breaker. Defaults to `CL_BREAKER_THRESHOLD`, else 0.
    pub breaker_threshold: u32,
    /// Base quarantine after a breaker trip; doubles per consecutive
    /// trip (capped at 64×).
    pub breaker_backoff_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            queue_capacity: 64,
            tenant_queue_capacity: 16,
            checkpoint_root: std::env::temp_dir().join("cl-server"),
            checkpoint_every: 4,
            executor_retries: 8,
            tenant_retry_budget: 16,
            max_job_retries: 3,
            key_cache_bytes: std::env::var("CL_KEYCACHE_BYTES")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or(32 << 20),
            default_deadline: None,
            backoff_base_ms: 1,
            journal: true,
            journal_fsync: FsyncPolicy::from_env(),
            journal_compact_threshold: 256,
            stall_budget: Duration::from_millis(
                std::env::var("CL_STALL_BUDGET_MS")
                    .ok()
                    .and_then(|v| v.trim().parse::<u64>().ok())
                    .unwrap_or(30_000),
            ),
            breaker_threshold: std::env::var("CL_BREAKER_THRESHOLD")
                .ok()
                .and_then(|v| v.trim().parse::<u32>().ok())
                .unwrap_or(0),
            breaker_backoff_ms: 100,
        }
    }
}

/// A submitted job's handle: its id plus the shared [`RunControl`], so
/// the submitter can cancel while the job is queued or mid-run.
#[derive(Debug, Clone)]
pub struct JobHandle {
    /// The server-assigned job id.
    pub id: JobId,
    control: RunControl,
}

impl JobHandle {
    /// Requests cancellation; takes effect at the next micro-op boundary
    /// (or immediately if the job is still queued).
    pub fn cancel(&self) {
        self.control.cancel();
    }
}

struct QueuedJob {
    id: JobId,
    spec: JobSpec,
    control: RunControl,
    tenant: Arc<TenantState>,
    /// Set for journal-recovered jobs: the first attempt resumes from the
    /// durable checkpoint instead of running from pc 0.
    resume_first: bool,
}

/// What the watchdog needs to know about a job a worker is executing.
struct RunningJob {
    control: RunControl,
    tenant: Arc<TenantState>,
}

struct Shared {
    config: ServerConfig,
    queue: Mutex<AdmissionQueue<QueuedJob>>,
    work_cv: Condvar,
    registry: TenantRegistry,
    /// Completed outcomes by raw job id; pending decrements happen under
    /// this lock so `wait`/`wait_idle` never miss a wakeup.
    outcomes: Mutex<HashMap<u64, JobOutcome>>,
    done_cv: Condvar,
    /// Jobs admitted but not yet finished (queued + running).
    pending: AtomicUsize,
    shutdown: AtomicBool,
    /// Simulated crash ([`JobServer::kill`]): workers stop immediately
    /// and discard in-flight work without journaling or publishing it.
    crashed: AtomicBool,
    /// The write-ahead job journal, when enabled.
    journal: Option<Mutex<Journal>>,
    /// Jobs currently executing, by raw id — the watchdog's scan set.
    running: Mutex<HashMap<u64, RunningJob>>,
    /// Parked supervisor thread; notified at shutdown so it exits without
    /// waiting out its tick.
    supervisor_lock: Mutex<()>,
    supervisor_cv: Condvar,
}

/// The multi-tenant job server. See the module docs for the scheduling
/// and isolation model.
pub struct JobServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    next_id: AtomicU64,
}

/// One tenant's identity for [`JobServer::recover`]: contexts (and
/// hosted bootstrappers) are process resources that cannot be journaled,
/// so the operator supplies them again at restart.
pub struct TenantSetup {
    /// Tenant id, as originally registered.
    pub id: String,
    /// The tenant's parameter context (must match the original:
    /// fingerprint checks reject recovered blobs otherwise).
    pub ctx: Arc<CkksContext>,
    /// Bootstrapper hosted for the tenant, when it serves bootstrap
    /// programs.
    pub bootstrapper: Option<Arc<Bootstrapper>>,
}

/// What [`JobServer::recover`] found and did.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Journal records replayed (checksum-verified).
    pub records_replayed: u64,
    /// Journal records skipped as torn or corrupt.
    pub records_skipped: u64,
    /// Unfinished jobs re-admitted for execution.
    pub jobs_resumed: u64,
    /// Jobs whose terminal outcome was reconstructed from the journal.
    pub jobs_already_complete: u64,
    /// Unfinished jobs that could not be re-admitted (tenant not
    /// re-registered, or referenced blobs lost); each gets a structured
    /// failure outcome instead of silently vanishing.
    pub jobs_orphaned: u64,
    /// Orphaned per-job checkpoint directories garbage-collected.
    pub checkpoint_dirs_swept: u64,
}

impl JobServer {
    /// Starts the worker pool. An existing journal under the checkpoint
    /// root is kept and appended to but **not** replayed — restarting
    /// after a crash goes through [`JobServer::recover`] instead.
    ///
    /// # Errors
    ///
    /// [`FheError::Serialization`] when the checkpoint root or journal
    /// cannot be created.
    pub fn start(config: ServerConfig) -> FheResult<Self> {
        Self::start_inner(config).map(|(server, _)| server)
    }

    fn start_inner(config: ServerConfig) -> FheResult<(Self, JournalReplay)> {
        std::fs::create_dir_all(&config.checkpoint_root).map_err(|e| {
            FheError::Serialization {
                op: "server_start",
                reason: format!(
                    "cannot create checkpoint root {}: {e}",
                    config.checkpoint_root.display()
                ),
            }
        })?;
        let (journal, replay) = if config.journal {
            let (journal, replay) = Journal::open(
                &config.checkpoint_root.join("journal"),
                config.journal_fsync,
                config.journal_compact_threshold,
            )?;
            (Some(Mutex::new(journal)), replay)
        } else {
            (None, JournalReplay::default())
        };
        let workers = config.workers.max(1);
        let watchdog = config.stall_budget > Duration::ZERO;
        let shared = Arc::new(Shared {
            queue: Mutex::new(AdmissionQueue::new(
                config.queue_capacity,
                config.tenant_queue_capacity,
            )),
            work_cv: Condvar::new(),
            registry: TenantRegistry::default(),
            outcomes: Mutex::new(HashMap::new()),
            done_cv: Condvar::new(),
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
            journal,
            running: Mutex::new(HashMap::new()),
            supervisor_lock: Mutex::new(()),
            supervisor_cv: Condvar::new(),
            config,
        });
        let handles = (0..workers)
            .map(|widx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cl-server-w{widx}"))
                    .spawn(move || worker_loop(&shared, widx))
                    .map_err(|e| FheError::Serialization {
                        op: "server_start",
                        reason: format!("cannot spawn worker {widx}: {e}"),
                    })
            })
            .collect::<FheResult<Vec<_>>>()?;
        let supervisor = if watchdog {
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("cl-server-watchdog".to_string())
                    .spawn(move || supervisor_loop(&shared))
                    .map_err(|e| FheError::Serialization {
                        op: "server_start",
                        reason: format!("cannot spawn watchdog: {e}"),
                    })?,
            )
        } else {
            None
        };
        Ok((
            Self {
                shared,
                workers: handles,
                supervisor,
                next_id: AtomicU64::new(0),
            },
            replay,
        ))
    }

    /// Restarts a server from its durable state: replays the write-ahead
    /// journal under `config.checkpoint_root`, reconstructs outcomes for
    /// jobs that finished before the crash, re-admits every
    /// acknowledged-but-unfinished job (keeping its original [`JobId`]),
    /// and resumes each from its durable checkpoint via the executor's
    /// binding-digest machinery — converging limb-bit-identically to an
    /// uninterrupted run. Orphaned per-job checkpoint directories (jobs
    /// the journal shows finished, or that no longer exist) are swept.
    ///
    /// Tenants must be re-registered through `tenants`: contexts and
    /// bootstrappers are process resources the journal cannot carry.
    /// Unfinished jobs of tenants *not* in `tenants` get a structured
    /// [`OutcomeCode::Internal`] failure outcome. Recovered deadlines
    /// re-arm with their full original budget (wall-clock spent before
    /// the crash is not charged).
    ///
    /// # Errors
    ///
    /// [`FheError::Serialization`] when the root or journal cannot be
    /// opened, plus anything [`JobServer::register_tenant`] rejects.
    /// Journal damage is *not* an error: torn or flipped records are
    /// skipped and counted in the report.
    pub fn recover(
        config: ServerConfig,
        tenants: &[TenantSetup],
    ) -> FheResult<(Self, RecoveryReport)> {
        let (server, replay) = Self::start_inner(config)?;
        let mut report = RecoveryReport {
            records_replayed: replay.records_replayed,
            records_skipped: replay.records_skipped,
            ..RecoveryReport::default()
        };
        for setup in tenants {
            server.register_tenant_inner(
                &setup.id,
                Arc::clone(&setup.ctx),
                setup.bootstrapper.clone(),
            )?;
        }
        let shared = &server.shared;
        let mut live_by_tenant: HashMap<String, HashSet<u64>> = HashMap::new();
        let mut max_id = 0u64;
        let mut resumed = 0usize;
        for job in &replay.jobs {
            max_id = max_id.max(job.id);
            if let Some(done) = &job.outcome {
                let code = OutcomeCode::from_u16(done.code).unwrap_or(OutcomeCode::Internal);
                insert_recovered_outcome(
                    shared,
                    job.id,
                    &job.tenant,
                    code,
                    done.output.clone(),
                    done.detail.clone(),
                );
                report.jobs_already_complete += 1;
                continue;
            }
            let Some(tenant) = (job.admitted).then(|| shared.registry.get(&job.tenant)).flatten()
            else {
                insert_recovered_outcome(
                    shared,
                    job.id,
                    &job.tenant,
                    OutcomeCode::Internal,
                    None,
                    "job could not be recovered: tenant not re-registered after restart"
                        .to_string(),
                );
                report.jobs_orphaned += 1;
                continue;
            };
            let (Some(program_blob), Some(input_blob), Some(key_blob)) = (
                replay.blobs.get(&job.program_digest),
                replay.blobs.get(&job.input_digest),
                replay.blobs.get(&job.key_digest),
            ) else {
                insert_recovered_outcome(
                    shared,
                    job.id,
                    &job.tenant,
                    OutcomeCode::IntegrityFailure,
                    None,
                    "job could not be recovered: a journaled blob was lost to corruption"
                        .to_string(),
                );
                report.jobs_orphaned += 1;
                continue;
            };
            let deadline = job.deadline_ms.map(Duration::from_millis);
            let control = match deadline {
                Some(d) => RunControl::with_deadline(d),
                None => RunControl::new(),
            };
            // Replay already verified each blob against its digest key, so
            // the reconstructed blobs carry their digests pre-seeded and
            // resumed jobs never re-hash them.
            let spec = JobSpec {
                tenant: job.tenant.clone(),
                program_blob: Blob::with_digest(program_blob.clone(), job.program_digest),
                input_blob: Blob::with_digest(input_blob.clone(), job.input_digest),
                key_blob: Blob::with_digest(key_blob.clone(), job.key_digest),
                deadline,
                #[cfg(feature = "faults")]
                fault_plan: None,
            };
            live_by_tenant
                .entry(job.tenant.clone())
                .or_default()
                .insert(job.id);
            let queued = QueuedJob {
                id: JobId(job.id),
                spec,
                control,
                tenant: Arc::clone(&tenant),
                // Never dispatched = no checkpoint can exist; a fresh run
                // skips the (harmless but pointless) store probe.
                resume_first: job.dispatched,
            };
            // Capacity bounds do not apply: these jobs were already
            // admitted (and acknowledged) in their first life.
            lock_queue(shared).force_push(&tenant.id, queued);
            shared.pending.fetch_add(1, Ordering::AcqRel);
            resumed += 1;
            report.jobs_resumed += 1;
        }
        server.next_id.store(max_id + 1, Ordering::Release);
        // GC: any `job-<id>` checkpoint dir not owned by a re-admitted
        // job belongs to a finished or vanished one.
        for setup in tenants {
            if let Some(tenant) = shared.registry.get(&setup.id) {
                let keep = live_by_tenant.get(&setup.id);
                report.checkpoint_dirs_swept += sweep_job_dirs(&tenant.checkpoint_root, keep);
            }
        }
        if resumed > 0 {
            shared.work_cv.notify_all();
        }
        Ok((server, report))
    }

    /// Registers a tenant under `id` with its parameter context. The
    /// context fixes the fingerprint every blob the tenant submits must
    /// carry.
    ///
    /// # Errors
    ///
    /// [`FheError::InvalidParams`] for a duplicate id, an id that is not
    /// directory-name safe (`[A-Za-z0-9._-]+`), or a context not running
    /// [`GuardrailPolicy::Strict`] (the executor refuses anything else).
    /// [`FheError::Serialization`] when the tenant checkpoint directory
    /// cannot be created.
    pub fn register_tenant(&self, id: &str, ctx: Arc<CkksContext>) -> FheResult<()> {
        self.register_tenant_inner(id, ctx, None)
    }

    /// Like [`JobServer::register_tenant`], additionally hosting a
    /// bootstrapper for the tenant so its programs may contain bootstrap
    /// ops (without one they are rejected as
    /// [`OutcomeCode::Unsupported`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`JobServer::register_tenant`].
    pub fn register_tenant_with_bootstrapper(
        &self,
        id: &str,
        ctx: Arc<CkksContext>,
        booter: Arc<Bootstrapper>,
    ) -> FheResult<()> {
        self.register_tenant_inner(id, ctx, Some(booter))
    }

    fn register_tenant_inner(
        &self,
        id: &str,
        ctx: Arc<CkksContext>,
        booter: Option<Arc<Bootstrapper>>,
    ) -> FheResult<()> {
        if id.is_empty()
            || !id
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        {
            return Err(FheError::InvalidParams {
                op: "register_tenant",
                reason: format!("tenant id {id:?} is not directory-name safe"),
            });
        }
        if !matches!(ctx.policy(), GuardrailPolicy::Strict { .. }) {
            return Err(FheError::InvalidParams {
                op: "register_tenant",
                reason: "served contexts must run GuardrailPolicy::Strict \
                         (fault recovery needs detection)"
                    .into(),
            });
        }
        let root = self.shared.config.checkpoint_root.join(id);
        std::fs::create_dir_all(&root).map_err(|e| FheError::Serialization {
            op: "register_tenant",
            reason: format!("cannot create tenant dir {}: {e}", root.display()),
        })?;
        let mut state = TenantState::new(
            id.to_string(),
            ctx,
            root,
            self.shared.config.key_cache_bytes,
            self.shared.config.tenant_retry_budget,
        );
        if let Some(booter) = booter {
            state.set_booter(booter);
        }
        state.set_breaker(
            self.shared.config.breaker_threshold,
            self.shared.config.breaker_backoff_ms,
        );
        if !self.shared.registry.insert(Arc::new(state)) {
            return Err(FheError::InvalidParams {
                op: "register_tenant",
                reason: format!("tenant {id:?} is already registered"),
            });
        }
        Ok(())
    }

    /// Submits a job. Admission is synchronous and cheap: tenant lookup,
    /// header pre-checks on all three blobs (magic, tag, fingerprint —
    /// no payload parse), then a bounded enqueue. The deadline clock
    /// starts *now*, so queue wait counts against it.
    ///
    /// # Errors
    ///
    /// [`FheError::Overloaded`] with a retry-after hint when the global
    /// or per-tenant queue bound is hit (the job was not enqueued and no
    /// memory is retained); [`FheError::TenantQuarantined`] when the
    /// tenant's circuit breaker is open; [`FheError::InvalidParams`] for
    /// an unknown tenant; [`FheError::Serialization`] /
    /// [`FheError::ParamsMismatch`] when a blob header fails the
    /// pre-check.
    pub fn submit(&self, spec: JobSpec) -> FheResult<JobHandle> {
        let shared = &self.shared;
        let tenant = shared.registry.get(&spec.tenant).ok_or_else(|| {
            FheError::InvalidParams {
                op: "submit",
                reason: format!("unknown tenant {:?}", spec.tenant),
            }
        })?;
        if let Err(retry_after_ms) = tenant.breaker_admit() {
            return Err(FheError::TenantQuarantined {
                op: "submit",
                retry_after_ms,
            });
        }
        Program::peek(&spec.program_blob, tenant.fingerprint)?;
        check_blob_header("submit_input", &spec.input_blob, ObjectTag::Ciphertext, &tenant)?;
        check_blob_header("submit_keys", &spec.key_blob, ObjectTag::BootstrapKeys, &tenant)?;

        let budget = spec.deadline.or(shared.config.default_deadline);
        let control = match budget {
            Some(d) => RunControl::with_deadline(d),
            None => RunControl::new(),
        };
        let id = JobId(self.next_id.fetch_add(1, Ordering::Relaxed));
        // Write-ahead: the admission is durable *before* the handle is
        // returned, so an acknowledged job survives a crash. Blobs are
        // journaled digest-deduplicated (a tenant's jobs typically share
        // key/program blobs, priced once).
        if let Some(journal) = &shared.journal {
            let mut j = lock_journal(journal);
            let program_digest =
                j.append_blob_with_digest(&spec.program_blob, spec.program_blob.digest())?;
            let input_digest =
                j.append_blob_with_digest(&spec.input_blob, spec.input_blob.digest())?;
            let key_digest = j.append_blob_with_digest(&spec.key_blob, spec.key_blob.digest())?;
            j.append_admitted(
                id.0,
                &tenant.id,
                budget.map(|d| d.as_millis() as u64),
                program_digest,
                input_digest,
                key_digest,
            )?;
        }
        let job = QueuedJob {
            id,
            spec,
            control: control.clone(),
            tenant: Arc::clone(&tenant),
            resume_first: false,
        };
        {
            let mut queue = lock_queue(shared);
            if let Err((_, reason)) = queue.try_push(&tenant.id, job) {
                let qlen = queue.len();
                drop(queue);
                tenant.record_shed();
                let op = match reason {
                    ShedReason::GlobalFull => "submit",
                    ShedReason::TenantFull => "submit_tenant",
                };
                let err = FheError::Overloaded {
                    op,
                    retry_after_ms: retry_after_hint(qlen, shared.config.workers),
                };
                // Close the journal entry out so replay does not
                // resurrect a job the client was told was shed.
                if let Some(journal) = &shared.journal {
                    let _ = lock_journal(journal).append_failed(
                        id.0,
                        OutcomeCode::Overloaded.as_u16(),
                        &err.to_string(),
                    );
                }
                return Err(err);
            }
        }
        shared.pending.fetch_add(1, Ordering::AcqRel);
        shared.work_cv.notify_one();
        Ok(JobHandle { id, control })
    }

    /// Blocks until job `id` finishes and returns its outcome. Returns
    /// immediately if it already finished. Panics-free: an id this server
    /// never issued blocks forever, so callers pass handles they got from
    /// [`JobServer::submit`].
    pub fn wait(&self, id: JobId) -> JobOutcome {
        let mut outcomes = lock_outcomes(&self.shared);
        loop {
            if let Some(out) = outcomes.get(&id.0) {
                return out.clone();
            }
            outcomes = self
                .shared
                .done_cv
                .wait(outcomes)
                .expect("outcome map poisoned: a holder panicked mid-update");
        }
    }

    /// Blocks until every admitted job has an outcome.
    pub fn wait_idle(&self) {
        let mut outcomes = lock_outcomes(&self.shared);
        while self.shared.pending.load(Ordering::Acquire) > 0 {
            outcomes = self
                .shared
                .done_cv
                .wait(outcomes)
                .expect("outcome map poisoned: a holder panicked mid-update");
        }
        drop(outcomes);
    }

    /// The outcome of `id`, if it has finished.
    pub fn outcome(&self, id: JobId) -> Option<JobOutcome> {
        lock_outcomes(&self.shared).get(&id.0).cloned()
    }

    /// Jobs admitted but not yet finished.
    pub fn pending(&self) -> usize {
        self.shared.pending.load(Ordering::Acquire)
    }

    /// Jobs currently queued (admitted, not yet picked up).
    pub fn queued(&self) -> usize {
        lock_queue(&self.shared).len()
    }

    /// The accounting report for `tenant`, if registered.
    pub fn tenant_report(&self, tenant: &str) -> Option<TenantReport> {
        self.shared.registry.get(tenant).map(|t| t.report())
    }

    /// All registered tenant ids, sorted.
    pub fn tenants(&self) -> Vec<String> {
        self.shared.registry.ids()
    }

    /// Graceful shutdown: waits for every admitted job to finish, stops
    /// the workers and watchdog, flushes the journal, sweeps leftover
    /// per-job checkpoint directories, and returns all outcomes in
    /// submission order.
    pub fn shutdown(mut self) -> Vec<JobOutcome> {
        self.wait_idle();
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work_cv.notify_all();
        self.shared.supervisor_cv.notify_all();
        for handle in self.workers.drain(..) {
            // A worker that panicked outside the catch_unwind guard has
            // already lost its jobs; joining the poisoned handle must not
            // take the server down with it.
            let _ = handle.join();
        }
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
        if let Some(journal) = &self.shared.journal {
            let _ = lock_journal(journal).sync();
        }
        // Every admitted job has an outcome, so every per-job checkpoint
        // dir is garbage (the per-completion sweep handles the common
        // case; this catches dirs left by a *previous* incarnation whose
        // jobs have since been journaled complete).
        for id in self.shared.registry.ids() {
            if let Some(tenant) = self.shared.registry.get(&id) {
                sweep_job_dirs(&tenant.checkpoint_root, None);
            }
        }
        let outcomes = lock_outcomes(&self.shared);
        let mut all: Vec<JobOutcome> = outcomes.values().cloned().collect();
        all.sort_by_key(|o| o.id);
        all
    }

    /// Simulated hard crash, for chaos tests: stops the server *without*
    /// draining the queue, publishing in-flight outcomes, journaling
    /// completions, or sweeping checkpoints — exactly the state a
    /// `kill -9` would leave on disk, minus the process exit. In-flight
    /// jobs are cancelled so their worker threads can be joined (a real
    /// crash would not wait even for that). Follow with
    /// [`JobServer::recover`] on the same checkpoint root.
    pub fn kill(mut self) {
        self.shared.crashed.store(true, Ordering::Release);
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let running = lock_running(&self.shared);
            for entry in running.values() {
                entry.control.cancel();
            }
        }
        self.shared.work_cv.notify_all();
        self.shared.supervisor_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
        // The journal file is left exactly as-is: an unsynced tail may be
        // torn, which is the condition recover() is built to absorb.
    }
}

/// Publishes an outcome reconstructed at recovery (journal-replayed
/// terminal records and orphaned jobs). Pending is untouched: these jobs
/// are born terminal in this incarnation.
fn insert_recovered_outcome(
    shared: &Shared,
    id: u64,
    tenant: &str,
    code: OutcomeCode,
    output: Option<Vec<u8>>,
    detail: String,
) {
    let outcome = JobOutcome {
        id: JobId(id),
        tenant: tenant.to_string(),
        code,
        output,
        detail,
        recovery: RecoveryTelemetry::default(),
        retries: 0,
    };
    lock_outcomes(shared).insert(id, outcome);
}

fn retry_after_hint(queue_len: usize, workers: usize) -> u64 {
    // Deterministic pressure-proportional hint: one base unit per queued
    // job per worker. Clients treat it as a floor, not a promise.
    RETRY_AFTER_BASE_MS * (1 + queue_len as u64 / workers.max(1) as u64)
}

fn check_blob_header(
    op: &'static str,
    bytes: &[u8],
    want_tag: ObjectTag,
    tenant: &TenantState,
) -> FheResult<()> {
    let (tag, fingerprint) = peek_header(op, bytes)?;
    if tag != want_tag {
        return Err(FheError::Serialization {
            op,
            reason: format!("expected a {want_tag:?} blob, found {tag:?}"),
        });
    }
    if fingerprint != tenant.fingerprint {
        return Err(FheError::ParamsMismatch {
            op,
            got: fingerprint,
            want: tenant.fingerprint,
        });
    }
    Ok(())
}

fn lock_queue(shared: &Shared) -> std::sync::MutexGuard<'_, AdmissionQueue<QueuedJob>> {
    shared
        .queue
        .lock()
        .expect("admission queue poisoned: a holder panicked mid-update")
}

fn lock_outcomes(shared: &Shared) -> std::sync::MutexGuard<'_, HashMap<u64, JobOutcome>> {
    shared
        .outcomes
        .lock()
        .expect("outcome map poisoned: a holder panicked mid-update")
}

fn lock_journal(journal: &Mutex<Journal>) -> std::sync::MutexGuard<'_, Journal> {
    journal
        .lock()
        .expect("journal poisoned: a holder panicked mid-append")
}

fn lock_running(shared: &Shared) -> std::sync::MutexGuard<'_, HashMap<u64, RunningJob>> {
    shared
        .running
        .lock()
        .expect("running set poisoned: a holder panicked mid-update")
}

/// Removes `job-<id>` checkpoint directories under `root`, keeping those
/// whose id is in `keep`. Returns how many were actually removed
/// ([`sweep_checkpoint_dir`] refuses dirs whose owner lock names a live
/// process).
fn sweep_job_dirs(root: &Path, keep: Option<&HashSet<u64>>) -> u64 {
    let Ok(entries) = std::fs::read_dir(root) else {
        return 0;
    };
    let mut swept = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(id) = name
            .to_string_lossy()
            .strip_prefix("job-")
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        if keep.is_some_and(|live| live.contains(&id)) {
            continue;
        }
        let path = entry.path();
        if path.is_dir() && sweep_checkpoint_dir(&path) {
            swept += 1;
        }
    }
    swept
}

/// The watchdog: periodically scans running jobs' heartbeats and marks
/// any stale past the stall budget as stalled (aborting the run at its
/// next micro-op boundary; the server-level retry loop then re-dispatches
/// from the last durable checkpoint).
fn supervisor_loop(shared: &Shared) {
    let budget_ms = (shared.config.stall_budget.as_millis() as u64).max(1);
    let tick = Duration::from_millis((budget_ms / 4).clamp(5, 1_000));
    let mut guard = shared
        .supervisor_lock
        .lock()
        .expect("supervisor lock poisoned: a holder panicked mid-wait");
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        guard = shared
            .supervisor_cv
            .wait_timeout(guard, tick)
            .expect("supervisor lock poisoned: a holder panicked mid-wait")
            .0;
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let running = lock_running(shared);
        for entry in running.values() {
            let stale = entry.control.millis_since_heartbeat();
            if stale >= budget_ms && entry.control.mark_stalled(stale) {
                entry.tenant.record_stall();
            }
        }
    }
}

fn worker_loop(shared: &Shared, _widx: usize) {
    loop {
        let job = {
            let mut queue = lock_queue(shared);
            loop {
                // A simulated crash abandons the queue mid-flight; a
                // graceful shutdown only stops once the queue is drained.
                if shared.crashed.load(Ordering::Acquire) {
                    return;
                }
                if let Some((_, job)) = queue.pop_fair() {
                    break job;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared
                    .work_cv
                    .wait(queue)
                    .expect("admission queue poisoned: a holder panicked mid-update");
            }
        };
        let id = job.id;
        let tenant = Arc::clone(&job.tenant);
        let ckpt_dir = tenant.checkpoint_root.join(format!("job-{}", id.0));
        if let Some(journal) = &shared.journal {
            // Best-effort: a failed dispatch append degrades recovery
            // precision (the job replays from pc 0), never correctness.
            let _ = lock_journal(journal).append_dispatched(id.0);
        }
        // First heartbeat *before* the watchdog can see the job: a job
        // that waited in the queue longer than the stall budget must not
        // be born stalled.
        job.control.beat();
        lock_running(shared).insert(
            id.0,
            RunningJob {
                control: job.control.clone(),
                tenant: Arc::clone(&tenant),
            },
        );
        let outcome = execute_job(shared, job);
        lock_running(shared).remove(&id.0);
        if shared.crashed.load(Ordering::Acquire) {
            // Simulated crash: in-memory results die with the process.
            // Nothing is journaled or published; recover() re-runs the
            // job from its durable checkpoint.
            return;
        }
        // Write-ahead ordering: the terminal record is durable before the
        // outcome becomes observable. A crash between the two re-runs the
        // job's outcome reconstruction at recovery, never loses it.
        if let Some(journal) = &shared.journal {
            let mut j = lock_journal(journal);
            let res = match (&outcome.code, &outcome.output) {
                (OutcomeCode::Ok, Some(output)) => j.append_completed(id.0, output),
                _ => j.append_failed(id.0, outcome.code.as_u16(), &outcome.detail),
            };
            let _ = res; // journal write failure must not strand the job
        }
        tenant.breaker_record(outcome.code);
        // The job is terminal; its checkpoints are garbage.
        let _ = sweep_checkpoint_dir(&ckpt_dir);
        let mut outcomes = lock_outcomes(shared);
        outcomes.insert(outcome.id.0, outcome);
        shared.pending.fetch_sub(1, Ordering::AcqRel);
        shared.done_cv.notify_all();
    }
}

/// Runs one job to a structured outcome. Nothing escapes: errors map to
/// outcome codes, and a panic in the FHE stack (which would otherwise
/// kill the worker and strand the queue) is contained as
/// [`OutcomeCode::Internal`].
fn execute_job(shared: &Shared, job: QueuedJob) -> JobOutcome {
    let tenant = Arc::clone(&job.tenant);
    let id = job.id;
    let ops_before = OpSnapshot::capture();
    let mut recovery = RecoveryTelemetry::default();
    let mut retries = 0u32;
    let result = catch_unwind(AssertUnwindSafe(|| {
        run_attempts(shared, &job, &mut recovery, &mut retries)
    }))
    .unwrap_or_else(|_| {
        Err((
            OutcomeCode::Internal,
            "worker panicked while executing the job; contained".to_string(),
        ))
    });
    // Op deltas are attributed from the process-global counters: exact
    // with one worker, approximate (interleaved) with several.
    let ops_delta = OpSnapshot::capture().delta_since(&ops_before);
    tenant.absorb(recovery, ops_delta);
    match result {
        Ok(output) => {
            tenant.record_ok();
            JobOutcome {
                id,
                tenant: tenant.id.clone(),
                code: OutcomeCode::Ok,
                output: Some(output),
                detail: String::new(),
                recovery,
                retries,
            }
        }
        Err((code, detail)) => {
            tenant.record_failed();
            JobOutcome {
                id,
                tenant: tenant.id.clone(),
                code,
                output: None,
                detail,
                recovery,
                retries,
            }
        }
    }
}

type AttemptError = (OutcomeCode, String);

fn classify(err: &FheError) -> AttemptError {
    (OutcomeCode::from_error(err), err.to_string())
}

fn run_attempts(
    shared: &Shared,
    job: &QueuedJob,
    recovery: &mut RecoveryTelemetry,
    retries: &mut u32,
) -> Result<Vec<u8>, AttemptError> {
    let tenant = &job.tenant;
    let ctx = &*tenant.ctx;
    // The control is checked before any parsing: a job cancelled while
    // queued, or whose deadline elapsed waiting, spends no compute.
    job.control.check("dequeue").map_err(|e| classify(&e))?;

    let program = Program::try_deserialize(&job.spec.program_blob, tenant.fingerprint)
        .map_err(|e| classify(&e))?;
    if program.needs_bootstrapper() && tenant.booter.is_none() {
        return Err((
            OutcomeCode::Unsupported,
            "this tenant does not host a bootstrapper; bootstrap programs are not served"
                .to_string(),
        ));
    }
    let input = ctx
        .try_deserialize_ciphertext(&job.spec.input_blob)
        .map_err(|e| classify(&e))?;
    let keys = tenant
        .keys
        .get_or_load_with_digest(ctx, &job.spec.key_blob, job.spec.key_blob.digest())
        .map_err(|e| classify(&e))?;

    // Disjoint per-(tenant, job) directory: the CheckpointStore owner
    // lock never contends, each job's corruption blast radius is itself,
    // and a restarted server can resume exactly this job's checkpoints.
    let dir = tenant.checkpoint_root.join(format!("job-{}", job.id.0));
    #[cfg(feature = "faults")]
    let mut plan = job.spec.fault_plan.clone();

    let mut attempt = 0u32;
    loop {
        job.control.check("attempt").map_err(|e| classify(&e))?;
        let config = ExecutorConfig {
            checkpoint_every: shared.config.checkpoint_every,
            max_retries: shared.config.executor_retries,
            checkpoint_dir: (shared.config.checkpoint_every > 0).then(|| dir.clone()),
        };
        let mut exec =
            PipelineExecutor::new(ctx, &keys, config).map_err(|e| classify(&e))?;
        if let Some(booter) = tenant.booter.as_deref() {
            exec = exec.with_bootstrapper(booter);
        }
        exec.set_control(job.control.clone());
        #[cfg(feature = "faults")]
        if let Some(p) = plan.take() {
            exec.set_fault_plan(p);
        }
        let res = if attempt == 0 && !job.resume_first {
            exec.run(&input, &program)
        } else {
            exec.resume(&input, &program)
        };
        #[cfg(feature = "faults")]
        {
            // Preserve the advanced fault stream across attempts; fired
            // kill points stay fired.
            plan = exec.take_fault_plan();
        }
        recovery.merge(&exec.take_telemetry());
        drop(exec); // releases the checkpoint-dir owner lock

        let verdict: Option<AttemptError> = match res {
            Ok(RunOutcome::Completed(ct)) => return Ok(ctx.serialize_ciphertext(&ct)),
            Ok(RunOutcome::Crashed) => None, // always worth a resume
            Err(err) => {
                let classified = classify(&err);
                if !classified.0.retryable() {
                    return Err(classified);
                }
                Some(classified)
            }
        };
        let exhausted = |why: &str, last: Option<AttemptError>| {
            last.map_or_else(
                || {
                    (
                        OutcomeCode::RetryBudgetExhausted,
                        format!("crashed and {why} before converging"),
                    )
                },
                |(_, detail)| {
                    (
                        OutcomeCode::RetryBudgetExhausted,
                        format!("{why}; last error: {detail}"),
                    )
                },
            )
        };
        if attempt >= shared.config.max_job_retries {
            return Err(exhausted("hit the per-job retry cap", verdict));
        }
        if !tenant.try_spend_retry() {
            return Err(exhausted("exhausted the tenant retry budget", verdict));
        }
        *retries += 1;
        // Exponential backoff, attempt-indexed and bounded; the deadline
        // check at the top of the loop bounds the total wait.
        let backoff = shared.config.backoff_base_ms << attempt.min(6);
        if backoff > 0 {
            std::thread::sleep(Duration::from_millis(backoff));
        }
        // A watchdog stall verdict is consumed by this retry: the mark is
        // cleared (and the heartbeat refreshed) so the resumed attempt
        // starts with a clean slate instead of instantly re-aborting.
        job.control.clear_stall();
        attempt += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cl_boot::BootstrapKeys;
    use cl_ckks::{CkksParams, KeySwitchKind};
    use cl_runtime::PipelineOp;
    use rand::SeedableRng;

    fn strict_ctx(limb_bits: u32) -> CkksContext {
        let params = CkksParams::builder()
            .ring_degree(64)
            .levels(4)
            .special_limbs(4)
            .limb_bits(limb_bits)
            .scale_bits(40)
            .build()
            .unwrap();
        CkksContext::new(params)
            .unwrap()
            .with_policy(GuardrailPolicy::Strict {
                min_budget_bits: -60.0,
            })
    }

    fn tmp_root(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cl-server-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    struct Fixture {
        ctx: Arc<CkksContext>,
        program: Program,
        program_blob: Vec<u8>,
        input_blob: Vec<u8>,
        key_blob: Vec<u8>,
        expected: Vec<u8>,
    }

    fn fixture(seed: u64) -> Fixture {
        let ctx = Arc::new(strict_ctx(45));
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = ctx.keygen_sparse(8, &mut rng);
        let keys = BootstrapKeys::generate(&ctx, &sk, KeySwitchKind::Standard, &[1], &mut rng);
        let pt = ctx.encode(&[0.5, -0.25, 0.125], ctx.default_scale(), ctx.max_level());
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let program = Program::new()
            .then(PipelineOp::Square)
            .then(PipelineOp::Rescale)
            .then(PipelineOp::Rotate(1));
        // Serial clean reference on a private executor.
        let mut exec = PipelineExecutor::new(
            &ctx,
            &keys,
            ExecutorConfig {
                checkpoint_every: 0,
                max_retries: 1,
                checkpoint_dir: None,
            },
        )
        .unwrap();
        let expected = match exec.run(&ct, &program).unwrap() {
            RunOutcome::Completed(out) => ctx.serialize_ciphertext(&out),
            other => panic!("reference run did not complete: {other:?}"),
        };
        Fixture {
            program_blob: program.serialize(ctx.params_fingerprint()),
            input_blob: ctx.serialize_ciphertext(&ct),
            key_blob: keys.serialize(&ctx),
            expected,
            ctx,
            program,
        }
    }

    #[test]
    fn submitted_job_completes_bit_identical_to_serial_run() {
        let fx = fixture(11);
        let root = tmp_root("e2e");
        let server = JobServer::start(ServerConfig {
            workers: 2,
            checkpoint_root: root.clone(),
            ..ServerConfig::default()
        })
        .unwrap();
        server.register_tenant("alice", Arc::clone(&fx.ctx)).unwrap();
        let handle = server
            .submit(JobSpec::new(
                "alice",
                fx.program_blob.clone(),
                fx.input_blob.clone(),
                fx.key_blob.clone(),
            ))
            .unwrap();
        let outcome = server.wait(handle.id);
        assert_eq!(outcome.code, OutcomeCode::Ok, "{}", outcome.detail);
        assert_eq!(outcome.output.as_deref(), Some(fx.expected.as_slice()));
        assert_eq!(
            outcome.recovery.ops_executed,
            fx.program.num_micro_ops() as u64
        );
        let report = server.tenant_report("alice").unwrap();
        assert_eq!(report.jobs_ok, 1);
        assert_eq!(report.jobs_failed, 0);
        assert_eq!(report.key_cache.misses, 1);
        let all = server.shutdown();
        assert_eq!(all.len(), 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn admission_rejects_unknown_tenants_and_foreign_blobs() {
        let fx = fixture(13);
        let root = tmp_root("admission");
        let server = JobServer::start(ServerConfig {
            checkpoint_root: root.clone(),
            ..ServerConfig::default()
        })
        .unwrap();
        server.register_tenant("alice", Arc::clone(&fx.ctx)).unwrap();

        let spec = JobSpec::new(
            "nobody",
            fx.program_blob.clone(),
            fx.input_blob.clone(),
            fx.key_blob.clone(),
        );
        assert!(matches!(
            server.submit(spec),
            Err(FheError::InvalidParams { .. })
        ));

        // A program written under another parameter set is refused at the
        // front door, before any payload parse.
        let foreign = fx.program.serialize(fx.ctx.params_fingerprint() ^ 1);
        let spec = JobSpec::new("alice", foreign, fx.input_blob.clone(), fx.key_blob.clone());
        assert!(matches!(
            server.submit(spec),
            Err(FheError::ParamsMismatch { .. })
        ));

        // A ciphertext blob in the program slot is a tag mismatch.
        let spec = JobSpec::new(
            "alice",
            fx.input_blob.clone(),
            fx.input_blob.clone(),
            fx.key_blob.clone(),
        );
        assert!(matches!(
            server.submit(spec),
            Err(FheError::Serialization { .. })
        ));

        assert!(server.shutdown().is_empty());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn tenant_registration_enforces_ids_policy_and_uniqueness() {
        let root = tmp_root("register");
        let server = JobServer::start(ServerConfig {
            checkpoint_root: root.clone(),
            ..ServerConfig::default()
        })
        .unwrap();
        let strict = Arc::new(strict_ctx(45));
        server.register_tenant("t-1", Arc::clone(&strict)).unwrap();
        assert!(matches!(
            server.register_tenant("t-1", Arc::clone(&strict)),
            Err(FheError::InvalidParams { .. })
        ));
        assert!(matches!(
            server.register_tenant("../escape", Arc::clone(&strict)),
            Err(FheError::InvalidParams { .. })
        ));
        let permissive = Arc::new(
            CkksContext::new(
                CkksParams::builder()
                    .ring_degree(64)
                    .levels(3)
                    .special_limbs(3)
                    .limb_bits(40)
                    .scale_bits(32)
                    .build()
                    .unwrap(),
            )
            .unwrap(),
        );
        assert!(matches!(
            server.register_tenant("perm", permissive),
            Err(FheError::InvalidParams { .. })
        ));
        assert_eq!(server.tenants(), vec!["t-1".to_string()]);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }
}
