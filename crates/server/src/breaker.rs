//! Per-tenant circuit breaker: quarantine tenants whose jobs keep
//! failing in ways that burn server resources.
//!
//! A tenant submitting corrupt blobs (or triggering worker panics) costs
//! the server full executions plus retry budget per job. The breaker
//! watches each tenant's *consecutive* breaker-class outcomes
//! ([`crate::OutcomeCode::IntegrityFailure`], `RetryBudgetExhausted`,
//! `Internal` — i.e. panics) and, past a threshold, trips **open**:
//! admission rejects new jobs immediately with
//! [`cl_ckks::FheError::TenantQuarantined`] and a retry hint, so poisoned
//! traffic is refused at the door instead of occupying workers. After an
//! exponential backoff the breaker goes **half-open** and admits exactly
//! one probe job; a clean probe closes the breaker, another breaker-class
//! failure re-opens it with doubled backoff. Verdicts that say nothing
//! about tenant health (deadline expiry, cancellation, guardrail
//! rejections of honest-but-deep programs, admission sheds) are neutral:
//! they neither trip nor reset the breaker.

use std::time::{Duration, Instant};

use crate::OutcomeCode;

/// How an outcome affects the breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    /// Evidence of tenant health: resets the failure streak.
    Success,
    /// Evidence of a poisoned tenant: extends the streak / re-opens.
    Fault,
    /// Says nothing either way.
    Neutral,
}

fn classify(code: OutcomeCode) -> Class {
    match code {
        OutcomeCode::Ok => Class::Success,
        OutcomeCode::IntegrityFailure
        | OutcomeCode::RetryBudgetExhausted
        | OutcomeCode::Internal => Class::Fault,
        _ => Class::Neutral,
    }
}

#[derive(Debug)]
enum State {
    /// Healthy: admitting everything, counting consecutive faults.
    Closed { consecutive: u32 },
    /// Quarantined until the backoff expires. `trips` counts consecutive
    /// opens and drives the exponential backoff.
    Open { until: Instant, trips: u32 },
    /// One probe job may be in flight; its verdict decides what's next.
    HalfOpen { trips: u32, probing: bool },
}

/// Circuit breaker for one tenant. Not internally synchronized — the
/// owning [`crate::TenantState`] wraps it in a mutex.
#[derive(Debug)]
pub(crate) struct CircuitBreaker {
    /// Consecutive breaker-class failures that trip the breaker; `0`
    /// disables the breaker entirely (always admits, never trips).
    threshold: u32,
    /// Base quarantine duration; doubles per consecutive trip (capped at
    /// `base << 6`).
    backoff_ms: u64,
    state: State,
    total_trips: u64,
}

/// Read-only breaker state for [`crate::TenantReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerReport {
    /// `"closed"`, `"open"`, or `"half-open"`.
    pub state: &'static str,
    /// Consecutive breaker-class failures counted so far (closed state).
    pub consecutive_failures: u32,
    /// Times the breaker has tripped open over the tenant's lifetime.
    pub trips: u64,
    /// Milliseconds of quarantine remaining, when open.
    pub open_for_ms: Option<u64>,
}

impl CircuitBreaker {
    pub(crate) fn new(threshold: u32, backoff_ms: u64) -> Self {
        Self {
            threshold,
            backoff_ms,
            state: State::Closed { consecutive: 0 },
            total_trips: 0,
        }
    }

    /// Gate at admission. `Ok(())` admits; `Err(retry_after_ms)` rejects.
    /// An expired open breaker transitions to half-open here and admits
    /// the calling job as the probe.
    pub(crate) fn admit(&mut self) -> Result<(), u64> {
        if self.threshold == 0 {
            return Ok(());
        }
        match &mut self.state {
            State::Closed { .. } => Ok(()),
            State::Open { until, trips } => {
                let now = Instant::now();
                if now < *until {
                    let remaining = until.duration_since(now).as_millis() as u64;
                    Err(remaining.max(1))
                } else {
                    self.state = State::HalfOpen {
                        trips: *trips,
                        probing: true,
                    };
                    Ok(())
                }
            }
            State::HalfOpen { trips, probing } => {
                if *probing {
                    // One probe at a time; further jobs wait it out.
                    let trips = *trips;
                    Err(self.backoff_for(trips))
                } else {
                    *probing = true;
                    Ok(())
                }
            }
        }
    }

    /// Feeds a finished job's outcome back. Returns `true` when this
    /// outcome tripped the breaker open (for trip counters).
    pub(crate) fn record(&mut self, code: OutcomeCode) -> bool {
        if self.threshold == 0 {
            return false;
        }
        let class = classify(code);
        match &mut self.state {
            State::Closed { consecutive } => match class {
                Class::Success => {
                    *consecutive = 0;
                    false
                }
                Class::Fault => {
                    *consecutive += 1;
                    if *consecutive >= self.threshold {
                        self.trip(1);
                        true
                    } else {
                        false
                    }
                }
                Class::Neutral => false,
            },
            State::HalfOpen { trips, .. } => match class {
                Class::Success => {
                    self.state = State::Closed { consecutive: 0 };
                    false
                }
                Class::Fault => {
                    let next = trips.saturating_add(1);
                    self.trip(next);
                    true
                }
                // The probe's verdict was inconclusive (cancelled, timed
                // out): allow another probe.
                Class::Neutral => {
                    if let State::HalfOpen { probing, .. } = &mut self.state {
                        *probing = false;
                    }
                    false
                }
            },
            // Stragglers admitted before the trip finishing now carry no
            // new information; the half-open probe decides re-closure.
            State::Open { .. } => false,
        }
    }

    pub(crate) fn report(&self) -> BreakerReport {
        match &self.state {
            State::Closed { consecutive } => BreakerReport {
                state: "closed",
                consecutive_failures: *consecutive,
                trips: self.total_trips,
                open_for_ms: None,
            },
            State::Open { until, .. } => BreakerReport {
                state: "open",
                consecutive_failures: 0,
                trips: self.total_trips,
                open_for_ms: Some(
                    until
                        .checked_duration_since(Instant::now())
                        .map_or(0, |d| d.as_millis() as u64),
                ),
            },
            State::HalfOpen { .. } => BreakerReport {
                state: "half-open",
                consecutive_failures: 0,
                trips: self.total_trips,
                open_for_ms: None,
            },
        }
    }

    fn backoff_for(&self, trips: u32) -> u64 {
        // Exponential, capped at base << 6 like the server's retry backoff.
        self.backoff_ms.saturating_mul(1 << trips.saturating_sub(1).min(6))
    }

    fn trip(&mut self, trips: u32) {
        let wait = Duration::from_millis(self.backoff_for(trips));
        self.state = State::Open {
            until: Instant::now() + wait,
            trips,
        };
        self.total_trips += 1;
        cl_trace::record_breaker_trip();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_zero_never_trips() {
        let mut b = CircuitBreaker::new(0, 10);
        for _ in 0..100 {
            assert!(!b.record(OutcomeCode::IntegrityFailure));
            assert!(b.admit().is_ok());
        }
        assert_eq!(b.report().trips, 0);
    }

    #[test]
    fn consecutive_faults_trip_and_successes_reset() {
        let mut b = CircuitBreaker::new(3, 10);
        assert!(!b.record(OutcomeCode::IntegrityFailure));
        assert!(!b.record(OutcomeCode::IntegrityFailure));
        // A success breaks the streak…
        assert!(!b.record(OutcomeCode::Ok));
        assert!(!b.record(OutcomeCode::Internal));
        assert!(!b.record(OutcomeCode::RetryBudgetExhausted));
        // …and neutral outcomes neither trip nor reset.
        assert!(!b.record(OutcomeCode::DeadlineExceeded));
        assert!(b.record(OutcomeCode::IntegrityFailure), "third in a row trips");
        let report = b.report();
        assert_eq!(report.state, "open");
        assert_eq!(report.trips, 1);
        let retry_after = b.admit().expect_err("open breaker rejects");
        assert!(retry_after >= 1);
    }

    #[test]
    fn half_open_probe_closes_on_success_and_reopens_on_fault() {
        let mut b = CircuitBreaker::new(1, 0);
        assert!(b.record(OutcomeCode::IntegrityFailure));
        // Zero backoff: the open window has already expired, so the next
        // admit is the half-open probe.
        assert!(b.admit().is_ok());
        assert_eq!(b.report().state, "half-open");
        // A second job during the probe is still rejected.
        assert!(b.admit().is_err());
        // Probe fails: re-open with another trip counted.
        assert!(b.record(OutcomeCode::IntegrityFailure));
        assert_eq!(b.report().trips, 2);
        // Expired again (zero backoff); next probe succeeds and closes.
        assert!(b.admit().is_ok());
        assert!(!b.record(OutcomeCode::Ok));
        assert_eq!(b.report().state, "closed");
        assert!(b.admit().is_ok());
        assert!(b.admit().is_ok(), "closed breaker admits freely");
    }

    #[test]
    fn neutral_probe_verdict_allows_another_probe() {
        let mut b = CircuitBreaker::new(1, 0);
        assert!(b.record(OutcomeCode::Internal));
        assert!(b.admit().is_ok()); // probe 1
        assert!(!b.record(OutcomeCode::Cancelled)); // inconclusive
        assert_eq!(b.report().state, "half-open");
        assert!(b.admit().is_ok(), "a fresh probe is allowed");
    }

    #[test]
    fn backoff_grows_with_consecutive_trips_and_caps() {
        let b = CircuitBreaker::new(1, 100);
        assert_eq!(b.backoff_for(1), 100);
        assert_eq!(b.backoff_for(2), 200);
        assert_eq!(b.backoff_for(4), 800);
        assert_eq!(b.backoff_for(7), 6_400);
        assert_eq!(b.backoff_for(40), 6_400, "capped at base << 6");
    }
}
