//! Bounded, tenant-fair admission queue.
//!
//! Backpressure is *explicit*: admission fails with a capacity verdict —
//! it never blocks and never grows without bound — so a caller under
//! overload gets an immediate [`crate::OutcomeCode::Overloaded`]-class
//! rejection with a retry hint instead of latency creep followed by OOM.
//!
//! Two bounds are enforced, both deterministic:
//!
//! - a **global** capacity on queued jobs across all tenants (the memory
//!   bound: queued blobs are the dominant held allocation), and
//! - a **per-tenant** capacity, so one chatty tenant saturating the
//!   server sheds *its own* excess first and cannot crowd quieter
//!   tenants out of the shared capacity (tenant-fair shedding).
//!
//! Dequeue is round-robin over tenants in lexicographic order, one job
//! per visit, so service order is independent of arrival interleaving
//! beyond each tenant's own FIFO.

use std::collections::{BTreeMap, VecDeque};

/// Why an admission attempt was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The global queue bound is reached; every tenant is affected.
    GlobalFull,
    /// This tenant's own slice of the queue is full; other tenants are
    /// still being admitted.
    TenantFull,
}

/// A bounded multi-tenant FIFO with round-robin dequeue.
///
/// Not internally synchronized — the server wraps it in a mutex alongside
/// its condition variable.
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    per_tenant: BTreeMap<String, VecDeque<T>>,
    /// Tenant served most recently; the next pop starts strictly after it.
    cursor: Option<String>,
    len: usize,
    capacity: usize,
    tenant_capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// A queue holding at most `capacity` jobs total and
    /// `tenant_capacity` jobs per tenant.
    ///
    /// # Panics
    ///
    /// Panics when either bound is zero — a queue that can never admit is
    /// a configuration error, not a load condition.
    pub fn new(capacity: usize, tenant_capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        assert!(tenant_capacity > 0, "per-tenant capacity must be positive");
        Self {
            per_tenant: BTreeMap::new(),
            cursor: None,
            len: 0,
            capacity,
            tenant_capacity: tenant_capacity.min(capacity),
        }
    }

    /// Jobs currently queued (all tenants).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Jobs currently queued for `tenant`.
    pub fn tenant_len(&self, tenant: &str) -> usize {
        self.per_tenant.get(tenant).map_or(0, VecDeque::len)
    }

    /// Attempts to admit a job for `tenant`. On refusal the job is handed
    /// back untouched along with the shed reason — nothing was enqueued
    /// and no memory is retained.
    ///
    /// # Errors
    ///
    /// [`ShedReason::GlobalFull`] at the global bound,
    /// [`ShedReason::TenantFull`] at the tenant bound.
    pub fn try_push(&mut self, tenant: &str, job: T) -> Result<(), (T, ShedReason)> {
        if self.len >= self.capacity {
            return Err((job, ShedReason::GlobalFull));
        }
        let slot = self.per_tenant.entry(tenant.to_string()).or_default();
        if slot.len() >= self.tenant_capacity {
            return Err((job, ShedReason::TenantFull));
        }
        slot.push_back(job);
        self.len += 1;
        Ok(())
    }

    /// Admits a job for `tenant` bypassing both capacity bounds. Reserved
    /// for restart recovery: a journaled job already passed admission in
    /// its first life, so re-admitting it must never shed — the durability
    /// contract ("acknowledged means it will run") outranks the bounds for
    /// the one burst that replay produces.
    pub fn force_push(&mut self, tenant: &str, job: T) {
        self.per_tenant
            .entry(tenant.to_string())
            .or_default()
            .push_back(job);
        self.len += 1;
    }

    /// Dequeues the next job, round-robin across tenants: the first
    /// non-empty tenant strictly after the previously served one in
    /// lexicographic order (wrapping), then that tenant's oldest job.
    pub fn pop_fair(&mut self) -> Option<(String, T)> {
        if self.len == 0 {
            return None;
        }
        let next_tenant = {
            let after = self
                .cursor
                .as_ref()
                .map_or_else(
                    || self.first_nonempty_from_start(),
                    |served| self.first_nonempty_after(served),
                )?;
            after
        };
        let slot = self
            .per_tenant
            .get_mut(&next_tenant)
            .expect("selected tenant exists: chosen from this map's keys");
        let job = slot
            .pop_front()
            .expect("selected tenant is non-empty by construction");
        self.len -= 1;
        if slot.is_empty() {
            // Keep the map sparse so round-robin scans stay proportional
            // to *active* tenants, not every tenant ever seen.
            self.per_tenant.remove(&next_tenant);
        }
        self.cursor = Some(next_tenant.clone());
        Some((next_tenant, job))
    }

    fn first_nonempty_from_start(&self) -> Option<String> {
        self.per_tenant
            .iter()
            .find(|(_, q)| !q.is_empty())
            .map(|(t, _)| t.clone())
    }

    fn first_nonempty_after(&self, served: &str) -> Option<String> {
        use std::ops::Bound::{Excluded, Unbounded};
        self.per_tenant
            .range::<str, _>((Excluded(served), Unbounded))
            .find(|(_, q)| !q.is_empty())
            .map(|(t, _)| t.clone())
            .or_else(|| self.first_nonempty_from_start())
    }

    /// Drains every queued job in fair order (used at shutdown to give
    /// still-queued jobs a structured `Cancelled` outcome).
    pub fn drain_fair(&mut self) -> Vec<(String, T)> {
        let mut out = Vec::with_capacity(self.len);
        while let Some(item) = self.pop_fair() {
            out.push(item);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_bound_is_enforced_and_reported() {
        let mut q = AdmissionQueue::new(3, 3);
        q.try_push("a", 1).unwrap();
        q.try_push("a", 2).unwrap();
        q.try_push("b", 3).unwrap();
        let (job, why) = q.try_push("c", 4).unwrap_err();
        assert_eq!(job, 4);
        assert_eq!(why, ShedReason::GlobalFull);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn tenant_bound_sheds_the_noisy_tenant_only() {
        let mut q = AdmissionQueue::new(100, 2);
        q.try_push("noisy", 1).unwrap();
        q.try_push("noisy", 2).unwrap();
        let (_, why) = q.try_push("noisy", 3).unwrap_err();
        assert_eq!(why, ShedReason::TenantFull);
        // A quiet tenant is still admitted at the same instant.
        q.try_push("quiet", 10).unwrap();
        assert_eq!(q.tenant_len("noisy"), 2);
        assert_eq!(q.tenant_len("quiet"), 1);
    }

    #[test]
    fn dequeue_is_round_robin_across_tenants() {
        let mut q = AdmissionQueue::new(10, 10);
        for j in 0..3 {
            q.try_push("a", ("a", j)).unwrap();
            q.try_push("b", ("b", j)).unwrap();
        }
        q.try_push("c", ("c", 0)).unwrap();
        let order: Vec<_> = std::iter::from_fn(|| q.pop_fair()).map(|(_, j)| j).collect();
        assert_eq!(
            order,
            vec![
                ("a", 0),
                ("b", 0),
                ("c", 0),
                ("a", 1),
                ("b", 1),
                ("a", 2),
                ("b", 2),
            ]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn force_push_bypasses_both_bounds() {
        let mut q = AdmissionQueue::new(1, 1);
        q.try_push("a", 1).unwrap();
        q.try_push("a", 2).unwrap_err();
        q.force_push("a", 3);
        q.force_push("b", 4);
        assert_eq!(q.len(), 3);
        assert_eq!(q.tenant_len("a"), 2);
        // Recovered jobs still drain in fair order.
        let order: Vec<_> = std::iter::from_fn(|| q.pop_fair()).map(|(_, j)| j).collect();
        assert_eq!(order, vec![1, 4, 3]);
    }

    #[test]
    fn round_robin_survives_tenants_draining_out() {
        let mut q = AdmissionQueue::new(10, 10);
        q.try_push("a", 1).unwrap();
        q.try_push("b", 2).unwrap();
        assert_eq!(q.pop_fair().unwrap().0, "a");
        assert_eq!(q.pop_fair().unwrap().0, "b");
        // Both drained; new work for a later tenant still pops.
        q.try_push("z", 3).unwrap();
        assert_eq!(q.pop_fair().unwrap(), ("z".to_string(), 3));
        assert!(q.pop_fair().is_none());
    }
}
