//! Tenant state: parameter fingerprints, key caches, and accounting.
//!
//! Isolation between tenants is structural, not cooperative:
//!
//! - every tenant's blobs are validated against *its own* registered
//!   params fingerprint, so a blob from tenant A (or a stale deployment)
//!   can never be decoded into tenant B's job;
//! - key bundles live in a per-tenant LRU cache keyed by blob digest —
//!   one tenant's churn evicts only its own entries;
//! - checkpoint directories are disjoint per `(tenant, job)` pair, so the
//!   `CheckpointStore` owner lock never contends across tenants, a
//!   corrupt checkpoint poisons at most one job's retry path, and a
//!   restarted server can resume any journaled job from its own dir;
//! - a per-tenant [`CircuitBreaker`](crate::breaker) quarantines tenants
//!   whose jobs keep failing destructively, without touching the
//!   admission path of healthy tenants.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cl_boot::{BootstrapKeys, Bootstrapper};
use cl_ckks::serialize::fnv1a_fast;
use cl_ckks::{CkksContext, FheResult};
use cl_runtime::RecoveryTelemetry;
use cl_trace::OpSnapshot;

use crate::breaker::{BreakerReport, CircuitBreaker};
use crate::OutcomeCode;

/// Key-cache counters for one tenant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KeyCacheStats {
    /// Lookups served from the parsed cache.
    pub hits: u64,
    /// Lookups that had to deserialize (and integrity-check) the blob.
    pub misses: u64,
    /// Parsed bundles dropped to stay within the cache bound.
    pub evictions: u64,
    /// Bytes of compact key payload currently resident (gauge, not a
    /// counter).
    pub bytes_resident: usize,
}

/// A **bytes-bounded** cache of parsed [`BootstrapKeys`] bundles, keyed by
/// the FNV-1a digest of the serialized blob and evicted
/// least-recently-used. Deserialization (with full checksum/fingerprint
/// verification) is paid once per distinct blob while it stays resident.
///
/// Bundles are resident in their *compact* form (seed + `k0` halves; see
/// [`cl_ckks::CompactKeySwitchKey`]), so the budget counts
/// [`BootstrapKeys::compact_resident_bytes`] — materialized hints live in
/// the process-wide [`cl_ckks::HintCache`] shared across tenants, with
/// per-tenant regen cost attributed through the `hint_regen` op counter.
///
/// Lookups are O(1): a digest-keyed `HashMap` whose nodes form an
/// intrusive doubly-linked recency list (no `Vec` scan, no allocation on
/// a hit).
#[derive(Debug)]
pub struct KeyCache {
    inner: Mutex<KeyCacheInner>,
}

#[derive(Debug)]
struct Node {
    keys: Arc<BootstrapKeys>,
    bytes: usize,
    /// Neighbor toward the MRU end (`None` = this is the head).
    prev: Option<u64>,
    /// Neighbor toward the LRU end (`None` = this is the tail).
    next: Option<u64>,
}

#[derive(Debug)]
struct KeyCacheInner {
    entries: HashMap<u64, Node>,
    /// Most-recently-used digest.
    head: Option<u64>,
    /// Least-recently-used digest (first eviction victim).
    tail: Option<u64>,
    capacity_bytes: usize,
    bytes: usize,
    stats: KeyCacheStats,
}

impl KeyCacheInner {
    /// Detaches `digest` from the recency list (the node stays in the map).
    fn unlink(&mut self, digest: u64) {
        let (prev, next) = {
            let n = &self.entries[&digest];
            (n.prev, n.next)
        };
        match prev {
            Some(p) => {
                if let Some(node) = self.entries.get_mut(&p) {
                    node.next = next;
                }
            }
            None => self.head = next,
        }
        match next {
            Some(nx) => {
                if let Some(node) = self.entries.get_mut(&nx) {
                    node.prev = prev;
                }
            }
            None => self.tail = prev,
        }
    }

    /// Links `digest` in as the new head (must currently be detached).
    fn push_front(&mut self, digest: u64) {
        let old_head = self.head;
        if let Some(node) = self.entries.get_mut(&digest) {
            node.prev = None;
            node.next = old_head;
        }
        if let Some(h) = old_head {
            if let Some(node) = self.entries.get_mut(&h) {
                node.prev = Some(digest);
            }
        }
        self.head = Some(digest);
        if self.tail.is_none() {
            self.tail = Some(digest);
        }
    }

    fn touch(&mut self, digest: u64) {
        if self.head == Some(digest) {
            return;
        }
        self.unlink(digest);
        self.push_front(digest);
    }

    /// Evicts LRU-first until the byte budget holds, always keeping at
    /// least one bundle — a single bundle larger than the whole budget
    /// must still be usable.
    fn evict_to_fit(&mut self) {
        while self.bytes > self.capacity_bytes && self.entries.len() > 1 {
            let Some(victim) = self.tail else { break };
            self.unlink(victim);
            if let Some(node) = self.entries.remove(&victim) {
                self.bytes -= node.bytes;
                self.stats.evictions += 1;
            }
        }
    }
}

impl KeyCache {
    /// A cache bounded to `capacity_bytes` of compact key payload (a
    /// budget of 0 still holds one bundle at a time).
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            inner: Mutex::new(KeyCacheInner {
                entries: HashMap::new(),
                head: None,
                tail: None,
                capacity_bytes,
                bytes: 0,
                stats: KeyCacheStats::default(),
            }),
        }
    }

    /// Returns the parsed bundle for `blob`, deserializing on a miss.
    ///
    /// # Errors
    ///
    /// Whatever [`BootstrapKeys::try_deserialize`] rejects: structural
    /// damage, checksum mismatch, or a foreign params fingerprint. A
    /// rejected blob is *not* cached — the next attempt revalidates.
    pub fn get_or_load(&self, ctx: &CkksContext, blob: &[u8]) -> FheResult<Arc<BootstrapKeys>> {
        self.get_or_load_with_digest(ctx, blob, fnv1a_fast(blob))
    }

    /// [`KeyCache::get_or_load`] with the `fnv1a_fast(blob)` digest
    /// already in hand (e.g. cached on a [`crate::Blob`]): a cache hit
    /// then costs one map lookup, not a re-hash of a megabyte bundle.
    ///
    /// # Errors
    ///
    /// Same as [`KeyCache::get_or_load`].
    pub fn get_or_load_with_digest(
        &self,
        ctx: &CkksContext,
        blob: &[u8],
        digest: u64,
    ) -> FheResult<Arc<BootstrapKeys>> {
        {
            let mut inner = self.lock();
            if let Some(node) = inner.entries.get(&digest) {
                let keys = Arc::clone(&node.keys);
                inner.stats.hits += 1;
                inner.touch(digest);
                return Ok(keys);
            }
        }
        // Parse outside the lock: deserialization verifies every nested
        // key and dominates the cost; other jobs keep hitting the cache.
        let keys = Arc::new(BootstrapKeys::try_deserialize(ctx, blob)?);
        let bytes = keys.compact_resident_bytes();
        let mut inner = self.lock();
        inner.stats.misses += 1;
        if let Some(node) = inner.entries.get(&digest) {
            // Another worker parsed the same blob concurrently; keep the
            // resident copy and refresh its recency.
            let resident = Arc::clone(&node.keys);
            inner.touch(digest);
            return Ok(resident);
        }
        inner.entries.insert(
            digest,
            Node {
                keys: Arc::clone(&keys),
                bytes,
                prev: None,
                next: None,
            },
        );
        inner.push_front(digest);
        inner.bytes += bytes;
        inner.evict_to_fit();
        Ok(keys)
    }

    /// Current counters, with `bytes_resident` reflecting this instant.
    pub fn stats(&self) -> KeyCacheStats {
        let inner = self.lock();
        KeyCacheStats {
            bytes_resident: inner.bytes,
            ..inner.stats
        }
    }

    /// Parsed bundles currently resident.
    pub fn resident(&self) -> usize {
        self.lock().entries.len()
    }

    /// Compact key bytes currently resident.
    pub fn bytes_resident(&self) -> usize {
        self.lock().bytes
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, KeyCacheInner> {
        self.inner
            .lock()
            .expect("key cache poisoned: a holder panicked mid-update")
    }
}

/// Everything the server holds for one registered tenant.
#[derive(Debug)]
pub struct TenantState {
    /// Tenant identifier (directory-name safe by registration check).
    pub id: String,
    /// The tenant's parameter context (shared with its workers).
    pub ctx: Arc<CkksContext>,
    /// Fingerprint every one of this tenant's blobs must carry.
    pub fingerprint: u64,
    /// Parsed compact key bundles, bytes-bounded and LRU-evicted.
    pub keys: KeyCache,
    /// Root under which this tenant's per-job checkpoint dirs live.
    pub checkpoint_root: PathBuf,
    /// Server-level retry units remaining (shared across the tenant's
    /// jobs; each restore-and-resume attempt burns one).
    pub retry_budget: AtomicU32,
    /// Bootstrapper hosted for this tenant, when registered with one;
    /// programs containing bootstrap ops are unservable without it.
    pub(crate) booter: Option<Arc<Bootstrapper>>,
    breaker: Mutex<CircuitBreaker>,
    breaker_rejections: AtomicU64,
    watchdog_stalls: AtomicU64,
    jobs_ok: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_shed: AtomicU64,
    retries_spent: AtomicU64,
    recovery: Mutex<RecoveryTelemetry>,
    ops: Mutex<OpSnapshot>,
}

impl TenantState {
    pub(crate) fn new(
        id: String,
        ctx: Arc<CkksContext>,
        checkpoint_root: PathBuf,
        key_cache_bytes: usize,
        retry_budget: u32,
    ) -> Self {
        let fingerprint = ctx.params_fingerprint();
        Self {
            id,
            ctx,
            fingerprint,
            keys: KeyCache::new(key_cache_bytes),
            checkpoint_root,
            retry_budget: AtomicU32::new(retry_budget),
            booter: None,
            breaker: Mutex::new(CircuitBreaker::new(0, 0)),
            breaker_rejections: AtomicU64::new(0),
            watchdog_stalls: AtomicU64::new(0),
            jobs_ok: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_shed: AtomicU64::new(0),
            retries_spent: AtomicU64::new(0),
            recovery: Mutex::new(RecoveryTelemetry::default()),
            ops: Mutex::new(OpSnapshot::default()),
        }
    }

    /// Hosts a bootstrapper for this tenant (set before registration).
    pub(crate) fn set_booter(&mut self, booter: Arc<Bootstrapper>) {
        self.booter = Some(booter);
    }

    /// Configures the circuit breaker (set before registration;
    /// `threshold == 0` leaves it disabled).
    pub(crate) fn set_breaker(&mut self, threshold: u32, backoff_ms: u64) {
        self.breaker = Mutex::new(CircuitBreaker::new(threshold, backoff_ms));
    }

    /// Breaker gate at admission: `Err(retry_after_ms)` quarantines the
    /// submission. Rejections are counted here (tenant + global trace).
    pub(crate) fn breaker_admit(&self) -> Result<(), u64> {
        let verdict = self
            .breaker
            .lock()
            .expect("breaker poisoned: a holder panicked mid-update")
            .admit();
        if verdict.is_err() {
            self.breaker_rejections.fetch_add(1, Ordering::Relaxed);
            cl_trace::record_breaker_rejection();
        }
        verdict
    }

    /// Feeds a finished job's outcome to the breaker.
    pub(crate) fn breaker_record(&self, code: OutcomeCode) {
        self.breaker
            .lock()
            .expect("breaker poisoned: a holder panicked mid-update")
            .record(code);
    }

    /// Counts one watchdog stall verdict against this tenant.
    pub(crate) fn record_stall(&self) {
        self.watchdog_stalls.fetch_add(1, Ordering::Relaxed);
        cl_trace::record_watchdog_stall();
    }

    /// Tries to consume one retry unit; `false` when the budget is spent.
    pub fn try_spend_retry(&self) -> bool {
        self.retry_budget
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |b| b.checked_sub(1))
            .map(|_| {
                self.retries_spent.fetch_add(1, Ordering::Relaxed);
            })
            .is_ok()
    }

    pub(crate) fn record_ok(&self) {
        self.jobs_ok.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_failed(&self) {
        self.jobs_failed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_shed(&self) {
        self.jobs_shed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn absorb(&self, recovery: RecoveryTelemetry, ops: OpSnapshot) {
        let mut agg = self
            .recovery
            .lock()
            .expect("tenant telemetry poisoned: a holder panicked mid-update");
        agg.merge(&recovery);
        drop(agg);
        let mut agg_ops = self
            .ops
            .lock()
            .expect("tenant op ledger poisoned: a holder panicked mid-update");
        *agg_ops = agg_ops.plus(&ops);
    }

    /// A point-in-time accounting snapshot for this tenant.
    pub fn report(&self) -> TenantReport {
        TenantReport {
            tenant: self.id.clone(),
            jobs_ok: self.jobs_ok.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            jobs_shed: self.jobs_shed.load(Ordering::Relaxed),
            retries_spent: self.retries_spent.load(Ordering::Relaxed),
            retry_budget_left: self.retry_budget.load(Ordering::Acquire),
            recovery: *self
                .recovery
                .lock()
                .expect("tenant telemetry poisoned: a holder panicked mid-update"),
            ops: *self
                .ops
                .lock()
                .expect("tenant op ledger poisoned: a holder panicked mid-update"),
            key_cache: self.keys.stats(),
            breaker: self
                .breaker
                .lock()
                .expect("breaker poisoned: a holder panicked mid-update")
                .report(),
            breaker_rejections: self.breaker_rejections.load(Ordering::Relaxed),
            watchdog_stalls: self.watchdog_stalls.load(Ordering::Relaxed),
        }
    }
}

/// Per-tenant accounting: job counts, retry spend, recovery counters,
/// and (with the `trace` feature) homomorphic-op deltas attributed to
/// this tenant's jobs.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant identifier.
    pub tenant: String,
    /// Jobs that completed with an output.
    pub jobs_ok: u64,
    /// Jobs that ended with a failure outcome.
    pub jobs_failed: u64,
    /// Submissions refused at admission (overload shedding).
    pub jobs_shed: u64,
    /// Server-level retry units consumed.
    pub retries_spent: u64,
    /// Retry units remaining.
    pub retry_budget_left: u32,
    /// Executor recovery counters summed over every attempt.
    pub recovery: RecoveryTelemetry,
    /// Homomorphic-op counters attributed to this tenant (zeros unless
    /// built with `--features trace`).
    pub ops: OpSnapshot,
    /// Key-cache behaviour.
    pub key_cache: KeyCacheStats,
    /// Circuit-breaker state at this instant.
    pub breaker: BreakerReport,
    /// Submissions refused by the breaker over the tenant's lifetime.
    pub breaker_rejections: u64,
    /// Watchdog stall verdicts charged to this tenant's jobs.
    pub watchdog_stalls: u64,
}

/// The registry mapping tenant ids to their state.
#[derive(Debug, Default)]
pub(crate) struct TenantRegistry {
    tenants: Mutex<HashMap<String, Arc<TenantState>>>,
}

impl TenantRegistry {
    pub(crate) fn insert(&self, state: Arc<TenantState>) -> bool {
        let mut map = self.lock();
        if map.contains_key(&state.id) {
            return false;
        }
        map.insert(state.id.clone(), state);
        true
    }

    pub(crate) fn get(&self, id: &str) -> Option<Arc<TenantState>> {
        self.lock().get(id).cloned()
    }

    pub(crate) fn ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.lock().keys().cloned().collect();
        ids.sort_unstable();
        ids
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, Arc<TenantState>>> {
        self.tenants
            .lock()
            .expect("tenant registry poisoned: a holder panicked mid-update")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cl_ckks::{CkksParams, GuardrailPolicy, KeySwitchKind};
    use rand::SeedableRng;

    fn ctx() -> CkksContext {
        let params = CkksParams::builder()
            .ring_degree(64)
            .levels(4)
            .special_limbs(4)
            .limb_bits(45)
            .scale_bits(40)
            .build()
            .unwrap();
        CkksContext::new(params)
            .unwrap()
            .with_policy(GuardrailPolicy::Strict {
                min_budget_bits: -60.0,
            })
    }

    fn key_blob(ctx: &CkksContext, seed: u64) -> Vec<u8> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = ctx.keygen_sparse(8, &mut rng);
        let keys = BootstrapKeys::generate(ctx, &sk, KeySwitchKind::Standard, &[1], &mut rng);
        keys.serialize(ctx)
    }

    #[test]
    fn key_cache_hits_after_first_load_and_evicts_lru() {
        let ctx = ctx();
        let blob_a = key_blob(&ctx, 1);
        let blob_b = key_blob(&ctx, 2);
        let blob_c = key_blob(&ctx, 3);
        // Every bundle has the same shape, so one parse prices them all;
        // budget for exactly two resident bundles.
        let one = BootstrapKeys::try_deserialize(&ctx, &blob_a)
            .unwrap()
            .compact_resident_bytes();
        let cache = KeyCache::new(2 * one);

        cache.get_or_load(&ctx, &blob_a).unwrap();
        cache.get_or_load(&ctx, &blob_a).unwrap();
        assert_eq!(
            cache.stats(),
            KeyCacheStats { hits: 1, misses: 1, evictions: 0, bytes_resident: one }
        );

        cache.get_or_load(&ctx, &blob_b).unwrap();
        // `a` was touched more recently than nothing — order is now b, a.
        // Loading `c` exceeds the byte budget and evicts the least recent
        // (`a`).
        cache.get_or_load(&ctx, &blob_c).unwrap();
        assert_eq!(cache.resident(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.bytes_resident(), 2 * one);
        // `a` must be reparsed (a fresh miss), `c` is a hit.
        cache.get_or_load(&ctx, &blob_c).unwrap();
        cache.get_or_load(&ctx, &blob_a).unwrap();
        assert_eq!(cache.stats().misses, 4);
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn corrupt_key_blob_is_rejected_and_never_cached() {
        let ctx = ctx();
        let mut blob = key_blob(&ctx, 7);
        let mid = blob.len() / 2;
        blob[mid] ^= 0x40;
        let cache = KeyCache::new(1 << 20);
        assert!(cache.get_or_load(&ctx, &blob).is_err());
        assert_eq!(cache.resident(), 0);
        assert_eq!(cache.bytes_resident(), 0);
        // Misses only count *successful* parses; the reject is not billed
        // as cache traffic.
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn oversized_single_bundle_stays_usable() {
        let ctx = ctx();
        let blob_a = key_blob(&ctx, 1);
        let blob_b = key_blob(&ctx, 2);
        // Budget smaller than any bundle: the cache still holds exactly
        // one at a time instead of thrashing to empty.
        let cache = KeyCache::new(1);
        cache.get_or_load(&ctx, &blob_a).unwrap();
        assert_eq!(cache.resident(), 1);
        cache.get_or_load(&ctx, &blob_b).unwrap();
        assert_eq!(cache.resident(), 1);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn retry_budget_is_finite_and_thread_safe() {
        let t = TenantState::new(
            "t0".into(),
            Arc::new(ctx()),
            std::env::temp_dir().join("cl-server-tenant-test"),
            1 << 20,
            3,
        );
        assert!(t.try_spend_retry());
        assert!(t.try_spend_retry());
        assert!(t.try_spend_retry());
        assert!(!t.try_spend_retry(), "budget of 3 allows exactly 3 spends");
        let report = t.report();
        assert_eq!(report.retries_spent, 3);
        assert_eq!(report.retry_budget_left, 0);
    }
}
