//! Multi-tenant FHE job serving for the CraterLake reproduction.
//!
//! CraterLake's deployment story (Sec. 2 of the paper) is an accelerator
//! *shared* by mutually distrusting clients: many tenants stream deep,
//! bootstrapped pipelines at one machine, and the operator must bound
//! memory, bound latency, and guarantee that one tenant's hostile or
//! unlucky job cannot perturb another's results. This crate supplies
//! that serving layer over the `cl-runtime` executor:
//!
//! - [`JobServer`]: a fixed worker pool over a *bounded*, tenant-fair
//!   [`AdmissionQueue`] — overload is shed synchronously with
//!   [`cl_ckks::FheError::Overloaded`] and a retry-after hint, never
//!   absorbed as unbounded queue growth;
//! - per-job [`RunControl`] deadlines (the clock starts at admission, so
//!   queue wait counts) and cancellation, enforced at micro-op
//!   boundaries inside the executor;
//! - server-level retry with exponential backoff layered on the
//!   executor's restore-and-retry, metered by a per-tenant retry budget;
//! - tenant isolation: per-tenant params fingerprints (checked at
//!   admission *and* on every deep parse), per-tenant bytes-bounded
//!   [`KeyCache`]s of compact key bundles (materialized hints share the
//!   process-wide `cl_ckks::HintCache` across tenants),
//!   and disjoint per-`(tenant, worker)` checkpoint directories guarded
//!   by the `CheckpointStore` owner lock;
//! - structured outcomes: every failure maps to a stable
//!   [`OutcomeCode`], with per-tenant [`TenantReport`] accounting
//!   (job counts, shed counts, retry spend, recovery telemetry, op
//!   deltas, breaker state);
//! - **crash durability**: a write-ahead [`Journal`] of job lifecycle
//!   transitions (torn-write tolerant, checksum-framed, compacted), so
//!   [`JobServer::recover`] restarts a killed server and resumes every
//!   acknowledged job bit-identically from its durable checkpoint;
//! - **self-healing**: a watchdog aborts runs whose heartbeat stalls
//!   past a budget (re-dispatched from the last checkpoint), and a
//!   per-tenant circuit [`breaker`](BreakerReport) quarantines tenants
//!   whose jobs keep failing destructively.
//!
//! The isolation contract is validated in `tests/server_chaos.rs`: under
//! seeded fault injection, cancellations, deadline kills, mid-flight
//! server kills, and a poisoned tenant, every surviving job's output is
//! limb-bit-identical to a serial fault-free run.
//!
//! [`RunControl`]: cl_runtime::RunControl

#![warn(missing_docs)]
// Library code must propagate failures (`FheResult`/`?`) or `expect` with
// the violated invariant; tests are exempt. Enforced by scripts/verify.sh.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod breaker;
mod job;
mod journal;
mod queue;
mod server;
mod tenant;

pub use breaker::BreakerReport;
pub use job::{Blob, JobId, JobOutcome, JobSpec, OutcomeCode};
pub use journal::{FsyncPolicy, Journal, JournalReplay, ReplayedJob, ReplayedOutcome};
pub use queue::{AdmissionQueue, ShedReason};
pub use server::{JobHandle, JobServer, RecoveryReport, ServerConfig, TenantSetup};
pub use tenant::{KeyCache, KeyCacheStats, TenantReport, TenantState};
