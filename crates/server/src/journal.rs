//! Write-ahead job journal: crash-durable job lifecycle records.
//!
//! The server appends one integrity-checked record per job lifecycle
//! transition (admitted, dispatched, completed, failed) to an append-only
//! file, so a process that dies mid-flight can be restarted and replay
//! exactly which jobs were acknowledged but never finished. The file
//! reuses the `CLFH` wire-format machinery from [`cl_ckks::serialize`]: a
//! 16-byte `CLFH` header tags the file ([`ObjectTag::Journal`]), and every
//! record is framed as
//!
//! ```text
//! "CLJR" (4) | body_len u32 | body | fnv1a_fast(body) u64
//! ```
//!
//! Torn or flipped records are tolerated, not fatal: replay re-syncs by
//! scanning forward for the next `CLJR` marker, so a single damaged record
//! costs only itself. Job input/program/key blobs are journaled once each
//! as digest-keyed `Blob` records and referenced by digest from `Admitted`
//! records, keeping steady-state append cost to a few dozen bytes per
//! transition. Completed entries are compacted away on a configurable
//! cadence by rewriting live records into the next generation file
//! (`journal-<gen>.wal`, tmp + fsync + rename), bounding journal growth
//! for long-lived servers.

use std::collections::{HashMap, HashSet};
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use cl_ckks::serialize::{
    fnv1a_fast, peek_header, put_u16, put_u32, put_u64, put_u8, write_header, ObjectTag,
};
use cl_ckks::{FheError, FheResult};

/// Per-record frame marker; distinct from the file-level `CLFH` magic so a
/// resync scan cannot mistake the file header for a record.
const REC_MAGIC: [u8; 4] = *b"CLJR";
/// Frame overhead: marker + body length + checksum trailer.
const FRAME_BYTES: usize = 4 + 4 + 8;
/// Hostile-length cap on a single record body (same spirit as
/// `cl_runtime::MAX_PROGRAM_OPS`): a flipped length field must not drive a
/// multi-gigabyte allocation during replay.
const MAX_RECORD_BYTES: u32 = 1 << 26;
/// Failure detail strings are truncated to this many bytes on append.
const MAX_DETAIL_BYTES: usize = 512;

/// When appended records are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append: no acknowledged record is ever lost,
    /// at the cost of one disk round-trip per transition.
    Always,
    /// `fsync` every N appends (and on shutdown/compaction). The default,
    /// `Batch(32)`: a crash loses at most the last N-1 transitions.
    Batch(u32),
    /// Never `fsync` explicitly; durability is whatever the OS page cache
    /// provides. For benchmarks and tests.
    Never,
}

impl FsyncPolicy {
    /// Reads the policy from `CL_JOURNAL_FSYNC` (`always`, `never`, or a
    /// batch size), defaulting to `Batch(32)`.
    pub fn from_env() -> Self {
        match std::env::var("CL_JOURNAL_FSYNC") {
            Ok(v) if v.eq_ignore_ascii_case("always") => FsyncPolicy::Always,
            Ok(v) if v.eq_ignore_ascii_case("never") => FsyncPolicy::Never,
            Ok(v) => v
                .parse::<u32>()
                .ok()
                .filter(|&n| n > 0)
                .map_or(FsyncPolicy::Batch(32), FsyncPolicy::Batch),
            Err(_) => FsyncPolicy::Batch(32),
        }
    }
}

/// Record kinds (the first byte of every record body after the sequence
/// number). Stable on-disk contract: append-only, never renumber.
const KIND_ADMITTED: u8 = 0;
const KIND_DISPATCHED: u8 = 1;
const KIND_COMPLETED: u8 = 2;
const KIND_FAILED: u8 = 3;
const KIND_BLOB: u8 = 4;

/// One job reconstructed from replay, merged across its lifecycle records.
#[derive(Debug, Clone)]
pub struct ReplayedJob {
    /// Original job id (recovered jobs keep their pre-crash identity).
    pub id: u64,
    /// Owning tenant id, empty until the `Admitted` record is seen.
    pub tenant: String,
    /// Deadline budget in milliseconds (`None` = no deadline).
    pub deadline_ms: Option<u64>,
    /// `fnv1a_fast` digest of the serialized program blob.
    pub program_digest: u64,
    /// `fnv1a_fast` digest of the serialized input ciphertext blob.
    pub input_digest: u64,
    /// `fnv1a_fast` digest of the serialized key bundle blob.
    pub key_digest: u64,
    /// Whether the job was seen admitted (an `Admitted` record survived).
    pub admitted: bool,
    /// Whether a worker picked the job up before the crash.
    pub dispatched: bool,
    /// Terminal outcome, when the job finished before the crash.
    pub outcome: Option<ReplayedOutcome>,
}

/// Terminal outcome reconstructed from a `Completed`/`Failed` record.
#[derive(Debug, Clone)]
pub struct ReplayedOutcome {
    /// Stable [`crate::OutcomeCode`] discriminant (`0` = ok).
    pub code: u16,
    /// Truncated failure detail (empty for completions).
    pub detail: String,
    /// Serialized output ciphertext for completed jobs.
    pub output: Option<Vec<u8>>,
}

/// Everything recovered from one journal file.
#[derive(Debug, Default)]
pub struct JournalReplay {
    /// Jobs merged by id, in first-seen order.
    pub jobs: Vec<ReplayedJob>,
    /// Deduplicated blobs keyed by `fnv1a_fast` digest.
    pub blobs: HashMap<u64, Vec<u8>>,
    /// Records accepted (checksum verified).
    pub records_replayed: u64,
    /// Records skipped: torn tails, flipped bytes, bad lengths.
    pub records_skipped: u64,
}

impl JournalReplay {
    /// Highest job id seen, for re-seeding the server's id counter.
    pub fn max_job_id(&self) -> Option<u64> {
        self.jobs.iter().map(|j| j.id).max()
    }
}

/// Append-only write-ahead journal for job lifecycle transitions.
pub struct Journal {
    dir: PathBuf,
    gen: u64,
    file: File,
    path: PathBuf,
    fsync: FsyncPolicy,
    unsynced: u32,
    seq: u64,
    /// Blob digests already present in the current generation file.
    written_blobs: HashSet<u64>,
    /// Live (admitted, not finished) jobs in the current generation; used
    /// to decide what survives compaction.
    live: HashMap<u64, ReplayedJob>,
    done_since_compact: u64,
    compact_threshold: u64,
    compactions: u64,
}

impl Journal {
    /// Opens the journal in `dir` (created if missing), replaying the
    /// newest generation file. Returns the journal (positioned for
    /// appending) plus everything replayed. Damaged records are skipped
    /// and counted, never fatal; a file with a damaged `CLFH` header is
    /// abandoned entirely (counted as one skipped record) and a fresh
    /// generation is started.
    ///
    /// # Errors
    ///
    /// [`FheError::Serialization`] when the directory or journal file
    /// cannot be created or written.
    pub fn open(
        dir: &Path,
        fsync: FsyncPolicy,
        compact_threshold: u64,
    ) -> FheResult<(Self, JournalReplay)> {
        fs::create_dir_all(dir).map_err(|e| io_err("journal_open", &e.to_string()))?;
        let newest = newest_generation(dir);
        let mut replay = JournalReplay::default();
        let (gen, path) = match newest {
            Some((gen, path)) => {
                let bytes =
                    fs::read(&path).map_err(|e| io_err("journal_open", &e.to_string()))?;
                replay_bytes(&bytes, &mut replay);
                (gen, path)
            }
            None => {
                let gen = 0;
                let path = gen_path(dir, gen);
                write_file_header(&path)?;
                (gen, path)
            }
        };
        cl_trace::record_journal_replay(replay.records_replayed, replay.records_skipped);
        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| io_err("journal_open", &e.to_string()))?;
        let live = replay
            .jobs
            .iter()
            .filter(|j| j.outcome.is_none())
            .map(|j| (j.id, j.clone()))
            .collect();
        let journal = Self {
            dir: dir.to_path_buf(),
            gen,
            file,
            path,
            fsync,
            unsynced: 0,
            seq: replay.records_replayed,
            written_blobs: replay.blobs.keys().copied().collect(),
            live,
            done_since_compact: 0,
            compact_threshold,
            compactions: 0,
        };
        Ok((journal, replay))
    }

    /// Journals `blob` as a digest-keyed `Blob` record unless this
    /// generation already holds it, and returns the digest for the
    /// `Admitted` record to reference. Deduplication keeps steady-state
    /// append cost independent of blob size: a tenant's jobs typically
    /// share the identical key bundle (and often program), which is
    /// journaled once.
    ///
    /// # Errors
    ///
    /// [`FheError::Serialization`] on write failure.
    pub fn append_blob(&mut self, blob: &[u8]) -> FheResult<u64> {
        self.append_blob_with_digest(blob, fnv1a_fast(blob))
    }

    /// [`Journal::append_blob`] with the `fnv1a_fast(blob)` digest already
    /// in hand (e.g. cached on a [`crate::Blob`]), so deduplicated repeat
    /// submissions skip re-hashing the payload entirely.
    ///
    /// # Errors
    ///
    /// [`FheError::Serialization`] on write failure.
    pub fn append_blob_with_digest(&mut self, blob: &[u8], digest: u64) -> FheResult<u64> {
        if self.written_blobs.insert(digest) {
            let mut body = Vec::with_capacity(21 + blob.len());
            self.body_prefix(&mut body, KIND_BLOB);
            put_u64(&mut body, digest);
            put_u32(&mut body, blob.len() as u32);
            body.extend_from_slice(blob);
            self.append_record(&body)?;
        }
        Ok(digest)
    }

    /// Journals a job admission referencing blobs previously written with
    /// [`Journal::append_blob`].
    ///
    /// # Errors
    ///
    /// [`FheError::Serialization`] on write failure.
    pub fn append_admitted(
        &mut self,
        id: u64,
        tenant: &str,
        deadline_ms: Option<u64>,
        program_digest: u64,
        input_digest: u64,
        key_digest: u64,
    ) -> FheResult<()> {
        let mut body = Vec::with_capacity(64 + tenant.len());
        self.body_prefix(&mut body, KIND_ADMITTED);
        put_u64(&mut body, id);
        put_u64(&mut body, deadline_ms.unwrap_or(u64::MAX));
        put_u64(&mut body, program_digest);
        put_u64(&mut body, input_digest);
        put_u64(&mut body, key_digest);
        put_u16(&mut body, tenant.len() as u16);
        body.extend_from_slice(tenant.as_bytes());
        self.append_record(&body)?;
        self.live.insert(
            id,
            ReplayedJob {
                id,
                tenant: tenant.to_string(),
                deadline_ms,
                program_digest,
                input_digest,
                key_digest,
                admitted: true,
                dispatched: false,
                outcome: None,
            },
        );
        Ok(())
    }

    /// Journals a worker picking the job up.
    ///
    /// # Errors
    ///
    /// [`FheError::Serialization`] on write failure.
    pub fn append_dispatched(&mut self, id: u64) -> FheResult<()> {
        let mut body = Vec::with_capacity(24);
        self.body_prefix(&mut body, KIND_DISPATCHED);
        put_u64(&mut body, id);
        self.append_record(&body)?;
        if let Some(job) = self.live.get_mut(&id) {
            job.dispatched = true;
        }
        Ok(())
    }

    /// Journals a successful completion (with the serialized output), then
    /// compacts when enough finished entries have accumulated.
    ///
    /// # Errors
    ///
    /// [`FheError::Serialization`] on write failure.
    pub fn append_completed(&mut self, id: u64, output: &[u8]) -> FheResult<()> {
        let mut body = Vec::with_capacity(24 + output.len());
        self.body_prefix(&mut body, KIND_COMPLETED);
        put_u64(&mut body, id);
        put_u32(&mut body, output.len() as u32);
        body.extend_from_slice(output);
        self.append_record(&body)?;
        self.finish(id)
    }

    /// Journals a terminal failure with its stable outcome code.
    ///
    /// # Errors
    ///
    /// [`FheError::Serialization`] on write failure.
    pub fn append_failed(&mut self, id: u64, code: u16, detail: &str) -> FheResult<()> {
        let detail = truncate_utf8(detail, MAX_DETAIL_BYTES);
        let mut body = Vec::with_capacity(32 + detail.len());
        self.body_prefix(&mut body, KIND_FAILED);
        put_u64(&mut body, id);
        put_u16(&mut body, code);
        put_u16(&mut body, detail.len() as u16);
        body.extend_from_slice(detail.as_bytes());
        self.append_record(&body)?;
        self.finish(id)
    }

    /// Flushes appended records to stable storage regardless of policy.
    ///
    /// # Errors
    ///
    /// [`FheError::Serialization`] when the `fsync` fails.
    pub fn sync(&mut self) -> FheResult<()> {
        self.unsynced = 0;
        self.file
            .sync_data()
            .map_err(|e| io_err("journal_sync", &e.to_string()))
    }

    /// Number of generation rollovers performed by compaction.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Path of the current generation file (tests damage it directly).
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn finish(&mut self, id: u64) -> FheResult<()> {
        self.live.remove(&id);
        self.done_since_compact += 1;
        if self.compact_threshold > 0 && self.done_since_compact >= self.compact_threshold {
            self.compact()?;
        }
        Ok(())
    }

    fn body_prefix(&mut self, body: &mut Vec<u8>, kind: u8) {
        put_u64(body, self.seq);
        self.seq += 1;
        put_u8(body, kind);
    }

    fn append_record(&mut self, body: &[u8]) -> FheResult<()> {
        // Word-wise trailer checksum: `Completed` bodies carry whole output
        // ciphertext blobs, and the byte-wise FNV serial dependency chain is
        // the dominant journaling cost at megabyte payloads. Large bodies
        // are written in place rather than copied into a frame buffer; torn
        // writes between the parts are tolerated by the replay resync scan.
        let checksum = fnv1a_fast(body);
        let write = |f: &mut File, buf: &[u8]| {
            f.write_all(buf)
                .map_err(|e| io_err("journal_append", &e.to_string()))
        };
        let mut head = [0u8; 8];
        head[..4].copy_from_slice(&REC_MAGIC);
        head[4..].copy_from_slice(&(body.len() as u32).to_le_bytes());
        if body.len() <= 4096 {
            let mut frame = Vec::with_capacity(FRAME_BYTES + body.len());
            frame.extend_from_slice(&head);
            frame.extend_from_slice(body);
            put_u64(&mut frame, checksum);
            write(&mut self.file, &frame)?;
        } else {
            write(&mut self.file, &head)?;
            write(&mut self.file, body)?;
            write(&mut self.file, &checksum.to_le_bytes())?;
        }
        cl_trace::record_journal_append((FRAME_BYTES + body.len()) as u64);
        match self.fsync {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::Batch(n) => {
                self.unsynced += 1;
                if self.unsynced >= n {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Rewrites live records into the next generation file and retires the
    /// current one: blobs still referenced by a live job, then an
    /// `Admitted` (and `Dispatched`, when seen) record per live job.
    /// Finished jobs and their outputs are dropped — a restart after
    /// compaction no longer reconstructs their outcomes, which is the
    /// price of a bounded journal.
    fn compact(&mut self) -> FheResult<()> {
        self.sync()?;
        let bytes = fs::read(&self.path)
            .map_err(|e| io_err("journal_compact", &e.to_string()))?;
        let mut replay = JournalReplay::default();
        replay_bytes(&bytes, &mut replay);

        let next_gen = self.gen + 1;
        let tmp = self.dir.join("journal.tmp");
        let next_path = gen_path(&self.dir, next_gen);
        let mut out = Vec::with_capacity(1 << 12);
        write_header(&mut out, ObjectTag::Journal, 0);
        let mut seq = 0u64;
        let mut kept_blobs: HashSet<u64> = HashSet::new();
        let frame = |out: &mut Vec<u8>, body: &[u8]| {
            out.extend_from_slice(&REC_MAGIC);
            put_u32(out, body.len() as u32);
            out.extend_from_slice(body);
            put_u64(out, fnv1a_fast(body));
        };
        let mut live: Vec<&ReplayedJob> = self.live.values().collect();
        live.sort_by_key(|j| j.id);
        for job in &live {
            for digest in [job.program_digest, job.input_digest, job.key_digest] {
                if kept_blobs.insert(digest) {
                    if let Some(blob) = replay.blobs.get(&digest) {
                        let mut body = Vec::with_capacity(21 + blob.len());
                        put_u64(&mut body, seq);
                        seq += 1;
                        put_u8(&mut body, KIND_BLOB);
                        put_u64(&mut body, digest);
                        put_u32(&mut body, blob.len() as u32);
                        body.extend_from_slice(blob);
                        frame(&mut out, &body);
                    }
                }
            }
            let mut body = Vec::with_capacity(64 + job.tenant.len());
            put_u64(&mut body, seq);
            seq += 1;
            put_u8(&mut body, KIND_ADMITTED);
            put_u64(&mut body, job.id);
            put_u64(&mut body, job.deadline_ms.unwrap_or(u64::MAX));
            put_u64(&mut body, job.program_digest);
            put_u64(&mut body, job.input_digest);
            put_u64(&mut body, job.key_digest);
            put_u16(&mut body, job.tenant.len() as u16);
            body.extend_from_slice(job.tenant.as_bytes());
            frame(&mut out, &body);
            if job.dispatched {
                let mut body = Vec::with_capacity(24);
                put_u64(&mut body, seq);
                seq += 1;
                put_u8(&mut body, KIND_DISPATCHED);
                put_u64(&mut body, job.id);
                frame(&mut out, &body);
            }
        }
        fs::write(&tmp, &out).map_err(|e| io_err("journal_compact", &e.to_string()))?;
        File::open(&tmp)
            .and_then(|f| f.sync_data())
            .map_err(|e| io_err("journal_compact", &e.to_string()))?;
        fs::rename(&tmp, &next_path)
            .map_err(|e| io_err("journal_compact", &e.to_string()))?;
        let old_path = std::mem::replace(&mut self.path, next_path);
        self.file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| io_err("journal_compact", &e.to_string()))?;
        let _ = fs::remove_file(&old_path);
        self.gen = next_gen;
        self.seq = seq;
        self.written_blobs = kept_blobs;
        self.done_since_compact = 0;
        self.unsynced = 0;
        self.compactions += 1;
        Ok(())
    }
}

/// Returns the `journal-<gen>.wal` path for a generation number.
fn gen_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("journal-{gen}.wal"))
}

/// Finds the highest-numbered `journal-<gen>.wal` in `dir`.
fn newest_generation(dir: &Path) -> Option<(u64, PathBuf)> {
    let entries = fs::read_dir(dir).ok()?;
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(gen) = name
            .strip_prefix("journal-")
            .and_then(|s| s.strip_suffix(".wal"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            if best.as_ref().is_none_or(|(g, _)| gen > *g) {
                best = Some((gen, entry.path()));
            }
        }
    }
    best
}

fn write_file_header(path: &Path) -> FheResult<()> {
    let mut out = Vec::with_capacity(16);
    write_header(&mut out, ObjectTag::Journal, 0);
    fs::write(path, &out).map_err(|e| io_err("journal_open", &e.to_string()))
}

fn io_err(op: &'static str, reason: &str) -> FheError {
    FheError::Serialization {
        op,
        reason: reason.to_string(),
    }
}

/// UTF-8-safe prefix truncation for failure details.
fn truncate_utf8(s: &str, max: usize) -> &str {
    if s.len() <= max {
        return s;
    }
    let mut end = max;
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

/// Replays one journal file's bytes into `replay`. Never panics and never
/// fails: damaged regions are skipped by scanning forward for the next
/// record marker, and whatever checksums clean is accepted.
fn replay_bytes(bytes: &[u8], replay: &mut JournalReplay) {
    // A file too short for a header, or with a damaged one, contributes
    // nothing; count the damage so operators see it in the replay stats.
    match peek_header("journal_replay", bytes) {
        Ok((ObjectTag::Journal, _)) => {}
        _ => {
            replay.records_skipped += 1;
            return;
        }
    }
    let mut jobs: HashMap<u64, usize> = HashMap::new();
    let mut pos = 16usize;
    while pos + FRAME_BYTES <= bytes.len() {
        if bytes[pos..pos + 4] != REC_MAGIC {
            pos = resync(bytes, pos + 1, replay);
            continue;
        }
        let len = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        if len > MAX_RECORD_BYTES {
            pos = resync(bytes, pos + 1, replay);
            continue;
        }
        let body_start = pos + 8;
        let body_end = body_start + len as usize;
        let frame_end = body_end + 8;
        if frame_end > bytes.len() {
            // Torn tail: the record extends past EOF.
            replay.records_skipped += 1;
            return;
        }
        let body = &bytes[body_start..body_end];
        let want = u64::from_le_bytes(
            bytes[body_end..frame_end]
                .try_into()
                .unwrap_or([0u8; 8]),
        );
        if fnv1a_fast(body) != want {
            pos = resync(bytes, pos + 1, replay);
            continue;
        }
        if apply_record(body, replay, &mut jobs) {
            replay.records_replayed += 1;
        } else {
            replay.records_skipped += 1;
        }
        pos = frame_end;
    }
    if pos < bytes.len() {
        // Trailing bytes too short to hold a frame: a torn final record.
        replay.records_skipped += 1;
    }
}

/// Scans forward from `from` for the next record marker; counts the
/// damaged region as one skipped record. Returns the next scan position.
fn resync(bytes: &[u8], from: usize, replay: &mut JournalReplay) -> usize {
    replay.records_skipped += 1;
    let mut pos = from;
    while pos + 4 <= bytes.len() {
        if bytes[pos..pos + 4] == REC_MAGIC {
            return pos;
        }
        pos += 1;
    }
    bytes.len()
}

/// Applies one checksum-verified record body. Records are merged by job id
/// order-insensitively: `Dispatched`/`Completed` may land before their
/// `Admitted` (appends from concurrent workers are not globally ordered).
/// Returns `false` when the body is structurally malformed despite a
/// clean checksum (only reachable via a hostile writer).
fn apply_record(body: &[u8], replay: &mut JournalReplay, jobs: &mut HashMap<u64, usize>) -> bool {
    let mut c = Cursor { buf: body, pos: 0 };
    let Some(_seq) = c.u64() else { return false };
    let Some(kind) = c.u8() else { return false };
    match kind {
        KIND_ADMITTED => {
            let (Some(id), Some(deadline), Some(pd), Some(ind), Some(kd), Some(tlen)) = (
                c.u64(),
                c.u64(),
                c.u64(),
                c.u64(),
                c.u64(),
                c.u16(),
            ) else {
                return false;
            };
            let Some(tenant) = c.take(tlen as usize) else { return false };
            let Ok(tenant) = std::str::from_utf8(tenant) else { return false };
            let job = entry(replay, jobs, id);
            job.tenant = tenant.to_string();
            job.deadline_ms = (deadline != u64::MAX).then_some(deadline);
            job.program_digest = pd;
            job.input_digest = ind;
            job.key_digest = kd;
            job.admitted = true;
            true
        }
        KIND_DISPATCHED => {
            let Some(id) = c.u64() else { return false };
            entry(replay, jobs, id).dispatched = true;
            true
        }
        KIND_COMPLETED => {
            let (Some(id), Some(len)) = (c.u64(), c.u32()) else { return false };
            let Some(output) = c.take(len as usize) else { return false };
            entry(replay, jobs, id).outcome = Some(ReplayedOutcome {
                code: 0,
                detail: String::new(),
                output: Some(output.to_vec()),
            });
            true
        }
        KIND_FAILED => {
            let (Some(id), Some(code), Some(dlen)) = (c.u64(), c.u16(), c.u16()) else {
                return false;
            };
            let Some(detail) = c.take(dlen as usize) else { return false };
            entry(replay, jobs, id).outcome = Some(ReplayedOutcome {
                code,
                detail: String::from_utf8_lossy(detail).into_owned(),
                output: None,
            });
            true
        }
        KIND_BLOB => {
            let (Some(digest), Some(len)) = (c.u64(), c.u32()) else { return false };
            let Some(blob) = c.take(len as usize) else { return false };
            // A flipped blob *payload* byte still checksums clean at the
            // record layer only if the flip predates the append; verify
            // the content digest so a blob can never lie about itself.
            if fnv1a_fast(blob) != digest {
                return false;
            }
            replay.blobs.insert(digest, blob.to_vec());
            true
        }
        _ => false,
    }
}

fn entry<'a>(
    replay: &'a mut JournalReplay,
    jobs: &mut HashMap<u64, usize>,
    id: u64,
) -> &'a mut ReplayedJob {
    let idx = *jobs.entry(id).or_insert_with(|| {
        replay.jobs.push(ReplayedJob {
            id,
            tenant: String::new(),
            deadline_ms: None,
            program_digest: 0,
            input_digest: 0,
            key_digest: 0,
            admitted: false,
            dispatched: false,
            outcome: None,
        });
        replay.jobs.len() - 1
    });
    &mut replay.jobs[idx]
}

/// Minimal tolerant little-endian cursor for replaying record bodies
/// (unlike [`cl_ckks::serialize::Reader`], a short read here is a skipped
/// record, not an error to surface).
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(len)?;
        if end > self.buf.len() {
            return None;
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Some(out)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|b| u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| {
            u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cl-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn admit(j: &mut Journal, id: u64, deadline_ms: Option<u64>) {
        let pd = j.append_blob(b"prog").expect("blob");
        let ind = j.append_blob(b"input").expect("blob");
        let kd = j.append_blob(b"keys").expect("blob");
        j.append_admitted(id, "acme", deadline_ms, pd, ind, kd)
            .expect("admit");
    }

    fn journaled_lifecycle(dir: &Path, ids: &[u64], finish: bool) -> Journal {
        let (mut j, _) = Journal::open(dir, FsyncPolicy::Never, 0).expect("open");
        for &id in ids {
            admit(&mut j, id, Some(5_000));
            j.append_dispatched(id).expect("dispatch");
            if finish {
                j.append_completed(id, b"output-bytes").expect("complete");
            }
        }
        j
    }

    #[test]
    fn roundtrips_lifecycle_records_and_dedups_blobs() {
        let dir = tmp_dir("roundtrip");
        let j = journaled_lifecycle(&dir, &[1, 2], false);
        drop(j);
        let (_, replay) = Journal::open(&dir, FsyncPolicy::Never, 0).expect("reopen");
        assert_eq!(replay.records_skipped, 0);
        // 3 blobs written once (deduped across both jobs) + 2 admits + 2
        // dispatches.
        assert_eq!(replay.records_replayed, 7);
        assert_eq!(replay.blobs.len(), 3);
        assert_eq!(replay.jobs.len(), 2);
        for job in &replay.jobs {
            assert!(job.admitted && job.dispatched);
            assert!(job.outcome.is_none());
            assert_eq!(job.tenant, "acme");
            assert_eq!(job.deadline_ms, Some(5_000));
            assert_eq!(replay.blobs[&job.input_digest], b"input");
        }
        assert_eq!(replay.max_job_id(), Some(2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn completed_jobs_replay_their_outcome() {
        let dir = tmp_dir("completed");
        drop(journaled_lifecycle(&dir, &[7], true));
        let (mut j, replay) = Journal::open(&dir, FsyncPolicy::Never, 0).expect("reopen");
        let outcome = replay.jobs[0].outcome.as_ref().expect("outcome");
        assert_eq!(outcome.code, 0);
        assert_eq!(outcome.output.as_deref(), Some(&b"output-bytes"[..]));
        j.append_failed(8, 3, "guardrail said no").expect("fail");
        drop(j);
        let (_, replay) = Journal::open(&dir, FsyncPolicy::Never, 0).expect("reopen2");
        let failed = replay.jobs.iter().find(|x| x.id == 8).expect("job 8");
        let outcome = failed.outcome.as_ref().expect("outcome");
        assert_eq!(outcome.code, 3);
        assert_eq!(outcome.detail, "guardrail said no");
        assert!(outcome.output.is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_skipped_but_prior_records_survive() {
        let dir = tmp_dir("torn");
        let j = journaled_lifecycle(&dir, &[1], false);
        let path = j.path().to_path_buf();
        drop(j);
        let full = fs::read(&path).expect("read");
        // Truncate mid-way through the final record.
        fs::write(&path, &full[..full.len() - 5]).expect("truncate");
        let (_, replay) = Journal::open(&dir, FsyncPolicy::Never, 0).expect("reopen");
        assert_eq!(replay.records_skipped, 1);
        assert_eq!(replay.records_replayed, 4);
        let job = &replay.jobs[0];
        assert!(job.admitted);
        assert!(!job.dispatched, "torn dispatch record must not apply");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_byte_loses_one_record_and_resyncs() {
        let dir = tmp_dir("flip");
        let j = journaled_lifecycle(&dir, &[1, 2], false);
        let path = j.path().to_path_buf();
        drop(j);
        let mut bytes = fs::read(&path).expect("read");
        // Flip one byte inside the first record after the file header; the
        // replay must resync and still recover the later records.
        bytes[20] ^= 0x40;
        fs::write(&path, &bytes).expect("write");
        let (_, replay) = Journal::open(&dir, FsyncPolicy::Never, 0).expect("reopen");
        assert!(replay.records_skipped >= 1);
        assert!(replay.records_replayed >= 5);
        assert!(replay.jobs.iter().any(|job| job.id == 2 && job.admitted));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_file_header_abandons_the_file_without_panicking() {
        let dir = tmp_dir("header");
        let j = journaled_lifecycle(&dir, &[1], false);
        let path = j.path().to_path_buf();
        drop(j);
        let mut bytes = fs::read(&path).expect("read");
        bytes[0] ^= 0xff;
        fs::write(&path, &bytes).expect("write");
        let (_, replay) = Journal::open(&dir, FsyncPolicy::Never, 0).expect("reopen");
        assert_eq!(replay.records_replayed, 0);
        assert_eq!(replay.records_skipped, 1);
        assert!(replay.jobs.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_rolls_the_generation_and_keeps_live_jobs() {
        let dir = tmp_dir("compact");
        let (mut j, _) = Journal::open(&dir, FsyncPolicy::Never, 2).expect("open");
        for id in 1..=3u64 {
            admit(&mut j, id, None);
        }
        j.append_completed(1, b"out1").expect("c1");
        assert_eq!(j.compactions(), 0);
        j.append_completed(2, b"out2").expect("c2");
        assert_eq!(j.compactions(), 1, "threshold 2 must trigger compaction");
        assert!(j.path().ends_with("journal-1.wal"));
        assert!(!gen_path(&dir, 0).exists(), "old generation retired");
        // Job 3 (live) must survive compaction with its blobs; jobs 1-2
        // and their outputs are gone.
        drop(j);
        let (_, replay) = Journal::open(&dir, FsyncPolicy::Never, 2).expect("reopen");
        assert_eq!(replay.jobs.len(), 1);
        assert_eq!(replay.jobs[0].id, 3);
        assert!(replay.jobs[0].admitted);
        assert_eq!(replay.blobs.len(), 3);
        assert_eq!(replay.records_skipped, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn appends_keep_working_across_a_compaction() {
        let dir = tmp_dir("compact-append");
        let (mut j, _) = Journal::open(&dir, FsyncPolicy::Always, 1).expect("open");
        admit(&mut j, 1, None);
        j.append_completed(1, b"o1").expect("c1"); // triggers compaction
        assert_eq!(j.compactions(), 1);
        admit(&mut j, 2, None);
        j.append_dispatched(2).expect("d2");
        drop(j);
        let (_, replay) = Journal::open(&dir, FsyncPolicy::Never, 1).expect("reopen");
        assert_eq!(replay.records_skipped, 0);
        assert_eq!(replay.jobs.len(), 1);
        assert!(replay.jobs[0].dispatched);
        // Blobs were re-deduplicated into the fresh generation.
        assert_eq!(replay.blobs.len(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_policy_parses_from_env_shapes() {
        // Not exercising the env var itself (process-global); just the
        // parse behaviour via explicit construction.
        assert_eq!(FsyncPolicy::Batch(32), FsyncPolicy::from_env());
    }
}
