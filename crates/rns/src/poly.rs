//! The residue polynomial container.

use crate::{Basis, RnsError};

/// A polynomial over a sub-basis of an [`crate::RnsContext`]'s moduli.
///
/// Storage is limb-major: all `n` coefficients of the first residue
/// polynomial, then the second, and so on — matching how CraterLake streams
/// one residue polynomial at a time through its vector functional units.
///
/// The `ntt_form` flag records which domain the data is in; operations that
/// require a particular domain assert it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RnsPoly {
    n: usize,
    basis: Basis,
    coeffs: Vec<u64>,
    ntt_form: bool,
    /// Bitmap of global limb indices `< 128` present in `basis`, kept in sync
    /// by the constructors and [`RnsPoly::push_limb`]. Makes the duplicate
    /// check in `push_limb` O(1) for the common case instead of an O(limbs)
    /// scan per pushed limb.
    limb_mask: u128,
}

fn mask_of(basis: &Basis) -> u128 {
    basis
        .0
        .iter()
        .filter(|&&l| l < 128)
        .fold(0u128, |acc, &l| acc | (1u128 << l))
}

impl RnsPoly {
    /// An all-zero polynomial over `basis` in coefficient form.
    pub fn zero(n: usize, basis: Basis) -> Self {
        let len = n * basis.len();
        let limb_mask = mask_of(&basis);
        Self {
            n,
            basis,
            coeffs: vec![0; len],
            ntt_form: false,
            limb_mask,
        }
    }

    /// Rebuilds a polynomial from previously extracted raw parts.
    ///
    /// This is the fallible constructor used by deserialization: it validates
    /// that the coefficient slab length matches `n * basis.len()` and that the
    /// basis contains no duplicate limbs, returning
    /// [`RnsError::InvalidParameter`] otherwise. It does **not** check residue
    /// ranges — callers that need that (e.g. ciphertext loaders) validate
    /// against their modulus chain separately.
    pub fn from_raw_parts(
        n: usize,
        basis: Basis,
        coeffs: Vec<u64>,
        ntt_form: bool,
    ) -> Result<Self, RnsError> {
        if n == 0 {
            return Err(RnsError::InvalidParameter(
                "ring degree must be non-zero".into(),
            ));
        }
        if coeffs.len() != n * basis.len() {
            return Err(RnsError::InvalidParameter(format!(
                "coefficient slab has {} words, expected {} (n={} x {} limbs)",
                coeffs.len(),
                n * basis.len(),
                n,
                basis.len()
            )));
        }
        let limb_mask = mask_of(&basis);
        // The bitmap covers global indices < 128; a duplicate collapses two
        // bits into one, so a popcount mismatch detects it. Indices >= 128
        // (never produced by our parameter sets) get an exact scan.
        let small = basis.0.iter().filter(|&&l| l < 128).count();
        let mut dup = limb_mask.count_ones() as usize != small;
        if !dup && small != basis.len() {
            let mut seen = basis.0.clone();
            seen.sort_unstable();
            dup = seen.windows(2).any(|w| w[0] == w[1]);
        }
        if dup {
            return Err(RnsError::InvalidParameter(
                "basis contains a duplicate limb".into(),
            ));
        }
        Ok(Self {
            n,
            basis,
            coeffs,
            ntt_form,
            limb_mask,
        })
    }

    /// Ring degree.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The basis this polynomial lives in.
    #[inline]
    pub fn basis(&self) -> &Basis {
        &self.basis
    }

    /// Number of residue polynomials (limbs).
    #[inline]
    pub fn num_limbs(&self) -> usize {
        self.basis.len()
    }

    /// Whether the data is in the NTT (evaluation) domain.
    #[inline]
    pub fn ntt_form(&self) -> bool {
        self.ntt_form
    }

    /// Sets the domain flag (used by the context's transform routines).
    #[inline]
    pub fn set_ntt_form(&mut self, ntt: bool) {
        self.ntt_form = ntt;
    }

    /// The `k`-th residue polynomial (by position within the basis).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[inline]
    pub fn limb(&self, k: usize) -> &[u64] {
        &self.coeffs[k * self.n..(k + 1) * self.n]
    }

    /// Mutable access to the `k`-th residue polynomial.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[inline]
    pub fn limb_mut(&mut self, k: usize) -> &mut [u64] {
        &mut self.coeffs[k * self.n..(k + 1) * self.n]
    }

    /// Iterator over `(global limb index, residue polynomial)` pairs.
    pub fn limbs(&self) -> impl Iterator<Item = (u32, &[u64])> {
        self.basis
            .0
            .iter()
            .copied()
            .zip(self.coeffs.chunks_exact(self.n))
    }

    /// The full limb-major coefficient slab.
    #[inline]
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Splits the polynomial into its basis and the mutable coefficient slab.
    ///
    /// The parallel execution engine needs to read the basis (to look up
    /// per-limb moduli) while handing disjoint `n`-word chunks of the slab to
    /// worker threads; a plain `&mut self` borrow would forbid that.
    #[inline]
    pub fn parts_mut(&mut self) -> (&Basis, &mut [u64]) {
        (&self.basis, &mut self.coeffs)
    }

    /// Appends a residue polynomial for global limb `limb`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.n()` or the limb is already present.
    pub fn push_limb(&mut self, limb: u32, data: &[u64]) {
        assert_eq!(data.len(), self.n);
        // O(1) membership via the cached bitmap for global indices < 128
        // (q-limbs then p-limbs — always small in practice); indices beyond
        // the bitmap fall back to an exact scan.
        let dup = if limb < 128 {
            self.limb_mask & (1u128 << limb) != 0
        } else {
            self.basis.0.contains(&limb)
        };
        assert!(!dup, "limb {limb} already present");
        if limb < 128 {
            self.limb_mask |= 1u128 << limb;
        }
        self.basis.0.push(limb);
        self.coeffs.extend_from_slice(data);
    }

    /// Total number of machine words of payload (used by footprint
    /// accounting).
    #[inline]
    pub fn num_words(&self) -> usize {
        self.coeffs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_has_requested_shape() {
        let p = RnsPoly::zero(16, Basis(vec![0, 2, 5]));
        assert_eq!(p.n(), 16);
        assert_eq!(p.num_limbs(), 3);
        assert_eq!(p.num_words(), 48);
        assert!(!p.ntt_form());
        assert!(p.limb(2).iter().all(|&x| x == 0));
    }

    #[test]
    fn limb_views_are_disjoint() {
        let mut p = RnsPoly::zero(4, Basis(vec![0, 1]));
        p.limb_mut(0).copy_from_slice(&[1, 2, 3, 4]);
        p.limb_mut(1).copy_from_slice(&[5, 6, 7, 8]);
        assert_eq!(p.limb(0), &[1, 2, 3, 4]);
        assert_eq!(p.limb(1), &[5, 6, 7, 8]);
    }

    #[test]
    fn push_limb_extends_basis() {
        let mut p = RnsPoly::zero(4, Basis(vec![0]));
        p.push_limb(3, &[9, 9, 9, 9]);
        assert_eq!(p.basis().0, vec![0, 3]);
        assert_eq!(p.limb(1), &[9, 9, 9, 9]);
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn push_duplicate_limb_panics() {
        let mut p = RnsPoly::zero(4, Basis(vec![0]));
        p.push_limb(0, &[1, 1, 1, 1]);
    }

    #[test]
    fn from_raw_parts_validates_shape() {
        let p = RnsPoly::from_raw_parts(2, Basis(vec![0, 3]), vec![1, 2, 3, 4], true).unwrap();
        assert_eq!(p.limb(1), &[3, 4]);
        assert!(p.ntt_form());
        // Wrong slab length.
        assert!(RnsPoly::from_raw_parts(2, Basis(vec![0, 3]), vec![1, 2, 3], true).is_err());
        // Duplicate limb.
        assert!(RnsPoly::from_raw_parts(2, Basis(vec![3, 3]), vec![1, 2, 3, 4], false).is_err());
        // Zero degree.
        assert!(RnsPoly::from_raw_parts(0, Basis(vec![]), vec![], false).is_err());
    }

    #[test]
    fn limbs_iterator_pairs_indices() {
        let mut p = RnsPoly::zero(2, Basis(vec![7, 9]));
        p.limb_mut(0).copy_from_slice(&[1, 2]);
        p.limb_mut(1).copy_from_slice(&[3, 4]);
        let pairs: Vec<(u32, Vec<u64>)> = p.limbs().map(|(i, s)| (i, s.to_vec())).collect();
        assert_eq!(pairs, vec![(7, vec![1, 2]), (9, vec![3, 4])]);
    }
}
