//! Residue-number-system (RNS) polynomial arithmetic.
//!
//! FHE ciphertext polynomials have coefficients modulo a very wide modulus
//! `Q = q_1 q_2 ... q_L` (up to ~1,700 bits for deep programs). RNS
//! representation (Sec. 2.4) stores such a polynomial as `L` *residue
//! polynomials* with word-sized coefficients — the unit of work of every
//! CraterLake functional unit. This crate provides:
//!
//! - [`RnsContext`]: a ring degree plus the global chain of ciphertext
//!   moduli (`q_i`) and special moduli (`p_j`) with their NTT tables,
//! - [`RnsPoly`]: a polynomial over an arbitrary sub-basis of those moduli,
//! - [`BaseConverter`]: the fast base conversion `changeRNSBase()` of
//!   Listing 1 — the kernel the CRB functional unit accelerates — plus the
//!   exact division-and-round used by rescaling and `ModDown`.
//!
//! # Example
//!
//! ```
//! use cl_rns::RnsContext;
//! let ctx = RnsContext::generate(64, 3, 2, 28).unwrap();
//! let basis = ctx.q_basis(3);
//! let a = ctx.sample_uniform(&basis, &mut rand::thread_rng());
//! let sum = ctx.add(&a, &a);
//! let two_a = ctx.scalar_mul(&a, 2);
//! assert_eq!(sum, two_a);
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod baseconv;
mod context;
mod poly;
mod scratch;

pub use baseconv::{mod_down, mod_down_ntt, rescale, rescale_with, BaseConverter};
pub use context::{Basis, RnsContext, RnsError};
pub use poly::RnsPoly;
pub use scratch::with_scratch;
