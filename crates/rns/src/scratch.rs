//! Thread-local scratch buffers for allocation-free hot paths.
//!
//! Base conversion and boosted keyswitching need short-lived `u64` slabs
//! (the converted-limb matrix, the floating-point correction row, the
//! assembled extended polynomial). Allocating them per call puts `malloc`
//! on the critical path of every rescale and keyswitch; this module keeps a
//! small per-thread pool of reusable buffers instead.
//!
//! Buffers are handed out via [`with_scratch`], which passes a zeroed
//! `&mut Vec<u64>` of the requested length to the closure and returns the
//! buffer to the pool afterwards. Nested calls get distinct buffers, so
//! callers can freely compose (e.g. base conversion inside keyswitching).

use std::cell::RefCell;

thread_local! {
    static POOL: RefCell<Vec<Vec<u64>>> = const { RefCell::new(Vec::new()) };
}

/// Maximum number of idle buffers retained per thread. More simultaneous
/// buffers than this still work — the extras are simply freed on return.
const MAX_POOLED: usize = 8;

/// Runs `f` with a zeroed scratch buffer of exactly `len` words.
///
/// The buffer is recycled from (and returned to) a thread-local pool, so
/// steady-state hot loops perform no heap allocation. The closure may resize
/// the vector; it is re-trimmed when pooled.
pub fn with_scratch<R>(len: usize, f: impl FnOnce(&mut Vec<u64>) -> R) -> R {
    let mut buf = POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_default();
    buf.clear();
    buf.resize(len, 0);
    let out = f(&mut buf);
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < MAX_POOLED {
            // Re-trim before pooling: a closure that grew the vector beyond
            // the requested length must not pin that larger allocation in
            // the pool for the rest of the thread's life. Capacity that
            // came from the request itself (`len`) is kept — that is the
            // reuse the pool exists for.
            buf.truncate(len);
            buf.shrink_to(len);
            pool.push(buf);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_is_zeroed_and_sized() {
        with_scratch(16, |b| {
            assert_eq!(b.len(), 16);
            assert!(b.iter().all(|&x| x == 0));
            b[0] = 7;
        });
        // The dirtied buffer comes back zeroed.
        with_scratch(16, |b| {
            assert!(b.iter().all(|&x| x == 0));
        });
    }

    #[test]
    fn nested_scratch_buffers_are_distinct() {
        with_scratch(8, |outer| {
            outer[0] = 1;
            with_scratch(8, |inner| {
                assert_eq!(inner[0], 0);
                inner[0] = 2;
            });
            assert_eq!(outer[0], 1);
        });
    }

    #[test]
    fn closure_grown_capacity_is_not_retained() {
        // Regression: a closure that grows its buffer far beyond the
        // requested length used to pin that allocation in the pool forever.
        with_scratch(8, |b| {
            b.resize(1 << 20, 0);
        });
        with_scratch(8, |b| {
            assert!(
                b.capacity() < 1 << 20,
                "pool retained a closure-grown {}-word buffer for an 8-word request",
                b.capacity()
            );
        });
    }

    #[test]
    fn reuses_capacity_across_calls() {
        let ptr1 = with_scratch(1024, |b| b.as_ptr() as usize);
        let ptr2 = with_scratch(512, |b| b.as_ptr() as usize);
        // Same thread, same pooled allocation (capacity 1024 covers 512).
        assert_eq!(ptr1, ptr2);
    }
}
