//! The RNS context: ring degree, modulus chains, and NTT tables.
//!
//! Every per-limb operation dispatches its limbs across the global worker
//! pool (`CL_THREADS` threads; see `vendor/rayon`): limbs are fully
//! data-independent — exactly the parallelism CraterLake exploits by
//! streaming one residue polynomial per vector-lane group — so results are
//! bit-identical at every thread count.

use std::fmt;
use std::sync::Arc;

use cl_math::{generate_ntt_primes, MathError, Modulus, NttTable};
use rand::Rng;
use rayon::prelude::*;

use crate::RnsPoly;

/// Errors produced by RNS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RnsError {
    /// Underlying math error (e.g. prime generation).
    Math(MathError),
    /// Two polynomials had incompatible bases.
    BasisMismatch {
        /// Basis of the left operand.
        left: Vec<u32>,
        /// Basis of the right operand.
        right: Vec<u32>,
    },
    /// A parameter was outside the supported range.
    InvalidParameter(String),
}

impl fmt::Display for RnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RnsError::Math(e) => write!(f, "math error: {e}"),
            RnsError::BasisMismatch { left, right } => {
                write!(f, "basis mismatch: {left:?} vs {right:?}")
            }
            RnsError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for RnsError {}

impl From<MathError> for RnsError {
    fn from(e: MathError) -> Self {
        RnsError::Math(e)
    }
}

/// An ordered set of limb indices into an [`RnsContext`]'s global modulus
/// list, identifying the basis a polynomial lives in.
///
/// Indices `0..num_q` are ciphertext moduli `q_1..q_L`; indices `num_q..`
/// are the special moduli `p_1..p_k` used by boosted keyswitching.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Basis(pub Vec<u32>);

impl Basis {
    /// Number of limbs.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the basis has no limbs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Concatenation of two disjoint bases.
    ///
    /// # Panics
    ///
    /// Panics if the bases share a limb.
    pub fn union(&self, other: &Basis) -> Basis {
        let mut v = self.0.clone();
        for &i in &other.0 {
            assert!(!v.contains(&i), "bases must be disjoint");
            v.push(i);
        }
        Basis(v)
    }
}

/// Shared parameters for a family of RNS polynomials: the ring degree `n`,
/// the ciphertext modulus chain, the special moduli, and NTT tables for all
/// of them.
#[derive(Debug)]
pub struct RnsContext {
    n: usize,
    moduli: Vec<u64>,
    modulus_structs: Vec<Modulus>,
    /// Shared via the process-wide `(n, q)` cache: contexts over the same
    /// chain (every test fixture, every `CkksContext`) reuse one table
    /// allocation per modulus instead of rebuilding `O(n log n)` twiddles.
    tables: Vec<Arc<NttTable>>,
    num_q: usize,
}

impl RnsContext {
    /// Builds a context from explicit moduli lists.
    ///
    /// # Errors
    ///
    /// Returns [`RnsError::InvalidParameter`] if any modulus is not an
    /// NTT-friendly prime for ring degree `n`, or if moduli repeat.
    pub fn new(n: usize, q_moduli: &[u64], p_moduli: &[u64]) -> Result<Self, RnsError> {
        let mut moduli: Vec<u64> = q_moduli.to_vec();
        moduli.extend_from_slice(p_moduli);
        if moduli.is_empty() {
            return Err(RnsError::InvalidParameter("empty modulus list".into()));
        }
        let mut seen = moduli.clone();
        seen.sort_unstable();
        if seen.windows(2).any(|w| w[0] == w[1]) {
            return Err(RnsError::InvalidParameter("repeated modulus".into()));
        }
        let mut tables = Vec::with_capacity(moduli.len());
        let mut modulus_structs = Vec::with_capacity(moduli.len());
        for &q in &moduli {
            let t = NttTable::cached(n, q).ok_or_else(|| {
                RnsError::InvalidParameter(format!("{q} is not an NTT-friendly prime for n={n}"))
            })?;
            modulus_structs.push(*t.modulus());
            tables.push(t);
        }
        Ok(Self {
            n,
            moduli,
            modulus_structs,
            tables,
            num_q: q_moduli.len(),
        })
    }

    /// Generates a context with `q_count` ciphertext moduli and `p_count`
    /// special moduli, all primes of `bits` bits.
    ///
    /// # Errors
    ///
    /// Propagates prime-generation failures (e.g. not enough primes of the
    /// requested width).
    pub fn generate(n: usize, q_count: usize, p_count: usize, bits: u32) -> Result<Self, RnsError> {
        let primes = generate_ntt_primes(n, bits, q_count + p_count)?;
        Self::new(n, &primes[..q_count], &primes[q_count..])
    }

    /// Ring degree.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of ciphertext moduli (`L_max`).
    #[inline]
    pub fn num_q(&self) -> usize {
        self.num_q
    }

    /// Number of special moduli.
    #[inline]
    pub fn num_p(&self) -> usize {
        self.moduli.len() - self.num_q
    }

    /// The modulus value for a global limb index.
    ///
    /// # Panics
    ///
    /// Panics if `limb` is out of range.
    #[inline]
    pub fn modulus_value(&self, limb: u32) -> u64 {
        self.moduli[limb as usize]
    }

    /// The [`Modulus`] arithmetic helper for a global limb index.
    #[inline]
    pub fn modulus(&self, limb: u32) -> &Modulus {
        &self.modulus_structs[limb as usize]
    }

    /// The NTT table for a global limb index.
    #[inline]
    pub fn ntt_table(&self, limb: u32) -> &NttTable {
        &self.tables[limb as usize]
    }

    /// The shared (process-cached) NTT table for a global limb index.
    #[inline]
    pub fn ntt_table_arc(&self, limb: u32) -> Arc<NttTable> {
        Arc::clone(&self.tables[limb as usize])
    }

    /// The basis `q_1..q_level` (the first `level` ciphertext moduli).
    ///
    /// # Panics
    ///
    /// Panics if `level` exceeds the number of ciphertext moduli.
    pub fn q_basis(&self, level: usize) -> Basis {
        assert!(level <= self.num_q, "level exceeds modulus chain");
        Basis((0..level as u32).collect())
    }

    /// The basis of the first `count` special moduli.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds the number of special moduli.
    pub fn p_basis(&self, count: usize) -> Basis {
        assert!(count <= self.num_p(), "not enough special moduli");
        Basis((self.num_q as u32..(self.num_q + count) as u32).collect())
    }

    /// Allocates an all-zero polynomial over `basis`, in NTT form.
    pub fn zero(&self, basis: &Basis) -> RnsPoly {
        RnsPoly::zero(self.n, basis.clone())
    }

    /// Runs `f(local index, global limb, limb data)` for every limb of `p`,
    /// dispatching the disjoint `n`-word limb chunks across the worker pool.
    ///
    /// This is the limb-level execution engine: one task per residue
    /// polynomial, mirroring how CraterLake schedules whole residue
    /// polynomials onto its lane groups. Items are data-independent, so the
    /// result is bit-identical at any thread count.
    fn par_limbs(&self, p: &mut RnsPoly, f: impl Fn(usize, u32, &mut [u64]) + Sync) {
        let n = self.n;
        let (basis, coeffs) = p.parts_mut();
        let limbs = &basis.0;
        coeffs
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(k, chunk)| f(k, limbs[k], chunk));
    }

    /// Samples a polynomial with uniformly random residues (NTT form —
    /// uniform is uniform in either domain).
    pub fn sample_uniform<R: Rng + ?Sized>(&self, basis: &Basis, rng: &mut R) -> RnsPoly {
        let mut p = RnsPoly::zero(self.n, basis.clone());
        for (k, &limb) in basis.0.iter().enumerate() {
            let q = self.moduli[limb as usize];
            for c in p.limb_mut(k) {
                *c = rng.gen_range(0..q);
            }
        }
        p.set_ntt_form(true);
        p
    }

    /// Deterministically expands `(seed, domain)` into a polynomial with
    /// uniformly pseudorandom residues (NTT form) — the software KSHGen
    /// generator.
    ///
    /// Each limb's residues come from an independent splitmix64 counter
    /// stream keyed by `(seed, domain, global limb index)`, so the output is
    /// bit-identical at any thread count and for any basis containing the
    /// same global limbs. The raw 64-bit words are reduced into `[0, q)` by
    /// the vectorized [`cl_math::Modulus::reduce_raw_slice`] kernel; the
    /// modulo bias is at most `q / 2^64 < 2^-4` per residue *probability*
    /// deviation — negligible against the `2^-40`-grade uniformity the hint
    /// half needs, and identical on every backend.
    ///
    /// `domain` separates independent streams drawn from one seed (the
    /// keyswitch digit index).
    pub fn sample_uniform_seeded(&self, basis: &Basis, seed: u64, domain: u64) -> RnsPoly {
        let mut p = RnsPoly::zero(self.n, basis.clone());
        self.par_limbs(&mut p, |_, limb, data| {
            let mut state = stream_key(seed, domain, limb);
            for c in data.iter_mut() {
                *c = splitmix64(&mut state);
            }
            self.modulus_structs[limb as usize].reduce_raw_slice(data);
        });
        p.set_ntt_form(true);
        cl_trace::record_hint_regen(basis.len() as u64);
        p
    }

    /// Samples a polynomial with ternary coefficients in `{-1, 0, 1}`
    /// (coefficient form). Used for secret keys.
    pub fn sample_ternary<R: Rng + ?Sized>(&self, basis: &Basis, rng: &mut R) -> RnsPoly {
        let signed: Vec<i64> = (0..self.n).map(|_| rng.gen_range(-1i64..=1)).collect();
        self.from_signed_coeffs(&signed, basis)
    }

    /// Samples a polynomial with centered-binomial error coefficients of
    /// standard deviation ~3.2 (coefficient form). Used for encryption noise.
    pub fn sample_error<R: Rng + ?Sized>(&self, basis: &Basis, rng: &mut R) -> RnsPoly {
        // Sum of 21 signed coin flips: variance 21/2 ≈ 10.5, sigma ≈ 3.24.
        let signed: Vec<i64> = (0..self.n)
            .map(|_| {
                let mut s = 0i64;
                for _ in 0..21 {
                    s += rng.gen_range(0..=1) as i64 * 2 - 1;
                }
                s / 2
            })
            .collect();
        self.from_signed_coeffs(&signed, basis)
    }

    /// Builds a polynomial (coefficient form) from signed integer
    /// coefficients, reduced into each modulus of `basis`.
    ///
    /// # Panics
    ///
    /// Panics if `signed.len() != self.n()`.
    pub fn from_signed_coeffs(&self, signed: &[i64], basis: &Basis) -> RnsPoly {
        assert_eq!(signed.len(), self.n);
        let mut p = RnsPoly::zero(self.n, basis.clone());
        self.par_limbs(&mut p, |_, limb, data| {
            let m = &self.modulus_structs[limb as usize];
            for (c, &s) in data.iter_mut().zip(signed) {
                *c = m.from_i64(s);
            }
        });
        p
    }

    /// Converts a polynomial to NTT form in place (no-op if already there).
    pub fn to_ntt(&self, p: &mut RnsPoly) {
        if p.ntt_form() {
            return;
        }
        self.par_limbs(p, |_, limb, data| {
            self.tables[limb as usize].forward(data);
        });
        p.set_ntt_form(true);
    }

    /// Converts a polynomial to coefficient form in place (no-op if already
    /// there).
    pub fn from_ntt(&self, p: &mut RnsPoly) {
        if !p.ntt_form() {
            return;
        }
        self.par_limbs(p, |_, limb, data| {
            self.tables[limb as usize].inverse(data);
        });
        p.set_ntt_form(false);
    }

    fn check_compatible(&self, a: &RnsPoly, b: &RnsPoly) {
        assert_eq!(
            a.basis(),
            b.basis(),
            "RNS operation on polynomials with different bases"
        );
        assert_eq!(
            a.ntt_form(),
            b.ntt_form(),
            "RNS operation on polynomials in different domains"
        );
    }

    /// Element-wise sum of two polynomials over the same basis and domain.
    ///
    /// # Panics
    ///
    /// Panics if bases or domains differ.
    pub fn add(&self, a: &RnsPoly, b: &RnsPoly) -> RnsPoly {
        self.check_compatible(a, b);
        let mut out = a.clone();
        self.add_assign(&mut out, b);
        out
    }

    /// In-place element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if bases or domains differ.
    pub fn add_assign(&self, a: &mut RnsPoly, b: &RnsPoly) {
        self.check_compatible(a, b);
        cl_trace::record_add(a.basis().len() as u64, self.n);
        self.par_limbs(a, |k, limb, data| {
            let m = self.modulus_structs[limb as usize];
            m.add_mod_slice(data, b.limb(k));
        });
    }

    /// Element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics if bases or domains differ.
    pub fn sub(&self, a: &RnsPoly, b: &RnsPoly) -> RnsPoly {
        let mut out = a.clone();
        self.sub_assign(&mut out, b);
        out
    }

    /// In-place element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics if bases or domains differ.
    pub fn sub_assign(&self, a: &mut RnsPoly, b: &RnsPoly) {
        self.check_compatible(a, b);
        cl_trace::record_add(a.basis().len() as u64, self.n);
        self.par_limbs(a, |k, limb, data| {
            let m = self.modulus_structs[limb as usize];
            m.sub_mod_slice(data, b.limb(k));
        });
    }

    /// Element-wise negation.
    pub fn neg(&self, a: &RnsPoly) -> RnsPoly {
        let mut out = a.clone();
        self.neg_assign(&mut out);
        out
    }

    /// In-place element-wise negation.
    pub fn neg_assign(&self, a: &mut RnsPoly) {
        cl_trace::record_add(a.basis().len() as u64, self.n);
        self.par_limbs(a, |_, limb, data| {
            let m = self.modulus_structs[limb as usize];
            m.neg_mod_slice(data);
        });
    }

    /// Polynomial product. Both operands must be in NTT form.
    ///
    /// # Panics
    ///
    /// Panics if bases differ or either operand is in coefficient form.
    pub fn mul(&self, a: &RnsPoly, b: &RnsPoly) -> RnsPoly {
        self.check_compatible(a, b);
        assert!(a.ntt_form(), "polynomial product requires NTT form");
        let mut out = a.clone();
        self.mul_assign(&mut out, b);
        out
    }

    /// In-place polynomial product (NTT form).
    ///
    /// # Panics
    ///
    /// Panics if bases differ or either operand is in coefficient form.
    pub fn mul_assign(&self, a: &mut RnsPoly, b: &RnsPoly) {
        self.check_compatible(a, b);
        assert!(a.ntt_form(), "polynomial product requires NTT form");
        cl_trace::record_mult(a.basis().len() as u64, self.n);
        self.par_limbs(a, |k, limb, data| {
            let m = self.modulus_structs[limb as usize];
            m.mul_mod_slice(data, b.limb(k));
        });
    }

    /// Multiply-accumulate: `acc += a * b` (all NTT form, same basis).
    ///
    /// # Panics
    ///
    /// Panics if bases differ or any operand is in coefficient form.
    pub fn mul_acc(&self, acc: &mut RnsPoly, a: &RnsPoly, b: &RnsPoly) {
        self.check_compatible(a, b);
        self.check_compatible(acc, a);
        assert!(acc.ntt_form(), "mul_acc requires NTT form");
        cl_trace::record_mult(acc.basis().len() as u64, self.n);
        cl_trace::record_add(acc.basis().len() as u64, self.n);
        self.par_limbs(acc, |k, limb, data| {
            let m = self.modulus_structs[limb as usize];
            m.mul_acc_mod_slice(data, a.limb(k), b.limb(k));
        });
    }

    /// Multiply-accumulate against a wider polynomial: `acc += a * b`,
    /// where `b` lives in a superset of `acc`'s basis (e.g. a keyswitch
    /// hint over the full chain applied at a lower level). Avoids
    /// materializing `b`'s restriction to the narrower basis.
    ///
    /// # Panics
    ///
    /// Panics if `acc` and `a` differ in basis or domain, any operand is in
    /// coefficient form, or `b` is missing one of `acc`'s limbs.
    pub fn mul_acc_superset(&self, acc: &mut RnsPoly, a: &RnsPoly, b: &RnsPoly) {
        self.check_compatible(acc, a);
        assert!(acc.ntt_form() && b.ntt_form(), "mul_acc requires NTT form");
        cl_trace::record_mult(acc.basis().len() as u64, self.n);
        cl_trace::record_add(acc.basis().len() as u64, self.n);
        let b_basis = &b.basis().0;
        self.par_limbs(acc, |k, limb, data| {
            let m = self.modulus_structs[limb as usize];
            let bk = b_basis
                .iter()
                .position(|&l| l == limb)
                .expect("b's basis must contain every limb of acc");
            m.mul_acc_mod_slice(data, a.limb(k), b.limb(bk));
        });
    }

    /// Like [`RnsContext::mul_acc_superset`], but multiplies the hint by
    /// `σ_galois(a)` instead of `a`, with the automorphism fused into the
    /// accumulation as a gather (`acc[i] += a[perm[i]] * b[i]`).
    ///
    /// In NTT form an automorphism is a pure index permutation, so hoisted
    /// rotation keyswitching can rotate the already-decomposed digit
    /// polynomials without ever materializing the permuted copies. The
    /// result is bit-identical to `mul_acc_superset(acc,
    /// apply_automorphism(a, galois), b)`.
    ///
    /// # Panics
    ///
    /// Same contract as [`RnsContext::mul_acc_superset`].
    pub fn mul_acc_superset_automorph(
        &self,
        acc: &mut RnsPoly,
        a: &RnsPoly,
        galois: u64,
        b: &RnsPoly,
    ) {
        self.check_compatible(acc, a);
        assert!(acc.ntt_form() && b.ntt_form(), "mul_acc requires NTT form");
        cl_trace::record_mult(acc.basis().len() as u64, self.n);
        cl_trace::record_add(acc.basis().len() as u64, self.n);
        cl_trace::record_automorph(acc.basis().len() as u64, self.n);
        let table = cl_math::AutomorphismTable::cached(self.n, galois);
        let perm = table.permutation();
        let b_basis = &b.basis().0;
        self.par_limbs(acc, |k, limb, data| {
            let m = self.modulus_structs[limb as usize];
            let bk = b_basis
                .iter()
                .position(|&l| l == limb)
                .expect("b's basis must contain every limb of acc");
            m.gather_mul_acc_slice(data, a.limb(k), perm, b.limb(bk));
        });
    }

    /// Fused pair accumulation `acc0[i] += σ(a)[i]·b0[i]` and
    /// `acc1[i] += σ(a)[i]·b1[i]` — the keyswitch inner-product shape,
    /// where both hint halves multiply the *same* decomposed digit. One
    /// pass per limb shares the (scattered, cache-unfriendly) gather of
    /// `σ(a)` between both accumulators instead of paying it twice.
    /// `galois` of `None` means the identity automorphism. Bit-identical
    /// to two [`RnsContext::mul_acc_superset`] /
    /// [`RnsContext::mul_acc_superset_automorph`] calls.
    ///
    /// # Panics
    ///
    /// Same contract as [`RnsContext::mul_acc_superset`] for each
    /// accumulator; additionally `acc0` and `acc1` must share a basis.
    pub fn mul_acc_pair_superset(
        &self,
        acc0: &mut RnsPoly,
        acc1: &mut RnsPoly,
        a: &RnsPoly,
        galois: Option<u64>,
        b0: &RnsPoly,
        b1: &RnsPoly,
    ) {
        self.check_compatible(acc0, a);
        self.check_compatible(acc1, a);
        assert_eq!(acc0.basis(), acc1.basis(), "accumulators must share a basis");
        assert!(
            acc0.ntt_form() && acc1.ntt_form() && b0.ntt_form() && b1.ntt_form(),
            "mul_acc requires NTT form"
        );
        cl_trace::record_mult(2 * acc0.basis().len() as u64, self.n);
        cl_trace::record_add(2 * acc0.basis().len() as u64, self.n);
        if galois.is_some() {
            cl_trace::record_automorph(acc0.basis().len() as u64, self.n);
        }
        let table = galois.map(|g| cl_math::AutomorphismTable::cached(self.n, g));
        let n = self.n;
        let b0_basis = &b0.basis().0;
        let b1_basis = &b1.basis().0;
        /// `*mut u64` wrapper the limb tasks can capture (the vendored
        /// rayon subset has no `zip`, so the second accumulator is reached
        /// through a raw pointer into its disjoint per-limb chunks).
        struct SyncPtr(*mut u64);
        unsafe impl Send for SyncPtr {}
        unsafe impl Sync for SyncPtr {}
        impl SyncPtr {
            fn get(&self) -> *mut u64 {
                self.0
            }
        }
        let ptr1 = SyncPtr(acc1.parts_mut().1.as_mut_ptr());
        self.par_limbs(acc0, |k, limb, d0| {
            let m = self.modulus_structs[limb as usize];
            let bk0 = b0_basis
                .iter()
                .position(|&l| l == limb)
                .expect("b0's basis must contain every limb of acc");
            let bk1 = b1_basis
                .iter()
                .position(|&l| l == limb)
                .expect("b1's basis must contain every limb of acc");
            let (a_limb, b0_limb, b1_limb) = (a.limb(k), b0.limb(bk0), b1.limb(bk1));
            // SAFETY: acc0 and acc1 share a basis, so acc1's limb `k` is a
            // disjoint n-word chunk owned by exactly this task.
            let d1 = unsafe { std::slice::from_raw_parts_mut(ptr1.get().add(k * n), n) };
            match &table {
                Some(t) => {
                    m.gather_mul_acc_pair_slice(d0, d1, a_limb, t.permutation(), b0_limb, b1_limb);
                }
                None => {
                    m.mul_acc_mod_slice(d0, a_limb, b0_limb);
                    m.mul_acc_mod_slice(d1, a_limb, b1_limb);
                }
            }
        });
    }

    /// Multiplies every coefficient by a small scalar.
    pub fn scalar_mul(&self, a: &RnsPoly, s: u64) -> RnsPoly {
        let mut out = a.clone();
        self.scalar_mul_assign(&mut out, s);
        out
    }

    /// In-place scalar multiplication.
    pub fn scalar_mul_assign(&self, a: &mut RnsPoly, s: u64) {
        cl_trace::record_mult(a.basis().len() as u64, self.n);
        self.par_limbs(a, |_, limb, data| {
            let m = self.modulus_structs[limb as usize];
            let s_red = m.reduce(s);
            m.mul_scalar_shoup_slice(data, s_red, m.shoup_precompute(s_red));
        });
    }

    /// Multiplies limb `k` of `a` by a per-limb constant already reduced
    /// modulo that limb.
    pub fn scalar_mul_per_limb(&self, a: &RnsPoly, consts: &[u64]) -> RnsPoly {
        let mut out = a.clone();
        self.scalar_mul_per_limb_assign(&mut out, consts);
        out
    }

    /// In-place per-limb scalar multiplication.
    ///
    /// # Panics
    ///
    /// Panics if `consts.len()` differs from the number of limbs.
    pub fn scalar_mul_per_limb_assign(&self, a: &mut RnsPoly, consts: &[u64]) {
        assert_eq!(consts.len(), a.basis().len());
        cl_trace::record_mult(a.basis().len() as u64, self.n);
        self.par_limbs(a, |k, limb, data| {
            let m = self.modulus_structs[limb as usize];
            m.mul_scalar_shoup_slice(data, consts[k], m.shoup_precompute(consts[k]));
        });
    }

    /// Applies the automorphism `X → X^k` to a polynomial, in either domain.
    pub fn apply_automorphism(&self, a: &RnsPoly, galois: u64) -> RnsPoly {
        let mut out = RnsPoly::zero(self.n, a.basis().clone());
        out.set_ntt_form(a.ntt_form());
        self.apply_automorphism_into(a, galois, &mut out);
        out
    }

    /// Allocation-free automorphism: writes `σ_galois(a)` into `out`, which
    /// must have the same basis and ring degree (its domain flag is set to
    /// match `a`).
    ///
    /// # Panics
    ///
    /// Panics if `out`'s basis differs from `a`'s.
    pub fn apply_automorphism_into(&self, a: &RnsPoly, galois: u64, out: &mut RnsPoly) {
        assert_eq!(a.basis(), out.basis(), "automorphism output basis mismatch");
        out.set_ntt_form(a.ntt_form());
        if a.ntt_form() {
            let table = cl_math::AutomorphismTable::cached(self.n, galois);
            self.par_limbs(out, |k, _, data| {
                cl_math::apply_automorphism_ntt_into(a.limb(k), &table, data);
            });
        } else {
            self.par_limbs(out, |k, limb, data| {
                let m = &self.modulus_structs[limb as usize];
                let mapped = cl_math::apply_automorphism_coeff(a.limb(k), galois, m);
                data.copy_from_slice(&mapped);
            });
        }
    }

    /// Restricts a polynomial to a sub-basis (drops limbs not in `target`).
    ///
    /// # Panics
    ///
    /// Panics if `target` is not a subset of the polynomial's basis.
    pub fn restrict(&self, a: &RnsPoly, target: &Basis) -> RnsPoly {
        let mut out = RnsPoly::zero(self.n, target.clone());
        out.set_ntt_form(a.ntt_form());
        for (dst_k, &limb) in target.0.iter().enumerate() {
            let src_k = a
                .basis()
                .0
                .iter()
                .position(|&l| l == limb)
                .expect("target basis must be a subset");
            out.limb_mut(dst_k).copy_from_slice(a.limb(src_k));
        }
        out
    }
}

/// The initial splitmix64 state for the `(seed, domain, limb)` stream.
///
/// Each component is pre-whitened with a distinct odd multiplier so that
/// nearby seeds / domains / limb indices land in unrelated stream positions.
/// This keying is part of the hint wire format: serialized keyswitch keys
/// store only `(seed, digit)` and regenerate the pseudorandom half through
/// this exact function, so it must never change silently.
#[inline]
fn stream_key(seed: u64, domain: u64, limb: u32) -> u64 {
    seed ^ (domain.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (u64::from(limb).wrapping_add(1)).wrapping_mul(0xD6E8_FEB8_6659_FD93)
}

/// One step of the splitmix64 sequence (Steele, Lea & Flood's generator) —
/// a counter-mode stream with full 64-bit avalanche per output word.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx() -> RnsContext {
        RnsContext::generate(32, 3, 2, 28).unwrap()
    }

    #[test]
    fn mul_acc_superset_automorph_matches_unfused() {
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let sub = c.q_basis(2);
        let full = c.q_basis(3).union(&c.p_basis(2));
        let a = c.sample_uniform(&sub, &mut rng);
        let b = c.sample_uniform(&full, &mut rng);
        let mut fused = c.zero(&sub);
        fused.set_ntt_form(true);
        let mut unfused = fused.clone();
        c.mul_acc_superset_automorph(&mut fused, &a, 5, &b);
        let rotated = c.apply_automorphism(&a, 5);
        c.mul_acc_superset(&mut unfused, &rotated, &b);
        assert_eq!(fused, unfused, "fused automorphism gather must be bit-exact");
    }

    #[test]
    fn mul_acc_pair_matches_two_single_calls() {
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let sub = c.q_basis(2);
        let full = c.q_basis(3).union(&c.p_basis(2));
        let a = c.sample_uniform(&sub, &mut rng);
        let b0 = c.sample_uniform(&full, &mut rng);
        let b1 = c.sample_uniform(&full, &mut rng);
        for galois in [None, Some(5u64)] {
            let mut p0 = c.zero(&sub);
            p0.set_ntt_form(true);
            let mut p1 = p0.clone();
            let mut s0 = p0.clone();
            let mut s1 = p0.clone();
            c.mul_acc_pair_superset(&mut p0, &mut p1, &a, galois, &b0, &b1);
            match galois {
                Some(g) => {
                    c.mul_acc_superset_automorph(&mut s0, &a, g, &b0);
                    c.mul_acc_superset_automorph(&mut s1, &a, g, &b1);
                }
                None => {
                    c.mul_acc_superset(&mut s0, &a, &b0);
                    c.mul_acc_superset(&mut s1, &a, &b1);
                }
            }
            assert_eq!(p0, s0, "paired acc0 must be bit-exact (galois={galois:?})");
            assert_eq!(p1, s1, "paired acc1 must be bit-exact (galois={galois:?})");
        }
    }

    #[test]
    fn generate_splits_q_and_p() {
        let c = ctx();
        assert_eq!(c.num_q(), 3);
        assert_eq!(c.num_p(), 2);
        assert_eq!(c.q_basis(2).0, vec![0, 1]);
        assert_eq!(c.p_basis(2).0, vec![3, 4]);
    }

    #[test]
    fn rejects_bad_moduli() {
        assert!(RnsContext::new(32, &[15], &[]).is_err()); // not prime
        assert!(RnsContext::new(32, &[], &[]).is_err()); // empty
        let q = generate_ntt_primes(32, 28, 1).unwrap()[0];
        assert!(RnsContext::new(32, &[q, q], &[]).is_err()); // repeated
    }

    #[test]
    fn ntt_roundtrip_on_poly() {
        let c = ctx();
        let basis = c.q_basis(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let p = c.sample_uniform(&basis, &mut rng);
        let mut q = p.clone();
        c.from_ntt(&mut q);
        assert!(!q.ntt_form());
        c.to_ntt(&mut q);
        assert_eq!(p, q);
    }

    #[test]
    fn add_sub_neg_identities() {
        let c = ctx();
        let basis = c.q_basis(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let a = c.sample_uniform(&basis, &mut rng);
        let b = c.sample_uniform(&basis, &mut rng);
        assert_eq!(c.sub(&c.add(&a, &b), &b), a);
        assert_eq!(c.add(&a, &c.neg(&a)), c.zero_like(&a));
    }

    #[test]
    fn mul_distributes_over_add() {
        let c = ctx();
        let basis = c.q_basis(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = c.sample_uniform(&basis, &mut rng);
        let b = c.sample_uniform(&basis, &mut rng);
        let x = c.sample_uniform(&basis, &mut rng);
        let lhs = c.mul(&x, &c.add(&a, &b));
        let rhs = c.add(&c.mul(&x, &a), &c.mul(&x, &b));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn mul_acc_matches_mul_then_add() {
        let c = ctx();
        let basis = c.q_basis(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let a = c.sample_uniform(&basis, &mut rng);
        let b = c.sample_uniform(&basis, &mut rng);
        let mut acc = c.sample_uniform(&basis, &mut rng);
        let expect = c.add(&acc, &c.mul(&a, &b));
        c.mul_acc(&mut acc, &a, &b);
        assert_eq!(acc, expect);
    }

    #[test]
    fn ternary_and_error_sampling_are_small() {
        let c = ctx();
        let basis = c.q_basis(1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let t = c.sample_ternary(&basis, &mut rng);
        let m = c.modulus(0);
        for &x in t.limb(0) {
            assert!(m.lift_centered(x).abs() <= 1);
        }
        let e = c.sample_error(&basis, &mut rng);
        for &x in e.limb(0) {
            assert!(m.lift_centered(x).abs() <= 11, "error sample too large");
        }
    }

    #[test]
    fn automorphism_consistent_between_domains() {
        let c = ctx();
        let basis = c.q_basis(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut a = c.sample_uniform(&basis, &mut rng);
        let via_ntt = c.apply_automorphism(&a, 3);
        c.from_ntt(&mut a);
        let mut via_coeff = c.apply_automorphism(&a, 3);
        c.to_ntt(&mut via_coeff);
        assert_eq!(via_ntt, via_coeff);
    }

    #[test]
    fn seeded_sampling_is_deterministic_and_basis_stable() {
        let c = ctx();
        let full = c.q_basis(3).union(&c.p_basis(2));
        let a = c.sample_uniform_seeded(&full, 42, 7);
        let b = c.sample_uniform_seeded(&full, 42, 7);
        assert_eq!(a, b, "same (seed, domain) must expand identically");
        assert!(a.ntt_form());
        for (k, &limb) in full.0.iter().enumerate() {
            let q = c.modulus_value(limb);
            assert!(a.limb(k).iter().all(|&x| x < q), "residues canonical");
        }
        // A sub-basis sharing global limbs reproduces the same residues —
        // the property serialization regen relies on.
        let sub = c.q_basis(2);
        let s = c.sample_uniform_seeded(&sub, 42, 7);
        for (k, _) in sub.0.iter().enumerate() {
            assert_eq!(s.limb(k), a.limb(k), "limb {k} stream diverged");
        }
        // Distinct domains and seeds give distinct streams.
        assert_ne!(c.sample_uniform_seeded(&full, 42, 8), a);
        assert_ne!(c.sample_uniform_seeded(&full, 43, 7), a);
    }

    impl RnsContext {
        fn zero_like(&self, a: &RnsPoly) -> RnsPoly {
            let mut z = self.zero(a.basis());
            z.set_ntt_form(a.ntt_form());
            z
        }
    }
}
