//! Fast RNS base conversion — `changeRNSBase()` of Listing 1.
//!
//! Boosted keyswitching (Sec. 3) is dominated by conversions of residue
//! polynomials between RNS bases: expanding the `L`-limb input to `2L` limbs
//! (`ModUp`) and shrinking the product back (`ModDown`). In hardware this is
//! the CRB functional unit's job; here we implement the arithmetic it
//! performs, in two flavors:
//!
//! - [`BaseConverter::convert`]: the *approximate* (floor) conversion used
//!   for `ModUp`, which may be off by a small multiple of the source modulus
//!   `Q` — harmless there, because the extra `alpha*Q` term is annihilated
//!   by the subsequent `ModDown`-by-`P` up to a small noise term.
//! - [`BaseConverter::convert_exact`]: the corrected conversion (with the
//!   floating-point `alpha` estimate of [Halevi-Polyakov-Shoup]) used for
//!   `ModDown` and rescaling, where the result must be the centered value.

use cl_math::BigUint;
use rayon::prelude::*;

use crate::scratch::with_scratch;
use crate::{Basis, RnsContext, RnsPoly};

/// Precomputed constants for converting polynomials from one RNS basis to
/// another (disjoint or overlapping is irrelevant — the destination is
/// computed fresh).
///
/// # Example
///
/// ```
/// use cl_rns::{BaseConverter, RnsContext};
/// let ctx = RnsContext::generate(16, 2, 2, 28).unwrap();
/// let conv = BaseConverter::new(&ctx, ctx.q_basis(2), ctx.p_basis(2));
/// let x = ctx.from_signed_coeffs(&vec![42; 16], &ctx.q_basis(2));
/// let y = conv.convert_exact(&ctx, &x);
/// // 42 is tiny, so the converted value is exactly 42 in the new basis.
/// assert_eq!(y.limb(0)[0], 42);
/// ```
#[derive(Debug)]
pub struct BaseConverter {
    src: Basis,
    dst: Basis,
    /// `[(Q/q_i)^{-1}]_{q_i}` for each source limb.
    inv_punctured: Vec<u64>,
    /// Shoup companions of `inv_punctured` (w.r.t. `q_i`).
    inv_punctured_shoup: Vec<u64>,
    /// `(Q/q_i) mod b_j`, indexed `[i][j]`.
    punctured_mod_dst: Vec<Vec<u64>>,
    /// Shoup companions of `punctured_mod_dst` (w.r.t. `b_j`).
    punctured_shoup_dst: Vec<Vec<u64>>,
    /// `Q mod b_j` for the alpha correction.
    q_mod_dst: Vec<u64>,
    /// Shoup companions of `q_mod_dst` (w.r.t. `b_j`).
    q_mod_dst_shoup: Vec<u64>,
    /// `[Q^{-1}]_{b_j}` — the source-product inverse `ModDown` multiplies by.
    inv_q_mod_dst: Vec<u64>,
    /// `1/q_i` as f64 for the alpha estimate.
    inv_q_f64: Vec<f64>,
}

impl BaseConverter {
    /// Precomputes conversion constants from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `src` is empty.
    pub fn new(ctx: &RnsContext, src: Basis, dst: Basis) -> Self {
        assert!(!src.is_empty(), "source basis must be nonempty");
        let src_moduli: Vec<u64> = src.0.iter().map(|&l| ctx.modulus_value(l)).collect();
        let q_big = BigUint::product(&src_moduli);
        let mut inv_punctured = Vec::with_capacity(src.len());
        let mut inv_punctured_shoup = Vec::with_capacity(src.len());
        let mut punctured_mod_dst: Vec<Vec<u64>> = Vec::with_capacity(src.len());
        let mut punctured_shoup_dst = Vec::with_capacity(src.len());
        for (i, &qi) in src_moduli.iter().enumerate() {
            let (qi_hat, rem) = q_big.div_rem_u64(qi);
            debug_assert_eq!(rem, 0);
            let m = ctx.modulus(src.0[i]);
            let inv = m.inv(qi_hat.rem_u64(qi));
            inv_punctured.push(inv);
            inv_punctured_shoup.push(m.shoup_precompute(inv));
            punctured_mod_dst.push(
                dst.0
                    .iter()
                    .map(|&l| qi_hat.rem_u64(ctx.modulus_value(l)))
                    .collect(),
            );
            punctured_shoup_dst.push(
                dst.0
                    .iter()
                    .zip(punctured_mod_dst[i].iter())
                    .map(|(&l, &w)| ctx.modulus(l).shoup_precompute(w))
                    .collect(),
            );
        }
        let q_mod_dst: Vec<u64> = dst
            .0
            .iter()
            .map(|&l| q_big.rem_u64(ctx.modulus_value(l)))
            .collect();
        let q_mod_dst_shoup: Vec<u64> = dst
            .0
            .iter()
            .zip(&q_mod_dst)
            .map(|(&l, &w)| ctx.modulus(l).shoup_precompute(w))
            .collect();
        // When the bases are disjoint (the only configuration ModDown uses),
        // Q is coprime to every destination modulus and the inverse exists;
        // an overlapping destination limb divides Q, recorded as 0.
        let inv_q_mod_dst = dst
            .0
            .iter()
            .zip(&q_mod_dst)
            .map(|(&l, &qm)| if qm == 0 { 0 } else { ctx.modulus(l).inv(qm) })
            .collect();
        let inv_q_f64 = src_moduli.iter().map(|&q| 1.0 / q as f64).collect();
        Self {
            src,
            dst,
            inv_punctured,
            inv_punctured_shoup,
            punctured_mod_dst,
            punctured_shoup_dst,
            q_mod_dst,
            q_mod_dst_shoup,
            inv_q_mod_dst,
            inv_q_f64,
        }
    }

    /// The source basis.
    pub fn src_basis(&self) -> &Basis {
        &self.src
    }

    /// The destination basis.
    pub fn dst_basis(&self) -> &Basis {
        &self.dst
    }

    /// `[Q^{-1}]_{b_j}` per destination limb (`Q` the source-basis product),
    /// or 0 where a destination limb divides `Q`. Precomputed so `ModDown`
    /// does not re-derive the inverses by modular exponentiation per call.
    pub fn src_prod_inv_mod_dst(&self) -> &[u64] {
        &self.inv_q_mod_dst
    }

    fn convert_inner(&self, ctx: &RnsContext, poly: &RnsPoly, exact: bool) -> RnsPoly {
        assert_eq!(poly.basis(), &self.src, "polynomial not in source basis");
        assert!(
            !poly.ntt_form(),
            "base conversion operates in the coefficient domain"
        );
        let n = poly.n();
        let l_src = self.src.len();
        let l_dst = self.dst.len();
        // The y-scaling pass is an element-wise mult per source limb; the
        // inner-product matrix is the CRB unit's workload (one pass per
        // (src, dst) limb pair); the exact correction is a fused mult+sub
        // per destination limb.
        cl_trace::record_mult(l_src as u64, n);
        cl_trace::record_base_conv((l_src * l_dst) as u64, n);
        if exact {
            cl_trace::record_mult(l_dst as u64, n);
            cl_trace::record_add(l_dst as u64, n);
        }
        // Both temporaries come from the thread-local scratch pool: the
        // punctured-product matrix `y` and the alpha row are the allocation
        // hot spots of every keyswitch and rescale.
        with_scratch(l_src * n, |y| {
            // y_i = [x_i * (Q/q_i)^{-1}]_{q_i}, one task per source limb.
            y.par_chunks_mut(n).enumerate().for_each(|(i, yi)| {
                let m = ctx.modulus(self.src.0[i]);
                yi.copy_from_slice(poly.limb(i));
                m.mul_scalar_shoup_slice(yi, self.inv_punctured[i], self.inv_punctured_shoup[i]);
            });
            let y = &*y;
            with_scratch(if exact { n } else { 0 }, |alpha| {
                // alpha_c estimate (how many multiples of Q the floor sum
                // overshoots by), via the Halevi-Polyakov-Shoup float trick.
                if exact {
                    for (c, a) in alpha.iter_mut().enumerate() {
                        let mut v = 0.0f64;
                        for i in 0..l_src {
                            v += y[i * n + c] as f64 * self.inv_q_f64[i];
                        }
                        *a = (v + 0.5).floor() as u64;
                    }
                }
                let alpha = &*alpha;
                let mut out = RnsPoly::zero(n, self.dst.clone());
                {
                    // One task per destination limb: the O(L_src * L_dst * n)
                    // inner-product matrix is the dominant cost (the CRB
                    // unit's workload).
                    let (dst_basis, coeffs) = out.parts_mut();
                    let dst_limbs = &dst_basis.0;
                    coeffs.par_chunks_mut(n).enumerate().for_each(|(j, out_limb)| {
                        let m = ctx.modulus(dst_limbs[j]);
                        // Shoup-lazy accumulation keeps the running sum in
                        // [0, 2q) across all source limbs; a single fused
                        // corrective pass canonicalizes at the end (and
                        // subtracts the alpha*Q term on the exact path)
                        // instead of reducing per term.
                        for i in 0..l_src {
                            m.mul_shoup_lazy_acc_slice(
                                out_limb,
                                &y[i * n..(i + 1) * n],
                                self.punctured_mod_dst[i][j],
                                self.punctured_shoup_dst[i][j],
                            );
                        }
                        if exact {
                            m.mul_shoup_sub_correct_slice(
                                out_limb,
                                alpha,
                                self.q_mod_dst[j],
                                self.q_mod_dst_shoup[j],
                            );
                        } else {
                            m.correct_lazy_slice(out_limb);
                        }
                    });
                }
                out
            })
        })
    }

    /// Approximate fast base conversion (the CRB operation): the result
    /// represents `x + alpha*Q` for some small `alpha in [0, L)`.
    ///
    /// # Panics
    ///
    /// Panics if `poly` is not in the source basis or is in NTT form.
    pub fn convert(&self, ctx: &RnsContext, poly: &RnsPoly) -> RnsPoly {
        self.convert_inner(ctx, poly, false)
    }

    /// Exact base conversion of the *centered* value: for
    /// `|x|_centered < Q/2 (1 - eps)` the result is exactly `x` in the new
    /// basis.
    ///
    /// # Panics
    ///
    /// Panics if `poly` is not in the source basis or is in NTT form.
    pub fn convert_exact(&self, ctx: &RnsContext, poly: &RnsPoly) -> RnsPoly {
        self.convert_inner(ctx, poly, true)
    }

    /// Number of scalar multiplications one conversion performs per
    /// coefficient: `L_src` (for `y`) plus `L_src * L_dst` (the matrix);
    /// this is the `3L^2`-type term of Table 1.
    pub fn scalar_muls_per_coeff(&self) -> usize {
        self.src.len() + self.src.len() * self.dst.len()
    }
}

/// Divides a polynomial over basis `Q ∪ P` by `P = prod(p_basis)` with
/// rounding, returning the result over `q_basis` (the `ModDown` of boosted
/// keyswitching). Operates in the coefficient domain.
///
/// The result differs from the true rounded quotient by at most 1 in each
/// coefficient (the standard fast-base-conversion bound).
///
/// # Panics
///
/// Panics if `poly`'s basis is not exactly `q_basis ∪ p_basis`, or if the
/// polynomial is in NTT form.
pub fn mod_down(
    ctx: &RnsContext,
    poly: &RnsPoly,
    q_basis: &Basis,
    p_basis: &Basis,
    conv_p_to_q: &BaseConverter,
) -> RnsPoly {
    assert!(!poly.ntt_form(), "mod_down operates in the coefficient domain");
    assert_eq!(poly.basis(), &q_basis.union(p_basis), "basis mismatch");
    assert_eq!(conv_p_to_q.src_basis(), p_basis);
    assert_eq!(conv_p_to_q.dst_basis(), q_basis);
    // c mod P, converted to base Q (centered representative).
    let c_p = ctx.restrict(poly, p_basis);
    let c_p_in_q = conv_p_to_q.convert_exact(ctx, &c_p);
    let mut diff = ctx.restrict(poly, q_basis);
    ctx.sub_assign(&mut diff, &c_p_in_q);
    // Multiply by P^{-1} mod each q_j (precomputed by the converter).
    ctx.scalar_mul_per_limb_assign(&mut diff, conv_p_to_q.src_prod_inv_mod_dst());
    diff
}

/// NTT-domain [`mod_down`]: same arithmetic, bit-for-bit, but takes and
/// returns NTT-form polynomials. Only the `P` limbs are transformed down to
/// the coefficient domain (the exact conversion needs true coefficients)
/// and only the converted `Q`-limb correction is transformed back up, so
/// the full-width inverse NTT over `Q ∪ P` that the coefficient path pays
/// per accumulator disappears: `|P|` inverse + `|Q|` forward NTTs instead
/// of `|Q|+|P|` inverse + `|Q|` forward.
///
/// Bit-exactness with `to_ntt(mod_down(from_ntt(x)))` follows from the NTT
/// being a `Z_q`-linear bijection: subtraction and the per-limb scalar
/// multiplication by `P^{-1}` commute with it exactly.
///
/// # Panics
///
/// Panics if `poly`'s basis is not exactly `q_basis ∪ p_basis`, or if the
/// polynomial is not in NTT form.
pub fn mod_down_ntt(
    ctx: &RnsContext,
    poly: &RnsPoly,
    q_basis: &Basis,
    p_basis: &Basis,
    conv_p_to_q: &BaseConverter,
) -> RnsPoly {
    assert!(poly.ntt_form(), "mod_down_ntt operates in the NTT domain");
    assert_eq!(poly.basis(), &q_basis.union(p_basis), "basis mismatch");
    assert_eq!(conv_p_to_q.src_basis(), p_basis);
    assert_eq!(conv_p_to_q.dst_basis(), q_basis);
    let mut c_p = ctx.restrict(poly, p_basis);
    ctx.from_ntt(&mut c_p);
    let mut c_p_in_q = conv_p_to_q.convert_exact(ctx, &c_p);
    ctx.to_ntt(&mut c_p_in_q);
    let mut diff = ctx.restrict(poly, q_basis);
    ctx.sub_assign(&mut diff, &c_p_in_q);
    ctx.scalar_mul_per_limb_assign(&mut diff, conv_p_to_q.src_prod_inv_mod_dst());
    diff
}

/// Rescales a polynomial: divides by its last limb's modulus with rounding
/// and drops that limb (the CKKS rescale of Sec. 2.3). Coefficient domain.
///
/// # Panics
///
/// Panics if the polynomial has fewer than 2 limbs or is in NTT form.
pub fn rescale(ctx: &RnsContext, poly: &RnsPoly) -> RnsPoly {
    assert!(poly.num_limbs() >= 2, "cannot rescale a 1-limb polynomial");
    let basis = poly.basis();
    let keep = Basis(basis.0[..basis.len() - 1].to_vec());
    let drop = Basis(vec![basis.0[basis.len() - 1]]);
    let conv = BaseConverter::new(ctx, drop.clone(), keep.clone());
    mod_down(ctx, poly, &keep, &drop, &conv)
}

/// [`rescale`] with a caller-supplied converter, so hot paths can reuse a
/// cached `BaseConverter` instead of rebuilding one (big-integer products
/// and modular inversions) on every rescale.
///
/// # Panics
///
/// Panics if the polynomial has fewer than 2 limbs, is in NTT form, or if
/// `conv` does not convert from the polynomial's last limb to its remaining
/// limbs.
pub fn rescale_with(ctx: &RnsContext, poly: &RnsPoly, conv: &BaseConverter) -> RnsPoly {
    assert!(poly.num_limbs() >= 2, "cannot rescale a 1-limb polynomial");
    let basis = poly.basis();
    let keep = Basis(basis.0[..basis.len() - 1].to_vec());
    let drop = Basis(vec![basis.0[basis.len() - 1]]);
    assert_eq!(conv.src_basis(), &drop, "converter source must be the dropped limb");
    assert_eq!(conv.dst_basis(), &keep, "converter destination must be the kept limbs");
    mod_down(ctx, poly, &keep, &drop, conv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cl_math::BigUint;
    use rand::{Rng, SeedableRng};

    fn ctx() -> RnsContext {
        RnsContext::generate(8, 3, 3, 28).unwrap()
    }

    /// Reconstructs coefficient `c` of `poly` as an exact integer.
    fn coeff_big(ctx: &RnsContext, poly: &RnsPoly, c: usize) -> BigUint {
        let residues: Vec<u64> = (0..poly.num_limbs()).map(|k| poly.limb(k)[c]).collect();
        let moduli: Vec<u64> = poly.basis().0.iter().map(|&l| ctx.modulus_value(l)).collect();
        BigUint::crt_combine(&residues, &moduli)
    }

    #[test]
    fn exact_conversion_matches_crt() {
        let c = ctx();
        let src = c.q_basis(3);
        let dst = c.p_basis(3);
        let conv = BaseConverter::new(&c, src.clone(), dst);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        // Keep |x| < Q/4 so the centered conversion is exact.
        let signed: Vec<i64> = (0..8).map(|_| rng.gen_range(-(1i64 << 40)..(1i64 << 40))).collect();
        let x = c.from_signed_coeffs(&signed, &src);
        let y = conv.convert_exact(&c, &x);
        for i in 0..8 {
            for (k, &limb) in y.basis().0.iter().enumerate() {
                let m = c.modulus(limb);
                assert_eq!(
                    y.limb(k)[i],
                    m.from_i64(signed[i]),
                    "coefficient {i}, limb {limb}"
                );
            }
        }
    }

    #[test]
    fn approximate_conversion_off_by_multiple_of_q() {
        let c = ctx();
        let src = c.q_basis(3);
        let dst = c.p_basis(2);
        let conv = BaseConverter::new(&c, src.clone(), dst.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let x = {
            let mut p = c.sample_uniform(&src, &mut rng);
            p.set_ntt_form(false);
            p
        };
        let y = conv.convert(&c, &x);
        let src_moduli: Vec<u64> = src.0.iter().map(|&l| c.modulus_value(l)).collect();
        let q_big = BigUint::product(&src_moduli);
        for i in 0..8 {
            let true_x = coeff_big(&c, &x, i);
            for (k, &limb) in dst.0.iter().enumerate() {
                let b = c.modulus_value(limb);
                let got = y.limb(k)[i];
                // got ≡ x + alpha*Q (mod b) for some alpha in [0, L).
                let mut ok = false;
                let mut cand = true_x.clone();
                for _ in 0..src.len() + 1 {
                    if cand.rem_u64(b) == got {
                        ok = true;
                        break;
                    }
                    cand.add_assign(&q_big);
                }
                assert!(ok, "coefficient {i} limb {limb} not within alpha*Q");
            }
        }
    }

    #[test]
    fn mod_down_is_rounded_division() {
        let c = ctx();
        let qb = c.q_basis(2);
        let pb = c.p_basis(2);
        let full = qb.union(&pb);
        let conv = BaseConverter::new(&c, pb.clone(), qb.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut x = c.sample_uniform(&full, &mut rng);
        x.set_ntt_form(false);
        let y = mod_down(&c, &x, &qb, &pb, &conv);
        let p_moduli: Vec<u64> = pb.0.iter().map(|&l| c.modulus_value(l)).collect();
        let p_big = BigUint::product(&p_moduli);
        let q_moduli: Vec<u64> = qb.0.iter().map(|&l| c.modulus_value(l)).collect();
        let q_big = BigUint::product(&q_moduli);
        let qp_big = {
            let mut t = q_big.clone();
            t = p_moduli.iter().fold(t, |acc, &p| acc.mul_u64(p));
            t
        };
        for i in 0..8 {
            let true_x = coeff_big(&c, &x, i);
            // Centered value of x over QP.
            let (neg, mag) = true_x.centered(&qp_big);
            // floor-division of the magnitude, sign-adjusted (within ±1 is accepted).
            let (q_mag, _r) = {
                // mag / P via repeated div by each p (exact division not needed: do bigint / u64 chain)
                let mut quot = mag.clone();
                let mut rem_nonzero = false;
                for &p in &p_moduli {
                    let (q2, r2) = quot.div_rem_u64(p);
                    quot = q2;
                    rem_nonzero |= r2 != 0;
                }
                (quot, rem_nonzero)
            };
            for (k, &limb) in qb.0.iter().enumerate() {
                let m = c.modulus(limb);
                let got = y.limb(k)[i];
                // Expected residue of the (sign-adjusted) quotient mod q_j.
                let mag_res = q_mag.rem_u64(m.value());
                let expect = if neg { m.neg(mag_res) } else { mag_res };
                // Allow |difference| <= 1 (floor vs round, conversion bound).
                let ok = got == expect
                    || got == m.add(expect, 1)
                    || got == m.sub(expect, 1);
                assert!(ok, "coefficient {i} limb {limb}: got {got}, expect ~{expect}");
            }
        }
    }

    #[test]
    fn mod_down_ntt_matches_coefficient_path() {
        let c = ctx();
        let qb = c.q_basis(3);
        let pb = c.p_basis(2);
        let full = qb.union(&pb);
        let conv = BaseConverter::new(&c, pb.clone(), qb.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let x_ntt = c.sample_uniform(&full, &mut rng);
        let mut x_coeff = x_ntt.clone();
        c.from_ntt(&mut x_coeff);
        let mut expect = mod_down(&c, &x_coeff, &qb, &pb, &conv);
        c.to_ntt(&mut expect);
        let got = mod_down_ntt(&c, &x_ntt, &qb, &pb, &conv);
        assert!(got.ntt_form());
        assert_eq!(got, expect, "NTT-domain ModDown must be bit-exact");
    }

    #[test]
    fn rescale_divides_small_values() {
        let c = ctx();
        let basis = c.q_basis(3);
        let q_last = c.modulus_value(2);
        // x = q_last * 7: rescale must give exactly 7.
        let signed: Vec<i64> = vec![7 * q_last as i64; 8];
        let x = c.from_signed_coeffs(&signed, &basis);
        let y = rescale(&c, &x);
        assert_eq!(y.num_limbs(), 2);
        for k in 0..2 {
            let m = c.modulus(y.basis().0[k]);
            for &v in y.limb(k) {
                assert_eq!(m.lift_centered(v), 7);
            }
        }
    }

    #[test]
    fn scalar_muls_formula() {
        let c = ctx();
        let conv = BaseConverter::new(&c, c.q_basis(3), c.p_basis(3));
        assert_eq!(conv.scalar_muls_per_coeff(), 3 + 9);
    }
}
