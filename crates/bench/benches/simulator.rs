//! Criterion benchmarks of the machine model itself: how fast the
//! compiler + simulator processes the paper's workloads (useful when
//! sweeping configurations, as Figs. 3 and 11 do).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cl_apps::{lola_mnist_uw, packed_bootstrapping, unpacked_bootstrapping};
use cl_baselines::{craterlake_options, f1_plus_options};
use cl_compiler::compile_and_run;

fn bench_compile_and_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    group.sample_size(10);
    for bench in [
        packed_bootstrapping(),
        unpacked_bootstrapping(),
        lola_mnist_uw(),
    ] {
        let (arch, opts) = craterlake_options(bench.n);
        group.bench_function(format!("craterlake/{}", bench.name), |b| {
            b.iter(|| black_box(compile_and_run(&bench.graph, &arch, &opts)))
        });
    }
    let bench = packed_bootstrapping();
    let (arch, opts) = f1_plus_options(bench.n);
    group.bench_function("f1plus/Packed Bootstrapping", |b| {
        b.iter(|| black_box(compile_and_run(&bench.graph, &arch, &opts)))
    });
    group.finish();
}

criterion_group!(benches, bench_compile_and_run);
criterion_main!(benches);
