//! Criterion benchmarks of the functional FHE kernels — the "CPU library"
//! side of the reproduction, against which the analytic CPU model can be
//! sanity-checked on this host.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cl_ckks::{CkksContext, CkksParams, GuardrailPolicy, KeySwitchKind};
use cl_math::{generate_ntt_primes, NttTable};
use cl_rns::{BaseConverter, RnsContext};
use rand::SeedableRng;

fn bench_ntt(c: &mut Criterion) {
    let mut group = c.benchmark_group("ntt");
    for log_n in [12usize, 13, 14] {
        let n = 1 << log_n;
        let q = generate_ntt_primes(n, 50, 1).unwrap()[0];
        let table = NttTable::new(n, q).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let poly: Vec<u64> = (0..n).map(|_| rand::Rng::gen_range(&mut rng, 0..q)).collect();
        group.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter_batched(
                || poly.clone(),
                |mut p| {
                    table.forward(&mut p);
                    black_box(p)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_base_conversion(c: &mut Criterion) {
    // The changeRNSBase kernel (what the CRB unit accelerates).
    let mut group = c.benchmark_group("change_rns_base");
    for l in [4usize, 8, 16] {
        let ctx = RnsContext::generate(1 << 12, l, l, 40).unwrap();
        let conv = BaseConverter::new(&ctx, ctx.q_basis(l), ctx.p_basis(l));
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut x = ctx.sample_uniform(&ctx.q_basis(l), &mut rng);
        x.set_ntt_form(false);
        group.bench_with_input(BenchmarkId::new("L_to_L", l), &l, |b, _| {
            b.iter(|| black_box(conv.convert(&ctx, &x)))
        });
    }
    group.finish();
}

fn keyswitch_ctx(levels: usize) -> (CkksContext, cl_ckks::SecretKey, rand::rngs::StdRng) {
    let params = CkksParams::builder()
        .ring_degree(1 << 12)
        .levels(levels)
        .special_limbs(levels)
        .limb_bits(40)
        .scale_bits(36)
        .build()
        .unwrap();
    let ctx = CkksContext::new(params).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let sk = ctx.keygen(&mut rng);
    (ctx, sk, rng)
}

fn bench_keyswitch_variants(c: &mut Criterion) {
    // Boosted vs. standard keyswitching: the Fig. 4 compute claim, on a CPU.
    let mut group = c.benchmark_group("keyswitch");
    group.sample_size(10);
    let levels = 12;
    let (ctx, sk, mut rng) = keyswitch_ctx(levels);
    let vals = vec![1.0f64; 16];
    let pt = ctx.encode(&vals, ctx.default_scale(), levels);
    let ct = ctx.encrypt(&pt, &sk, &mut rng);
    for (name, kind) in [
        ("boosted_1digit", KeySwitchKind::Boosted { digits: 1 }),
        ("boosted_2digit", KeySwitchKind::Boosted { digits: 2 }),
        ("standard", KeySwitchKind::Standard),
    ] {
        let ksk = ctx.rotation_keygen(&sk, 1, kind, &mut rng);
        group.bench_function(name, |b| {
            b.iter(|| black_box(ctx.rotate(&ct, 1, &ksk)))
        });
    }
    group.finish();
}

fn bench_homomorphic_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("homomorphic");
    group.sample_size(10);
    let (ctx, sk, mut rng) = keyswitch_ctx(8);
    let vals: Vec<f64> = (0..32).map(|i| i as f64 * 0.1).collect();
    let pt = ctx.encode(&vals, ctx.default_scale(), 8);
    let ct = ctx.encrypt(&pt, &sk, &mut rng);
    let relin = ctx.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
    group.bench_function("add", |b| b.iter(|| black_box(ctx.add(&ct, &ct))));
    group.bench_function("mul_plain", |b| {
        b.iter(|| black_box(ctx.mul_plain(&ct, &pt)))
    });
    group.bench_function("mul_ct_relin", |b| {
        b.iter(|| black_box(ctx.mul(&ct, &ct, &relin)))
    });
    group.bench_function("rescale", |b| {
        let prod = ctx.mul(&ct, &ct, &relin);
        b.iter(|| black_box(ctx.rescale(&prod)))
    });
    group.finish();
}

fn bench_guardrail_overhead(c: &mut Criterion) {
    // Cost of the Strict runtime checks (operand conformance scans, hint
    // digests, budget threshold) relative to the Permissive fast path, on
    // the cheapest op (add: guard cost is a large fraction) and the most
    // expensive (mul: guard cost amortizes against keyswitching).
    let mut group = c.benchmark_group("guardrails");
    group.sample_size(10);
    let (mut ctx, sk, mut rng) = keyswitch_ctx(8);
    let vals: Vec<f64> = (0..32).map(|i| i as f64 * 0.1).collect();
    let pt = ctx.encode(&vals, ctx.default_scale(), 8);
    let ct = ctx.encrypt(&pt, &sk, &mut rng);
    let relin = ctx.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
    for (name, policy) in [
        ("permissive", GuardrailPolicy::Permissive),
        (
            "strict",
            GuardrailPolicy::Strict {
                min_budget_bits: 0.0,
            },
        ),
    ] {
        ctx.set_policy(policy);
        group.bench_function(format!("add_{name}"), |b| {
            b.iter(|| black_box(ctx.try_add(&ct, &ct).unwrap()))
        });
        group.bench_function(format!("mul_{name}"), |b| {
            b.iter(|| black_box(ctx.try_mul(&ct, &ct, &relin).unwrap()))
        });
    }
    group.finish();
}

fn bench_encode_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoding");
    let (ctx, sk, mut rng) = keyswitch_ctx(4);
    let slots = ctx.params().slots();
    let vals: Vec<f64> = (0..slots).map(|i| (i as f64).sin()).collect();
    group.bench_function("encode", |b| {
        b.iter(|| black_box(ctx.encode(&vals, ctx.default_scale(), 4)))
    });
    let pt = ctx.encode(&vals, ctx.default_scale(), 4);
    let ct = ctx.encrypt(&pt, &sk, &mut rng);
    group.bench_function("decrypt_decode", |b| {
        b.iter(|| black_box(ctx.decode(&ctx.decrypt(&ct, &sk), slots)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ntt,
    bench_base_conversion,
    bench_keyswitch_variants,
    bench_homomorphic_ops,
    bench_guardrail_overhead,
    bench_encode_decode
);
criterion_main!(benches);
