//! Fig. 11: performance as a function of on-chip register-file capacity
//! (100-350 MB), normalized to the default 256 MB configuration.

use cl_apps::all_benchmarks;
use cl_bench::{gmean, run_on};
use cl_core::ArchConfig;

fn main() {
    println!("Fig. 11: Speedup vs. on-chip storage (normalized to 256 MB)");
    println!();
    let sizes = [100u64, 150, 200, 256, 300, 350];
    print!("{:<24}", "");
    for mb in sizes {
        print!(" {:>7}", format!("{mb}MB"));
    }
    println!();
    let mut shallow_rows: Vec<Vec<f64>> = Vec::new();
    for bench in all_benchmarks() {
        let base = run_on(&bench, &ArchConfig::craterlake()).cycles;
        let mut row = Vec::new();
        for mb in sizes {
            let stats = run_on(&bench, &ArchConfig::craterlake().with_rf_bytes(mb << 20));
            row.push(base / stats.cycles);
        }
        if bench.deep {
            print!("{:<24}", bench.name);
            for v in &row {
                print!(" {v:>7.2}");
            }
            println!();
        } else {
            shallow_rows.push(row);
        }
    }
    print!("{:<24}", "Shallow bench-s (gmean)");
    for i in 0..sizes.len() {
        let col: Vec<f64> = shallow_rows.iter().map(|r| r[i]).collect();
        print!(" {:>7.2}", gmean(&col));
    }
    println!();
    println!();
    println!("Paper reference: deep benchmarks slow down up to 5.5x at 100 MB;");
    println!("shallow benchmarks are insensitive; only packed bootstrapping gains");
    println!("meaningfully past 256 MB (1.5x at ~300 MB).");
}
