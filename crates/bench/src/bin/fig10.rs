//! Fig. 10: per-benchmark breakdown of (a) off-chip data movement by class
//! and (b) average power by component, for CraterLake.

use cl_apps::all_benchmarks;
use cl_bench::run_on;
use cl_core::{energy, ArchConfig};
use cl_isa::TrafficClass;

fn main() {
    let arch = ArchConfig::craterlake();
    println!("Fig. 10a: Off-chip traffic breakdown");
    println!();
    println!(
        "{:<24} {:>10} {:>8} {:>8} {:>9} {:>9}",
        "", "total", "KSH %", "input %", "ld int %", "st int %"
    );
    let mut runs = Vec::new();
    for bench in all_benchmarks() {
        let stats = run_on(&bench, &arch);
        let total = stats.total_traffic_bytes();
        let pct = |c: TrafficClass| 100.0 * stats.traffic_of(c) / total.max(1.0);
        let total_str = if total >= 1e9 {
            format!("{:.0} GB", total / 1e9)
        } else {
            format!("{:.0} MB", total / 1e6)
        };
        println!(
            "{:<24} {:>10} {:>7.0}% {:>7.0}% {:>8.0}% {:>8.0}%",
            bench.name,
            total_str,
            pct(TrafficClass::Ksh),
            pct(TrafficClass::Input),
            pct(TrafficClass::IntermLoad),
            pct(TrafficClass::IntermStore)
        );
        runs.push((bench.name, stats));
    }
    println!();
    println!("Paper reference totals: ResNet 73GB, LogReg 69GB, LSTM 62GB, P-Bstrap 2GB,");
    println!("U-Bstrap 60MB, CIFAR 8GB, MNIST 55MB/122MB.");
    println!();
    println!("Fig. 10b: Average power breakdown [W]");
    println!();
    println!(
        "{:<24} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "", "total", "FUs", "RegFile", "NoC", "HBM", "idle"
    );
    for (name, stats) in &runs {
        let p = energy::power_breakdown(&arch, stats);
        println!(
            "{:<24} {:>7.0}W {:>7.0}W {:>7.0}W {:>7.0}W {:>7.0}W {:>7.0}W",
            name,
            p.total(),
            p.fu,
            p.rf,
            p.noc,
            p.hbm,
            p.idle
        );
    }
    println!();
    println!("Paper reference totals: ResNet 279W, LogReg 212W, LSTM 317W, P-Bstrap 248W,");
    println!("U-Bstrap 122W, CIFAR 218W, MNIST 81W/98W; FUs dominate (50-80%).");
}
