//! Fig. 9: average functional-unit utilization and off-chip bandwidth
//! utilization per benchmark on CraterLake.

use cl_apps::all_benchmarks;
use cl_bench::run_on;
use cl_core::ArchConfig;
use cl_isa::FuKind;

fn main() {
    let arch = ArchConfig::craterlake();
    println!("Fig. 9: Utilization of functional units and main memory bandwidth");
    println!();
    println!(
        "{:<24} {:>10} {:>10}   {}",
        "", "FU [%]", "BW [%]", "per-FU [%]: mul add ntt aut crb kshgen"
    );
    for bench in all_benchmarks() {
        let stats = run_on(&bench, &arch);
        let per_fu: Vec<String> = [
            FuKind::Mul,
            FuKind::Add,
            FuKind::Ntt,
            FuKind::Automorphism,
            FuKind::Crb,
            FuKind::KshGen,
        ]
        .iter()
        .map(|&k| format!("{:>3.0}", 100.0 * stats.fu_utilization_of(&arch, k)))
        .collect();
        println!(
            "{:<24} {:>9.0}% {:>9.0}%   {}",
            bench.name,
            100.0 * stats.fu_utilization(&arch),
            100.0 * stats.bw_utilization(),
            per_fu.join(" ")
        );
    }
    println!();
    println!("Paper reference: high utilization of both; unpacked bootstrapping");
    println!("saturates memory bandwidth, most others are balanced (FU >= 50%).");
    println!("(Our graphs are lighter in compute per byte than the paper's");
    println!("workloads, so bandwidth utilization dominates here; see EXPERIMENTS.md.)");
}
