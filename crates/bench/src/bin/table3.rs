//! Table 3: performance of CraterLake, F1+, and the CPU on the full
//! benchmark suite, with per-group geometric-mean speedups.

use cl_apps::all_benchmarks;
use cl_bench::{compare, fmt_time, gmean};

fn main() {
    println!("Table 3: Performance of CraterLake, F1+, and CPU on full FHE benchmarks");
    println!(
        "{:<24} {:>14} {:>12} {:>10} {:>9} {:>9}",
        "", "CraterLake", "F1+", "CPU", "vs. F1+", "vs. CPU"
    );
    let mut deep_f1 = Vec::new();
    let mut deep_cpu = Vec::new();
    let mut shallow_f1 = Vec::new();
    let mut shallow_cpu = Vec::new();
    let mut printed_shallow_header = false;
    for bench in all_benchmarks() {
        let c = compare(&bench);
        if !c.deep && !printed_shallow_header {
            println!(
                "  deep gmean speedup {:>42.1}x {:>8.0}x",
                gmean(&deep_f1),
                gmean(&deep_cpu)
            );
            println!();
            printed_shallow_header = true;
        }
        let vs_f1 = c.f1_ms / c.craterlake_ms;
        let vs_cpu = c.cpu_ms / c.craterlake_ms;
        println!(
            "{:<24} {:>14} {:>12} {:>10} {:>8.2}x {:>8.0}x",
            c.name,
            fmt_time(c.craterlake_ms),
            fmt_time(c.f1_ms),
            fmt_time(c.cpu_ms),
            vs_f1,
            vs_cpu
        );
        if c.deep {
            deep_f1.push(vs_f1);
            deep_cpu.push(vs_cpu);
        } else {
            shallow_f1.push(vs_f1);
            shallow_cpu.push(vs_cpu);
        }
    }
    println!(
        "  shallow gmean speedup {:>39.2}x {:>8.0}x",
        gmean(&shallow_f1),
        gmean(&shallow_cpu)
    );
    println!();
    println!("Paper reference: deep gmean 11.2x vs F1+, 4,611x vs CPU;");
    println!("                 shallow gmean 1.34x vs F1+, 5,220x vs CPU.");
}
