//! Developer utility: per-benchmark resource breakdown on CraterLake and
//! F1+ (not one of the paper's tables; used to sanity-check the model).

use cl_apps::all_benchmarks;
use cl_baselines::{craterlake_options, f1_plus_options};
use cl_compiler::compile_and_run;
use cl_isa::TrafficClass;

fn main() {
    for bench in all_benchmarks() {
        println!("== {} (n={}, nodes={})", bench.name, bench.n, bench.graph.num_nodes());
        for (arch, opts) in [craterlake_options(bench.n), f1_plus_options(bench.n)] {
            let s = compile_and_run(&bench.graph, &arch, &opts);
            let mut fu: Vec<_> = s.fu_busy.iter().map(|(k, v)| (*k, v / s.cycles)).collect();
            fu.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            println!(
                "  {:<12} cycles={:>12.0}  hbm={:>5.1}% rf={:>5.1}% net={:>5.1}%  evict={}/{}d  traffic: ksh={:.2}GB in={:.2}GB interm={:.2}GB",
                arch.name,
                s.cycles,
                100.0 * s.hbm_busy / s.cycles,
                100.0 * s.rf_busy / s.cycles,
                100.0 * s.net_busy / s.cycles,
                s.evictions, s.evictions_dirty,
                s.traffic_of(TrafficClass::Ksh) / 1e9,
                s.traffic_of(TrafficClass::Input) / 1e9,
                (s.traffic_of(TrafficClass::IntermLoad) + s.traffic_of(TrafficClass::IntermStore)) / 1e9,
            );
            let fus: Vec<String> = fu.iter().map(|(k, u)| format!("{}={:.0}%", k.name(), 100.0 * u / arch.fu_count(*k))).collect();
            println!("      fu-util: {}", fus.join(" "));
        }
    }
}
