//! Table 2: area breakdown of CraterLake by component, plus the F1+ and
//! N=128K comparison points (Secs. 7-9.4).

use cl_core::{area, ArchConfig};

fn main() {
    println!("Table 2: Area breakdown of CraterLake by component (14/12nm)");
    println!();
    println!("{:<36} {:>12}", "Component", "Area [mm^2]");
    println!("{:<36} {:>12.1}", "CRB FU", area::CRB_MM2);
    println!("{:<36} {:>12.1}", "NTT FU (each of 2)", area::NTT_MM2);
    println!("{:<36} {:>12.1}", "Automorphism FU", area::AUT_MM2);
    println!("{:<36} {:>12.1}", "KSHGen FU", area::KSHGEN_MM2);
    println!("{:<36} {:>12.1}", "Multiply FU (each of 5)", area::MUL_MM2);
    println!("{:<36} {:>12.1}", "Add FU (each of 5)", area::ADD_MM2);
    let cl = area::area_mm2(&ArchConfig::craterlake());
    println!("{:<36} {:>12.1}", "Total FUs", cl.fus);
    println!("{:<36} {:>12.1}", "Register file (256MB)", cl.rf);
    println!("{:<36} {:>12.1}", "On-chip interconnect", cl.noc);
    println!("{:<36} {:>12.1}", "Mem. PHYs (2x HBM2E)", cl.mem_phy);
    println!("{:<36} {:>12.1}", "Total CraterLake", cl.total());
    println!();
    let f1 = area::area_mm2(&ArchConfig::f1_plus());
    println!(
        "F1+ for comparison: {:.0} mm^2 total, {:.0} mm^2 network ({:.0}x CraterLake's).",
        f1.total(),
        f1.noc,
        f1.noc / cl.noc
    );
    let big = area::area_mm2(&ArchConfig::craterlake_128k());
    println!(
        "N=128K variant: +{:.1} mm^2 ({:.1}% of chip area; paper: 27.4 mm^2, <6%).",
        big.total() - cl.total(),
        (big.total() - cl.total()) / cl.total() * 100.0
    );
    println!();
    println!("Paper reference: FUs 240.5, RF 192.0, NoC 10.0, PHYs 29.8, total 472.3 mm^2.");
}
