//! Fig. 3: computation cost per homomorphic multiply as a function of the
//! maximum ciphertext size, for a serial multiplication chain (left,
//! bootstrap-dominated worst case) and a 100-wide multiply-add graph
//! (right, amortized best case). Both curves split application vs.
//! bootstrapping cost; the optimum should land in the 20-26 MB band.

use cl_baselines::CpuModel;
use cl_boot::BootstrapPlan;
use cl_ckks::security::SecurityLevel;
use cl_compiler::KsPolicy;
use cl_isa::cost::ciphertext_bytes;
use cl_isa::HeGraph;

const N: usize = 1 << 16;

/// Serial chain: `usable` squarings, then one bootstrap.
fn chain_graph(l_max: usize) -> (HeGraph, usize) {
    let plan = BootstrapPlan::packed(N, l_max);
    let usable = plan.output_level();
    let mut g = HeGraph::new();
    let mut x = g.input(usable);
    let mut muls = 0;
    while g.node(x).level > 4 {
        let m = g.mul_ct(x, x);
        x = g.rescale(m);
        muls += 1;
    }
    let refreshed = plan.append_to(&mut g, x);
    g.output(refreshed);
    (g, muls)
}

/// Wide graph: 100 independent multiplies per level, converging to one
/// output per level, then one bootstrap amortized over all of them.
fn wide_graph(l_max: usize) -> (HeGraph, usize) {
    let plan = BootstrapPlan::packed(N, l_max);
    let usable = plan.output_level();
    let mut g = HeGraph::new();
    let mut x = g.input(usable);
    let mut muls = 0;
    while g.node(x).level > 4 {
        let level = g.node(x).level;
        let mut partial = None;
        for _ in 0..100 {
            let other = g.input(level);
            let m = g.mul_ct(x, other);
            muls += 1;
            partial = Some(match partial {
                None => m,
                Some(p) => g.add(p, m),
            });
        }
        x = g.rescale(partial.expect("wide level"));
    }
    let refreshed = plan.append_to(&mut g, x);
    g.output(refreshed);
    (g, muls)
}

fn main() {
    let policy = KsPolicy::SecurityDriven(SecurityLevel::Bits80);
    println!("Fig. 3: scalar multiplies per homomorphic multiply vs. max ciphertext size");
    println!();
    for (name, builder) in [
        ("Multiplication chain (narrow)", chain_graph as fn(usize) -> (HeGraph, usize)),
        ("Wide multiply-add graph (100 muls/depth)", wide_graph),
    ] {
        println!("{name}:");
        println!(
            "{:>6} {:>10} {:>16} {:>16} {:>16}",
            "L_max", "ct [MB]", "app [M muls]", "boot [M muls]", "total/mul [M]"
        );
        let mut best: Option<(f64, f64)> = None;
        for l_max in (41..=80).step_by(3) {
            let (g, muls) = builder(l_max);
            let (app, boot) = CpuModel::graph_scalar_ops_by_phase(&g, N, &policy);
            let per_mul = (app + boot) / muls as f64;
            let mb = ciphertext_bytes(N, l_max, 28) as f64 / (1024.0 * 1024.0);
            println!(
                "{:>6} {:>10.1} {:>16.1} {:>16.1} {:>16.1}",
                l_max,
                mb,
                app / muls as f64 / 1e6,
                boot / muls as f64 / 1e6,
                per_mul / 1e6
            );
            if best.map(|(_, b)| per_mul < b).unwrap_or(true) {
                best = Some((mb, per_mul));
            }
        }
        let (mb, _) = best.unwrap();
        println!("  -> optimum at ~{mb:.0} MB max ciphertexts");
        println!();
    }
    println!("Paper reference: optima between 20 MB (wide) and 26 MB (narrow);");
    println!("prior accelerators max out near 2 MB, far left of the optimum.");
}
