//! Fig. 2: a ciphertext's multiplicative budget over time — computation
//! consumes levels until bootstrapping refreshes them. Rendered from the
//! LSTM benchmark's actual graph (ASCII sparkline of the working
//! ciphertext's level across the schedule).

use cl_apps::lstm;
use cl_isa::{HeOp, Phase};

fn main() {
    let b = lstm();
    println!("Fig. 2: multiplicative budget over time (LSTM working state)");
    println!();
    // Walk the graph and track the level of the rolling hidden-state chain
    // (any node whose output feeds the next step).
    let mut series: Vec<(usize, Phase)> = Vec::new();
    for (_, node) in b.graph.iter() {
        match node.op {
            HeOp::Rescale(_) | HeOp::ModRaise(..) | HeOp::MulCt(..) | HeOp::ModDrop(..) => {
                series.push((node.level, node.phase));
            }
            _ => {}
        }
    }
    // Downsample to an 80-column strip chart.
    let cols = 100usize;
    let max_level = series.iter().map(|(l, _)| *l).max().unwrap_or(1);
    let chunk = series.len().div_ceil(cols);
    let mut rows = vec![String::new(); max_level + 1];
    let mut boots = 0;
    for window in series.chunks(chunk) {
        let lvl = window.iter().map(|(l, _)| *l).max().unwrap();
        let bootstrapping = window.iter().any(|(_, p)| *p == Phase::Bootstrap);
        if bootstrapping {
            boots += 1;
        }
        for (h, row) in rows.iter_mut().enumerate() {
            row.push(if h <= lvl {
                if bootstrapping {
                    '#'
                } else {
                    '*'
                }
            } else {
                ' '
            });
        }
    }
    for (h, row) in rows.iter().enumerate().rev() {
        if h % 8 == 0 || h == max_level {
            println!("L={h:>2} |{row}");
        }
    }
    println!("      {}", "-".repeat(cols.min(series.len())));
    println!("      time ->    (# = bootstrapping phase, * = application)");
    println!();
    println!(
        "{} bootstraps refresh the budget across the inference (Sec. 2.3: the",
        b.graph.op_histogram().mod_raises
    );
    println!("budget saw-tooths between the post-bootstrap level and exhaustion).");
    let _ = boots;
}
