//! Table 4: speedups of full CraterLake over configurations without
//! KSHGen, without CRB/chaining, and with F1+'s crossbar network.

use cl_apps::all_benchmarks;
use cl_bench::{gmean, run_on};
use cl_core::ArchConfig;

fn main() {
    println!("Table 4: Speedup of CraterLake over ablated configurations");
    println!();
    println!(
        "{:<24} {:>10} {:>12} {:>10}",
        "Speedup vs.", "KSHGen", "CRB/chain", "Network"
    );
    let mut deep = [Vec::new(), Vec::new(), Vec::new()];
    let mut shallow = [Vec::new(), Vec::new(), Vec::new()];
    let mut printed_rule = false;
    for bench in all_benchmarks() {
        if !bench.deep && !printed_rule {
            println!(
                "  deep gmean {:>22.1}x {:>11.1}x {:>9.1}x",
                gmean(&deep[0]),
                gmean(&deep[1]),
                gmean(&deep[2])
            );
            println!();
            printed_rule = true;
        }
        let base = run_on(&bench, &ArchConfig::craterlake()).cycles;
        let no_gen = run_on(&bench, &ArchConfig::craterlake().without_kshgen()).cycles;
        let no_crb = run_on(&bench, &ArchConfig::craterlake().without_crb_chaining()).cycles;
        let xbar = run_on(&bench, &ArchConfig::craterlake().with_crossbar_network()).cycles;
        let s = [no_gen / base, no_crb / base, xbar / base];
        println!(
            "{:<24} {:>9.1}x {:>11.1}x {:>9.1}x",
            bench.name, s[0], s[1], s[2]
        );
        let bucket = if bench.deep { &mut deep } else { &mut shallow };
        for (b, v) in bucket.iter_mut().zip(s) {
            b.push(v);
        }
    }
    println!(
        "  shallow gmean {:>19.1}x {:>11.1}x {:>9.1}x",
        gmean(&shallow[0]),
        gmean(&shallow[1]),
        gmean(&shallow[2])
    );
    println!();
    println!("Paper reference: deep gmean 1.9x / 20.2x / 1.3x;");
    println!("                 shallow gmean 1.2x / 2.0x / 1.4x.");
}
