//! Table 5: deep-benchmark performance at 128-bit security (N = 64K,
//! bootstrap twice as often) and at 200-bit security (N = 128K, normalized
//! per element), compared with the 80-bit baseline.

use cl_apps::{deep_benchmarks, deep_benchmarks_at};
use cl_bench::{fmt_time, gmean};
use cl_ckks::security::{max_level, SecurityLevel};
use cl_compiler::{compile_and_run, CompileOptions, KsPolicy};
use cl_core::ArchConfig;

fn main() {
    println!("Table 5: Performance at 128-bit and 200-bit security vs. 80-bit");
    println!();
    // 80-bit baseline: N=64K, L=57.
    let base: Vec<(&str, f64)> = deep_benchmarks()
        .iter()
        .map(|b| {
            let arch = ArchConfig::craterlake();
            let opts = CompileOptions {
                reorder: false,
                n: b.n,
                ks_policy: KsPolicy::SecurityDriven(SecurityLevel::Bits80),
            };
            let s = compile_and_run(&b.graph, &arch, &opts);
            (b.name, s.exec_ms(&arch))
        })
        .collect();
    // 128-bit: same N, bootstrap twice as often (about half the usable
    // levels after bootstrapping). Usable = l_max - 35 => l_max = 46 gives
    // 11 usable levels vs the baseline's 22; keyswitch digit counts rise
    // per the security table.
    // Bootstrapping twice as often: half the usable levels (11 vs 22)
    // means l_max = 46; the security table confirms 3-digit keyswitching
    // covers it at N = 64K.
    let l128 = 46;
    assert!(max_level(1 << 16, SecurityLevel::Bits128, 3, 28) >= l128);
    let at128 = run_suite(1 << 16, l128, SecurityLevel::Bits128, 1.0);
    // 200-bit: N=128K (double slots => halve per-element time), higher
    // digit counts.
    let at200 = run_suite(1 << 17, 57, SecurityLevel::Bits200, 0.5);
    println!(
        "{:<24} {:>14} {:>10} {:>14} {:>10}",
        "", "128-bit", "vs 80", "200-bit", "vs 80"
    );
    let mut s128 = Vec::new();
    let mut s200 = Vec::new();
    for ((name, b), (t128, t200)) in base.iter().zip(at128.iter().zip(&at200)) {
        let r128 = t128 / b;
        let r200 = t200 / b;
        s128.push(r128);
        s200.push(r200);
        println!(
            "{:<24} {:>14} {:>9.2}x {:>14} {:>9.2}x",
            name,
            fmt_time(*t128),
            r128,
            fmt_time(*t200),
            r200
        );
    }
    println!(
        "  gmean slowdown {:>23.2}x {:>25.2}x",
        gmean(&s128),
        gmean(&s200)
    );
    println!();
    println!("Paper reference: gmean slowdowns 1.36x (128-bit) and 2.60x (200-bit);");
    println!("worst cases 1.62x and 4.35x (LSTM / packed bootstrapping).");
}

/// Runs the deep suite at (n, l_max, security), scaling times by
/// `per_element` (0.5 for N=128K: double the slots, so half the time per
/// element).
fn run_suite(n: usize, l_max: usize, sec: SecurityLevel, per_element: f64) -> Vec<f64> {
    deep_benchmarks_at(n, l_max)
        .iter()
        .map(|b| {
            let mut arch = if n > (1 << 16) {
                ArchConfig::craterlake_128k()
            } else {
                ArchConfig::craterlake()
            };
            arch.name = format!("{} @{}b", arch.name, sec.bits());
            let opts = CompileOptions {
                reorder: false,
                n,
                ks_policy: KsPolicy::SecurityDriven(sec),
            };
            let s = compile_and_run(&b.graph, &arch, &opts);
            s.exec_ms(&arch) * per_element
        })
        .collect()
}
