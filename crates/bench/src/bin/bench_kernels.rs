//! Kernel-level wall-clock benchmark emitting `BENCH_kernels.json`.
//!
//! Times the functional hot paths the parallel execution engine targets —
//! NTT, RNS element-wise ops, base conversion, keyswitch, rescale, and one
//! bootstrap step (an EvalMod square+rescale) — and writes ns/op as JSON so
//! `scripts/bench.sh` can track the serial-vs-parallel trajectory across
//! commits.
//!
//! Usage:
//!   bench_kernels [--smoke] [--ops] [--label NAME] [--out PATH]
//!
//! `--smoke` runs tiny shapes with one timed iteration each — just enough
//! for `scripts/verify.sh` to prove the harness still builds and runs.
//!
//! `--ops` switches from wall-clock timing to deterministic op counting:
//! each kernel runs exactly once with the `cl-trace` counters captured
//! around it, and the JSON reports the measured residue-polynomial pass
//! counts next to the `cl_isa::cost` closed forms where an exact identity
//! exists (keyswitch variants and rescale). Requires a build with the
//! `trace` feature — `scripts/bench.sh` builds that into a separate target
//! directory so the timing binary stays counter-free.

use std::fmt::Write as _;
use std::time::Instant;

use cl_boot::{try_bsgs_transform, BootstrapKeys, PrecomputedTransform};
use cl_ckks::{Ciphertext, CkksContext, CkksParams, HintCache, KeySwitchKey, KeySwitchKind};
use cl_math::Complex;
use cl_rns::{BaseConverter, RnsContext};
use rand::SeedableRng;

struct Config {
    smoke: bool,
    ops: bool,
    label: String,
    out: Option<String>,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        smoke: false,
        ops: false,
        label: "current".to_string(),
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => cfg.smoke = true,
            "--ops" => cfg.ops = true,
            "--label" => cfg.label = args.next().expect("--label needs a value"),
            "--out" => cfg.out = Some(args.next().expect("--out needs a value")),
            other => panic!("unknown argument: {other}"),
        }
    }
    cfg
}

/// Times `f` adaptively: warm up once, then run batches until the total
/// exceeds ~0.3 s (or `min_iters`), reporting the *minimum* ns per call.
/// The kernels are deterministic, so the minimum is the measurement and
/// everything above it is interference (scheduler preemption, disk-sync
/// stalls on the checkpoint/server kernels); the mean let a single slow
/// iteration move the recorded number by several percent, enough to trip
/// the `bench.sh --check` overhead-ratio gates run-to-run on identical
/// code.
fn time_ns(smoke: bool, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    if smoke {
        let t = Instant::now();
        f();
        return t.elapsed().as_nanos() as f64;
    }
    let mut iters = 0u64;
    let mut total_ns = 0u128;
    let mut best_ns = u128::MAX;
    let min_total: u128 = 300_000_000; // 0.3 s
    while total_ns < min_total || iters < 5 {
        let t = Instant::now();
        f();
        let ns = t.elapsed().as_nanos();
        total_ns += ns;
        best_ns = best_ns.min(ns);
        iters += 1;
        if iters >= 1000 {
            break;
        }
    }
    best_ns as f64
}

/// The formula-expected pass counts for one kernel, in the measured
/// counters' split (CRB matrix MACs under `base_conv`, everything else
/// under `mult`/`add`). `None` for kernels with no exact closed form.
type Expected = Option<Vec<(&'static str, u64)>>;

/// Expected counts for one standard keyswitch at full level `l`: Table 1's
/// quadratic core plus the functional path's linear fringe (input INTTs,
/// special-limb handling, closing ModDown). The identities are asserted
/// exactly by `tests/trace_validation.rs`; this emits the same numbers so
/// `scripts/bench.sh --check` can re-gate them on every bench run.
fn expected_standard_keyswitch(l: usize) -> Expected {
    let f = cl_isa::cost::standard_keyswitch_ops(l);
    let l = l as u64;
    Some(vec![
        ("ntt_total", f.ntt + 3 * l + 2),
        ("mult", f.mult + 7 * l + 2),
        ("add", f.add + 6 * l),
        ("base_conv", l * l + 2 * l),
    ])
}

/// Expected counts for one boosted keyswitch with `digits` digits at full
/// level `l` (`digits` must divide `l` for the closed form to be exact).
fn expected_boosted_keyswitch(l: usize, digits: usize) -> Expected {
    let f = cl_isa::cost::boosted_keyswitch_ops(l, digits);
    let crb = cl_isa::cost::boosted_keyswitch_crb_mult(l, digits);
    let alpha = (l / digits) as u64;
    let l = l as u64;
    Some(vec![
        ("ntt_total", f.ntt),
        ("mult", (f.mult - crb) + 5 * l + 2 * alpha),
        ("add", (f.add - crb) + 4 * l + 2 * alpha),
        ("base_conv", crb),
    ])
}

/// Expected counts for one rescale at level `l`: exactly the NTT column of
/// `mul_aux_ops` plus the linear mult/add/CRB work of the single-limb
/// ModDown.
fn expected_rescale(l: usize) -> Expected {
    let aux = cl_isa::cost::mul_aux_ops(l);
    let l = l as u64;
    Some(vec![
        ("ntt_total", aux.ntt),
        ("mult", 4 * l - 2),
        ("add", 4 * l - 4),
        ("base_conv", 2 * (l - 1)),
    ])
}

/// `--ops` mode: run each kernel once, deterministically, with the trace
/// counters captured around it, and emit measured (and, where exact,
/// formula-expected) counts as JSON.
fn run_op_counts(cfg: &Config, n: usize, limbs: usize, bits: u32) {
    if !cl_trace::enabled() {
        eprintln!(
            "bench_kernels --ops: built without the `trace` feature; \
             rebuild with `--features trace` (scripts/bench.sh does this)"
        );
        std::process::exit(1);
    }
    let measure = |f: &mut dyn FnMut()| -> cl_trace::OpSnapshot {
        let before = cl_trace::OpSnapshot::capture();
        f();
        cl_trace::OpSnapshot::capture().delta_since(&before)
    };
    let mut kernels: Vec<(&'static str, cl_trace::OpSnapshot, Expected)> = Vec::new();

    let params = CkksParams::builder()
        .ring_degree(n)
        .levels(limbs)
        .special_limbs(limbs)
        .limb_bits(bits)
        .scale_bits(bits - 4)
        .build()
        .expect("params");
    let ctx = CkksContext::new(params).expect("ckks context");
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let sk = ctx.keygen(&mut rng);
    let vals: Vec<f64> = (0..16).map(|i| 0.01 * i as f64).collect();
    let pt = ctx.encode(&vals, ctx.default_scale(), limbs);
    let ct = ctx.encrypt(&pt, &sk, &mut rng);
    let qb = ctx.rns().q_basis(limbs);
    let signed: Vec<i64> = (0..n).map(|i| ((i as i64 * 37 + 11) % 1000) - 500).collect();
    let mut msg = ctx.rns().from_signed_coeffs(&signed, &qb);
    ctx.rns().to_ntt(&mut msg);

    // Keyswitch variants. The boosted closed forms are exact only when the
    // digit count divides the budget, so pick variants accordingly.
    let std_key = ctx.relin_keygen(&sk, KeySwitchKind::Standard, &mut rng);
    kernels.push((
        "keyswitch_standard",
        measure(&mut || {
            std::hint::black_box(ctx.keyswitch(&msg, &std_key));
        }),
        expected_standard_keyswitch(limbs),
    ));
    let digit_variants: &[usize] = if limbs % 4 == 0 { &[1, 4] } else { &[1, limbs] };
    for &digits in digit_variants {
        let key = ctx.relin_keygen(&sk, KeySwitchKind::Boosted { digits }, &mut rng);
        let name: &'static str = match digits {
            1 => "keyswitch_boosted_d1",
            4 => "keyswitch_boosted_d4",
            _ => "keyswitch_boosted_dmax",
        };
        kernels.push((
            name,
            measure(&mut || {
                std::hint::black_box(ctx.keyswitch(&msg, &key));
            }),
            expected_boosted_keyswitch(limbs, digits),
        ));
    }
    kernels.push((
        "rescale",
        measure(&mut || {
            std::hint::black_box(ctx.rescale(&ct));
        }),
        expected_rescale(limbs),
    ));
    // Measured-only kernels: no exact closed form (rotations add the
    // automorphism gathers; mul adds the tensor on top of its keyswitch),
    // but the counts are still deterministic and recorded for trending.
    let relin = ctx.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
    let rot = ctx.rotation_keygen(&sk, 1, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
    kernels.push((
        "rotate",
        measure(&mut || {
            std::hint::black_box(ctx.rotate(&ct, 1, &rot));
        }),
        None,
    ));
    kernels.push((
        "mul_relin",
        measure(&mut || {
            std::hint::black_box(ctx.mul(&ct, &ct, &relin));
        }),
        None,
    ));
    kernels.push((
        "bootstrap_step",
        measure(&mut || {
            std::hint::black_box(ctx.rescale(&ctx.square(&ct, &relin)));
        }),
        None,
    ));

    // Compiler-driven execution: a BSGS LoLa layer graph lowered to a
    // pipeline Program and executed warm through the executor.
    // `cl_compiler::predict_program`'s closed form is the *expected* side,
    // gated exactly by `scripts/bench.sh --check` like the keyswitch and
    // rescale identities above — the compiled-execution cost model is
    // re-proven at this run's shape on every bench run.
    {
        use cl_runtime::{ExecutorConfig, PipelineExecutor, RunOutcome};

        let sctx = CkksContext::new(
            CkksParams::builder()
                .ring_degree(n)
                .levels(limbs)
                .special_limbs(limbs)
                .limb_bits(bits)
                .scale_bits(bits - 4)
                .build()
                .expect("params"),
        )
        .expect("ckks context")
        .with_policy(cl_ckks::GuardrailPolicy::Strict {
            min_budget_bits: -200.0,
        });
        let slots = sctx.params().slots();
        let w = cl_apps::lola_layer_runnable(slots, limbs, 8, 1, false);
        let lowered = cl_compiler::lower_to_program(
            &w.graph,
            &cl_compiler::LowerOptions {
                slots,
                plain: w.plain.clone(),
                reorder: true,
                auto_bootstrap: None,
                max_live_cts: None,
            },
        )
        .expect("layer lowers");
        let ksk = sctx.keygen(&mut rng);
        let keys = cl_boot::BootstrapKeys::generate(
            &sctx,
            &ksk,
            KeySwitchKind::Standard,
            &lowered.rotation_steps,
            &mut rng,
        );
        let img: Vec<f64> = (0..slots).map(|i| (i % 7) as f64 * 0.1 - 0.3).collect();
        let cx = sctx.encrypt(&sctx.encode(&img, sctx.default_scale(), limbs), &ksk, &mut rng);
        let run_compiled = || {
            let mut exec = PipelineExecutor::new(
                &sctx,
                &keys,
                ExecutorConfig {
                    checkpoint_every: 0,
                    max_retries: 0,
                    checkpoint_dir: None,
                },
            )
            .expect("executor");
            match exec
                .run_graph(std::slice::from_ref(&cx), &lowered.program)
                .expect("compiled run")
            {
                RunOutcome::Completed(out) => out,
                RunOutcome::Crashed => unreachable!("no fault plan"),
            }
        };
        run_compiled(); // warm: materialize every seeded hint first
        let p = cl_compiler::predict_program(
            limbs,
            KeySwitchKind::Standard,
            &[limbs],
            &lowered.program,
        )
        .expect("program predicts");
        kernels.push((
            "compiled_lola_layer",
            measure(&mut || {
                std::hint::black_box(run_compiled());
            }),
            Some(vec![
                ("ntt_total", p.ntt + p.intt),
                ("mult", p.mult),
                ("add", p.add),
                ("base_conv", p.base_conv),
            ]),
        ));
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"label\": \"{}\",", cfg.label);
    let _ = writeln!(json, "  \"enabled\": true,");
    let _ = writeln!(json, "  \"n\": {n},");
    let _ = writeln!(json, "  \"limbs\": {limbs},");
    let _ = writeln!(json, "  \"limb_bits\": {bits},");
    let _ = writeln!(json, "  \"backend\": \"{}\",", cl_math::active_backend());
    let _ = writeln!(json, "  \"smoke\": {},", cfg.smoke);
    let _ = writeln!(json, "  \"kernels\": {{");
    for (i, (name, measured, expected)) in kernels.iter().enumerate() {
        let comma = if i + 1 == kernels.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{name}\": {{");
        let _ = write!(json, "      \"measured\": {}", measured.to_json());
        if let Some(exp) = expected {
            let _ = writeln!(json, ",");
            let fields: Vec<String> =
                exp.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
            let _ = writeln!(json, "      \"expected\": {{{}}}", fields.join(", "));
        } else {
            let _ = writeln!(json);
        }
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    for (name, measured, _) in &kernels {
        println!(
            "{name:>24}: ntt={:<5} mult={:<6} add={:<6} base_conv={:<6} (passes)",
            measured.ntt_total(),
            measured.mult,
            measured.add,
            measured.base_conv
        );
    }
    if let Some(path) = &cfg.out {
        std::fs::write(path, &json).expect("write JSON output");
        eprintln!("bench_kernels: wrote {path}");
    } else {
        println!("{json}");
    }
}

fn main() {
    let cfg = parse_args();
    // Acceptance shapes: N >= 2^13, >= 8 limbs. Smoke: tiny.
    let (n, limbs, bits) = if cfg.smoke { (256, 3, 30) } else { (1 << 13, 8, 50) };
    if cfg.ops {
        eprintln!(
            "bench_kernels: op-count mode, label={} n={n} limbs={limbs} bits={bits} smoke={}",
            cfg.label, cfg.smoke
        );
        run_op_counts(&cfg, n, limbs, bits);
        return;
    }
    let threads = std::env::var("CL_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        });
    eprintln!(
        "bench_kernels: label={} n={n} limbs={limbs} bits={bits} threads={threads} backend={} smoke={}",
        cfg.label,
        cl_math::active_backend(),
        cfg.smoke
    );

    let mut results: Vec<(&'static str, f64)> = Vec::new();

    // --- RNS-level kernels -------------------------------------------------
    {
        let ctx = RnsContext::generate(n, limbs, limbs, bits).expect("rns context");
        let basis = ctx.q_basis(limbs);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let a = ctx.sample_uniform(&basis, &mut rng);
        let b = ctx.sample_uniform(&basis, &mut rng);
        let mut coeff = a.clone();
        ctx.from_ntt(&mut coeff);

        results.push((
            "ntt_forward",
            time_ns(cfg.smoke, || {
                let mut p = coeff.clone();
                ctx.to_ntt(&mut p);
                std::hint::black_box(&p);
            }),
        ));
        results.push((
            "ntt_inverse",
            time_ns(cfg.smoke, || {
                let mut p = a.clone();
                ctx.from_ntt(&mut p);
                std::hint::black_box(&p);
            }),
        ));
        results.push((
            "rns_add",
            time_ns(cfg.smoke, || {
                std::hint::black_box(ctx.add(&a, &b));
            }),
        ));
        results.push((
            "rns_mul",
            time_ns(cfg.smoke, || {
                std::hint::black_box(ctx.mul(&a, &b));
            }),
        ));
        {
            let mut acc = a.clone();
            results.push((
                "rns_mul_acc",
                time_ns(cfg.smoke, || {
                    ctx.mul_acc(&mut acc, &a, &b);
                    std::hint::black_box(&acc);
                }),
            ));
        }
        let g = cl_math::galois_element_for_rotation(1, n);
        results.push((
            "automorphism_ntt",
            time_ns(cfg.smoke, || {
                std::hint::black_box(ctx.apply_automorphism(&a, g));
            }),
        ));
        let conv = BaseConverter::new(&ctx, ctx.q_basis(limbs), ctx.p_basis(limbs));
        results.push((
            "base_conv",
            time_ns(cfg.smoke, || {
                std::hint::black_box(conv.convert(&ctx, &coeff));
            }),
        ));
    }

    // --- CKKS-level kernels ------------------------------------------------
    {
        let params = CkksParams::builder()
            .ring_degree(n)
            .levels(limbs)
            .special_limbs(limbs)
            .limb_bits(bits)
            .scale_bits(bits - 4)
            .build()
            .expect("params");
        let ctx = CkksContext::new(params).expect("ckks context");
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let sk = ctx.keygen(&mut rng);
        let relin = ctx.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let rot = ctx.rotation_keygen(&sk, 1, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let vals: Vec<f64> = (0..16).map(|i| 0.01 * i as f64).collect();
        let pt = ctx.encode(&vals, ctx.default_scale(), limbs);
        let ct = ctx.encrypt(&pt, &sk, &mut rng);

        let qb = ctx.rns().q_basis(limbs);
        let signed: Vec<i64> = (0..n).map(|i| ((i as i64 * 37 + 11) % 1000) - 500).collect();
        let mut msg = ctx.rns().from_signed_coeffs(&signed, &qb);
        ctx.rns().to_ntt(&mut msg);
        results.push((
            "keyswitch",
            time_ns(cfg.smoke, || {
                std::hint::black_box(ctx.keyswitch(&msg, &relin));
            }),
        ));
        results.push((
            "rotate",
            time_ns(cfg.smoke, || {
                std::hint::black_box(ctx.rotate(&ct, 1, &rot));
            }),
        ));
        results.push((
            "rescale",
            time_ns(cfg.smoke, || {
                std::hint::black_box(ctx.rescale(&ct));
            }),
        ));
        // Hoisted vs naive batch rotation: the same 8 rotations of one
        // ciphertext, naively (one ModUp per rotation) and hoisted (one
        // shared ModUp). Standard keyswitching decomposes into one digit
        // per limb, so its ModUp is O(L^2) NTT work and dominates each
        // rotation — the classic setting where hoisting pays.
        {
            let hoist_kind = KeySwitchKind::Standard;
            let steps: Vec<i64> = (1..=8).collect();
            let keys: Vec<KeySwitchKey> = steps
                .iter()
                .map(|&s| ctx.rotation_keygen(&sk, s, hoist_kind, &mut rng))
                .collect();
            let key_refs: Vec<&KeySwitchKey> = keys.iter().collect();
            results.push((
                "rotate_naive_x8",
                time_ns(cfg.smoke, || {
                    for (&s, k) in steps.iter().zip(&keys) {
                        std::hint::black_box(ctx.rotate(&ct, s, k));
                    }
                }),
            ));
            results.push((
                "rotate_hoisted_x8",
                time_ns(cfg.smoke, || {
                    std::hint::black_box(
                        ctx.try_rotate_hoisted_many(&ct, &steps, &key_refs)
                            .expect("hoisted rotations"),
                    );
                }),
            ));
            // The same hoisted batch with every hint fetched from a warm
            // `HintCache` (compact keys, lazily materialized on first use).
            // `scripts/bench.sh --check` gates the ratio vs the eager-key
            // kernel above at <= ~10%: warm-cache fetches must stay a hash
            // lookup, not a regeneration.
            {
                let compacts: Vec<cl_ckks::CompactKeySwitchKey> =
                    keys.iter().map(KeySwitchKey::to_compact).collect();
                let cache = HintCache::new(1 << 30);
                for ck in &compacts {
                    cache.prefetch(&ctx, ck).expect("warm hint cache");
                }
                results.push((
                    "rotate_hoisted_x8_cached",
                    time_ns(cfg.smoke, || {
                        let arcs: Vec<_> = compacts
                            .iter()
                            .map(|ck| cache.get_or_expand(&ctx, ck).expect("warm hint"))
                            .collect();
                        let refs: Vec<&KeySwitchKey> =
                            arcs.iter().map(std::convert::AsRef::as_ref).collect();
                        std::hint::black_box(
                            ctx.try_rotate_hoisted_many(&ct, &steps, &refs)
                                .expect("hoisted rotations"),
                        );
                    }),
                ));
            }
        }
        // BSGS vs naive linear transform: a 16-diagonal band matrix (the
        // shape of one bootstrap CoeffToSlot radix stage) applied with
        // per-diagonal rotations vs the precomputed double-hoisted BSGS
        // path.
        {
            let m = ctx.params().slots();
            let level = limbs;
            let kind = KeySwitchKind::Standard;
            let n_diags = 16.min(m);
            let mut drng = rand::rngs::StdRng::seed_from_u64(11);
            let diags: Vec<(i64, Vec<Complex>)> = (0..n_diags as i64)
                .map(|d| {
                    let v: Vec<Complex> = (0..m)
                        .map(|_| {
                            Complex::new(
                                rand::Rng::gen_range(&mut drng, -0.5..0.5),
                                rand::Rng::gen_range(&mut drng, -0.5..0.5),
                            )
                        })
                        .collect();
                    (d, v)
                })
                .collect();
            let pre = PrecomputedTransform::new(&ctx, &diags, level);
            let mut steps = pre.required_steps();
            steps.extend(diags.iter().map(|(d, _)| *d));
            let keys = BootstrapKeys::generate(&ctx, &sk, kind, &steps, &mut rng);
            let pt_scale = ctx.rns().modulus_value((level - 1) as u32) as f64;
            let diag_pts: Vec<(i64, cl_ckks::Plaintext)> = diags
                .iter()
                .map(|(d, v)| (*d, ctx.encode_complex(v, pt_scale, level)))
                .collect();
            results.push((
                "linear_transform_naive",
                time_ns(cfg.smoke, || {
                    let mut acc: Option<Ciphertext> = None;
                    for (d, pt) in &diag_pts {
                        let rotated = if *d == 0 {
                            ct.clone()
                        } else {
                            ctx.try_rotate(&ct, *d, keys.try_rot_key(&ctx, *d).expect("diag key").as_ref())
                                .expect("rotate")
                        };
                        let term = ctx.try_mul_plain(&rotated, pt).expect("mul_plain");
                        acc = Some(match acc {
                            None => term,
                            Some(a) => ctx.try_add(&a, &term).expect("add"),
                        });
                    }
                    let out = ctx.try_rescale(&acc.expect("diags")).expect("rescale");
                    std::hint::black_box(out);
                }),
            ));
            results.push((
                "linear_transform_bsgs",
                time_ns(cfg.smoke, || {
                    std::hint::black_box(
                        try_bsgs_transform(&ctx, &ct, &pre, &keys).expect("bsgs transform"),
                    );
                }),
            ));
        }
        // One bootstrap step: the EvalMod inner loop is a squaring chain;
        // each step is square + rescale.
        results.push((
            "bootstrap_step",
            time_ns(cfg.smoke, || {
                std::hint::black_box(ctx.rescale(&ctx.square(&ct, &relin)));
            }),
        ));
        // The same step with the relin hint fetched warm from a `HintCache`
        // each iteration; gated vs the eager kernel at <= ~10% by
        // `scripts/bench.sh --check`.
        {
            let relin_compact = relin.to_compact();
            let cache = HintCache::new(1 << 30);
            cache.prefetch(&ctx, &relin_compact).expect("warm hint cache");
            results.push((
                "bootstrap_step_cached",
                time_ns(cfg.smoke, || {
                    let r = cache.get_or_expand(&ctx, &relin_compact).expect("warm relin hint");
                    std::hint::black_box(ctx.rescale(&ctx.square(&ct, r.as_ref())));
                }),
            ));
        }
        // --- Key memory: software KSHGen residency tiers -------------------
        // A bootstrap-capable key set (relin + conjugation + the full
        // ± power-of-two rotation ladder) sized three ways: every hint
        // materialized (how PR-7 held keys), the compact seeded form, and
        // the hot-hint cache capped at an eighth of the eager footprint.
        // `scripts/bench.sh --check` gates eager/hot at >= 4x; the compact
        // tier and the single-hint regeneration cost are recorded alongside.
        {
            let slots = ctx.params().slots() as i64;
            let mut ladder: Vec<i64> = Vec::new();
            let mut s = 1i64;
            while s < slots {
                ladder.push(s);
                ladder.push(-s);
                s <<= 1;
            }
            let bkeys = BootstrapKeys::generate(
                &ctx,
                &sk,
                KeySwitchKind::Boosted { digits: 1 },
                &ladder,
                &mut rng,
            );
            let compact_bytes = bkeys.compact_resident_bytes();
            let mut compacts: Vec<&cl_ckks::CompactKeySwitchKey> =
                vec![bkeys.relin_compact(), bkeys.conj_compact()];
            for &st in &ladder {
                compacts.push(bkeys.rot_compact(st).expect("ladder key"));
            }
            let eager_bytes: usize = compacts
                .iter()
                .map(|ck| ck.expand(&ctx).expect("expand hint").resident_bytes())
                .sum();
            let cache = HintCache::new(eager_bytes / 8);
            for ck in &compacts {
                cache.prefetch(&ctx, ck).expect("hot tier");
            }
            let hot_bytes = cache.stats().bytes_resident;
            results.push(("key_memory_eager_bytes", eager_bytes as f64));
            results.push(("key_memory_compact_bytes", compact_bytes as f64));
            results.push(("key_memory_hot_bytes", hot_bytes as f64));
            let regen = bkeys.rot_compact(1).expect("ladder key");
            results.push((
                "key_memory_regen",
                time_ns(cfg.smoke, || {
                    std::hint::black_box(regen.expand(&ctx).expect("regen hint"));
                }),
            ));
        }
    }

    // --- Pipeline executor: checkpointing overhead ------------------------
    // The same declared program through the cl-runtime executor with
    // durable checkpoints every 4 micro-ops vs checkpoints disabled.
    // `scripts/bench.sh --check` gates the ratio at <= ~10%.
    {
        use cl_ckks::GuardrailPolicy;
        use cl_runtime::{ExecutorConfig, PipelineExecutor, PipelineOp, Program, RunOutcome};

        let params = CkksParams::builder()
            .ring_degree(n)
            .levels(limbs)
            .special_limbs(limbs)
            .limb_bits(bits)
            .scale_bits(bits - 4)
            .build()
            .expect("params");
        // Arc'd because the job-server kernels below register the same
        // context as a tenant.
        let ctx = std::sync::Arc::new(
            CkksContext::new(params)
                .expect("ckks context")
                .with_policy(GuardrailPolicy::Strict {
                    min_budget_bits: -200.0,
                }),
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let sk = ctx.keygen(&mut rng);
        let keys = cl_boot::BootstrapKeys::generate(
            &ctx,
            &sk,
            KeySwitchKind::Boosted { digits: 1 },
            &[1],
            &mut rng,
        );
        let pt = ctx.encode(&[0.5, -0.25], ctx.default_scale(), ctx.max_level());
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let mut program = Program::new();
        for _ in 0..(limbs - 1).min(3) {
            program = program
                .then(PipelineOp::Square)
                .then(PipelineOp::Rescale)
                .then(PipelineOp::Rotate(1))
                .then(PipelineOp::AddPlain(vec![0.1, 0.2]));
        }
        let ckpt_dir = std::env::temp_dir().join(format!("cl_bench_ckpt_{}", std::process::id()));
        let run = |config: ExecutorConfig| {
            let mut exec = PipelineExecutor::new(&ctx, &keys, config).expect("executor");
            match exec.run(&ct, &program).expect("pipeline run") {
                RunOutcome::Completed(out) => out,
                RunOutcome::Crashed => unreachable!("no fault plan"),
            }
        };
        results.push((
            "pipeline_baseline",
            time_ns(cfg.smoke, || {
                std::hint::black_box(run(ExecutorConfig {
                    checkpoint_every: 0,
                    max_retries: 0,
                    checkpoint_dir: None,
                }));
            }),
        ));
        results.push((
            "pipeline_checkpoint",
            time_ns(cfg.smoke, || {
                std::hint::black_box(run(ExecutorConfig {
                    checkpoint_every: 4,
                    max_retries: 0,
                    checkpoint_dir: Some(ckpt_dir.clone()),
                }));
            }),
        ));
        let _ = std::fs::remove_dir_all(&ckpt_dir);

        // --- Compiler-driven execution ------------------------------------
        // A BSGS LoLa layer graph lowered to a pipeline Program
        // (`compile_lola_layer` is the graph->Program compile itself) and
        // executed warm through the executor (`compiled_layer_run`). The
        // `--ops` mode runs the same compiled program with its op counts
        // gated exactly against `cl_compiler::predict_program`.
        {
            let slots = ctx.params().slots();
            let w = cl_apps::lola_layer_runnable(slots, limbs, 8, 1, false);
            let opts = cl_compiler::LowerOptions {
                slots,
                plain: w.plain.clone(),
                reorder: true,
                auto_bootstrap: None,
                max_live_cts: None,
            };
            results.push((
                "compile_lola_layer",
                time_ns(cfg.smoke, || {
                    std::hint::black_box(
                        cl_compiler::lower_to_program(&w.graph, &opts).expect("layer lowers"),
                    );
                }),
            ));
            let lowered = cl_compiler::lower_to_program(&w.graph, &opts).expect("layer lowers");
            let ckeys = cl_boot::BootstrapKeys::generate(
                &ctx,
                &sk,
                KeySwitchKind::Boosted { digits: 1 },
                &lowered.rotation_steps,
                &mut rng,
            );
            let img: Vec<f64> = (0..slots).map(|i| (i % 7) as f64 * 0.1 - 0.3).collect();
            let cx = ctx.encrypt(&ctx.encode(&img, ctx.default_scale(), limbs), &sk, &mut rng);
            let run_compiled = || {
                let mut exec = PipelineExecutor::new(
                    &ctx,
                    &ckeys,
                    ExecutorConfig {
                        checkpoint_every: 0,
                        max_retries: 0,
                        checkpoint_dir: None,
                    },
                )
                .expect("executor");
                match exec
                    .run_graph(std::slice::from_ref(&cx), &lowered.program)
                    .expect("compiled run")
                {
                    RunOutcome::Completed(out) => out,
                    RunOutcome::Crashed => unreachable!("no fault plan"),
                }
            };
            results.push((
                "compiled_layer_run",
                time_ns(cfg.smoke, || {
                    std::hint::black_box(run_compiled());
                }),
            ));
        }

        // --- Job server: scheduling overhead and scaling -------------------
        // The same batch of jobs three ways: straight through the executor
        // (no server), through a 1-worker JobServer (pure admission/queue/
        // dispatch overhead — `scripts/bench.sh --check` gates this ratio at
        // <= ~10%), and through a CL_THREADS-worker server (throughput
        // scaling). Checkpointing is off in all three so the delta is
        // scheduling alone. Each timed call is a full server lifecycle:
        // start, register, submit the batch, drain, shut down.
        {
            use std::sync::Arc;

            use cl_server::{Blob, FsyncPolicy, JobServer, JobSpec, ServerConfig};

            // Full mode uses a 16-job batch so per-lifecycle fixed costs
            // (worker/supervisor spawn, first-job key-blob parse, journal
            // open) amortize out and the gated ratios measure steady-state
            // per-job overhead, not lifecycle setup.
            let jobs = if cfg.smoke { 2 } else { 16 };
            let fp = ctx.params_fingerprint();
            // One shared Blob per payload: each submitted clone shares the
            // allocation and the cached content digest, which is how a real
            // client submits a batch under one key bundle.
            let program_blob = Blob::new(program.serialize(fp));
            let input_blob = Blob::new(ctx.serialize_ciphertext(&ct));
            let key_blob = Blob::new(keys.serialize(&ctx));
            // Prefer tmpfs for the server root: the journal-overhead gate
            // exists to catch *code* regressions (framing, hashing, extra
            // copies, fsync discipline), and on a contended ext4 the ~15 MB
            // a 16-job lifecycle flushes costs 60-90 ms of pure device
            // time with run-to-run swings larger than the overhead being
            // gated. Durability on real disks is proven by the chaos tests;
            // here the device must not drown the measurement.
            let shm = std::path::Path::new("/dev/shm");
            let root = if shm.is_dir() {
                shm.to_path_buf()
            } else {
                std::env::temp_dir()
            }
            .join(format!("cl_bench_server_{}", std::process::id()));
            let serve = |workers: usize, journal: bool| {
                let server = JobServer::start(ServerConfig {
                    workers,
                    queue_capacity: jobs.max(16),
                    tenant_queue_capacity: jobs.max(16),
                    checkpoint_root: root.clone(),
                    checkpoint_every: 0,
                    backoff_base_ms: 0,
                    // Scheduling kernels journal nothing so the 1-worker
                    // delta over the sequential baseline is queueing alone;
                    // `server_journal` turns it on (at the production
                    // default batch fsync) to price crash durability.
                    journal,
                    journal_fsync: FsyncPolicy::Batch(32),
                    ..ServerConfig::default()
                })
                .expect("server start");
                server
                    .register_tenant("bench", Arc::clone(&ctx))
                    .expect("register tenant");
                for _ in 0..jobs {
                    server
                        .submit(JobSpec::new(
                            "bench",
                            program_blob.clone(),
                            input_blob.clone(),
                            key_blob.clone(),
                        ))
                        .expect("queue sized for the whole batch");
                }
                let outcomes = server.shutdown();
                assert!(
                    outcomes.iter().all(cl_server::JobOutcome::is_ok),
                    "bench jobs must all complete"
                );
                // Each timed lifecycle starts from a fresh journal — an
                // inherited file would grow across iterations and drift
                // the open/replay cost.
                let _ = std::fs::remove_dir_all(root.join("journal"));
            };
            let run_seq = || {
                for _ in 0..jobs {
                    std::hint::black_box(run(ExecutorConfig {
                        checkpoint_every: 0,
                        max_retries: 0,
                        checkpoint_dir: None,
                    }));
                }
            };
            // `bench.sh --check` gates the 1w/seq and journal/1w ratios at
            // <= ~10% each. Timed independently (one kernel's iterations
            // back to back, then the next), the two sides of a ratio run
            // minutes apart — long enough for thermal/background drift to
            // dwarf the few-percent overheads being gated, which made the
            // gates flap on identical code. Interleave the four variants
            // round-robin and take per-variant minima instead: drift then
            // lands on every variant equally and cancels out of the ratios.
            let variants: [(&'static str, &dyn Fn()); 4] = [
                ("server_seq_baseline", &run_seq),
                ("server_jobs_1w", &|| serve(1, false)),
                ("server_jobs_mt", &|| serve(threads.max(1), false)),
                ("server_journal", &|| serve(1, true)),
            ];
            // More rounds than time_ns would use: the journal variant's
            // fsync cost rides on disk state, so its minimum needs more
            // samples to converge.
            let rounds = if cfg.smoke { 1 } else { 9 };
            let mut best = [f64::INFINITY; 4];
            for (_, f) in &variants {
                f(); // warm-up
            }
            for _ in 0..rounds {
                for (i, (_, f)) in variants.iter().enumerate() {
                    let t = Instant::now();
                    f();
                    best[i] = best[i].min(t.elapsed().as_nanos() as f64);
                }
            }
            for (i, (name, _)) in variants.iter().enumerate() {
                results.push((name, best[i]));
            }
            let _ = std::fs::remove_dir_all(&root);
        }
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"label\": \"{}\",", cfg.label);
    let _ = writeln!(json, "  \"n\": {n},");
    let _ = writeln!(json, "  \"limbs\": {limbs},");
    let _ = writeln!(json, "  \"limb_bits\": {bits},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"backend\": \"{}\",", cl_math::active_backend());
    let feats: Vec<String> = cl_math::cpu_features()
        .iter()
        .map(|(name, on)| format!("\"{name}\": {on}"))
        .collect();
    let _ = writeln!(json, "  \"cpu_features\": {{{}}},", feats.join(", "));
    let _ = writeln!(json, "  \"smoke\": {},", cfg.smoke);
    let _ = writeln!(json, "  \"kernels_ns\": {{");
    for (i, (name, ns)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{name}\": {ns:.0}{comma}");
    }
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    for (name, ns) in &results {
        if name.ends_with("_bytes") {
            println!("{name:>16}: {:>12.1} KiB resident", ns / 1024.0);
        } else {
            println!("{name:>16}: {:>12.1} us/op", ns / 1000.0);
        }
    }
    if let Some(path) = &cfg.out {
        std::fs::write(path, &json).expect("write JSON output");
        eprintln!("bench_kernels: wrote {path}");
    } else {
        println!("{json}");
    }
}
