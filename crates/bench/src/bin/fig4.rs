//! Fig. 4: keyswitch-hint footprint and compute for standard vs. boosted
//! keyswitching as a function of the multiplicative budget L (N = 64K).

use cl_isa::cost::{fig4_compute, fig4_footprint};

fn main() {
    let n = 1 << 16;
    println!("Fig. 4: standard vs. boosted keyswitching at N = 64K");
    println!();
    println!(
        "{:>4} {:>16} {:>16} {:>22} {:>22}",
        "L", "std foot [GB]", "boost foot [GB]", "std muls [billions]", "boost muls [billions]"
    );
    for l in (4..=64).step_by(4) {
        let (sf, bf) = fig4_footprint(n, l, 28);
        let (sc, bc) = fig4_compute(n, l);
        println!(
            "{:>4} {:>16.3} {:>16.3} {:>22.3} {:>22.3}",
            l,
            sf as f64 / 1e9,
            bf as f64 / 1e9,
            sc as f64 / 1e9,
            bc as f64 / 1e9
        );
    }
    println!();
    let (sf60, bf60) = fig4_footprint(n, 60, 28);
    println!(
        "At L=60: footprints {:.2} GB (standard) vs {:.1} MB (boosted); paper: 1.7 GB vs 52.5 MB.",
        sf60 as f64 / 1e9,
        bf60 as f64 / 1e6
    );
    println!(
        "Crossover (boosted cheaper in multiplies) at L = {} (paper: ~14).",
        cl_isa::cost::boosted_crossover_level(n)
    );
}
