//! Table 1: operation breakdown for boosted vs. standard keyswitching, as
//! a function of the multiplicative budget L and at L = 60.

use cl_isa::cost::{
    boosted_keyswitch_crb_mult, boosted_keyswitch_ops, standard_keyswitch_ops,
};

fn main() {
    println!("Table 1: Operation breakdown, boosted vs. standard keyswitching");
    println!();
    println!("{:<8} {:>28} {:>18}", "", "Boosted (changeRNSBase + other)", "Standard");
    let l = 60;
    let b = boosted_keyswitch_ops(l, 1);
    let crb = boosted_keyswitch_crb_mult(l, 1);
    let s = standard_keyswitch_ops(l);
    println!("As formulas (any L): boosted mult = 3L^2+4L, add = 3L^2+2L, ntt = 6L");
    println!("                     standard mult = 2L^2, add = 2L^2, ntt = L^2");
    println!();
    println!("At L = {l}:");
    println!("{:<8} {:>12} + {:>6} {:>18}", "Mult", crb, b.mult - crb, s.mult);
    println!("{:<8} {:>12} + {:>6} {:>18}", "Add", crb, b.add - crb, s.add);
    println!("{:<8} {:>21} {:>18}", "NTT", b.ntt, s.ntt);
    println!();
    println!(
        "NTT reduction at L=60: {}x (paper: 10x)",
        s.ntt / b.ntt
    );
    println!("Paper reference (L=60): boosted 10,800+240 / 10,800+120 / 360;");
    println!("                        standard 7,200 / 7,200 / 3,600.");
}
