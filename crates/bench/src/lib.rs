//! Benchmark harness: shared helpers for the table/figure binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see `DESIGN.md`'s per-experiment index). This
//! library holds the common run-one-benchmark plumbing.

#![warn(missing_docs)]

use cl_apps::Benchmark;
use cl_baselines::{craterlake_options, f1_plus_options, CpuModel};
use cl_compiler::compile_and_run;
use cl_core::{ArchConfig, Stats};

/// Results of running one benchmark on the three compared systems.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Benchmark name.
    pub name: &'static str,
    /// Whether it belongs to the deep suite.
    pub deep: bool,
    /// CraterLake execution time, ms.
    pub craterlake_ms: f64,
    /// F1+ execution time, ms.
    pub f1_ms: f64,
    /// Modeled CPU execution time, ms.
    pub cpu_ms: f64,
    /// CraterLake run statistics (for Figs. 9-10).
    pub craterlake_stats: Stats,
    /// F1+ run statistics.
    pub f1_stats: Stats,
}

/// Runs a benchmark on CraterLake, F1+, and the CPU model.
pub fn compare(bench: &Benchmark) -> Comparison {
    let (cl_arch, cl_opts) = craterlake_options(bench.n);
    let (f1_arch, f1_opts) = f1_plus_options(bench.n);
    let cl_stats = compile_and_run(&bench.graph, &cl_arch, &cl_opts);
    let f1_stats = compile_and_run(&bench.graph, &f1_arch, &f1_opts);
    let cpu = CpuModel::paper_calibrated();
    let cpu_s = cpu.time_for_graph(&bench.graph, bench.n, &cl_opts.ks_policy);
    Comparison {
        name: bench.name,
        deep: bench.deep,
        craterlake_ms: cl_stats.exec_ms(&cl_arch),
        f1_ms: f1_stats.exec_ms(&f1_arch),
        cpu_ms: cpu_s * 1e3,
        craterlake_stats: cl_stats,
        f1_stats,
    }
}

/// Runs a benchmark on one specific architecture with CraterLake's
/// compile options.
pub fn run_on(bench: &Benchmark, arch: &ArchConfig) -> Stats {
    let (_, opts) = craterlake_options(bench.n);
    compile_and_run(&bench.graph, arch, &opts)
}

/// Geometric mean of a nonempty slice.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn gmean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Formats a milliseconds value the way Table 3 prints it (ms, seconds or
/// minutes as magnitude requires).
pub fn fmt_time(ms: f64) -> String {
    if ms >= 60_000.0 {
        format!("{:.0} min", ms / 60_000.0)
    } else if ms >= 1_000.0 {
        format!("{:.1} s", ms / 1_000.0)
    } else {
        format!("{ms:.2} ms")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_basics() {
        assert!((gmean(&[4.0, 9.0]) - 6.0).abs() < 1e-12);
        assert!((gmean(&[5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn fmt_time_ranges() {
        assert_eq!(fmt_time(0.14), "0.14 ms");
        assert_eq!(fmt_time(3910.0), "3.9 s");
        assert_eq!(fmt_time(23.0 * 60_000.0), "23 min");
    }
}
