//! Op-level telemetry for the CraterLake reproduction.
//!
//! The paper's entire evaluation rests on *operation accounting*: Table 1's
//! keyswitch formulas and the cycle-level machine model assume the workload
//! performs exactly the operation counts the closed forms predict. This
//! crate is the measurement side of that story — a lightweight, thread-aware
//! subsystem that counts primitive operations at residue-polynomial
//! granularity as the functional substrate (`cl-math`/`cl-rns`/`cl-ckks`/
//! `cl-boot`) executes:
//!
//! - **Counters** ([`OpSnapshot`]): forward NTT passes, inverse NTT passes,
//!   element-wise multiplication passes, addition/subtraction passes,
//!   base-conversion limb conversions (the CRB unit's workload),
//!   automorphism applications, bytes of polynomial data touched, and
//!   high-level homomorphic ops (rotations, ciphertext and plaintext
//!   multiplications). One "pass" is one sweep over one `N`-coefficient
//!   residue polynomial — the same unit `cl_isa::cost` counts in.
//! - **Spans** ([`span`]): named scopes (`keyswitch`, `rescale`, `rotate`,
//!   the bootstrap stages) that record wall time and the counter deltas
//!   accumulated while they were open.
//! - **Export** ([`profile_json`]): the counters and span registry as a
//!   JSON document, wired into `scripts/bench.sh` and
//!   `cl-runtime`'s `RecoveryTelemetry`.
//!
//! # Feature gating
//!
//! Everything compiles to nothing unless the `trace` feature is enabled:
//! the recording functions are empty `#[inline(always)]` bodies, the span
//! guard is a zero-sized type, and [`OpSnapshot::capture`] returns zeros.
//! Instrumentation call sites therefore stay in the hot paths permanently
//! at zero cost (verified by the `bench.sh --check` regression gate).
//!
//! # Thread-awareness and determinism
//!
//! Counters are process-global relaxed atomics. Every counted pass is
//! data-independent work dispatched over the `cl-rns` limb engine, so the
//! *totals* are bit-identical at any `CL_THREADS` setting — only the
//! interleaving differs, which relaxed addition is insensitive to. This is
//! tested in `tests/differential.rs`. Span *deltas* attribute those global
//! totals to the span that was open; they are exact when homomorphic ops
//! are not issued concurrently from multiple threads (the repo's execution
//! model: one op at a time, limb-parallel inside).

#![warn(missing_docs)]
// Library code must propagate failures or `expect` with the violated
// invariant; tests are exempt. Enforced by scripts/verify.sh.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

/// Accumulated operation counts, captured with [`OpSnapshot::capture`].
///
/// All fields count *residue-polynomial passes* (one pass = one sweep over
/// one `N`-coefficient residue polynomial) except `bytes`, which counts
/// `8·N` bytes per pass, and the high-level `rotations`/`ct_mults`/
/// `pt_mults`, which count whole homomorphic operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpSnapshot {
    /// Forward NTT passes.
    pub ntt: u64,
    /// Inverse NTT passes.
    pub intt: u64,
    /// Element-wise multiplication passes (including scalar and per-limb
    /// constant multiplications; excluding base-conversion matrix work,
    /// which is counted in `base_conv`).
    pub mult: u64,
    /// Element-wise addition/subtraction/negation passes (excluding
    /// base-conversion matrix work).
    pub add: u64,
    /// Base-conversion limb conversions: one per (source limb → destination
    /// limb) multiply-accumulate pass of `changeRNSBase` — the CRB
    /// functional unit's workload, `cl_isa::cost::boosted_keyswitch_crb_mult`.
    pub base_conv: u64,
    /// Automorphism applications (per residue polynomial, including gathers
    /// fused into keyswitch inner products).
    pub automorph: u64,
    /// Bytes of polynomial data touched: `8·N` per counted pass.
    pub bytes: u64,
    /// Homomorphic rotations/conjugations (whole-ciphertext ops).
    pub rotations: u64,
    /// Homomorphic ciphertext-ciphertext multiplications (incl. squares).
    pub ct_mults: u64,
    /// Homomorphic plaintext multiplications.
    pub pt_mults: u64,
    /// Seeded keyswitch-hint regeneration passes: one per residue polynomial
    /// whose pseudorandom half was re-expanded from its seed (the software
    /// KSHGen workload). Counted separately from the compute fields so
    /// per-tenant reports can attribute regen cost apart from compute, and
    /// *not* folded into `bytes` (which tracks compute-touched polynomial
    /// data, the unit the cost-model cross-validation gates on).
    pub hint_regen: u64,
}

impl OpSnapshot {
    /// Field-wise difference `self - earlier` (saturating, though counters
    /// are monotone so a later capture is never smaller).
    #[must_use]
    pub fn delta_since(&self, earlier: &OpSnapshot) -> OpSnapshot {
        OpSnapshot {
            ntt: self.ntt.saturating_sub(earlier.ntt),
            intt: self.intt.saturating_sub(earlier.intt),
            mult: self.mult.saturating_sub(earlier.mult),
            add: self.add.saturating_sub(earlier.add),
            base_conv: self.base_conv.saturating_sub(earlier.base_conv),
            automorph: self.automorph.saturating_sub(earlier.automorph),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            rotations: self.rotations.saturating_sub(earlier.rotations),
            ct_mults: self.ct_mults.saturating_sub(earlier.ct_mults),
            pt_mults: self.pt_mults.saturating_sub(earlier.pt_mults),
            hint_regen: self.hint_regen.saturating_sub(earlier.hint_regen),
        }
    }

    /// Field-wise sum.
    #[must_use]
    pub fn plus(&self, other: &OpSnapshot) -> OpSnapshot {
        OpSnapshot {
            ntt: self.ntt + other.ntt,
            intt: self.intt + other.intt,
            mult: self.mult + other.mult,
            add: self.add + other.add,
            base_conv: self.base_conv + other.base_conv,
            automorph: self.automorph + other.automorph,
            bytes: self.bytes + other.bytes,
            rotations: self.rotations + other.rotations,
            ct_mults: self.ct_mults + other.ct_mults,
            pt_mults: self.pt_mults + other.pt_mults,
            hint_regen: self.hint_regen + other.hint_regen,
        }
    }

    /// True when every counter is zero (always the case with `trace` off).
    pub fn is_zero(&self) -> bool {
        *self == OpSnapshot::default()
    }

    /// Total NTT passes in either direction (`ntt + intt`) — the unit the
    /// `cl_isa::cost` formulas call "ntt".
    pub fn ntt_total(&self) -> u64 {
        self.ntt + self.intt
    }

    /// The snapshot as a JSON object string (stable key order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"ntt\": {}, \"intt\": {}, \"mult\": {}, \"add\": {}, \
             \"base_conv\": {}, \"automorph\": {}, \"bytes\": {}, \
             \"rotations\": {}, \"ct_mults\": {}, \"pt_mults\": {}, \
             \"hint_regen\": {}}}",
            self.ntt,
            self.intt,
            self.mult,
            self.add,
            self.base_conv,
            self.automorph,
            self.bytes,
            self.rotations,
            self.ct_mults,
            self.pt_mults,
            self.hint_regen
        )
    }

    /// Captures the current global counter values (all zero with `trace`
    /// disabled).
    pub fn capture() -> OpSnapshot {
        imp::capture()
    }
}

/// True when the crate was compiled with the `trace` feature.
pub const fn enabled() -> bool {
    cfg!(feature = "trace")
}

/// Accumulated serving-layer durability counters, captured with
/// [`ServingSnapshot::capture`]. These count orchestration events (journal
/// records, watchdog verdicts, breaker transitions), not compute passes —
/// they live apart from [`OpSnapshot`] so the exact op-count
/// cross-validation gates in `bench.sh --check` are untouched by how much
/// journaling a run happened to do.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServingSnapshot {
    /// Write-ahead journal records appended.
    pub journal_appends: u64,
    /// Bytes of journal records appended (framing included).
    pub journal_bytes: u64,
    /// Journal records accepted during replay.
    pub journal_replayed: u64,
    /// Corrupt/torn journal bytes or records skipped during replay.
    pub journal_skipped: u64,
    /// Runs the watchdog marked stalled (each counted once).
    pub watchdog_stalls: u64,
    /// Tenant circuit breakers tripped open.
    pub breaker_trips: u64,
    /// Submissions rejected at admission by an open breaker.
    pub breaker_rejections: u64,
}

impl ServingSnapshot {
    /// Field-wise difference `self - earlier` (saturating).
    #[must_use]
    pub fn delta_since(&self, earlier: &ServingSnapshot) -> ServingSnapshot {
        ServingSnapshot {
            journal_appends: self.journal_appends.saturating_sub(earlier.journal_appends),
            journal_bytes: self.journal_bytes.saturating_sub(earlier.journal_bytes),
            journal_replayed: self.journal_replayed.saturating_sub(earlier.journal_replayed),
            journal_skipped: self.journal_skipped.saturating_sub(earlier.journal_skipped),
            watchdog_stalls: self.watchdog_stalls.saturating_sub(earlier.watchdog_stalls),
            breaker_trips: self.breaker_trips.saturating_sub(earlier.breaker_trips),
            breaker_rejections: self
                .breaker_rejections
                .saturating_sub(earlier.breaker_rejections),
        }
    }

    /// True when every counter is zero (always the case with `trace` off).
    pub fn is_zero(&self) -> bool {
        *self == ServingSnapshot::default()
    }

    /// The snapshot as a JSON object string (stable key order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"journal_appends\": {}, \"journal_bytes\": {}, \
             \"journal_replayed\": {}, \"journal_skipped\": {}, \
             \"watchdog_stalls\": {}, \"breaker_trips\": {}, \
             \"breaker_rejections\": {}}}",
            self.journal_appends,
            self.journal_bytes,
            self.journal_replayed,
            self.journal_skipped,
            self.watchdog_stalls,
            self.breaker_trips,
            self.breaker_rejections
        )
    }

    /// Captures the current global serving counters (all zero with `trace`
    /// disabled).
    pub fn capture() -> ServingSnapshot {
        imp::capture_serving()
    }
}

/// Records one write-ahead journal append of `bytes` bytes.
#[inline(always)]
pub fn record_journal_append(bytes: u64) {
    imp::record_journal_append(bytes);
}

/// Records journal replay results: `accepted` records replayed and
/// `skipped` corrupt/torn records (or resync gaps) rejected.
#[inline(always)]
pub fn record_journal_replay(accepted: u64, skipped: u64) {
    imp::record_journal_replay(accepted, skipped);
}

/// Records one watchdog stall verdict.
#[inline(always)]
pub fn record_watchdog_stall() {
    imp::record_watchdog_stall();
}

/// Records one tenant circuit breaker tripping open.
#[inline(always)]
pub fn record_breaker_trip() {
    imp::record_breaker_trip();
}

/// Records one submission rejected at admission by an open breaker.
#[inline(always)]
pub fn record_breaker_rejection() {
    imp::record_breaker_rejection();
}

/// Thread-safe accumulation of [`OpSnapshot`] deltas into named buckets.
///
/// The global counters attribute work to the *process*; a serving layer
/// needs to attribute it to a *tenant* (or job class, or worker). A ledger
/// is the bridge: capture a snapshot around a unit of work, then
/// [`SnapshotLedger::add`] the delta under the owner's label. Buckets are
/// created on first use and only ever grow, so totals are monotone and safe
/// to read concurrently with writers.
///
/// With the `trace` feature disabled every delta is zero, so the ledger
/// stays structurally valid (labels appear, counts are zero) at no cost.
#[derive(Debug, Default)]
pub struct SnapshotLedger {
    buckets: std::sync::Mutex<std::collections::BTreeMap<String, OpSnapshot>>,
}

impl SnapshotLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, std::collections::BTreeMap<String, OpSnapshot>> {
        self.buckets
            .lock()
            .expect("ledger poisoned: a holder panicked mid-update")
    }

    /// Accumulates `delta` into the bucket named `label` (created on first
    /// use).
    pub fn add(&self, label: &str, delta: &OpSnapshot) {
        let mut buckets = self.lock();
        match buckets.get_mut(label) {
            Some(acc) => *acc = acc.plus(delta),
            None => {
                buckets.insert(label.to_string(), *delta);
            }
        }
    }

    /// The accumulated snapshot for `label` (zeros for an unknown label).
    pub fn get(&self, label: &str) -> OpSnapshot {
        self.lock().get(label).copied().unwrap_or_default()
    }

    /// All labels with a bucket, in sorted order.
    pub fn labels(&self) -> Vec<String> {
        self.lock().keys().cloned().collect()
    }

    /// Field-wise sum across every bucket.
    pub fn total(&self) -> OpSnapshot {
        self.lock()
            .values()
            .fold(OpSnapshot::default(), |acc, s| acc.plus(s))
    }

    /// The ledger as a JSON object string: `{label: snapshot, ...}` in
    /// sorted label order.
    pub fn to_json(&self) -> String {
        let buckets = self.lock();
        let entries: Vec<String> = buckets
            .iter()
            .map(|(label, snap)| format!("\"{}\": {}", label.replace('"', "'"), snap.to_json()))
            .collect();
        format!("{{{}}}", entries.join(", "))
    }
}

/// Records `passes` forward-NTT passes over `n`-coefficient polynomials.
#[inline(always)]
pub fn record_ntt(passes: u64, n: usize) {
    imp::record_ntt(passes, n);
}

/// Records `passes` inverse-NTT passes over `n`-coefficient polynomials.
#[inline(always)]
pub fn record_intt(passes: u64, n: usize) {
    imp::record_intt(passes, n);
}

/// Records `passes` element-wise multiplication passes.
#[inline(always)]
pub fn record_mult(passes: u64, n: usize) {
    imp::record_mult(passes, n);
}

/// Records `passes` element-wise addition/subtraction passes.
#[inline(always)]
pub fn record_add(passes: u64, n: usize) {
    imp::record_add(passes, n);
}

/// Records `passes` base-conversion limb conversions (source limb →
/// destination limb multiply-accumulate passes).
#[inline(always)]
pub fn record_base_conv(passes: u64, n: usize) {
    imp::record_base_conv(passes, n);
}

/// Records `passes` automorphism applications.
#[inline(always)]
pub fn record_automorph(passes: u64, n: usize) {
    imp::record_automorph(passes, n);
}

/// Records one homomorphic rotation or conjugation.
#[inline(always)]
pub fn record_rotation() {
    imp::record_rotation();
}

/// Records one homomorphic ciphertext-ciphertext multiplication.
#[inline(always)]
pub fn record_ct_mult() {
    imp::record_ct_mult();
}

/// Records one homomorphic plaintext multiplication.
#[inline(always)]
pub fn record_pt_mult() {
    imp::record_pt_mult();
}

/// Records `passes` seeded hint-regeneration passes (one per residue
/// polynomial re-expanded from its seed). Deliberately does not contribute
/// to `bytes`: regen is accounted as key-management work, not compute.
#[inline(always)]
pub fn record_hint_regen(passes: u64) {
    imp::record_hint_regen(passes);
}

/// Opens a named span: wall time and counter deltas accumulate into the
/// span registry until the returned guard drops. With `trace` disabled the
/// guard is a zero-sized no-op.
///
/// Spans with the same name aggregate (invocation count, total ns, summed
/// op deltas). Nested spans each see the full counter deltas of their
/// scope, so an outer `bootstrap` span includes the work of inner
/// `keyswitch` spans.
#[must_use = "the span records on drop; binding it to `_` ends it immediately"]
#[inline(always)]
pub fn span(name: &'static str) -> SpanGuard {
    imp::span(name)
}

/// Resets all global counters and clears the span registry. Intended for
/// test and benchmark harnesses that measure deltas from a clean slate.
pub fn reset() {
    imp::reset();
}

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of completed invocations.
    pub count: u64,
    /// Total wall time across invocations, in nanoseconds.
    pub total_ns: u64,
    /// Summed counter deltas across invocations.
    pub ops: OpSnapshot,
}

/// The current span registry as `(name, stats)` pairs, sorted by name.
pub fn span_stats() -> Vec<(&'static str, SpanStats)> {
    imp::span_stats()
}

/// The full profile — global counters plus the span registry — as a JSON
/// document:
///
/// ```json
/// {
///   "enabled": true,
///   "totals": {"ntt": 0, "intt": 0, ...},
///   "serving": {"journal_appends": 0, ...},
///   "spans": {"keyswitch": {"count": 1, "total_ns": 12345, "ops": {...}}}
/// }
/// ```
pub fn profile_json() -> String {
    let totals = OpSnapshot::capture();
    let mut out = String::with_capacity(256);
    out.push_str("{\n  \"enabled\": ");
    out.push_str(if enabled() { "true" } else { "false" });
    out.push_str(",\n  \"totals\": ");
    out.push_str(&totals.to_json());
    out.push_str(",\n  \"serving\": ");
    out.push_str(&ServingSnapshot::capture().to_json());
    out.push_str(",\n  \"spans\": {");
    let spans = span_stats();
    for (i, (name, s)) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    \"{name}\": {{\"count\": {}, \"total_ns\": {}, \"ops\": {}}}",
            s.count,
            s.total_ns,
            s.ops.to_json()
        ));
    }
    if !spans.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("}\n}");
    out
}

pub use imp::SpanGuard;

#[cfg(feature = "trace")]
mod imp {
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    use crate::{OpSnapshot, SpanStats};

    static NTT: AtomicU64 = AtomicU64::new(0);
    static INTT: AtomicU64 = AtomicU64::new(0);
    static MULT: AtomicU64 = AtomicU64::new(0);
    static ADD: AtomicU64 = AtomicU64::new(0);
    static BASE_CONV: AtomicU64 = AtomicU64::new(0);
    static AUTOMORPH: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);
    static ROTATIONS: AtomicU64 = AtomicU64::new(0);
    static CT_MULTS: AtomicU64 = AtomicU64::new(0);
    static PT_MULTS: AtomicU64 = AtomicU64::new(0);
    static HINT_REGEN: AtomicU64 = AtomicU64::new(0);

    // Serving-layer durability counters (journal/watchdog/breaker) — kept
    // apart from the compute counters above so op-count gates stay exact.
    static JOURNAL_APPENDS: AtomicU64 = AtomicU64::new(0);
    static JOURNAL_BYTES: AtomicU64 = AtomicU64::new(0);
    static JOURNAL_REPLAYED: AtomicU64 = AtomicU64::new(0);
    static JOURNAL_SKIPPED: AtomicU64 = AtomicU64::new(0);
    static WATCHDOG_STALLS: AtomicU64 = AtomicU64::new(0);
    static BREAKER_TRIPS: AtomicU64 = AtomicU64::new(0);
    static BREAKER_REJECTIONS: AtomicU64 = AtomicU64::new(0);

    type Registry = Mutex<BTreeMap<&'static str, SpanStats>>;

    fn registry() -> &'static Registry {
        static REGISTRY: OnceLock<Registry> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
    }

    #[inline(always)]
    fn bump(counter: &AtomicU64, passes: u64, n: usize) {
        counter.fetch_add(passes, Ordering::Relaxed);
        BYTES.fetch_add(passes * 8 * n as u64, Ordering::Relaxed);
    }

    #[inline(always)]
    pub fn record_ntt(passes: u64, n: usize) {
        bump(&NTT, passes, n);
    }

    #[inline(always)]
    pub fn record_intt(passes: u64, n: usize) {
        bump(&INTT, passes, n);
    }

    #[inline(always)]
    pub fn record_mult(passes: u64, n: usize) {
        bump(&MULT, passes, n);
    }

    #[inline(always)]
    pub fn record_add(passes: u64, n: usize) {
        bump(&ADD, passes, n);
    }

    #[inline(always)]
    pub fn record_base_conv(passes: u64, n: usize) {
        bump(&BASE_CONV, passes, n);
    }

    #[inline(always)]
    pub fn record_automorph(passes: u64, n: usize) {
        bump(&AUTOMORPH, passes, n);
    }

    #[inline(always)]
    pub fn record_rotation() {
        ROTATIONS.fetch_add(1, Ordering::Relaxed);
    }

    #[inline(always)]
    pub fn record_ct_mult() {
        CT_MULTS.fetch_add(1, Ordering::Relaxed);
    }

    #[inline(always)]
    pub fn record_pt_mult() {
        PT_MULTS.fetch_add(1, Ordering::Relaxed);
    }

    #[inline(always)]
    pub fn record_hint_regen(passes: u64) {
        // No BYTES contribution: regen is key-management work, and the
        // compute byte counter feeds exact cross-validation gates.
        HINT_REGEN.fetch_add(passes, Ordering::Relaxed);
    }

    #[inline(always)]
    pub fn record_journal_append(bytes: u64) {
        JOURNAL_APPENDS.fetch_add(1, Ordering::Relaxed);
        JOURNAL_BYTES.fetch_add(bytes, Ordering::Relaxed);
    }

    #[inline(always)]
    pub fn record_journal_replay(accepted: u64, skipped: u64) {
        JOURNAL_REPLAYED.fetch_add(accepted, Ordering::Relaxed);
        JOURNAL_SKIPPED.fetch_add(skipped, Ordering::Relaxed);
    }

    #[inline(always)]
    pub fn record_watchdog_stall() {
        WATCHDOG_STALLS.fetch_add(1, Ordering::Relaxed);
    }

    #[inline(always)]
    pub fn record_breaker_trip() {
        BREAKER_TRIPS.fetch_add(1, Ordering::Relaxed);
    }

    #[inline(always)]
    pub fn record_breaker_rejection() {
        BREAKER_REJECTIONS.fetch_add(1, Ordering::Relaxed);
    }

    pub fn capture_serving() -> crate::ServingSnapshot {
        crate::ServingSnapshot {
            journal_appends: JOURNAL_APPENDS.load(Ordering::Relaxed),
            journal_bytes: JOURNAL_BYTES.load(Ordering::Relaxed),
            journal_replayed: JOURNAL_REPLAYED.load(Ordering::Relaxed),
            journal_skipped: JOURNAL_SKIPPED.load(Ordering::Relaxed),
            watchdog_stalls: WATCHDOG_STALLS.load(Ordering::Relaxed),
            breaker_trips: BREAKER_TRIPS.load(Ordering::Relaxed),
            breaker_rejections: BREAKER_REJECTIONS.load(Ordering::Relaxed),
        }
    }

    pub fn capture() -> OpSnapshot {
        OpSnapshot {
            ntt: NTT.load(Ordering::Relaxed),
            intt: INTT.load(Ordering::Relaxed),
            mult: MULT.load(Ordering::Relaxed),
            add: ADD.load(Ordering::Relaxed),
            base_conv: BASE_CONV.load(Ordering::Relaxed),
            automorph: AUTOMORPH.load(Ordering::Relaxed),
            bytes: BYTES.load(Ordering::Relaxed),
            rotations: ROTATIONS.load(Ordering::Relaxed),
            ct_mults: CT_MULTS.load(Ordering::Relaxed),
            pt_mults: PT_MULTS.load(Ordering::Relaxed),
            hint_regen: HINT_REGEN.load(Ordering::Relaxed),
        }
    }

    pub fn reset() {
        for c in [
            &NTT, &INTT, &MULT, &ADD, &BASE_CONV, &AUTOMORPH, &BYTES, &ROTATIONS, &CT_MULTS,
            &PT_MULTS, &HINT_REGEN, &JOURNAL_APPENDS, &JOURNAL_BYTES, &JOURNAL_REPLAYED,
            &JOURNAL_SKIPPED, &WATCHDOG_STALLS, &BREAKER_TRIPS, &BREAKER_REJECTIONS,
        ] {
            c.store(0, Ordering::Relaxed);
        }
        registry()
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clear();
    }

    pub fn span_stats() -> Vec<(&'static str, SpanStats)> {
        registry()
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// Live span: records elapsed wall time and counter deltas into the
    /// registry when dropped.
    pub struct SpanGuard {
        name: &'static str,
        start: Instant,
        at_open: OpSnapshot,
    }

    pub fn span(name: &'static str) -> SpanGuard {
        SpanGuard {
            name,
            start: Instant::now(),
            at_open: capture(),
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let elapsed = self.start.elapsed().as_nanos() as u64;
            let delta = capture().delta_since(&self.at_open);
            let mut reg = registry()
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            let s = reg.entry(self.name).or_default();
            s.count += 1;
            s.total_ns += elapsed;
            s.ops = s.ops.plus(&delta);
        }
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    use crate::{OpSnapshot, SpanStats};

    #[inline(always)]
    pub fn record_ntt(_passes: u64, _n: usize) {}
    #[inline(always)]
    pub fn record_intt(_passes: u64, _n: usize) {}
    #[inline(always)]
    pub fn record_mult(_passes: u64, _n: usize) {}
    #[inline(always)]
    pub fn record_add(_passes: u64, _n: usize) {}
    #[inline(always)]
    pub fn record_base_conv(_passes: u64, _n: usize) {}
    #[inline(always)]
    pub fn record_automorph(_passes: u64, _n: usize) {}
    #[inline(always)]
    pub fn record_rotation() {}
    #[inline(always)]
    pub fn record_ct_mult() {}
    #[inline(always)]
    pub fn record_pt_mult() {}
    #[inline(always)]
    pub fn record_hint_regen(_passes: u64) {}
    #[inline(always)]
    pub fn record_journal_append(_bytes: u64) {}
    #[inline(always)]
    pub fn record_journal_replay(_accepted: u64, _skipped: u64) {}
    #[inline(always)]
    pub fn record_watchdog_stall() {}
    #[inline(always)]
    pub fn record_breaker_trip() {}
    #[inline(always)]
    pub fn record_breaker_rejection() {}

    #[inline(always)]
    pub fn capture() -> OpSnapshot {
        OpSnapshot::default()
    }

    #[inline(always)]
    pub fn capture_serving() -> crate::ServingSnapshot {
        crate::ServingSnapshot::default()
    }

    #[inline(always)]
    pub fn reset() {}

    #[inline(always)]
    pub fn span_stats() -> Vec<(&'static str, SpanStats)> {
        Vec::new()
    }

    /// Disabled span: a zero-sized type whose construction and drop compile
    /// to nothing.
    pub struct SpanGuard;

    #[inline(always)]
    pub fn span(_name: &'static str) -> SpanGuard {
        SpanGuard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enabled- and disabled-path tests are mutually exclusive on the
    // `trace` feature; `scripts/verify.sh` runs this crate's tests both
    // ways (`cargo test -p cl-trace` and the workspace test run, which
    // enables `trace` through the root crate's dev-dependencies).

    #[test]
    fn ledger_accumulates_per_label() {
        let ledger = SnapshotLedger::new();
        let a = OpSnapshot {
            ntt: 3,
            mult: 2,
            ..OpSnapshot::default()
        };
        let b = OpSnapshot {
            ntt: 1,
            add: 5,
            ..OpSnapshot::default()
        };
        ledger.add("tenant-a", &a);
        ledger.add("tenant-a", &b);
        ledger.add("tenant-b", &b);
        assert_eq!(ledger.get("tenant-a").ntt, 4);
        assert_eq!(ledger.get("tenant-a").mult, 2);
        assert_eq!(ledger.get("tenant-a").add, 5);
        assert_eq!(ledger.get("tenant-b").ntt, 1);
        assert!(ledger.get("tenant-c").is_zero());
        assert_eq!(ledger.labels(), vec!["tenant-a", "tenant-b"]);
        assert_eq!(ledger.total().ntt, 5);
        let json = ledger.to_json();
        assert!(json.contains("\"tenant-a\""), "{json}");
        assert!(json.contains("\"tenant-b\""), "{json}");
    }

    #[test]
    fn ledger_is_shareable_across_threads() {
        let ledger = std::sync::Arc::new(SnapshotLedger::new());
        let one = OpSnapshot {
            mult: 1,
            ..OpSnapshot::default()
        };
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let l = ledger.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        l.add(if i % 2 == 0 { "even" } else { "odd" }, &one);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("ledger writer panicked");
        }
        assert_eq!(ledger.get("even").mult, 200);
        assert_eq!(ledger.get("odd").mult, 200);
        assert_eq!(ledger.total().mult, 400);
    }

    #[cfg(not(feature = "trace"))]
    mod disabled {
        use super::super::*;

        #[test]
        fn recording_is_a_no_op() {
            record_ntt(10, 64);
            record_mult(10, 64);
            record_rotation();
            assert!(OpSnapshot::capture().is_zero());
            assert!(!enabled());
        }

        #[test]
        fn span_guard_is_zero_sized_and_records_nothing() {
            assert_eq!(std::mem::size_of::<SpanGuard>(), 0);
            {
                let _g = span("keyswitch");
                record_add(5, 32);
            }
            assert!(span_stats().is_empty());
        }

        #[test]
        fn profile_json_reports_disabled() {
            let json = profile_json();
            assert!(json.contains("\"enabled\": false"), "{json}");
        }

        #[test]
        fn serving_counters_are_no_ops() {
            record_journal_append(128);
            record_journal_replay(3, 1);
            record_watchdog_stall();
            record_breaker_trip();
            record_breaker_rejection();
            assert!(ServingSnapshot::capture().is_zero());
        }
    }

    #[cfg(feature = "trace")]
    mod enabled {
        use super::super::*;
        use std::sync::Mutex;

        // Counter tests share the process-global counters; serialize them.
        static LOCK: Mutex<()> = Mutex::new(());

        fn locked() -> std::sync::MutexGuard<'static, ()> {
            LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
        }

        #[test]
        fn counters_accumulate_and_delta() {
            let _l = locked();
            let before = OpSnapshot::capture();
            record_ntt(3, 16);
            record_intt(1, 16);
            record_mult(5, 16);
            record_add(2, 16);
            record_base_conv(7, 16);
            record_automorph(4, 16);
            record_rotation();
            record_ct_mult();
            record_pt_mult();
            record_hint_regen(6);
            let d = OpSnapshot::capture().delta_since(&before);
            assert_eq!(
                (d.ntt, d.intt, d.mult, d.add, d.base_conv, d.automorph),
                (3, 1, 5, 2, 7, 4)
            );
            assert_eq!((d.rotations, d.ct_mults, d.pt_mults), (1, 1, 1));
            assert_eq!(d.hint_regen, 6);
            // Regen passes must not leak into the compute byte counter.
            assert_eq!(d.bytes, (3 + 1 + 5 + 2 + 7 + 4) * 8 * 16);
            assert_eq!(d.ntt_total(), 4);
            assert!(enabled());
        }

        #[test]
        fn spans_aggregate_counts_time_and_ops() {
            let _l = locked();
            for _ in 0..2 {
                let _g = span("test_span_agg");
                record_mult(3, 8);
            }
            let stats = span_stats();
            let (_, s) = stats
                .iter()
                .find(|(n, _)| *n == "test_span_agg")
                .expect("span recorded");
            assert_eq!(s.count, 2);
            assert_eq!(s.ops.mult, 6);
        }

        #[test]
        fn profile_json_contains_totals_and_spans() {
            let _l = locked();
            {
                let _g = span("test_span_json");
                record_ntt(1, 8);
            }
            let json = profile_json();
            assert!(json.contains("\"enabled\": true"), "{json}");
            assert!(json.contains("\"test_span_json\""), "{json}");
            assert!(json.contains("\"totals\""), "{json}");
            assert!(json.contains("\"serving\""), "{json}");
        }

        #[test]
        fn serving_counters_accumulate_without_touching_op_counts() {
            let _l = locked();
            let ops_before = OpSnapshot::capture();
            let before = ServingSnapshot::capture();
            record_journal_append(100);
            record_journal_append(28);
            record_journal_replay(5, 2);
            record_watchdog_stall();
            record_breaker_trip();
            record_breaker_rejection();
            record_breaker_rejection();
            let d = ServingSnapshot::capture().delta_since(&before);
            assert_eq!(d.journal_appends, 2);
            assert_eq!(d.journal_bytes, 128);
            assert_eq!((d.journal_replayed, d.journal_skipped), (5, 2));
            assert_eq!(d.watchdog_stalls, 1);
            assert_eq!((d.breaker_trips, d.breaker_rejections), (1, 2));
            // Orchestration events must never leak into the compute
            // counters the op-count gates cross-validate.
            assert!(OpSnapshot::capture().delta_since(&ops_before).is_zero());
        }
    }
}
