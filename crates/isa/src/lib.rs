//! The CraterLake "instruction set": HE dataflow IR, machine-operation
//! vocabulary, and the paper's analytic cost formulas.
//!
//! This crate is the contract between the workload side (benchmark graph
//! generators, the bootstrapping plan) and the hardware side (the compiler
//! and the machine model):
//!
//! - [`HeGraph`] — a static dataflow graph of homomorphic operations, the
//!   form FHE programs take (Sec. 2.1: no data-dependent control flow, so
//!   programs are graphs known ahead of time).
//! - [`MacroOp`] / [`FuKind`] — the resource-profile vocabulary the compiler
//!   lowers into and the machine executes.
//! - [`cost`] — closed-form operation counts and footprints for standard
//!   vs. boosted keyswitching (Table 1, Fig. 4) and object sizes.

#![warn(missing_docs)]

pub mod cost;
mod graph;
mod ops;

pub use graph::{HeGraph, HeNode, HeOp, NodeId, Phase};
pub use ops::{FuKind, KsAlgorithm, MacroOp, OpLabel, TrafficClass, ValueId};
