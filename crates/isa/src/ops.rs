//! Machine-operation vocabulary shared by the compiler and the machine
//! model.

/// The functional-unit classes of the accelerator (Sec. 4.1, Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FuKind {
    /// Modular multiplier (element-wise).
    Mul,
    /// Modular adder (element-wise).
    Add,
    /// Number-theoretic transform unit.
    Ntt,
    /// Automorphism unit.
    Automorphism,
    /// Change-RNS-base unit (Sec. 5.1) — CraterLake's largest FU.
    Crb,
    /// Keyswitch-hint generator (Sec. 5.2).
    KshGen,
}

impl FuKind {
    /// All FU kinds, in display order.
    pub const ALL: [FuKind; 6] = [
        FuKind::Mul,
        FuKind::Add,
        FuKind::Ntt,
        FuKind::Automorphism,
        FuKind::Crb,
        FuKind::KshGen,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            FuKind::Mul => "mul",
            FuKind::Add => "add",
            FuKind::Ntt => "ntt",
            FuKind::Automorphism => "aut",
            FuKind::Crb => "crb",
            FuKind::KshGen => "kshgen",
        }
    }
}

/// Which keyswitching algorithm an operation uses (the compiler chooses per
/// level, Sec. 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KsAlgorithm {
    /// Standard RNS keyswitching (per-limb digits).
    Standard,
    /// Boosted keyswitching with the given digit count.
    Boosted(usize),
}

/// Classification of off-chip traffic, matching Fig. 10a's breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Keyswitch hints.
    Ksh,
    /// Program inputs (fresh ciphertexts, plaintext weights).
    Input,
    /// Intermediate values reloaded after eviction.
    IntermLoad,
    /// Intermediate values written back on eviction.
    IntermStore,
}

/// Identifier of a value (ciphertext polynomial pair, plaintext, or hint)
/// tracked by the machine's register-file residency model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u64);

/// Attribution label for statistics (which benchmark phase an op belongs
/// to).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpLabel {
    /// Application (useful) computation.
    App,
    /// Bootstrapping computation.
    Bootstrap,
}

/// A macro-operation: the resource profile of one polynomial-level
/// operation (or one fused keyswitch pipeline, Sec. 5.4).
///
/// Work is expressed in *residue-polynomial passes*: one pass streams `N`
/// elements through an FU at `E` lanes, taking `N/E` issue cycles. The
/// machine turns passes into cycles using its FU counts, and register-file /
/// network word counts into cycles using its bandwidths; the op's duration
/// is set by its bottleneck resource.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MacroOp {
    /// Residue-polynomial passes required per FU kind.
    pub fu_passes: Vec<(FuKind, u64)>,
    /// Words moved through the register file (reads + writes). Vector
    /// chaining reduces this without changing `fu_passes`.
    pub rf_words: u64,
    /// Words crossing the inter-lane-group network (transposes for
    /// NTT/automorphism on CraterLake; residue-polynomial redistribution on
    /// cluster architectures like F1+).
    pub net_words: u64,
    /// Extra scalar multiplies not captured by `fu_passes` granularity
    /// (used for energy accounting of CRB internals).
    pub scalar_muls: u64,
}

impl MacroOp {
    /// A no-resource op (useful as a starting point for builders).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `passes` residue-polynomial passes on `fu`.
    pub fn with_fu(mut self, fu: FuKind, passes: u64) -> Self {
        if passes > 0 {
            if let Some(e) = self.fu_passes.iter_mut().find(|(k, _)| *k == fu) {
                e.1 += passes;
            } else {
                self.fu_passes.push((fu, passes));
            }
        }
        self
    }

    /// Adds register-file traffic in words.
    pub fn with_rf_words(mut self, words: u64) -> Self {
        self.rf_words += words;
        self
    }

    /// Adds inter-group network traffic in words.
    pub fn with_net_words(mut self, words: u64) -> Self {
        self.net_words += words;
        self
    }

    /// Adds scalar-multiply energy accounting.
    pub fn with_scalar_muls(mut self, muls: u64) -> Self {
        self.scalar_muls += muls;
        self
    }

    /// Passes on a given FU kind.
    pub fn passes(&self, fu: FuKind) -> u64 {
        self.fu_passes
            .iter()
            .find(|(k, _)| *k == fu)
            .map(|(_, p)| *p)
            .unwrap_or(0)
    }

    /// Merges another op's resource profile into this one (for fused
    /// pipelines).
    pub fn merge(&mut self, other: &MacroOp) {
        for &(fu, p) in &other.fu_passes {
            if let Some(e) = self.fu_passes.iter_mut().find(|(k, _)| *k == fu) {
                e.1 += p;
            } else {
                self.fu_passes.push((fu, p));
            }
        }
        self.rf_words += other.rf_words;
        self.net_words += other.net_words;
        self.scalar_muls += other.scalar_muls;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let op = MacroOp::new()
            .with_fu(FuKind::Ntt, 4)
            .with_fu(FuKind::Ntt, 2)
            .with_fu(FuKind::Mul, 1)
            .with_rf_words(100)
            .with_net_words(50);
        assert_eq!(op.passes(FuKind::Ntt), 6);
        assert_eq!(op.passes(FuKind::Mul), 1);
        assert_eq!(op.passes(FuKind::Crb), 0);
        assert_eq!(op.rf_words, 100);
        assert_eq!(op.net_words, 50);
    }

    #[test]
    fn merge_sums_profiles() {
        let mut a = MacroOp::new().with_fu(FuKind::Add, 3).with_rf_words(10);
        let b = MacroOp::new()
            .with_fu(FuKind::Add, 2)
            .with_fu(FuKind::Crb, 5)
            .with_net_words(7);
        a.merge(&b);
        assert_eq!(a.passes(FuKind::Add), 5);
        assert_eq!(a.passes(FuKind::Crb), 5);
        assert_eq!(a.rf_words, 10);
        assert_eq!(a.net_words, 7);
    }

    #[test]
    fn zero_passes_not_recorded() {
        let op = MacroOp::new().with_fu(FuKind::Mul, 0);
        assert!(op.fu_passes.is_empty());
    }
}
