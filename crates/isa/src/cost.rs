//! Closed-form cost and footprint formulas (Table 1, Fig. 4, object sizes).
//!
//! Counts are at residue-polynomial granularity: a "mult" is one
//! element-wise multiplication of two `N`-element residue polynomials, an
//! "NTT" is one transform of a residue polynomial, and so on. Multiply by
//! `N` for scalar-operation counts.

/// Operation counts for one keyswitch (both output polynomials).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Element-wise residue-polynomial multiplications.
    pub mult: u64,
    /// Element-wise residue-polynomial additions.
    pub add: u64,
    /// NTT / inverse-NTT passes.
    pub ntt: u64,
}

impl OpCounts {
    /// Scalar multiplications for ring degree `n` (NTTs cost
    /// `(n/2)·log2(n)` butterflies, one multiply each).
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two: negacyclic NTTs only exist for
    /// power-of-two ring degrees, and the butterfly count `(n/2)·log2(n)`
    /// is meaningless otherwise (`trailing_zeros` would silently
    /// undercount).
    pub fn scalar_muls(&self, n: usize) -> u64 {
        assert!(
            n.is_power_of_two(),
            "ring degree must be a power of two, got {n}"
        );
        let ntt_muls = (n as u64 / 2) * (n.trailing_zeros() as u64);
        self.mult * n as u64 + self.ntt * ntt_muls
    }
}

/// Operation counts for boosted keyswitching with `digits` digits at
/// multiplicative budget `l` (Table 1 for `digits = 1`; Sec. 3.1 for the
/// generalization).
///
/// `alpha = ceil(l / digits)` special limbs are used. For `digits = 1` this
/// reduces exactly to Table 1: `mult = 3L^2 + 4L`, `add = 3L^2 + 2L`,
/// `ntt = 6L`.
pub fn boosted_keyswitch_ops(l: usize, digits: usize) -> OpCounts {
    assert!(l >= 1 && digits >= 1);
    let l = l as u64;
    let t = digits as u64;
    let alpha = l.div_ceil(t);
    // changeRNSBase work: ModUp converts each digit (alpha limbs) to the
    // rest of the target basis (~L limbs): L*L total across digits; ModDown
    // converts the P part (alpha limbs) to Q (L limbs) for both output
    // polynomials: 2*alpha*L.
    let crb_mult = l * l + 2 * alpha * l;
    let crb_add = crb_mult;
    // Work outside changeRNSBase: hint products (2 output polys x t digits x
    // (L + alpha) limbs); accumulation adds for digits beyond the first and
    // the final ModDown additions.
    let other_mult = 2 * t * (l + alpha);
    let other_add = 2 * (t - 1) * (l + alpha) + 2 * l;
    // NTTs: ModUp INTTs the L source limbs and NTTs the t*L extended limbs;
    // ModDown INTTs the 2*alpha P-part limbs and NTTs the 2*L results
    // (Listing 1 lines 2, 4, 7, 9).
    let ntt = l + t * l + 2 * alpha + 2 * l;
    OpCounts {
        mult: crb_mult + other_mult,
        add: crb_add + other_add,
        ntt,
    }
}

/// The portion of boosted-keyswitch multiplies that happen inside
/// `changeRNSBase` (Table 1 splits them out because the CRB unit absorbs
/// them).
pub fn boosted_keyswitch_crb_mult(l: usize, digits: usize) -> u64 {
    let l = l as u64;
    let alpha = l.div_ceil(digits as u64);
    l * l + 2 * alpha * l
}

/// Operation counts for standard keyswitching at budget `l` (Table 1):
/// `mult = 2L^2`, `add = 2L^2`, `ntt = L^2`.
pub fn standard_keyswitch_ops(l: usize) -> OpCounts {
    let l = l as u64;
    OpCounts {
        mult: 2 * l * l,
        add: 2 * l * l,
        ntt: l * l,
    }
}

/// Bytes of one ciphertext: 2 polynomials x `l` limbs x `n` coefficients at
/// `word_bits` per coefficient.
pub fn ciphertext_bytes(n: usize, l: usize, word_bits: u32) -> u64 {
    2 * l as u64 * n as u64 * word_bits as u64 / 8
}

/// Bytes of one keyswitch hint for boosted keyswitching with `digits`
/// digits at budget `l`: `digits` pairs of polynomials over `l + alpha`
/// limbs. With `seeded = true` (the KSHGen optimization) only half is
/// stored.
pub fn boosted_ksh_bytes(n: usize, l: usize, digits: usize, word_bits: u32, seeded: bool) -> u64 {
    let alpha = (l as u64).div_ceil(digits as u64);
    let polys = if seeded { 1 } else { 2 };
    digits as u64 * polys * (l as u64 + alpha) * n as u64 * word_bits as u64 / 8
}

/// Bytes of one standard keyswitch hint at budget `l`: `l` digit pairs over
/// `l + 1` limbs each.
pub fn standard_ksh_bytes(n: usize, l: usize, word_bits: u32, seeded: bool) -> u64 {
    let polys = if seeded { 1 } else { 2 };
    l as u64 * polys * (l as u64 + 1) * n as u64 * word_bits as u64 / 8
}

/// Fig. 4 (left): keyswitch-hint footprint in bytes as a function of `l`,
/// for the standard and 1-digit boosted algorithms (full hints, no
/// seeding).
pub fn fig4_footprint(n: usize, l: usize, word_bits: u32) -> (u64, u64) {
    (
        standard_ksh_bytes(n, l, word_bits, false),
        boosted_ksh_bytes(n, l, 1, word_bits, false),
    )
}

/// Fig. 4 (right): scalar 28-bit multiplies per keyswitch as a function of
/// `l`, for the standard and 1-digit boosted algorithms.
pub fn fig4_compute(n: usize, l: usize) -> (u64, u64) {
    (
        standard_keyswitch_ops(l).scalar_muls(n),
        boosted_keyswitch_ops(l, 1).scalar_muls(n),
    )
}

/// The crossover budget above which boosted keyswitching needs fewer scalar
/// multiplies than standard (the paper cites `L > 14`, Sec. 8).
pub fn boosted_crossover_level(n: usize) -> usize {
    (1..=128)
        .find(|&l| {
            boosted_keyswitch_ops(l, 1).scalar_muls(n) < standard_keyswitch_ops(l).scalar_muls(n)
        })
        .unwrap_or(128)
}

/// Residue-polynomial passes of auxiliary (non-keyswitch) work in one
/// homomorphic multiplication at budget `l`: the tensor products and the
/// rescale.
///
/// # Panics
///
/// Panics when `l = 0`: a multiplication needs at least one limb, and the
/// rescale term `2(l-1)` would otherwise underflow.
pub fn mul_aux_ops(l: usize) -> OpCounts {
    assert!(l >= 1, "multiplicative budget must be >= 1, got 0");
    let l = l as u64;
    OpCounts {
        // Tensor: 4 limb-wise products (d0, two cross terms, d2) plus the
        // final additions; rescale multiplies by q^{-1} per limb.
        mult: 4 * l + 2 * (l - 1),
        add: 3 * l + 2 * (l - 1),
        // Rescale needs the dropped limb in coefficient form and the
        // correction NTT'd back: 2 INTT + 2(L-1) NTT-equivalents.
        ntt: 2 + 2 * (l - 1),
    }
}

/// Words transferred between lane groups for one homomorphic multiplication
/// / rotation on CraterLake's fixed transpose network (Sec. 4.3): `8·N·L`
/// and `10·N·L` respectively.
pub fn craterlake_net_words_mul(n: usize, l: usize) -> u64 {
    8 * n as u64 * l as u64
}

/// See [`craterlake_net_words_mul`]; rotations move `10·N·L` words.
pub fn craterlake_net_words_rot(n: usize, l: usize) -> u64 {
    10 * n as u64 * l as u64
}

/// Words crossing the cluster interconnect per homomorphic operation on a
/// cluster architecture with `g` clusters (Sec. 4.3): `3·G·N·L`.
pub fn cluster_net_words(n: usize, l: usize, g: usize) -> u64 {
    3 * g as u64 * n as u64 * l as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_formulas_at_l60() {
        // Table 1's L=60 column.
        let b = boosted_keyswitch_ops(60, 1);
        assert_eq!(b.mult, 10_800 + 240);
        assert_eq!(b.add, 10_800 + 120);
        assert_eq!(b.ntt, 360);
        assert_eq!(boosted_keyswitch_crb_mult(60, 1), 10_800);
        let s = standard_keyswitch_ops(60);
        assert_eq!(s.mult, 7_200);
        assert_eq!(s.add, 7_200);
        assert_eq!(s.ntt, 3_600);
    }

    #[test]
    fn boosted_uses_10x_fewer_ntts_at_l60() {
        // Sec. 3: "a 10x reduction for L=60".
        let b = boosted_keyswitch_ops(60, 1).ntt;
        let s = standard_keyswitch_ops(60).ntt;
        assert_eq!(s / b, 10);
    }

    #[test]
    fn ksh_sizes_match_paper() {
        // Sec. 3: at N=64K, L=60, a boosted hint takes ~52.5 MB vs ~1.7 GB
        // standard.
        let n = 1 << 16;
        let boosted = boosted_ksh_bytes(n, 60, 1, 28, false) as f64 / (1024.0 * 1024.0);
        assert!((50.0..58.0).contains(&boosted), "boosted: {boosted} MB");
        let standard = standard_ksh_bytes(n, 60, 28, false) as f64 / (1024.0 * 1024.0 * 1024.0);
        assert!((1.5..1.8).contains(&standard), "standard: {standard} GB");
        // Seeding halves it (Sec. 5.2: 50 MB -> 25 MB).
        assert_eq!(
            boosted_ksh_bytes(n, 60, 1, 28, true) * 2,
            boosted_ksh_bytes(n, 60, 1, 28, false)
        );
    }

    #[test]
    fn ksh_grows_with_digits() {
        // Sec. 3.1: hints are t+1 ciphertexts for t digits.
        let n = 1 << 16;
        let l = 60;
        let ct = ciphertext_bytes(n, l, 28) as f64;
        for t in 1..=4usize {
            let ksh = boosted_ksh_bytes(n, l, t, 28, false) as f64;
            let expect = (t as f64) * (l as f64 + (l as f64 / t as f64).ceil()) / l as f64;
            assert!(
                (ksh / ct - expect).abs() < 0.05,
                "t={t}: {} vs {expect}",
                ksh / ct
            );
            assert!((ksh / ct - (t as f64 + 1.0)).abs() < 0.25);
        }
    }

    #[test]
    fn ciphertext_size_matches_paper() {
        // 25-27 MB ciphertexts at N=64K, L=60 (Sec. 1: "tens of MBs",
        // Sec. 6: 26 MB).
        let mb = ciphertext_bytes(1 << 16, 60, 28) as f64 / (1024.0 * 1024.0);
        assert!((25.0..28.0).contains(&mb), "{mb} MB");
        // F1's regime: 2 MB at N=16K, L=16.
        let f1 = ciphertext_bytes(1 << 14, 16, 32) as f64 / (1024.0 * 1024.0);
        assert!((1.8..2.2).contains(&f1), "{f1} MB");
    }

    #[test]
    fn crossover_near_l14() {
        // Sec. 8: "boosted keyswitching becomes more efficient for L > 14".
        let x = boosted_crossover_level(1 << 16);
        assert!((8..=20).contains(&x), "crossover at {x}");
    }

    #[test]
    fn fig4_shapes() {
        // Standard grows quadratically, boosted linearly in footprint; both
        // grow in compute but standard much faster at high L.
        let n = 1 << 16;
        let (s20, b20) = fig4_footprint(n, 20, 28);
        let (s60, b60) = fig4_footprint(n, 60, 28);
        assert!(s60 as f64 / s20 as f64 > 8.0, "standard footprint ~quadratic");
        assert!((b60 as f64 / b20 as f64) < 3.5, "boosted footprint ~linear");
        let (sc20, bc20) = fig4_compute(n, 20);
        let (sc60, bc60) = fig4_compute(n, 60);
        assert!(sc60 > bc60, "standard compute worse at L=60");
        // At small L they are comparable (Fig. 4: similar costs for small L).
        let ratio = sc20 as f64 / bc20 as f64;
        assert!((0.3..3.0).contains(&ratio));
        let _ = (s20, b20);
    }

    #[test]
    fn scalar_mul_accounting() {
        let c = OpCounts {
            mult: 2,
            add: 5,
            ntt: 1,
        };
        // n=16: 2*16 + 1*(8*4) = 64.
        assert_eq!(c.scalar_muls(16), 64);
    }

    #[test]
    fn mul_aux_is_defined_down_to_one_limb() {
        // l=1: tensor still runs; the rescale terms 2(l-1) vanish.
        let c = mul_aux_ops(1);
        assert_eq!(c.mult, 4);
        assert_eq!(c.add, 3);
        assert_eq!(c.ntt, 2);
    }

    #[test]
    #[should_panic(expected = "budget must be >= 1")]
    fn mul_aux_rejects_zero_limbs() {
        // Regression: l=0 used to underflow `l - 1` in release-mode wrapping
        // (and panic only in debug) instead of reporting the misuse.
        let _ = mul_aux_ops(0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn scalar_muls_rejects_non_power_of_two_degree() {
        // Regression: trailing_zeros(24) = 3 silently stood in for log2.
        let c = OpCounts {
            mult: 1,
            add: 1,
            ntt: 1,
        };
        let _ = c.scalar_muls(24);
    }

    #[test]
    fn higher_digit_variants_cost_more_outside_crb() {
        // Sec. 3.1: multiplications outside changeRNSBase grow ~(1+t).
        let l = 60;
        let base = boosted_keyswitch_ops(l, 1);
        let four = boosted_keyswitch_ops(l, 4);
        let outside1 = base.mult - boosted_keyswitch_crb_mult(l, 1);
        let outside4 = four.mult - boosted_keyswitch_crb_mult(l, 4);
        let growth = outside4 as f64 / outside1 as f64;
        assert!((2.0..3.0).contains(&growth), "growth {growth}");
        // But CRB work shrinks (smaller alpha).
        assert!(boosted_keyswitch_crb_mult(l, 4) < boosted_keyswitch_crb_mult(l, 1));
    }
}
