//! The homomorphic-operation dataflow graph.
//!
//! FHE permits no data-dependent branching (Sec. 2.1), so an FHE program is
//! a static dataflow graph of homomorphic operations. This is the form in
//! which benchmarks are generated (`cl-apps`) and handed to the compiler.

/// Index of a node within an [`HeGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Phase attribution for statistics: is a node useful application work or
/// part of a bootstrapping sequence? (Fig. 3's blue/red split.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Phase {
    /// Application computation.
    #[default]
    App,
    /// Bootstrapping computation.
    Bootstrap,
}

/// A homomorphic operation (Sec. 2.1-2.2). Operands are earlier nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum HeOp {
    /// A fresh encrypted input streamed from the host.
    Input,
    /// An unencrypted operand (e.g. unencrypted weights): a plaintext that
    /// is fetched from memory but is half the size of a ciphertext.
    PlainInput,
    /// Element-wise addition of two ciphertexts.
    Add(NodeId, NodeId),
    /// Element-wise subtraction.
    Sub(NodeId, NodeId),
    /// Ciphertext + plaintext.
    AddPlain(NodeId, NodeId),
    /// Ciphertext x plaintext (no keyswitch needed).
    MulPlain(NodeId, NodeId),
    /// Ciphertext x ciphertext (tensor + relinearization keyswitch).
    MulCt(NodeId, NodeId),
    /// Slot rotation by the given amount (automorphism + keyswitch).
    Rotate(NodeId, i64),
    /// Complex conjugation of the slots (automorphism + keyswitch).
    Conjugate(NodeId),
    /// Rescale: divide by the top modulus, dropping one level.
    Rescale(NodeId),
    /// Drop to the given level without dividing (modulus switch).
    ModDrop(NodeId, usize),
    /// Raise to the given level (the base extension that begins
    /// bootstrapping: reinterpret a low-level ciphertext over a larger
    /// modulus).
    ModRaise(NodeId, usize),
    /// Marks a value as a program output (streamed back to the host).
    Output(NodeId),
}

impl HeOp {
    /// Operand node ids of this op.
    pub fn operands(&self) -> Vec<NodeId> {
        match *self {
            HeOp::Input | HeOp::PlainInput => vec![],
            HeOp::Add(a, b) | HeOp::Sub(a, b) | HeOp::AddPlain(a, b) | HeOp::MulPlain(a, b)
            | HeOp::MulCt(a, b) => vec![a, b],
            HeOp::Rotate(a, _)
            | HeOp::Conjugate(a)
            | HeOp::Rescale(a)
            | HeOp::ModDrop(a, _)
            | HeOp::ModRaise(a, _)
            | HeOp::Output(a) => vec![a],
        }
    }

    /// Whether this op requires a keyswitch.
    pub fn needs_keyswitch(&self) -> bool {
        matches!(self, HeOp::MulCt(..) | HeOp::Rotate(..) | HeOp::Conjugate(..))
    }
}

/// A node: an operation plus the level it executes at and its phase tag.
#[derive(Debug, Clone, PartialEq)]
pub struct HeNode {
    /// The operation.
    pub op: HeOp,
    /// Multiplicative budget (RNS limb count) of this node's output.
    pub level: usize,
    /// Statistics attribution.
    pub phase: Phase,
}

/// A static dataflow graph of homomorphic operations, stored in topological
/// order (operands always precede users).
///
/// # Example
///
/// ```
/// use cl_isa::HeGraph;
/// let mut g = HeGraph::new();
/// let x = g.input(3);
/// let y = g.input(3);
/// let p = g.mul_ct(x, y);
/// let r = g.rescale(p);
/// g.output(r);
/// assert_eq!(g.num_nodes(), 5);
/// assert_eq!(g.node(r).level, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct HeGraph {
    nodes: Vec<HeNode>,
    phase: Phase,
    plain_cache: std::collections::HashMap<(u64, usize), NodeId>,
}

impl HeGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Access a node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &HeNode {
        &self.nodes[id.0 as usize]
    }

    /// Iterate over `(id, node)` in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &HeNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Sets the phase tag applied to subsequently added nodes.
    pub fn set_phase(&mut self, phase: Phase) {
        self.phase = phase;
    }

    fn push(&mut self, op: HeOp, level: usize) -> NodeId {
        assert!(level >= 1, "levels start at 1");
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(HeNode {
            op,
            level,
            phase: self.phase,
        });
        id
    }

    fn level_of(&self, id: NodeId) -> usize {
        self.node(id).level
    }

    fn check_same_level(&self, a: NodeId, b: NodeId) -> usize {
        let (la, lb) = (self.level_of(a), self.level_of(b));
        assert_eq!(la, lb, "operand level mismatch ({la} vs {lb}); insert mod_drop");
        la
    }

    /// Adds an encrypted input at the given level.
    pub fn input(&mut self, level: usize) -> NodeId {
        self.push(HeOp::Input, level)
    }

    /// Adds an unencrypted (plaintext) operand at the given level.
    pub fn plain_input(&mut self, level: usize) -> NodeId {
        self.push(HeOp::PlainInput, level)
    }

    /// Adds — or reuses — a plaintext operand identified by `key` at the
    /// given level. Weight matrices, bootstrapping DFT diagonals and
    /// polynomial coefficients are constants shared across uses; modeling
    /// them as one value per `(key, level)` lets the machine's residency
    /// model capture their reuse (a reused weight is fetched once, not per
    /// use).
    pub fn plain_input_cached(&mut self, key: u64, level: usize) -> NodeId {
        if let Some(&id) = self.plain_cache.get(&(key, level)) {
            return id;
        }
        let id = self.push(HeOp::PlainInput, level);
        self.plain_cache.insert((key, level), id);
        id
    }

    /// Adds two ciphertexts.
    ///
    /// # Panics
    ///
    /// Panics if operand levels differ.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let l = self.check_same_level(a, b);
        self.push(HeOp::Add(a, b), l)
    }

    /// Subtracts ciphertexts.
    ///
    /// # Panics
    ///
    /// Panics if operand levels differ.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let l = self.check_same_level(a, b);
        self.push(HeOp::Sub(a, b), l)
    }

    /// Ciphertext + plaintext.
    ///
    /// # Panics
    ///
    /// Panics if operand levels differ.
    pub fn add_plain(&mut self, a: NodeId, p: NodeId) -> NodeId {
        let l = self.check_same_level(a, p);
        self.push(HeOp::AddPlain(a, p), l)
    }

    /// Ciphertext x plaintext.
    ///
    /// # Panics
    ///
    /// Panics if operand levels differ.
    pub fn mul_plain(&mut self, a: NodeId, p: NodeId) -> NodeId {
        let l = self.check_same_level(a, p);
        self.push(HeOp::MulPlain(a, p), l)
    }

    /// Ciphertext x ciphertext (with relinearization).
    ///
    /// # Panics
    ///
    /// Panics if operand levels differ.
    pub fn mul_ct(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let l = self.check_same_level(a, b);
        self.push(HeOp::MulCt(a, b), l)
    }

    /// Rotates slots by `steps`.
    pub fn rotate(&mut self, a: NodeId, steps: i64) -> NodeId {
        let l = self.level_of(a);
        self.push(HeOp::Rotate(a, steps), l)
    }

    /// Conjugates slots.
    pub fn conjugate(&mut self, a: NodeId) -> NodeId {
        let l = self.level_of(a);
        self.push(HeOp::Conjugate(a), l)
    }

    /// Rescales (drops one level).
    ///
    /// # Panics
    ///
    /// Panics at level 1 (no level left to drop).
    pub fn rescale(&mut self, a: NodeId) -> NodeId {
        let l = self.level_of(a);
        assert!(l >= 2, "cannot rescale at level 1");
        self.push(HeOp::Rescale(a), l - 1)
    }

    /// Drops `a` to `level` (no-op allowed).
    ///
    /// # Panics
    ///
    /// Panics if `level` is above the operand's level or zero.
    pub fn mod_drop(&mut self, a: NodeId, level: usize) -> NodeId {
        let l = self.level_of(a);
        assert!((1..=l).contains(&level), "bad mod_drop target");
        if level == l {
            return a;
        }
        self.push(HeOp::ModDrop(a, level), level)
    }

    /// Raises `a` to a higher level (bootstrapping's ModRaise).
    ///
    /// # Panics
    ///
    /// Panics if `level` is not above the operand's level.
    pub fn mod_raise(&mut self, a: NodeId, level: usize) -> NodeId {
        let l = self.level_of(a);
        assert!(level > l, "mod_raise target must exceed current level");
        self.push(HeOp::ModRaise(a, level), level)
    }

    /// Marks a node as an output.
    pub fn output(&mut self, a: NodeId) -> NodeId {
        let l = self.level_of(a);
        self.push(HeOp::Output(a), l)
    }

    /// Counts of each op category (inputs, muls, rotates, ...), useful for
    /// sanity checks and reports.
    pub fn op_histogram(&self) -> OpHistogram {
        let mut h = OpHistogram::default();
        for n in &self.nodes {
            match n.op {
                HeOp::Input => h.inputs += 1,
                HeOp::PlainInput => h.plain_inputs += 1,
                HeOp::Add(..) | HeOp::Sub(..) | HeOp::AddPlain(..) => h.adds += 1,
                HeOp::MulPlain(..) => h.plain_muls += 1,
                HeOp::MulCt(..) => h.ct_muls += 1,
                HeOp::Rotate(..) | HeOp::Conjugate(..) => h.rotations += 1,
                HeOp::Rescale(..) => h.rescales += 1,
                HeOp::ModDrop(..) => h.mod_drops += 1,
                HeOp::ModRaise(..) => h.mod_raises += 1,
                HeOp::Output(..) => h.outputs += 1,
            }
        }
        h
    }

    /// Validates structural invariants: topological operand order, operand
    /// level consistency, level bounds. Returns the number of nodes checked.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant (these are programming errors
    /// in graph generators, not recoverable conditions).
    pub fn validate(&self) -> usize {
        for (i, n) in self.nodes.iter().enumerate() {
            for op in n.op.operands() {
                assert!(
                    (op.0 as usize) < i,
                    "node {i} uses later node {}: not topological",
                    op.0
                );
            }
            match n.op {
                HeOp::Rescale(a) => {
                    assert_eq!(self.level_of(a), n.level + 1, "rescale level bookkeeping")
                }
                HeOp::ModDrop(a, l) => {
                    assert!(self.level_of(a) > l && n.level == l, "mod_drop bookkeeping")
                }
                HeOp::Add(a, b) | HeOp::Sub(a, b) | HeOp::MulCt(a, b) => {
                    assert_eq!(self.level_of(a), self.level_of(b));
                    assert_eq!(n.level, self.level_of(a));
                }
                _ => {}
            }
        }
        self.nodes.len()
    }

    /// Maximum level any node executes at.
    pub fn max_level(&self) -> usize {
        self.nodes.iter().map(|n| n.level).max().unwrap_or(0)
    }

    /// Appends all nodes of `other`, remapping its ids; returns the mapping
    /// of `other`'s ids into this graph.
    pub fn append(&mut self, other: &HeGraph) -> Vec<NodeId> {
        let offset = self.nodes.len() as u32;
        let mut mapping = Vec::with_capacity(other.nodes.len());
        for n in &other.nodes {
            let mut remapped = n.clone();
            remapped.op = remap_op(&n.op, offset);
            mapping.push(NodeId(self.nodes.len() as u32));
            self.nodes.push(remapped);
        }
        mapping
    }
}

fn remap_op(op: &HeOp, offset: u32) -> HeOp {
    let f = |id: NodeId| NodeId(id.0 + offset);
    match *op {
        HeOp::Input => HeOp::Input,
        HeOp::PlainInput => HeOp::PlainInput,
        HeOp::Add(a, b) => HeOp::Add(f(a), f(b)),
        HeOp::Sub(a, b) => HeOp::Sub(f(a), f(b)),
        HeOp::AddPlain(a, b) => HeOp::AddPlain(f(a), f(b)),
        HeOp::MulPlain(a, b) => HeOp::MulPlain(f(a), f(b)),
        HeOp::MulCt(a, b) => HeOp::MulCt(f(a), f(b)),
        HeOp::Rotate(a, s) => HeOp::Rotate(f(a), s),
        HeOp::Conjugate(a) => HeOp::Conjugate(f(a)),
        HeOp::Rescale(a) => HeOp::Rescale(f(a)),
        HeOp::ModDrop(a, l) => HeOp::ModDrop(f(a), l),
        HeOp::ModRaise(a, l) => HeOp::ModRaise(f(a), l),
        HeOp::Output(a) => HeOp::Output(f(a)),
    }
}

/// Per-category node counts. See [`HeGraph::op_histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpHistogram {
    /// Encrypted inputs.
    pub inputs: usize,
    /// Plaintext inputs.
    pub plain_inputs: usize,
    /// Additions and subtractions.
    pub adds: usize,
    /// Plaintext multiplications.
    pub plain_muls: usize,
    /// Ciphertext multiplications.
    pub ct_muls: usize,
    /// Rotations and conjugations.
    pub rotations: usize,
    /// Rescales.
    pub rescales: usize,
    /// Modulus drops.
    pub mod_drops: usize,
    /// Modulus raises (bootstrapping starts).
    pub mod_raises: usize,
    /// Outputs.
    pub outputs: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_graph() -> HeGraph {
        let mut g = HeGraph::new();
        let x = g.input(3);
        let w = g.plain_input(3);
        let xw = g.mul_plain(x, w);
        let r = g.rescale(xw);
        let rot = g.rotate(r, 4);
        let s = g.add(r, rot);
        g.output(s);
        g
    }

    #[test]
    fn builder_levels_and_histogram() {
        let g = small_graph();
        g.validate();
        assert_eq!(g.max_level(), 3);
        let h = g.op_histogram();
        assert_eq!(h.inputs, 1);
        assert_eq!(h.plain_inputs, 1);
        assert_eq!(h.plain_muls, 1);
        assert_eq!(h.rescales, 1);
        assert_eq!(h.rotations, 1);
        assert_eq!(h.adds, 1);
        assert_eq!(h.outputs, 1);
    }

    #[test]
    #[should_panic(expected = "level mismatch")]
    fn mixing_levels_panics() {
        let mut g = HeGraph::new();
        let a = g.input(3);
        let b = g.input(2);
        g.add(a, b);
    }

    #[test]
    fn mod_drop_aligns_levels() {
        let mut g = HeGraph::new();
        let a = g.input(3);
        let b = g.input(2);
        let a2 = g.mod_drop(a, 2);
        let s = g.add(a2, b);
        assert_eq!(g.node(s).level, 2);
        g.validate();
    }

    #[test]
    fn mod_drop_same_level_is_identity() {
        let mut g = HeGraph::new();
        let a = g.input(3);
        assert_eq!(g.mod_drop(a, 3), a);
        assert_eq!(g.num_nodes(), 1);
    }

    #[test]
    fn phases_tag_nodes() {
        let mut g = HeGraph::new();
        let a = g.input(2);
        g.set_phase(Phase::Bootstrap);
        let b = g.rotate(a, 1);
        assert_eq!(g.node(a).phase, Phase::App);
        assert_eq!(g.node(b).phase, Phase::Bootstrap);
    }

    #[test]
    fn append_remaps_ids() {
        let mut g = small_graph();
        let sub = small_graph();
        let before = g.num_nodes();
        let mapping = g.append(&sub);
        assert_eq!(g.num_nodes(), before + sub.num_nodes());
        g.validate();
        // The appended input maps to an Input node at the right offset.
        assert!(matches!(g.node(mapping[0]).op, HeOp::Input));
    }

    #[test]
    fn keyswitch_classification() {
        let g = small_graph();
        let ks_ops = g.iter().filter(|(_, n)| n.op.needs_keyswitch()).count();
        assert_eq!(ks_ops, 1); // only the rotation
    }
}
