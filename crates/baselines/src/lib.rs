//! Baseline models: the multicore CPU and the F1+ accelerator.
//!
//! The paper compares against a 32-core/64-thread 3.5 GHz Threadripper PRO
//! 3975WX running optimized FHE libraries (Sec. 8), and against F1+ — F1
//! scaled up to CraterLake's hardware budget with the best keyswitching
//! algorithm per level. We model:
//!
//! - [`CpuModel`]: an analytic throughput model — the same graphs are
//!   costed in scalar modular operations via `cl-isa`'s formulas and
//!   divided by an effective scalar-op throughput. The default constant is
//!   calibrated against the paper's own CPU measurement of packed
//!   bootstrapping (Lattigo, 17.2 s); [`CpuModel::from_host_ntt_bench`]
//!   instead measures this host's throughput with our own NTT kernel.
//! - F1+: not a separate model but an [`cl_core::ArchConfig`]
//!   ([`cl_core::ArchConfig::f1_plus`]) compiled with the
//!   per-level-best keyswitch policy ([`f1_plus_options`]).

#![warn(missing_docs)]
// Library code must propagate failures (`FheResult`/`?`) or `expect` with
// the violated invariant; tests are exempt. Enforced by scripts/verify.sh.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use cl_ckks::security::SecurityLevel;
use cl_compiler::{CompileOptions, KsPolicy};
use cl_core::ArchConfig;
use cl_isa::{cost, HeGraph, HeOp, KsAlgorithm};

/// Analytic CPU cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Effective scalar modular operations per second, all overheads
    /// included (memory stalls, reductions, cache misses).
    pub scalar_ops_per_sec: f64,
}

impl CpuModel {
    /// The paper-calibrated model: effective throughput chosen so our
    /// packed-bootstrapping operation count divides to the paper's
    /// measured 17.2 s on the 32-core Threadripper running Lattigo.
    pub fn paper_calibrated() -> Self {
        Self {
            scalar_ops_per_sec: 2.4e9,
        }
    }

    /// Calibrates against this host by timing our own NTT kernel (the
    /// dominant CPU primitive) and scaling to the reference machine's 32
    /// cores. Useful for relating the model to observable local numbers.
    pub fn from_host_ntt_bench() -> Self {
        let n = 1 << 13;
        let q = cl_math::generate_ntt_primes(n, 50, 1).expect("prime generation")[0];
        let table = cl_math::NttTable::new(n, q).expect("NTT table");
        let mut poly: Vec<u64> = (0..n as u64).map(|i| i % q).collect();
        let iters = 64;
        let start = std::time::Instant::now();
        for _ in 0..iters {
            table.forward(&mut poly);
            table.inverse(&mut poly);
        }
        let secs = start.elapsed().as_secs_f64();
        // Each NTT is (n/2)*log2(n) butterflies (1 mul + 2 add each); count
        // the multiply as the scalar op, as the cost formulas do.
        let muls = (iters * 2) as f64 * (n as f64 / 2.0) * (n as f64).log2();
        let single_core = muls / secs;
        // Scale to 32 cores with imperfect (75%) parallel efficiency, as
        // FHE libraries achieve on many-core parts.
        Self {
            scalar_ops_per_sec: single_core * 32.0 * 0.75,
        }
    }

    /// Scalar modular multiplies to execute `graph` at ring degree `n`
    /// with keyswitch variants chosen by `policy`.
    pub fn graph_scalar_ops(graph: &HeGraph, n: usize, policy: &KsPolicy) -> f64 {
        let (a, b) = Self::graph_scalar_ops_by_phase(graph, n, policy);
        a + b
    }

    /// Like [`CpuModel::graph_scalar_ops`], split into
    /// `(application, bootstrapping)` scalar operations by node phase —
    /// the blue/red split of Fig. 3.
    pub fn graph_scalar_ops_by_phase(graph: &HeGraph, n: usize, policy: &KsPolicy) -> (f64, f64) {
        let mut app = 0f64;
        let mut boot = 0f64;
        let nf = n as f64;
        let ntt_muls = nf / 2.0 * (nf).log2();
        for (_, node) in graph.iter() {
            let l = node.level as f64;
            let ops = match &node.op {
                HeOp::Input | HeOp::PlainInput | HeOp::Output(_) | HeOp::ModDrop(..) => 0.0,
                HeOp::Add(..) | HeOp::Sub(..) | HeOp::AddPlain(..) => 2.0 * l * nf * 0.25,
                HeOp::MulPlain(..) => 2.0 * l * nf,
                HeOp::Rescale(_) => 4.0 * l * nf + 2.0 * ntt_muls,
                HeOp::ModRaise(_, to) => {
                    let from = 3.0f64.min(l);
                    2.0 * (*to as f64 - from) * from * nf + 2.0 * *to as f64 * ntt_muls
                }
                HeOp::MulCt(..) | HeOp::Rotate(..) | HeOp::Conjugate(..) => {
                    let alg = policy.algorithm(n, node.level, 28);
                    let ks = match alg {
                        KsAlgorithm::Boosted(t) => cost::boosted_keyswitch_ops(node.level, t),
                        KsAlgorithm::Standard => cost::standard_keyswitch_ops(node.level),
                    };
                    let aux = if matches!(node.op, HeOp::MulCt(..)) {
                        4.0 * l * nf
                    } else {
                        2.0 * l * nf // automorphism applications
                    };
                    ks.scalar_muls(n) as f64 + aux
                }
            };
            match node.phase {
                cl_isa::Phase::App => app += ops,
                cl_isa::Phase::Bootstrap => boot += ops,
            }
        }
        (app, boot)
    }

    /// Modeled CPU execution time for a graph, in seconds.
    pub fn time_for_graph(&self, graph: &HeGraph, n: usize, policy: &KsPolicy) -> f64 {
        Self::graph_scalar_ops(graph, n, policy) / self.scalar_ops_per_sec
    }
}

/// The F1+ configuration and compile options used throughout the
/// evaluation: F1's architecture scaled up, running the most efficient
/// keyswitching algorithm at each level (standard below the crossover,
/// boosted above — Sec. 8).
pub fn f1_plus_options(n: usize) -> (ArchConfig, CompileOptions) {
    (
        ArchConfig::f1_plus(),
        CompileOptions {
            reorder: false,
            n,
            ks_policy: KsPolicy::BestPerLevel(SecurityLevel::Bits80),
        },
    )
}

/// The CraterLake configuration and compile options used throughout the
/// evaluation (80-bit security, security-driven keyswitch digits).
pub fn craterlake_options(n: usize) -> (ArchConfig, CompileOptions) {
    (
        ArchConfig::craterlake(),
        CompileOptions {
            reorder: false,
            n,
            ks_policy: KsPolicy::SecurityDriven(SecurityLevel::Bits80),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rotation_heavy_graph(level: usize, rots: usize) -> HeGraph {
        let mut g = HeGraph::new();
        let x = g.input(level);
        let mut acc = x;
        for i in 0..rots {
            let r = g.rotate(acc, 1 + (i % 4) as i64);
            acc = g.add(acc, r);
        }
        g.output(acc);
        g
    }

    #[test]
    fn cpu_time_scales_with_work() {
        let model = CpuModel::paper_calibrated();
        let policy = KsPolicy::SecurityDriven(SecurityLevel::Bits80);
        let small = rotation_heavy_graph(20, 4);
        let large = rotation_heavy_graph(20, 16);
        let ts = model.time_for_graph(&small, 1 << 16, &policy);
        let tl = model.time_for_graph(&large, 1 << 16, &policy);
        assert!(tl > 3.0 * ts && tl < 5.0 * ts);
    }

    #[test]
    fn deep_ops_cost_more_than_shallow() {
        let policy = KsPolicy::SecurityDriven(SecurityLevel::Bits80);
        let deep = rotation_heavy_graph(57, 8);
        let shallow = rotation_heavy_graph(8, 8);
        let od = CpuModel::graph_scalar_ops(&deep, 1 << 16, &policy);
        let os = CpuModel::graph_scalar_ops(&shallow, 1 << 16, &policy);
        assert!(od > 10.0 * os);
    }

    #[test]
    fn host_calibration_is_plausible() {
        let m = CpuModel::from_host_ntt_bench();
        // Anything from an emulated core to a huge server: 10^8..10^12.
        assert!(
            (1e8..1e12).contains(&m.scalar_ops_per_sec),
            "implausible throughput {:.3e}",
            m.scalar_ops_per_sec
        );
    }

    #[test]
    fn f1_options_use_best_per_level() {
        let (arch, opts) = f1_plus_options(1 << 16);
        assert_eq!(arch.name, "F1+");
        assert!(matches!(opts.ks_policy, KsPolicy::BestPerLevel(_)));
    }
}
