//! Energy and power model (Fig. 10b).
//!
//! The paper derives energy from activity-level energies of synthesized
//! components (Sec. 8); we have no synthesis flow, so we encode calibrated
//! per-activity energies chosen to land the published operating points
//! (ResNet-20 ≈ 279 W, deep benchmarks near the 320 W envelope, shallow
//! MNIST ≈ 80-100 W, FUs consuming 50-80% of total). The *structure* of the
//! model matches the paper's: FU energy scales with scalar operations, RF
//! energy with register-file words, network energy with transpose traffic,
//! and HBM energy with off-chip bytes, plus a constant idle/leakage floor.

use cl_isa::FuKind;

use crate::{ArchConfig, Stats};

/// Energy per scalar multiply-accumulate (28-bit, pipelined to the
/// energy-optimal point, Sec. 5.5), in picojoules.
pub const PJ_PER_SCALAR_OP: f64 = 2.0;
/// Energy per register-file byte moved, in picojoules.
pub const PJ_PER_RF_BYTE: f64 = 2.0;
/// Energy per inter-group network byte moved, in picojoules.
pub const PJ_PER_NET_BYTE: f64 = 1.0;
/// Energy per off-chip (HBM) byte moved, in picojoules.
pub const PJ_PER_HBM_BYTE: f64 = 60.0;
/// Idle/leakage power floor in watts (clock tree, SRAM leakage, PHYs).
pub const IDLE_WATTS: f64 = 30.0;

/// Average-power breakdown over one execution, in watts (Fig. 10b's bars).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// Functional units (scalar arithmetic).
    pub fu: f64,
    /// Register file.
    pub rf: f64,
    /// On-chip network.
    pub noc: f64,
    /// HBM (device + PHY + controller).
    pub hbm: f64,
    /// Idle/leakage floor.
    pub idle: f64,
}

impl PowerBreakdown {
    /// Total average power in watts.
    pub fn total(&self) -> f64 {
        self.fu + self.rf + self.noc + self.hbm + self.idle
    }
}

/// Computes the average-power breakdown for an execution.
pub fn power_breakdown(cfg: &ArchConfig, stats: &Stats) -> PowerBreakdown {
    let seconds = stats.cycles / (cfg.freq_ghz * 1e9);
    if seconds == 0.0 {
        return PowerBreakdown {
            fu: 0.0,
            rf: 0.0,
            noc: 0.0,
            hbm: 0.0,
            idle: IDLE_WATTS,
        };
    }
    let fu_j = stats.scalar_ops * PJ_PER_SCALAR_OP * 1e-12;
    let rf_j = stats.rf_words * cfg.word_bytes() * PJ_PER_RF_BYTE * 1e-12;
    let noc_j = stats.net_words * cfg.word_bytes() * PJ_PER_NET_BYTE * 1e-12;
    let hbm_j = stats.total_traffic_bytes() * PJ_PER_HBM_BYTE * 1e-12;
    PowerBreakdown {
        fu: fu_j / seconds,
        rf: rf_j / seconds,
        noc: noc_j / seconds,
        hbm: hbm_j / seconds,
        idle: IDLE_WATTS,
    }
}

/// Total energy in joules for an execution (used for the performance-per-
/// joule comparison against F1+, Sec. 9.2).
pub fn total_energy_joules(cfg: &ArchConfig, stats: &Stats) -> f64 {
    let seconds = stats.cycles / (cfg.freq_ghz * 1e9);
    power_breakdown(cfg, stats).total() * seconds
}

/// Peak scalar operations per cycle of a configuration (CRB internals plus
/// all element-wise FU lanes), used for sanity checks.
pub fn peak_scalar_ops_per_cycle(cfg: &ArchConfig, l_max: usize) -> f64 {
    // The CRB's internal MAC array is l_max pipelines x E lanes (Sec. 5.1).
    let crb = cfg.fu_count(FuKind::Crb) * l_max as f64 * cfg.lanes as f64;
    let pointwise = (cfg.fu_count(FuKind::Mul) + cfg.fu_count(FuKind::Add)) * cfg.lanes as f64;
    // Each NTT FU performs E/2 butterflies per cycle per stage over log2(N)
    // stages in a fully pipelined implementation.
    let ntt = cfg.fu_count(FuKind::Ntt)
        * (cfg.lanes as f64 / 2.0)
        * (cfg.n_max as f64).log2();
    crb + pointwise + ntt
}

#[cfg(test)]
mod tests {
    use super::*;
    use cl_isa::TrafficClass;

    #[test]
    fn zero_time_yields_idle_only() {
        let cfg = ArchConfig::craterlake();
        let p = power_breakdown(&cfg, &Stats::default());
        assert_eq!(p.fu, 0.0);
        assert_eq!(p.total(), IDLE_WATTS);
    }

    #[test]
    fn power_scales_with_activity() {
        let cfg = ArchConfig::craterlake();
        let mut s = Stats {
            cycles: 1e9, // 1 second at 1 GHz
            scalar_ops: 5e13,
            rf_words: 1e13,
            net_words: 2e12,
            ..Default::default()
        };
        s.add_traffic(TrafficClass::Ksh, 200e9);
        let p = power_breakdown(&cfg, &s);
        // FU: 5e13 * 2 pJ = 100 W.
        assert!((p.fu - 100.0).abs() < 1e-6);
        // RF: 1e13 words * 3.5 B * 2 pJ = 70 W.
        assert!((p.rf - 70.0).abs() < 1e-6);
        // HBM: 200 GB/s * 60 pJ/B = 12 W.
        assert!((p.hbm - 12.0).abs() < 1e-6);
        assert!(p.total() > p.fu);
        // Energy = power x time.
        assert!((total_energy_joules(&cfg, &s) - p.total()).abs() < 1e-9);
    }

    #[test]
    fn peak_ops_match_paper_scale() {
        // Sec. 5.1: the CRB unit alone has 120K multipliers and adders at
        // L_max = 60 (60 pipelines x 2048 lanes = 122,880 MACs).
        let cfg = ArchConfig::craterlake();
        let crb_macs = cfg.fu_count(FuKind::Crb) * 60.0 * cfg.lanes as f64;
        assert!((crb_macs - 122_880.0).abs() < 1.0);
        let peak = peak_scalar_ops_per_cycle(&cfg, 60);
        assert!(peak > crb_macs);
    }
}
