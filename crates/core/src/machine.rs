//! The machine executor: resource timelines, residency, and DMA.
//!
//! The hardware is statically scheduled with no dynamic control (Sec. 4.1),
//! so execution time is fully determined by resource occupancy. The machine
//! tracks one timeline per shared resource — each FU kind, the register-file
//! ports, the inter-group network, and the HBM interface — plus
//! register-file *capacity* with Belady (MIN) eviction, the policy the
//! paper's compiler uses (Sec. 6).
//!
//! Memory transfers are decoupled from compute (Sec. 4.1: "decoupled data
//! orchestration"): the HBM timeline advances independently, so loads only
//! delay an operation when bandwidth (not latency) is the constraint —
//! exactly the behaviour of ahead-of-use staging.

use std::collections::HashMap;

use cl_isa::{FuKind, MacroOp, OpLabel, TrafficClass, ValueId};

use crate::{ArchConfig, Stats};

/// How a value behaves under the residency model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueClass {
    /// Read-only, backed by memory (inputs, weights, keyswitch hints):
    /// evicted silently, reloaded with its traffic class.
    Backed(TrafficClass),
    /// Produced on chip: eviction writes it back (`IntermStore`), reloading
    /// costs `IntermLoad`.
    Intermediate,
}

#[derive(Debug, Clone)]
struct ValueState {
    words: u64,
    class: ValueClass,
    resident: bool,
    /// Cycle at which the value is available on chip.
    ready: f64,
    /// Next op index that uses this value (u32::MAX = never again).
    next_use: u32,
    /// Whether the value has ever been loaded (first load of a `Backed`
    /// value counts as its class; later reloads of intermediates count as
    /// IntermLoad).
    materialized: bool,
}

/// The machine: executes macro-ops in schedule order.
///
/// The compiler drives it through three calls:
/// 1. [`Machine::declare`] each value (size + class) once,
/// 2. [`Machine::exec`] each macro-op with its reads/writes and next-use
///    information (for Belady),
/// 3. [`Machine::finish`] to close the schedule and read [`Stats`].
#[derive(Debug)]
pub struct Machine {
    cfg: ArchConfig,
    /// Next-free cycle per FU kind.
    fu_free: HashMap<FuKind, f64>,
    rf_free: f64,
    net_free: f64,
    hbm_free: f64,
    /// Completion time of the latest op (running makespan).
    makespan: f64,
    values: HashMap<ValueId, ValueState>,
    resident_words: u64,
    stats: Stats,
    op_index: u32,
}

impl Machine {
    /// Creates a machine for the given architecture.
    pub fn new(cfg: ArchConfig) -> Self {
        Self {
            cfg,
            fu_free: HashMap::new(),
            rf_free: 0.0,
            net_free: 0.0,
            hbm_free: 0.0,
            makespan: 0.0,
            values: HashMap::new(),
            resident_words: 0,
            stats: Stats::default(),
            op_index: 0,
        }
    }

    /// The architecture being modeled.
    pub fn config(&self) -> &ArchConfig {
        &self.cfg
    }

    /// Declares a value (its size in words and residency class). Must
    /// precede any use.
    ///
    /// # Panics
    ///
    /// Panics if the value was already declared.
    pub fn declare(&mut self, id: ValueId, words: u64, class: ValueClass) {
        let prev = self.values.insert(
            id,
            ValueState {
                words,
                class,
                resident: false,
                ready: 0.0,
                next_use: u32::MAX,
                materialized: false,
            },
        );
        assert!(prev.is_none(), "value {id:?} declared twice");
    }

    /// True if the value is currently resident on chip.
    pub fn is_resident(&self, id: ValueId) -> bool {
        self.values.get(&id).map(|v| v.resident).unwrap_or(false)
    }

    fn word_bytes(&self) -> f64 {
        self.cfg.word_bytes()
    }

    /// Evicts values (Belady: farthest next use first) until `needed` words
    /// fit. Dirty intermediates are written back.
    fn make_room(&mut self, needed: u64) {
        let capacity_words = (self.cfg.rf_bytes as f64 / self.word_bytes()) as u64;
        assert!(
            needed <= capacity_words,
            "operand set ({needed} words) exceeds register file ({capacity_words} words)"
        );
        while self.resident_words + needed > capacity_words {
            // Victim selection: Belady's MIN adapted to variable-size,
            // variable-cost values — rank by next-use distance, but weight
            // dirty intermediates as costlier to displace (eviction writes
            // them back AND reloading costs a second transfer), matching
            // the paper's compiler preference for evicting clean,
            // memory-backed operands like hints and weights.
            let victim = self
                .values
                .iter()
                .filter(|(_, v)| v.resident)
                .max_by(|(_, a), (_, b)| {
                    let score = |v: &ValueState| {
                        if v.next_use == u32::MAX {
                            // Dead (or dying within the current op): free
                            // to drop, best possible victim.
                            return f64::INFINITY;
                        }
                        let dist = v.next_use as f64;
                        match v.class {
                            ValueClass::Backed(_) => dist,
                            ValueClass::Intermediate => dist * 0.5,
                        }
                    };
                    score(a)
                        .partial_cmp(&score(b))
                        .expect("eviction scores are distances or +inf, never NaN")
                        .then(a.words.cmp(&b.words))
                })
                .map(|(id, _)| *id)
                .expect("capacity exceeded but nothing resident");
            let (words, class) = {
                let v = self
                    .values
                    .get_mut(&victim)
                    .expect("eviction victim was selected from the value table");
                v.resident = false;
                (v.words, v.class)
            };
            self.resident_words -= words;
            self.stats.evictions += 1;
            // A dead value (no future use) is discarded for free; a live
            // dirty intermediate must be written back before reuse.
            let nu = self.values[&victim].next_use;
            if class == ValueClass::Intermediate && nu != u32::MAX {
                self.stats.evictions_dirty += 1;
                let dist = nu.saturating_sub(self.op_index);
                self.stats.dirty_evict_log.push((words, dist, victim.0));
                let bytes = words as f64 * self.word_bytes();
                self.stats.add_traffic(TrafficClass::IntermStore, bytes);
                self.hbm_free += words as f64 / self.cfg.hbm_words_per_cycle();
                self.stats.hbm_busy += words as f64 / self.cfg.hbm_words_per_cycle();
            }
        }
    }

    /// Ensures a value is resident, DMA-loading it if needed. Returns the
    /// cycle at which it is available.
    fn touch(&mut self, id: ValueId, next_use: u32) -> f64 {
        let (resident, words, class, ready, materialized) = {
            let v = self.values.get(&id).unwrap_or_else(|| {
                panic!("use of undeclared value {id:?}")
            });
            (v.resident, v.words, v.class, v.ready, v.materialized)
        };
        if resident {
            let v = self
                .values
                .get_mut(&id)
                .expect("value was just read from the table");
            v.next_use = next_use;
            return ready;
        }
        // Load it: make room, then stream from HBM.
        self.make_room(words);
        let load_class = match class {
            ValueClass::Backed(c) => c,
            ValueClass::Intermediate => {
                assert!(
                    materialized,
                    "intermediate {id:?} used before being produced"
                );
                TrafficClass::IntermLoad
            }
        };
        let bytes = words as f64 * self.word_bytes();
        self.stats.add_traffic(load_class, bytes);
        let dma_cycles = words as f64 / self.cfg.hbm_words_per_cycle();
        let done = self.hbm_free + dma_cycles;
        self.hbm_free = done;
        self.stats.hbm_busy += dma_cycles;
        let v = self
            .values
            .get_mut(&id)
            .expect("value was just read from the table");
        v.resident = true;
        v.ready = done;
        v.next_use = next_use;
        v.materialized = true;
        self.resident_words += words;
        done
    }

    /// Frees a value that will never be used again (no writeback).
    pub fn release(&mut self, id: ValueId) {
        if let Some(v) = self.values.get_mut(&id) {
            if v.resident {
                v.resident = false;
                self.resident_words -= v.words;
            }
            v.next_use = u32::MAX;
        }
    }

    /// Executes one macro-op.
    ///
    /// `reads` pairs each input value with the index of the *next* op that
    /// will use it (`u32::MAX` if this is the last use — it is then
    /// released). `writes` lists values this op produces with the index of
    /// their first use. `n` is the ring degree the op operates at.
    ///
    /// Returns the completion cycle.
    ///
    /// # Panics
    ///
    /// Panics if a value was not declared, or an intermediate is read
    /// before being produced.
    pub fn exec(
        &mut self,
        op: &MacroOp,
        n: usize,
        reads: &[(ValueId, u32)],
        writes: &[(ValueId, u32)],
        label: OpLabel,
    ) -> f64 {
        let this_op = self.op_index;
        self.op_index += 1;
        // 1. Bring operands on chip.
        let mut ready = 0.0f64;
        for &(id, next_use) in reads {
            let r = self.touch(id, next_use);
            ready = ready.max(r);
        }
        // 2. Room for outputs.
        let out_words: u64 = writes
            .iter()
            .map(|(id, _)| self.values.get(id).expect("undeclared output").words)
            .sum();
        self.make_room(out_words);
        // 3. Resource occupancy.
        let pass = self.cfg.pass_cycles(n);
        let mut start = ready;
        // FU availability.
        for &(fu, passes) in &op.fu_passes {
            if passes == 0 {
                continue;
            }
            let count = self.cfg.fu_count(fu);
            assert!(count > 0.0, "op uses absent FU {fu:?} on {}", self.cfg.name);
            let free = self.fu_free.get(&fu).copied().unwrap_or(0.0);
            start = start.max(free);
        }
        if op.rf_words > 0 {
            start = start.max(self.rf_free);
        }
        if op.net_words > 0 {
            start = start.max(self.net_free);
        }
        let mut dur = 0.0f64;
        for &(fu, passes) in &op.fu_passes {
            if passes == 0 {
                continue;
            }
            let count = self.cfg.fu_count(fu);
            let busy = passes as f64 * pass / count;
            let free = self.fu_free.entry(fu).or_insert(0.0);
            *free = start + busy;
            *self.stats.fu_busy.entry(fu).or_insert(0.0) += passes as f64 * pass;
            dur = dur.max(busy);
        }
        if op.rf_words > 0 {
            let busy = op.rf_words as f64 / self.cfg.rf_words_per_cycle();
            self.rf_free = self.rf_free.max(start) + busy;
            self.stats.rf_busy += busy;
            self.stats.rf_words += op.rf_words as f64;
            dur = dur.max(self.rf_free - start);
        }
        if op.net_words > 0 {
            let busy = op.net_words as f64 / self.cfg.net_words_per_cycle;
            self.net_free = self.net_free.max(start) + busy;
            self.stats.net_busy += busy;
            self.stats.net_words += op.net_words as f64;
            dur = dur.max(self.net_free - start);
        }
        let done = start + dur;
        self.makespan = self.makespan.max(done);
        self.stats.scalar_ops += op.scalar_muls as f64;
        self.stats.macro_ops += 1;
        *self.stats.phase_cycles.entry(label).or_insert(0.0) += dur;
        // 4. Record outputs.
        for &(id, first_use) in writes {
            let v = self
                .values
                .get_mut(&id)
                .expect("write target must be declared before execution");
            if !v.resident {
                v.resident = true;
                self.resident_words += v.words;
            }
            v.ready = done;
            v.next_use = first_use;
            v.materialized = true;
        }
        // 5. Release dead reads.
        for &(id, next_use) in reads {
            if next_use == u32::MAX {
                // Backed values stay cached until evicted; intermediates die.
                if self.values.get(&id).map(|v| v.class) == Some(ValueClass::Intermediate) {
                    self.release(id);
                }
            }
        }
        let _ = this_op;
        done
    }

    /// Closes the schedule: the total time covers both compute and any
    /// outstanding DMA.
    pub fn finish(mut self) -> Stats {
        self.stats.cycles = self.makespan.max(self.hbm_free);
        self.stats
    }

    /// Current makespan (for tests and incremental inspection).
    pub fn now(&self) -> f64 {
        self.makespan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(ArchConfig::craterlake())
    }

    const N: usize = 1 << 16;

    #[test]
    fn single_op_duration_is_bottleneck_fu() {
        let mut m = machine();
        m.declare(ValueId(1), 100, ValueClass::Intermediate);
        // 4 NTT passes on 2 NTT FUs at 32 cycles/pass = 64 cycles.
        let op = MacroOp::new().with_fu(FuKind::Ntt, 4);
        let done = m.exec(&op, N, &[], &[(ValueId(1), u32::MAX)], OpLabel::App);
        assert!((done - 64.0).abs() < 1e-9);
        let stats = m.finish();
        assert!((stats.cycles - 64.0).abs() < 1e-9);
        // 2 FUs busy 64 cycles each... busy = passes * pass = 128 instance-cycles.
        assert!((stats.fu_busy[&FuKind::Ntt] - 128.0).abs() < 1e-9);
    }

    #[test]
    fn independent_fu_kinds_overlap() {
        let mut m = machine();
        m.declare(ValueId(1), 1, ValueClass::Intermediate);
        m.declare(ValueId(2), 1, ValueClass::Intermediate);
        let ntt = MacroOp::new().with_fu(FuKind::Ntt, 2);
        let mul = MacroOp::new().with_fu(FuKind::Mul, 5);
        m.exec(&ntt, N, &[], &[(ValueId(1), 1)], OpLabel::App);
        m.exec(&mul, N, &[], &[(ValueId(2), u32::MAX)], OpLabel::App);
        // NTT: 2/2*32 = 32 cycles; Mul: 5/5*32 = 32 cycles; they overlap.
        let stats = m.finish();
        assert!((stats.cycles - 32.0).abs() < 1e-9);
    }

    #[test]
    fn same_fu_kind_serializes() {
        let mut m = machine();
        m.declare(ValueId(1), 1, ValueClass::Intermediate);
        m.declare(ValueId(2), 1, ValueClass::Intermediate);
        let op = MacroOp::new().with_fu(FuKind::Crb, 3);
        m.exec(&op, N, &[], &[(ValueId(1), 1)], OpLabel::App);
        m.exec(&op, N, &[], &[(ValueId(2), u32::MAX)], OpLabel::App);
        // 3 passes on 1 CRB = 96 cycles each, serialized = 192.
        let stats = m.finish();
        assert!((stats.cycles - 192.0).abs() < 1e-9);
    }

    #[test]
    fn dependencies_delay_start() {
        let mut m = machine();
        m.declare(ValueId(1), 1, ValueClass::Intermediate);
        m.declare(ValueId(2), 1, ValueClass::Intermediate);
        let produce = MacroOp::new().with_fu(FuKind::Ntt, 2);
        let consume = MacroOp::new().with_fu(FuKind::Mul, 5);
        m.exec(&produce, N, &[], &[(ValueId(1), 1)], OpLabel::App);
        let done = m.exec(
            &consume,
            N,
            &[(ValueId(1), u32::MAX)],
            &[(ValueId(2), u32::MAX)],
            OpLabel::App,
        );
        // 32 (NTT) + 32 (Mul) since Mul depends on the NTT result.
        assert!((done - 64.0).abs() < 1e-9);
    }

    #[test]
    fn backed_load_counts_traffic_once_and_caches() {
        let mut m = machine();
        let ksh = ValueId(7);
        let words = 1_000_000u64;
        m.declare(ksh, words, ValueClass::Backed(TrafficClass::Ksh));
        m.declare(ValueId(1), 1, ValueClass::Intermediate);
        m.declare(ValueId(2), 1, ValueClass::Intermediate);
        let op = MacroOp::new().with_fu(FuKind::Mul, 1);
        m.exec(&op, N, &[(ksh, 1)], &[(ValueId(1), u32::MAX)], OpLabel::App);
        m.exec(&op, N, &[(ksh, u32::MAX)], &[(ValueId(2), u32::MAX)], OpLabel::App);
        let stats = m.finish();
        let expect_bytes = words as f64 * 3.5;
        assert!((stats.traffic_of(TrafficClass::Ksh) - expect_bytes).abs() < 1.0);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn capacity_pressure_evicts_farthest_and_writes_back_intermediates() {
        let mut cfg = ArchConfig::craterlake();
        cfg.rf_bytes = 3_500_000; // 1M words
        let mut m = Machine::new(cfg);
        // Three 400K-word intermediates: only two fit.
        for i in 0..3u64 {
            m.declare(ValueId(i), 400_000, ValueClass::Intermediate);
        }
        let op = MacroOp::new().with_fu(FuKind::Add, 1);
        // Produce v0 (next use far: op 10), v1 (next use soon: op 3).
        m.exec(&op, N, &[], &[(ValueId(0), 10)], OpLabel::App);
        m.exec(&op, N, &[], &[(ValueId(1), 3)], OpLabel::App);
        // Producing v2 must evict v0 (farthest next use).
        m.exec(&op, N, &[], &[(ValueId(2), 4)], OpLabel::App);
        assert!(!m.is_resident(ValueId(0)));
        assert!(m.is_resident(ValueId(1)));
        assert!(m.is_resident(ValueId(2)));
        // Reading v0 again triggers IntermLoad after its IntermStore.
        m.exec(&op, N, &[(ValueId(0), u32::MAX)], &[], OpLabel::App);
        let stats = m.finish();
        // v0 evicted to fit v2, then another eviction to reload v0.
        assert_eq!(stats.evictions, 2);
        assert!(stats.traffic_of(TrafficClass::IntermStore) > 0.0);
        assert!(stats.traffic_of(TrafficClass::IntermLoad) > 0.0);
    }

    #[test]
    fn decoupled_dma_overlaps_compute() {
        let mut m = machine();
        // A large backed operand and plenty of compute to hide its load.
        m.declare(ValueId(1), 292_000, ValueClass::Backed(TrafficClass::Input));
        m.declare(ValueId(2), 1, ValueClass::Intermediate);
        m.declare(ValueId(3), 1, ValueClass::Intermediate);
        // First: a long compute op (no operands).
        let long = MacroOp::new().with_fu(FuKind::Crb, 100); // 3200 cycles
        m.exec(&long, N, &[], &[(ValueId(2), u32::MAX)], OpLabel::App);
        // Then an op reading the operand; its ~1000-cycle DMA started at
        // time 0 on the decoupled HBM timeline, so no stall.
        let short = MacroOp::new().with_fu(FuKind::Mul, 1);
        let done = m.exec(
            &short,
            N,
            &[(ValueId(1), u32::MAX)],
            &[(ValueId(3), u32::MAX)],
            OpLabel::App,
        );
        assert!(done <= 3200.0 + 32.0 + 1e-9, "load was hidden: {done}");
    }

    #[test]
    #[should_panic(expected = "undeclared")]
    fn undeclared_value_panics() {
        let mut m = machine();
        let op = MacroOp::new().with_fu(FuKind::Mul, 1);
        m.exec(&op, N, &[(ValueId(99), 0)], &[], OpLabel::App);
    }

    #[test]
    #[should_panic(expected = "absent FU")]
    fn absent_fu_panics() {
        let mut m = Machine::new(ArchConfig::f1_plus());
        m.declare(ValueId(1), 1, ValueClass::Intermediate);
        let op = MacroOp::new().with_fu(FuKind::Crb, 1);
        m.exec(&op, N, &[], &[(ValueId(1), u32::MAX)], OpLabel::App);
    }

    #[test]
    fn rf_bandwidth_limits_duration() {
        let mut m = machine();
        m.declare(ValueId(1), 1, ValueClass::Intermediate);
        // 1 Mul pass (32 cycles of FU time) but huge RF traffic:
        // 2,457,600 words / 24,576 words-per-cycle = 100 cycles.
        let op = MacroOp::new().with_fu(FuKind::Mul, 1).with_rf_words(2_457_600);
        let done = m.exec(&op, N, &[], &[(ValueId(1), u32::MAX)], OpLabel::App);
        assert!((done - 100.0).abs() < 1e-6, "got {done}");
    }
}
