//! Execution statistics collected by the machine.

use std::collections::HashMap;

use cl_isa::{FuKind, OpLabel, TrafficClass};

use crate::ArchConfig;

/// Statistics accumulated over one program execution.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Total execution time in cycles.
    pub cycles: f64,
    /// Instance-busy cycles per FU kind (one FU busy for one cycle = 1).
    pub fu_busy: HashMap<FuKind, f64>,
    /// Cycles the HBM interface was transferring.
    pub hbm_busy: f64,
    /// Cycles the inter-group network was transferring.
    pub net_busy: f64,
    /// Cycles the register-file ports were transferring.
    pub rf_busy: f64,
    /// Off-chip traffic in bytes, by class (Fig. 10a).
    pub traffic_bytes: HashMap<TrafficClass, f64>,
    /// Scalar multiply-accumulate operations (for energy accounting).
    pub scalar_ops: f64,
    /// Register-file traffic in words.
    pub rf_words: f64,
    /// Network traffic in words.
    pub net_words: f64,
    /// Cycles attributed to each phase (app vs. bootstrap), by op count.
    pub phase_cycles: HashMap<OpLabel, f64>,
    /// Number of macro-ops executed.
    pub macro_ops: u64,
    /// Number of register-file evictions (capacity misses).
    pub evictions: u64,
    /// Evictions of dirty intermediates (each costs a writeback).
    pub evictions_dirty: u64,
    /// Forensics: (words, next_use distance in ops) of dirty evictions.
    pub dirty_evict_log: Vec<(u64, u32, u64)>,
}

impl Stats {
    /// Average FU utilization: busy-instance-cycles over
    /// `total FUs x cycles` (Fig. 9's FU bars).
    pub fn fu_utilization(&self, cfg: &ArchConfig) -> f64 {
        if self.cycles == 0.0 {
            return 0.0;
        }
        let busy: f64 = self.fu_busy.values().sum();
        busy / (cfg.total_fus() * self.cycles)
    }

    /// Utilization of a single FU kind.
    pub fn fu_utilization_of(&self, cfg: &ArchConfig, kind: FuKind) -> f64 {
        let count = cfg.fu_count(kind);
        if self.cycles == 0.0 || count == 0.0 {
            return 0.0;
        }
        self.fu_busy.get(&kind).copied().unwrap_or(0.0) / (count * self.cycles)
    }

    /// Off-chip bandwidth utilization: fraction of cycles memory is active
    /// (Fig. 9's bandwidth bars).
    pub fn bw_utilization(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            (self.hbm_busy / self.cycles).min(1.0)
        }
    }

    /// Total off-chip traffic in bytes.
    pub fn total_traffic_bytes(&self) -> f64 {
        self.traffic_bytes.values().sum()
    }

    /// Traffic of one class in bytes.
    pub fn traffic_of(&self, class: TrafficClass) -> f64 {
        self.traffic_bytes.get(&class).copied().unwrap_or(0.0)
    }

    /// Execution time in milliseconds.
    pub fn exec_ms(&self, cfg: &ArchConfig) -> f64 {
        cfg.cycles_to_ms(self.cycles)
    }

    /// Adds traffic in bytes to a class.
    pub(crate) fn add_traffic(&mut self, class: TrafficClass, bytes: f64) {
        *self.traffic_bytes.entry(class).or_insert(0.0) += bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_math() {
        let cfg = ArchConfig::craterlake();
        let mut s = Stats {
            cycles: 1000.0,
            ..Default::default()
        };
        // 2 NTT FUs busy 500 instance-cycles => 25% NTT utilization.
        s.fu_busy.insert(FuKind::Ntt, 500.0);
        assert!((s.fu_utilization_of(&cfg, FuKind::Ntt) - 0.25).abs() < 1e-12);
        // Average over all 15 FUs: 500 / 15000.
        assert!((s.fu_utilization(&cfg) - 500.0 / 15000.0).abs() < 1e-12);
        s.hbm_busy = 700.0;
        assert!((s.bw_utilization() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn traffic_accounting() {
        let mut s = Stats::default();
        s.add_traffic(TrafficClass::Ksh, 100.0);
        s.add_traffic(TrafficClass::Ksh, 50.0);
        s.add_traffic(TrafficClass::Input, 25.0);
        assert_eq!(s.traffic_of(TrafficClass::Ksh), 150.0);
        assert_eq!(s.total_traffic_bytes(), 175.0);
        assert_eq!(s.traffic_of(TrafficClass::IntermLoad), 0.0);
    }

    #[test]
    fn exec_ms_uses_frequency() {
        let cfg = ArchConfig::craterlake(); // 1 GHz
        let s = Stats {
            cycles: 2.5e8,
            ..Default::default()
        };
        assert!((s.exec_ms(&cfg) - 250.0).abs() < 1e-9);
    }
}
