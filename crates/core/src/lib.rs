//! The CraterLake machine model.
//!
//! This crate models the accelerator of Secs. 4, 5 and 7 at the level the
//! paper's own evaluation operates: a statically scheduled wide-vector
//! processor whose timing is fully determined by issue bandwidth, functional
//! unit counts, register-file port bandwidth, inter-lane-group network
//! bandwidth, HBM bandwidth, and register-file capacity (there is no dynamic
//! control in the hardware, Sec. 4.1).
//!
//! - [`ArchConfig`] describes an architecture instance: the default
//!   CraterLake chip, its ablations (Table 4), the register-file sweep
//!   (Fig. 11), and the scaled-up F1+ baseline (Sec. 8).
//! - [`Machine`] executes a stream of [`cl_isa::MacroOp`]s (produced by the
//!   compiler) against resource timelines, with Belady (MIN) register-file
//!   residency and decoupled DMA (Sec. 6).
//! - [`Stats`] collects cycles, per-FU utilization, traffic by class
//!   (Fig. 9, Fig. 10a), and feeds the [`energy`] model (Fig. 10b).
//! - [`area`] reproduces Table 2 and the F1+ area comparison.

#![warn(missing_docs)]

pub mod area;
mod config;
pub mod energy;
mod machine;
mod stats;

pub use config::{ArchConfig, NetworkKind};
pub use machine::{Machine, ValueClass};
pub use stats::Stats;
