//! Area model (Table 2 and the F1+ comparison).
//!
//! Per-component areas come from the paper's synthesis results in a
//! commercial 14/12 nm process (Table 2); this module scales them by a
//! configuration's component counts so that the default CraterLake
//! configuration reproduces Table 2 and the F1+ configuration reproduces
//! the Sec. 8 comparison (636 mm^2, with a 160 mm^2 crossbar 16x larger
//! than CraterLake's fixed network).

use cl_isa::FuKind;

use crate::{ArchConfig, NetworkKind};

/// Synthesized area of one CRB FU sized for `L_max = 60`, `N_max = 64K`
/// (Table 2), mm^2.
pub const CRB_MM2: f64 = 158.8;
/// One NTT FU, mm^2.
pub const NTT_MM2: f64 = 28.1;
/// One automorphism FU, mm^2.
pub const AUT_MM2: f64 = 9.0;
/// One KSHGen FU, mm^2.
pub const KSHGEN_MM2: f64 = 3.3;
/// One multiply FU, mm^2.
pub const MUL_MM2: f64 = 2.2;
/// One add FU, mm^2.
pub const ADD_MM2: f64 = 0.8;
/// Register file, mm^2 per MB (192 mm^2 / 256 MB).
pub const RF_MM2_PER_MB: f64 = 192.0 / 256.0;
/// CraterLake's fixed permutation network, mm^2.
pub const FIXED_NET_MM2: f64 = 10.0;
/// One HBM2E PHY, mm^2 (2 PHYs = 29.8 mm^2).
pub const HBM_PHY_MM2: f64 = 14.9;

/// Area breakdown in mm^2.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaBreakdown {
    /// All functional units.
    pub fus: f64,
    /// Register file (or scratchpad + register files for F1+).
    pub rf: f64,
    /// On-chip interconnect.
    pub noc: f64,
    /// Memory PHYs.
    pub mem_phy: f64,
}

impl AreaBreakdown {
    /// Total area.
    pub fn total(&self) -> f64 {
        self.fus + self.rf + self.noc + self.mem_phy
    }
}

/// Computes the area of a configuration. `l_max` scales the CRB unit (its
/// buffers grow with the largest supported ciphertext, Sec. 9.4); `n_max`
/// beyond 64K adds an NTT butterfly stage.
pub fn area_mm2(cfg: &ArchConfig) -> AreaBreakdown {
    let n_scale = if cfg.n_max > (1 << 16) {
        // Sec. 9.4: N=128K support costs 27.4 mm^2 extra (CRB buffers double
        // is the bulk of it).
        1.0 + 27.4 / (CRB_MM2 + 2.0 * NTT_MM2)
    } else {
        1.0
    };
    let mut fus = 0.0;
    for &(kind, count) in &cfg.fu_counts {
        let unit = match kind {
            FuKind::Crb => CRB_MM2 * n_scale,
            FuKind::Ntt => NTT_MM2 * n_scale,
            FuKind::Automorphism => AUT_MM2,
            FuKind::KshGen => KSHGEN_MM2,
            FuKind::Mul => MUL_MM2,
            FuKind::Add => ADD_MM2,
        };
        fus += unit * count;
    }
    let rf = cfg.rf_bytes as f64 / (1 << 20) as f64 * RF_MM2_PER_MB;
    let noc = match cfg.network {
        NetworkKind::FixedTranspose => FIXED_NET_MM2,
        // Sec. 8: F1+'s crossbar is 16x larger.
        NetworkKind::Crossbar => 16.0 * FIXED_NET_MM2,
    };
    let phys = (cfg.hbm_bytes_per_cycle / 512.0).ceil();
    AreaBreakdown {
        fus,
        rf,
        noc,
        mem_phy: phys * HBM_PHY_MM2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn craterlake_reproduces_table2() {
        let a = area_mm2(&ArchConfig::craterlake());
        // Table 2: FUs 240.5, RF 192.0, NoC 10.0, PHYs 29.8, total 472.3.
        // (Table 2 prints 240.5 for the FU total; its own rows sum to 242.3.)
        assert!((a.fus - 241.4).abs() < 1.5, "FUs {}", a.fus);
        assert!((a.rf - 192.0).abs() < 0.1);
        assert!((a.noc - 10.0).abs() < 0.01);
        assert!((a.mem_phy - 29.8).abs() < 0.01);
        assert!((a.total() - 473.2).abs() < 2.0, "total {}", a.total());
    }

    #[test]
    fn f1_plus_area_comparison() {
        let a = area_mm2(&ArchConfig::f1_plus());
        // Sec. 8: F1+ takes 636 mm^2 (~35% more than CraterLake), of which
        // the network is 160 mm^2 (16x CraterLake's).
        assert!((a.noc - 160.0).abs() < 0.01);
        let cl = area_mm2(&ArchConfig::craterlake());
        let overhead = a.total() / cl.total();
        assert!(
            (1.15..1.45).contains(&overhead),
            "F1+ area {} vs CraterLake {} ({overhead}x)",
            a.total(),
            cl.total()
        );
    }

    #[test]
    fn n128k_support_costs_under_6_percent() {
        // Sec. 9.4: supporting N=128K adds 27.4 mm^2, <6% of chip area.
        let base = area_mm2(&ArchConfig::craterlake()).total();
        let big = area_mm2(&ArchConfig::craterlake_128k()).total();
        let extra = big - base;
        assert!((20.0..35.0).contains(&extra), "extra {extra}");
        assert!(extra / base < 0.06);
    }

    #[test]
    fn ablations_shrink_area() {
        let base = area_mm2(&ArchConfig::craterlake()).total();
        let no_crb = area_mm2(&ArchConfig::craterlake().without_crb_chaining()).total();
        assert!(no_crb < base - 150.0, "CRB dominates FU area");
        let rf_sweep = area_mm2(&ArchConfig::craterlake().with_rf_bytes(100 << 20));
        assert!(rf_sweep.rf < 80.0);
    }
}
