//! Architecture configurations: CraterLake, its ablations, and F1+.

use cl_isa::FuKind;

/// Inter-lane-group network style (Sec. 4.3, Sec. 5.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetworkKind {
    /// CraterLake's fixed permutation network: carries only the
    /// NTT/automorphism transposes; cheap (wires + registers).
    FixedTranspose,
    /// A crossbar between compute clusters with residue-polynomial tiling
    /// (F1's organization): every keyswitch redistributes residue
    /// polynomials all-to-all, costing ~2.4x more traffic at 2x the peak
    /// bandwidth and 16x the area.
    Crossbar,
}

/// An accelerator configuration. Construct via the named constructors and
/// adjust with the `with_*` methods.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchConfig {
    /// Display name.
    pub name: String,
    /// Clock frequency in GHz (cycles are converted to seconds with this).
    pub freq_ghz: f64,
    /// Total vector lanes `E` (one element per lane per cycle per FU).
    pub lanes: u64,
    /// Number of physically distinct lane groups `G`.
    pub lane_groups: u64,
    /// Largest natively supported ring degree.
    pub n_max: usize,
    /// Residue word width in bits (storage accounting).
    pub word_bits: u32,
    /// Functional-unit instances per kind, in units of full-`E`-lane FUs.
    /// Fractional values model architectures whose aggregate throughput per
    /// kind differs (F1+).
    pub fu_counts: Vec<(FuKind, f64)>,
    /// Whether the change-RNS-base unit exists (Sec. 5.1). Without it, CRB
    /// work lowers to discrete multiply/add passes through the register
    /// file.
    pub has_crb: bool,
    /// Whether the keyswitch-hint generator exists (Sec. 5.2). Without it,
    /// full hints are stored and fetched.
    pub has_kshgen: bool,
    /// Whether vector chaining is available (Sec. 5.4). Chaining divides
    /// keyswitch register-file traffic by ~3.5.
    pub chaining: bool,
    /// On-chip register-file capacity in bytes.
    pub rf_bytes: u64,
    /// Emulated register-file read/write ports; RF bandwidth is
    /// `ports * lanes` words per cycle.
    pub rf_ports: u64,
    /// Off-chip bandwidth in bytes per cycle (HBM2E: 512 GB/s per PHY at
    /// 1 GHz).
    pub hbm_bytes_per_cycle: f64,
    /// Inter-group network style.
    pub network: NetworkKind,
    /// Network bandwidth in words per cycle (4E for the fixed transpose
    /// network, Sec. 4.2).
    pub net_words_per_cycle: f64,
}

impl ArchConfig {
    /// The default CraterLake configuration (Secs. 4-7): 2,048 lanes in 8
    /// groups, 256 MB register file with 12 emulated ports, 2 HBM2E PHYs,
    /// CRB + KSHGen + chaining, fixed transpose network at 4E words/cycle.
    pub fn craterlake() -> Self {
        Self {
            name: "CraterLake".into(),
            freq_ghz: 1.0,
            lanes: 2048,
            lane_groups: 8,
            n_max: 1 << 16,
            word_bits: 28,
            fu_counts: vec![
                (FuKind::Mul, 5.0),
                (FuKind::Add, 5.0),
                (FuKind::Ntt, 2.0),
                (FuKind::Automorphism, 1.0),
                (FuKind::Crb, 1.0),
                (FuKind::KshGen, 1.0),
            ],
            has_crb: true,
            has_kshgen: true,
            chaining: true,
            rf_bytes: 256 << 20,
            rf_ports: 12,
            hbm_bytes_per_cycle: 1024.0,
            network: NetworkKind::FixedTranspose,
            net_words_per_cycle: 4.0 * 2048.0,
        }
    }

    /// The CraterLake variant with native `N = 128K` support (Sec. 9.4):
    /// doubled CRB buffers and an extra NTT butterfly stage (+27.4 mm^2).
    pub fn craterlake_128k() -> Self {
        let mut c = Self::craterlake();
        c.name = "CraterLake-128K".into();
        c.n_max = 1 << 17;
        c
    }

    /// Table 4 ablation: no KSHGen — full keyswitch hints are stored and
    /// fetched from memory.
    pub fn without_kshgen(mut self) -> Self {
        self.name = format!("{} -KSHGen", self.name);
        self.has_kshgen = false;
        self.fu_counts.retain(|(k, _)| *k != FuKind::KshGen);
        self
    }

    /// Table 4 ablation: no CRB and no vector chaining — change-RNS-base
    /// work executes as discrete multiply/add passes through the register
    /// file.
    pub fn without_crb_chaining(mut self) -> Self {
        self.name = format!("{} -CRB/chain", self.name);
        self.has_crb = false;
        self.chaining = false;
        self.fu_counts.retain(|(k, _)| *k != FuKind::Crb);
        self
    }

    /// Table 4 ablation: replace the fixed transpose network and polynomial
    /// tiling with F1+'s crossbar and residue-polynomial tiling (2x peak
    /// bandwidth, ~2.4x traffic, 16x area).
    pub fn with_crossbar_network(mut self) -> Self {
        self.name = format!("{} xbar-net", self.name);
        self.network = NetworkKind::Crossbar;
        // The crossbar is 16x larger in area but provides no more wire
        // bandwidth; residue-polynomial tiling then pushes ~2.4x more
        // traffic through it (Sec. 4.3).
        self
    }

    /// Changes the register-file capacity (Fig. 11 sweep).
    pub fn with_rf_bytes(mut self, bytes: u64) -> Self {
        self.name = format!("{} rf={}MB", self.name, bytes >> 20);
        self.rf_bytes = bytes;
        self
    }

    /// The F1+ baseline (Sec. 8): F1 scaled to 32 clusters x 256 lanes with
    /// a 256 MB scratchpad — same or higher throughput than CraterLake on
    /// basic ops (2x the NTT and 2.5x the multiply/add throughput), but no
    /// CRB, no KSHGen, no chaining, and a crossbar network with
    /// residue-polynomial tiling.
    pub fn f1_plus() -> Self {
        Self {
            name: "F1+".into(),
            freq_ghz: 1.0,
            lanes: 2048,
            lane_groups: 32,
            n_max: 1 << 16,
            word_bits: 32,
            fu_counts: vec![
                // Sec. 9.3: without CRB/chaining CraterLake has "50% of the
                // NTT and 40% of the multiply/add throughput of F1+".
                (FuKind::Mul, 12.5),
                (FuKind::Add, 12.5),
                (FuKind::Ntt, 4.0),
                (FuKind::Automorphism, 4.0),
            ],
            has_crb: false,
            has_kshgen: false,
            chaining: false,
            rf_bytes: 256 << 20,
            // Effective global register-file bandwidth in E-wide port
            // equivalents. F1's per-cluster register files were sized for
            // the NTT-dominated standard keyswitch; the element-wise
            // multiply/accumulate streams of boosted keyswitching need
            // "over 100 register file ports" to keep its FUs busy
            // (Sec. 2.5), and F1+'s banked design sustains only a few
            // effective ports on those access patterns.
            rf_ports: 6,
            hbm_bytes_per_cycle: 1024.0,
            network: NetworkKind::Crossbar,
            net_words_per_cycle: 2.0 * 4.0 * 2048.0,
        }
    }

    /// FU instances of a kind (0 if absent).
    pub fn fu_count(&self, kind: FuKind) -> f64 {
        self.fu_counts
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, c)| *c)
            .unwrap_or(0.0)
    }

    /// Total FU instances (for utilization averaging).
    pub fn total_fus(&self) -> f64 {
        self.fu_counts.iter().map(|(_, c)| c).sum()
    }

    /// Cycles for one residue-polynomial pass (`N/E`).
    pub fn pass_cycles(&self, n: usize) -> f64 {
        n as f64 / self.lanes as f64
    }

    /// Register-file bandwidth in words per cycle.
    pub fn rf_words_per_cycle(&self) -> f64 {
        (self.rf_ports * self.lanes) as f64
    }

    /// Off-chip bandwidth in words per cycle.
    pub fn hbm_words_per_cycle(&self) -> f64 {
        self.hbm_bytes_per_cycle / (self.word_bits as f64 / 8.0)
    }

    /// Bytes per residue word.
    pub fn word_bytes(&self) -> f64 {
        self.word_bits as f64 / 8.0
    }

    /// Converts cycles to milliseconds at the configured frequency.
    pub fn cycles_to_ms(&self, cycles: f64) -> f64 {
        cycles / (self.freq_ghz * 1e9) * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn craterlake_defaults_match_paper() {
        let c = ArchConfig::craterlake();
        assert_eq!(c.lanes, 2048);
        assert_eq!(c.lane_groups, 8);
        assert_eq!(c.rf_bytes, 256 << 20);
        assert_eq!(c.word_bits, 28);
        // 15 FUs total: CRB, 2 NTT, Aut, KSHGen, 5 Mul, 5 Add (Table 2).
        assert_eq!(c.total_fus(), 15.0);
        // A 64K-element vector takes 32 cycles per FU pass (Sec. 4.1).
        assert_eq!(c.pass_cycles(1 << 16), 32.0);
        // 2 HBM2E PHYs at 512 GB/s and 1 GHz.
        assert!((c.hbm_bytes_per_cycle - 1024.0).abs() < 1e-9);
        // Fixed transpose network: 4E elements/cycle = 8192 words/cycle
        // (~29 TB/s at 28 bits, Sec. 4.2).
        let tb_s = c.net_words_per_cycle * c.word_bytes() * c.freq_ghz * 1e9 / 1e12;
        assert!((25.0..30.0).contains(&tb_s), "{tb_s} TB/s");
    }

    #[test]
    fn f1_plus_throughput_ratios() {
        let cl = ArchConfig::craterlake();
        let f1 = ArchConfig::f1_plus();
        // Sec. 9.3: CraterLake has 50% of F1+'s NTT and 40% of its mul/add
        // throughput.
        assert!((cl.fu_count(FuKind::Ntt) / f1.fu_count(FuKind::Ntt) - 0.5).abs() < 1e-9);
        assert!((cl.fu_count(FuKind::Mul) / f1.fu_count(FuKind::Mul) - 0.4).abs() < 1e-9);
        assert!(!f1.has_crb && !f1.has_kshgen && !f1.chaining);
        assert_eq!(f1.network, NetworkKind::Crossbar);
    }

    #[test]
    fn ablations_strip_features() {
        let c = ArchConfig::craterlake().without_kshgen();
        assert!(!c.has_kshgen);
        assert_eq!(c.fu_count(FuKind::KshGen), 0.0);
        let c = ArchConfig::craterlake().without_crb_chaining();
        assert!(!c.has_crb && !c.chaining);
        assert_eq!(c.fu_count(FuKind::Crb), 0.0);
        let c = ArchConfig::craterlake().with_crossbar_network();
        assert_eq!(c.network, NetworkKind::Crossbar);
    }

    #[test]
    fn rf_sweep_changes_capacity_only() {
        let base = ArchConfig::craterlake();
        let small = ArchConfig::craterlake().with_rf_bytes(100 << 20);
        assert_eq!(small.rf_bytes, 100 << 20);
        assert_eq!(small.rf_ports, base.rf_ports);
        assert_eq!(small.fu_counts, base.fu_counts);
    }
}
