//! Bounded hot cache of materialized keyswitch hints — the software
//! analogue of CraterLake's on-chip hint storage fed by the KSHGen unit.
//!
//! Compact keys ([`CompactKeySwitchKey`]) keep only the seed and the
//! non-random `k0` halves resident; applying one requires the full
//! materialized [`KeySwitchKey`]. This cache bounds how many materialized
//! hints exist at once: a hit returns the shared `Arc` immediately, a miss
//! expands through the seeded generator (outside the lock, so concurrent
//! expansions of *different* keys overlap) and inserts the result, evicting
//! colder hints until the byte budget holds again.
//!
//! Two eviction policies layer on one mechanism:
//!
//! - **LRU baseline**: every access stamps a monotone tick; the victim is
//!   the least-recently-stamped entry.
//! - **Belady oracle** ([`HintCache::plan`]): when the caller knows its
//!   rotation schedule (a BSGS transform, a pipeline's hoisted-rotation
//!   groups), it installs the future access sequence and eviction follows
//!   the MIN rule the `cl-core` residency machinery uses for operand
//!   scheduling — evict first what the schedule proves dead (no next use),
//!   otherwise what is reused farthest in the future, falling back to LRU
//!   for entries outside the plan.
//!
//! Evicting an entry only drops the cache's reference: callers holding the
//! `Arc` keep computing with it, and a later re-expansion regenerates a
//! bit-identical key (the integrity digest proves it), so eviction can
//! never change results — only regen cost, which `cl-trace` attributes via
//! the `hint_regen` counter.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::error::FheResult;
use crate::keys::{CompactKeySwitchKey, KeySwitchKey};
use crate::CkksContext;

/// Identity of a cached hint: the parameter fingerprint (two tenants with
/// different parameter sets never share an entry even on a digest
/// collision) plus the key's integrity digest.
pub type HintId = (u64, u64);

/// Counters describing cache behaviour since construction (or the last
/// [`HintCache::reset_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HintCacheStats {
    /// Lookups served from a resident materialized hint.
    pub hits: u64,
    /// Lookups that had to expand from the compact form.
    pub misses: u64,
    /// Materialized hints dropped to fit the byte budget.
    pub evictions: u64,
    /// Bytes of materialized hint payload currently resident.
    pub bytes_resident: usize,
}

struct Entry {
    key: Arc<KeySwitchKey>,
    bytes: usize,
    last_used: u64,
}

#[derive(Default)]
struct Plan {
    /// Future hint accesses in schedule order.
    schedule: Vec<HintId>,
    /// Next schedule position not yet consumed.
    cursor: usize,
}

impl Plan {
    /// Position of the next use of `id` at or after the cursor, if any.
    fn next_use(&self, id: HintId) -> Option<usize> {
        self.schedule[self.cursor.min(self.schedule.len())..]
            .iter()
            .position(|&s| s == id)
    }
}

#[derive(Default)]
struct Inner {
    entries: HashMap<HintId, Entry>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    plan: Option<Plan>,
}

impl Inner {
    fn touch(&mut self, id: HintId) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.entries.get_mut(&id) {
            e.last_used = tick;
        }
        // Consume the schedule head when the access matches it, so
        // next-use distances stay anchored to the pipeline's position.
        if let Some(plan) = &mut self.plan {
            while plan.cursor < plan.schedule.len() && plan.schedule[plan.cursor] == id {
                plan.cursor += 1;
            }
        }
    }

    /// Evicts until the budget holds, never evicting `keep` (the entry the
    /// current caller is about to use) and always leaving at least one
    /// entry — a single hint larger than the whole budget must still be
    /// usable.
    fn evict_to_fit(&mut self, capacity: usize, keep: HintId) {
        while self.bytes > capacity && self.entries.len() > 1 {
            let victim = self.pick_victim(keep);
            let Some(victim) = victim else { break };
            if let Some(e) = self.entries.remove(&victim) {
                self.bytes -= e.bytes;
                self.evictions += 1;
            }
        }
    }

    fn pick_victim(&self, keep: HintId) -> Option<HintId> {
        let candidates = self.entries.iter().filter(|(&id, _)| id != keep);
        match &self.plan {
            Some(plan) => {
                // Belady/MIN, mirroring cl-core's residency policy: dead
                // entries first (no next use in the remaining schedule),
                // then the farthest next use. Entries the plan does not
                // mention are "dead to the schedule" and rank by LRU among
                // themselves, before any entry with a real next use.
                candidates
                    .map(|(&id, e)| {
                        let next = plan.next_use(id);
                        // Sort key: planned entries by descending next use;
                        // unplanned/dead ones always ahead, oldest first.
                        match next {
                            None => (2u8, u64::MAX - e.last_used, id),
                            Some(pos) => (1, pos as u64, id),
                        }
                    })
                    .max()
                    .map(|(_, _, id)| id)
            }
            None => candidates
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&id, _)| id),
        }
    }
}

/// A bytes-bounded, thread-safe cache of materialized keyswitch hints,
/// shareable across tenants (entries are keyed by parameter fingerprint and
/// integrity digest, so tenants with identical keys deduplicate and tenants
/// with different parameters never collide).
pub struct HintCache {
    capacity_bytes: usize,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for HintCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("HintCache")
            .field("capacity_bytes", &self.capacity_bytes)
            .field("stats", &s)
            .finish()
    }
}

/// Default hot-hint budget when `CL_HINT_CACHE_BYTES` is unset: 64 MiB,
/// comfortably above one bootstrap-capable working set at bench shapes.
pub const DEFAULT_HINT_CACHE_BYTES: usize = 64 << 20;

impl HintCache {
    /// A cache bounded to `capacity_bytes` of materialized hint payload
    /// (a budget of 0 still holds one entry at a time — see eviction
    /// semantics).
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            capacity_bytes,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The process-wide shared cache, sized once from `CL_HINT_CACHE_BYTES`
    /// (bytes; defaults to [`DEFAULT_HINT_CACHE_BYTES`]).
    pub fn global() -> &'static HintCache {
        static GLOBAL: OnceLock<HintCache> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cap = std::env::var("CL_HINT_CACHE_BYTES")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or(DEFAULT_HINT_CACHE_BYTES);
            HintCache::new(cap)
        })
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .expect("hint cache poisoned: a holder panicked mid-update")
    }

    /// Returns the materialized hint for `compact`, expanding it through
    /// the seeded generator on a miss.
    ///
    /// Expansion runs outside the cache lock, so concurrent misses on
    /// different keys overlap; concurrent misses on the *same* key race
    /// benignly (both expand bit-identically, the resident copy wins).
    ///
    /// # Errors
    ///
    /// [`crate::FheError::CorruptKey`] when expansion fails the integrity
    /// digest ([`CompactKeySwitchKey::expand`]).
    pub fn get_or_expand(
        &self,
        ctx: &CkksContext,
        compact: &CompactKeySwitchKey,
    ) -> FheResult<Arc<KeySwitchKey>> {
        let id: HintId = (ctx.params_fingerprint(), compact.integrity_digest());
        {
            let mut inner = self.lock();
            if let Some(e) = inner.entries.get(&id) {
                let key = Arc::clone(&e.key);
                inner.hits += 1;
                inner.touch(id);
                return Ok(key);
            }
            inner.misses += 1;
        }
        let expanded = Arc::new(compact.expand(ctx)?);
        let bytes = expanded.resident_bytes();
        let mut inner = self.lock();
        if let Some(e) = inner.entries.get(&id) {
            // Lost the expansion race — keep the resident copy so every
            // caller shares one allocation.
            let key = Arc::clone(&e.key);
            inner.touch(id);
            return Ok(key);
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.insert(
            id,
            Entry {
                key: Arc::clone(&expanded),
                bytes,
                last_used: tick,
            },
        );
        inner.bytes += bytes;
        inner.touch(id);
        inner.evict_to_fit(self.capacity_bytes, id);
        Ok(expanded)
    }

    /// Installs the future access schedule (a sequence of
    /// [`HintCache::hint_id`] values in execution order) as the Belady
    /// eviction oracle, replacing any previous plan. Accesses matching the
    /// schedule head advance it; eviction prefers entries the remaining
    /// schedule proves dead, then the farthest next use.
    pub fn plan(&self, schedule: Vec<HintId>) {
        self.lock().plan = Some(Plan {
            schedule,
            cursor: 0,
        });
    }

    /// Clears the Belady plan, returning to pure LRU.
    pub fn clear_plan(&self) {
        self.lock().plan = None;
    }

    /// Expands `compact` into the cache if absent, without counting a hit
    /// or miss — used to warm the hints an upcoming hoisted-rotation group
    /// needs while earlier work is still executing.
    ///
    /// # Errors
    ///
    /// Same contract as [`HintCache::get_or_expand`].
    pub fn prefetch(&self, ctx: &CkksContext, compact: &CompactKeySwitchKey) -> FheResult<()> {
        let id: HintId = (ctx.params_fingerprint(), compact.integrity_digest());
        if self.lock().entries.contains_key(&id) {
            return Ok(());
        }
        let expanded = Arc::new(compact.expand(ctx)?);
        let bytes = expanded.resident_bytes();
        let mut inner = self.lock();
        if inner.entries.contains_key(&id) {
            return Ok(());
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.insert(
            id,
            Entry {
                key: expanded,
                bytes,
                last_used: tick,
            },
        );
        inner.bytes += bytes;
        inner.evict_to_fit(self.capacity_bytes, id);
        Ok(())
    }

    /// The cache identity of a compact key under `ctx` — the value
    /// [`HintCache::plan`] schedules are built from.
    pub fn hint_id(ctx: &CkksContext, compact: &CompactKeySwitchKey) -> HintId {
        (ctx.params_fingerprint(), compact.integrity_digest())
    }

    /// Whether the materialized form of `compact` is currently resident.
    pub fn contains(&self, ctx: &CkksContext, compact: &CompactKeySwitchKey) -> bool {
        self.lock()
            .entries
            .contains_key(&Self::hint_id(ctx, compact))
    }

    /// Current counters.
    pub fn stats(&self) -> HintCacheStats {
        let inner = self.lock();
        HintCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            bytes_resident: inner.bytes,
        }
    }

    /// Zeroes the hit/miss/eviction counters (resident bytes are a gauge
    /// and unaffected).
    pub fn reset_stats(&self) {
        let mut inner = self.lock();
        inner.hits = 0;
        inner.misses = 0;
        inner.evictions = 0;
    }

    /// Drops every resident entry (outstanding `Arc`s keep their keys).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.entries.clear();
        inner.bytes = 0;
        inner.plan = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CkksParams, KeySwitchKind};
    use rand::SeedableRng;

    fn ctx() -> CkksContext {
        let params = CkksParams::builder()
            .ring_degree(64)
            .levels(3)
            .special_limbs(3)
            .limb_bits(36)
            .scale_bits(30)
            .build()
            .unwrap();
        CkksContext::new(params).unwrap()
    }

    fn compact_keys(c: &CkksContext, n: usize) -> Vec<CompactKeySwitchKey> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let sk = c.keygen(&mut rng);
        (0..n)
            .map(|i| {
                c.rotation_keygen(&sk, i as i64 + 1, KeySwitchKind::Boosted { digits: 1 }, &mut rng)
                    .to_compact()
            })
            .collect()
    }

    #[test]
    fn hit_miss_and_bit_exact_reexpansion() {
        let c = ctx();
        let keys = compact_keys(&c, 1);
        let cache = HintCache::new(usize::MAX);
        let a = cache.get_or_expand(&c, &keys[0]).unwrap();
        let b = cache.get_or_expand(&c, &keys[0]).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hit must share the resident Arc");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.bytes_resident, a.resident_bytes());
        // Eviction then re-expansion reproduces the identical key.
        cache.clear();
        let c2 = cache.get_or_expand(&c, &keys[0]).unwrap();
        assert_eq!(c2.integrity_digest(), a.integrity_digest());
        assert!(c2.verify_integrity());
    }

    #[test]
    fn lru_evicts_coldest_within_budget() {
        let c = ctx();
        let keys = compact_keys(&c, 3);
        let one = keys[0].expand(&c).unwrap().resident_bytes();
        // Room for two materialized hints.
        let cache = HintCache::new(2 * one);
        let _a = cache.get_or_expand(&c, &keys[0]).unwrap();
        let _b = cache.get_or_expand(&c, &keys[1]).unwrap();
        // Touch key 0 so key 1 is coldest, then insert key 2.
        let _a2 = cache.get_or_expand(&c, &keys[0]).unwrap();
        let _c = cache.get_or_expand(&c, &keys[2]).unwrap();
        assert!(cache.contains(&c, &keys[0]));
        assert!(!cache.contains(&c, &keys[1]), "coldest entry must go");
        assert!(cache.contains(&c, &keys[2]));
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.bytes_resident <= 2 * one);
    }

    #[test]
    fn belady_plan_evicts_dead_then_farthest() {
        let c = ctx();
        let keys = compact_keys(&c, 3);
        let one = keys[0].expand(&c).unwrap().resident_bytes();
        let cache = HintCache::new(2 * one);
        let id = |k: &CompactKeySwitchKey| HintCache::hint_id(&c, k);
        // Schedule: 0, 1, 2, 0 — after accessing 0 and 1, key 0 is reused
        // later but key 1 is dead, so inserting 2 must evict 1 even though
        // 0 is older by LRU.
        cache.plan(vec![id(&keys[0]), id(&keys[1]), id(&keys[2]), id(&keys[0])]);
        let _a = cache.get_or_expand(&c, &keys[0]).unwrap();
        let _b = cache.get_or_expand(&c, &keys[1]).unwrap();
        let _c2 = cache.get_or_expand(&c, &keys[2]).unwrap();
        assert!(
            cache.contains(&c, &keys[0]),
            "scheduled reuse must stay resident"
        );
        assert!(!cache.contains(&c, &keys[1]), "dead entry must go first");
    }

    #[test]
    fn prefetch_warms_without_counting() {
        let c = ctx();
        let keys = compact_keys(&c, 1);
        let cache = HintCache::new(usize::MAX);
        cache.prefetch(&c, &keys[0]).unwrap();
        assert!(cache.contains(&c, &keys[0]));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 0));
        let _k = cache.get_or_expand(&c, &keys[0]).unwrap();
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn single_oversized_entry_stays_usable() {
        let c = ctx();
        let keys = compact_keys(&c, 2);
        let cache = HintCache::new(1); // budget smaller than any hint
        let a = cache.get_or_expand(&c, &keys[0]).unwrap();
        assert!(a.verify_integrity());
        assert!(cache.contains(&c, &keys[0]));
        // Inserting a second evicts down to one entry again.
        let b = cache.get_or_expand(&c, &keys[1]).unwrap();
        assert!(b.verify_integrity());
        assert!(cache.contains(&c, &keys[1]));
        assert!(!cache.contains(&c, &keys[0]));
    }
}
