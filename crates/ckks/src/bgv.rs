//! The BGV scheme over the same RNS substrate.
//!
//! CraterLake is not CKKS-specific: "the commonalities in their underlying
//! implementation make it possible for the same hardware to accelerate
//! many schemes efficiently — CraterLake supports CKKS, BGV, and GSW"
//! (Sec. 2). This module demonstrates that claim on the software side: BGV
//! (exact integer arithmetic modulo a plaintext prime `t`) built from the
//! same residue polynomials, NTTs, and keyswitching as CKKS.
//!
//! Differences from CKKS, all at the edges:
//! - plaintexts are vectors over `Z_t` packed via an NTT over `t` (slots
//!   require `t ≡ 1 mod 2N`),
//! - encryption scales the noise by `t` (`c0 + c1·s = m + t·e`),
//! - instead of rescaling, BGV uses *modulus switching* with a
//!   `t`-correction that keeps the plaintext exact while dividing the
//!   noise by the dropped modulus.

use cl_math::NttTable;
use cl_rns::RnsPoly;
use rand::Rng;

use crate::error::{FheError, FheResult};
use crate::noise::log2_add;
use crate::{Ciphertext, CkksContext, KeySwitchKey, SecretKey};

/// A BGV instance layered over a [`CkksContext`]'s ring and keyswitching.
#[derive(Debug)]
pub struct BgvContext<'a> {
    inner: &'a CkksContext,
    t: u64,
    /// NTT over the plaintext modulus, for slot packing.
    pt_ntt: NttTable,
}

impl<'a> BgvContext<'a> {
    /// Fallible constructor: a BGV view with plaintext modulus `t`.
    ///
    /// # Errors
    ///
    /// [`FheError::InvalidParams`] if `t` is not an NTT-friendly prime for
    /// the ring degree (required for slot packing) or collides with a
    /// ciphertext modulus.
    pub fn try_new(inner: &'a CkksContext, t: u64) -> FheResult<Self> {
        let n = inner.params().ring_degree();
        let pt_ntt = NttTable::new(n, t).ok_or_else(|| FheError::InvalidParams {
            op: "bgv_new",
            reason: format!("{t} is not an NTT-friendly prime for N={n}"),
        })?;
        for limb in inner.rns().q_basis(inner.max_level()).0 {
            if inner.rns().modulus_value(limb) == t {
                return Err(FheError::InvalidParams {
                    op: "bgv_new",
                    reason: format!("plaintext modulus {t} collides with ciphertext limb {limb}"),
                });
            }
        }
        Ok(Self { inner, t, pt_ntt })
    }

    /// Creates a BGV view with plaintext modulus `t`.
    ///
    /// # Panics
    ///
    /// Panics on the conditions [`BgvContext::try_new`] reports as errors.
    pub fn new(inner: &'a CkksContext, t: u64) -> Self {
        Self::try_new(inner, t).unwrap_or_else(|e| panic!("BgvContext::new: {e}"))
    }

    /// The plaintext modulus.
    pub fn plaintext_modulus(&self) -> u64 {
        self.t
    }

    /// Packs a vector over `Z_t` into a plaintext polynomial (slot
    /// encoding via the inverse plaintext NTT), lifted into the ciphertext
    /// ring at `level`.
    ///
    /// # Panics
    ///
    /// Panics if more than `N` values are supplied or any is `>= t`.
    pub fn encode(&self, vals: &[u64], level: usize) -> RnsPoly {
        let n = self.inner.params().ring_degree();
        assert!(vals.len() <= n, "too many values");
        assert!(vals.iter().all(|&v| v < self.t), "value out of Z_t");
        let mut slots = vec![0u64; n];
        slots[..vals.len()].copy_from_slice(vals);
        // Slots live in the NTT domain over t; inverse-transform to get
        // polynomial coefficients.
        self.pt_ntt.inverse(&mut slots);
        let tm = self.pt_ntt.modulus();
        let signed: Vec<i64> = slots.iter().map(|&c| tm.lift_centered(c)).collect();
        let rns = self.inner.rns();
        let mut poly = rns.from_signed_coeffs(&signed, &rns.q_basis(level));
        rns.to_ntt(&mut poly);
        poly
    }

    /// Unpacks a plaintext polynomial (given as signed coefficients mod
    /// `t`) back to slot values.
    fn decode_coeffs(&self, signed: &[i64]) -> Vec<u64> {
        let tm = *self.pt_ntt.modulus();
        let mut slots: Vec<u64> = signed.iter().map(|&c| tm.from_i64(c)).collect();
        self.pt_ntt.forward(&mut slots);
        slots
    }

    /// Encrypts packed values at `level` under `sk`: `c0 + c1·s = m + t·e`.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        vals: &[u64],
        level: usize,
        sk: &SecretKey,
        rng: &mut R,
    ) -> Ciphertext {
        let rns = self.inner.rns();
        let basis = rns.q_basis(level);
        let m = self.encode(vals, level);
        let a = rns.sample_uniform(&basis, rng);
        let mut e = rns.sample_error(&basis, rng);
        rns.to_ntt(&mut e);
        let e_t = rns.scalar_mul(&e, self.t);
        let s = rns.restrict(sk.poly(), &basis);
        let mut c0 = rns.neg(&rns.mul(&a, &s));
        rns.add_assign(&mut c0, &e_t);
        rns.add_assign(&mut c0, &m);
        // BGV noise is the error scaled by t: t·e.
        self.inner
            .ciphertext_from_parts(c0, a, level, 1.0)
            .with_noise_bits(self.inner.est_fresh_bits() + (self.t as f64).log2())
    }

    /// Decrypts to slot values over `Z_t`.
    ///
    /// # Panics
    ///
    /// Panics if the noise has overflowed the ciphertext modulus (the
    /// centered lift would no longer be `m + t·e`).
    pub fn decrypt(&self, ct: &Ciphertext, sk: &SecretKey) -> Vec<u64> {
        let rns = self.inner.rns();
        let basis = rns.q_basis(ct.level());
        let s = rns.restrict(sk.poly(), &basis);
        let mut phase = rns.mul(ct.c1(), &s);
        rns.add_assign(&mut phase, ct.c0());
        rns.from_ntt(&mut phase);
        // Centered lift of each coefficient, then reduce mod t.
        let n = self.inner.params().ring_degree();
        let moduli: Vec<u64> = basis.0.iter().map(|&l| rns.modulus_value(l)).collect();
        let q_big = cl_math::BigUint::product(&moduli);
        let mut signed = vec![0i64; n];
        if phase.num_limbs() == 1 {
            let m0 = rns.modulus(basis.0[0]);
            for (i, s) in signed.iter_mut().enumerate() {
                *s = m0.lift_centered(phase.limb(0)[i]);
            }
        } else {
            let mut residues = vec![0u64; phase.num_limbs()];
            for (i, out) in signed.iter_mut().enumerate() {
                for (k, r) in residues.iter_mut().enumerate() {
                    *r = phase.limb(k)[i];
                }
                let big = cl_math::BigUint::crt_combine(&residues, &moduli);
                let (neg, mag) = big.centered(&q_big);
                let r = mag.rem_u64(self.t) as i64;
                *out = if neg { -r } else { r };
            }
        }
        self.decode_coeffs(&signed)
    }

    /// Generates a relinearization key whose noise is a multiple of `t`
    /// (required for exact BGV multiplication; also usable by CKKS).
    pub fn relin_keygen<R: Rng + ?Sized>(
        &self,
        sk: &SecretKey,
        kind: crate::KeySwitchKind,
        rng: &mut R,
    ) -> KeySwitchKey {
        let rns = self.inner.rns();
        let s2 = rns.mul(sk.poly(), sk.poly());
        self.inner
            .keyswitch_keygen_with_error_scale(&s2, sk, kind, self.t, rng)
    }

    /// Fallible homomorphic addition (exact over `Z_t`).
    ///
    /// # Errors
    ///
    /// [`FheError::LevelMismatch`] when the operand levels differ, plus
    /// any guardrail failure of the underlying context.
    pub fn try_add(&self, a: &Ciphertext, b: &Ciphertext) -> FheResult<Ciphertext> {
        self.inner.try_add(a, b)
    }

    /// Homomorphic addition (exact over `Z_t`).
    ///
    /// # Panics
    ///
    /// Panics if levels differ.
    #[must_use]
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.try_add(a, b).unwrap_or_else(|e| panic!("bgv add: {e}"))
    }

    /// Fallible homomorphic multiplication with relinearization (exact
    /// over `Z_t`).
    ///
    /// The digit decomposition, hint products and accumulation are the
    /// same operations CKKS keyswitching uses (the hardware-sharing claim
    /// of Sec. 2); only the closing ModDown differs — BGV divides by `P`
    /// with a `t`-congruent correction so the injected rounding stays
    /// `≡ 0 (mod t)`.
    ///
    /// # Errors
    ///
    /// [`FheError::LevelMismatch`] when levels differ, plus any guardrail
    /// failure (including [`FheError::CorruptKey`] for a tampered hint
    /// under the strict policy).
    pub fn try_mul(
        &self,
        a: &Ciphertext,
        b: &Ciphertext,
        relin: &KeySwitchKey,
    ) -> FheResult<Ciphertext> {
        self.inner.guard_operands("bgv_mul", &[a, b])?;
        self.inner.guard_key("bgv_mul", relin)?;
        if a.level() != b.level() {
            return Err(FheError::LevelMismatch {
                op: "bgv_mul",
                got: b.level(),
                want: a.level(),
            });
        }
        let rns = self.inner.rns();
        let d0 = rns.mul(a.c0(), b.c0());
        let mut d1 = rns.mul(a.c0(), b.c1());
        rns.mul_acc(&mut d1, a.c1(), b.c0());
        let d2 = rns.mul(a.c1(), b.c1());
        let (ks0, ks1) = self.keyswitch_exact(&d2, relin);
        let c0 = rns.add(&d0, &ks0);
        let c1 = rns.add(&d1, &ks1);
        // Coarse BGV noise model: the noise product t·e_a·t·e_b dominated
        // by each operand's noise riding on the other's t-bounded message,
        // soft-maxed with the (t-scaled) keyswitch error.
        let t_bits = (self.t as f64).log2();
        let est = log2_add(
            log2_add(a.noise_estimate_bits() + t_bits, b.noise_estimate_bits() + t_bits),
            self.inner.est_keyswitch_bits(a.level(), relin),
        );
        let out = self
            .inner
            .ciphertext_from_parts(c0, c1, a.level(), 1.0)
            .with_noise_bits(est);
        self.inner.guard_budget("bgv_mul", &out)?;
        Ok(out)
    }

    /// Homomorphic multiplication with relinearization (exact over `Z_t`).
    ///
    /// # Panics
    ///
    /// Panics if levels differ.
    #[must_use]
    pub fn mul(&self, a: &Ciphertext, b: &Ciphertext, relin: &KeySwitchKey) -> Ciphertext {
        self.try_mul(a, b, relin)
            .unwrap_or_else(|e| panic!("bgv mul: {e}"))
    }

    /// Boosted keyswitching with an exact, `t`-corrected ModDown: the
    /// up-conversion and hint products reuse the CKKS path; the division by
    /// `P` is done per coefficient over the integers (CRT), with the
    /// dropped part corrected to be `≡ 0 (mod t)` as in BGV modulus
    /// switching. Suitable for test-scale rings.
    fn keyswitch_exact(
        &self,
        c: &RnsPoly,
        ksk: &KeySwitchKey,
    ) -> (RnsPoly, RnsPoly) {
        use cl_math::BigUint;
        let inner = self.inner;
        let rns = inner.rns();
        let level = c.num_limbs();
        let qb = rns.q_basis(level);
        let special = inner.special_for(ksk.kind());
        assert!(special > 0, "BGV keyswitching requires special moduli");
        let pb = rns.p_basis(special);
        let target = qb.union(&pb);
        // Accumulate digit x hint products over Q·P (identical to CKKS).
        let mut c_coeff = c.clone();
        rns.from_ntt(&mut c_coeff);
        let mut acc0 = rns.zero(&target);
        acc0.set_ntt_form(true);
        let mut acc1 = acc0.clone();
        for (d, limbs) in ksk.digit_limbs.iter().enumerate() {
            let present: Vec<u32> =
                limbs.iter().copied().filter(|&l| (l as usize) < level).collect();
            if present.is_empty() {
                continue;
            }
            let digit_basis = cl_rns::Basis(present.clone());
            let ext_basis = cl_rns::Basis(
                target.0.iter().copied().filter(|l| !present.contains(l)).collect(),
            );
            let c_d = rns.restrict(&c_coeff, &digit_basis);
            let mut c_full = rns.zero(&target);
            let conv = inner.converter(&digit_basis, &ext_basis);
            let c_ext = conv.convert(rns, &c_d);
            for (pos, &limb) in target.0.iter().enumerate() {
                let src = if let Some(k) = digit_basis.0.iter().position(|&l| l == limb) {
                    c_d.limb(k)
                } else {
                    let k = ext_basis
                        .0
                        .iter()
                        .position(|&l| l == limb)
                        .expect("target basis is the disjoint union of digit and extension bases");
                    c_ext.limb(k)
                };
                c_full.limb_mut(pos).copy_from_slice(src);
            }
            rns.to_ntt(&mut c_full);
            let k0 = rns.restrict(&ksk.elems[d].0, &target);
            let k1 = rns.restrict(&ksk.elems[d].1, &target);
            rns.mul_acc(&mut acc0, &c_full, &k0);
            rns.mul_acc(&mut acc1, &c_full, &k1);
        }
        // Exact t-corrected ModDown per coefficient.
        let tm = cl_math::Modulus::new(self.t).expect("t in range");
        let all_moduli: Vec<u64> = target.0.iter().map(|&l| rns.modulus_value(l)).collect();
        let p_moduli: Vec<u64> = pb.0.iter().map(|&l| rns.modulus_value(l)).collect();
        let qp_big = BigUint::product(&all_moduli);
        let p_big = BigUint::product(&p_moduli);
        let p_mod_t = p_big.rem_u64(self.t);
        let p_inv_t = tm.inv(tm.reduce(p_mod_t));
        let n = c.n();
        let divide = |poly: &mut RnsPoly| -> RnsPoly {
            rns.from_ntt(poly);
            let mut out = rns.zero(&qb);
            let mut residues = vec![0u64; target.len()];
            for i in 0..n {
                for (k, r) in residues.iter_mut().enumerate() {
                    *r = poly.limb(k)[i];
                }
                let big = BigUint::crt_combine(&residues, &all_moduli);
                let (neg, mag) = big.centered(&qp_big);
                // delta = v mod P, centered; then corrected to be ≡ 0 mod t.
                let v_mod_p_raw = {
                    let r = mag.rem_big(&p_big);
                    if neg && !r.is_zero() {
                        // (-mag) mod P = P - r.
                        let mut x = p_big.clone();
                        x.sub_assign(&r);
                        x
                    } else {
                        r
                    }
                };
                let (d_neg, d_mag) = v_mod_p_raw.centered(&p_big);
                // delta as value mod t (signed).
                let d_mod_t = {
                    let r = d_mag.rem_u64(self.t);
                    if d_neg {
                        tm.neg(r)
                    } else {
                        r
                    }
                };
                // k = (-delta)*P^{-1} mod t, centered.
                let k_t = tm.mul(tm.neg(d_mod_t), p_inv_t);
                let k_c = tm.lift_centered(k_t);
                // quotient = (v - delta - P*k_c)/P = (v - delta)/P - k_c.
                // Compute (v - delta) as signed big-integer arithmetic:
                // v = (neg ? -mag : mag); delta = (d_neg ? -d_mag : d_mag).
                let (diff_neg, diff_mag) = match (neg, d_neg) {
                    (false, false) => {
                        if mag >= d_mag {
                            let mut x = mag.clone();
                            x.sub_assign(&d_mag);
                            (false, x)
                        } else {
                            let mut x = d_mag.clone();
                            x.sub_assign(&mag);
                            (true, x)
                        }
                    }
                    (false, true) => {
                        let mut x = mag.clone();
                        x.add_assign(&d_mag);
                        (false, x)
                    }
                    (true, false) => {
                        let mut x = mag.clone();
                        x.add_assign(&d_mag);
                        (true, x)
                    }
                    (true, true) => {
                        if mag >= d_mag {
                            let mut x = mag.clone();
                            x.sub_assign(&d_mag);
                            (true, x)
                        } else {
                            let mut x = d_mag.clone();
                            x.sub_assign(&mag);
                            (false, x)
                        }
                    }
                };
                // diff is divisible by P exactly.
                let mut quot = diff_mag.clone();
                let mut exact = true;
                for &pm in &p_moduli {
                    let (q2, r2) = quot.div_rem_u64(pm);
                    quot = q2;
                    exact &= r2 == 0;
                }
                debug_assert!(exact, "ModDown division must be exact");
                // result = (diff_sign)quot - k_c, then store mod each q.
                for (k, &limb) in qb.0.iter().enumerate() {
                    let m = rns.modulus(limb);
                    let q_res = quot.rem_u64(m.value());
                    let mut r = if diff_neg { m.neg(q_res) } else { q_res };
                    r = m.sub(r, m.from_i64(k_c));
                    out.limb_mut(k)[i] = r;
                }
            }
            rns.to_ntt(&mut out);
            out
        };
        let ks0 = divide(&mut acc0);
        let ks1 = divide(&mut acc1);
        (ks0, ks1)
    }

    /// Fallible BGV modulus switching: drops the top modulus `q_L`,
    /// dividing the noise by it while keeping the plaintext exact. The
    /// correction adds the multiple of `q_L` that makes the dropped part
    /// divisible *and* congruent to 0 mod t.
    ///
    /// # Errors
    ///
    /// [`FheError::InvalidParams`] at level 1 (no modulus left to drop),
    /// plus any guardrail failure.
    pub fn try_mod_switch(&self, ct: &Ciphertext) -> FheResult<Ciphertext> {
        self.inner.guard_operands("bgv_mod_switch", &[ct])?;
        if ct.level() < 2 {
            return Err(FheError::InvalidParams {
                op: "bgv_mod_switch",
                reason: "cannot switch a level-1 ciphertext".into(),
            });
        }
        let rns = self.inner.rns();
        let level = ct.level();
        let drop_limb = (level - 1) as u32;
        let q_last = rns.modulus_value(drop_limb);
        let keep = rns.q_basis(level - 1);
        let tm = cl_math::Modulus::new(self.t).expect("t in range");
        // q_last^{-1} mod t, for the congruence correction.
        let q_last_inv_t = tm.inv(tm.reduce(q_last));
        let switch_poly = |poly: &RnsPoly| -> RnsPoly {
            let mut p = poly.clone();
            rns.from_ntt(&mut p);
            // d = [c]_{q_last}, centered.
            let m_last = rns.modulus(drop_limb);
            let last_idx = p
                .basis()
                .0
                .iter()
                .position(|&l| l == drop_limb)
                .expect("top limb present");
            let d: Vec<i64> = p.limb(last_idx).iter().map(|&x| m_last.lift_centered(x)).collect();
            // delta = d + q_last * [(-d) * q_last^{-1} mod t], centered so
            // |delta| <= q_last * t / 2; delta ≡ d (mod q_last) and ≡ 0
            // (mod t), so (c - delta)/q_last is exact and preserves m mod t.
            let delta: Vec<i64> = d
                .iter()
                .map(|&di| {
                    let r = tm.from_i64(-di);
                    let k = tm.mul(r, q_last_inv_t);
                    let k_c = tm.lift_centered(k);
                    di + q_last as i64 * k_c
                })
                .collect();
            // out = (c - delta) / q_last over the kept limbs.
            let delta_poly = rns.from_signed_coeffs(&delta, &keep);
            let c_keep = rns.restrict(&p, &keep);
            let diff = rns.sub(&c_keep, &delta_poly);
            let inv: Vec<u64> = keep
                .0
                .iter()
                .map(|&l| {
                    let m = rns.modulus(l);
                    m.inv(m.reduce(q_last))
                })
                .collect();
            let mut out = rns.scalar_mul_per_limb(&diff, &inv);
            // The division multiplied the plaintext by q_last^{-1} mod t;
            // undo it with a scalar multiply by [q_last mod t].
            out = rns.scalar_mul(&out, tm.reduce(q_last));
            rns.to_ntt(&mut out);
            out
        };
        // The noise divides by the dropped modulus, floored by the
        // t-congruent correction (|delta| <= q_last·t/2 before division)
        // propagated through the secret.
        let est = log2_add(
            ct.noise_estimate_bits() - (q_last as f64).log2(),
            (self.t as f64 / 2.0).log2() + self.inner.est_round_floor(),
        );
        let out = self
            .inner
            .ciphertext_from_parts(switch_poly(ct.c0()), switch_poly(ct.c1()), level - 1, 1.0)
            .with_noise_bits(est);
        self.inner.guard_budget("bgv_mod_switch", &out)?;
        Ok(out)
    }

    /// BGV modulus switching (panicking twin of
    /// [`BgvContext::try_mod_switch`]).
    ///
    /// # Panics
    ///
    /// Panics at level 1.
    #[must_use]
    pub fn mod_switch(&self, ct: &Ciphertext) -> Ciphertext {
        self.try_mod_switch(ct)
            .unwrap_or_else(|e| panic!("bgv mod_switch: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CkksParams, KeySwitchKind};
    use rand::SeedableRng;

    const T: u64 = 65537; // 2^16 + 1: NTT-friendly for all N <= 2^15.

    fn setup(levels: usize) -> (CkksContext, SecretKey, rand::rngs::StdRng) {
        let params = CkksParams::builder()
            .ring_degree(128)
            .levels(levels)
            .special_limbs(levels)
            .limb_bits(45)
            .scale_bits(40)
            .build()
            .unwrap();
        let ctx = CkksContext::new(params).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let sk = ctx.keygen(&mut rng);
        (ctx, sk, rng)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let (ctx, sk, mut rng) = setup(2);
        let bgv = BgvContext::new(&ctx, T);
        let vals: Vec<u64> = (0..128).map(|i| (i * i + 7) % T).collect();
        let ct = bgv.encrypt(&vals, 2, &sk, &mut rng);
        assert_eq!(bgv.decrypt(&ct, &sk), vals);
    }

    #[test]
    fn addition_is_exact_mod_t() {
        let (ctx, sk, mut rng) = setup(2);
        let bgv = BgvContext::new(&ctx, T);
        let a: Vec<u64> = (0..64).map(|i| (i * 31) % T).collect();
        let b: Vec<u64> = (0..64).map(|i| (T - 1 - i as u64) % T).collect();
        let ca = bgv.encrypt(&a, 2, &sk, &mut rng);
        let cb = bgv.encrypt(&b, 2, &sk, &mut rng);
        let sum = bgv.decrypt(&bgv.add(&ca, &cb), &sk);
        for i in 0..64 {
            assert_eq!(sum[i], (a[i] + b[i]) % T);
        }
    }

    #[test]
    fn multiplication_is_exact_mod_t() {
        let (ctx, sk, mut rng) = setup(3);
        let bgv = BgvContext::new(&ctx, T);
        let relin = bgv.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let a: Vec<u64> = (0..32).map(|i| 3 + i as u64 * 1009).collect();
        let b: Vec<u64> = (0..32).map(|i| 5 + i as u64 * 2003).collect();
        let ca = bgv.encrypt(&a, 3, &sk, &mut rng);
        let cb = bgv.encrypt(&b, 3, &sk, &mut rng);
        let prod = bgv.decrypt(&bgv.mul(&ca, &cb, &relin), &sk);
        for i in 0..32 {
            assert_eq!(prod[i], a[i] * b[i] % T, "slot {i}");
        }
    }

    #[test]
    fn mod_switch_preserves_plaintext() {
        let (ctx, sk, mut rng) = setup(3);
        let bgv = BgvContext::new(&ctx, T);
        let vals: Vec<u64> = (0..128).map(|i| (i * 12345) % T).collect();
        let ct = bgv.encrypt(&vals, 3, &sk, &mut rng);
        let switched = bgv.mod_switch(&ct);
        assert_eq!(switched.level(), 2);
        assert_eq!(bgv.decrypt(&switched, &sk), vals);
        let twice = bgv.mod_switch(&switched);
        assert_eq!(twice.level(), 1);
        assert_eq!(bgv.decrypt(&twice, &sk), vals);
    }

    #[test]
    fn multiplication_chain_with_mod_switching() {
        // Depth-3 chain: x^(2^3) over Z_t, switching after each product to
        // control noise — BGV's analogue of CKKS's Fig. 2 budget story.
        let (ctx, sk, mut rng) = setup(5);
        let bgv = BgvContext::new(&ctx, T);
        let relin = bgv.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let x: Vec<u64> = (0..16).map(|i| 2 + i as u64).collect();
        let mut ct = bgv.encrypt(&x, 5, &sk, &mut rng);
        let mut expect = x.clone();
        for _ in 0..3 {
            ct = bgv.mod_switch(&bgv.mul(&ct, &ct, &relin));
            for v in expect.iter_mut() {
                *v = *v * *v % T;
            }
        }
        assert_eq!(ct.level(), 2);
        let got = bgv.decrypt(&ct, &sk);
        assert_eq!(&got[..16], &expect[..]);
    }

    #[test]
    #[should_panic(expected = "NTT-friendly")]
    fn rejects_bad_plaintext_modulus() {
        let (ctx, _, _) = setup(2);
        let _ = BgvContext::new(&ctx, 65539); // prime but 65539-1 not divisible by 256
    }

    #[test]
    fn fallible_api_reports_structured_errors() {
        let (ctx, sk, mut rng) = setup(3);
        assert!(matches!(
            BgvContext::try_new(&ctx, 65539),
            Err(crate::FheError::InvalidParams { op: "bgv_new", .. })
        ));
        let bgv = BgvContext::try_new(&ctx, T).unwrap();
        let relin = bgv.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let a = bgv.encrypt(&[1, 2], 3, &sk, &mut rng);
        let b = bgv.encrypt(&[3, 4], 2, &sk, &mut rng);
        assert!(matches!(
            bgv.try_mul(&a, &b, &relin),
            Err(crate::FheError::LevelMismatch { op: "bgv_mul", got: 2, want: 3 })
        ));
        assert!(matches!(
            bgv.try_add(&a, &b),
            Err(crate::FheError::LevelMismatch { .. })
        ));
        let floor = bgv.try_mod_switch(&bgv.try_mod_switch(&b).unwrap());
        assert!(matches!(
            floor,
            Err(crate::FheError::InvalidParams { op: "bgv_mod_switch", .. })
        ));
    }

    #[test]
    fn bgv_noise_tracking_feeds_the_budget() {
        // The t-scaled noise must be reflected in the estimate so the
        // budget accounting (and the strict guardrails) see it.
        let (ctx, sk, mut rng) = setup(3);
        let bgv = BgvContext::new(&ctx, T);
        let relin = bgv.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 1 }, &mut rng);
        let ct = bgv.encrypt(&[5, 6], 3, &sk, &mut rng);
        assert!(ct.noise_estimate_bits() > (T as f64).log2());
        let prod = bgv.mul(&ct, &ct, &relin);
        assert!(prod.noise_estimate_bits() > ct.noise_estimate_bits() + 10.0);
        // mod_switch divides the noise back down (to the t-correction
        // floor, ~log2(t/2·sqrt n)).
        let switched = bgv.mod_switch(&prod);
        assert!(switched.noise_estimate_bits() < prod.noise_estimate_bits() - 10.0);
    }

    #[test]
    fn bgv_and_ckks_share_keyswitching_machinery() {
        // The same relinearization key object serves both schemes.
        let (ctx, sk, mut rng) = setup(3);
        let bgv = BgvContext::new(&ctx, T);
        // A t-scaled-noise key works for BOTH schemes.
        let relin = bgv.relin_keygen(&sk, KeySwitchKind::Boosted { digits: 2 }, &mut rng);
        // CKKS use.
        let pt = ctx.encode(&[1.5, -2.0], ctx.default_scale(), 3);
        let ckks_ct = ctx.encrypt(&pt, &sk, &mut rng);
        let ckks_prod = ctx.rescale(&ctx.mul(&ckks_ct, &ckks_ct, &relin));
        let ckks_out = ctx.decode(&ctx.decrypt(&ckks_prod, &sk), 2);
        assert!((ckks_out[0] - 2.25).abs() < 1e-2);
        // BGV use of the very same key.
        let ct = bgv.encrypt(&[9, 11], 3, &sk, &mut rng);
        let got = bgv.decrypt(&bgv.mul(&ct, &ct, &relin), &sk);
        assert_eq!(&got[..2], &[81, 121]);
    }
}
