//! Security model: maximum modulus width per ring degree and security level.
//!
//! The paper derives its parameters with the LWE estimator \[5\]; we have no
//! network access to it, so we encode its behaviour as a table of
//! `log2(QP)/N` slopes, anchored at two points:
//!
//! - 128-bit security at `N = 2^15` allows `log QP ≈ 881` (the
//!   HomomorphicEncryption.org standard for ternary secrets), and the
//!   paper's own 128-bit operating points (1-digit keyswitching up to
//!   `L = 31`, 3-digit up to `L = 51` at `N = 64K`, i.e. `log QP` up to
//!   ~1,900) pin the slope slightly above the standard's.
//! - The paper's 80-bit operating points (1-digit keyswitching up to
//!   `L = 52`, 2-digit to `L = 60` at `N = 64K`) imply `log QP` up to
//!   ~2,940.
//!
//! `log QP` scales linearly in `N` at fixed security (both the standard's
//! table and the estimator behave this way over this range), so a per-level
//! slope suffices.

/// Supported security targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SecurityLevel {
    /// 80-bit security (the paper's primary evaluation target, Sec. 8).
    Bits80,
    /// 128-bit security (Sec. 9.4).
    Bits128,
    /// 192-bit security.
    Bits192,
    /// 200-bit security (the paper's very conservative target, Sec. 9.4).
    Bits200,
}

impl SecurityLevel {
    /// `log2(QP) / N` slope for this level.
    fn slope(self) -> f64 {
        match self {
            SecurityLevel::Bits80 => 0.0449,
            SecurityLevel::Bits128 => 0.0291,
            SecurityLevel::Bits192 => 0.0187,
            SecurityLevel::Bits200 => 0.0178,
        }
    }

    /// Numeric value in bits.
    pub fn bits(self) -> u32 {
        match self {
            SecurityLevel::Bits80 => 80,
            SecurityLevel::Bits128 => 128,
            SecurityLevel::Bits192 => 192,
            SecurityLevel::Bits200 => 200,
        }
    }
}

/// Maximum total modulus width `log2(QP)` in bits for ring degree `n` at
/// security level `sec` (ternary secrets, non-sparse).
pub fn max_log_qp(n: usize, sec: SecurityLevel) -> u32 {
    (n as f64 * sec.slope()).floor() as u32
}

/// Maximum multiplicative budget `L` achievable with `t`-digit boosted
/// keyswitching at the given ring degree, security level and limb width.
///
/// `t`-digit keyswitching needs `ceil(L/t)` special limbs, so the constraint
/// is `(L + ceil(L/t)) * limb_bits <= max_log_qp(n, sec)`.
pub fn max_level(n: usize, sec: SecurityLevel, digits: usize, limb_bits: u32) -> usize {
    assert!(digits >= 1);
    let budget = max_log_qp(n, sec) as usize / limb_bits as usize;
    // Largest L with L + ceil(L/digits) <= budget.
    let mut l = 0usize;
    while l + 1 + (l + 1).div_ceil(digits) <= budget {
        l += 1;
    }
    l
}

/// Smallest digit count `t` that supports multiplicative budget `l` at the
/// given ring degree and security level, or `None` if even limb-per-digit
/// (standard-like) decomposition cannot reach it.
pub fn min_digits_for_level(
    n: usize,
    sec: SecurityLevel,
    l: usize,
    limb_bits: u32,
) -> Option<usize> {
    (1..=l.max(1)).find(|&t| max_level(n, sec, t, limb_bits) >= l)
}

#[cfg(test)]
mod tests {
    use super::*;

    const N64K: usize = 1 << 16;

    #[test]
    fn anchors_match_the_standard() {
        // ~881 bits at N=2^15 for 128-bit security.
        let v = max_log_qp(1 << 15, SecurityLevel::Bits128);
        assert!((870..=970).contains(&v), "got {v}");
        // Linear in N (up to floor rounding).
        let doubled = max_log_qp(1 << 16, SecurityLevel::Bits128) as i64;
        let halved = 2 * max_log_qp(1 << 15, SecurityLevel::Bits128) as i64;
        assert!((doubled - halved).abs() <= 2);
    }

    #[test]
    fn paper_80bit_operating_points_feasible() {
        // Sec. 3.1: at 80-bit, N=64K: 1-digit keyswitching for L <= 52.
        assert!(max_level(N64K, SecurityLevel::Bits80, 1, 28) >= 52);
        // 2-digit keyswitching for L up to 60.
        assert!(max_level(N64K, SecurityLevel::Bits80, 2, 28) >= 60);
    }

    #[test]
    fn paper_128bit_operating_points_feasible() {
        // Sec. 9.4: 1-digit for L < 32, 2-digit for 32 <= L < 43,
        // 3-digit for L >= 43, never beyond L = 51.
        assert!(max_level(N64K, SecurityLevel::Bits128, 1, 28) >= 31);
        assert!(max_level(N64K, SecurityLevel::Bits128, 2, 28) >= 42);
        assert!(max_level(N64K, SecurityLevel::Bits128, 3, 28) >= 51);
        // And 128-bit is strictly tighter than 80-bit.
        assert!(
            max_level(N64K, SecurityLevel::Bits128, 1, 28)
                < max_level(N64K, SecurityLevel::Bits80, 1, 28)
        );
    }

    #[test]
    fn paper_200bit_needs_larger_ring() {
        // Sec. 9.4: 200-bit requires N=128K to keep useful depth.
        let l_64k = max_level(N64K, SecurityLevel::Bits200, 3, 28);
        let l_128k = max_level(2 * N64K, SecurityLevel::Bits200, 3, 28);
        assert!(l_64k < 32, "64K should not support deep programs at 200-bit");
        assert!(l_128k >= 55, "128K should support deep programs, got {l_128k}");
    }

    #[test]
    fn min_digits_is_monotone() {
        let d31 = min_digits_for_level(N64K, SecurityLevel::Bits128, 31, 28).unwrap();
        let d43 = min_digits_for_level(N64K, SecurityLevel::Bits128, 43, 28).unwrap();
        let d51 = min_digits_for_level(N64K, SecurityLevel::Bits128, 51, 28).unwrap();
        assert!(d31 <= d43 && d43 <= d51);
        assert_eq!(d31, 1);
        assert!(d51 >= 3);
    }

    #[test]
    fn higher_digits_extend_reach() {
        for sec in [SecurityLevel::Bits80, SecurityLevel::Bits128] {
            let l1 = max_level(N64K, sec, 1, 28);
            let l2 = max_level(N64K, sec, 2, 28);
            let l4 = max_level(N64K, sec, 4, 28);
            assert!(l1 <= l2 && l2 <= l4);
        }
    }
}
