//! Homomorphic operations on ciphertexts.

use cl_rns::rescale as rns_rescale;

use crate::{Ciphertext, CkksContext, KeySwitchKey, Plaintext};

impl CkksContext {
    /// Homomorphic addition.
    ///
    /// # Panics
    ///
    /// Panics if levels or scales differ.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.check_same_shape(a, b);
        Ciphertext {
            c0: self.rns().add(&a.c0, &b.c0),
            c1: self.rns().add(&a.c1, &b.c1),
            level: a.level,
            scale: a.scale,
        }
    }

    /// Homomorphic subtraction.
    ///
    /// # Panics
    ///
    /// Panics if levels or scales differ.
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.check_same_shape(a, b);
        Ciphertext {
            c0: self.rns().sub(&a.c0, &b.c0),
            c1: self.rns().sub(&a.c1, &b.c1),
            level: a.level,
            scale: a.scale,
        }
    }

    /// Homomorphic negation.
    pub fn neg_ct(&self, a: &Ciphertext) -> Ciphertext {
        Ciphertext {
            c0: self.rns().neg(&a.c0),
            c1: self.rns().neg(&a.c1),
            level: a.level,
            scale: a.scale,
        }
    }

    /// Adds a plaintext to a ciphertext.
    ///
    /// # Panics
    ///
    /// Panics if levels or scales differ.
    pub fn add_plain(&self, a: &Ciphertext, p: &Plaintext) -> Ciphertext {
        assert_eq!(a.level, p.level, "level mismatch");
        let rel = (a.scale - p.scale).abs() / a.scale.max(p.scale);
        assert!(rel < 1e-6, "scale mismatch: {} vs {}", a.scale, p.scale);
        Ciphertext {
            c0: self.rns().add(&a.c0, &p.poly),
            c1: a.c1.clone(),
            level: a.level,
            scale: a.scale,
        }
    }

    /// Multiplies a ciphertext by a plaintext. The scales multiply; a
    /// [`CkksContext::rescale`] typically follows.
    ///
    /// # Panics
    ///
    /// Panics if levels differ.
    pub fn mul_plain(&self, a: &Ciphertext, p: &Plaintext) -> Ciphertext {
        assert_eq!(a.level, p.level, "level mismatch");
        Ciphertext {
            c0: self.rns().mul(&a.c0, &p.poly),
            c1: self.rns().mul(&a.c1, &p.poly),
            level: a.level,
            scale: a.scale * p.scale,
        }
    }

    /// Multiplies a ciphertext by an unencoded scalar without consuming a
    /// level; the scalar is folded into the scale when it is a power of two,
    /// otherwise encoded exactly at scale 1 (integer scalars only).
    ///
    /// # Panics
    ///
    /// Panics if `k` is not representable as an integer.
    pub fn mul_integer(&self, a: &Ciphertext, k: i64) -> Ciphertext {
        if k < 0 {
            return self.neg_ct(&self.mul_integer(a, -k));
        }
        let scaled0 = self.rns().scalar_mul(&a.c0, k as u64);
        let scaled1 = self.rns().scalar_mul(&a.c1, k as u64);
        Ciphertext {
            c0: scaled0,
            c1: scaled1,
            level: a.level,
            scale: a.scale,
        }
    }

    /// Homomorphic multiplication with relinearization (Sec. 2.2): tensor
    /// the two ciphertexts, then keyswitch the degree-2 component back to a
    /// 2-polynomial ciphertext using the relinearization key.
    ///
    /// The output scale is the product of the input scales; a
    /// [`CkksContext::rescale`] typically follows.
    ///
    /// # Panics
    ///
    /// Panics if levels differ.
    pub fn mul(&self, a: &Ciphertext, b: &Ciphertext, relin_key: &KeySwitchKey) -> Ciphertext {
        assert_eq!(a.level, b.level, "level mismatch");
        let rns = self.rns();
        // Tensor: (d0, d1, d2) = (a0 b0, a0 b1 + a1 b0, a1 b1).
        let d0 = rns.mul(&a.c0, &b.c0);
        let mut d1 = rns.mul(&a.c0, &b.c1);
        rns.mul_acc(&mut d1, &a.c1, &b.c0);
        let d2 = rns.mul(&a.c1, &b.c1);
        // Relinearize d2 (implicitly multiplied by s^2).
        let (ks0, ks1) = self.keyswitch(&d2, relin_key);
        let c0 = rns.add(&d0, &ks0);
        let c1 = rns.add(&d1, &ks1);
        Ciphertext {
            c0,
            c1,
            level: a.level,
            scale: a.scale * b.scale,
        }
    }

    /// Squares a ciphertext (saves one polynomial product over
    /// [`CkksContext::mul`]).
    pub fn square(&self, a: &Ciphertext, relin_key: &KeySwitchKey) -> Ciphertext {
        let rns = self.rns();
        let d0 = rns.mul(&a.c0, &a.c0);
        let cross = rns.mul(&a.c0, &a.c1);
        let d1 = rns.add(&cross, &cross);
        let d2 = rns.mul(&a.c1, &a.c1);
        let (ks0, ks1) = self.keyswitch(&d2, relin_key);
        Ciphertext {
            c0: rns.add(&d0, &ks0),
            c1: rns.add(&d1, &ks1),
            level: a.level,
            scale: a.scale * a.scale,
        }
    }

    /// Rescales: divides by the last modulus in the chain and drops a level
    /// (Sec. 2.3). The scale shrinks by exactly that modulus.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext is at level 1.
    pub fn rescale(&self, a: &Ciphertext) -> Ciphertext {
        assert!(a.level >= 2, "cannot rescale a level-1 ciphertext");
        let rns = self.rns();
        let dropped = rns.modulus_value((a.level - 1) as u32) as f64;
        let mut c0 = a.c0.clone();
        let mut c1 = a.c1.clone();
        rns.from_ntt(&mut c0);
        rns.from_ntt(&mut c1);
        let mut r0 = rns_rescale(rns, &c0);
        let mut r1 = rns_rescale(rns, &c1);
        rns.to_ntt(&mut r0);
        rns.to_ntt(&mut r1);
        Ciphertext {
            c0: r0,
            c1: r1,
            level: a.level - 1,
            scale: a.scale / dropped,
        }
    }

    /// Drops to a lower level without dividing (modulus switching used to
    /// align operand levels). The scale is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `level` is zero or above the current level.
    pub fn mod_drop(&self, a: &Ciphertext, level: usize) -> Ciphertext {
        assert!((1..=a.level).contains(&level), "bad target level");
        if level == a.level {
            return a.clone();
        }
        let rns = self.rns();
        let target = rns.q_basis(level);
        Ciphertext {
            c0: rns.restrict(&a.c0, &target),
            c1: rns.restrict(&a.c1, &target),
            level,
            scale: a.scale,
        }
    }

    /// Homomorphic slot rotation by `steps` (Sec. 2.2): automorphism on both
    /// polynomials, then a keyswitch of `c1` with the matching rotation key.
    ///
    /// # Panics
    ///
    /// Panics if the key was generated for a different rotation amount (not
    /// detectable here — the result simply decrypts wrong; the panic occurs
    /// only for basis mismatches).
    pub fn rotate(&self, a: &Ciphertext, steps: i64, rot_key: &KeySwitchKey) -> Ciphertext {
        let g = cl_math::galois_element_for_rotation(steps, self.params().ring_degree());
        self.apply_galois(a, g, rot_key)
    }

    /// Homomorphic complex conjugation of all slots.
    pub fn conjugate(&self, a: &Ciphertext, conj_key: &KeySwitchKey) -> Ciphertext {
        let g = cl_math::galois_element_conjugate(self.params().ring_degree());
        self.apply_galois(a, g, conj_key)
    }

    fn apply_galois(&self, a: &Ciphertext, g: u64, key: &KeySwitchKey) -> Ciphertext {
        let rns = self.rns();
        let rotated = Ciphertext {
            c0: rns.apply_automorphism(&a.c0, g),
            c1: rns.apply_automorphism(&a.c1, g),
            level: a.level,
            scale: a.scale,
        };
        self.keyswitch_ciphertext(&rotated, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CkksParams, KeySwitchKind, SecretKey};
    use rand::SeedableRng;

    fn setup(levels: usize) -> (CkksContext, SecretKey, rand::rngs::StdRng) {
        let params = CkksParams::builder()
            .ring_degree(128)
            .levels(levels)
            .special_limbs(levels)
            .limb_bits(40)
            .scale_bits(32)
            .build()
            .unwrap();
        let ctx = CkksContext::new(params).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(123);
        let sk = ctx.keygen(&mut rng);
        (ctx, sk, rng)
    }

    const KIND: KeySwitchKind = KeySwitchKind::Boosted { digits: 1 };

    #[test]
    fn homomorphic_add_sub() {
        let (ctx, sk, mut rng) = setup(2);
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![0.5, -2.0, 10.0];
        let cta = ctx.encrypt(&ctx.encode(&a, ctx.default_scale(), 2), &sk, &mut rng);
        let ctb = ctx.encrypt(&ctx.encode(&b, ctx.default_scale(), 2), &sk, &mut rng);
        let sum = ctx.decode(&ctx.decrypt(&ctx.add(&cta, &ctb), &sk), 3);
        let diff = ctx.decode(&ctx.decrypt(&ctx.sub(&cta, &ctb), &sk), 3);
        for i in 0..3 {
            assert!((sum[i] - (a[i] + b[i])).abs() < 1e-3);
            assert!((diff[i] - (a[i] - b[i])).abs() < 1e-3);
        }
    }

    #[test]
    fn homomorphic_mul_with_rescale() {
        let (ctx, sk, mut rng) = setup(3);
        let rlk = ctx.relin_keygen(&sk, KIND, &mut rng);
        let a = vec![1.5, -2.0, 0.25];
        let b = vec![4.0, 3.0, -8.0];
        let cta = ctx.encrypt(&ctx.encode(&a, ctx.default_scale(), 3), &sk, &mut rng);
        let ctb = ctx.encrypt(&ctx.encode(&b, ctx.default_scale(), 3), &sk, &mut rng);
        let prod = ctx.rescale(&ctx.mul(&cta, &ctb, &rlk));
        assert_eq!(prod.level(), 2);
        let got = ctx.decode(&ctx.decrypt(&prod, &sk), 3);
        for i in 0..3 {
            assert!((got[i] - a[i] * b[i]).abs() < 1e-2, "{} vs {}", got[i], a[i] * b[i]);
        }
    }

    #[test]
    fn homomorphic_square() {
        let (ctx, sk, mut rng) = setup(3);
        let rlk = ctx.relin_keygen(&sk, KIND, &mut rng);
        let a = vec![1.5, -2.0, 0.25, 7.0];
        let ct = ctx.encrypt(&ctx.encode(&a, ctx.default_scale(), 3), &sk, &mut rng);
        let sq = ctx.rescale(&ctx.square(&ct, &rlk));
        let got = ctx.decode(&ctx.decrypt(&sq, &sk), 4);
        for i in 0..4 {
            assert!((got[i] - a[i] * a[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn multiplication_chain_consumes_levels() {
        // Scale must track the limb width for the scale to survive repeated
        // rescaling (standard CKKS practice: Δ ≈ q_i).
        let params = CkksParams::builder()
            .ring_degree(128)
            .levels(4)
            .special_limbs(4)
            .limb_bits(40)
            .scale_bits(40)
            .build()
            .unwrap();
        let ctx = CkksContext::new(params).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(123);
        let sk = ctx.keygen(&mut rng);
        let rlk = ctx.relin_keygen(&sk, KIND, &mut rng);
        let x = vec![1.1, 0.9, -1.05];
        let mut ct = ctx.encrypt(&ctx.encode(&x, ctx.default_scale(), 4), &sk, &mut rng);
        let mut expect: Vec<f64> = x.clone();
        for _ in 0..3 {
            ct = ctx.rescale(&ctx.square(&ct, &rlk));
            for v in expect.iter_mut() {
                *v = *v * *v;
            }
        }
        assert_eq!(ct.level(), 1);
        let got = ctx.decode(&ctx.decrypt(&ct, &sk), 3);
        for i in 0..3 {
            assert!(
                (got[i] - expect[i]).abs() < 0.05,
                "{} vs {}",
                got[i],
                expect[i]
            );
        }
    }

    #[test]
    fn mul_plain_and_add_plain() {
        let (ctx, sk, mut rng) = setup(3);
        let a = vec![2.0, -3.0, 0.5];
        let w = vec![1.5, 2.0, -4.0];
        let c = vec![10.0, 20.0, 30.0];
        let ct = ctx.encrypt(&ctx.encode(&a, ctx.default_scale(), 3), &sk, &mut rng);
        let wp = ctx.encode(&w, ctx.default_scale(), 3);
        let prod = ctx.rescale(&ctx.mul_plain(&ct, &wp));
        let cp = ctx.encode(&c, prod.scale(), prod.level());
        let res = ctx.add_plain(&prod, &cp);
        let got = ctx.decode(&ctx.decrypt(&res, &sk), 3);
        for i in 0..3 {
            assert!((got[i] - (a[i] * w[i] + c[i])).abs() < 1e-2);
        }
    }

    #[test]
    fn rotation_moves_slots_left() {
        let (ctx, sk, mut rng) = setup(2);
        let slots = ctx.params().slots();
        let vals: Vec<f64> = (0..slots).map(|i| i as f64).collect();
        let rk = ctx.rotation_keygen(&sk, 1, KIND, &mut rng);
        let ct = ctx.encrypt(&ctx.encode(&vals, ctx.default_scale(), 2), &sk, &mut rng);
        let rot = ctx.rotate(&ct, 1, &rk);
        let got = ctx.decode(&ctx.decrypt(&rot, &sk), slots);
        // Rotation by 1: slot i takes the value of slot i+1 (cyclically).
        for i in 0..slots {
            let expect = vals[(i + 1) % slots];
            assert!(
                (got[i] - expect).abs() < 1e-2,
                "slot {i}: {} vs {expect}",
                got[i]
            );
        }
    }

    #[test]
    fn conjugation_flips_imaginary_parts() {
        let (ctx, sk, mut rng) = setup(2);
        let vals = vec![
            cl_math::Complex::new(1.0, 2.0),
            cl_math::Complex::new(-3.0, 0.5),
        ];
        let ck = ctx.conjugation_keygen(&sk, KIND, &mut rng);
        let ct = ctx.encrypt(&ctx.encode_complex(&vals, ctx.default_scale(), 2), &sk, &mut rng);
        let conj = ctx.conjugate(&ct, &ck);
        let got = ctx.decode_complex(&ctx.decrypt(&conj, &sk), 2);
        for (g, v) in got.iter().zip(&vals) {
            assert!((*g - v.conj()).abs() < 1e-2);
        }
    }

    #[test]
    fn mod_drop_preserves_value() {
        let (ctx, sk, mut rng) = setup(3);
        let vals = vec![5.0, -6.0];
        let ct = ctx.encrypt(&ctx.encode(&vals, ctx.default_scale(), 3), &sk, &mut rng);
        let dropped = ctx.mod_drop(&ct, 1);
        assert_eq!(dropped.level(), 1);
        let got = ctx.decode(&ctx.decrypt(&dropped, &sk), 2);
        assert!((got[0] - 5.0).abs() < 1e-3);
        assert!((got[1] + 6.0).abs() < 1e-3);
    }

    #[test]
    fn mul_integer_scales_values() {
        let (ctx, sk, mut rng) = setup(2);
        let vals = vec![1.5, -2.0];
        let ct = ctx.encrypt(&ctx.encode(&vals, ctx.default_scale(), 2), &sk, &mut rng);
        let tripled = ctx.mul_integer(&ct, -3);
        let got = ctx.decode(&ctx.decrypt(&tripled, &sk), 2);
        assert!((got[0] + 4.5).abs() < 1e-3);
        assert!((got[1] - 6.0).abs() < 1e-3);
    }

    #[test]
    fn rotations_with_standard_keyswitching_also_work() {
        let (ctx, sk, mut rng) = setup(3);
        let slots = ctx.params().slots();
        let vals: Vec<f64> = (0..slots).map(|i| (i % 5) as f64).collect();
        let rk = ctx.rotation_keygen(&sk, 2, KeySwitchKind::Standard, &mut rng);
        let ct = ctx.encrypt(&ctx.encode(&vals, ctx.default_scale(), 3), &sk, &mut rng);
        let rot = ctx.rotate(&ct, 2, &rk);
        let got = ctx.decode(&ctx.decrypt(&rot, &sk), slots);
        for i in 0..slots {
            let expect = vals[(i + 2) % slots];
            assert!((got[i] - expect).abs() < 0.1, "slot {i}: {} vs {expect}", got[i]);
        }
    }
}
