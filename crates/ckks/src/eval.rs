//! Homomorphic operations on ciphertexts.
//!
//! Every operation comes in two flavours:
//!
//! - `try_*`: returns [`FheResult`], never panics on operand mismatch, and
//!   runs the context's [`GuardrailPolicy`] checks (conformance
//!   validation, hint integrity, budget thresholds under
//!   [`GuardrailPolicy::Strict`]; level alignment and automatic rescaling
//!   under [`GuardrailPolicy::AutoRescale`]).
//! - the legacy panicking name, kept as a thin wrapper that unwraps the
//!   `try_*` twin.
//!
//! All operations update the ciphertext's analytic noise estimate (see
//! [`crate::Ciphertext::noise_estimate_bits`] and the model documented in
//! `noise.rs`).

use std::borrow::Cow;

use cl_rns::{mod_down_ntt, Basis, RnsPoly};

use crate::context::GuardrailPolicy;
use crate::error::{FheError, FheResult};
use crate::noise::log2_add;
use crate::{Ciphertext, CkksContext, HoistedDecomposition, KeySwitchKey, Plaintext};

impl CkksContext {
    /// Under [`GuardrailPolicy::AutoRescale`], aligns two operands to a
    /// common (minimum) level with `mod_drop`; otherwise returns them
    /// unchanged.
    fn align_levels<'c>(
        &self,
        a: &'c Ciphertext,
        b: &'c Ciphertext,
    ) -> (Cow<'c, Ciphertext>, Cow<'c, Ciphertext>) {
        if self.policy() == GuardrailPolicy::AutoRescale && a.level != b.level {
            let target = a.level.min(b.level);
            (
                Cow::Owned(self.mod_drop(a, target)),
                Cow::Owned(self.mod_drop(b, target)),
            )
        } else {
            (Cow::Borrowed(a), Cow::Borrowed(b))
        }
    }

    /// Under [`GuardrailPolicy::AutoRescale`], rescales a
    /// multiplication-family result whose scale just grew by `factor` (the
    /// other operand's scale). A growth of at least `sqrt(Δ)` marks a real
    /// multiplicative step awaiting its rescale; small factors (e.g. a
    /// scale-1 integer mask via `mul_plain`) are left alone. Other policies
    /// return the result unchanged.
    fn auto_rescale(&self, ct: Ciphertext, factor: f64) -> FheResult<Ciphertext> {
        if self.policy() == GuardrailPolicy::AutoRescale
            && ct.level >= 2
            && factor * factor >= self.default_scale()
        {
            self.try_rescale(&ct)
        } else {
            Ok(ct)
        }
    }

    /// Fallible homomorphic addition.
    ///
    /// # Errors
    ///
    /// [`FheError::LevelMismatch`] / [`FheError::ScaleMismatch`] when the
    /// operand shapes differ (levels are auto-aligned under
    /// [`GuardrailPolicy::AutoRescale`]), plus any guardrail failure.
    pub fn try_add(&self, a: &Ciphertext, b: &Ciphertext) -> FheResult<Ciphertext> {
        self.guard_operands("add", &[a, b])?;
        let (a, b) = self.align_levels(a, b);
        self.try_check_same_shape("add", &a, &b)?;
        let out = Ciphertext {
            c0: self.rns().add(&a.c0, &b.c0),
            c1: self.rns().add(&a.c1, &b.c1),
            level: a.level,
            scale: a.scale,
            noise_bits_est: Self::est_add(&a, &b),
        };
        self.guard_budget("add", &out)?;
        Ok(out)
    }

    /// Homomorphic addition.
    ///
    /// # Panics
    ///
    /// Panics if levels or scales differ (see [`CkksContext::try_add`]).
    #[must_use]
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.try_add(a, b).unwrap_or_else(|e| panic!("add: {e}"))
    }

    /// Fallible homomorphic subtraction.
    ///
    /// # Errors
    ///
    /// Same contract as [`CkksContext::try_add`].
    pub fn try_sub(&self, a: &Ciphertext, b: &Ciphertext) -> FheResult<Ciphertext> {
        self.guard_operands("sub", &[a, b])?;
        let (a, b) = self.align_levels(a, b);
        self.try_check_same_shape("sub", &a, &b)?;
        let out = Ciphertext {
            c0: self.rns().sub(&a.c0, &b.c0),
            c1: self.rns().sub(&a.c1, &b.c1),
            level: a.level,
            scale: a.scale,
            noise_bits_est: Self::est_add(&a, &b),
        };
        self.guard_budget("sub", &out)?;
        Ok(out)
    }

    /// Homomorphic subtraction.
    ///
    /// # Panics
    ///
    /// Panics if levels or scales differ (see [`CkksContext::try_sub`]).
    #[must_use]
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.try_sub(a, b).unwrap_or_else(|e| panic!("sub: {e}"))
    }

    /// Fallible homomorphic negation.
    ///
    /// # Errors
    ///
    /// Only guardrail failures (negation itself cannot fail).
    pub fn try_neg_ct(&self, a: &Ciphertext) -> FheResult<Ciphertext> {
        self.guard_operands("neg", &[a])?;
        Ok(Ciphertext {
            c0: self.rns().neg(&a.c0),
            c1: self.rns().neg(&a.c1),
            level: a.level,
            scale: a.scale,
            noise_bits_est: a.noise_bits_est,
        })
    }

    /// Homomorphic negation.
    #[must_use]
    pub fn neg_ct(&self, a: &Ciphertext) -> Ciphertext {
        self.try_neg_ct(a).unwrap_or_else(|e| panic!("neg: {e}"))
    }

    /// Fallible plaintext addition.
    ///
    /// # Errors
    ///
    /// [`FheError::LevelMismatch`] when the plaintext's level differs;
    /// [`FheError::ScaleMismatch`] when the scales deviate by more than
    /// [`crate::CkksParams::scale_rel_tolerance`].
    pub fn try_add_plain(&self, a: &Ciphertext, p: &Plaintext) -> FheResult<Ciphertext> {
        self.guard_operands("add_plain", &[a])?;
        if a.level != p.level {
            return Err(FheError::LevelMismatch {
                op: "add_plain",
                got: p.level,
                want: a.level,
            });
        }
        self.try_check_scale("add_plain", p.scale, a.scale)?;
        let out = Ciphertext {
            c0: self.rns().add(&a.c0, &p.poly),
            c1: a.c1.clone(),
            level: a.level,
            scale: a.scale,
            noise_bits_est: a.noise_bits_est,
        };
        self.guard_budget("add_plain", &out)?;
        Ok(out)
    }

    /// Adds a plaintext to a ciphertext.
    ///
    /// # Panics
    ///
    /// Panics if levels or scales differ (see
    /// [`CkksContext::try_add_plain`]).
    #[must_use]
    pub fn add_plain(&self, a: &Ciphertext, p: &Plaintext) -> Ciphertext {
        self.try_add_plain(a, p)
            .unwrap_or_else(|e| panic!("add_plain: {e}"))
    }

    /// Fallible plaintext multiplication. The scales multiply; a rescale
    /// typically follows (inserted automatically under
    /// [`GuardrailPolicy::AutoRescale`]).
    ///
    /// # Errors
    ///
    /// [`FheError::LevelMismatch`] when the plaintext's level differs,
    /// plus any guardrail failure.
    pub fn try_mul_plain(&self, a: &Ciphertext, p: &Plaintext) -> FheResult<Ciphertext> {
        cl_trace::record_pt_mult();
        self.guard_operands("mul_plain", &[a])?;
        if a.level != p.level {
            return Err(FheError::LevelMismatch {
                op: "mul_plain",
                got: p.level,
                want: a.level,
            });
        }
        let out = Ciphertext {
            c0: self.rns().mul(&a.c0, &p.poly),
            c1: self.rns().mul(&a.c1, &p.poly),
            level: a.level,
            scale: a.scale * p.scale,
            noise_bits_est: self.est_mul_plain(a, p.scale),
        };
        let out = self.auto_rescale(out, p.scale)?;
        self.guard_budget("mul_plain", &out)?;
        Ok(out)
    }

    /// Multiplies a ciphertext by a plaintext. The scales multiply; a
    /// [`CkksContext::rescale`] typically follows.
    ///
    /// # Panics
    ///
    /// Panics if levels differ (see [`CkksContext::try_mul_plain`]).
    #[must_use]
    pub fn mul_plain(&self, a: &Ciphertext, p: &Plaintext) -> Ciphertext {
        self.try_mul_plain(a, p)
            .unwrap_or_else(|e| panic!("mul_plain: {e}"))
    }

    /// Fallible scalar multiplication by an integer (no level consumed,
    /// scale unchanged).
    ///
    /// # Errors
    ///
    /// Only guardrail failures.
    pub fn try_mul_integer(&self, a: &Ciphertext, k: i64) -> FheResult<Ciphertext> {
        self.guard_operands("mul_integer", &[a])?;
        if k < 0 {
            let pos = self.try_mul_integer(a, -k)?;
            return self.try_neg_ct(&pos);
        }
        let out = Ciphertext {
            c0: self.rns().scalar_mul(&a.c0, k as u64),
            c1: self.rns().scalar_mul(&a.c1, k as u64),
            level: a.level,
            scale: a.scale,
            noise_bits_est: a.noise_bits_est + (k.unsigned_abs().max(1) as f64).log2(),
        };
        self.guard_budget("mul_integer", &out)?;
        Ok(out)
    }

    /// Multiplies a ciphertext by an unencoded scalar without consuming a
    /// level.
    #[must_use]
    pub fn mul_integer(&self, a: &Ciphertext, k: i64) -> Ciphertext {
        self.try_mul_integer(a, k)
            .unwrap_or_else(|e| panic!("mul_integer: {e}"))
    }

    /// Fallible homomorphic multiplication with relinearization (Sec.
    /// 2.2): tensor the two ciphertexts, then keyswitch the degree-2
    /// component back to a 2-polynomial ciphertext.
    ///
    /// The output scale is the product of the input scales; a rescale
    /// typically follows (inserted automatically under
    /// [`GuardrailPolicy::AutoRescale`], which also aligns mismatched
    /// operand levels).
    ///
    /// # Errors
    ///
    /// [`FheError::LevelMismatch`] when levels differ, plus any guardrail
    /// failure (including [`FheError::CorruptKey`] for a tampered
    /// relinearization key under [`GuardrailPolicy::Strict`]).
    pub fn try_mul(
        &self,
        a: &Ciphertext,
        b: &Ciphertext,
        relin_key: &KeySwitchKey,
    ) -> FheResult<Ciphertext> {
        cl_trace::record_ct_mult();
        self.guard_operands("mul", &[a, b])?;
        self.guard_key("mul", relin_key)?;
        let (a, b) = self.align_levels(a, b);
        if a.level != b.level {
            return Err(FheError::LevelMismatch {
                op: "mul",
                got: b.level,
                want: a.level,
            });
        }
        let rns = self.rns();
        // Tensor: (d0, d1, d2) = (a0 b0, a0 b1 + a1 b0, a1 b1).
        let d0 = rns.mul(&a.c0, &b.c0);
        let mut d1 = rns.mul(&a.c0, &b.c1);
        rns.mul_acc(&mut d1, &a.c1, &b.c0);
        let d2 = rns.mul(&a.c1, &b.c1);
        // Relinearize d2 (implicitly multiplied by s^2).
        let (ks0, ks1) = self.try_keyswitch(&d2, relin_key)?;
        let out = Ciphertext {
            c0: rns.add(&d0, &ks0),
            c1: rns.add(&d1, &ks1),
            level: a.level,
            scale: a.scale * b.scale,
            noise_bits_est: self.est_mul(&a, &b, relin_key),
        };
        let out = self.auto_rescale(out, b.scale)?;
        self.guard_budget("mul", &out)?;
        Ok(out)
    }

    /// Homomorphic multiplication with relinearization.
    ///
    /// # Panics
    ///
    /// Panics if levels differ (see [`CkksContext::try_mul`]).
    #[must_use]
    pub fn mul(&self, a: &Ciphertext, b: &Ciphertext, relin_key: &KeySwitchKey) -> Ciphertext {
        self.try_mul(a, b, relin_key)
            .unwrap_or_else(|e| panic!("mul: {e}"))
    }

    /// Fallible squaring (saves one polynomial product over
    /// [`CkksContext::try_mul`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`CkksContext::try_mul`].
    pub fn try_square(&self, a: &Ciphertext, relin_key: &KeySwitchKey) -> FheResult<Ciphertext> {
        cl_trace::record_ct_mult();
        self.guard_operands("square", &[a])?;
        self.guard_key("square", relin_key)?;
        let rns = self.rns();
        let d0 = rns.mul(&a.c0, &a.c0);
        let cross = rns.mul(&a.c0, &a.c1);
        let d1 = rns.add(&cross, &cross);
        let d2 = rns.mul(&a.c1, &a.c1);
        let (ks0, ks1) = self.try_keyswitch(&d2, relin_key)?;
        let out = Ciphertext {
            c0: rns.add(&d0, &ks0),
            c1: rns.add(&d1, &ks1),
            level: a.level,
            scale: a.scale * a.scale,
            noise_bits_est: self.est_mul(a, a, relin_key),
        };
        let out = self.auto_rescale(out, a.scale)?;
        self.guard_budget("square", &out)?;
        Ok(out)
    }

    /// Squares a ciphertext.
    #[must_use]
    pub fn square(&self, a: &Ciphertext, relin_key: &KeySwitchKey) -> Ciphertext {
        self.try_square(a, relin_key)
            .unwrap_or_else(|e| panic!("square: {e}"))
    }

    /// Fallible rescale: divides by the last modulus in the chain and
    /// drops a level (Sec. 2.3). The scale shrinks by exactly that
    /// modulus.
    ///
    /// # Errors
    ///
    /// [`FheError::InvalidParams`] at level 1 (no modulus left to drop),
    /// plus any guardrail failure.
    pub fn try_rescale(&self, a: &Ciphertext) -> FheResult<Ciphertext> {
        let _span = cl_trace::span("rescale");
        self.guard_operands("rescale", &[a])?;
        if a.level < 2 {
            return Err(FheError::InvalidParams {
                op: "rescale",
                reason: "cannot rescale a level-1 ciphertext".into(),
            });
        }
        let rns = self.rns();
        let dropped = rns.modulus_value((a.level - 1) as u32) as f64;
        // NTT-domain rescale through the cached drop-limb -> kept-limbs
        // converter: only the dropped limb leaves the NTT domain and only
        // the converted correction re-enters it, instead of round-tripping
        // all `level` limbs per polynomial.
        let keep = rns.q_basis(a.level - 1);
        let drop = Basis(vec![(a.level - 1) as u32]);
        let conv = self.converter(&drop, &keep);
        let r0 = mod_down_ntt(rns, &a.c0, &keep, &drop, &conv);
        let r1 = mod_down_ntt(rns, &a.c1, &keep, &drop, &conv);
        let out = Ciphertext {
            c0: r0,
            c1: r1,
            level: a.level - 1,
            scale: a.scale / dropped,
            noise_bits_est: self.est_rescale(a),
        };
        self.guard_budget("rescale", &out)?;
        Ok(out)
    }

    /// Rescales: divides by the last modulus and drops a level.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext is at level 1 (see
    /// [`CkksContext::try_rescale`]).
    #[must_use]
    pub fn rescale(&self, a: &Ciphertext) -> Ciphertext {
        self.try_rescale(a).unwrap_or_else(|e| panic!("rescale: {e}"))
    }

    /// Fallible modulus drop to a lower level without dividing (used to
    /// align operand levels). The scale is unchanged.
    ///
    /// # Errors
    ///
    /// [`FheError::InvalidParams`] when `level` is zero or above the
    /// current level.
    pub fn try_mod_drop(&self, a: &Ciphertext, level: usize) -> FheResult<Ciphertext> {
        self.guard_operands("mod_drop", &[a])?;
        if !(1..=a.level).contains(&level) {
            return Err(FheError::InvalidParams {
                op: "mod_drop",
                reason: format!("target level {level} not in [1, {}]", a.level),
            });
        }
        if level == a.level {
            return Ok(a.clone());
        }
        let rns = self.rns();
        let target = rns.q_basis(level);
        Ok(Ciphertext {
            c0: rns.restrict(&a.c0, &target),
            c1: rns.restrict(&a.c1, &target),
            level,
            scale: a.scale,
            noise_bits_est: a.noise_bits_est,
        })
    }

    /// Drops to a lower level without dividing.
    ///
    /// # Panics
    ///
    /// Panics if `level` is zero or above the current level (see
    /// [`CkksContext::try_mod_drop`]).
    #[must_use]
    pub fn mod_drop(&self, a: &Ciphertext, level: usize) -> Ciphertext {
        self.try_mod_drop(a, level)
            .unwrap_or_else(|e| panic!("mod_drop: {e}"))
    }

    /// Fallible homomorphic slot rotation by `steps` (Sec. 2.2):
    /// automorphism on both polynomials, then a keyswitch of `c1` with the
    /// matching rotation key.
    ///
    /// # Errors
    ///
    /// Guardrail failures (including [`FheError::CorruptKey`] for a
    /// tampered rotation key under [`GuardrailPolicy::Strict`]). A key
    /// generated for a different rotation amount is not detectable here —
    /// the result simply decrypts wrong.
    pub fn try_rotate(
        &self,
        a: &Ciphertext,
        steps: i64,
        rot_key: &KeySwitchKey,
    ) -> FheResult<Ciphertext> {
        let g = cl_math::galois_element_for_rotation(steps, self.params().ring_degree());
        self.try_apply_galois("rotate", a, g, rot_key)
    }

    /// Homomorphic slot rotation by `steps`.
    ///
    /// # Panics
    ///
    /// Panics on basis mismatches (see [`CkksContext::try_rotate`]).
    #[must_use]
    pub fn rotate(&self, a: &Ciphertext, steps: i64, rot_key: &KeySwitchKey) -> Ciphertext {
        self.try_rotate(a, steps, rot_key)
            .unwrap_or_else(|e| panic!("rotate: {e}"))
    }

    /// Fallible homomorphic complex conjugation of all slots.
    ///
    /// # Errors
    ///
    /// Same contract as [`CkksContext::try_rotate`].
    pub fn try_conjugate(&self, a: &Ciphertext, conj_key: &KeySwitchKey) -> FheResult<Ciphertext> {
        let g = cl_math::galois_element_conjugate(self.params().ring_degree());
        self.try_apply_galois("conjugate", a, g, conj_key)
    }

    /// Homomorphic complex conjugation of all slots.
    #[must_use]
    pub fn conjugate(&self, a: &Ciphertext, conj_key: &KeySwitchKey) -> Ciphertext {
        self.try_conjugate(a, conj_key)
            .unwrap_or_else(|e| panic!("conjugate: {e}"))
    }

    fn try_apply_galois(
        &self,
        op: &'static str,
        a: &Ciphertext,
        g: u64,
        key: &KeySwitchKey,
    ) -> FheResult<Ciphertext> {
        let _span = cl_trace::span("rotate");
        cl_trace::record_rotation();
        self.guard_operands(op, &[a])?;
        self.guard_key(op, key)?;
        let rns = self.rns();
        // Hoisted order: decompose `c1` first, then apply the automorphism
        // to the already-decomposed digits. A single rotation costs the
        // same either way, but routing everything through one path keeps
        // `try_rotate` bit-identical to the batched
        // [`CkksContext::try_rotate_hoisted_many`] (the approximate ModUp
        // conversion does not commute bit-exactly with the automorphism,
        // so the two orders differ in the low noise bits).
        let dec = self.hoist_impl(op, &a.c1, key.kind())?;
        let (ks0, ks1) = dec.apply_galois(self, g, key)?;
        let out = Ciphertext {
            c0: rns.add(&rns.apply_automorphism(&a.c0, g), &ks0),
            c1: ks1,
            level: a.level,
            scale: a.scale,
            noise_bits_est: log2_add(
                a.noise_bits_est,
                self.est_keyswitch_bits(a.level, key),
            ),
        };
        self.guard_budget(op, &out)?;
        Ok(out)
    }

    /// Fallible batch rotation from a single hoisted decomposition: all
    /// `steps` rotations of `a` share one ModUp (digit decomposition + base
    /// extension) instead of paying it once per rotation — the dominant
    /// saving of CraterLake's amortized boosted keyswitching across BSGS
    /// rotations (Sec. 6).
    ///
    /// `keys[i]` must be the rotation key for `steps[i]`, and all keys must
    /// share one keyswitch kind (they apply to the same decomposition).
    /// Results are bit-identical to calling [`CkksContext::try_rotate`]
    /// once per step, noise estimates included.
    ///
    /// # Errors
    ///
    /// [`FheError::InvalidParams`] when `steps` and `keys` have different
    /// lengths or a key's kind differs from the first key's, plus the
    /// per-rotation contract of [`CkksContext::try_rotate`].
    pub fn try_rotate_hoisted_many(
        &self,
        a: &Ciphertext,
        steps: &[i64],
        keys: &[&KeySwitchKey],
    ) -> FheResult<Vec<Ciphertext>> {
        const OP: &str = "rotate_hoisted";
        if steps.len() != keys.len() {
            return Err(FheError::InvalidParams {
                op: OP,
                reason: format!("{} steps but {} keys", steps.len(), keys.len()),
            });
        }
        self.guard_operands(OP, &[a])?;
        let Some(first) = keys.first() else {
            return Ok(Vec::new());
        };
        let rns = self.rns();
        let n = self.params().ring_degree();
        let dec = self.hoist_impl(OP, &a.c1, first.kind())?;
        steps
            .iter()
            .zip(keys)
            .map(|(&k, key)| {
                cl_trace::record_rotation();
                let g = cl_math::galois_element_for_rotation(k, n);
                let (ks0, ks1) = dec.apply_galois(self, g, key)?;
                let out = Ciphertext {
                    c0: rns.add(&rns.apply_automorphism(&a.c0, g), &ks0),
                    c1: ks1,
                    level: a.level,
                    scale: a.scale,
                    noise_bits_est: log2_add(
                        a.noise_bits_est,
                        self.est_keyswitch_bits(a.level, key),
                    ),
                };
                self.guard_budget(OP, &out)?;
                Ok(out)
            })
            .collect()
    }

    /// Fallible rotate-and-sum `Σ_j rot_{k_j}(ct_j)` with *double
    /// hoisting*: every nonzero-step term is hoisted, its automorphism
    /// applied to the decomposed digits, and its hint inner product
    /// accumulated in the extended basis `Q·P`; a single closing ModDown
    /// serves the whole sum. ModDown is linear up to the ±1 conversion
    /// rounding per term, which the noise model's rounding floor already
    /// covers — this is the extended-basis accumulation the BSGS
    /// giant-step loop of `cl-boot` runs on.
    ///
    /// Terms with step 0 are added directly (no key needed; a key given
    /// for step 0 is ignored). All terms must share level and scale, and
    /// all keys one keyswitch kind.
    ///
    /// # Errors
    ///
    /// [`FheError::InvalidParams`] on an empty term list or mixed key
    /// kinds; [`FheError::MissingKey`] when a nonzero step has no key;
    /// [`FheError::LevelMismatch`] / [`FheError::ScaleMismatch`] when the
    /// term shapes differ; plus any guardrail failure.
    pub fn try_rotate_sum(
        &self,
        terms: &[(&Ciphertext, i64, Option<&KeySwitchKey>)],
    ) -> FheResult<Ciphertext> {
        const OP: &str = "rotate_sum";
        let Some(&(head, ..)) = terms.first() else {
            return Err(FheError::InvalidParams {
                op: OP,
                reason: "empty term list".into(),
            });
        };
        let rns = self.rns();
        let n = self.params().ring_degree();
        let level = head.level;
        let qb = rns.q_basis(level);
        let mut base0 = rns.zero(&qb);
        base0.set_ntt_form(true);
        let mut base1 = base0.clone();
        let mut noise = f64::NEG_INFINITY;
        let mut acc: Option<(HoistedDecomposition, RnsPoly, RnsPoly)> = None;
        for &(ct, k, key) in terms {
            self.guard_operands(OP, &[ct])?;
            self.try_check_same_shape(OP, head, ct)?;
            if k == 0 {
                rns.add_assign(&mut base0, &ct.c0);
                rns.add_assign(&mut base1, &ct.c1);
                noise = log2_add(noise, ct.noise_bits_est);
                continue;
            }
            let Some(key) = key else {
                return Err(FheError::MissingKey {
                    what: format!("rotation key for step {k}"),
                });
            };
            cl_trace::record_rotation();
            let g = cl_math::galois_element_for_rotation(k, n);
            let dec = self.hoist_impl(OP, &ct.c1, key.kind())?;
            let (e0, e1) = dec.apply_galois_ext(self, g, key)?;
            match &mut acc {
                None => acc = Some((dec, e0, e1)),
                Some((head_dec, a0, a1)) => {
                    if head_dec.kind() != key.kind() {
                        return Err(FheError::InvalidParams {
                            op: OP,
                            reason: format!(
                                "mixed keyswitch kinds {:?} and {:?} in one rotate-sum",
                                head_dec.kind(),
                                key.kind()
                            ),
                        });
                    }
                    rns.add_assign(a0, &e0);
                    rns.add_assign(a1, &e1);
                }
            }
            rns.add_assign(&mut base0, &rns.apply_automorphism(&ct.c0, g));
            noise = log2_add(
                noise,
                log2_add(ct.noise_bits_est, self.est_keyswitch_bits(level, key)),
            );
        }
        if let Some((dec, a0, a1)) = acc {
            let (ks0, ks1) = dec.mod_down_pair(self, a0, a1);
            rns.add_assign(&mut base0, &ks0);
            rns.add_assign(&mut base1, &ks1);
        }
        let out = Ciphertext {
            c0: base0,
            c1: base1,
            level,
            scale: head.scale,
            noise_bits_est: noise,
        };
        self.guard_budget(OP, &out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CkksParams, KeySwitchKind, SecretKey};
    use rand::SeedableRng;

    fn setup(levels: usize) -> (CkksContext, SecretKey, rand::rngs::StdRng) {
        let params = CkksParams::builder()
            .ring_degree(128)
            .levels(levels)
            .special_limbs(levels)
            .limb_bits(40)
            .scale_bits(32)
            .build()
            .unwrap();
        let ctx = CkksContext::new(params).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(123);
        let sk = ctx.keygen(&mut rng);
        (ctx, sk, rng)
    }

    const KIND: KeySwitchKind = KeySwitchKind::Boosted { digits: 1 };

    #[test]
    fn homomorphic_add_sub() {
        let (ctx, sk, mut rng) = setup(2);
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![0.5, -2.0, 10.0];
        let cta = ctx.encrypt(&ctx.encode(&a, ctx.default_scale(), 2), &sk, &mut rng);
        let ctb = ctx.encrypt(&ctx.encode(&b, ctx.default_scale(), 2), &sk, &mut rng);
        let sum = ctx.decode(&ctx.decrypt(&ctx.add(&cta, &ctb), &sk), 3);
        let diff = ctx.decode(&ctx.decrypt(&ctx.sub(&cta, &ctb), &sk), 3);
        for i in 0..3 {
            assert!((sum[i] - (a[i] + b[i])).abs() < 1e-3);
            assert!((diff[i] - (a[i] - b[i])).abs() < 1e-3);
        }
    }

    #[test]
    fn homomorphic_mul_with_rescale() {
        let (ctx, sk, mut rng) = setup(3);
        let rlk = ctx.relin_keygen(&sk, KIND, &mut rng);
        let a = vec![1.5, -2.0, 0.25];
        let b = vec![4.0, 3.0, -8.0];
        let cta = ctx.encrypt(&ctx.encode(&a, ctx.default_scale(), 3), &sk, &mut rng);
        let ctb = ctx.encrypt(&ctx.encode(&b, ctx.default_scale(), 3), &sk, &mut rng);
        let prod = ctx.rescale(&ctx.mul(&cta, &ctb, &rlk));
        assert_eq!(prod.level(), 2);
        let got = ctx.decode(&ctx.decrypt(&prod, &sk), 3);
        for i in 0..3 {
            assert!((got[i] - a[i] * b[i]).abs() < 1e-2, "{} vs {}", got[i], a[i] * b[i]);
        }
    }

    #[test]
    fn homomorphic_square() {
        let (ctx, sk, mut rng) = setup(3);
        let rlk = ctx.relin_keygen(&sk, KIND, &mut rng);
        let a = vec![1.5, -2.0, 0.25, 7.0];
        let ct = ctx.encrypt(&ctx.encode(&a, ctx.default_scale(), 3), &sk, &mut rng);
        let sq = ctx.rescale(&ctx.square(&ct, &rlk));
        let got = ctx.decode(&ctx.decrypt(&sq, &sk), 4);
        for i in 0..4 {
            assert!((got[i] - a[i] * a[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn multiplication_chain_consumes_levels() {
        // Scale must track the limb width for the scale to survive repeated
        // rescaling (standard CKKS practice: Δ ≈ q_i).
        let params = CkksParams::builder()
            .ring_degree(128)
            .levels(4)
            .special_limbs(4)
            .limb_bits(40)
            .scale_bits(40)
            .build()
            .unwrap();
        let ctx = CkksContext::new(params).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(123);
        let sk = ctx.keygen(&mut rng);
        let rlk = ctx.relin_keygen(&sk, KIND, &mut rng);
        let x = vec![1.1, 0.9, -1.05];
        let mut ct = ctx.encrypt(&ctx.encode(&x, ctx.default_scale(), 4), &sk, &mut rng);
        let mut expect: Vec<f64> = x.clone();
        for _ in 0..3 {
            ct = ctx.rescale(&ctx.square(&ct, &rlk));
            for v in expect.iter_mut() {
                *v = *v * *v;
            }
        }
        assert_eq!(ct.level(), 1);
        let got = ctx.decode(&ctx.decrypt(&ct, &sk), 3);
        for i in 0..3 {
            assert!(
                (got[i] - expect[i]).abs() < 0.05,
                "{} vs {}",
                got[i],
                expect[i]
            );
        }
    }

    #[test]
    fn mul_plain_and_add_plain() {
        let (ctx, sk, mut rng) = setup(3);
        let a = vec![2.0, -3.0, 0.5];
        let w = vec![1.5, 2.0, -4.0];
        let c = vec![10.0, 20.0, 30.0];
        let ct = ctx.encrypt(&ctx.encode(&a, ctx.default_scale(), 3), &sk, &mut rng);
        let wp = ctx.encode(&w, ctx.default_scale(), 3);
        let prod = ctx.rescale(&ctx.mul_plain(&ct, &wp));
        let cp = ctx.encode(&c, prod.scale(), prod.level());
        let res = ctx.add_plain(&prod, &cp);
        let got = ctx.decode(&ctx.decrypt(&res, &sk), 3);
        for i in 0..3 {
            assert!((got[i] - (a[i] * w[i] + c[i])).abs() < 1e-2);
        }
    }

    #[test]
    fn rotation_moves_slots_left() {
        let (ctx, sk, mut rng) = setup(2);
        let slots = ctx.params().slots();
        let vals: Vec<f64> = (0..slots).map(|i| i as f64).collect();
        let rk = ctx.rotation_keygen(&sk, 1, KIND, &mut rng);
        let ct = ctx.encrypt(&ctx.encode(&vals, ctx.default_scale(), 2), &sk, &mut rng);
        let rot = ctx.rotate(&ct, 1, &rk);
        let got = ctx.decode(&ctx.decrypt(&rot, &sk), slots);
        // Rotation by 1: slot i takes the value of slot i+1 (cyclically).
        for i in 0..slots {
            let expect = vals[(i + 1) % slots];
            assert!(
                (got[i] - expect).abs() < 1e-2,
                "slot {i}: {} vs {expect}",
                got[i]
            );
        }
    }

    #[test]
    fn conjugation_flips_imaginary_parts() {
        let (ctx, sk, mut rng) = setup(2);
        let vals = vec![
            cl_math::Complex::new(1.0, 2.0),
            cl_math::Complex::new(-3.0, 0.5),
        ];
        let ck = ctx.conjugation_keygen(&sk, KIND, &mut rng);
        let ct = ctx.encrypt(&ctx.encode_complex(&vals, ctx.default_scale(), 2), &sk, &mut rng);
        let conj = ctx.conjugate(&ct, &ck);
        let got = ctx.decode_complex(&ctx.decrypt(&conj, &sk), 2);
        for (g, v) in got.iter().zip(&vals) {
            assert!((*g - v.conj()).abs() < 1e-2);
        }
    }

    #[test]
    fn mod_drop_preserves_value() {
        let (ctx, sk, mut rng) = setup(3);
        let vals = vec![5.0, -6.0];
        let ct = ctx.encrypt(&ctx.encode(&vals, ctx.default_scale(), 3), &sk, &mut rng);
        let dropped = ctx.mod_drop(&ct, 1);
        assert_eq!(dropped.level(), 1);
        let got = ctx.decode(&ctx.decrypt(&dropped, &sk), 2);
        assert!((got[0] - 5.0).abs() < 1e-3);
        assert!((got[1] + 6.0).abs() < 1e-3);
    }

    #[test]
    fn mul_integer_scales_values() {
        let (ctx, sk, mut rng) = setup(2);
        let vals = vec![1.5, -2.0];
        let ct = ctx.encrypt(&ctx.encode(&vals, ctx.default_scale(), 2), &sk, &mut rng);
        let tripled = ctx.mul_integer(&ct, -3);
        let got = ctx.decode(&ctx.decrypt(&tripled, &sk), 2);
        assert!((got[0] + 4.5).abs() < 1e-3);
        assert!((got[1] - 6.0).abs() < 1e-3);
    }

    #[test]
    fn rotations_with_standard_keyswitching_also_work() {
        let (ctx, sk, mut rng) = setup(3);
        let slots = ctx.params().slots();
        let vals: Vec<f64> = (0..slots).map(|i| (i % 5) as f64).collect();
        let rk = ctx.rotation_keygen(&sk, 2, KeySwitchKind::Standard, &mut rng);
        let ct = ctx.encrypt(&ctx.encode(&vals, ctx.default_scale(), 3), &sk, &mut rng);
        let rot = ctx.rotate(&ct, 2, &rk);
        let got = ctx.decode(&ctx.decrypt(&rot, &sk), slots);
        for i in 0..slots {
            let expect = vals[(i + 2) % slots];
            assert!((got[i] - expect).abs() < 0.1, "slot {i}: {} vs {expect}", got[i]);
        }
    }

    #[test]
    fn hoisted_many_matches_naive_rotations() {
        let (ctx, sk, mut rng) = setup(3);
        let slots = ctx.params().slots();
        let vals: Vec<f64> = (0..slots).map(|i| (i as f64) * 0.5 - 3.0).collect();
        let steps = [1i64, -2, 5, 0];
        let keys: Vec<_> = steps
            .iter()
            .map(|&s| ctx.rotation_keygen(&sk, s, KIND, &mut rng))
            .collect();
        let key_refs: Vec<&crate::KeySwitchKey> = keys.iter().collect();
        let ct = ctx.encrypt(&ctx.encode(&vals, ctx.default_scale(), 3), &sk, &mut rng);
        let batch = ctx.try_rotate_hoisted_many(&ct, &steps, &key_refs).unwrap();
        assert_eq!(batch.len(), steps.len());
        for ((&s, key), hoisted) in steps.iter().zip(&keys).zip(&batch) {
            let naive = ctx.try_rotate(&ct, s, key).unwrap();
            assert_eq!(hoisted.c0(), naive.c0(), "step {s}: c0 differs");
            assert_eq!(hoisted.c1(), naive.c1(), "step {s}: c1 differs");
            assert_eq!(
                hoisted.noise_estimate_bits(),
                naive.noise_estimate_bits(),
                "step {s}: noise estimate differs"
            );
        }
    }

    #[test]
    fn hoisted_many_rejects_length_mismatch() {
        let (ctx, sk, mut rng) = setup(2);
        let key = ctx.rotation_keygen(&sk, 1, KIND, &mut rng);
        let ct = ctx.encrypt(&ctx.encode(&[1.0], ctx.default_scale(), 2), &sk, &mut rng);
        assert!(matches!(
            ctx.try_rotate_hoisted_many(&ct, &[1, 2], &[&key]),
            Err(crate::FheError::InvalidParams { op: "rotate_hoisted", .. })
        ));
    }

    #[test]
    fn rotate_sum_matches_sum_of_rotations() {
        let (ctx, sk, mut rng) = setup(3);
        let slots = ctx.params().slots();
        let vals: Vec<f64> = (0..slots).map(|i| ((i * 7 % 5) as f64) - 2.0).collect();
        let k1 = ctx.rotation_keygen(&sk, 1, KIND, &mut rng);
        let k3 = ctx.rotation_keygen(&sk, 3, KIND, &mut rng);
        let ct = ctx.encrypt(&ctx.encode(&vals, ctx.default_scale(), 3), &sk, &mut rng);
        let sum = ctx
            .try_rotate_sum(&[(&ct, 0, None), (&ct, 1, Some(&k1)), (&ct, 3, Some(&k3))])
            .unwrap();
        let got = ctx.decode(&ctx.decrypt(&sum, &sk), slots);
        for i in 0..slots {
            let expect = vals[i] + vals[(i + 1) % slots] + vals[(i + 3) % slots];
            assert!(
                (got[i] - expect).abs() < 1e-2,
                "slot {i}: {} vs {expect}",
                got[i]
            );
        }
    }

    #[test]
    fn rotate_sum_requires_key_for_nonzero_step() {
        let (ctx, sk, mut rng) = setup(2);
        let ct = ctx.encrypt(&ctx.encode(&[1.0], ctx.default_scale(), 2), &sk, &mut rng);
        match ctx.try_rotate_sum(&[(&ct, 2, None)]) {
            Err(crate::FheError::MissingKey { what }) => {
                assert!(what.contains("step 2"), "message: {what}");
            }
            other => panic!("expected MissingKey, got {other:?}"),
        }
    }

    // ------------------------------------------------------------------
    // Error paths of the fallible API
    // ------------------------------------------------------------------

    #[test]
    fn try_add_reports_level_mismatch() {
        let (ctx, sk, mut rng) = setup(3);
        let a = ctx.encrypt(&ctx.encode(&[1.0], ctx.default_scale(), 3), &sk, &mut rng);
        let b = ctx.encrypt(&ctx.encode(&[1.0], ctx.default_scale(), 2), &sk, &mut rng);
        match ctx.try_add(&a, &b) {
            Err(crate::FheError::LevelMismatch { op, got, want }) => {
                assert_eq!(op, "add");
                assert_eq!((got, want), (2, 3));
            }
            other => panic!("expected LevelMismatch, got {other:?}"),
        }
    }

    #[test]
    fn try_add_reports_scale_mismatch() {
        let (ctx, sk, mut rng) = setup(2);
        let a = ctx.encrypt(&ctx.encode(&[1.0], ctx.default_scale(), 2), &sk, &mut rng);
        let b = ctx.encrypt(&ctx.encode(&[1.0], ctx.default_scale() * 2.0, 2), &sk, &mut rng);
        match ctx.try_add(&a, &b) {
            Err(crate::FheError::ScaleMismatch { rel, .. }) => {
                assert!(rel > 0.4, "relative deviation {rel}");
            }
            other => panic!("expected ScaleMismatch, got {other:?}"),
        }
    }

    #[test]
    fn try_add_plain_respects_configured_tolerance() {
        // A 1e-4 relative deviation fails at the default 1e-6 tolerance
        // but passes once the parameter set allows it.
        let build = |tol: Option<f64>| {
            let mut b = CkksParams::builder()
                .ring_degree(128)
                .levels(2)
                .special_limbs(2)
                .limb_bits(40)
                .scale_bits(32);
            if let Some(t) = tol {
                b = b.scale_rel_tolerance(t);
            }
            CkksContext::new(b.build().unwrap()).unwrap()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let strict_tol = build(None);
        let sk = strict_tol.keygen(&mut rng);
        let scale = strict_tol.default_scale();
        let ct = strict_tol.encrypt(&strict_tol.encode(&[1.0], scale, 2), &sk, &mut rng);
        let p = strict_tol.encode(&[1.0], scale * (1.0 + 1e-4), 2);
        match strict_tol.try_add_plain(&ct, &p) {
            Err(crate::FheError::ScaleMismatch { got, want, rel, .. }) => {
                assert!((got / want - 1.0).abs() < 1e-3);
                assert!(rel > 5e-5 && rel < 2e-4, "rel {rel}");
            }
            other => panic!("expected ScaleMismatch, got {other:?}"),
        }
        let loose_tol = build(Some(1e-3));
        let sk2 = loose_tol.keygen(&mut rng);
        let ct2 = loose_tol.encrypt(&loose_tol.encode(&[1.0], scale, 2), &sk2, &mut rng);
        let p2 = loose_tol.encode(&[1.0], scale * (1.0 + 1e-4), 2);
        assert!(loose_tol.try_add_plain(&ct2, &p2).is_ok());
    }

    #[test]
    fn try_mul_reports_level_mismatch() {
        let (ctx, sk, mut rng) = setup(3);
        let rlk = ctx.relin_keygen(&sk, KIND, &mut rng);
        let a = ctx.encrypt(&ctx.encode(&[1.0], ctx.default_scale(), 3), &sk, &mut rng);
        let b = ctx.encrypt(&ctx.encode(&[1.0], ctx.default_scale(), 2), &sk, &mut rng);
        assert!(matches!(
            ctx.try_mul(&a, &b, &rlk),
            Err(crate::FheError::LevelMismatch { op: "mul", .. })
        ));
    }

    #[test]
    fn try_rescale_and_mod_drop_report_invalid_params() {
        let (ctx, sk, mut rng) = setup(2);
        let ct = ctx.encrypt(&ctx.encode(&[1.0], ctx.default_scale(), 1), &sk, &mut rng);
        assert!(matches!(
            ctx.try_rescale(&ct),
            Err(crate::FheError::InvalidParams { op: "rescale", .. })
        ));
        assert!(matches!(
            ctx.try_mod_drop(&ct, 0),
            Err(crate::FheError::InvalidParams { op: "mod_drop", .. })
        ));
        assert!(matches!(
            ctx.try_mod_drop(&ct, 2),
            Err(crate::FheError::InvalidParams { op: "mod_drop", .. })
        ));
    }

    #[test]
    fn auto_rescale_policy_inserts_rescales_and_aligns_levels() {
        use crate::GuardrailPolicy;
        // scale == limb width, so each auto-inserted rescale brings the
        // scale back to the default instead of letting it drift.
        let params = CkksParams::builder()
            .ring_degree(128)
            .levels(4)
            .special_limbs(4)
            .limb_bits(40)
            .scale_bits(40)
            .build()
            .unwrap();
        let mut ctx = CkksContext::new(params).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(123);
        let sk = ctx.keygen(&mut rng);
        ctx.set_policy(GuardrailPolicy::AutoRescale);
        let rlk = ctx.relin_keygen(&sk, KIND, &mut rng);
        let a = vec![1.5, -0.5];
        let b = vec![2.0, 3.0];
        let cta = ctx.encrypt(&ctx.encode(&a, ctx.default_scale(), 4), &sk, &mut rng);
        let ctb = ctx.encrypt(&ctx.encode(&b, ctx.default_scale(), 4), &sk, &mut rng);
        // No manual rescales anywhere: the policy inserts them.
        let prod = ctx.try_mul(&cta, &ctb, &rlk).unwrap();
        assert_eq!(prod.level(), 3, "mul result must arrive rescaled");
        // Operand levels differ (prod is deeper than cta): auto-aligned.
        let prod2 = ctx.try_mul(&prod, &cta, &rlk).unwrap();
        assert_eq!(prod2.level(), 2);
        let got = ctx.decode(&ctx.decrypt(&prod2, &sk), 2);
        for i in 0..2 {
            let expect = a[i] * b[i] * a[i];
            assert!((got[i] - expect).abs() < 1e-2, "{} vs {expect}", got[i]);
        }
    }

    #[test]
    fn strict_policy_flags_budget_exhaustion() {
        use crate::GuardrailPolicy;
        let (mut ctx, sk, mut rng) = setup(3);
        ctx.set_policy(GuardrailPolicy::Strict { min_budget_bits: 0.0 });
        let rlk = ctx.relin_keygen(&sk, KIND, &mut rng);
        let ct = ctx.encrypt(&ctx.encode(&[0.9], ctx.default_scale(), 3), &sk, &mut rng);
        // Squaring without rescaling squares the scale each time; the
        // estimated budget collapses and the strict policy reports it
        // before the result decrypts to garbage.
        let once = ctx.try_square(&ct, &rlk).expect("one un-rescaled square fits");
        match ctx.try_square(&once, &rlk) {
            Err(crate::FheError::BudgetExhausted { op, budget_bits, .. }) => {
                assert_eq!(op, "square");
                assert!(budget_bits < 0.0, "budget {budget_bits} should be negative");
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }
}
