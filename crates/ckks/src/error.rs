//! The unified error hierarchy for fallible homomorphic evaluation.
//!
//! Every `try_*` operation returns [`FheError`], which wraps the layer
//! errors ([`CkksError`], [`RnsError`], [`MathError`], [`ParamsError`]) and
//! adds structured operation-level failures: level/scale mismatches, noise
//! budget exhaustion, and integrity violations detected by the
//! [`crate::GuardrailPolicy`] runtime checks.

use std::fmt;

use cl_math::MathError;
use cl_rns::RnsError;

use crate::context::CkksError;
use crate::params::ParamsError;

/// Result alias for fallible homomorphic operations.
pub type FheResult<T> = Result<T, FheError>;

/// Errors from fallible (`try_*`) homomorphic evaluation.
///
/// Each variant carries enough structured context (operation name, expected
/// vs. actual levels/scales, budget figures) for a caller to decide whether
/// to realign operands, insert a rescale or bootstrap, or abort.
#[derive(Debug)]
#[non_exhaustive]
pub enum FheError {
    /// A wrapped CKKS-layer error (parameters or operand incompatibility).
    Ckks(CkksError),
    /// A wrapped RNS-layer error (modulus chains, NTT tables).
    Rns(RnsError),
    /// A wrapped math-layer error (prime generation, modulus construction).
    Math(MathError),
    /// Operand levels differ (or a target level is out of range).
    LevelMismatch {
        /// The operation that detected the mismatch.
        op: &'static str,
        /// The level actually seen.
        got: usize,
        /// The level required.
        want: usize,
    },
    /// Operand scales differ by more than the configured relative
    /// tolerance ([`crate::CkksParams::scale_rel_tolerance`]).
    ScaleMismatch {
        /// The operation that detected the mismatch.
        op: &'static str,
        /// The scale actually seen.
        got: f64,
        /// The scale required.
        want: f64,
        /// The relative deviation `|got - want| / max(got, want)`.
        rel: f64,
    },
    /// The estimated noise budget dropped below the strict policy's
    /// threshold: further computation would decrypt incorrectly.
    BudgetExhausted {
        /// The operation whose output exhausted the budget.
        op: &'static str,
        /// The (signed) estimated budget of the result, in bits.
        budget_bits: f64,
        /// The policy's minimum acceptable budget, in bits.
        required_bits: f64,
    },
    /// An operation was invoked with arguments that no parameter set could
    /// make valid (e.g. rescaling a level-1 ciphertext).
    InvalidParams {
        /// The rejecting operation.
        op: &'static str,
        /// Why the arguments are invalid.
        reason: String,
    },
    /// A ciphertext failed the strict policy's conformance validation
    /// (out-of-range residue, wrong basis, non-NTT form, bad scale).
    CorruptCiphertext {
        /// The operation that validated the ciphertext.
        op: &'static str,
        /// What the validation found.
        reason: String,
    },
    /// A keyswitch hint failed its integrity-digest check.
    CorruptKey {
        /// The operation that verified the key.
        op: &'static str,
        /// What the verification found.
        reason: String,
    },
    /// Required key material was not supplied (e.g. a rotation key for a
    /// step the bootstrap transform needs).
    MissingKey {
        /// Description of the missing key.
        what: String,
    },
    /// A serialized blob is structurally invalid: bad magic, unsupported
    /// format version, truncated payload, or a malformed section.
    Serialization {
        /// The load or store operation that failed.
        op: &'static str,
        /// What the codec found.
        reason: String,
    },
    /// A stored checksum does not match the recomputed one — the blob was
    /// corrupted after it was written.
    ChecksumMismatch {
        /// The load operation that detected the corruption.
        op: &'static str,
        /// Which section failed (header metadata, or a specific limb).
        section: String,
        /// The checksum recorded in the blob.
        stored: u64,
        /// The checksum recomputed over the payload.
        computed: u64,
    },
    /// A serialized object was produced under different CKKS parameters
    /// (ring degree, moduli chain, scale, or decomposition digits).
    ParamsMismatch {
        /// The load operation that detected the mismatch.
        op: &'static str,
        /// The fingerprint recorded in the blob.
        got: u64,
        /// The fingerprint of the loading context.
        want: u64,
    },
    /// A serving layer refused new work because its admission queue is at
    /// capacity. The request was *not* enqueued; retry after the hinted
    /// delay (explicit backpressure, never unbounded memory growth).
    Overloaded {
        /// The admitting component that shed the request.
        op: &'static str,
        /// Suggested client backoff before resubmitting, in milliseconds.
        retry_after_ms: u64,
    },
    /// A job ran past its deadline and was aborted at a micro-op boundary.
    DeadlineExceeded {
        /// The component that enforced the deadline.
        op: &'static str,
        /// The configured deadline, in milliseconds.
        deadline_ms: u64,
        /// Wall time actually elapsed when the check fired, in milliseconds.
        elapsed_ms: u64,
    },
    /// The job was cancelled by an explicit request; execution stopped at
    /// the next micro-op boundary.
    Cancelled {
        /// The component that observed the cancellation.
        op: &'static str,
    },
    /// A supervisor marked the job stalled: its heartbeat went stale past
    /// the stall budget (a hung worker, a wedged I/O path). The run aborts
    /// at the next micro-op boundary; the job is retryable from its last
    /// durable checkpoint.
    Stalled {
        /// The component that observed the stall mark.
        op: &'static str,
        /// How long the heartbeat had been stale when the watchdog fired,
        /// in milliseconds.
        stalled_ms: u64,
    },
    /// The tenant's circuit breaker is open: repeated integrity failures
    /// or panics quarantined the tenant, and admission rejects new work
    /// until the breaker half-opens for a probe.
    TenantQuarantined {
        /// The admitting component that rejected the submission.
        op: &'static str,
        /// Suggested client backoff before resubmitting, in milliseconds.
        retry_after_ms: u64,
    },
}

impl fmt::Display for FheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FheError::Ckks(e) => write!(f, "{e}"),
            FheError::Rns(e) => write!(f, "{e}"),
            FheError::Math(e) => write!(f, "{e}"),
            FheError::LevelMismatch { op, got, want } => {
                write!(f, "{op}: level mismatch (got {got}, want {want})")
            }
            FheError::ScaleMismatch { op, got, want, rel } => write!(
                f,
                "{op}: scale mismatch (got {got:.6e}, want {want:.6e}, relative deviation {rel:.3e})"
            ),
            FheError::BudgetExhausted {
                op,
                budget_bits,
                required_bits,
            } => write!(
                f,
                "{op}: noise budget exhausted (estimated {budget_bits:.1} bits, \
                 policy requires {required_bits:.1})"
            ),
            FheError::InvalidParams { op, reason } => {
                write!(f, "{op}: invalid arguments: {reason}")
            }
            FheError::CorruptCiphertext { op, reason } => {
                write!(f, "{op}: corrupt ciphertext: {reason}")
            }
            FheError::CorruptKey { op, reason } => {
                write!(f, "{op}: corrupt keyswitch hint: {reason}")
            }
            FheError::MissingKey { what } => write!(f, "missing key material: {what}"),
            FheError::Serialization { op, reason } => {
                write!(f, "{op}: serialization failure: {reason}")
            }
            FheError::ChecksumMismatch {
                op,
                section,
                stored,
                computed,
            } => write!(
                f,
                "{op}: checksum mismatch in {section} \
                 (stored {stored:#018x}, computed {computed:#018x})"
            ),
            FheError::ParamsMismatch { op, got, want } => write!(
                f,
                "{op}: params fingerprint mismatch \
                 (blob written under {got:#018x}, context is {want:#018x})"
            ),
            FheError::Overloaded { op, retry_after_ms } => write!(
                f,
                "{op}: overloaded, request shed (retry after {retry_after_ms} ms)"
            ),
            FheError::DeadlineExceeded {
                op,
                deadline_ms,
                elapsed_ms,
            } => write!(
                f,
                "{op}: deadline exceeded ({elapsed_ms} ms elapsed, deadline {deadline_ms} ms)"
            ),
            FheError::Cancelled { op } => write!(f, "{op}: cancelled"),
            FheError::Stalled { op, stalled_ms } => write!(
                f,
                "{op}: stalled (heartbeat stale for {stalled_ms} ms, watchdog aborted the run)"
            ),
            FheError::TenantQuarantined { op, retry_after_ms } => write!(
                f,
                "{op}: tenant quarantined by circuit breaker (retry after {retry_after_ms} ms)"
            ),
        }
    }
}

impl std::error::Error for FheError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FheError::Ckks(e) => Some(e),
            FheError::Rns(e) => Some(e),
            FheError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CkksError> for FheError {
    fn from(e: CkksError) -> Self {
        FheError::Ckks(e)
    }
}

impl From<RnsError> for FheError {
    fn from(e: RnsError) -> Self {
        FheError::Rns(e)
    }
}

impl From<MathError> for FheError {
    fn from(e: MathError) -> Self {
        FheError::Math(e)
    }
}

impl From<ParamsError> for FheError {
    fn from(e: ParamsError) -> Self {
        FheError::Ckks(CkksError::Params(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_structured_context() {
        let e = FheError::LevelMismatch {
            op: "add",
            got: 3,
            want: 2,
        };
        let s = e.to_string();
        assert!(s.contains("add") && s.contains('3') && s.contains('2'), "{s}");

        let e = FheError::BudgetExhausted {
            op: "mul",
            budget_bits: -4.5,
            required_bits: 10.0,
        };
        assert!(e.to_string().contains("-4.5"));
    }

    #[test]
    fn every_variant_display_names_failing_component() {
        // One instance of every variant, paired with the component keyword
        // its message must name. Adding a variant without extending this list
        // is caught by review, not the compiler (`#[non_exhaustive]` enums
        // cannot be exhaustively enumerated by value), so keep it current.
        let cases: Vec<(FheError, &str)> = vec![
            (
                FheError::Ckks(CkksError::Params(ParamsError("bad levels".into()))),
                "bad levels",
            ),
            (
                FheError::Rns(RnsError::InvalidParameter("bad basis".into())),
                "bad basis",
            ),
            (
                FheError::Math(cl_math::MathError::NotEnoughPrimes {
                    requested: 3,
                    found: 1,
                    bits: 28,
                }),
                "prime",
            ),
            (
                FheError::LevelMismatch {
                    op: "add",
                    got: 3,
                    want: 2,
                },
                "add",
            ),
            (
                FheError::ScaleMismatch {
                    op: "mul",
                    got: 1.0,
                    want: 2.0,
                    rel: 0.5,
                },
                "mul",
            ),
            (
                FheError::BudgetExhausted {
                    op: "square",
                    budget_bits: -1.0,
                    required_bits: 0.0,
                },
                "square",
            ),
            (
                FheError::InvalidParams {
                    op: "rescale",
                    reason: "level 1".into(),
                },
                "rescale",
            ),
            (
                FheError::CorruptCiphertext {
                    op: "validate",
                    reason: "residue out of range".into(),
                },
                "ciphertext",
            ),
            (
                FheError::CorruptKey {
                    op: "keyswitch",
                    reason: "digest".into(),
                },
                "keyswitch",
            ),
            (
                FheError::MissingKey {
                    what: "rotation key 5".into(),
                },
                "key",
            ),
            (
                FheError::Serialization {
                    op: "load_ciphertext",
                    reason: "truncated".into(),
                },
                "load_ciphertext",
            ),
            (
                FheError::ChecksumMismatch {
                    op: "load_ciphertext",
                    section: "limb 3".into(),
                    stored: 1,
                    computed: 2,
                },
                "limb 3",
            ),
            (
                FheError::ParamsMismatch {
                    op: "load_key",
                    got: 0xdead,
                    want: 0xbeef,
                },
                "fingerprint",
            ),
            (
                FheError::Overloaded {
                    op: "submit",
                    retry_after_ms: 40,
                },
                "retry after 40 ms",
            ),
            (
                FheError::DeadlineExceeded {
                    op: "pipeline",
                    deadline_ms: 100,
                    elapsed_ms: 250,
                },
                "deadline",
            ),
            (
                FheError::Cancelled { op: "pipeline" },
                "cancelled",
            ),
            (
                FheError::Stalled {
                    op: "pipeline",
                    stalled_ms: 750,
                },
                "stalled",
            ),
            (
                FheError::TenantQuarantined {
                    op: "submit",
                    retry_after_ms: 200,
                },
                "quarantined",
            ),
        ];
        for (err, component) in cases {
            let msg = err.to_string();
            assert!(!msg.is_empty(), "{err:?} renders empty");
            assert!(
                msg.contains(component),
                "{err:?} message {msg:?} does not name {component:?}"
            );
        }
    }

    #[test]
    fn layer_errors_convert() {
        let p: FheError = ParamsError("levels must be >= 1".into()).into();
        assert!(matches!(p, FheError::Ckks(CkksError::Params(_))));
        assert!(std::error::Error::source(&p).is_some());
    }
}
