//! The CKKS approximate-FHE scheme.
//!
//! This crate implements the workload CraterLake accelerates: CKKS
//! (Cheon-Kim-Kim-Song) over RNS polynomials, including
//!
//! - encoding/decoding via the canonical embedding (Sec. 2.2),
//! - key generation, encryption, decryption,
//! - homomorphic addition, multiplication, rotation, conjugation and
//!   rescaling,
//! - **standard** keyswitching (the algorithm prior accelerators like F1
//!   were built around) and **boosted** keyswitching with a configurable
//!   number of digits `t` (Sec. 3, Listing 1) — the algorithm CraterLake is
//!   designed for,
//! - seeded generation of the pseudo-random half of each keyswitch hint
//!   (the software analogue of the KSHGen unit, Sec. 5.2), with a compact
//!   resident key form ([`CompactKeySwitchKey`]) and a bytes-bounded
//!   hot-hint cache ([`HintCache`]) that materializes hints lazily,
//! - the security model mapping `(N, security level)` to a maximum
//!   ciphertext-modulus width (our stand-in for the LWE estimator),
//! - a fallible `try_*` evaluation API with a unified error type
//!   ([`FheError`]), per-ciphertext analytic noise tracking, runtime
//!   noise-budget guardrails ([`GuardrailPolicy`]), and a fault-injection
//!   harness ([`faults`], test-only) that validates the guardrails catch
//!   corrupted ciphertexts, dropped rescales and tampered hints.
//!
//! # Example
//!
//! ```
//! use cl_ckks::{CkksContext, CkksParams, KeySwitchKind};
//! let params = CkksParams::builder()
//!     .ring_degree(64)
//!     .levels(3)
//!     .special_limbs(3)
//!     .limb_bits(36)
//!     .scale_bits(30)
//!     .build()
//!     .unwrap();
//! let mut rng = rand::thread_rng();
//! let ctx = CkksContext::new(params).unwrap();
//! let sk = ctx.keygen(&mut rng);
//! let vals = vec![1.5, -2.25, 3.0];
//! let pt = ctx.encode(&vals, ctx.default_scale(), ctx.max_level());
//! let ct = ctx.encrypt(&pt, &sk, &mut rng);
//! let back = ctx.decode(&ctx.decrypt(&ct, &sk), vals.len());
//! assert!((back[0] - 1.5).abs() < 1e-3);
//! # let _ = KeySwitchKind::Boosted { digits: 1 };
//! ```

#![warn(missing_docs)]
// Library code must propagate failures (`FheResult`/`?`) or `expect` with
// the violated invariant; tests are exempt. Enforced by scripts/verify.sh.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod bgv;
mod ciphertext;
mod context;
mod error;
mod eval;
#[cfg(any(test, feature = "faults"))]
pub mod faults;
mod hint_cache;
mod keys;
mod keyswitch;
mod noise;
mod params;
pub mod security;
pub mod serialize;

pub use ciphertext::{Ciphertext, Plaintext};
pub use context::{CkksContext, CkksError, GuardrailPolicy};
pub use error::{FheError, FheResult};
pub use hint_cache::{HintCache, HintCacheStats, HintId, DEFAULT_HINT_CACHE_BYTES};
pub use keys::{CompactKeySwitchKey, KeySwitchKey, PublicKey, SecretKey};
pub use keyswitch::{HoistedDecomposition, KeySwitchKind};
pub use params::{CkksParams, CkksParamsBuilder};
